package vgprs_test

import (
	"runtime"
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/netsim"
)

// talkingPair builds a 2-MS talk-enabled network with one MS-to-MS call
// established and a second of steady-state frames already exchanged, so
// measurements start with every per-call buffer warm.
func talkingPair(tb testing.TB, seed int64) *netsim.VGPRSNet {
	tb.Helper()
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{
		Seed: seed, NumMS: 2, Talk: true, NoTrace: true,
	})
	if err := n.RegisterAll(); err != nil {
		tb.Fatal(err)
	}
	if err := n.MSs[0].Dial(n.Env, n.Subscribers[1].MSISDN); err != nil {
		tb.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	for _, ms := range n.MSs {
		if ms.State() != gsm.MSInCall {
			tb.Fatalf("call not up: %v/%v", n.MSs[0].State(), n.MSs[1].State())
		}
	}
	n.Env.RunUntil(n.Env.Now() + time.Second)
	return n
}

// TestFrameForwardAllocBudget is the per-frame allocation budget for the
// steady-state talk path. Each end-to-end frame costs exactly two heap
// allocations — boxing the uplink TCHFrame at the MS and the downlink
// TCHFrame at the VMSC, both value messages on the radio leg — while the
// VMSC -> SGSN -> GGSN -> SGSN -> VMSC relay legs reuse per-call pointer
// messages and buffers and allocate nothing. The budget of 2.5 per frame
// leaves headroom for the engine's amortised timer-heap growth without
// letting a third per-frame box (or any relay-leg allocation) sneak in.
func TestFrameForwardAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget needs steady-state measurement")
	}
	n := talkingPair(t, 1)
	const window = 10 * time.Second

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rxBefore := n.MSs[0].FramesReceived() + n.MSs[1].FramesReceived()
	n.Env.RunUntil(n.Env.Now() + window)
	runtime.ReadMemStats(&after)

	frames := n.MSs[0].FramesReceived() + n.MSs[1].FramesReceived() - rxBefore
	if want := 2 * uint64(window/(20*time.Millisecond)) * 95 / 100; frames < want {
		t.Fatalf("talk path stalled: %d frames in %v, want >= %d", frames, window, want)
	}
	allocs := after.Mallocs - before.Mallocs
	perFrame := float64(allocs) / float64(frames)
	t.Logf("%d allocs over %d frames: %.3f allocs/frame", allocs, frames, perFrame)
	if perFrame > 2.5 {
		t.Fatalf("talk path allocated %.3f objects/frame, budget 2.5", perFrame)
	}
}

// BenchmarkTalkPathFrame measures the real CPU and allocation cost of one
// 20 ms frame interval on an established call: two end-to-end frames (one
// per direction) through the full Um -> VMSC -> GTP hairpin and back.
func BenchmarkTalkPathFrame(b *testing.B) {
	n := talkingPair(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Env.RunUntil(n.Env.Now() + 20*time.Millisecond)
	}
	b.StopTimer()
	frames := n.MSs[0].FramesReceived() + n.MSs[1].FramesReceived()
	b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
}
