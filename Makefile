# Development entry points. `make check` is the tier-1 gate plus the race
# detector over the packages that now run work on goroutines (the parallel
# sweep runner); CI should run exactly this target.

GO ?= go

# Packages with a wire-format FuzzDecode target and a committed seed corpus
# under testdata/fuzz/.
FUZZ_PKGS = ./internal/sigmap/ ./internal/gtp/ ./internal/q931/ ./internal/gb/ ./internal/isup/ ./internal/rtp/ ./internal/gsm/ ./internal/h323/

.PHONY: all build vet test race check bench bench-sim bench-codec bench-registration bench-engine bench-scenarios bench-scale bench-scale-full bench-media bench-json fuzz-smoke fuzz soak soak-short

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep runner fans experiment points across worker goroutines (and
# drives the netsim chaos scenarios from them); keep the race detector on
# the packages that schedule or execute that work.
race:
	$(GO) test -race ./internal/experiments/... ./internal/sim/... ./internal/netsim/...

check: vet build test race

# Short coverage-guided fuzz pass over every wire decoder, seeded from the
# committed corpora. CI runs this; it is a smoke test for decoder panics,
# not a soak.
fuzz-smoke:
	@for pkg in $(FUZZ_PKGS); do \
		$(GO) test $$pkg -fuzz=FuzzDecode -fuzztime=10s || exit 1; \
	done

# Longer local fuzzing session per decoder.
fuzz:
	@for pkg in $(FUZZ_PKGS); do \
		$(GO) test $$pkg -fuzz=FuzzDecode -fuzztime=5m || exit 1; \
	done

# Full benchmark suite (paper artifacts + engine micro-benchmarks).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Engine hot-path micro-benchmarks only: must report 0 allocs/op for
# BenchmarkSendDeliver and BenchmarkTimerChurn.
bench-sim:
	$(GO) test -run '^$$' -bench 'SendDeliver|TimerChurn' -benchmem ./internal/sim/

# Per-codec allocation benchmarks on the pooled zero-copy path. The alloc
# ceilings themselves are enforced by TestAllocCeilings in each package.
bench-codec:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/wire/ ./internal/sigmap/ ./internal/gtp/ ./internal/q931/ ./internal/gsm/

# Full-stack registration throughput (ns/op, B/op, allocs/op), written to
# BENCH_registration.json in the working dir for per-run tracking.
bench-registration:
	$(GO) run ./cmd/vgprs-bench -only registration -json

# Sharded event-engine scaling sweep (multi-region registration at shard
# counts 1/2/4/8), written to BENCH_engine.json in the working dir. The
# point records GOMAXPROCS/NumCPU: on a single-core host the sweep measures
# synchronization overhead, not speedup.
bench-engine:
	$(GO) run ./cmd/vgprs-bench -only engine -json

# Scenario workload sweep (mobility churn, flash crowd, day-in-the-life),
# written to BENCH_scenarios.json in the working dir.
bench-scenarios:
	$(GO) run ./cmd/vgprs-bench -only scenarios -json

# Media-plane sweep (concurrent calls x per-link loss rate, per-call
# E-model MOS distributions), written to BENCH_media.json in the working
# dir.
bench-media:
	$(GO) run ./cmd/vgprs-bench -only media -json

# Slab-backed core scale point (bytes/subscriber, attach and call-setup
# throughput at full residency), written to BENCH_scale.json in the working
# dir. CI runs the 100k point; the committed artifact also carries 500k and
# 1M (make bench-scale SCALE_SUBS=100000,500000,1000000).
SCALE_SUBS ?= 100000
bench-scale:
	$(GO) run ./cmd/vgprs-bench -only scale -scale-subs $(SCALE_SUBS) -scale-full-subs none -json

# Full-stack scale point: the same populations attached through the complete
# Fig 2(b) topology (VMSC, VLR, HLR, SGSN, GGSN, gatekeeper, directory) with
# end-to-end call setup at full residency. CI runs the 100k point; the
# committed artifact also carries 500k and 1M (make bench-scale-full
# SCALE_FULL_SUBS=100000,500000,1000000).
SCALE_FULL_SUBS ?= 100000
bench-scale-full:
	$(GO) run ./cmd/vgprs-bench -only scale -scale-subs none -scale-full-subs $(SCALE_FULL_SUBS) -json

# Machine-readable experiment results (BENCH_<id>.json in the working dir).
bench-json:
	$(GO) run ./cmd/vgprs-bench -json

# Full day-in-the-life soak (4 simulated hours) with the leak gate.
soak:
	$(GO) test ./internal/netsim/scenario/ -run TestDaySoak -v

# Reduced soak for CI: same invariants, shorter simulated day, race
# detector on.
soak-short:
	$(GO) test -race -short ./internal/netsim/scenario/ -v
