// Package vgprs is a from-scratch Go reproduction of "vGPRS: A Mechanism
// for Voice over GPRS" (Chang, Lin, Pang — ICDCS 2001 / Wireless Networks
// 9, 2003).
//
// The paper replaces the GSM MSC with a VMSC — a router-based softswitch
// that keeps the circuit-switched radio leg for unmodified handsets, acts
// as a GPRS mobile on behalf of every subscriber, and speaks standard
// H.323 toward a gatekeeper. This module implements the VMSC and every
// substrate it depends on (GSM radio access and core, SS7/MAP, GPRS
// SGSN/GGSN/GTP, H.323/Q.931/RTP, a PSTN, and the 3G TR 23.923 comparison
// baseline) on a deterministic discrete-event simulator.
//
// Start with internal/netsim to build complete networks, internal/vmsc for
// the paper's contribution, and internal/experiments for the harness that
// regenerates every figure and comparison. The runnable entry points are
// cmd/vgprs-sim (message traces), cmd/vgprs-bench (measured tables), and
// the programs under examples/.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package vgprs
