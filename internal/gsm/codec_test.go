package gsm

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
)

func TestL3CodecRoundTripAllTypes(t *testing.T) {
	lai := gsmid.LAI{MCC: "466", MNC: "92", LAC: 7}
	cgi := gsmid.CGI{LAI: lai, CI: 0x42}
	var rand [16]byte
	rand[0] = 0xAA
	var sres [4]byte
	sres[3] = 0x55

	msgs := []sim.Message{
		ChannelRequest{Leg: LegUm, MS: "MS-1", ForPaging: true},
		ImmediateAssignment{Leg: LegAbis, MS: "MS-1", Channel: 9},
		ImmediateAssignment{Leg: LegUm, MS: "MS-1", Rejected: true},
		LocationUpdate{Leg: LegA, MS: "MS-1", Identity: gsmid.ByIMSI("466920000000001"), LAI: lai},
		LocationUpdate{Leg: LegUm, MS: "MS-1", Identity: gsmid.ByTMSI(0xBEEF), LAI: lai},
		LocationUpdateAccept{Leg: LegUm, MS: "MS-1", TMSI: 0xCAFE},
		LocationUpdateReject{Leg: LegUm, MS: "MS-1", Cause: 3},
		AuthRequest{Leg: LegUm, MS: "MS-1", RAND: rand},
		AuthResponse{Leg: LegA, MS: "MS-1", SRES: sres},
		CipherModeCommand{Leg: LegUm, MS: "MS-1"},
		CipherModeComplete{Leg: LegA, MS: "MS-1"},
		Setup{Leg: LegUm, MS: "MS-1", CallRef: 5, Called: "886200000001", Calling: "886900000001"},
		CallConfirmed{Leg: LegUm, MS: "MS-1", CallRef: 5},
		Alerting{Leg: LegA, MS: "MS-1", CallRef: 5},
		Connect{Leg: LegUm, MS: "MS-1", CallRef: 5},
		Disconnect{Leg: LegUm, MS: "MS-1", CallRef: 5},
		Release{Leg: LegA, MS: "MS-1", CallRef: 5},
		ReleaseComplete{Leg: LegUm, MS: "MS-1", CallRef: 5},
		Paging{Leg: LegA, MS: "MS-1", Identity: gsmid.ByTMSI(0xCAFE)},
		PagingResponse{Leg: LegUm, MS: "MS-1", Identity: gsmid.ByTMSI(0xCAFE)},
		TCHFrame{Leg: LegUm, MS: "MS-1", CallRef: 5, Seq: 99, Payload: []byte{1, 2, 3}},
		TCHFrame{Leg: LegA, MS: "MS-1", CallRef: 5, Seq: 100, Downlink: true, Payload: []byte{4}},
		MeasurementReport{Leg: LegUm, MS: "MS-1", TargetCell: cgi},
		HandoverRequired{Leg: LegA, MS: "MS-1", CallRef: 5, TargetCell: cgi},
		HandoverCommand{Leg: LegUm, MS: "MS-1", CallRef: 5, TargetCell: cgi, TargetBTS: "BTS-2", Channel: 3},
		HandoverAccess{Leg: LegUm, MS: "MS-1", CallRef: 5},
		HandoverComplete{Leg: LegUm, MS: "MS-1", CallRef: 5},
		LLCFrame{Leg: LegUm, MS: "MS-1", TLLI: 0xC0001234, Payload: []byte{7, 8}},
		LLCFrame{Leg: LegAbis, MS: "MS-1", TLLI: 0xC0001234, Downlink: true, Payload: nil},
	}
	for _, m := range msgs {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", m, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip:\n in: %#v\nout: %#v", m, got)
		}
	}
}

func TestL3CodecErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{0xFF, 0xFF, 1, 0}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("unknown PD/MT err = %v", err)
	}
	if _, err := Unmarshal([]byte{pdMM}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short err = %v", err)
	}
	b, err := Marshal(CipherModeComplete{Leg: LegUm, MS: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(b, 1)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("trailing err = %v", err)
	}
	if _, err := Marshal(foreignMsg{}); err == nil {
		t.Error("foreign type accepted")
	}
}

func TestL3ProtocolDiscriminators(t *testing.T) {
	// Real GSM 04.08 discriminators: MM=0x05 for location updating,
	// CC=0x03 for call control, RR=0x06 for radio resource.
	check := func(m sim.Message, wantPD uint8) {
		b, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != wantPD {
			t.Errorf("%T PD = %#x, want %#x", m, b[0], wantPD)
		}
	}
	check(LocationUpdate{Identity: gsmid.ByTMSI(1)}, 0x05)
	check(Setup{}, 0x03)
	check(Paging{Identity: gsmid.ByTMSI(1)}, 0x06)
}

func TestL3RoundTripProperty(t *testing.T) {
	prop := func(ref, seq uint32, tmsi uint32, leg uint8, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		if len(payload) == 0 {
			payload = nil // empty fields round-trip to nil
		}
		l := Leg(leg%3 + 1)
		for _, m := range []sim.Message{
			TCHFrame{Leg: l, MS: "MS-9", CallRef: ref, Seq: seq, Payload: payload},
			LocationUpdateAccept{Leg: l, MS: "MS-9", TMSI: gsmid.TMSI(tmsi)},
			Connect{Leg: l, MS: "MS-9", CallRef: ref},
		} {
			b, err := Marshal(m)
			if err != nil {
				return false
			}
			got, err := Unmarshal(b)
			if err != nil || !reflect.DeepEqual(got, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
