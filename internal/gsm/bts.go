package gsm

import (
	"vgprs/internal/sim"
)

// BTSConfig parameterises a base transceiver station.
type BTSConfig struct {
	ID sim.NodeID
	// BSC is the controlling base station controller.
	BSC sim.NodeID
}

// BTS is a base transceiver station: a per-message relay between the Um air
// interface and the Abis interface, exactly the role it plays in the
// paper's figures (it renames messages hop by hop but takes no decisions).
type BTS struct {
	cfg BTSConfig
}

var _ sim.Node = (*BTS)(nil)

// NewBTS returns a BTS.
func NewBTS(cfg BTSConfig) *BTS { return &BTS{cfg: cfg} }

// ID implements sim.Node.
func (b *BTS) ID() sim.NodeID { return b.cfg.ID }

// Receive implements sim.Node: uplink (Um) traffic is relayed to the BSC
// with the Abis leg; downlink (Abis) traffic is relayed to the target MS
// with the Um leg, provided the MS is in this cell.
func (b *BTS) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch iface {
	case "Um":
		env.Send(b.cfg.ID, b.cfg.BSC, relayLeg(env, msg, LegAbis))
	case "Abis":
		ms := TargetMS(msg)
		if ms == "" || !env.HasLink(b.cfg.ID, ms) {
			return // MS not in this cell; paging elsewhere finds it
		}
		env.Send(b.cfg.ID, ms, relayLeg(env, msg, LegUm))
	}
}

// relayLeg tags a relayed message with the leg it is about to cross. The tag
// feeds only trace naming and wire headers — no protocol handler reads it —
// so with no tracer installed the original message is forwarded untouched,
// skipping the re-boxing copy WithLeg would make on every hop.
func relayLeg(env *sim.Env, msg sim.Message, leg Leg) sim.Message {
	if env.Tracer() == nil {
		return msg
	}
	return WithLeg(msg, leg)
}

// WithLeg returns a copy of a radio-access message with the leg rewritten —
// the relay operation a BTS/BSC performs when a message crosses interfaces.
// Messages without a leg (foreign types) are returned unchanged.
func WithLeg(msg sim.Message, leg Leg) sim.Message {
	switch m := msg.(type) {
	case ChannelRequest:
		m.Leg = leg
		return m
	case ImmediateAssignment:
		m.Leg = leg
		return m
	case LocationUpdate:
		m.Leg = leg
		return m
	case LocationUpdateAccept:
		m.Leg = leg
		return m
	case LocationUpdateReject:
		m.Leg = leg
		return m
	case AuthRequest:
		m.Leg = leg
		return m
	case AuthResponse:
		m.Leg = leg
		return m
	case CipherModeCommand:
		m.Leg = leg
		return m
	case CipherModeComplete:
		m.Leg = leg
		return m
	case Setup:
		m.Leg = leg
		return m
	case CallConfirmed:
		m.Leg = leg
		return m
	case Alerting:
		m.Leg = leg
		return m
	case Connect:
		m.Leg = leg
		return m
	case Disconnect:
		m.Leg = leg
		return m
	case Release:
		m.Leg = leg
		return m
	case ReleaseComplete:
		m.Leg = leg
		return m
	case IMSIDetach:
		m.Leg = leg
		return m
	case Paging:
		m.Leg = leg
		return m
	case PagingResponse:
		m.Leg = leg
		return m
	case TCHFrame:
		m.Leg = leg
		return m
	case MeasurementReport:
		m.Leg = leg
		return m
	case HandoverRequired:
		m.Leg = leg
		return m
	case HandoverCommand:
		m.Leg = leg
		return m
	case HandoverAccess:
		m.Leg = leg
		return m
	case HandoverComplete:
		m.Leg = leg
		return m
	case LLCFrame:
		m.Leg = leg
		return m
	default:
		return msg
	}
}

// TargetMS extracts the MS correlation handle from a radio-access message,
// or "" for foreign types.
func TargetMS(msg sim.Message) sim.NodeID {
	switch m := msg.(type) {
	case ChannelRequest:
		return m.MS
	case ImmediateAssignment:
		return m.MS
	case LocationUpdate:
		return m.MS
	case LocationUpdateAccept:
		return m.MS
	case LocationUpdateReject:
		return m.MS
	case AuthRequest:
		return m.MS
	case AuthResponse:
		return m.MS
	case CipherModeCommand:
		return m.MS
	case CipherModeComplete:
		return m.MS
	case Setup:
		return m.MS
	case CallConfirmed:
		return m.MS
	case Alerting:
		return m.MS
	case Connect:
		return m.MS
	case Disconnect:
		return m.MS
	case Release:
		return m.MS
	case ReleaseComplete:
		return m.MS
	case IMSIDetach:
		return m.MS
	case Paging:
		return m.MS
	case PagingResponse:
		return m.MS
	case TCHFrame:
		return m.MS
	case MeasurementReport:
		return m.MS
	case HandoverRequired:
		return m.MS
	case HandoverCommand:
		return m.MS
	case HandoverAccess:
		return m.MS
	case HandoverComplete:
		return m.MS
	case LLCFrame:
		return m.MS
	default:
		return ""
	}
}
