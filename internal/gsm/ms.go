package gsm

import (
	"fmt"
	"time"

	"vgprs/internal/codec"
	"vgprs/internal/gsmid"
	"vgprs/internal/hlr"
	"vgprs/internal/sim"
)

// MSState is the mobile station's layer-3 state.
type MSState uint8

// MS states.
const (
	MSDetached MSState = iota + 1
	MSRequestingChannel
	MSRegistering
	MSIdle
	MSDialing
	MSWaitAnswer
	MSRinging
	MSInCall
	MSClearing
)

// String names the state.
func (s MSState) String() string {
	switch s {
	case MSDetached:
		return "detached"
	case MSRequestingChannel:
		return "requesting-channel"
	case MSRegistering:
		return "registering"
	case MSIdle:
		return "idle"
	case MSDialing:
		return "dialing"
	case MSWaitAnswer:
		return "wait-answer"
	case MSRinging:
		return "ringing"
	case MSInCall:
		return "in-call"
	case MSClearing:
		return "clearing"
	default:
		return fmt.Sprintf("MSState(%d)", uint8(s))
	}
}

// MSHooks are optional observation callbacks fired by the MS state machine.
// All callbacks run on the simulation goroutine.
type MSHooks struct {
	// OnRegistered fires when the network accepts the location update.
	OnRegistered func(tmsi gsmid.TMSI)
	// OnRegisterFailed fires on location-update rejection or radio
	// congestion during registration.
	OnRegisterFailed func()
	// OnAlerting fires when the MS receives Alerting for its outgoing
	// call (ringback begins).
	OnAlerting func(callRef uint32)
	// OnConnected fires when the call enters conversation.
	OnConnected func(callRef uint32)
	// OnReleased fires when a call finishes clearing.
	OnReleased func(callRef uint32)
	// OnIncoming fires when a mobile-terminated Setup arrives; the MS
	// rings and (with AutoAnswer) answers after AnswerDelay.
	OnIncoming func(callRef uint32, calling gsmid.MSISDN)
	// OnBlocked fires when a channel request is rejected.
	OnBlocked func()
	// OnFrame fires for every downlink speech frame.
	OnFrame func(f TCHFrame)
	// OnHandover fires when the MS completes a handover to a new BTS.
	OnHandover func(newBTS sim.NodeID)
}

// MSConfig parameterises a mobile station.
type MSConfig struct {
	ID     sim.NodeID
	IMSI   gsmid.IMSI
	MSISDN gsmid.MSISDN
	// Ki is the SIM's secret key; must match the HLR's provisioned key.
	Ki [16]byte
	// BTS is the serving cell.
	BTS sim.NodeID
	// LAI is the location area the MS camps on.
	LAI gsmid.LAI
	// AutoAnswer answers incoming calls after AnswerDelay.
	AutoAnswer  bool
	AnswerDelay time.Duration
	// Talk makes the MS generate uplink speech frames while in a call.
	Talk bool
	// DTX enables discontinuous transmission: a Brady talk-spurt model
	// gates the uplink frames, suppressing silence (VAD), as GSM DTX
	// does. Only meaningful with Talk.
	DTX bool
	// FrameInterval is the vocoder frame period; zero means 20 ms (GSM FR).
	FrameInterval time.Duration
	// UseTMSIAfterFirstUpdate registers with the stored TMSI on
	// subsequent location updates, as a real MS does.
	UseTMSIAfterFirstUpdate bool
	// MaxAccessRetries bounds registration random-access retries under
	// radio congestion. Zero means 8.
	MaxAccessRetries int
	// PeriodicUpdate, when positive, re-runs the location update on this
	// interval while the MS is idle — the GSM T3212 periodic registration
	// timer.
	PeriodicUpdate time.Duration

	Hooks MSHooks
}

// MS is a standard GSM mobile station — deliberately without any H.323 or
// vocoder-IP capability, since the paper's whole point is that vGPRS serves
// unmodified handsets.
type MS struct {
	cfg MSConfig

	state    MSState
	tmsi     gsmid.TMSI
	hasTMSI  bool
	channel  uint16
	callRef  uint32
	nextRef  uint32
	seq      uint32
	rxFrames uint64
	txFrames uint64

	// pending is what the MS wants the channel for.
	pending pendingAction
	dialled gsmid.MSISDN
	retries int

	talking bool
	// speech is the DTX talk-spurt gate (nil when DTX is off).
	speech *codec.Source
	// frameBuf is the reusable uplink frame buffer; the BTS/BSC/VMSC chain
	// consumes each frame within one FrameInterval, so overwriting it every
	// tick is safe and keeps the steady-state talk path allocation-free.
	frameBuf []byte

	media mediaStats
}

// mediaStats accumulates listener-side QoS for the downlink speech the MS
// hears: the three E-model axes (one-way delay, interarrival jitter, loss).
// Frames embed their generation time and sequence number (codec.NewFrame)
// and the transcoding hops are byte-preserving, so both survive the
// Um→core→Um hairpin intact.
type mediaStats struct {
	frames   uint64
	firstSeq uint32
	lastSeq  uint32
	haveSeq  bool
	sumDelay time.Duration
	maxDelay time.Duration
	// jitter is the RFC 3550 smoothed estimator J += (|D|-J)/16 over the
	// transit-time differences of consecutive frames, in nanoseconds.
	jitter    float64
	lastDelay time.Duration
	haveDelay bool
}

func (s *mediaStats) observe(now, gen time.Duration, seq uint32) {
	s.frames++
	if !s.haveSeq {
		s.firstSeq, s.lastSeq, s.haveSeq = seq, seq, true
	} else {
		if seq < s.firstSeq {
			s.firstSeq = seq
		}
		if seq > s.lastSeq {
			s.lastSeq = seq
		}
	}
	delay := now - gen
	s.sumDelay += delay
	if delay > s.maxDelay {
		s.maxDelay = delay
	}
	if s.haveDelay {
		d := float64(delay - s.lastDelay)
		if d < 0 {
			d = -d
		}
		s.jitter += (d - s.jitter) / 16
	}
	s.lastDelay, s.haveDelay = delay, true
}

// MediaReport is a snapshot of the listener-side QoS accumulated since the
// last ResetMedia, in the units metrics.EModel scores: delay and jitter as
// durations, loss as expected-vs-heard frame counts over the received
// sequence span.
type MediaReport struct {
	// Frames is the number of downlink speech frames heard.
	Frames uint64
	// Expected is the frame count the received sequence span implies;
	// Expected-Frames is the end-to-end loss within the span.
	Expected  uint64
	MeanDelay time.Duration
	MaxDelay  time.Duration
	Jitter    time.Duration
}

// Lost returns the frames missing from the received sequence span.
func (r MediaReport) Lost() uint64 {
	if r.Expected <= r.Frames {
		return 0
	}
	return r.Expected - r.Frames
}

// maxRetries bounds random-access backoff attempts during registration.
func (m *MS) maxRetries() int {
	if m.cfg.MaxAccessRetries > 0 {
		return m.cfg.MaxAccessRetries
	}
	return 8
}

type pendingAction uint8

const (
	pendingNone pendingAction = iota
	pendingRegister
	pendingDial
	pendingPageResponse
	pendingDetach
)

var _ sim.Node = (*MS)(nil)

// NewMS returns a powered-off MS.
func NewMS(cfg MSConfig) *MS {
	if cfg.FrameInterval == 0 {
		cfg.FrameInterval = 20 * time.Millisecond
	}
	return &MS{cfg: cfg, state: MSDetached}
}

// ID implements sim.Node.
func (m *MS) ID() sim.NodeID { return m.cfg.ID }

// State returns the current layer-3 state.
func (m *MS) State() MSState { return m.state }

// SetOnReleased replaces the OnReleased hook (for tests and examples that
// attach observers after construction).
func (m *MS) SetOnReleased(fn func(callRef uint32)) { m.cfg.Hooks.OnReleased = fn }

// SetOnConnected replaces the OnConnected hook.
func (m *MS) SetOnConnected(fn func(callRef uint32)) { m.cfg.Hooks.OnConnected = fn }

// SetOnFrame replaces the OnFrame hook.
func (m *MS) SetOnFrame(fn func(f TCHFrame)) { m.cfg.Hooks.OnFrame = fn }

// TMSI returns the allocated temporary identity, if any.
func (m *MS) TMSI() (gsmid.TMSI, bool) { return m.tmsi, m.hasTMSI }

// FramesReceived returns the number of downlink speech frames received.
func (m *MS) FramesReceived() uint64 { return m.rxFrames }

// FramesSent returns the number of uplink speech frames sent.
func (m *MS) FramesSent() uint64 { return m.txFrames }

// CallRef returns the active call reference (0 when idle).
func (m *MS) CallRef() uint32 { return m.callRef }

// MediaReport snapshots the listener-side QoS stats accumulated since power
// on or the last ResetMedia. Read it before releasing the call: the stats
// survive release, but a later call keeps accumulating into them.
func (m *MS) MediaReport() MediaReport {
	r := MediaReport{
		Frames:   m.media.frames,
		MaxDelay: m.media.maxDelay,
		Jitter:   time.Duration(m.media.jitter),
	}
	if m.media.haveSeq {
		r.Expected = uint64(m.media.lastSeq-m.media.firstSeq) + 1
	}
	if m.media.frames > 0 {
		r.MeanDelay = m.media.sumDelay / time.Duration(m.media.frames)
	}
	return r
}

// ResetMedia clears the listener-side QoS stats, starting a fresh
// measurement window (e.g. between talk waves).
func (m *MS) ResetMedia() { m.media = mediaStats{} }

// PowerOn starts the registration procedure (paper Fig 4 step 1.1): the MS
// requests a channel and performs a location update.
func (m *MS) PowerOn(env *sim.Env) {
	if m.state != MSDetached {
		return
	}
	m.pending = pendingRegister
	m.requestChannel(env, false)
}

// UpdateLocation performs a fresh location update from the idle state — the
// movement/periodic registration the paper's §3 closing remark covers. With
// UseTMSIAfterFirstUpdate set, the MS identifies itself by TMSI, the common
// case for location update due to movement.
func (m *MS) UpdateLocation(env *sim.Env) error {
	if m.state != MSIdle {
		return fmt.Errorf("gsm: MS %s cannot update location in state %s", m.cfg.ID, m.state)
	}
	m.pending = pendingRegister
	m.requestChannel(env, false)
	return nil
}

// MoveTo re-homes the MS onto a new serving cell (and location area) and
// performs the location update from there. The MS must be idle and a Um
// link to the new BTS must exist.
func (m *MS) MoveTo(env *sim.Env, bts sim.NodeID, lai gsmid.LAI) error {
	if m.state != MSIdle {
		return fmt.Errorf("gsm: MS %s cannot move in state %s", m.cfg.ID, m.state)
	}
	m.cfg.BTS = bts
	m.cfg.LAI = lai
	return m.UpdateLocation(env)
}

// PowerOff deregisters the MS: it sends the GSM IMSI detach indication
// (which has no acknowledgement) and returns to the detached state. An
// idle MS first requests a channel for the indication; an MS in a call
// sends it on the channel it already holds — abrupt power loss mid-call —
// and the network clears the far leg on the detach.
func (m *MS) PowerOff(env *sim.Env) error {
	switch m.state {
	case MSIdle:
		m.pending = pendingDetach
		m.requestChannel(env, false)
		return nil
	case MSInCall, MSWaitAnswer, MSDialing, MSRinging, MSClearing:
		m.stopTalking()
		env.Send(m.cfg.ID, m.cfg.BTS, IMSIDetach{
			Leg: LegUm, MS: m.cfg.ID, Identity: m.identity(),
		})
		m.state = MSDetached
		m.hasTMSI = false
		return nil
	default:
		return fmt.Errorf("gsm: MS %s cannot power off in state %s", m.cfg.ID, m.state)
	}
}

// Dial originates a call to the given number (paper Fig 5 step 2.1). The MS
// must be registered and idle.
func (m *MS) Dial(env *sim.Env, called gsmid.MSISDN) error {
	if m.state != MSIdle {
		return fmt.Errorf("gsm: MS %s cannot dial in state %s", m.cfg.ID, m.state)
	}
	m.pending = pendingDial
	m.dialled = called
	m.requestChannel(env, false)
	return nil
}

// Hangup starts call clearing (paper Fig 5 step 3.1).
func (m *MS) Hangup(env *sim.Env) error {
	if m.state != MSInCall && m.state != MSWaitAnswer && m.state != MSDialing {
		return fmt.Errorf("gsm: MS %s cannot hang up in state %s", m.cfg.ID, m.state)
	}
	m.stopTalking()
	m.state = MSClearing
	env.Send(m.cfg.ID, m.cfg.BTS, Disconnect{Leg: LegUm, MS: m.cfg.ID, CallRef: m.callRef})
	return nil
}

// Answer answers a ringing incoming call (no-op unless ringing). AutoAnswer
// configurations call it internally.
func (m *MS) Answer(env *sim.Env) {
	if m.state != MSRinging {
		return
	}
	m.state = MSInCall
	env.Send(m.cfg.ID, m.cfg.BTS, Connect{Leg: LegUm, MS: m.cfg.ID, CallRef: m.callRef})
	m.startTalking(env)
	if m.cfg.Hooks.OnConnected != nil {
		m.cfg.Hooks.OnConnected(m.callRef)
	}
}

// ReportNeighbor sends a measurement report naming a stronger neighbour
// cell, which triggers handover when the network decides so (Fig 9).
func (m *MS) ReportNeighbor(env *sim.Env, target gsmid.CGI) {
	if m.state != MSInCall {
		return
	}
	env.Send(m.cfg.ID, m.cfg.BTS, MeasurementReport{Leg: LegUm, MS: m.cfg.ID, TargetCell: target})
}

func (m *MS) requestChannel(env *sim.Env, forPaging bool) {
	m.state = MSRequestingChannel
	env.Send(m.cfg.ID, m.cfg.BTS, ChannelRequest{Leg: LegUm, MS: m.cfg.ID, ForPaging: forPaging})
}

// identity returns what the MS identifies itself as: IMSI on first contact,
// TMSI afterwards when configured.
func (m *MS) identity() gsmid.MobileIdentity {
	if m.cfg.UseTMSIAfterFirstUpdate && m.hasTMSI {
		return gsmid.ByTMSI(m.tmsi)
	}
	return gsmid.ByIMSI(m.cfg.IMSI)
}

// Receive implements sim.Node.
func (m *MS) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch t := msg.(type) {
	case ImmediateAssignment:
		m.onAssignment(env, t)
	case AuthRequest:
		// The SIM signs the challenge with Ki.
		sres := hlr.SRES(m.cfg.Ki, t.RAND)
		env.Send(m.cfg.ID, m.cfg.BTS, AuthResponse{Leg: LegUm, MS: m.cfg.ID, SRES: sres})
	case CipherModeCommand:
		env.Send(m.cfg.ID, m.cfg.BTS, CipherModeComplete{Leg: LegUm, MS: m.cfg.ID})
	case LocationUpdateAccept:
		m.tmsi = t.TMSI
		m.hasTMSI = true
		m.state = MSIdle
		m.pending = pendingNone
		m.schedulePeriodicUpdate(env)
		if m.cfg.Hooks.OnRegistered != nil {
			m.cfg.Hooks.OnRegistered(t.TMSI)
		}
	case LocationUpdateReject:
		if m.hasTMSI {
			// GSM 04.08: when the network cannot derive the identity
			// from the TMSI (e.g. a new VLR), delete it and retry the
			// location update identifying with IMSI.
			m.hasTMSI = false
			m.pending = pendingRegister
			m.requestChannel(env, false)
			return
		}
		m.state = MSDetached
		m.pending = pendingNone
		if m.cfg.Hooks.OnRegisterFailed != nil {
			m.cfg.Hooks.OnRegisterFailed()
		}
	case Alerting:
		if m.state == MSDialing {
			m.state = MSWaitAnswer
			if m.cfg.Hooks.OnAlerting != nil {
				m.cfg.Hooks.OnAlerting(t.CallRef)
			}
		}
	case Connect:
		if m.state == MSWaitAnswer || m.state == MSDialing {
			m.state = MSInCall
			m.startTalking(env)
			if m.cfg.Hooks.OnConnected != nil {
				m.cfg.Hooks.OnConnected(t.CallRef)
			}
		}
	case Setup:
		m.onIncomingSetup(env, t)
	case Paging:
		m.onPaging(env, t)
	case Release:
		// Network-initiated clearing (or answer to our Disconnect).
		m.stopTalking()
		ref := m.callRef
		m.callRef = 0
		m.state = MSIdle
		env.Send(m.cfg.ID, m.cfg.BTS, ReleaseComplete{Leg: LegUm, MS: m.cfg.ID, CallRef: t.CallRef})
		if m.cfg.Hooks.OnReleased != nil {
			m.cfg.Hooks.OnReleased(ref)
		}
	case Disconnect:
		// Far party cleared first: respond and go idle.
		m.stopTalking()
		ref := m.callRef
		m.callRef = 0
		m.state = MSIdle
		env.Send(m.cfg.ID, m.cfg.BTS, ReleaseComplete{Leg: LegUm, MS: m.cfg.ID, CallRef: t.CallRef})
		if m.cfg.Hooks.OnReleased != nil {
			m.cfg.Hooks.OnReleased(ref)
		}
	case TCHFrame:
		if t.Downlink {
			m.rxFrames++
			if gen, ok := codec.FrameTimestamp(t.Payload); ok {
				if seq, ok := codec.FrameSeq(t.Payload); ok {
					m.media.observe(env.Now(), gen, seq)
				}
			}
			if m.cfg.Hooks.OnFrame != nil {
				m.cfg.Hooks.OnFrame(t)
			}
		}
	case HandoverCommand:
		m.onHandoverCommand(env, t)
	}
	_ = from
	_ = iface
}

func (m *MS) onAssignment(env *sim.Env, t ImmediateAssignment) {
	if m.state != MSRequestingChannel {
		return
	}
	if t.Rejected {
		if m.cfg.Hooks.OnBlocked != nil {
			m.cfg.Hooks.OnBlocked()
		}
		// Random-access congestion: back off and retry, as GSM 04.08
		// access control does, up to the retry budget.
		if m.pending == pendingRegister && m.retries < m.maxRetries() {
			m.retries++
			backoff := time.Duration(m.retries) * 200 * time.Millisecond
			backoff += time.Duration(env.Rand().Int63n(int64(200 * time.Millisecond)))
			pending := m.pending
			env.After(backoff, func() {
				if m.state == MSRequestingChannel && m.pending == pendingNone {
					m.pending = pending
					env.Send(m.cfg.ID, m.cfg.BTS, ChannelRequest{Leg: LegUm, MS: m.cfg.ID})
				}
			})
			m.pending = pendingNone
			return
		}
		// A failed registration leaves the MS detached; a blocked call
		// attempt returns a registered MS to idle.
		if m.pending == pendingRegister {
			m.state = MSDetached
			if m.cfg.Hooks.OnRegisterFailed != nil {
				m.cfg.Hooks.OnRegisterFailed()
			}
		} else {
			m.state = MSIdle
		}
		m.pending = pendingNone
		return
	}
	m.retries = 0
	m.channel = t.Channel
	switch m.pending {
	case pendingRegister:
		m.state = MSRegistering
		env.Send(m.cfg.ID, m.cfg.BTS, LocationUpdate{
			Leg: LegUm, MS: m.cfg.ID, Identity: m.identity(), LAI: m.cfg.LAI,
		})
	case pendingDial:
		m.state = MSDialing
		m.nextRef++
		m.callRef = m.nextRef
		env.Send(m.cfg.ID, m.cfg.BTS, Setup{
			Leg: LegUm, MS: m.cfg.ID, CallRef: m.callRef,
			Called: m.dialled, Calling: m.cfg.MSISDN,
		})
	case pendingPageResponse:
		m.state = MSIdle // connected on a channel, waiting for MT Setup
		env.Send(m.cfg.ID, m.cfg.BTS, PagingResponse{
			Leg: LegUm, MS: m.cfg.ID, Identity: m.identity(),
		})
	case pendingDetach:
		env.Send(m.cfg.ID, m.cfg.BTS, IMSIDetach{
			Leg: LegUm, MS: m.cfg.ID, Identity: m.identity(),
		})
		m.state = MSDetached
		m.hasTMSI = false
	}
	m.pending = pendingNone
}

func (m *MS) onPaging(env *sim.Env, t Paging) {
	if m.state != MSIdle {
		return // busy; no paging response -> network times out
	}
	m.pending = pendingPageResponse
	m.requestChannel(env, true)
}

func (m *MS) onIncomingSetup(env *sim.Env, t Setup) {
	if m.state != MSIdle {
		return
	}
	m.callRef = t.CallRef
	m.state = MSRinging
	env.Send(m.cfg.ID, m.cfg.BTS, CallConfirmed{Leg: LegUm, MS: m.cfg.ID, CallRef: t.CallRef})
	env.Send(m.cfg.ID, m.cfg.BTS, Alerting{Leg: LegUm, MS: m.cfg.ID, CallRef: t.CallRef})
	if m.cfg.Hooks.OnIncoming != nil {
		m.cfg.Hooks.OnIncoming(t.CallRef, t.Calling)
	}
	if m.cfg.AutoAnswer {
		env.After(m.cfg.AnswerDelay, func() { m.Answer(env) })
	}
}

func (m *MS) onHandoverCommand(env *sim.Env, t HandoverCommand) {
	if m.state != MSInCall {
		return
	}
	oldBTS := m.cfg.BTS
	m.cfg.BTS = t.TargetBTS
	m.channel = t.Channel
	env.Send(m.cfg.ID, m.cfg.BTS, HandoverAccess{Leg: LegUm, MS: m.cfg.ID, CallRef: t.CallRef})
	env.Send(m.cfg.ID, m.cfg.BTS, HandoverComplete{Leg: LegUm, MS: m.cfg.ID, CallRef: t.CallRef})
	if m.cfg.Hooks.OnHandover != nil {
		m.cfg.Hooks.OnHandover(t.TargetBTS)
	}
	_ = oldBTS
}

// startTalking begins the uplink speech-frame clock.
func (m *MS) startTalking(env *sim.Env) {
	if !m.cfg.Talk || m.talking {
		return
	}
	m.talking = true
	if m.cfg.DTX && m.speech == nil {
		m.speech = codec.NewSource(env.Rand().Int63(), 0, 0)
	}
	ref := m.callRef
	var tick func()
	tick = func() {
		if !m.talking || m.callRef != ref || m.state != MSInCall {
			return
		}
		// DTX: silent frames are suppressed entirely (the vocoder's VAD);
		// the frame clock keeps running.
		if m.speech == nil || m.speech.Next() {
			m.seq++
			m.txFrames++
			// The frame buffer is reused every interval: everything
			// downstream (BTS/BSC relay, VMSC transcode-at-arrival) copies
			// or finishes with the payload well inside one FrameInterval,
			// and nothing may retain it (OnFrame consumers included).
			if m.frameBuf == nil {
				m.frameBuf = make([]byte, codec.FrameBytes)
			}
			codec.FrameInto(m.frameBuf, env.Now(), m.seq)
			env.Send(m.cfg.ID, m.cfg.BTS, TCHFrame{
				Leg: LegUm, MS: m.cfg.ID, CallRef: ref, Seq: m.seq,
				Payload: m.frameBuf,
			})
		}
		env.After(m.cfg.FrameInterval, tick)
	}
	env.After(m.cfg.FrameInterval, tick)
}

func (m *MS) stopTalking() { m.talking = false }

// schedulePeriodicUpdate arms the T3212 periodic registration timer. The
// update runs only if the MS is still idle when it fires (a call or a
// movement-triggered update resets the cycle via the next accept).
func (m *MS) schedulePeriodicUpdate(env *sim.Env) {
	if m.cfg.PeriodicUpdate <= 0 {
		return
	}
	tmsiAtArm := m.tmsi
	env.After(m.cfg.PeriodicUpdate, func() {
		if m.state == MSIdle && m.tmsi == tmsiAtArm {
			_ = m.UpdateLocation(env)
		}
	})
}

// SpeechPayload builds a GSM full-rate-sized frame whose first bytes carry
// the generation time, letting media-path benches measure one-way delay end
// to end through every transcoding hop (the hops must preserve payload
// bytes, as a transparent vocoder path does).
func SpeechPayload(now time.Duration, seq uint32) []byte {
	return codec.NewFrame(now, seq)
}

// SpeechTimestamp extracts the generation time embedded by SpeechPayload.
func SpeechTimestamp(payload []byte) (time.Duration, bool) {
	return codec.FrameTimestamp(payload)
}
