package gsm

import (
	"errors"
	"fmt"

	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
	"vgprs/internal/wire"
)

// ErrBadMessage is returned when a layer-3 message fails to decode.
var ErrBadMessage = errors.New("gsm: malformed layer-3 message")

// GSM 04.08 protocol discriminators (low nibble of octet 1).
const (
	pdCC uint8 = 0x03 // call control
	pdMM uint8 = 0x05 // mobility management
	pdRR uint8 = 0x06 // radio resource
	// pdSim frames the simulation-level carriers (TCH frames, LLC frames,
	// channel access) that are not 04.08 L3 messages.
	pdSim uint8 = 0x0E
)

// GSM 04.08 message types (selected real values; simulation carriers use
// the pdSim space).
const (
	mtLocationUpdateRequest uint8 = 0x08 // MM
	mtLocationUpdateAccept  uint8 = 0x02 // MM
	mtLocationUpdateReject  uint8 = 0x04 // MM
	mtAuthRequest           uint8 = 0x12 // MM
	mtAuthResponse          uint8 = 0x14 // MM

	mtCipherModeCommand  uint8 = 0x35 // RR
	mtCipherModeComplete uint8 = 0x32 // RR
	mtPagingRequest      uint8 = 0x21 // RR
	mtPagingResponse     uint8 = 0x27 // RR
	mtMeasurementReport  uint8 = 0x15 // RR
	mtHandoverCommand    uint8 = 0x2B // RR
	mtHandoverComplete   uint8 = 0x2C // RR
	mtHandoverAccess     uint8 = 0x3B // RR (simulation: access burst stand-in)
	mtHandoverRequired   uint8 = 0x3C // BSSMAP in reality; carried here for the A leg
	mtImmediateAssign    uint8 = 0x3F // RR

	mtAlerting        uint8 = 0x01 // CC
	mtSetup           uint8 = 0x05 // CC
	mtConnect         uint8 = 0x07 // CC
	mtCallConfirmed   uint8 = 0x08 // CC
	mtDisconnect      uint8 = 0x25 // CC
	mtRelease         uint8 = 0x2D // CC
	mtReleaseComplete uint8 = 0x2A // CC

	mtIMSIDetach uint8 = 0x01 // MM: IMSI detach indication

	mtChannelRequest uint8 = 0x01 // pdSim
	mtTCHFrame       uint8 = 0x02 // pdSim
	mtLLCFrame       uint8 = 0x03 // pdSim
)

// header writes the common preamble: protocol discriminator, message type,
// leg, and the MS correlation handle (the simulation's stand-in for the
// dedicated-channel binding).
func header(w *wire.Writer, pd, mt uint8, leg Leg, ms sim.NodeID) {
	w.U8(pd)
	w.U8(mt)
	w.U8(uint8(leg))
	w.String8(string(ms))
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Marshal encodes a radio-access layer-3 message (or simulation carrier)
// into its wire form, returning a fresh buffer the caller owns.
func Marshal(msg sim.Message) ([]byte, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	if err := encode(w, msg); err != nil {
		return nil, err
	}
	return w.CopyBytes(), nil
}

// Append encodes a radio-access layer-3 message onto dst and returns the
// extended slice. On error dst is returned unchanged.
func Append(dst []byte, msg sim.Message) ([]byte, error) {
	w := wire.Wrap(dst)
	if err := encode(&w, msg); err != nil {
		return dst, err
	}
	return w.Bytes(), nil
}

func encode(w *wire.Writer, msg sim.Message) error {
	switch m := msg.(type) {
	case ChannelRequest:
		header(w, pdSim, mtChannelRequest, m.Leg, m.MS)
		w.U8(boolByte(m.ForPaging))
	case ImmediateAssignment:
		header(w, pdRR, mtImmediateAssign, m.Leg, m.MS)
		w.U16(m.Channel)
		w.U8(boolByte(m.Rejected))
	case LocationUpdate:
		header(w, pdMM, mtLocationUpdateRequest, m.Leg, m.MS)
		m.Identity.Marshal(w)
		gsmid.MarshalLAI(w, m.LAI)
	case LocationUpdateAccept:
		header(w, pdMM, mtLocationUpdateAccept, m.Leg, m.MS)
		w.U32(uint32(m.TMSI))
	case LocationUpdateReject:
		header(w, pdMM, mtLocationUpdateReject, m.Leg, m.MS)
		w.U8(m.Cause)
	case AuthRequest:
		header(w, pdMM, mtAuthRequest, m.Leg, m.MS)
		w.Raw(m.RAND[:])
	case AuthResponse:
		header(w, pdMM, mtAuthResponse, m.Leg, m.MS)
		w.Raw(m.SRES[:])
	case CipherModeCommand:
		header(w, pdRR, mtCipherModeCommand, m.Leg, m.MS)
	case CipherModeComplete:
		header(w, pdRR, mtCipherModeComplete, m.Leg, m.MS)
	case Setup:
		header(w, pdCC, mtSetup, m.Leg, m.MS)
		w.U32(m.CallRef)
		w.BCD(string(m.Called))
		w.BCD(string(m.Calling))
	case CallConfirmed:
		header(w, pdCC, mtCallConfirmed, m.Leg, m.MS)
		w.U32(m.CallRef)
	case Alerting:
		header(w, pdCC, mtAlerting, m.Leg, m.MS)
		w.U32(m.CallRef)
	case Connect:
		header(w, pdCC, mtConnect, m.Leg, m.MS)
		w.U32(m.CallRef)
	case Disconnect:
		header(w, pdCC, mtDisconnect, m.Leg, m.MS)
		w.U32(m.CallRef)
	case Release:
		header(w, pdCC, mtRelease, m.Leg, m.MS)
		w.U32(m.CallRef)
	case ReleaseComplete:
		header(w, pdCC, mtReleaseComplete, m.Leg, m.MS)
		w.U32(m.CallRef)
	case IMSIDetach:
		header(w, pdMM, mtIMSIDetach, m.Leg, m.MS)
		m.Identity.Marshal(w)
	case Paging:
		header(w, pdRR, mtPagingRequest, m.Leg, m.MS)
		m.Identity.Marshal(w)
	case PagingResponse:
		header(w, pdRR, mtPagingResponse, m.Leg, m.MS)
		m.Identity.Marshal(w)
	case TCHFrame:
		header(w, pdSim, mtTCHFrame, m.Leg, m.MS)
		w.U32(m.CallRef)
		w.U32(m.Seq)
		w.U8(boolByte(m.Downlink))
		w.Bytes16(m.Payload)
	case MeasurementReport:
		header(w, pdRR, mtMeasurementReport, m.Leg, m.MS)
		gsmid.MarshalLAI(w, m.TargetCell.LAI)
		w.U16(m.TargetCell.CI)
	case HandoverRequired:
		header(w, pdRR, mtHandoverRequired, m.Leg, m.MS)
		w.U32(m.CallRef)
		gsmid.MarshalLAI(w, m.TargetCell.LAI)
		w.U16(m.TargetCell.CI)
	case HandoverCommand:
		header(w, pdRR, mtHandoverCommand, m.Leg, m.MS)
		w.U32(m.CallRef)
		gsmid.MarshalLAI(w, m.TargetCell.LAI)
		w.U16(m.TargetCell.CI)
		w.String8(string(m.TargetBTS))
		w.U16(m.Channel)
	case HandoverAccess:
		header(w, pdRR, mtHandoverAccess, m.Leg, m.MS)
		w.U32(m.CallRef)
	case HandoverComplete:
		header(w, pdRR, mtHandoverComplete, m.Leg, m.MS)
		w.U32(m.CallRef)
	case LLCFrame:
		header(w, pdSim, mtLLCFrame, m.Leg, m.MS)
		w.U32(uint32(m.TLLI))
		w.U8(boolByte(m.Downlink))
		w.Bytes16(m.Payload)
	default:
		return fmt.Errorf("gsm: cannot marshal %T", msg)
	}
	return nil
}

// Unmarshal decodes a radio-access layer-3 message.
func Unmarshal(b []byte) (sim.Message, error) {
	var r wire.Reader
	r.Reset(b)
	pd := r.U8()
	mt := r.U8()
	leg := Leg(r.U8())
	ms := sim.NodeID(r.String8())

	var msg sim.Message
	switch {
	case pd == pdSim && mt == mtChannelRequest:
		msg = ChannelRequest{Leg: leg, MS: ms, ForPaging: r.U8() != 0}
	case pd == pdRR && mt == mtImmediateAssign:
		msg = ImmediateAssignment{Leg: leg, MS: ms, Channel: r.U16(), Rejected: r.U8() != 0}
	case pd == pdMM && mt == mtLocationUpdateRequest:
		m := LocationUpdate{Leg: leg, MS: ms}
		m.Identity = gsmid.UnmarshalMobileIdentity(&r)
		m.LAI = gsmid.UnmarshalLAI(&r)
		msg = m
	case pd == pdMM && mt == mtLocationUpdateAccept:
		msg = LocationUpdateAccept{Leg: leg, MS: ms, TMSI: gsmid.TMSI(r.U32())}
	case pd == pdMM && mt == mtLocationUpdateReject:
		msg = LocationUpdateReject{Leg: leg, MS: ms, Cause: r.U8()}
	case pd == pdMM && mt == mtAuthRequest:
		m := AuthRequest{Leg: leg, MS: ms}
		r.Fill(m.RAND[:])
		msg = m
	case pd == pdMM && mt == mtAuthResponse:
		m := AuthResponse{Leg: leg, MS: ms}
		r.Fill(m.SRES[:])
		msg = m
	case pd == pdRR && mt == mtCipherModeCommand:
		msg = CipherModeCommand{Leg: leg, MS: ms}
	case pd == pdRR && mt == mtCipherModeComplete:
		msg = CipherModeComplete{Leg: leg, MS: ms}
	case pd == pdCC && mt == mtSetup:
		msg = Setup{Leg: leg, MS: ms, CallRef: r.U32(),
			Called: gsmid.MSISDN(r.BCD()), Calling: gsmid.MSISDN(r.BCD())}
	case pd == pdCC && mt == mtCallConfirmed:
		msg = CallConfirmed{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdCC && mt == mtAlerting:
		msg = Alerting{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdCC && mt == mtConnect:
		msg = Connect{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdCC && mt == mtDisconnect:
		msg = Disconnect{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdCC && mt == mtRelease:
		msg = Release{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdCC && mt == mtReleaseComplete:
		msg = ReleaseComplete{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdMM && mt == mtIMSIDetach:
		m := IMSIDetach{Leg: leg, MS: ms}
		m.Identity = gsmid.UnmarshalMobileIdentity(&r)
		msg = m
	case pd == pdRR && mt == mtPagingRequest:
		m := Paging{Leg: leg, MS: ms}
		m.Identity = gsmid.UnmarshalMobileIdentity(&r)
		msg = m
	case pd == pdRR && mt == mtPagingResponse:
		m := PagingResponse{Leg: leg, MS: ms}
		m.Identity = gsmid.UnmarshalMobileIdentity(&r)
		msg = m
	case pd == pdSim && mt == mtTCHFrame:
		msg = TCHFrame{Leg: leg, MS: ms, CallRef: r.U32(), Seq: r.U32(),
			Downlink: r.U8() != 0, Payload: r.Bytes16()}
	case pd == pdRR && mt == mtMeasurementReport:
		m := MeasurementReport{Leg: leg, MS: ms}
		m.TargetCell.LAI = gsmid.UnmarshalLAI(&r)
		m.TargetCell.CI = r.U16()
		msg = m
	case pd == pdRR && mt == mtHandoverRequired:
		m := HandoverRequired{Leg: leg, MS: ms, CallRef: r.U32()}
		m.TargetCell.LAI = gsmid.UnmarshalLAI(&r)
		m.TargetCell.CI = r.U16()
		msg = m
	case pd == pdRR && mt == mtHandoverCommand:
		m := HandoverCommand{Leg: leg, MS: ms, CallRef: r.U32()}
		m.TargetCell.LAI = gsmid.UnmarshalLAI(&r)
		m.TargetCell.CI = r.U16()
		m.TargetBTS = sim.NodeID(r.String8())
		m.Channel = r.U16()
		msg = m
	case pd == pdRR && mt == mtHandoverAccess:
		msg = HandoverAccess{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdRR && mt == mtHandoverComplete:
		msg = HandoverComplete{Leg: leg, MS: ms, CallRef: r.U32()}
	case pd == pdSim && mt == mtLLCFrame:
		msg = LLCFrame{Leg: leg, MS: ms, TLLI: gsmid.TLLI(r.U32()),
			Downlink: r.U8() != 0, Payload: r.Bytes16()}
	default:
		return nil, fmt.Errorf("%w: unknown PD/MT %#x/%#x", ErrBadMessage, pd, mt)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, r.Remaining())
	}
	return msg, nil
}
