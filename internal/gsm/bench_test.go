package gsm

import (
	"testing"

	"vgprs/internal/gsmid"
)

func BenchmarkMarshalSetup(b *testing.B) {
	m := Setup{Leg: LegUm, MS: "MS-1", CallRef: 5, Called: "886200000001", Calling: "886900000001"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalSetup(b *testing.B) {
	m := Setup{Leg: LegUm, MS: "MS-1", CallRef: 5, Called: "886200000001", Calling: "886900000001"}
	buf, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalTCHFrame(b *testing.B) {
	m := TCHFrame{Leg: LegUm, MS: "MS-1", CallRef: 5, Seq: 9, Payload: SpeechPayload(0, 9)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWithLeg(b *testing.B) {
	m := LocationUpdate{Leg: LegUm, MS: "MS-1", Identity: gsmid.ByTMSI(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = WithLeg(m, LegAbis)
	}
}
