package gsm

import (
	"reflect"
	"testing"

	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
)

// FuzzDecode hammers the layer-3 codec with arbitrary bytes. The decoder
// must never panic, and any message it accepts must survive a
// marshal/unmarshal round trip unchanged — the property the A and Abis
// relays rely on when a PDU is re-encoded from its decoded form, and the
// media plane relies on for TCH frames specifically.
func FuzzDecode(f *testing.F) {
	lai := gsmid.LAI{MCC: "466", MNC: "92", LAC: 0x2A}
	for _, msg := range []sim.Message{
		ChannelRequest{MS: "MS-1", ForPaging: true},
		ImmediateAssignment{Leg: LegAbis, MS: "MS-1", Channel: 3},
		LocationUpdate{Leg: LegUm, MS: "MS-1",
			Identity: gsmid.MobileIdentity{Kind: gsmid.IdentityIMSI, IMSI: "466920000000001"}, LAI: lai},
		LocationUpdateAccept{Leg: LegA, MS: "MS-1", TMSI: 0x1234},
		AuthRequest{Leg: LegA, MS: "MS-1", RAND: [16]byte{0xDE, 0xAD, 0xBE, 0xEF}},
		Setup{Leg: LegUm, MS: "MS-1", CallRef: 7, Called: "0911222333", Calling: "0911000111"},
		Connect{Leg: LegA, MS: "MS-1", CallRef: 7},
		ReleaseComplete{Leg: LegUm, MS: "MS-1", CallRef: 7},
		Paging{Leg: LegAbis, MS: "MS-1", Identity: gsmid.MobileIdentity{Kind: gsmid.IdentityTMSI, TMSI: 0x99}},
		TCHFrame{Leg: LegUm, MS: "MS-1", CallRef: 7, Seq: 42,
			Payload: []byte{0xD0, 0x01, 0x02, 0x03}},
		TCHFrame{Leg: LegA, MS: "MS-2", CallRef: 8, Seq: 1, Downlink: true, Payload: nil},
		LLCFrame{Leg: LegUm, MS: "MS-1", TLLI: gsmid.LocalTLLI(0x77),
			Payload: []byte{0x03, 0x06, 0xAA}},
		MeasurementReport{Leg: LegUm, MS: "MS-1", TargetCell: gsmid.CGI{LAI: lai, CI: 9}},
		HandoverCommand{Leg: LegUm, MS: "MS-1", CallRef: 7, TargetCell: gsmid.CGI{LAI: lai, CI: 9}, TargetBTS: "BTS-2", Channel: 5},
	} {
		b, err := Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{pdSim})
	f.Add([]byte{pdCC, mtSetup})
	f.Add([]byte{0xFF, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := Unmarshal(b)
		if err != nil {
			return
		}
		out, err := Marshal(msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", msg, err)
		}
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshalled %T does not decode: %v", msg, err)
		}
		if !reflect.DeepEqual(back, msg) {
			t.Fatalf("round trip changed message:\n got %#v\nwant %#v", back, msg)
		}
	})
}
