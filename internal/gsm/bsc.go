package gsm

import (
	"vgprs/internal/gb"
	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
)

// BSCConfig parameterises a base station controller.
type BSCConfig struct {
	ID sim.NodeID
	// MSC is the circuit-switched controller (an MSC or a VMSC — the BSC
	// cannot tell the difference, which is the paper's compatibility
	// argument).
	MSC sim.NodeID
	// SGSN, when set, enables the packet control unit: LLC frames from
	// GPRS MSs are relayed over Gb (Fig 1).
	SGSN sim.NodeID
	// BTSs lists the cells under this BSC (used to fan out paging).
	BTSs []sim.NodeID
	// TCHCapacity bounds concurrently allocated dedicated channels;
	// zero means 64.
	TCHCapacity int
	// LocalCells are cells under this BSC; a measurement report naming a
	// cell outside this set escalates to the MSC as Handover Required.
	LocalCells map[gsmid.CGI]bool
	// Cell is the cell identity stamped on uplink Gb traffic.
	Cell gsmid.CGI
}

// BSC is a base station controller: it owns radio-channel allocation,
// relays layer-3 signalling between Abis and A, fans out paging, detects
// inter-system handover, and (through its PCU) bridges GPRS traffic onto
// the Gb interface.
type BSC struct {
	cfg BSCConfig

	channels  map[sim.NodeID]uint16 // MS -> allocated channel
	nextChan  uint16
	servingBy map[sim.NodeID]sim.NodeID // MS -> BTS (learned from uplink)
	blocked   uint64
}

var _ sim.Node = (*BSC)(nil)

// NewBSC returns a BSC.
func NewBSC(cfg BSCConfig) *BSC {
	if cfg.TCHCapacity == 0 {
		cfg.TCHCapacity = 64
	}
	return &BSC{
		cfg:       cfg,
		channels:  make(map[sim.NodeID]uint16),
		servingBy: make(map[sim.NodeID]sim.NodeID),
	}
}

// ID implements sim.Node.
func (b *BSC) ID() sim.NodeID { return b.cfg.ID }

// ChannelsInUse returns the number of allocated dedicated channels.
func (b *BSC) ChannelsInUse() int { return len(b.channels) }

// Blocked returns how many channel requests were refused for congestion.
func (b *BSC) Blocked() uint64 { return b.blocked }

// Receive implements sim.Node.
func (b *BSC) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch iface {
	case "Abis":
		b.fromBTS(env, from, msg)
	case "A":
		b.fromMSC(env, msg)
	case "Gb":
		b.fromSGSN(env, msg)
	}
}

// fromBTS handles uplink traffic.
func (b *BSC) fromBTS(env *sim.Env, bts sim.NodeID, msg sim.Message) {
	if ms := TargetMS(msg); ms != "" {
		b.servingBy[ms] = bts
	}
	switch m := msg.(type) {
	case ChannelRequest:
		b.allocate(env, bts, m)
	case ReleaseComplete:
		b.free(m.MS)
		env.Send(b.cfg.ID, b.cfg.MSC, relayLeg(env, msg, LegA))
	case IMSIDetach:
		// The detach indication is the MS's last transmission; its
		// channel returns to idle immediately (no acknowledgement).
		b.free(m.MS)
		env.Send(b.cfg.ID, b.cfg.MSC, relayLeg(env, msg, LegA))
	case LLCFrame:
		if b.cfg.SGSN == "" {
			return // no PCU installed
		}
		env.Send(b.cfg.ID, b.cfg.SGSN, gb.ULUnitdata{
			TLLI: m.TLLI, MS: m.MS, Cell: b.cfg.Cell, PDU: m.Payload,
		})
	case MeasurementReport:
		if b.cfg.LocalCells[m.TargetCell] {
			return // intra-BSC handover is invisible to the core network
		}
		env.Send(b.cfg.ID, b.cfg.MSC, HandoverRequired{
			Leg: LegA, MS: m.MS, TargetCell: m.TargetCell,
		})
	default:
		env.Send(b.cfg.ID, b.cfg.MSC, relayLeg(env, msg, LegA))
	}
}

// fromMSC handles downlink traffic.
func (b *BSC) fromMSC(env *sim.Env, msg sim.Message) {
	switch m := msg.(type) {
	case Paging:
		// Fan paging out to every cell; only the serving BTS has the MS.
		for _, bts := range b.cfg.BTSs {
			env.Send(b.cfg.ID, bts, relayLeg(env, msg, LegAbis))
		}
		return
	case LocationUpdateAccept:
		// Registration done: the dedicated channel is released.
		defer b.free(m.MS)
	case LocationUpdateReject:
		defer b.free(m.MS)
	case HandoverCommand:
		// The MS leaves this BSC's cells; its channel returns to idle.
		defer b.free(m.MS)
	case Release:
		// Channel returns once the MS answers with ReleaseComplete
		// (handled uplink); nothing extra here.
	}
	ms := TargetMS(msg)
	bts, ok := b.servingBy[ms]
	if !ok {
		// Never heard from this MS: try every cell.
		for _, cell := range b.cfg.BTSs {
			env.Send(b.cfg.ID, cell, relayLeg(env, msg, LegAbis))
		}
		return
	}
	env.Send(b.cfg.ID, bts, relayLeg(env, msg, LegAbis))
}

// fromSGSN handles downlink Gb traffic (PCU function). Realtime contexts
// arrive as reusable pointer messages (the SGSN's voice fast path); their
// PDU bytes stay valid through the Abis/Um relay because the MS consumes
// them at arrival, well inside one frame interval.
func (b *BSC) fromSGSN(env *sim.Env, msg sim.Message) {
	var dl gb.DLUnitdata
	switch m := msg.(type) {
	case gb.DLUnitdata:
		dl = m
	case *gb.DLUnitdata:
		dl = *m
	default:
		return
	}
	bts, known := b.servingBy[dl.MS]
	frame := LLCFrame{Leg: LegAbis, MS: dl.MS, TLLI: dl.TLLI, Downlink: true, Payload: dl.PDU}
	if known {
		env.Send(b.cfg.ID, bts, frame)
		return
	}
	for _, cell := range b.cfg.BTSs {
		env.Send(b.cfg.ID, cell, frame)
	}
}

func (b *BSC) allocate(env *sim.Env, bts sim.NodeID, req ChannelRequest) {
	if ch, ok := b.channels[req.MS]; ok {
		// Already holding a channel (repeat request): re-grant it.
		env.Send(b.cfg.ID, bts, ImmediateAssignment{Leg: LegAbis, MS: req.MS, Channel: ch})
		return
	}
	if len(b.channels) >= b.cfg.TCHCapacity {
		b.blocked++
		env.Send(b.cfg.ID, bts, ImmediateAssignment{Leg: LegAbis, MS: req.MS, Rejected: true})
		return
	}
	b.nextChan++
	b.channels[req.MS] = b.nextChan
	env.Send(b.cfg.ID, bts, ImmediateAssignment{Leg: LegAbis, MS: req.MS, Channel: b.nextChan})
}

func (b *BSC) free(ms sim.NodeID) {
	delete(b.channels, ms)
}
