// Package gsm implements the GSM radio-access side of the reproduction: the
// mobile station (MS), base transceiver station (BTS) and base station
// controller (BSC) state machines, and the layer-3 messages that cross the
// Um, Abis and A interfaces. Message names follow the paper's figures
// exactly ("Um_Setup", "Abis_Alerting", "A_Paging", ...), so recorded traces
// read like Figs 4-6.
//
// Correlation convention: every layer-3 message carries the MS's node ID.
// In real GSM this association is implicit in the dedicated radio channel /
// SCCP connection the message arrives on; carrying it explicitly is the
// simulation's stand-in for that channel binding. It is a node name, not a
// subscriber identity — IMSI confidentiality (experiment C4) is tracked via
// the Identity fields only.
package gsm

import (
	"fmt"

	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
)

// Leg names the interface a layer-3 message is currently crossing; relays
// (BTS, BSC) rewrite it hop by hop, which is what makes trace names match
// the paper's per-interface message naming.
type Leg uint8

// Legs of the radio-access signalling path.
const (
	LegUm Leg = iota + 1
	LegAbis
	LegA
)

// String names the leg.
func (l Leg) String() string {
	switch l {
	case LegUm:
		return "Um"
	case LegAbis:
		return "Abis"
	case LegA:
		return "A"
	default:
		return fmt.Sprintf("Leg(%d)", uint8(l))
	}
}

// ChannelRequest asks the network for a dedicated channel. The BTS relays
// it to the BSC (which owns channel allocation) as Abis_Channel_Required.
type ChannelRequest struct {
	Leg Leg
	MS  sim.NodeID
	// ForPaging marks a channel request triggered by a paging response.
	ForPaging bool
}

// Name implements sim.Message.
func (m ChannelRequest) Name() string {
	if m.Leg == LegAbis {
		return "Abis_Channel_Required"
	}
	return "Um_Channel_Request"
}

// ImmediateAssignment grants (or refuses) a dedicated channel.
type ImmediateAssignment struct {
	Leg     Leg
	MS      sim.NodeID
	Channel uint16
	// Rejected indicates no channel was available (radio congestion).
	Rejected bool
}

// Name implements sim.Message.
func (m ImmediateAssignment) Name() string {
	prefix := "Um_Immediate_Assignment"
	if m.Leg == LegAbis {
		prefix = "Abis_Immediate_Assign_Command"
	}
	if m.Rejected {
		return prefix + "_Reject"
	}
	return prefix
}

// LocationUpdate is the registration request (paper step 1.1). The paper
// names it Um_Location_Update_Request on the air interface and
// Abis_Location_Update / A_Location_Update upstream.
type LocationUpdate struct {
	Leg      Leg
	MS       sim.NodeID
	Identity gsmid.MobileIdentity
	LAI      gsmid.LAI
}

// Name implements sim.Message.
func (m LocationUpdate) Name() string {
	if m.Leg == LegUm {
		return "Um_Location_Update_Request"
	}
	return m.Leg.String() + "_Location_Update"
}

// LocationUpdateAccept completes registration toward the MS (paper step 1.6).
type LocationUpdateAccept struct {
	Leg  Leg
	MS   sim.NodeID
	TMSI gsmid.TMSI
}

// Name implements sim.Message.
func (m LocationUpdateAccept) Name() string { return m.Leg.String() + "_Location_Update_Accept" }

// LocationUpdateReject refuses registration.
type LocationUpdateReject struct {
	Leg   Leg
	MS    sim.NodeID
	Cause uint8
}

// Name implements sim.Message.
func (m LocationUpdateReject) Name() string { return m.Leg.String() + "_Location_Update_Reject" }

// AuthRequest carries the GSM challenge to the MS.
type AuthRequest struct {
	Leg  Leg
	MS   sim.NodeID
	RAND [16]byte
}

// Name implements sim.Message.
func (m AuthRequest) Name() string { return m.Leg.String() + "_Auth_Request" }

// AuthResponse returns the signed response from the SIM.
type AuthResponse struct {
	Leg  Leg
	MS   sim.NodeID
	SRES [4]byte
}

// Name implements sim.Message.
func (m AuthResponse) Name() string { return m.Leg.String() + "_Auth_Response" }

// CipherModeCommand starts ciphering on the radio path.
type CipherModeCommand struct {
	Leg Leg
	MS  sim.NodeID
}

// Name implements sim.Message.
func (m CipherModeCommand) Name() string { return m.Leg.String() + "_Cipher_Mode_Command" }

// CipherModeComplete confirms ciphering.
type CipherModeComplete struct {
	Leg Leg
	MS  sim.NodeID
}

// Name implements sim.Message.
func (m CipherModeComplete) Name() string { return m.Leg.String() + "_Cipher_Mode_Complete" }

// Setup starts a call. Mobile-originated: carries the dialled digits upward
// (paper step 2.1). Mobile-terminated: carries the calling number downward
// (paper step 4.5).
type Setup struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
	Called  gsmid.MSISDN
	Calling gsmid.MSISDN
}

// Name implements sim.Message.
func (m Setup) Name() string { return m.Leg.String() + "_Setup" }

// CallConfirmed acknowledges a mobile-terminated Setup.
type CallConfirmed struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m CallConfirmed) Name() string { return m.Leg.String() + "_Call_Confirmed" }

// Alerting indicates the far party is being rung (paper steps 2.7, 4.6); it
// triggers the ringback tone.
type Alerting struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m Alerting) Name() string { return m.Leg.String() + "_Alerting" }

// Connect indicates the far party answered (paper steps 2.8, 4.7).
type Connect struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m Connect) Name() string { return m.Leg.String() + "_Connect" }

// Disconnect starts call clearing (paper step 3.1).
type Disconnect struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m Disconnect) Name() string { return m.Leg.String() + "_Disconnect" }

// Release clears the call toward the MS.
type Release struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m Release) Name() string { return m.Leg.String() + "_Release" }

// ReleaseComplete finishes call clearing and frees the channel.
type ReleaseComplete struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m ReleaseComplete) Name() string { return m.Leg.String() + "_Release_Complete" }

// IMSIDetach tells the network the MS is powering off (GSM 04.08 IMSI
// detach indication; it has no acknowledgement).
type IMSIDetach struct {
	Leg      Leg
	MS       sim.NodeID
	Identity gsmid.MobileIdentity
}

// Name implements sim.Message.
func (m IMSIDetach) Name() string { return m.Leg.String() + "_IMSI_Detach" }

// Paging seeks an MS for a mobile-terminated call (paper step 4.4: A_Paging
// from the VMSC, Abis_Paging to the BTS, then the BTS pages the MS).
type Paging struct {
	Leg Leg
	MS  sim.NodeID
	// Identity is the paged identity broadcast over the air (TMSI when
	// allocated, never IMSI unless the VLR lost the TMSI).
	Identity gsmid.MobileIdentity
}

// Name implements sim.Message.
func (m Paging) Name() string {
	if m.Leg == LegUm {
		return "Um_Paging_Request"
	}
	return m.Leg.String() + "_Paging"
}

// PagingResponse answers a page (upward).
type PagingResponse struct {
	Leg      Leg
	MS       sim.NodeID
	Identity gsmid.MobileIdentity
}

// Name implements sim.Message.
func (m PagingResponse) Name() string { return m.Leg.String() + "_Paging_Response" }

// TCHFrame is one 20 ms speech frame on the traffic channel. Uplink frames
// flow MS->BTS->BSC->(V)MSC; downlink frames the reverse.
type TCHFrame struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
	Seq     uint32
	// Downlink marks network-to-MS direction.
	Downlink bool
	// Payload is a vocoder frame (codec.FrameBytes long for GSM FR).
	Payload []byte
}

// Name implements sim.Message.
func (m TCHFrame) Name() string { return m.Leg.String() + "_TCH_Frame" }

// MeasurementReport carries the MS's neighbour-cell measurements; a strong
// neighbour triggers handover (Fig 9).
type MeasurementReport struct {
	Leg        Leg
	MS         sim.NodeID
	TargetCell gsmid.CGI
}

// Name implements sim.Message.
func (m MeasurementReport) Name() string { return m.Leg.String() + "_Measurement_Report" }

// HandoverRequired tells the MSC the serving BSC cannot keep the call and
// names the target cell (A interface, BSC->MSC).
type HandoverRequired struct {
	Leg        Leg
	MS         sim.NodeID
	CallRef    uint32
	TargetCell gsmid.CGI
}

// Name implements sim.Message.
func (m HandoverRequired) Name() string { return m.Leg.String() + "_Handover_Required" }

// HandoverCommand orders the MS to the target cell/channel.
type HandoverCommand struct {
	Leg        Leg
	MS         sim.NodeID
	CallRef    uint32
	TargetCell gsmid.CGI
	// TargetBTS is the node the MS must access next — the simulation's
	// stand-in for the radio channel description in the command.
	TargetBTS sim.NodeID
	Channel   uint16
}

// Name implements sim.Message.
func (m HandoverCommand) Name() string { return m.Leg.String() + "_Handover_Command" }

// HandoverAccess is the MS's first burst on the target cell.
type HandoverAccess struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m HandoverAccess) Name() string { return m.Leg.String() + "_Handover_Access" }

// HandoverComplete confirms the MS arrived on the target system.
type HandoverComplete struct {
	Leg     Leg
	MS      sim.NodeID
	CallRef uint32
}

// Name implements sim.Message.
func (m HandoverComplete) Name() string { return m.Leg.String() + "_Handover_Complete" }

// LLCFrame carries a GPRS logical-link-control PDU between a GPRS MS and
// the BSC's packet control unit, which relays it over Gb (Fig 1 data path).
type LLCFrame struct {
	Leg  Leg
	MS   sim.NodeID
	TLLI gsmid.TLLI
	// Downlink marks network-to-MS direction.
	Downlink bool
	Payload  []byte
}

// Name implements sim.Message.
func (m LLCFrame) Name() string { return m.Leg.String() + "_LLC_Frame" }

// Interface-compliance assertions.
var (
	_ sim.Message = ChannelRequest{}
	_ sim.Message = ImmediateAssignment{}
	_ sim.Message = LocationUpdate{}
	_ sim.Message = LocationUpdateAccept{}
	_ sim.Message = LocationUpdateReject{}
	_ sim.Message = AuthRequest{}
	_ sim.Message = AuthResponse{}
	_ sim.Message = CipherModeCommand{}
	_ sim.Message = CipherModeComplete{}
	_ sim.Message = Setup{}
	_ sim.Message = CallConfirmed{}
	_ sim.Message = Alerting{}
	_ sim.Message = Connect{}
	_ sim.Message = Disconnect{}
	_ sim.Message = Release{}
	_ sim.Message = ReleaseComplete{}
	_ sim.Message = IMSIDetach{}
	_ sim.Message = Paging{}
	_ sim.Message = PagingResponse{}
	_ sim.Message = TCHFrame{}
	_ sim.Message = MeasurementReport{}
	_ sim.Message = HandoverRequired{}
	_ sim.Message = HandoverCommand{}
	_ sim.Message = HandoverAccess{}
	_ sim.Message = HandoverComplete{}
	_ sim.Message = LLCFrame{}
)
