package gsm

import (
	"testing"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

const (
	testIMSI   = gsmid.IMSI("466920000000001")
	testMSISDN = gsmid.MSISDN("886912345678")
)

var testKi = [16]byte{0xAA, 0xBB}

// scriptMSC is a minimal MSC that exercises the radio-access side: it runs
// authentication + ciphering + location-update accept, answers MO setups
// with Alerting/Connect, and clears calls.
type scriptMSC struct {
	id       sim.NodeID
	bsc      sim.NodeID
	got      []sim.Message
	tmsiSeq  uint32
	reject   bool
	frames   int
	answerMO bool
}

func (m *scriptMSC) ID() sim.NodeID { return m.id }

func (m *scriptMSC) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	m.got = append(m.got, msg)
	switch t := msg.(type) {
	case LocationUpdate:
		if m.reject {
			env.Send(m.id, m.bsc, LocationUpdateReject{Leg: LegA, MS: t.MS, Cause: 1})
			return
		}
		env.Send(m.id, m.bsc, AuthRequest{Leg: LegA, MS: t.MS, RAND: [16]byte{1}})
	case AuthResponse:
		env.Send(m.id, m.bsc, CipherModeCommand{Leg: LegA, MS: t.MS})
	case CipherModeComplete:
		m.tmsiSeq++
		env.Send(m.id, m.bsc, LocationUpdateAccept{Leg: LegA, MS: t.MS, TMSI: gsmid.TMSI(m.tmsiSeq)})
	case Setup:
		if m.answerMO {
			env.Send(m.id, m.bsc, Alerting{Leg: LegA, MS: t.MS, CallRef: t.CallRef})
			env.Send(m.id, m.bsc, Connect{Leg: LegA, MS: t.MS, CallRef: t.CallRef})
		}
	case Disconnect:
		env.Send(m.id, m.bsc, Release{Leg: LegA, MS: t.MS, CallRef: t.CallRef})
	case TCHFrame:
		m.frames++
	}
}

func (m *scriptMSC) count(name string) int {
	n := 0
	for _, g := range m.got {
		if g.Name() == name {
			n++
		}
	}
	return n
}

type radioFixture struct {
	env *sim.Env
	ms  *MS
	bts *BTS
	bsc *BSC
	msc *scriptMSC
	rec *trace.Recorder
}

func newRadioFixture(t *testing.T, msCfg MSConfig, bscCfg BSCConfig) *radioFixture {
	t.Helper()
	env := sim.NewEnv(1)
	rec := trace.NewRecorder()
	env.SetTracer(rec)

	if msCfg.ID == "" {
		msCfg.ID = "MS-1"
	}
	msCfg.IMSI = testIMSI
	msCfg.MSISDN = testMSISDN
	msCfg.Ki = testKi
	msCfg.BTS = "BTS-1"

	if bscCfg.ID == "" {
		bscCfg.ID = "BSC-1"
	}
	bscCfg.MSC = "MSC-1"
	bscCfg.BTSs = []sim.NodeID{"BTS-1"}

	ms := NewMS(msCfg)
	bts := NewBTS(BTSConfig{ID: "BTS-1", BSC: "BSC-1"})
	bsc := NewBSC(bscCfg)
	msc := &scriptMSC{id: "MSC-1", bsc: "BSC-1", answerMO: true}

	env.AddNode(ms)
	env.AddNode(bts)
	env.AddNode(bsc)
	env.AddNode(msc)
	env.Connect("MS-1", "BTS-1", "Um", time.Millisecond)
	env.Connect("BTS-1", "BSC-1", "Abis", time.Millisecond)
	env.Connect("BSC-1", "MSC-1", "A", time.Millisecond)

	return &radioFixture{env: env, ms: ms, bts: bts, bsc: bsc, msc: msc, rec: rec}
}

func TestRegistrationFlow(t *testing.T) {
	var gotTMSI gsmid.TMSI
	f := newRadioFixture(t, MSConfig{
		Hooks: MSHooks{OnRegistered: func(tmsi gsmid.TMSI) { gotTMSI = tmsi }},
	}, BSCConfig{})
	f.ms.PowerOn(f.env)
	f.env.Run()

	if f.ms.State() != MSIdle {
		t.Fatalf("state = %v", f.ms.State())
	}
	if gotTMSI == 0 {
		t.Fatal("OnRegistered not fired")
	}
	if tmsi, ok := f.ms.TMSI(); !ok || tmsi != gotTMSI {
		t.Fatalf("TMSI = %v/%v", tmsi, ok)
	}
	// Channel released after registration.
	if f.bsc.ChannelsInUse() != 0 {
		t.Fatalf("channels in use = %d", f.bsc.ChannelsInUse())
	}
	// The trace follows the paper's naming hop by hop.
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Channel_Request", From: "MS-1", To: "BTS-1", Iface: "Um"},
		{Msg: "Abis_Channel_Required", From: "BTS-1", To: "BSC-1", Iface: "Abis"},
		{Msg: "Um_Immediate_Assignment", To: "MS-1"},
		{Msg: "Um_Location_Update_Request", From: "MS-1", To: "BTS-1", Iface: "Um", Note: "1.1"},
		{Msg: "Abis_Location_Update", From: "BTS-1", To: "BSC-1", Iface: "Abis", Note: "1.1"},
		{Msg: "A_Location_Update", From: "BSC-1", To: "MSC-1", Iface: "A", Note: "1.1"},
		{Msg: "Um_Auth_Request", To: "MS-1"},
		{Msg: "A_Auth_Response", To: "MSC-1"},
		{Msg: "Um_Cipher_Mode_Command", To: "MS-1"},
		{Msg: "A_Cipher_Mode_Complete", To: "MSC-1"},
		{Msg: "Um_Location_Update_Accept", To: "MS-1", Note: "1.6"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationReject(t *testing.T) {
	failed := false
	f := newRadioFixture(t, MSConfig{
		Hooks: MSHooks{OnRegisterFailed: func() { failed = true }},
	}, BSCConfig{})
	f.msc.reject = true
	f.ms.PowerOn(f.env)
	f.env.Run()
	if !failed || f.ms.State() != MSDetached {
		t.Fatalf("failed=%v state=%v", failed, f.ms.State())
	}
	if f.bsc.ChannelsInUse() != 0 {
		t.Fatal("channel leaked after reject")
	}
}

func TestChannelCongestionBlocks(t *testing.T) {
	f := newRadioFixture(t, MSConfig{}, BSCConfig{TCHCapacity: 1})
	blocked := false
	ms2 := NewMS(MSConfig{
		ID: "MS-2", IMSI: "466920000000002", MSISDN: "886912345679",
		Ki: testKi, BTS: "BTS-1",
		Hooks: MSHooks{OnBlocked: func() { blocked = true }},
	})
	f.env.AddNode(ms2)
	f.env.Connect("MS-2", "BTS-1", "Um", time.Millisecond)

	// Occupy the only channel with a call in progress (MS-1 dials but the
	// far end never answers, so the channel stays held).
	f.msc.answerMO = false
	f.ms.PowerOn(f.env)
	f.env.Run()
	if err := f.ms.Dial(f.env, "886955555555"); err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	ms2.PowerOn(f.env)
	f.env.Run()
	if !blocked {
		t.Fatal("second MS was not blocked under TCHCapacity=1")
	}
	// The MS retries its random access with backoff before giving up, so
	// the BSC refuses more than once; the MS ends up detached.
	if f.bsc.Blocked() == 0 {
		t.Fatalf("Blocked = %d", f.bsc.Blocked())
	}
	if ms2.State() != MSDetached {
		t.Fatalf("blocked MS state = %v, want detached after retry budget", ms2.State())
	}
}

func TestMobileOriginatedCallAndClearing(t *testing.T) {
	var events []string
	f := newRadioFixture(t, MSConfig{
		Talk: true,
		Hooks: MSHooks{
			OnAlerting:  func(uint32) { events = append(events, "alerting") },
			OnConnected: func(uint32) { events = append(events, "connected") },
			OnReleased:  func(uint32) { events = append(events, "released") },
		},
	}, BSCConfig{})
	f.ms.PowerOn(f.env)
	f.env.Run()

	if err := f.ms.Dial(f.env, "886955555555"); err != nil {
		t.Fatal(err)
	}
	// Let the call run for half a second of conversation.
	f.env.RunUntil(f.env.Now() + 500*time.Millisecond)
	if f.ms.State() != MSInCall {
		t.Fatalf("state = %v", f.ms.State())
	}
	if f.msc.frames == 0 {
		t.Fatal("no uplink speech frames reached the MSC")
	}
	if err := f.ms.Hangup(f.env); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if f.ms.State() != MSIdle {
		t.Fatalf("state after hangup = %v", f.ms.State())
	}
	if f.bsc.ChannelsInUse() != 0 {
		t.Fatal("channel leaked after clearing")
	}
	want := []string{"alerting", "connected", "released"}
	if len(events) != 3 || events[0] != want[0] || events[1] != want[1] || events[2] != want[2] {
		t.Fatalf("events = %v", events)
	}
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Setup", From: "MS-1", Note: "2.1"},
		{Msg: "A_Setup", To: "MSC-1", Note: "2.1"},
		{Msg: "Um_Alerting", To: "MS-1", Note: "2.7"},
		{Msg: "Um_Connect", To: "MS-1", Note: "2.8"},
		{Msg: "Um_Disconnect", From: "MS-1", Note: "3.1"},
		{Msg: "A_Disconnect", To: "MSC-1", Note: "3.1"},
		{Msg: "Um_Release", To: "MS-1"},
		{Msg: "A_Release_Complete", To: "MSC-1"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMobileTerminatedCall(t *testing.T) {
	incoming := false
	f := newRadioFixture(t, MSConfig{
		AutoAnswer:  true,
		AnswerDelay: 50 * time.Millisecond,
		Hooks:       MSHooks{OnIncoming: func(uint32, gsmid.MSISDN) { incoming = true }},
	}, BSCConfig{})
	f.ms.PowerOn(f.env)
	f.env.Run()

	// The MSC pages and, on paging response, sends the MT Setup.
	pageAndSetup := func(env *sim.Env, ms sim.NodeID) {
		env.Send("MSC-1", "BSC-1", Paging{Leg: LegA, MS: ms, Identity: gsmid.ByTMSI(1)})
	}
	origReceive := f.msc.got
	_ = origReceive
	pageAndSetup(f.env, "MS-1")
	f.env.Run()
	if f.msc.count("A_Paging_Response") != 1 {
		t.Fatalf("paging responses = %d", f.msc.count("A_Paging_Response"))
	}
	f.env.Send("MSC-1", "BSC-1", Setup{Leg: LegA, MS: "MS-1", CallRef: 77, Calling: "886955555555"})
	f.env.Run()

	if !incoming {
		t.Fatal("OnIncoming not fired")
	}
	if f.ms.State() != MSInCall {
		t.Fatalf("state = %v", f.ms.State())
	}
	if f.msc.count("A_Alerting") != 1 || f.msc.count("A_Connect") != 1 {
		t.Fatalf("alerting=%d connect=%d", f.msc.count("A_Alerting"), f.msc.count("A_Connect"))
	}
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "A_Paging", From: "MSC-1", Note: "4.4"},
		{Msg: "Abis_Paging", From: "BSC-1", Note: "4.4"},
		{Msg: "Um_Paging_Request", To: "MS-1", Note: "4.4"},
		{Msg: "Um_Paging_Response", From: "MS-1", Note: "4.5"},
		{Msg: "Um_Setup", To: "MS-1", Note: "4.5"},
		{Msg: "Um_Alerting", From: "MS-1", Note: "4.6"},
		{Msg: "Um_Connect", From: "MS-1", Note: "4.7"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDownlinkSpeechReachesMS(t *testing.T) {
	var rx int
	f := newRadioFixture(t, MSConfig{
		Hooks: MSHooks{OnFrame: func(TCHFrame) { rx++ }},
	}, BSCConfig{})
	f.ms.PowerOn(f.env)
	f.env.Run()
	if err := f.ms.Dial(f.env, "886955555555"); err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	for i := range 5 {
		f.env.Send("MSC-1", "BSC-1", TCHFrame{
			Leg: LegA, MS: "MS-1", CallRef: 1, Seq: uint32(i), Downlink: true,
			Payload: SpeechPayload(f.env.Now(), uint32(i)),
		})
	}
	f.env.Run()
	if rx != 5 || f.ms.FramesReceived() != 5 {
		t.Fatalf("rx = %d, FramesReceived = %d", rx, f.ms.FramesReceived())
	}
}

func TestMeasurementReportEscalation(t *testing.T) {
	local := gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1}, CI: 1}
	foreignCell := gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 9}, CI: 9}
	f := newRadioFixture(t, MSConfig{}, BSCConfig{LocalCells: map[gsmid.CGI]bool{local: true}})
	f.ms.PowerOn(f.env)
	f.env.Run()
	if err := f.ms.Dial(f.env, "886955555555"); err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	f.ms.ReportNeighbor(f.env, local)
	f.env.Run()
	if f.msc.count("A_Handover_Required") != 0 {
		t.Fatal("intra-BSC target must not escalate")
	}
	f.ms.ReportNeighbor(f.env, foreignCell)
	f.env.Run()
	if f.msc.count("A_Handover_Required") != 1 {
		t.Fatal("foreign target must escalate to the MSC")
	}
}

func TestHandoverCommandMovesMS(t *testing.T) {
	var movedTo sim.NodeID
	f := newRadioFixture(t, MSConfig{
		Hooks: MSHooks{OnHandover: func(bts sim.NodeID) { movedTo = bts }},
	}, BSCConfig{})
	// A second radio subsystem.
	bts2 := NewBTS(BTSConfig{ID: "BTS-2", BSC: "BSC-2"})
	bsc2 := NewBSC(BSCConfig{ID: "BSC-2", MSC: "MSC-2", BTSs: []sim.NodeID{"BTS-2"}})
	msc2 := &scriptMSC{id: "MSC-2", bsc: "BSC-2"}
	f.env.AddNode(bts2)
	f.env.AddNode(bsc2)
	f.env.AddNode(msc2)
	f.env.Connect("MS-1", "BTS-2", "Um", time.Millisecond)
	f.env.Connect("BTS-2", "BSC-2", "Abis", time.Millisecond)
	f.env.Connect("BSC-2", "MSC-2", "A", time.Millisecond)

	f.ms.PowerOn(f.env)
	f.env.Run()
	if err := f.ms.Dial(f.env, "886955555555"); err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	f.env.Send("MSC-1", "BSC-1", HandoverCommand{
		Leg: LegA, MS: "MS-1", CallRef: f.ms.CallRef(),
		TargetBTS: "BTS-2", Channel: 9,
	})
	f.env.Run()

	if movedTo != "BTS-2" {
		t.Fatalf("movedTo = %q", movedTo)
	}
	if msc2.count("A_Handover_Access") != 1 || msc2.count("A_Handover_Complete") != 1 {
		t.Fatalf("target MSC saw access=%d complete=%d",
			msc2.count("A_Handover_Access"), msc2.count("A_Handover_Complete"))
	}
	if f.ms.State() != MSInCall {
		t.Fatalf("state after handover = %v", f.ms.State())
	}
}

type gbStub struct {
	id  sim.NodeID
	got []sim.Message
}

func (s *gbStub) ID() sim.NodeID { return s.id }

func (s *gbStub) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	s.got = append(s.got, msg)
}

func TestPCURelaysLLCOverGb(t *testing.T) {
	f := newRadioFixture(t, MSConfig{}, BSCConfig{SGSN: "SGSN-1"})
	sgsn := &gbStub{id: "SGSN-1"}
	f.env.AddNode(sgsn)
	f.env.Connect("BSC-1", "SGSN-1", "Gb", time.Millisecond)

	tlli := gsmid.LocalTLLI(gsmid.PTMSI(0x1234))
	f.env.Send("MS-1", "BTS-1", LLCFrame{Leg: LegUm, MS: "MS-1", TLLI: tlli, Payload: []byte{9, 9}})
	f.env.Run()

	if len(sgsn.got) != 1 {
		t.Fatalf("SGSN got %d messages", len(sgsn.got))
	}
	ul, ok := sgsn.got[0].(gb.ULUnitdata)
	if !ok || ul.TLLI != tlli || string(ul.PDU) != "\x09\x09" {
		t.Fatalf("UL = %#v", sgsn.got[0])
	}

	// Downlink back through the PCU to the MS.
	var rxDL []byte
	f.env.Send("SGSN-1", "BSC-1", gb.DLUnitdata{TLLI: tlli, MS: "MS-1", PDU: []byte{7}})
	f.env.Run()
	_ = rxDL
	// The MS silently ignores LLC frames (it is a plain GSM MS); what
	// matters is that the PCU routed the downlink frame into the right
	// cell and to the right MS.
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Gb_DL_UNITDATA", From: "SGSN-1", To: "BSC-1", Iface: "Gb"},
		{Msg: "Abis_LLC_Frame", From: "BSC-1", To: "BTS-1"},
		{Msg: "Um_LLC_Frame", From: "BTS-1", To: "MS-1"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWithLegForeignMessageUnchanged(t *testing.T) {
	m := foreignMsg{}
	if WithLeg(m, LegA) != m {
		t.Fatal("foreign message must pass through unchanged")
	}
	if TargetMS(m) != "" {
		t.Fatal("foreign message has no MS")
	}
}

func TestSpeechPayloadRoundTrip(t *testing.T) {
	p := SpeechPayload(42*time.Millisecond, 7)
	if len(p) != 33 {
		t.Fatalf("payload len = %d, want 33 (GSM FR frame)", len(p))
	}
	ts, ok := SpeechTimestamp(p)
	if !ok || ts != 42*time.Millisecond {
		t.Fatalf("timestamp = %v/%v", ts, ok)
	}
	if _, ok := SpeechTimestamp([]byte{1}); ok {
		t.Fatal("short payload must not decode")
	}
}

func TestDialWhileDetachedFails(t *testing.T) {
	f := newRadioFixture(t, MSConfig{}, BSCConfig{})
	if err := f.ms.Dial(f.env, "886955555555"); err == nil {
		t.Fatal("Dial before registration must fail")
	}
	if err := f.ms.Hangup(f.env); err == nil {
		t.Fatal("Hangup while idle must fail")
	}
}

func TestStateStrings(t *testing.T) {
	if MSIdle.String() != "idle" || MSState(99).String() != "MSState(99)" {
		t.Fatal("state strings wrong")
	}
	if LegUm.String() != "Um" || Leg(9).String() != "Leg(9)" {
		t.Fatal("leg strings wrong")
	}
}

type foreignMsg struct{}

func (foreignMsg) Name() string { return "FOREIGN" }

// TestDTXSuppressesSilence checks that discontinuous transmission gates the
// uplink frame stream with the Brady talk-spurt model: substantially fewer
// frames than continuous transmission, but not zero.
func TestDTXSuppressesSilence(t *testing.T) {
	run := func(dtx bool) uint64 {
		f := newRadioFixture(t, MSConfig{Talk: true, DTX: dtx}, BSCConfig{})
		f.ms.PowerOn(f.env)
		f.env.Run()
		if err := f.ms.Dial(f.env, "886955555555"); err != nil {
			t.Fatal(err)
		}
		f.env.RunUntil(f.env.Now() + 30*time.Second)
		return f.ms.FramesSent()
	}
	continuous := run(false)
	gated := run(true)
	if gated == 0 {
		t.Fatal("DTX suppressed everything")
	}
	ratio := float64(gated) / float64(continuous)
	// The Brady model's long-run activity is ~0.43.
	if ratio < 0.2 || ratio > 0.7 {
		t.Fatalf("DTX activity ratio = %.2f (sent %d of %d)", ratio, gated, continuous)
	}
}
