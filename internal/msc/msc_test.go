package msc

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/hlr"
	"vgprs/internal/isup"
	"vgprs/internal/pstn"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
	"vgprs/internal/vlr"
)

const (
	testIMSI    = gsmid.IMSI("466920000000001")
	testMSISDN  = gsmid.MSISDN("886912345678")
	phoneNumber = gsmid.MSISDN("886551234567")
)

var testKi = [16]byte{0x42}

type gsmFixture struct {
	env    *sim.Env
	rec    *trace.Recorder
	ms     *gsm.MS
	msc    *MSC
	vlr    *vlr.VLR
	hlr    *hlr.HLR
	phone  *pstn.Phone
	trunks *isup.TrunkGroup
}

// newGSMFixture builds a complete classic-GSM network:
// MS - BTS - BSC - MSC - VLR/HLR, with a GMSC+phone on the PSTN side.
func newGSMFixture(t *testing.T, msCfg gsm.MSConfig) *gsmFixture {
	t.Helper()
	env := sim.NewEnv(1)
	rec := trace.NewRecorder()
	env.SetTracer(rec)

	trunks := isup.NewTrunkGroup("MSC<->GMSC", isup.TrunkNational, 8)

	h := hlr.New(hlr.Config{ID: "HLR"})
	if err := h.Provision(hlr.Subscriber{
		IMSI: testIMSI, MSISDN: testMSISDN, Ki: testKi,
		Profile: sigmap.SubscriberProfile{MSISDN: testMSISDN, InternationalAllowed: true},
	}); err != nil {
		t.Fatal(err)
	}
	v := vlr.New(vlr.Config{
		ID: "VLR-1", HLR: "HLR", HomeCountryCode: "886", MSRNPrefix: "88690000",
	})
	m := New(Config{
		ID: "MSC-1", VLR: "VLR-1", PSTN: "GMSC",
		Trunks: map[sim.NodeID]*isup.TrunkGroup{"GMSC": trunks},
	})
	gmsc := pstn.NewExchange(pstn.ExchangeConfig{
		ID: "GMSC", HLR: "HLR", MobilePrefixes: []string{"88691"},
		Routes: []pstn.Route{
			{Prefix: "88690", Next: "MSC-1", Trunks: trunks},
			{Prefix: "88655", Next: "PHONE"},
		},
	})
	phone := pstn.NewPhone(pstn.PhoneConfig{
		ID: "PHONE", Number: phoneNumber, Exchange: "GMSC",
		AutoAnswer: true, AnswerDelay: 50 * time.Millisecond, Talk: true,
	})

	msCfg.ID = "MS-1"
	msCfg.IMSI = testIMSI
	msCfg.MSISDN = testMSISDN
	msCfg.Ki = testKi
	msCfg.BTS = "BTS-1"
	ms := gsm.NewMS(msCfg)
	bts := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-1", BSC: "BSC-1"})
	bsc := gsm.NewBSC(gsm.BSCConfig{ID: "BSC-1", MSC: "MSC-1", BTSs: []sim.NodeID{"BTS-1"}})

	for _, n := range []sim.Node{h, v, m, gmsc, phone, ms, bts, bsc} {
		env.AddNode(n)
	}
	env.Connect("MS-1", "BTS-1", "Um", time.Millisecond)
	env.Connect("BTS-1", "BSC-1", "Abis", time.Millisecond)
	env.Connect("BSC-1", "MSC-1", "A", time.Millisecond)
	env.Connect("MSC-1", "VLR-1", "B", time.Millisecond)
	env.Connect("VLR-1", "HLR", "D", time.Millisecond)
	env.Connect("GMSC", "HLR", "C", time.Millisecond)
	env.Connect("MSC-1", "GMSC", "ISUP", 2*time.Millisecond)
	env.Connect("PHONE", "GMSC", "Line", time.Millisecond)

	return &gsmFixture{env: env, rec: rec, ms: ms, msc: m, vlr: v, hlr: h, phone: phone, trunks: trunks}
}

func (f *gsmFixture) register(t *testing.T) {
	t.Helper()
	f.ms.PowerOn(f.env)
	f.env.RunUntil(f.env.Now() + 5*time.Second)
	if f.ms.State() != gsm.MSIdle {
		t.Fatalf("MS state = %v after registration", f.ms.State())
	}
}

func TestClassicRegistration(t *testing.T) {
	f := newGSMFixture(t, gsm.MSConfig{})
	f.register(t)
	if f.msc.RegisteredMS() != 1 {
		t.Fatalf("RegisteredMS = %d", f.msc.RegisteredMS())
	}
	rec, _ := f.hlr.Lookup(testIMSI)
	if rec.MSC != "MSC-1" || rec.VLR != "VLR-1" {
		t.Fatalf("HLR record = %+v", rec)
	}
	// The full Fig-4-minus-GPRS flow appears in the trace.
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Location_Update_Request", From: "MS-1"},
		{Msg: "A_Location_Update", To: "MSC-1"},
		{Msg: "MAP_UPDATE_LOCATION_AREA", From: "MSC-1", To: "VLR-1"},
		{Msg: "MAP_UPDATE_LOCATION", From: "VLR-1", To: "HLR"},
		{Msg: "MAP_INSERT_SUBS_DATA", From: "HLR", To: "VLR-1"},
		{Msg: "MAP_UPDATE_LOCATION_AREA_ack", From: "VLR-1", To: "MSC-1"},
		{Msg: "Um_Location_Update_Accept", To: "MS-1"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMobileOriginatedCallToPSTN(t *testing.T) {
	var events []string
	f := newGSMFixture(t, gsm.MSConfig{
		Talk: true,
		Hooks: gsm.MSHooks{
			OnAlerting:  func(uint32) { events = append(events, "alerting") },
			OnConnected: func(uint32) { events = append(events, "connected") },
		},
	})
	f.register(t)

	if err := f.ms.Dial(f.env, phoneNumber); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 2*time.Second)

	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if f.ms.State() != gsm.MSInCall || !f.phone.InCall() {
		t.Fatalf("states ms=%v phone-in-call=%v", f.ms.State(), f.phone.InCall())
	}
	// Voice flows in both directions across the trunk.
	if f.phone.FramesReceived() == 0 || f.ms.FramesReceived() == 0 {
		t.Fatalf("frames phone=%d ms=%d", f.phone.FramesReceived(), f.ms.FramesReceived())
	}
	if f.trunks.InUse() != 1 {
		t.Fatalf("trunks in use = %d", f.trunks.InUse())
	}

	if err := f.ms.Hangup(f.env); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + time.Second)
	if f.trunks.InUse() != 0 {
		t.Fatal("trunk leaked after clearing")
	}
	if f.msc.ActiveCalls() != 0 {
		t.Fatal("MSC call state leaked")
	}
	if f.phone.InCall() {
		t.Fatal("phone still in call")
	}
}

func TestMobileTerminatedCallFromPSTN(t *testing.T) {
	f := newGSMFixture(t, gsm.MSConfig{
		AutoAnswer: true, AnswerDelay: 50 * time.Millisecond, Talk: true,
	})
	f.register(t)

	connected := false
	f.phoneHook(func() { connected = true })
	if _, err := f.phone.Call(f.env, testMSISDN); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 3*time.Second)

	if !connected {
		t.Fatal("PSTN caller never connected")
	}
	if f.ms.State() != gsm.MSInCall {
		t.Fatalf("MS state = %v", f.ms.State())
	}
	// Voice both ways.
	if f.phone.FramesReceived() == 0 || f.ms.FramesReceived() == 0 {
		t.Fatalf("frames phone=%d ms=%d", f.phone.FramesReceived(), f.ms.FramesReceived())
	}
	// Call delivery went through HLR interrogation and paging.
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "ISUP_IAM", From: "PHONE", To: "GMSC"},
		{Msg: "MAP_SEND_ROUTING_INFORMATION", From: "GMSC", To: "HLR"},
		{Msg: "MAP_PROVIDE_ROAMING_NUMBER", From: "HLR", To: "VLR-1"},
		{Msg: "MAP_SEND_ROUTING_INFORMATION_ack", To: "GMSC"},
		{Msg: "ISUP_IAM", From: "GMSC", To: "MSC-1"},
		{Msg: "MAP_SEND_INFO_FOR_INCOMING_CALL", From: "MSC-1", To: "VLR-1"},
		{Msg: "A_Paging", From: "MSC-1"},
		{Msg: "Um_Paging_Request", To: "MS-1"},
		{Msg: "Um_Setup", To: "MS-1"},
		{Msg: "Um_Alerting", From: "MS-1"},
		{Msg: "ISUP_ACM", From: "MSC-1"},
		{Msg: "Um_Connect", From: "MS-1"},
		{Msg: "ISUP_ANM", From: "MSC-1"},
	}); err != nil {
		t.Fatal(err)
	}

	// Far-end clearing releases the MS.
	if err := f.phone.Hangup(f.env); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + time.Second)
	if f.ms.State() != gsm.MSIdle {
		t.Fatalf("MS state after far-end hangup = %v", f.ms.State())
	}
	if f.trunks.InUse() != 0 {
		t.Fatal("trunk leaked")
	}
}

// phoneHook installs an OnConnected hook on the fixture phone.
func (f *gsmFixture) phoneHook(onConnected func()) {
	// The phone's hooks are reachable through its config; pstn exposes
	// them via the struct literal only, so rebuild via a tiny adapter.
	f.phone.SetOnConnected(func(uint32) { onConnected() })
}

func TestMOCallToUnroutableNumberCleared(t *testing.T) {
	f := newGSMFixture(t, gsm.MSConfig{})
	f.register(t)
	// Dial an international number the GMSC has no route for: the call
	// must be released and every resource returned.
	released := false
	f.ms.SetOnReleased(func(uint32) { released = true })
	if err := f.ms.Dial(f.env, "85299998888"); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	if !released {
		t.Fatal("unroutable call was not released")
	}
	if f.msc.ActiveCalls() != 0 || f.trunks.InUse() != 0 {
		t.Fatal("state leaked after failed call")
	}
}

func TestHandoverTarget(t *testing.T) {
	f := newGSMFixture(t, gsm.MSConfig{})
	anchor := &anchorStub{id: "ANCHOR"}
	f.env.AddNode(anchor)
	f.env.Connect("ANCHOR", "MSC-1", "E", 2*time.Millisecond)

	// Anchor asks the target to prepare.
	f.env.Send("ANCHOR", "MSC-1", sigmap.PrepareHandover{
		Invoke: 77, IMSI: testIMSI, CallRef: 555,
		TargetCell: gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 2}, CI: 9},
	})
	f.env.Run()
	if anchor.ack.HandoverNumber == "" || anchor.ack.Cause != sigmap.CauseNone {
		t.Fatalf("PrepareHandoverAck = %+v", anchor.ack)
	}

	// Anchor sets up the trunk to the handover number.
	f.env.Send("ANCHOR", "MSC-1", isup.IAM{
		CIC: 7, CallRef: 555, Called: anchor.ack.HandoverNumber,
	})
	f.env.Run()
	if !anchor.answered {
		t.Fatal("handover trunk not answered")
	}

	// The MS arrives on the target BSC.
	f.env.Send("BSC-1", "MSC-1", gsm.HandoverComplete{Leg: gsm.LegA, MS: "MS-1", CallRef: 555})
	f.env.Run()
	if anchor.endSignal == nil {
		t.Fatal("no MAP_SEND_END_SIGNAL to the anchor")
	}

	// Voice now bridges trunk <-> radio in both directions.
	f.env.Send("ANCHOR", "MSC-1", isup.TrunkFrame{CIC: 7, CallRef: 555, Seq: 1, Payload: []byte{1}})
	f.env.Send("MS-1", "BTS-1", gsm.TCHFrame{Leg: gsm.LegUm, MS: "MS-1", CallRef: 555, Seq: 1, Payload: []byte{2}})
	f.env.Run()
	if f.ms.FramesReceived() != 1 {
		t.Fatalf("MS frames = %d", f.ms.FramesReceived())
	}
	if anchor.frames != 1 {
		t.Fatalf("anchor frames = %d", anchor.frames)
	}
}

type anchorStub struct {
	id        sim.NodeID
	ack       sigmap.PrepareHandoverAck
	endSignal *sigmap.SendEndSignal
	answered  bool
	frames    int
}

func (a *anchorStub) ID() sim.NodeID { return a.id }

func (a *anchorStub) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.PrepareHandoverAck:
		a.ack = m
	case sigmap.SendEndSignal:
		a.endSignal = &m
		env.Send(a.id, from, sigmap.SendEndSignalAck{Invoke: m.Invoke, CallRef: m.CallRef})
	case isup.ACM:
	case isup.ANM:
		a.answered = true
	case isup.TrunkFrame:
		a.frames++
	}
}

// TestIAMForStaleMSRNRefused covers the trunk-refusal path: an IAM arrives
// for an MSRN the VLR cannot resolve (expired or never allocated). The MSC
// must release the circuit with "unallocated number" rather than leave the
// trunk hanging.
func TestIAMForStaleMSRNRefused(t *testing.T) {
	f := newGSMFixture(t, gsm.MSConfig{})
	f.register(t)

	f.env.Send("GMSC", "MSC-1", isup.IAM{
		CIC: 7, CallRef: 0x7777, Called: "886900009999",
	})
	f.env.RunUntil(f.env.Now() + 2*time.Second)

	found := false
	for _, e := range f.rec.Entries() {
		rel, isREL := e.Msg.(isup.REL)
		if isREL && e.From == "MSC-1" && rel.CallRef == 0x7777 {
			if rel.Cause != isup.CauseUnallocatedNumber {
				t.Fatalf("release cause = %v", rel.Cause)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no ISUP REL for the unresolvable MSRN")
	}
	if f.msc.ActiveCalls() != 0 {
		t.Fatalf("MSC holds %d calls after the refusal", f.msc.ActiveCalls())
	}
}

// TestMTPagingTimeoutRefusesTrunk covers the no-answer branch: the callee
// never responds to paging (its Um link is down), so after PagingTimeout
// the MSC releases the trunk with "no answer".
func TestMTPagingTimeoutRefusesTrunk(t *testing.T) {
	f := newGSMFixture(t, gsm.MSConfig{})
	f.register(t)

	// Silence the MS: paging will never be answered.
	f.env.LinkBetween("BTS-1", "MS-1").Down = true

	var cause isup.ReleaseCause
	released := false
	f.phone.SetOnReleased(func(_ uint32, c isup.ReleaseCause) { released, cause = true, c })
	if _, err := f.phone.Call(f.env, testMSISDN); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 15*time.Second)

	if !released {
		t.Fatal("caller never released after paging timeout")
	}
	if cause != isup.CauseNoAnswer {
		t.Fatalf("release cause = %v, want no-answer", cause)
	}
	if f.trunks.InUse() != 0 {
		t.Fatal("trunk leaked after paging timeout")
	}
}
