package msc

import (
	"fmt"
	"sync"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/isup"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// HandoverTarget implements the target side of the GSM inter-system
// handover (paper Fig 9 and §7): handover-number allocation on MAP
// PrepareHandover, answering the anchor's trunk, matching the MS's arrival
// on the target radio system, notifying the anchor with SendEndSignal, and
// bridging voice between the trunk and the radio leg.
//
// Both the classic MSC and the VMSC embed one — the paper's remark that
// "inter-system handoff between two VMSCs follows the same procedure" is
// this shared component.
type HandoverTarget struct {
	// Node is the owning (V)MSC's ID.
	Node sim.NodeID
	// NumberPrefix prefixes allocated handover numbers.
	NumberPrefix string

	mu        sync.Mutex
	pending   map[gsmid.MSISDN]*hoTargetCtx
	byRef     map[uint32]*hoTargetCtx
	nextNum   uint32
	nextChan  uint16
	completed uint64
}

type hoTargetCtx struct {
	imsi     gsmid.IMSI
	callRef  uint32
	number   gsmid.MSISDN
	anchor   sim.NodeID
	anchorIv ss7.InvokeID
	channel  uint16

	cic       isup.CIC
	trunkPeer sim.NodeID
	haveTrunk bool

	ms      sim.NodeID
	bsc     sim.NodeID
	haveMS  bool
	seqDown uint32
	// msLeft is set once this MSC commands the MS onward in a subsequent
	// handover: the radio leg is gone, so a later trunk release must not
	// be forwarded to the (departed) MS.
	msLeft bool
}

// NewHandoverTarget returns an empty target.
func NewHandoverTarget(node sim.NodeID, numberPrefix string) *HandoverTarget {
	if numberPrefix == "" {
		numberPrefix = "88699"
	}
	return &HandoverTarget{
		Node:         node,
		NumberPrefix: numberPrefix,
		pending:      make(map[gsmid.MSISDN]*hoTargetCtx),
		byRef:        make(map[uint32]*hoTargetCtx),
	}
}

// Completed returns the number of handovers finished at this target.
func (h *HandoverTarget) Completed() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.completed
}

// Prepare handles MAP_PREPARE_HANDOVER: reserve a radio channel, allocate a
// handover number, and acknowledge the anchor.
func (h *HandoverTarget) Prepare(env *sim.Env, anchor sim.NodeID, t sigmap.PrepareHandover) {
	h.mu.Lock()
	h.nextNum++
	h.nextChan++
	number := gsmid.MSISDN(fmt.Sprintf("%s%05d", h.NumberPrefix, h.nextNum%100000))
	ctx := &hoTargetCtx{
		imsi: t.IMSI, callRef: t.CallRef, number: number,
		anchor: anchor, anchorIv: t.Invoke, channel: h.nextChan,
	}
	h.pending[number] = ctx
	h.byRef[t.CallRef] = ctx
	h.mu.Unlock()

	env.Send(h.Node, anchor, sigmap.PrepareHandoverAck{
		Invoke: t.Invoke, Cause: sigmap.CauseNone,
		HandoverNumber: number, RadioChannel: ctx.channel,
	})
}

// TrunkArrived consumes an IAM addressed to a pending handover number,
// answering it immediately (a network-internal leg). It reports whether the
// IAM belonged to a handover.
func (h *HandoverTarget) TrunkArrived(env *sim.Env, from sim.NodeID, t isup.IAM) bool {
	h.mu.Lock()
	ctx, ok := h.pending[t.Called]
	if ok {
		ctx.cic = t.CIC
		ctx.trunkPeer = from
		ctx.haveTrunk = true
		delete(h.pending, t.Called)
	}
	h.mu.Unlock()
	if !ok {
		return false
	}
	env.Send(h.Node, from, isup.ACM{CIC: t.CIC, CallRef: t.CallRef})
	env.Send(h.Node, from, isup.ANM{CIC: t.CIC, CallRef: t.CallRef})
	return true
}

// Complete consumes the MS's HandoverComplete on the target radio system
// and tells the anchor over MAP E. It reports whether the message belonged
// to a pending handover.
func (h *HandoverTarget) Complete(env *sim.Env, bsc sim.NodeID, t gsm.HandoverComplete) bool {
	h.mu.Lock()
	ctx, ok := h.byRef[t.CallRef]
	if ok {
		ctx.ms = t.MS
		ctx.bsc = bsc
		ctx.haveMS = true
		h.completed++
	}
	h.mu.Unlock()
	if !ok {
		return false
	}
	env.Send(h.Node, ctx.anchor, sigmap.SendEndSignal{Invoke: ctx.anchorIv, CallRef: t.CallRef})
	return true
}

// UplinkVoice bridges a handed-in MS's speech onto the anchor trunk,
// reporting whether the frame belonged to a handover.
func (h *HandoverTarget) UplinkVoice(env *sim.Env, t gsm.TCHFrame) bool {
	h.mu.Lock()
	ctx := h.forMS(t.MS)
	h.mu.Unlock()
	if ctx == nil || !ctx.haveTrunk {
		return false
	}
	env.Send(h.Node, ctx.trunkPeer, isup.TrunkFrame{
		CIC: ctx.cic, CallRef: ctx.callRef, Seq: t.Seq, Payload: t.Payload,
	})
	return true
}

// TrunkVoice bridges anchor-trunk speech down to the handed-in MS,
// reporting whether the frame belonged to a handover.
func (h *HandoverTarget) TrunkVoice(env *sim.Env, t isup.TrunkFrame) bool {
	h.mu.Lock()
	ctx, ok := h.byRef[t.CallRef]
	if ok && ctx.haveMS {
		ctx.seqDown++
	}
	h.mu.Unlock()
	if !ok || !ctx.haveMS {
		return false
	}
	env.Send(h.Node, ctx.bsc, gsm.TCHFrame{
		Leg: gsm.LegA, MS: ctx.ms, CallRef: ctx.callRef,
		Seq: ctx.seqDown, Downlink: true, Payload: t.Payload,
	})
	return true
}

// RadioDisconnect handles the handed-in MS hanging up: release toward the
// anchor and clear the local radio leg. It reports whether it consumed the
// message.
func (h *HandoverTarget) RadioDisconnect(env *sim.Env, t gsm.Disconnect) bool {
	h.mu.Lock()
	ctx := h.forMS(t.MS)
	if ctx != nil {
		delete(h.byRef, ctx.callRef)
	}
	h.mu.Unlock()
	if ctx == nil {
		return false
	}
	if ctx.haveTrunk {
		env.Send(h.Node, ctx.trunkPeer, isup.REL{
			CIC: ctx.cic, CallRef: ctx.callRef, Cause: isup.CauseNormalClearing,
		})
	}
	env.Send(h.Node, ctx.bsc, gsm.Release{Leg: gsm.LegA, MS: ctx.ms, CallRef: ctx.callRef})
	return true
}

// TrunkREL handles the anchor releasing the handover trunk: clear the local
// radio leg. It reports whether it consumed the message. The caller is
// responsible for the RLC.
func (h *HandoverTarget) TrunkREL(env *sim.Env, t isup.REL) bool {
	h.mu.Lock()
	ctx, ok := h.byRef[t.CallRef]
	if ok {
		delete(h.byRef, t.CallRef)
	}
	h.mu.Unlock()
	if !ok {
		return false
	}
	if ctx.haveMS && !ctx.msLeft {
		env.Send(h.Node, ctx.bsc, gsm.Release{Leg: gsm.LegA, MS: ctx.ms, CallRef: ctx.callRef})
	}
	return true
}

// SubsequentRequired handles a handed-in MS reporting a cell this MSC does
// not control: the relay MSC cannot decide a further handover itself — it
// asks the anchor over MAP E (GSM 03.09 subsequent handover). It reports
// whether the message belonged to a handed-in MS.
func (h *HandoverTarget) SubsequentRequired(env *sim.Env, t gsm.HandoverRequired) bool {
	h.mu.Lock()
	ctx := h.forMS(t.MS)
	h.mu.Unlock()
	if ctx == nil {
		return false
	}
	env.Send(h.Node, ctx.anchor, sigmap.PrepareSubsequentHandover{
		CallRef: ctx.callRef, TargetCell: t.TargetCell,
	})
	return true
}

// SubsequentAck consumes the anchor's answer: on success, command the MS
// toward the prepared target and mark the radio leg departed. The context
// itself stays until the anchor releases the trunk.
func (h *HandoverTarget) SubsequentAck(env *sim.Env, t sigmap.PrepareSubsequentHandoverAck) bool {
	h.mu.Lock()
	ctx, ok := h.byRef[t.CallRef]
	if ok && (t.Cause != sigmap.CauseNone || !ctx.haveMS || ctx.msLeft) {
		h.mu.Unlock()
		return true // refused, or nothing to move: the call stays put
	}
	if ok {
		ctx.msLeft = true
	}
	h.mu.Unlock()
	if !ok {
		return false
	}
	env.Send(h.Node, ctx.bsc, gsm.HandoverCommand{
		Leg: gsm.LegA, MS: ctx.ms, CallRef: t.CallRef,
		TargetCell: t.TargetCell, TargetBTS: sim.NodeID(t.TargetBTS),
		Channel: t.RadioChannel,
	})
	return true
}

// forMS finds a handed-in context by MS (callers hold h.mu).
func (h *HandoverTarget) forMS(ms sim.NodeID) *hoTargetCtx {
	for _, ctx := range h.byRef {
		if ctx.haveMS && !ctx.msLeft && ctx.ms == ms {
			return ctx
		}
	}
	return nil
}
