// Package msc implements the classic circuit-switched GSM MSC — the element
// the paper's VMSC replaces — plus the Registrar, the A-interface/VLR
// location-update engine that both the classic MSC and the VMSC share (their
// GSM signalling sides are identical by design; the paper's compatibility
// argument rests on exactly that).
//
// The classic MSC appears in the reproduction as the serving MSC of the
// tromboning baseline (Fig 7) and as the inter-system handoff target
// (Fig 9).
package msc

import (
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// Registration describes a completed (or failed) location update.
type Registration struct {
	MS       sim.NodeID
	BSC      sim.NodeID
	LAI      gsmid.LAI
	Identity gsmid.MobileIdentity
	IMSI     gsmid.IMSI
	TMSI     gsmid.TMSI
	MSISDN   gsmid.MSISDN
	Cause    sigmap.Cause
}

// OK reports whether the VLR accepted the update.
func (r Registration) OK() bool { return r.Cause == sigmap.CauseNone }

// Registrar drives the network side of the GSM location-update procedure
// between the A interface and the VLR (paper Fig 4 steps 1.1-1.2): it
// forwards the update to the VLR, relays the authentication challenge and
// ciphering command down the radio path, and reports the outcome to its
// owner. The owner decides when to send the Um-level accept — the VMSC
// defers it until after GPRS attach and gatekeeper registration (steps
// 1.3-1.6), while the classic MSC accepts immediately.
type Registrar struct {
	// Node is the owning (V)MSC's ID.
	Node sim.NodeID
	// VLR is the attached visitor location register.
	VLR sim.NodeID
	// RTO is the initial retransmission timeout for the UpdateLocationArea
	// invoke toward the VLR; it doubles on every retry. Zero means 1 second.
	RTO time.Duration
	// Retries bounds UpdateLocationArea retransmissions before the
	// transaction fails with CauseSystemFailure. Zero means 3.
	Retries int
	// OnOutcome fires when the VLR accepts or rejects the update.
	OnOutcome func(env *sim.Env, reg Registration)

	dm *ss7.DialogueManager
	// byIdentity finds the pending transaction when the VLR addresses the
	// MS by mobile identity (Authenticate, SetCipherMode). MobileIdentity
	// is comparable, so it keys the map directly — no String() formatting
	// on the hot path.
	byIdentity map[gsmid.MobileIdentity]*regTxn
	// byMS finds it when the radio path answers (AuthResponse, ...).
	byMS map[sim.NodeID]*regTxn
}

type regTxn struct {
	r            *Registrar
	env          *sim.Env
	reg          Registration
	vlrInvoke    ss7.InvokeID
	authInvoke   ss7.InvokeID
	cipherInvoke ss7.InvokeID
}

// NewRegistrar returns a Registrar.
func NewRegistrar(node, vlr sim.NodeID, onOutcome func(*sim.Env, Registration)) *Registrar {
	return &Registrar{
		Node:       node,
		VLR:        vlr,
		RTO:        time.Second,
		Retries:    3,
		OnOutcome:  onOutcome,
		dm:         ss7.NewDialogueManager(),
		byIdentity: make(map[gsmid.MobileIdentity]*regTxn),
		byMS:       make(map[sim.NodeID]*regTxn),
	}
}

// Retransmits returns the number of MAP request PDUs this registrar has
// re-sent toward its VLR.
func (r *Registrar) Retransmits() uint64 { return r.dm.Retransmits() }

// Pending returns in-flight location-update transactions plus un-answered
// MAP invokes toward the VLR. Zero at quiescence.
func (r *Registrar) Pending() int { return len(r.byMS) + r.dm.Outstanding() }

// Handle processes a message if it belongs to a location-update
// transaction, reporting whether it was consumed.
func (r *Registrar) Handle(env *sim.Env, from sim.NodeID, msg sim.Message) bool {
	switch m := msg.(type) {
	case gsm.LocationUpdate:
		r.start(env, from, m)
		return true
	case sigmap.Authenticate:
		txn, ok := r.byIdentity[m.Identity]
		if !ok {
			return false
		}
		txn.authInvoke = m.Invoke
		env.Send(r.Node, txn.reg.BSC, gsm.AuthRequest{Leg: gsm.LegA, MS: txn.reg.MS, RAND: m.RAND})
		return true
	case gsm.AuthResponse:
		txn, ok := r.byMS[m.MS]
		if !ok {
			return false
		}
		env.Send(r.Node, r.VLR, sigmap.AuthenticateAck{
			Invoke: txn.authInvoke, Cause: sigmap.CauseNone, SRES: m.SRES,
		})
		return true
	case sigmap.SetCipherMode:
		txn, ok := r.byIdentity[m.Identity]
		if !ok {
			return false
		}
		txn.cipherInvoke = m.Invoke
		env.Send(r.Node, txn.reg.BSC, gsm.CipherModeCommand{Leg: gsm.LegA, MS: txn.reg.MS})
		return true
	case gsm.CipherModeComplete:
		txn, ok := r.byMS[m.MS]
		if !ok {
			return false
		}
		env.Send(r.Node, r.VLR, sigmap.SetCipherModeAck{
			Invoke: txn.cipherInvoke, Cause: sigmap.CauseNone,
		})
		return true
	case sigmap.UpdateLocationAreaAck:
		return r.dm.Resolve(m.Invoke, msg)
	default:
		return false
	}
}

func (r *Registrar) start(env *sim.Env, bsc sim.NodeID, m gsm.LocationUpdate) {
	// A retransmitted LocationUpdate from the radio side must not spawn a
	// second VLR transaction while the first is in flight.
	if _, busy := r.byMS[m.MS]; busy {
		return
	}
	txn := &regTxn{r: r, env: env, reg: Registration{
		MS: m.MS, BSC: bsc, LAI: m.LAI, Identity: m.Identity,
	}}
	r.byIdentity[m.Identity] = txn
	r.byMS[m.MS] = txn

	txn.vlrInvoke = r.dm.InvokeRetryArg(regVLRDone, txn)
	r.dm.Transmit(env, txn.vlrInvoke, r.Node, r.VLR, sigmap.UpdateLocationArea{
		Invoke: txn.vlrInvoke, Identity: m.Identity, LAI: m.LAI, MSC: string(r.Node),
	}, r.RTO, r.Retries)
}

// regVLRDone completes the transaction when the VLR answers (or the invoke
// times out). The transaction record threads through InvokeArg, so starting
// a registration costs one allocation rather than a closure per step.
func regVLRDone(arg any, resp sim.Message, ok bool) {
	txn := arg.(*regTxn)
	r := txn.r
	ack, isAck := resp.(sigmap.UpdateLocationAreaAck)
	delete(r.byIdentity, txn.reg.Identity)
	delete(r.byMS, txn.reg.MS)
	reg := txn.reg
	if !ok || !isAck {
		reg.Cause = sigmap.CauseSystemFailure
	} else {
		reg.Cause = ack.Cause
		reg.IMSI = ack.IMSI
		reg.TMSI = ack.TMSI
		reg.MSISDN = ack.MSISDN
	}
	if r.OnOutcome != nil {
		r.OnOutcome(txn.env, reg)
	}
}
