package msc

import (
	"sync"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/isup"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// Config parameterises a classic circuit-switched MSC.
type Config struct {
	ID sim.NodeID
	// VLR is the attached visitor location register.
	VLR sim.NodeID
	// PSTN is the uplink exchange for mobile-originated calls.
	PSTN sim.NodeID
	// Trunks maps each trunk peer (the PSTN exchange, anchor MSCs on the
	// E interface) to the shared trunk group on that link; the MSC
	// seizes from it for outgoing legs.
	Trunks map[sim.NodeID]*isup.TrunkGroup
	// HandoverNumberPrefix prefixes allocated handover numbers (Fig 9).
	HandoverNumberPrefix string
	// PagingTimeout bounds the wait for a paging response. Zero = 5 s.
	PagingTimeout time.Duration
	// MAPTimeout bounds VLR dialogues. Zero = 5 s.
	MAPTimeout time.Duration
}

type msInfo struct {
	ms   sim.NodeID
	bsc  sim.NodeID
	tmsi gsmid.TMSI
}

type callState uint8

const (
	callRouting callState = iota + 1
	callPaging
	callAlerting
	callActive
	callClearing
)

type mscCall struct {
	ms        sim.NodeID
	bsc       sim.NodeID
	radioRef  uint32 // call reference on the radio side
	trunkRef  uint32 // call reference on the trunk side (equal unless HO)
	cic       isup.CIC
	trunkPeer sim.NodeID
	trunks    *isup.TrunkGroup
	state     callState
	mobileUp  bool // true when the MS side originated
	seqDown   uint32
}

// MSC is a classic circuit-switched GSM mobile switching center: the
// baseline element vGPRS replaces. Voice goes to the PSTN over ISUP trunks
// instead of the VMSC's GPRS/H.323 path; everything on the radio side is
// identical, which is what lets the two coexist (paper §7).
type MSC struct {
	cfg       Config
	registrar *Registrar
	hoTarget  *HandoverTarget
	dm        *ss7.DialogueManager

	mu         sync.Mutex
	regs       map[gsmid.IMSI]msInfo
	byMS       map[sim.NodeID]*mscCall
	byTrunkRef map[uint32]*mscCall
}

var _ sim.Node = (*MSC)(nil)

// New returns an MSC.
func New(cfg Config) *MSC {
	if cfg.PagingTimeout == 0 {
		cfg.PagingTimeout = 5 * time.Second
	}
	if cfg.MAPTimeout == 0 {
		cfg.MAPTimeout = 5 * time.Second
	}
	if cfg.HandoverNumberPrefix == "" {
		cfg.HandoverNumberPrefix = "88699"
	}
	m := &MSC{
		cfg:        cfg,
		dm:         ss7.NewDialogueManager(),
		regs:       make(map[gsmid.IMSI]msInfo),
		byMS:       make(map[sim.NodeID]*mscCall),
		byTrunkRef: make(map[uint32]*mscCall),
	}
	m.registrar = NewRegistrar(cfg.ID, cfg.VLR, m.onRegistration)
	m.hoTarget = NewHandoverTarget(cfg.ID, cfg.HandoverNumberPrefix)
	return m
}

// ID implements sim.Node.
func (m *MSC) ID() sim.NodeID { return m.cfg.ID }

// RegisteredMS returns the number of MSs registered through this MSC.
func (m *MSC) RegisteredMS() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.regs)
}

// ActiveCalls returns the number of calls in progress.
func (m *MSC) ActiveCalls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byMS)
}

func (m *MSC) onRegistration(env *sim.Env, reg Registration) {
	if !reg.OK() {
		env.Send(m.cfg.ID, reg.BSC, gsm.LocationUpdateReject{
			Leg: gsm.LegA, MS: reg.MS, Cause: uint8(reg.Cause),
		})
		return
	}
	m.mu.Lock()
	m.regs[reg.IMSI] = msInfo{ms: reg.MS, bsc: reg.BSC, tmsi: reg.TMSI}
	m.mu.Unlock()
	env.Send(m.cfg.ID, reg.BSC, gsm.LocationUpdateAccept{
		Leg: gsm.LegA, MS: reg.MS, TMSI: reg.TMSI,
	})
}

// HandoversIn returns how many inter-system handovers this MSC received as
// the target.
func (m *MSC) HandoversIn() uint64 { return m.hoTarget.Completed() }

// Receive implements sim.Node.
func (m *MSC) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	if m.registrar.Handle(env, from, msg) {
		return
	}
	switch t := msg.(type) {
	case gsm.Setup:
		m.handleMOSetup(env, from, t)
	case gsm.Alerting:
		m.radioAlerting(env, t)
	case gsm.Connect:
		m.radioConnect(env, t)
	case gsm.Disconnect:
		m.radioDisconnect(env, t)
	case gsm.ReleaseComplete:
		// Channel freed at the BSC; nothing left here.
	case gsm.PagingResponse:
		m.pagingResponse(env, t)
	case gsm.TCHFrame:
		m.uplinkVoice(env, t)
	case gsm.HandoverAccess:
		// First burst on the target cell; wait for HandoverComplete.
	case gsm.HandoverComplete:
		m.hoTarget.Complete(env, from, t)
	case isup.IAM:
		m.handleIAM(env, from, t)
	case isup.ACM:
		m.trunkACM(env, t)
	case isup.ANM:
		m.trunkANM(env, t)
	case isup.REL:
		m.trunkREL(env, from, t)
	case isup.RLC:
		// Release already accounted when REL was processed.
	case isup.TrunkFrame:
		m.trunkVoice(env, t)
	case sigmap.PrepareHandover:
		m.hoTarget.Prepare(env, from, t)
	case gsm.HandoverRequired:
		// A handed-in MS wants to move again: only its anchor can decide.
		m.hoTarget.SubsequentRequired(env, t)
	case sigmap.PrepareSubsequentHandoverAck:
		m.hoTarget.SubsequentAck(env, t)
	case sigmap.SendEndSignalAck:
		// Anchor acknowledged; nothing further.
	case sigmap.SendInfoForOutgoingCallAck:
		m.dm.Resolve(t.Invoke, t)
	case sigmap.SendInfoForIncomingCallAck:
		m.dm.Resolve(t.Invoke, t)
	}
}

// --- Mobile-originated calls ---

func (m *MSC) handleMOSetup(env *sim.Env, bsc sim.NodeID, t gsm.Setup) {
	m.mu.Lock()
	_, busy := m.byMS[t.MS]
	m.mu.Unlock()
	if busy {
		// One call per MS; a duplicate Setup (which the MS state machine
		// should prevent) is refused rather than clobbering the call.
		env.Send(m.cfg.ID, bsc, gsm.Release{Leg: gsm.LegA, MS: t.MS, CallRef: t.CallRef})
		return
	}
	call := &mscCall{
		ms: t.MS, bsc: bsc, radioRef: t.CallRef, trunkRef: t.CallRef,
		state: callRouting, mobileUp: true,
	}
	m.mu.Lock()
	m.byMS[t.MS] = call
	m.byTrunkRef[call.trunkRef] = call
	m.mu.Unlock()

	invoke := m.dm.Invoke(env, m.cfg.MAPTimeout, func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.SendInfoForOutgoingCallAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone {
			m.clearRadio(env, call)
			return
		}
		trunks := m.cfg.Trunks[m.cfg.PSTN]
		var cic isup.CIC
		if trunks != nil {
			seized, err := trunks.Seize()
			if err != nil {
				m.clearRadio(env, call)
				return
			}
			cic = seized
		}
		call.cic = cic
		call.trunkPeer = m.cfg.PSTN
		call.trunks = trunks
		env.Send(m.cfg.ID, m.cfg.PSTN, isup.IAM{
			CIC: cic, CallRef: call.trunkRef, Called: t.Called, Calling: ack.MSISDN,
		})
	})
	env.Send(m.cfg.ID, m.cfg.VLR, sigmap.SendInfoForOutgoingCall{
		Invoke: invoke, Identity: m.identityForMS(t.MS), Called: t.Called,
	})
}

// identityForMS returns the TMSI identity of a registered MS (falling back
// to an empty identity for unknown MSs, which the VLR rejects).
func (m *MSC) identityForMS(ms sim.NodeID) gsmid.MobileIdentity {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, info := range m.regs {
		if info.ms == ms {
			return gsmid.ByTMSI(info.tmsi)
		}
	}
	return gsmid.MobileIdentity{}
}

func (m *MSC) trunkACM(env *sim.Env, t isup.ACM) {
	m.mu.Lock()
	call := m.byTrunkRef[t.CallRef]
	m.mu.Unlock()
	if call == nil || !call.mobileUp {
		return
	}
	call.state = callAlerting
	env.Send(m.cfg.ID, call.bsc, gsm.Alerting{Leg: gsm.LegA, MS: call.ms, CallRef: call.radioRef})
}

func (m *MSC) trunkANM(env *sim.Env, t isup.ANM) {
	m.mu.Lock()
	call := m.byTrunkRef[t.CallRef]
	m.mu.Unlock()
	if call == nil || !call.mobileUp {
		return
	}
	call.state = callActive
	env.Send(m.cfg.ID, call.bsc, gsm.Connect{Leg: gsm.LegA, MS: call.ms, CallRef: call.radioRef})
}

// --- Mobile-terminated calls ---

func (m *MSC) handleIAM(env *sim.Env, from sim.NodeID, t isup.IAM) {
	// A handover number routes to a pending handover, not a subscriber.
	if m.hoTarget.TrunkArrived(env, from, t) {
		return
	}

	call := &mscCall{trunkRef: t.CallRef, cic: t.CIC, trunkPeer: from, state: callPaging}
	m.mu.Lock()
	m.byTrunkRef[t.CallRef] = call
	m.mu.Unlock()

	invoke := m.dm.Invoke(env, m.cfg.MAPTimeout, func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.SendInfoForIncomingCallAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone {
			m.refuseTrunk(env, call, isup.CauseUnallocatedNumber)
			return
		}
		m.mu.Lock()
		info, known := m.regs[ack.IMSI]
		m.mu.Unlock()
		if !known {
			m.refuseTrunk(env, call, isup.CauseUnallocatedNumber)
			return
		}
		call.ms = info.ms
		call.bsc = info.bsc
		call.radioRef = t.CallRef
		m.mu.Lock()
		m.byMS[info.ms] = call
		m.mu.Unlock()
		env.Send(m.cfg.ID, info.bsc, gsm.Paging{
			Leg: gsm.LegA, MS: info.ms, Identity: gsmid.ByTMSI(info.tmsi),
		})
		env.After(m.cfg.PagingTimeout, func() {
			if call.state == callPaging {
				m.clearRadio(env, call)
				m.refuseTrunk(env, call, isup.CauseNoAnswer)
			}
		})
	})
	env.Send(m.cfg.ID, m.cfg.VLR, sigmap.SendInfoForIncomingCall{Invoke: invoke, MSRN: t.Called})
}

func (m *MSC) pagingResponse(env *sim.Env, t gsm.PagingResponse) {
	m.mu.Lock()
	call := m.byMS[t.MS]
	var bsc sim.NodeID
	for _, info := range m.regs {
		if info.ms == t.MS {
			bsc = info.bsc
			break
		}
	}
	m.mu.Unlock()
	if call == nil || call.state != callPaging {
		// Orphan paging response (the caller gave up): free the channel
		// the MS acquired to answer.
		if bsc != "" {
			env.Send(m.cfg.ID, bsc, gsm.Release{Leg: gsm.LegA, MS: t.MS})
		}
		return
	}
	call.state = callAlerting
	env.Send(m.cfg.ID, call.bsc, gsm.Setup{
		Leg: gsm.LegA, MS: call.ms, CallRef: call.radioRef,
	})
}

func (m *MSC) radioAlerting(env *sim.Env, t gsm.Alerting) {
	m.mu.Lock()
	call := m.byMS[t.MS]
	m.mu.Unlock()
	if call == nil || call.mobileUp {
		return
	}
	env.Send(m.cfg.ID, call.trunkPeer, isup.ACM{CIC: call.cic, CallRef: call.trunkRef})
}

func (m *MSC) radioConnect(env *sim.Env, t gsm.Connect) {
	m.mu.Lock()
	call := m.byMS[t.MS]
	m.mu.Unlock()
	if call == nil || call.mobileUp {
		return
	}
	call.state = callActive
	env.Send(m.cfg.ID, call.trunkPeer, isup.ANM{CIC: call.cic, CallRef: call.trunkRef})
}

// --- Clearing ---

func (m *MSC) radioDisconnect(env *sim.Env, t gsm.Disconnect) {
	m.mu.Lock()
	call := m.byMS[t.MS]
	m.mu.Unlock()
	if call == nil {
		// Possibly a handed-over MS hanging up on this target system.
		m.hoTarget.RadioDisconnect(env, t)
		return
	}
	if call.trunkPeer != "" {
		env.Send(m.cfg.ID, call.trunkPeer, isup.REL{
			CIC: call.cic, CallRef: call.trunkRef, Cause: isup.CauseNormalClearing,
		})
		if call.trunks != nil {
			call.trunks.Release(call.cic)
		}
	}
	m.clearRadio(env, call)
}

func (m *MSC) trunkREL(env *sim.Env, from sim.NodeID, t isup.REL) {
	env.Send(m.cfg.ID, from, isup.RLC{CIC: t.CIC, CallRef: t.CallRef})
	m.mu.Lock()
	call := m.byTrunkRef[t.CallRef]
	m.mu.Unlock()
	if call == nil {
		// Possibly the anchor releasing a handed-over call.
		m.hoTarget.TrunkREL(env, t)
		return
	}
	if call.trunks != nil {
		call.trunks.Release(call.cic)
	}
	if call.ms != "" {
		m.clearRadio(env, call)
	} else {
		m.forget(call)
	}
}

// clearRadio releases the radio leg and forgets the call.
func (m *MSC) clearRadio(env *sim.Env, call *mscCall) {
	if call.ms != "" && call.bsc != "" {
		env.Send(m.cfg.ID, call.bsc, gsm.Release{Leg: gsm.LegA, MS: call.ms, CallRef: call.radioRef})
	}
	m.forget(call)
}

func (m *MSC) forget(call *mscCall) {
	m.mu.Lock()
	delete(m.byMS, call.ms)
	delete(m.byTrunkRef, call.trunkRef)
	m.mu.Unlock()
}

func (m *MSC) refuseTrunk(env *sim.Env, call *mscCall, cause isup.ReleaseCause) {
	env.Send(m.cfg.ID, call.trunkPeer, isup.REL{
		CIC: call.cic, CallRef: call.trunkRef, Cause: cause,
	})
	m.forget(call)
}

// --- Voice bridging ---

func (m *MSC) uplinkVoice(env *sim.Env, t gsm.TCHFrame) {
	m.mu.Lock()
	call := m.byMS[t.MS]
	m.mu.Unlock()
	if call == nil {
		m.hoTarget.UplinkVoice(env, t)
		return
	}
	if call.trunkPeer != "" {
		env.Send(m.cfg.ID, call.trunkPeer, isup.TrunkFrame{
			CIC: call.cic, CallRef: call.trunkRef, Seq: t.Seq, Payload: t.Payload,
		})
	}
}

func (m *MSC) trunkVoice(env *sim.Env, t isup.TrunkFrame) {
	m.mu.Lock()
	call := m.byTrunkRef[t.CallRef]
	m.mu.Unlock()
	if call == nil {
		m.hoTarget.TrunkVoice(env, t)
		return
	}
	if call.ms != "" {
		call.seqDown++
		env.Send(m.cfg.ID, call.bsc, gsm.TCHFrame{
			Leg: gsm.LegA, MS: call.ms, CallRef: call.radioRef,
			Seq: call.seqDown, Downlink: true, Payload: t.Payload,
		})
	}
}
