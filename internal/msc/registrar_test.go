package msc

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
)

// silentVLR never answers — for timeout paths.
type silentVLR struct{ id sim.NodeID }

func (v *silentVLR) ID() sim.NodeID                                    { return v.id }
func (v *silentVLR) Receive(*sim.Env, sim.NodeID, string, sim.Message) {}

// bscStub records downlink radio messages.
type bscStub struct {
	id  sim.NodeID
	got []sim.Message
}

func (b *bscStub) ID() sim.NodeID { return b.id }

func (b *bscStub) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	b.got = append(b.got, msg)
}

func TestRegistrarVLRTimeoutFails(t *testing.T) {
	env := sim.NewEnv(1)
	var outcome *Registration
	r := NewRegistrar("MSC-1", "VLR-SILENT", func(_ *sim.Env, reg Registration) {
		outcome = &reg
	})
	r.RTO = 100 * time.Millisecond
	owner := &registrarOwner{id: "MSC-1", r: r}
	vlr := &silentVLR{id: "VLR-SILENT"}
	bsc := &bscStub{id: "BSC-1"}
	env.AddNode(owner)
	env.AddNode(vlr)
	env.AddNode(bsc)
	env.Connect("MSC-1", "VLR-SILENT", "B", time.Millisecond)
	env.Connect("BSC-1", "MSC-1", "A", time.Millisecond)

	env.Send("BSC-1", "MSC-1", gsm.LocationUpdate{
		Leg: gsm.LegA, MS: "MS-1", Identity: gsmid.ByIMSI("466920000000001"),
	})
	env.Run()

	if outcome == nil {
		t.Fatal("no outcome after VLR timeout")
	}
	if outcome.OK() {
		t.Fatal("timed-out registration reported OK")
	}
	if outcome.Cause != sigmap.CauseSystemFailure {
		t.Fatalf("cause = %v", outcome.Cause)
	}
	// The transaction tables are clean for a retry.
	if len(r.byIdentity) != 0 || len(r.byMS) != 0 {
		t.Fatal("registrar leaked transaction state")
	}
}

// registrarOwner is a minimal node driving a Registrar.
type registrarOwner struct {
	id sim.NodeID
	r  *Registrar
}

func (o *registrarOwner) ID() sim.NodeID { return o.id }

func (o *registrarOwner) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	o.r.Handle(env, from, msg)
}

func TestRegistrarIgnoresForeignMessages(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRegistrar("MSC-1", "VLR-1", nil)
	if r.Handle(env, "X", foreignReg{}) {
		t.Fatal("foreign message consumed")
	}
	// Auth for an unknown identity is not consumed either.
	if r.Handle(env, "X", sigmap.Authenticate{Identity: gsmid.ByTMSI(9)}) {
		t.Fatal("stray Authenticate consumed")
	}
	if r.Handle(env, "X", gsm.AuthResponse{MS: "MS-?"}) {
		t.Fatal("stray AuthResponse consumed")
	}
}

type foreignReg struct{}

func (foreignReg) Name() string { return "X" }
