package gprs

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"vgprs/internal/gtp"
	"vgprs/internal/sim"
)

func healLink(arg any) { arg.(*sim.Link).Down = false }

// TestClientAttachRetransmitRecovers drops the first AttachRequest on a
// down Um link and verifies the client's RTO timer retransmits it and the
// attach still succeeds, within one retransmission.
func TestClientAttachRetransmitRecovers(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.ms.Client.Timeout = 100 * time.Millisecond

	um := f.env.LinkBetween("MS-1", "BTS-1")
	um.Down = true
	f.env.AfterArg(50*time.Millisecond, healLink, um)

	var done, ok bool
	if err := f.ms.Client.Attach(f.env, func(k bool) { done, ok = true, k }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done || !ok {
		t.Fatalf("attach over lossy link: done=%v ok=%v", done, ok)
	}
	if got := f.ms.Client.Retransmits(); got != 1 {
		t.Fatalf("retransmits = %d, want 1", got)
	}
	if err := f.ms.Client.LastError(); err != nil {
		t.Fatalf("LastError = %v, want nil", err)
	}
}

// TestClientAttachBudgetExhausted verifies the typed failure when every
// attempt is lost: the callback fires false at 15·RTO (attempts at 0, T,
// 3T, 7T; give-up at 15T with the default budget of 3 retries) and
// LastError reports ErrAttachTimeout.
func TestClientAttachBudgetExhausted(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	const rto = 100 * time.Millisecond
	f.ms.Client.Timeout = rto

	f.env.LinkBetween("MS-1", "BTS-1").Down = true

	var done, ok bool
	var failedAt time.Duration
	if err := f.ms.Client.Attach(f.env, func(k bool) {
		done, ok = true, k
		failedAt = f.env.Now()
	}); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done || ok {
		t.Fatalf("attach on dead link: done=%v ok=%v", done, ok)
	}
	if failedAt != 15*rto {
		t.Fatalf("failed at %v, want %v", failedAt, 15*rto)
	}
	if got := f.ms.Client.Retransmits(); got != 3 {
		t.Fatalf("retransmits = %d, want 3", got)
	}
	if !errors.Is(f.ms.Client.LastError(), ErrAttachTimeout) {
		t.Fatalf("LastError = %v, want ErrAttachTimeout", f.ms.Client.LastError())
	}
	// The failed transaction must leave the client reusable.
	f.env.LinkBetween("MS-1", "BTS-1").Down = false
	f.attach(t)
}

// TestClientActivateRetransmitRecovers drops the first ActivatePDPRequest
// and verifies the retained PDU is retransmitted and activation completes.
func TestClientActivateRetransmitRecovers(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.ms.Client.Timeout = 100 * time.Millisecond

	um := f.env.LinkBetween("MS-1", "BTS-1")
	um.Down = true
	f.env.AfterArg(50*time.Millisecond, healLink, um)

	var addr netip.Addr
	var done, ok bool
	if err := f.ms.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(a netip.Addr, k bool) { addr, done, ok = a, true, k }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done || !ok || !addr.IsValid() {
		t.Fatalf("activation over lossy link: done=%v ok=%v addr=%v", done, ok, addr)
	}
	if got := f.ms.Client.Retransmits(); got != 1 {
		t.Fatalf("retransmits = %d, want 1", got)
	}
}

// TestClientActivateBudgetExhausted verifies the typed activation failure
// and that the NSAPI is reusable afterwards.
func TestClientActivateBudgetExhausted(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.ms.Client.Timeout = 100 * time.Millisecond

	um := f.env.LinkBetween("MS-1", "BTS-1")
	um.Down = true

	var done, ok bool
	if err := f.ms.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(_ netip.Addr, k bool) { done, ok = true, k }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done || ok {
		t.Fatalf("activation on dead link: done=%v ok=%v", done, ok)
	}
	if !errors.Is(f.ms.Client.LastError(), ErrActivateTimeout) {
		t.Fatalf("LastError = %v, want ErrActivateTimeout", f.ms.Client.LastError())
	}
	um.Down = false
	f.activate(t, 5, gtp.SignallingQoS(), "")
}

// TestClientDeactivateRetransmitAndExhaustion covers both deactivation
// outcomes: a dropped DeactivatePDPRequest recovers via retransmission,
// and a dead link degrades to a local tear-down with a typed error rather
// than a hang.
func TestClientDeactivateRetransmitAndExhaustion(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	f.ms.Client.Timeout = 100 * time.Millisecond

	um := f.env.LinkBetween("MS-1", "BTS-1")
	um.Down = true
	f.env.AfterArg(50*time.Millisecond, healLink, um)
	var done bool
	if err := f.ms.Client.DeactivatePDP(f.env, 5, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done {
		t.Fatal("deactivation over lossy link never completed")
	}
	if got := f.ms.Client.Retransmits(); got != 1 {
		t.Fatalf("retransmits = %d, want 1", got)
	}
	if f.ms.Client.ActiveContexts() != 0 {
		t.Fatalf("contexts = %d after deactivate", f.ms.Client.ActiveContexts())
	}

	// Now exhaust the budget: the context must still be released locally
	// and the callback must fire so clear-down never hangs.
	f.activate(t, 5, gtp.SignallingQoS(), "")
	um.Down = true
	done = false
	if err := f.ms.Client.DeactivatePDP(f.env, 5, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done {
		t.Fatal("deactivation on dead link never completed")
	}
	if !errors.Is(f.ms.Client.LastError(), ErrDeactivateTimeout) {
		t.Fatalf("LastError = %v, want ErrDeactivateTimeout", f.ms.Client.LastError())
	}
	if f.ms.Client.ActiveContexts() != 0 {
		t.Fatal("context not released locally on deactivation give-up")
	}
}

// TestSGSNGTPRetransmitRecovers drops the first CreatePDPRequest on the Gn
// link and verifies the SGSN's GTP transaction timer retransmits it so the
// activation still completes end to end.
func TestSGSNGTPRetransmitRecovers(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{SigRTO: 100 * time.Millisecond})
	f.attach(t)

	gn := f.env.LinkBetween("SGSN-1", "GGSN-1")
	gn.Down = true
	f.env.AfterArg(50*time.Millisecond, healLink, gn)

	// Give the client a long RTO so the recovery is attributable to the
	// SGSN's GTP retransmission, not a client-side SM retry.
	f.ms.Client.Timeout = 10 * time.Second

	addr := f.activate(t, 5, gtp.SignallingQoS(), "")
	if !addr.IsValid() {
		t.Fatal("no address assigned")
	}
	if got := f.sgsn.Retransmits(); got != 1 {
		t.Fatalf("SGSN retransmits = %d, want 1", got)
	}
	if got := f.ms.Client.Retransmits(); got != 0 {
		t.Fatalf("client retransmits = %d, want 0", got)
	}
}

// TestSGSNGTPBudgetExhausted verifies a dead Gn path degrades to an
// ActivatePDPReject back to the MS instead of a silent hang, and that the
// GTP timer slab is fully recycled.
func TestSGSNGTPBudgetExhausted(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{SigRTO: 100 * time.Millisecond})
	f.attach(t)
	f.ms.Client.Timeout = time.Hour // SM expiry out of the picture

	f.env.LinkBetween("SGSN-1", "GGSN-1").Down = true

	var done, ok bool
	if err := f.ms.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(_ netip.Addr, k bool) { done, ok = true, k }); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 30*time.Second)
	if !done || ok {
		t.Fatalf("activation over dead Gn: done=%v ok=%v", done, ok)
	}
	if got := f.sgsn.Retransmits(); got != 3 {
		t.Fatalf("SGSN retransmits = %d, want 3", got)
	}
}
