package gprs

import (
	"net/netip"
	"testing"

	"vgprs/internal/gtp"
)

// These tests pin the idempotent-responder leak fixes the scenario soak
// surfaced: a GTP completion that arrives after its subscriber is gone must
// not resurrect state, and a detach racing an in-flight deactivate must not
// corrupt the context count.

// stepUntil advances the event queue one event at a time until cond holds,
// failing if the queue drains first. It lets a test freeze the network at a
// precise mid-procedure instant.
func (f *coreFixture) stepUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for !cond() {
		if !f.env.Step() {
			t.Fatalf("event queue drained before %s", what)
		}
	}
}

// TestDetachDuringCreateDoesNotLeakContext detaches the subscriber while
// the SGSN's CreatePDPContext is still in flight to the GGSN. The late
// CreatePDPResponse must not re-install the context for the now-departed
// subscriber — before the fix it did, leaking the SGSN context and the
// GGSN tunnel permanently.
func TestDetachDuringCreateDoesNotLeakContext(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)

	if err := f.ms.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(netip.Addr, bool) {}); err != nil {
		t.Fatal(err)
	}
	// Freeze at the vulnerable instant: the SGSN holds a pending GTP
	// transaction (CreatePDP sent, response not yet back).
	f.stepUntil(t, "SGSN created its GTP transaction", func() bool {
		return f.sgsn.PendingTransactions() > 0
	})
	if err := f.ms.Client.Detach(f.env, func() {}); err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	if got := f.sgsn.Attached(); got != 0 {
		t.Fatalf("attached subscribers after detach = %d, want 0", got)
	}
	if got := f.sgsn.ActiveContexts(); got != 0 {
		t.Fatalf("SGSN contexts after detach = %d, want 0 (late create re-installed state)", got)
	}
	if got := f.ggsn.ActiveContexts(); got != 0 {
		t.Fatalf("GGSN tunnels after detach = %d, want 0 (stale create not reclaimed)", got)
	}
	if got := f.sgsn.PendingTransactions(); got != 0 {
		t.Fatalf("SGSN pending transactions = %d, want 0", got)
	}
	if got := f.ggsn.PendingCreates(); got != 0 {
		t.Fatalf("GGSN pending creates = %d, want 0", got)
	}

	// The subscriber must be able to come back clean.
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	if got := f.sgsn.ActiveContexts(); got != 1 {
		t.Fatalf("contexts after re-attach = %d, want 1", got)
	}
}

// TestDetachRacingDeactivateKeepsCountsConsistent starts a clean PDP
// deactivation, then detaches before the GGSN's DeletePDPResponse returns.
// The detach tears the context down by itself; the late delete completion
// must notice and not decrement the context count a second time — before
// the fix the count went negative and every later capacity check was
// skewed.
func TestDetachRacingDeactivateKeepsCountsConsistent(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{MaxContexts: 1})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")

	if err := f.ms.Client.DeactivatePDP(f.env, 5, func() {}); err != nil {
		t.Fatal(err)
	}
	f.stepUntil(t, "SGSN sent DeletePDP", func() bool {
		return f.sgsn.PendingTransactions() > 0
	})
	if err := f.ms.Client.Detach(f.env, func() {}); err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	if got := f.sgsn.ActiveContexts(); got != 0 {
		t.Fatalf("SGSN contexts = %d, want 0 (double decrement?)", got)
	}
	if got := f.sgsn.PendingTransactions(); got != 0 {
		t.Fatalf("SGSN pending transactions = %d, want 0", got)
	}

	// MaxContexts is 1: if the race double-decremented, the count went
	// negative and this admission would succeed even with a phantom
	// context; if it leaked, the admission would be refused. Either way a
	// clean re-attach plus one activation is the discriminating probe.
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	if got := f.sgsn.ActiveContexts(); got != 1 {
		t.Fatalf("contexts after re-attach = %d, want 1", got)
	}
}
