package gprs

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
	"vgprs/internal/ss7"
)

// GGSNConfig parameterises a GGSN node.
type GGSNConfig struct {
	ID sim.NodeID
	// PoolPrefix is the dynamic PDP address range base, e.g. "10.1.1.0".
	PoolPrefix string
	// PoolSize is the dynamic address pool capacity. Zero means the
	// classic 254-host /24; large-population sweeps size it to the
	// subscriber count.
	PoolSize int
	// Gi is the external packet-network router (the PSDN / H.323 LAN).
	Gi sim.NodeID
	// HLR, when set, is queried over Gc during PDP activation — paper
	// step 1.3: "the IMSI of the MS is used by the GGSN to retrieve the
	// HLR record to obtain information such as IP address".
	HLR sim.NodeID
	// SigRTO is the initial retransmission timeout for Gc dialogues; it
	// doubles on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per dialogue. Zero means 3.
	SigRetries int
	// NetworkInitiatedActivation enables the TR 23.923 MT path: downlink
	// packets for a provisioned static address with no context trigger a
	// PDU Notification toward the subscriber's SGSN (found via Gc).
	NetworkInitiatedActivation bool
	// MaxKbps caps the negotiated peak throughput per context (0 = no
	// cap) — the GSM 03.60 QoS negotiation, downward only.
	MaxKbps uint16
}

// ggsnShards is the slab fan-out; contexts spread by TID hash.
const ggsnShards = 8

// maxQueuedPerAddr bounds the packets parked per destination address while
// network-initiated activation runs. A paging burst beyond the cap drops
// the overflow (counted in QueueDrops) instead of pinning memory for the
// life of the PDP context.
const maxQueuedPerAddr = 32

// ggsnRec is the GGSN's slab-resident per-context record — the paper's
// step 1.3 lists its fields: "IMSI, IP address, QoS profile negotiated,
// SGSN address, and so on". Fixed size: the IMSI is BCD-packed and the
// SGSN an interned symbol; the only pointer is the lazily-allocated media
// relay state on realtime contexts, cleared when the context is freed.
type ggsnRec struct {
	imsi    gsmid.PackedDigits
	nsapi   uint8
	dynamic bool
	tid     gtp.TID
	sgsn    uint32 // symbol in GGSN.names
	address netip.Addr
	qos     gtp.QoSProfile
	media   *ggsnMedia
}

// ggsnMedia holds a realtime context's reusable downlink GTP message: the
// voice hairpin overwrites it once per frame interval, and the SGSN
// consumes the previous one within the Gn latency.
type ggsnMedia struct {
	tpdu gtp.TPDU
}

// GGSN is the gateway GPRS support node: the anchor between GTP tunnels and
// the external packet network (Gi), with dynamic address allocation and the
// optional network-initiated activation path.
type GGSN struct {
	cfg  GGSNConfig
	pool *ipnet.Pool
	dm   *ss7.DialogueManager

	mu      sync.Mutex
	recs    *slab.Sharded[ggsnRec]
	byTID   *slab.Index[uint64]
	byAddr  *slab.Index[netip.Addr]
	names   slab.Syms[string] // SGSN node names
	static  map[netip.Addr]gsmid.IMSI
	queued  map[netip.Addr][]ipnet.Packet
	nextSeq uint16
	// pendingCreate dedupes in-flight context creations while the Gc
	// lookup runs: the SGSN retransmits CreatePDPRequest with the same
	// sequence number, and a duplicate must not spawn a second HLR
	// dialogue.
	pendingCreate map[createKey]struct{}

	ulPackets, dlPackets, dropped uint64
	queueDrops                    uint64
}

// createKey identifies one in-flight PDP creation by requesting SGSN and
// GTP sequence number (retransmissions reuse both).
type createKey struct {
	sgsn sim.NodeID
	seq  uint16
}

var _ sim.Node = (*GGSN)(nil)

// hashAddr mixes a netip.Addr for the byAddr index.
func hashAddr(a netip.Addr) uint64 {
	b := a.As16()
	return slab.HashUint64(binary.LittleEndian.Uint64(b[:8]) ^
		slab.HashUint64(binary.LittleEndian.Uint64(b[8:])))
}

// NewGGSN returns a GGSN. It panics on an invalid pool prefix (topology
// construction error).
func NewGGSN(cfg GGSNConfig) *GGSN {
	if cfg.PoolPrefix == "" {
		cfg.PoolPrefix = "10.1.1.0"
	}
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	pool, err := ipnet.NewPoolSize(cfg.PoolPrefix, cfg.PoolSize)
	if err != nil {
		panic(err)
	}
	return &GGSN{
		cfg:           cfg,
		pool:          pool,
		dm:            ss7.NewDialogueManager(),
		recs:          slab.NewSharded[ggsnRec](ggsnShards),
		byTID:         slab.NewIndex[uint64](slab.HashUint64),
		byAddr:        slab.NewIndex[netip.Addr](hashAddr),
		static:        make(map[netip.Addr]gsmid.IMSI),
		queued:        make(map[netip.Addr][]ipnet.Packet),
		pendingCreate: make(map[createKey]struct{}),
	}
}

// Retransmits returns the number of MAP request PDUs this GGSN has re-sent.
func (g *GGSN) Retransmits() uint64 { return g.dm.Retransmits() }

// PendingCreates returns in-flight context creations still waiting on the
// Gc static-address lookup. Zero at quiescence.
func (g *GGSN) PendingCreates() int { return len(g.pendingCreate) }

// OutstandingDialogues returns un-answered MAP invokes toward the HLR.
func (g *GGSN) OutstandingDialogues() int { return g.dm.Outstanding() }

// ID implements sim.Node.
func (g *GGSN) ID() sim.NodeID { return g.cfg.ID }

// ProvisionStatic records a static PDP address for a subscriber, enabling
// network-initiated activation toward it.
func (g *GGSN) ProvisionStatic(addr netip.Addr, imsi gsmid.IMSI) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.static[addr] = imsi
}

// ActiveContexts returns the number of PDP contexts — the GGSN-side
// residency cost measured by experiment C2.
func (g *GGSN) ActiveContexts() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recs.Len()
}

// AddressOf returns the PDP address of a context by TID.
func (g *GGSN) AddressOf(tid gtp.TID) (netip.Addr, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.recs.Get(g.byTID.Get(uint64(tid)))
	if r == nil {
		return netip.Addr{}, false
	}
	return r.address, true
}

// Stats returns (uplink, downlink, dropped) packet counts.
func (g *GGSN) Stats() (ul, dl, dropped uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ulPackets, g.dlPackets, g.dropped
}

// QueueDrops returns the number of downlink packets rejected because a
// destination's activation queue was already at maxQueuedPerAddr.
func (g *GGSN) QueueDrops() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queueDrops
}

// QueuedPackets returns the number of downlink packets currently parked
// awaiting network-initiated activation. Zero at quiescence.
func (g *GGSN) QueuedPackets() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, q := range g.queued {
		n += len(q)
	}
	return n
}

// SlabImbalance audits the slab storage: per-shard occupancy must balance
// and both indexes must resolve to live records that agree with the key.
// Non-zero means a context leaked or was lost.
func (g *GGSN) SlabImbalance() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	imb := 0
	perShard := make([]int, ggsnShards)
	g.byTID.Range(func(k uint64, h slab.Handle) bool {
		r := g.recs.Get(h)
		if r == nil || uint64(r.tid) != k {
			imb++
			return true
		}
		perShard[h.Shard()]++
		return true
	})
	for _, a := range g.recs.Audit() {
		imb += a.Imbalance() + abs(perShard[a.Shard]-a.Live)
	}
	g.byAddr.Range(func(k netip.Addr, h slab.Handle) bool {
		if r := g.recs.Get(h); r == nil || r.address != k {
			imb++
		}
		return true
	})
	return imb
}

// Receive implements sim.Node.
func (g *GGSN) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case gtp.CreatePDPRequest:
		g.handleCreate(env, from, m)
	case gtp.DeletePDPRequest:
		g.handleDelete(env, from, m)
	case gtp.TPDU:
		g.handleUplink(env, m)
	case *gtp.TPDU:
		// Voice fast path: the SGSN reuses a pointer message per realtime
		// context to avoid the interface-boxing allocation per frame.
		g.handleUplink(env, *m)
	case gtp.EchoRequest:
		env.Send(g.cfg.ID, from, gtp.EchoResponse{Seq: m.Seq})
	case gtp.PDUNotifyResponse:
		// Informational; queued packets flush when the context appears.
	case ipnet.Packet:
		g.handleDownlink(env, m)
	case sigmap.SendRoutingInfoForGPRSAck:
		g.dm.Resolve(m.Invoke, msg)
	}
}

// handleCreate creates a PDP context. When the HLR is reachable over Gc and
// no explicit address was requested, the GGSN first retrieves the HLR record
// (paper step 1.3) to learn a provisioned static address.
func (g *GGSN) handleCreate(env *sim.Env, sgsn sim.NodeID, m gtp.CreatePDPRequest) {
	finish := func(staticAddr string) {
		g.finishCreate(env, sgsn, m, staticAddr)
	}
	if m.RequestedAddress != "" {
		finish(m.RequestedAddress)
		return
	}
	if g.cfg.HLR == "" {
		finish("")
		return
	}
	// A retransmitted CreatePDPRequest (same SGSN, same sequence number)
	// while the Gc lookup is in flight is dropped; the pending lookup will
	// answer it.
	key := createKey{sgsn: sgsn, seq: m.Seq}
	g.mu.Lock()
	if _, busy := g.pendingCreate[key]; busy {
		g.mu.Unlock()
		return
	}
	g.pendingCreate[key] = struct{}{}
	g.mu.Unlock()
	invoke := g.dm.InvokeRetry(func(resp sim.Message, ok bool) {
		g.mu.Lock()
		delete(g.pendingCreate, key)
		g.mu.Unlock()
		static := ""
		if ack, isAck := resp.(sigmap.SendRoutingInfoForGPRSAck); ok && isAck && ack.Cause == sigmap.CauseNone {
			static = ack.StaticPDPAddress
		}
		finish(static)
	})
	g.dm.Transmit(env, invoke, g.cfg.ID, g.cfg.HLR,
		sigmap.SendRoutingInfoForGPRS{Invoke: invoke, IMSI: m.IMSI},
		g.cfg.SigRTO, g.cfg.SigRetries)
}

func (g *GGSN) finishCreate(env *sim.Env, sgsn sim.NodeID, m gtp.CreatePDPRequest, staticAddr string) {
	var addr netip.Addr
	dynamic := false
	if staticAddr != "" {
		parsed, err := netip.ParseAddr(staticAddr)
		if err != nil {
			env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{Seq: m.Seq, Cause: gtp.CauseSystemFailure})
			return
		}
		addr = parsed
	} else {
		allocated, err := g.pool.Allocate()
		if err != nil {
			env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{Seq: m.Seq, Cause: gtp.CauseNoResources})
			return
		}
		addr = allocated
		dynamic = true
	}

	tid := gtp.MakeTID(m.IMSI, m.NSAPI)
	negotiated := gtp.Negotiate(m.QoS, g.cfg.MaxKbps)
	g.mu.Lock()
	if existing := g.recs.Get(g.byTID.Get(uint64(tid))); existing != nil {
		sameSGSN := g.names.Val(existing.sgsn) == string(sgsn)
		exAddr, exQoS := existing.address, existing.qos
		g.mu.Unlock()
		if dynamic {
			g.pool.Release(addr)
		}
		if sameSGSN {
			// Retransmitted create whose response was lost: re-acknowledge
			// the context already installed instead of failing it (GSM
			// 09.60 §7.4.1 treats a repeated request as the same one).
			env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{
				Seq: m.Seq, Cause: gtp.CauseAccepted, TID: tid,
				Address: exAddr.String(), QoS: exQoS,
			})
			return
		}
		env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{Seq: m.Seq, Cause: gtp.CauseSystemFailure})
		return
	}
	h, r := g.recs.Alloc(int(slab.HashUint64(uint64(tid)) & (ggsnShards - 1)))
	r.imsi = m.IMSI.Pack()
	r.nsapi = m.NSAPI
	r.tid = tid
	r.sgsn = g.names.ID(string(sgsn))
	r.address = addr
	r.qos = negotiated
	r.dynamic = dynamic
	g.byTID.Put(uint64(tid), h)
	g.byAddr.Put(addr, h)
	queued := g.queued[addr]
	delete(g.queued, addr)
	g.mu.Unlock()

	env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{
		Seq: m.Seq, Cause: gtp.CauseAccepted, TID: tid, Address: addr.String(),
		QoS: negotiated,
	})
	// Flush traffic that was waiting on network-initiated activation.
	for _, pkt := range queued {
		g.handleDownlink(env, pkt)
	}
}

func (g *GGSN) handleDelete(env *sim.Env, sgsn sim.NodeID, m gtp.DeletePDPRequest) {
	g.mu.Lock()
	h := g.byTID.Get(uint64(m.TID))
	r := g.recs.Get(h)
	ok := r != nil
	var release netip.Addr
	if ok {
		g.byTID.Delete(uint64(m.TID))
		g.byAddr.Delete(r.address)
		if r.dynamic {
			release = r.address
		}
		r.media = nil
		g.recs.Free(h)
	}
	g.mu.Unlock()
	if release.IsValid() {
		g.pool.Release(release)
	}

	cause := gtp.CauseAccepted
	if !ok {
		cause = gtp.CauseNotFound
	}
	env.Send(g.cfg.ID, sgsn, gtp.DeletePDPResponse{Seq: m.Seq, Cause: cause})
}

// handleUplink decapsulates a T-PDU and forwards the inner packet to Gi —
// or hairpins it straight into another tunnel when the destination is a PDP
// address served by this GGSN (MS-to-MS traffic never leaves the gateway).
func (g *GGSN) handleUplink(env *sim.Env, m gtp.TPDU) {
	pkt, err := ipnet.Unmarshal(m.Payload)
	if err != nil {
		return
	}
	g.mu.Lock()
	src := g.recs.Get(g.byTID.Get(uint64(m.TID)))
	known := src != nil
	if known {
		g.ulPackets++
	} else {
		g.dropped++
	}
	g.mu.Unlock()
	if !known {
		return
	}
	g.mu.Lock()
	dst := g.recs.Get(g.byAddr.Get(pkt.Dst))
	local := dst != nil
	var med *ggsnMedia
	var tid gtp.TID
	var sgsn sim.NodeID
	if local && src.qos.Realtime &&
		(pkt.DstPort == ipnet.PortRTP || pkt.SrcPort == ipnet.PortRTP) {
		// Voice-to-voice hairpin: forward the uplink T-PDU bytes as-is
		// (they already are the canonically encoded inner packet) through
		// the destination context's reusable downlink message. The
		// destination is whichever context owns the peer's registered
		// media address — its signalling context when the endpoint splits
		// signalling and voice across two PDPs — so only the source side
		// (always the voice context) gates on the realtime profile; the
		// RTP port check is what keeps non-media packets off the reusable
		// message.
		if dst.media == nil {
			dst.media = &ggsnMedia{}
		}
		med, tid, sgsn = dst.media, dst.tid, sim.NodeID(g.names.Val(dst.sgsn))
		g.dlPackets++
	}
	g.mu.Unlock()
	if med != nil {
		med.tpdu = gtp.TPDU{TID: tid, Payload: m.Payload}
		env.Send(g.cfg.ID, sgsn, &med.tpdu)
		return
	}
	if local {
		g.handleDownlink(env, pkt)
		return
	}
	env.Send(g.cfg.ID, g.cfg.Gi, pkt)
}

// handleDownlink routes a Gi-side packet into the right tunnel; with no
// active context it either triggers network-initiated activation (static,
// provisioned, feature enabled) or drops.
func (g *GGSN) handleDownlink(env *sim.Env, pkt ipnet.Packet) {
	g.mu.Lock()
	r := g.recs.Get(g.byAddr.Get(pkt.Dst))
	active := r != nil
	var tid gtp.TID
	var sgsn sim.NodeID
	if active {
		tid = r.tid
		sgsn = sim.NodeID(g.names.Val(r.sgsn))
		g.dlPackets++
	}
	g.mu.Unlock()

	if active {
		env.Send(g.cfg.ID, sgsn, gtp.TPDU{TID: tid, Payload: pkt.Marshal()})
		return
	}

	g.mu.Lock()
	imsi, isStatic := g.static[pkt.Dst]
	canNotify := g.cfg.NetworkInitiatedActivation && isStatic && g.cfg.HLR != ""
	if canNotify {
		if len(g.queued[pkt.Dst]) >= maxQueuedPerAddr {
			// Queue full: shed the newest packet rather than grow without
			// bound while the subscriber is paged.
			g.queueDrops++
			g.dropped++
			g.mu.Unlock()
			return
		}
		g.queued[pkt.Dst] = append(g.queued[pkt.Dst], pkt)
	} else {
		g.dropped++
	}
	alreadyNotifying := canNotify && len(g.queued[pkt.Dst]) > 1
	g.mu.Unlock()

	if !canNotify || alreadyNotifying {
		return
	}
	// Gc: find the serving SGSN, then ask it to have the MS activate.
	invoke := g.dm.InvokeRetry(func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.SendRoutingInfoForGPRSAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone || ack.SGSN == "" {
			g.mu.Lock()
			g.dropped += uint64(len(g.queued[pkt.Dst]))
			delete(g.queued, pkt.Dst)
			g.mu.Unlock()
			return
		}
		g.mu.Lock()
		g.nextSeq++
		seq := g.nextSeq
		g.mu.Unlock()
		env.Send(g.cfg.ID, sim.NodeID(ack.SGSN), gtp.PDUNotifyRequest{
			Seq: seq, IMSI: imsi, Address: pkt.Dst.String(),
		})
	})
	g.dm.Transmit(env, invoke, g.cfg.ID, g.cfg.HLR,
		sigmap.SendRoutingInfoForGPRS{Invoke: invoke, IMSI: imsi},
		g.cfg.SigRTO, g.cfg.SigRetries)
}
