package gprs

import (
	"net/netip"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// GGSNConfig parameterises a GGSN node.
type GGSNConfig struct {
	ID sim.NodeID
	// PoolPrefix is the dynamic PDP address range base, e.g. "10.1.1.0".
	PoolPrefix string
	// Gi is the external packet-network router (the PSDN / H.323 LAN).
	Gi sim.NodeID
	// HLR, when set, is queried over Gc during PDP activation — paper
	// step 1.3: "the IMSI of the MS is used by the GGSN to retrieve the
	// HLR record to obtain information such as IP address".
	HLR sim.NodeID
	// SigRTO is the initial retransmission timeout for Gc dialogues; it
	// doubles on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per dialogue. Zero means 3.
	SigRetries int
	// NetworkInitiatedActivation enables the TR 23.923 MT path: downlink
	// packets for a provisioned static address with no context trigger a
	// PDU Notification toward the subscriber's SGSN (found via Gc).
	NetworkInitiatedActivation bool
	// MaxKbps caps the negotiated peak throughput per context (0 = no
	// cap) — the GSM 03.60 QoS negotiation, downward only.
	MaxKbps uint16
}

// ggsnPDP is the GGSN's per-context record — the paper's step 1.3 lists its
// fields: "IMSI, IP address, QoS profile negotiated, SGSN address, and so
// on".
type ggsnPDP struct {
	imsi    gsmid.IMSI
	nsapi   uint8
	tid     gtp.TID
	sgsn    sim.NodeID
	address netip.Addr
	qos     gtp.QoSProfile
	dynamic bool
}

// GGSN is the gateway GPRS support node: the anchor between GTP tunnels and
// the external packet network (Gi), with dynamic address allocation and the
// optional network-initiated activation path.
type GGSN struct {
	cfg  GGSNConfig
	pool *ipnet.Pool
	dm   *ss7.DialogueManager

	mu      sync.Mutex
	byTID   map[gtp.TID]*ggsnPDP
	byAddr  map[netip.Addr]gtp.TID
	static  map[netip.Addr]gsmid.IMSI
	queued  map[netip.Addr][]ipnet.Packet
	nextSeq uint16
	// pendingCreate dedupes in-flight context creations while the Gc
	// lookup runs: the SGSN retransmits CreatePDPRequest with the same
	// sequence number, and a duplicate must not spawn a second HLR
	// dialogue.
	pendingCreate map[createKey]struct{}

	ulPackets, dlPackets, dropped uint64
}

// createKey identifies one in-flight PDP creation by requesting SGSN and
// GTP sequence number (retransmissions reuse both).
type createKey struct {
	sgsn sim.NodeID
	seq  uint16
}

var _ sim.Node = (*GGSN)(nil)

// NewGGSN returns a GGSN. It panics on an invalid pool prefix (topology
// construction error).
func NewGGSN(cfg GGSNConfig) *GGSN {
	if cfg.PoolPrefix == "" {
		cfg.PoolPrefix = "10.1.1.0"
	}
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	pool, err := ipnet.NewPool(cfg.PoolPrefix)
	if err != nil {
		panic(err)
	}
	return &GGSN{
		cfg:           cfg,
		pool:          pool,
		dm:            ss7.NewDialogueManager(),
		byTID:         make(map[gtp.TID]*ggsnPDP),
		byAddr:        make(map[netip.Addr]gtp.TID),
		static:        make(map[netip.Addr]gsmid.IMSI),
		queued:        make(map[netip.Addr][]ipnet.Packet),
		pendingCreate: make(map[createKey]struct{}),
	}
}

// Retransmits returns the number of MAP request PDUs this GGSN has re-sent.
func (g *GGSN) Retransmits() uint64 { return g.dm.Retransmits() }

// PendingCreates returns in-flight context creations still waiting on the
// Gc static-address lookup. Zero at quiescence.
func (g *GGSN) PendingCreates() int { return len(g.pendingCreate) }

// OutstandingDialogues returns un-answered MAP invokes toward the HLR.
func (g *GGSN) OutstandingDialogues() int { return g.dm.Outstanding() }

// ID implements sim.Node.
func (g *GGSN) ID() sim.NodeID { return g.cfg.ID }

// ProvisionStatic records a static PDP address for a subscriber, enabling
// network-initiated activation toward it.
func (g *GGSN) ProvisionStatic(addr netip.Addr, imsi gsmid.IMSI) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.static[addr] = imsi
}

// ActiveContexts returns the number of PDP contexts — the GGSN-side
// residency cost measured by experiment C2.
func (g *GGSN) ActiveContexts() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.byTID)
}

// AddressOf returns the PDP address of a context by TID.
func (g *GGSN) AddressOf(tid gtp.TID) (netip.Addr, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ctx, ok := g.byTID[tid]
	if !ok {
		return netip.Addr{}, false
	}
	return ctx.address, true
}

// Stats returns (uplink, downlink, dropped) packet counts.
func (g *GGSN) Stats() (ul, dl, dropped uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ulPackets, g.dlPackets, g.dropped
}

// Receive implements sim.Node.
func (g *GGSN) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case gtp.CreatePDPRequest:
		g.handleCreate(env, from, m)
	case gtp.DeletePDPRequest:
		g.handleDelete(env, from, m)
	case gtp.TPDU:
		g.handleUplink(env, m)
	case gtp.EchoRequest:
		env.Send(g.cfg.ID, from, gtp.EchoResponse{Seq: m.Seq})
	case gtp.PDUNotifyResponse:
		// Informational; queued packets flush when the context appears.
	case ipnet.Packet:
		g.handleDownlink(env, m)
	case sigmap.SendRoutingInfoForGPRSAck:
		g.dm.Resolve(m.Invoke, msg)
	}
}

// handleCreate creates a PDP context. When the HLR is reachable over Gc and
// no explicit address was requested, the GGSN first retrieves the HLR record
// (paper step 1.3) to learn a provisioned static address.
func (g *GGSN) handleCreate(env *sim.Env, sgsn sim.NodeID, m gtp.CreatePDPRequest) {
	finish := func(staticAddr string) {
		g.finishCreate(env, sgsn, m, staticAddr)
	}
	if m.RequestedAddress != "" {
		finish(m.RequestedAddress)
		return
	}
	if g.cfg.HLR == "" {
		finish("")
		return
	}
	// A retransmitted CreatePDPRequest (same SGSN, same sequence number)
	// while the Gc lookup is in flight is dropped; the pending lookup will
	// answer it.
	key := createKey{sgsn: sgsn, seq: m.Seq}
	g.mu.Lock()
	if _, busy := g.pendingCreate[key]; busy {
		g.mu.Unlock()
		return
	}
	g.pendingCreate[key] = struct{}{}
	g.mu.Unlock()
	invoke := g.dm.InvokeRetry(func(resp sim.Message, ok bool) {
		g.mu.Lock()
		delete(g.pendingCreate, key)
		g.mu.Unlock()
		static := ""
		if ack, isAck := resp.(sigmap.SendRoutingInfoForGPRSAck); ok && isAck && ack.Cause == sigmap.CauseNone {
			static = ack.StaticPDPAddress
		}
		finish(static)
	})
	g.dm.Transmit(env, invoke, g.cfg.ID, g.cfg.HLR,
		sigmap.SendRoutingInfoForGPRS{Invoke: invoke, IMSI: m.IMSI},
		g.cfg.SigRTO, g.cfg.SigRetries)
}

func (g *GGSN) finishCreate(env *sim.Env, sgsn sim.NodeID, m gtp.CreatePDPRequest, staticAddr string) {
	var addr netip.Addr
	dynamic := false
	if staticAddr != "" {
		parsed, err := netip.ParseAddr(staticAddr)
		if err != nil {
			env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{Seq: m.Seq, Cause: gtp.CauseSystemFailure})
			return
		}
		addr = parsed
	} else {
		allocated, err := g.pool.Allocate()
		if err != nil {
			env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{Seq: m.Seq, Cause: gtp.CauseNoResources})
			return
		}
		addr = allocated
		dynamic = true
	}

	tid := gtp.MakeTID(m.IMSI, m.NSAPI)
	negotiated := gtp.Negotiate(m.QoS, g.cfg.MaxKbps)
	g.mu.Lock()
	if existing, exists := g.byTID[tid]; exists {
		g.mu.Unlock()
		if dynamic {
			g.pool.Release(addr)
		}
		if existing.sgsn == sgsn {
			// Retransmitted create whose response was lost: re-acknowledge
			// the context already installed instead of failing it (GSM
			// 09.60 §7.4.1 treats a repeated request as the same one).
			env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{
				Seq: m.Seq, Cause: gtp.CauseAccepted, TID: tid,
				Address: existing.address.String(), QoS: existing.qos,
			})
			return
		}
		env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{Seq: m.Seq, Cause: gtp.CauseSystemFailure})
		return
	}
	g.byTID[tid] = &ggsnPDP{
		imsi: m.IMSI, nsapi: m.NSAPI, tid: tid,
		sgsn: sgsn, address: addr, qos: negotiated, dynamic: dynamic,
	}
	g.byAddr[addr] = tid
	queued := g.queued[addr]
	delete(g.queued, addr)
	g.mu.Unlock()

	env.Send(g.cfg.ID, sgsn, gtp.CreatePDPResponse{
		Seq: m.Seq, Cause: gtp.CauseAccepted, TID: tid, Address: addr.String(),
		QoS: negotiated,
	})
	// Flush traffic that was waiting on network-initiated activation.
	for _, pkt := range queued {
		g.handleDownlink(env, pkt)
	}
}

func (g *GGSN) handleDelete(env *sim.Env, sgsn sim.NodeID, m gtp.DeletePDPRequest) {
	g.mu.Lock()
	ctx, ok := g.byTID[m.TID]
	if ok {
		delete(g.byTID, m.TID)
		delete(g.byAddr, ctx.address)
		if ctx.dynamic {
			g.pool.Release(ctx.address)
		}
	}
	g.mu.Unlock()

	cause := gtp.CauseAccepted
	if !ok {
		cause = gtp.CauseNotFound
	}
	env.Send(g.cfg.ID, sgsn, gtp.DeletePDPResponse{Seq: m.Seq, Cause: cause})
}

// handleUplink decapsulates a T-PDU and forwards the inner packet to Gi —
// or hairpins it straight into another tunnel when the destination is a PDP
// address served by this GGSN (MS-to-MS traffic never leaves the gateway).
func (g *GGSN) handleUplink(env *sim.Env, m gtp.TPDU) {
	pkt, err := ipnet.Unmarshal(m.Payload)
	if err != nil {
		return
	}
	g.mu.Lock()
	_, known := g.byTID[m.TID]
	if known {
		g.ulPackets++
	} else {
		g.dropped++
	}
	g.mu.Unlock()
	if !known {
		return
	}
	g.mu.Lock()
	_, local := g.byAddr[pkt.Dst]
	g.mu.Unlock()
	if local {
		g.handleDownlink(env, pkt)
		return
	}
	env.Send(g.cfg.ID, g.cfg.Gi, pkt)
}

// handleDownlink routes a Gi-side packet into the right tunnel; with no
// active context it either triggers network-initiated activation (static,
// provisioned, feature enabled) or drops.
func (g *GGSN) handleDownlink(env *sim.Env, pkt ipnet.Packet) {
	g.mu.Lock()
	tid, active := g.byAddr[pkt.Dst]
	var ctx *ggsnPDP
	if active {
		ctx = g.byTID[tid]
		g.dlPackets++
	}
	g.mu.Unlock()

	if active {
		env.Send(g.cfg.ID, ctx.sgsn, gtp.TPDU{TID: tid, Payload: pkt.Marshal()})
		return
	}

	g.mu.Lock()
	imsi, isStatic := g.static[pkt.Dst]
	canNotify := g.cfg.NetworkInitiatedActivation && isStatic && g.cfg.HLR != ""
	if canNotify {
		g.queued[pkt.Dst] = append(g.queued[pkt.Dst], pkt)
	} else {
		g.dropped++
	}
	alreadyNotifying := canNotify && len(g.queued[pkt.Dst]) > 1
	g.mu.Unlock()

	if !canNotify || alreadyNotifying {
		return
	}
	// Gc: find the serving SGSN, then ask it to have the MS activate.
	invoke := g.dm.InvokeRetry(func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.SendRoutingInfoForGPRSAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone || ack.SGSN == "" {
			g.mu.Lock()
			g.dropped += uint64(len(g.queued[pkt.Dst]))
			delete(g.queued, pkt.Dst)
			g.mu.Unlock()
			return
		}
		g.mu.Lock()
		g.nextSeq++
		seq := g.nextSeq
		g.mu.Unlock()
		env.Send(g.cfg.ID, sim.NodeID(ack.SGSN), gtp.PDUNotifyRequest{
			Seq: seq, IMSI: imsi, Address: pkt.Dst.String(),
		})
	})
	g.dm.Transmit(env, invoke, g.cfg.ID, g.cfg.HLR,
		sigmap.SendRoutingInfoForGPRS{Invoke: invoke, IMSI: imsi},
		g.cfg.SigRTO, g.cfg.SigRetries)
}
