package gprs

import (
	"net/netip"
	"sync"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
	"vgprs/internal/ss7"
)

// SGSNConfig parameterises an SGSN node.
type SGSNConfig struct {
	ID sim.NodeID
	// GGSN is the gateway this SGSN creates tunnels toward (Gn).
	GGSN sim.NodeID
	// HLR, when set, receives MAP_UPDATE_GPRS_LOCATION at attach (Gr).
	HLR sim.NodeID
	// SigRTO is the initial retransmission timeout for both the Gr MAP
	// dialogues and Gn GTP transactions this SGSN originates; it doubles
	// on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per transaction. Zero means 3.
	SigRetries int
	// MaxContexts bounds concurrently active PDP contexts (the resource
	// the paper's §6 PDP-residency trade-off is about). Zero means
	// unlimited.
	MaxContexts int
	// EchoInterval enables GTP path supervision (GSM 09.60 Echo): the
	// SGSN pings the GGSN every interval once StartPathSupervision is
	// called, and declares the Gn path down after EchoMisses consecutive
	// unanswered echoes. Zero leaves supervision off.
	EchoInterval time.Duration
	// EchoMisses is the consecutive-miss threshold for declaring the
	// path down. Zero means 3.
	EchoMisses int
}

// sgsnShards is the slab fan-out; subscribers spread by IMSI hash.
const sgsnShards = 8

// mmRec is the SGSN's slab-resident per-subscriber mobility context:
// fixed size, no heap pointers. The Gb peer and MS correlation handles are
// interned symbols (their cardinality is the topology size); PDP contexts
// hang off pdpHead as an intrusive list through a second slab.
type mmRec struct {
	imsi  gsmid.PackedDigits
	ptmsi gsmid.PTMSI
	// foreignTLLI is the (random/foreign) TLLI the last attach arrived
	// on. The context is indexed under it as well as the local TLLI, and
	// every teardown path must unindex both — forgetting the foreign one
	// leaked an index entry per attach in the old map-based code.
	foreignTLLI gsmid.TLLI
	// ms and peer record where downlink traffic goes: the Gb peer node
	// (BSC or VMSC) and the MS correlation handle it needs.
	ms   uint32 // symbol in SGSN.names
	peer uint32 // symbol in SGSN.names
	cell uint32 // symbol in SGSN.cells
	// pdpHead/npdp anchor the subscriber's PDP contexts in SGSN.pdps.
	pdpHead slab.Handle
	npdp    uint8
	// attachPending dedupes in-flight attaches: a retransmitted
	// AttachRequest must not spawn a second HLR dialogue.
	attachPending bool
}

// pdpRec is the SGSN's slab-resident per-PDP-context state. Each context
// remembers the Gb path it was activated over: the same subscriber can
// hold voice contexts through the VMSC and data contexts through the radio
// PCU simultaneously (the paper's Fig 2(b) shows both paths side by side),
// and downlink traffic must follow each context's own path.
type pdpRec struct {
	nsapi uint8
	tid   gtp.TID
	addr  netip.Addr // zero when the GGSN assigned no address
	qos   gtp.QoSProfile
	peer  uint32 // symbol in SGSN.names
	ms    uint32 // symbol in SGSN.names
	next  slab.Handle
	// media is the lazily-allocated reusable relay state for realtime
	// (voice) contexts — it makes the per-frame Gb↔Gn relay
	// allocation-free. Nil for signalling/data contexts; cleared when the
	// context is freed so the slab slot retains nothing.
	media *pdpMedia
}

// pdpMedia holds one voice context's reusable relay messages and downlink
// LLC buffer. Each is overwritten once per frame interval; the receiving
// node consumes the previous contents within the link latency (1–2 ms plus
// any chaos jitter), far inside the 20 ms frame beat.
type pdpMedia struct {
	tpdu  gtp.TPDU
	dl    gb.DLUnitdata
	dlBuf []byte
}

// isRTP reports whether an encoded inner packet is RTP media (by port).
// The reusable-message fast path must carry only the periodic media
// stream: signalling sharing a realtime context (as TR 23.923 stacks do)
// must stay on the value path, or a signalling packet and a voice frame
// sent in the same instant would alias one reused message and the earlier
// of the two would be lost in flight. The parse is allocation-free (the
// payload view aliases the input).
func isRTP(encoded []byte) bool {
	pkt, err := ipnet.Unmarshal(encoded)
	if err != nil {
		return false
	}
	return pkt.DstPort == ipnet.PortRTP || pkt.SrcPort == ipnet.PortRTP
}

// addrString renders the PDP address in the SM wire form ("" when unset).
func (p *pdpRec) addrString() string {
	if !p.addr.IsValid() {
		return ""
	}
	return p.addr.String()
}

// SGSN is the serving GPRS support node: it terminates the Gb interface,
// manages attach and PDP-context state, and tunnels user traffic to the
// GGSN over GTP (Gn). Subscriber state lives in slab shards addressed by
// open-addressing indexes (TLLI, IMSI, TID → handle) so an attached-but-
// idle subscriber costs a bounded number of bytes.
type SGSN struct {
	cfg SGSNConfig
	dm  *ss7.DialogueManager

	mu      sync.Mutex
	mms     *slab.Sharded[mmRec]
	pdps    *slab.Sharded[pdpRec]
	byTLLI  *slab.Index[uint32]
	byIMSI  *slab.Index[gsmid.PackedDigits]
	byTID   *slab.Index[uint64]
	names   slab.Syms[string]    // Gb peer and MS correlation node names
	cells   slab.Syms[gsmid.CGI] // serving cells
	nextPT  uint32
	nextSeq uint16
	pending map[uint16]gtpTxn

	ulPackets, dlPackets uint64

	// GTP retransmission: timer records are slab-allocated and recycled
	// like the dialogue manager's, so arming a retry timer per transaction
	// stays allocation-free at steady state. gtpRetransmits counts re-sent
	// request PDUs.
	gtpTimerFree   []*gtpTimer
	gtpRetransmits uint64

	// Attach-dialogue records, recycled the same way (the HLR callback
	// runs exactly once per dialogue).
	attachFree []*attachTxn

	// GTP path supervision state (see SGSNConfig.EchoInterval).
	supervising  bool
	pathDown     bool
	echoAwaiting bool
	echoMissed   int
}

// gtpTxn records one outstanding GTP request toward the GGSN. Pending
// transactions are value-typed and dispatched by kind in resolve, so issuing
// a create or delete request allocates nothing beyond the map slot. The
// subscriber rides along as a slab handle: if it detaches while the
// transaction is in flight the handle goes stale and Get returns nil, which
// replaces the old pointer-identity guard.
type gtpTxn struct {
	kind  uint8 // txnActivate, txnDeactivate or txnCleanup
	nsapi uint8
	peer  sim.NodeID
	ms    sim.NodeID
	tlli  gsmid.TLLI
	tid   gtp.TID
	mm    slab.Handle

	// Retransmission state: the request PDU is re-sent with doubled RTO
	// each time its timer fires while the transaction is still pending.
	env         *sim.Env
	req         sim.Message
	rto         time.Duration
	retriesLeft int
}

const (
	txnActivate = iota + 1
	txnDeactivate
	// txnCleanup is a GGSN-side tunnel teardown with no GMM reply (detach
	// and HLR-cancel paths); it is retransmitted like the others so a lost
	// DeletePDPRequest does not leak the tunnel.
	txnCleanup
)

// gtpTimer is the slab-recycled argument for GTP retransmission timers; it
// locates the pending transaction by sequence number. A record is recycled
// only when its armed timer fires with the transaction already resolved —
// until then the event queue still references it.
type gtpTimer struct {
	s   *SGSN
	seq uint16
}

func (s *SGSN) getGTPTimer(seq uint16) *gtpTimer {
	if len(s.gtpTimerFree) == 0 {
		recs := make([]gtpTimer, 32)
		for i := range recs {
			s.gtpTimerFree = append(s.gtpTimerFree, &recs[i])
		}
	}
	n := len(s.gtpTimerFree)
	g := s.gtpTimerFree[n-1]
	s.gtpTimerFree = s.gtpTimerFree[:n-1]
	g.s, g.seq = s, seq
	return g
}

func (s *SGSN) putGTPTimer(g *gtpTimer) {
	*g = gtpTimer{}
	s.gtpTimerFree = append(s.gtpTimerFree, g)
}

// attachTxn carries one in-flight HLR attach dialogue: the subscriber as a
// stale-safe handle plus the reply path captured at request time.
type attachTxn struct {
	s    *SGSN
	env  *sim.Env
	mm   slab.Handle
	tlli gsmid.TLLI
	peer sim.NodeID
	ms   sim.NodeID
}

func (s *SGSN) getAttachTxn() *attachTxn {
	if len(s.attachFree) == 0 {
		recs := make([]attachTxn, 16)
		for i := range recs {
			s.attachFree = append(s.attachFree, &recs[i])
		}
	}
	n := len(s.attachFree)
	t := s.attachFree[n-1]
	s.attachFree = s.attachFree[:n-1]
	return t
}

func (s *SGSN) putAttachTxn(t *attachTxn) {
	*t = attachTxn{}
	s.attachFree = append(s.attachFree, t)
}

// armGTP registers the pending transaction, transmits its request toward
// the GGSN and arms the retransmission timer.
func (s *SGSN) armGTP(env *sim.Env, seq uint16, t gtpTxn, req sim.Message) {
	t.env, t.req = env, req
	t.rto, t.retriesLeft = s.cfg.SigRTO, s.cfg.SigRetries
	s.mu.Lock()
	s.pending[seq] = t
	s.mu.Unlock()
	env.Send(s.cfg.ID, s.cfg.GGSN, req)
	env.AfterArg(t.rto, gtpExpire, s.getGTPTimer(seq))
}

// gtpExpire runs when a GTP retransmission timer fires. While budget
// remains the request is re-sent with the RTO doubled; once exhausted the
// transaction fails gracefully: activations are rejected back to the
// client, deactivations tear down locally, cleanups are abandoned.
func gtpExpire(arg any) {
	g := arg.(*gtpTimer)
	s := g.s
	s.mu.Lock()
	t, ok := s.pending[g.seq]
	if !ok {
		s.putGTPTimer(g)
		s.mu.Unlock()
		return
	}
	if t.retriesLeft > 0 {
		t.retriesLeft--
		t.rto = sim.NextRTO(t.rto, s.cfg.SigRTO)
		s.pending[g.seq] = t
		s.gtpRetransmits++
		s.mu.Unlock()
		t.env.Send(s.cfg.ID, s.cfg.GGSN, t.req)
		t.env.AfterArg(t.rto, gtpExpire, g)
		return
	}
	delete(s.pending, g.seq)
	s.putGTPTimer(g)
	s.mu.Unlock()
	switch t.kind {
	case txnActivate:
		s.reply(t.env, t.peer, t.ms, t.tlli, ActivatePDPReject{NSAPI: t.nsapi, Cause: SMCauseNetworkFailure})
	case txnDeactivate:
		// The GGSN is unreachable: release the context locally so the
		// subscriber is not stuck holding a dead tunnel (the GGSN side is
		// reclaimed by its own teardown paths on re-attach).
		s.finishDeactivate(t.env, t)
	}
}

var _ sim.Node = (*SGSN)(nil)

// NewSGSN returns an SGSN.
func NewSGSN(cfg SGSNConfig) *SGSN {
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	return &SGSN{
		cfg:     cfg,
		dm:      ss7.NewDialogueManager(),
		mms:     slab.NewSharded[mmRec](sgsnShards),
		pdps:    slab.NewSharded[pdpRec](sgsnShards),
		byTLLI:  slab.NewIndex[uint32](slab.HashUint32),
		byIMSI:  slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
		byTID:   slab.NewIndex[uint64](slab.HashUint64),
		pending: make(map[uint16]gtpTxn),
	}
}

// ID implements sim.Node.
func (s *SGSN) ID() sim.NodeID { return s.cfg.ID }

// Attached returns the number of attached subscribers.
func (s *SGSN) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mms.Len()
}

// ActiveContexts returns the number of active PDP contexts — the SGSN-side
// residency cost measured by experiment C2.
func (s *SGSN) ActiveContexts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pdps.Len()
}

// Forwarded returns (uplink, downlink) user-plane packet counts.
func (s *SGSN) Forwarded() (ul, dl uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ulPackets, s.dlPackets
}

// PendingTransactions returns the number of outstanding GTP transactions
// toward the GGSN (creates, deletes and cleanups still awaiting a response
// or a retry-budget verdict). Zero at quiescence.
func (s *SGSN) PendingTransactions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// OutstandingDialogues returns un-answered MAP invokes toward the HLR.
func (s *SGSN) OutstandingDialogues() int { return s.dm.Outstanding() }

// Retransmits returns the number of signalling request PDUs (MAP + GTP)
// this SGSN has re-sent.
func (s *SGSN) Retransmits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dm.Retransmits() + s.gtpRetransmits
}

// SlabImbalance audits the slab storage: every index entry must resolve to
// a live record that agrees with the key, per-shard occupancy must balance
// (cap == live + free), and the PDP slab population must match the sum of
// per-subscriber context lists and the TID index. Non-zero means a context
// leaked or was lost; the soak/leak gates assert zero.
func (s *SGSN) SlabImbalance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	imb := 0
	perShard := make([]int, sgsnShards)
	pdpListed := 0
	tlliExpected := 0
	s.byIMSI.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		r := s.mms.Get(h)
		if r == nil || r.imsi != k {
			imb++
			return true
		}
		perShard[h.Shard()]++
		// Each subscriber owns its local TLLI entry plus, when roaming in
		// on a foreign TLLI, exactly one alias — a re-attach that forgets
		// to unindex the old alias shows up as excess byTLLI population.
		tlliExpected++
		if r.foreignTLLI != 0 {
			tlliExpected++
		}
		// The context list must be exactly npdp live records.
		n := 0
		for ph := r.pdpHead; !ph.IsZero(); {
			p := s.pdps.Get(ph)
			if p == nil {
				imb++
				break
			}
			n++
			ph = p.next
		}
		if n != int(r.npdp) {
			imb++
		}
		pdpListed += n
		return true
	})
	for _, a := range s.mms.Audit() {
		imb += a.Imbalance() + abs(perShard[a.Shard]-a.Live)
	}
	for _, a := range s.pdps.Audit() {
		imb += a.Imbalance()
	}
	imb += abs(pdpListed - s.pdps.Len())
	imb += abs(s.byTID.Len() - s.pdps.Len())
	imb += abs(tlliExpected - s.byTLLI.Len())
	s.byTLLI.Range(func(_ uint32, h slab.Handle) bool {
		if s.mms.Get(h) == nil {
			imb++
		}
		return true
	})
	s.byTID.Range(func(_ uint64, h slab.Handle) bool {
		if s.mms.Get(h) == nil {
			imb++
		}
		return true
	})
	return imb
}

func abs(d int) int {
	if d < 0 {
		return -d
	}
	return d
}

// lookupTLLI resolves a TLLI to the subscriber's record. Callers hold s.mu.
func (s *SGSN) lookupTLLI(tlli gsmid.TLLI) (slab.Handle, *mmRec) {
	h := s.byTLLI.Get(uint32(tlli))
	return h, s.mms.Get(h)
}

// findPDP walks the subscriber's context list for an NSAPI. Callers hold
// s.mu.
func (s *SGSN) findPDP(r *mmRec, nsapi uint8) *pdpRec {
	for h := r.pdpHead; !h.IsZero(); {
		p := s.pdps.Get(h)
		if p == nil {
			return nil
		}
		if p.nsapi == nsapi {
			return p
		}
		h = p.next
	}
	return nil
}

// addPDP links a new context record onto the subscriber. Callers hold s.mu.
func (s *SGSN) addPDP(mm slab.Handle, r *mmRec) (slab.Handle, *pdpRec) {
	h, p := s.pdps.Alloc(mm.Shard())
	p.next = r.pdpHead
	r.pdpHead = h
	r.npdp++
	return h, p
}

// removePDP unlinks and frees the context with the given NSAPI, returning
// its TID. Callers hold s.mu.
func (s *SGSN) removePDP(r *mmRec, nsapi uint8) (gtp.TID, bool) {
	prev := &r.pdpHead
	for h := *prev; !h.IsZero(); h = *prev {
		p := s.pdps.Get(h)
		if p == nil {
			return 0, false
		}
		if p.nsapi == nsapi {
			tid := p.tid
			*prev = p.next
			s.byTID.Delete(uint64(tid))
			p.media = nil
			s.pdps.Free(h)
			r.npdp--
			return tid, true
		}
		prev = &p.next
	}
	return 0, false
}

// removeAllPDPs tears down every context of a subscriber, appending the
// TIDs to tids. Callers hold s.mu.
func (s *SGSN) removeAllPDPs(r *mmRec, tids []gtp.TID) []gtp.TID {
	for h := r.pdpHead; !h.IsZero(); {
		p := s.pdps.Get(h)
		if p == nil {
			break
		}
		next := p.next
		tids = append(tids, p.tid)
		s.byTID.Delete(uint64(p.tid))
		p.media = nil
		s.pdps.Free(h)
		h = next
	}
	r.pdpHead = 0
	r.npdp = 0
	return tids
}

// unindexTLLIs removes every TLLI alias of a subscriber — the local TLLI
// derived from its P-TMSI and the foreign TLLI its last attach arrived on.
// Callers hold s.mu.
func (s *SGSN) unindexTLLIs(r *mmRec) {
	s.byTLLI.Delete(uint32(gsmid.LocalTLLI(r.ptmsi)))
	if r.foreignTLLI != 0 {
		s.byTLLI.Delete(uint32(r.foreignTLLI))
	}
}

// Receive implements sim.Node.
func (s *SGSN) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case gb.ULUnitdata:
		s.handleUL(env, from, m)
	case *gb.ULUnitdata:
		// Voice fast path: senders reuse a pointer message to avoid the
		// interface-boxing allocation per frame.
		s.handleUL(env, from, *m)
	case gtp.CreatePDPResponse:
		s.resolve(env, m.Seq, m)
	case gtp.DeletePDPResponse:
		s.resolve(env, m.Seq, m)
	case gtp.TPDU:
		s.handleDownlinkTPDU(env, m)
	case *gtp.TPDU:
		s.handleDownlinkTPDU(env, *m)
	case gtp.PDUNotifyRequest:
		s.handlePDUNotify(env, from, m)
	case gtp.EchoRequest:
		env.Send(s.cfg.ID, from, gtp.EchoResponse{Seq: m.Seq})
	case gtp.EchoResponse:
		s.handleEchoResponse()
	case sigmap.UpdateGPRSLocationAck:
		s.dm.Resolve(m.Invoke, msg)
	case sigmap.CancelLocation:
		s.handleCancelLocation(env, from, m)
	}
}

// handleCancelLocation purges a subscriber whose service moved to another
// SGSN (HLR-driven, GSM 03.60 inter-SGSN routing-area update): the MM
// context and every PDP context go, including the GGSN-side tunnels.
func (s *SGSN) handleCancelLocation(env *sim.Env, from sim.NodeID, m sigmap.CancelLocation) {
	s.mu.Lock()
	h := s.byIMSI.Get(m.IMSI.Pack())
	var tids []gtp.TID
	if r := s.mms.Get(h); r != nil {
		tids = s.removeAllPDPs(r, tids)
		s.byIMSI.Delete(r.imsi)
		s.unindexTLLIs(r)
		s.mms.Free(h)
	}
	s.mu.Unlock()
	for _, tid := range tids {
		s.cleanupTunnel(env, tid)
	}
	env.Send(s.cfg.ID, from, sigmap.CancelLocationAck{Invoke: m.Invoke})
}

// cleanupTunnel tears a GGSN-side tunnel down with retransmission but no
// GMM reply (detach and HLR-cancel paths).
func (s *SGSN) cleanupTunnel(env *sim.Env, tid gtp.TID) {
	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()
	s.armGTP(env, seq, gtpTxn{kind: txnCleanup, tid: tid},
		gtp.DeletePDPRequest{Seq: seq, TID: tid})
}

func (s *SGSN) resolve(env *sim.Env, seq uint16, resp sim.Message) {
	s.mu.Lock()
	t, ok := s.pending[seq]
	if ok {
		delete(s.pending, seq)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	switch t.kind {
	case txnActivate:
		s.finishActivate(env, t, resp)
	case txnDeactivate:
		s.finishDeactivate(env, t)
	}
}

// reply sends a GMM/SM answer back over the path the request came in on
// (peer + MS handle), so transactions for one subscriber can run over the
// VMSC and radio paths independently.
func (s *SGSN) reply(env *sim.Env, peer, ms sim.NodeID, tlli gsmid.TLLI, sm sim.Message) {
	pdu, err := WrapSM(sm)
	if err != nil {
		return
	}
	// Record the logical GMM/SM arrow; the bytes ride inside LLC/Gb.
	env.Note(s.cfg.ID, peer, "GMM", sm)
	env.Send(s.cfg.ID, peer, gb.DLUnitdata{TLLI: tlli, MS: ms, PDU: pdu})
}

func (s *SGSN) handleUL(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata) {
	// User data takes a fast path: the SNDCP payload bytes ARE the inner
	// packet's wire form, so the SGSN relays them into the GTP tunnel
	// without the decode/re-encode round trip (the GGSN validates on its
	// end). Signalling still gets the full parse below.
	if len(ul.PDU) >= 2 && ul.PDU[0] == sapiData {
		s.handleUplinkData(env, ul, ul.PDU[1], ul.PDU[2:])
		return
	}
	parsed, err := ParsePDU(ul.PDU)
	if err != nil {
		return
	}
	// Record the logical GMM/SM arrow for the decoded signalling message.
	env.Note(peer, s.cfg.ID, "GMM", parsed.SM)
	switch m := parsed.SM.(type) {
	case AttachRequest:
		s.handleAttach(env, peer, ul, m)
	case DetachRequest:
		s.handleDetach(env, ul)
	case ActivatePDPRequest:
		s.handleActivate(env, peer, ul, m)
	case DeactivatePDPRequest:
		s.handleDeactivate(env, peer, ul, m)
	case RAUpdateRequest:
		s.handleRAUpdate(env, peer, ul, m)
	}
}

func (s *SGSN) handleAttach(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m AttachRequest) {
	packed := m.IMSI.Pack()
	s.mu.Lock()
	h := s.byIMSI.Get(packed)
	r := s.mms.Get(h)
	if r == nil {
		s.nextPT++
		h, r = s.mms.Alloc(int(packed.Hash() & (sgsnShards - 1)))
		r.imsi = packed
		r.ptmsi = gsmid.PTMSI(s.nextPT)
		s.byIMSI.Put(packed, h)
	}
	// A retransmitted AttachRequest while the HLR dialogue is in flight
	// must not spawn a second one; the pending dialogue will answer.
	if r.attachPending {
		s.mu.Unlock()
		return
	}
	r.ms = s.names.ID(string(ul.MS))
	r.peer = s.names.ID(string(peer))
	r.cell = s.cells.ID(ul.Cell)
	// Index under both the TLLI the request came with and the local TLLI
	// the client derives from its new P-TMSI. A re-attach can arrive on a
	// different foreign TLLI — unindex the previous one or it dangles.
	local := gsmid.LocalTLLI(r.ptmsi)
	if r.foreignTLLI != 0 && r.foreignTLLI != ul.TLLI {
		s.byTLLI.Delete(uint32(r.foreignTLLI))
	}
	if ul.TLLI != local {
		r.foreignTLLI = ul.TLLI
	} else {
		r.foreignTLLI = 0
	}
	s.byTLLI.Put(uint32(ul.TLLI), h)
	s.byTLLI.Put(uint32(local), h)
	ptmsi := r.ptmsi
	if s.cfg.HLR != "" {
		r.attachPending = true
	}
	s.mu.Unlock()

	if s.cfg.HLR == "" {
		s.reply(env, peer, ul.MS, ul.TLLI, AttachAccept{PTMSI: ptmsi})
		return
	}
	t := s.getAttachTxn()
	*t = attachTxn{s: s, env: env, mm: h, tlli: ul.TLLI, peer: peer, ms: ul.MS}
	invoke := s.dm.InvokeRetryArg(attachHLRDone, t)
	s.dm.Transmit(env, invoke, s.cfg.ID, s.cfg.HLR, sigmap.UpdateGPRSLocation{
		Invoke: invoke, IMSI: m.IMSI, SGSN: string(s.cfg.ID),
	}, s.cfg.SigRTO, s.cfg.SigRetries)
}

// attachHLRDone completes GPRS attach when the HLR answers (or the dialogue
// times out). The subscriber rides through the dialogue as a slab handle:
// if it was cancelled meanwhile the handle is stale and there is nobody to
// answer.
func attachHLRDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*attachTxn)
	s, env, mm, tlli, peer, ms := t.s, t.env, t.mm, t.tlli, t.peer, t.ms
	s.putAttachTxn(t)
	s.mu.Lock()
	r := s.mms.Get(mm)
	var ptmsi gsmid.PTMSI
	if r != nil {
		r.attachPending = false
		ptmsi = r.ptmsi
	}
	s.mu.Unlock()
	if r == nil {
		return
	}
	ack, isAck := resp.(sigmap.UpdateGPRSLocationAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone {
		s.reply(env, peer, ms, tlli, AttachReject{Cause: SMCauseUnknownSubscriber})
		return
	}
	s.reply(env, peer, ms, tlli, AttachAccept{PTMSI: ptmsi})
}

func (s *SGSN) handleDetach(env *sim.Env, ul gb.ULUnitdata) {
	s.mu.Lock()
	h, r := s.lookupTLLI(ul.TLLI)
	var tids []gtp.TID
	var peer sim.NodeID
	if r != nil {
		tids = s.removeAllPDPs(r, tids)
		peer = sim.NodeID(s.names.Val(r.peer))
		s.byIMSI.Delete(r.imsi)
		s.unindexTLLIs(r)
		s.byTLLI.Delete(uint32(ul.TLLI)) // covers a detach on an unusual alias
		s.mms.Free(h)
	}
	s.mu.Unlock()
	if r == nil {
		return
	}
	// Tear the tunnels down at the GGSN too, or a later re-attach would
	// collide with the stale TIDs (GSM 03.60 detach deletes all contexts).
	for _, tid := range tids {
		s.cleanupTunnel(env, tid)
	}
	s.reply(env, peer, ul.MS, ul.TLLI, DetachAccept{})
}

func (s *SGSN) handleActivate(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m ActivatePDPRequest) {
	s.mu.Lock()
	h, r := s.lookupTLLI(ul.TLLI)
	ok := r != nil
	var full, inFlight bool
	var dupAddr string
	var dupQoS gtp.QoSProfile
	var dup bool
	var imsi gsmid.IMSI
	if ok {
		imsi = r.imsi.IMSI()
		if p := s.findPDP(r, m.NSAPI); p != nil {
			dup = true
			dupAddr = p.addrString()
			dupQoS = p.qos
		}
		full = s.cfg.MaxContexts > 0 && s.pdps.Len() >= s.cfg.MaxContexts
		// A retransmitted ActivatePDPRequest while the GTP create is in
		// flight must not issue a second CreatePDPRequest.
		for _, t := range s.pending {
			if t.kind == txnActivate && t.tlli == ul.TLLI && t.nsapi == m.NSAPI {
				inFlight = true
				break
			}
		}
	}
	pathDown := s.pathDown
	s.mu.Unlock()

	switch {
	case !ok:
		return // not attached: no reply channel is even known
	case inFlight:
		return // duplicate of a pending activation: the original will answer
	case pathDown:
		// Path supervision has declared the GGSN unreachable: fail fast
		// instead of letting the create request vanish into the tunnel.
		s.reply(env, peer, ul.MS, ul.TLLI, ActivatePDPReject{NSAPI: m.NSAPI, Cause: SMCauseNetworkFailure})
		return
	case dup:
		// The NSAPI is already active: this is a retransmission whose
		// Accept was lost. Re-ack with the existing binding — rejecting
		// here would turn one dropped downlink frame into a permanent
		// activation failure.
		s.reply(env, peer, ul.MS, ul.TLLI, ActivatePDPAccept{NSAPI: m.NSAPI, Address: dupAddr, QoS: dupQoS})
		return
	case full:
		s.reply(env, peer, ul.MS, ul.TLLI, ActivatePDPReject{NSAPI: m.NSAPI, Cause: SMCauseNoResources})
		return
	}

	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	s.armGTP(env, seq, gtpTxn{
		kind: txnActivate, nsapi: m.NSAPI,
		peer: peer, ms: ul.MS, tlli: ul.TLLI, mm: h,
	}, gtp.CreatePDPRequest{
		Seq: seq, IMSI: imsi, NSAPI: m.NSAPI, QoS: m.QoS,
		SGSN: string(s.cfg.ID), RequestedAddress: m.RequestedAddress,
	})
}

func (s *SGSN) finishActivate(env *sim.Env, t gtpTxn, resp sim.Message) {
	cr, isCreate := resp.(gtp.CreatePDPResponse)
	if !isCreate || !cr.Cause.Accepted() {
		s.reply(env, t.peer, t.ms, t.tlli, ActivatePDPReject{NSAPI: t.nsapi, Cause: SMCauseNetworkFailure})
		return
	}
	s.mu.Lock()
	r := s.mms.Get(t.mm)
	if r == nil {
		// The subscriber detached (or the HLR cancelled it) while the
		// create was in flight: the handle is stale, and installing the
		// context now would leak it permanently — nothing ever detaches a
		// context the MM index no longer references. Reclaim the freshly
		// built GGSN-side tunnel instead and stay silent; there is no
		// subscriber to answer.
		s.mu.Unlock()
		s.cleanupTunnel(env, cr.TID)
		return
	}
	_, p := s.addPDP(t.mm, r)
	p.nsapi = t.nsapi
	p.tid = cr.TID
	if cr.Address != "" {
		if a, err := netip.ParseAddr(cr.Address); err == nil {
			p.addr = a
		}
	}
	p.qos = cr.QoS
	p.peer = s.names.ID(string(t.peer))
	p.ms = s.names.ID(string(t.ms))
	s.byTID.Put(uint64(cr.TID), t.mm)
	s.mu.Unlock()
	s.reply(env, t.peer, t.ms, t.tlli, ActivatePDPAccept{NSAPI: t.nsapi, Address: cr.Address, QoS: cr.QoS})
}

func (s *SGSN) handleDeactivate(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m DeactivatePDPRequest) {
	s.mu.Lock()
	h, r := s.lookupTLLI(ul.TLLI)
	ok := r != nil
	var pdp *pdpRec
	var inFlight bool
	if ok {
		pdp = s.findPDP(r, m.NSAPI)
		for _, t := range s.pending {
			if t.kind == txnDeactivate && t.tlli == ul.TLLI && t.nsapi == m.NSAPI {
				inFlight = true
				break
			}
		}
	}
	var tid gtp.TID
	if pdp != nil {
		tid = pdp.tid
	}
	s.mu.Unlock()
	if !ok || inFlight {
		return
	}
	if pdp == nil {
		// Already deactivated: the Accept was lost and this is the
		// client's retransmission. Re-ack so its timer stops.
		s.reply(env, peer, ul.MS, ul.TLLI, DeactivatePDPAccept{NSAPI: m.NSAPI})
		return
	}

	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	s.armGTP(env, seq, gtpTxn{
		kind: txnDeactivate, nsapi: m.NSAPI,
		peer: peer, ms: ul.MS, tlli: ul.TLLI, tid: tid, mm: h,
	}, gtp.DeletePDPRequest{Seq: seq, TID: tid})
}

func (s *SGSN) finishDeactivate(env *sim.Env, t gtpTxn) {
	s.mu.Lock()
	// A detach or HLR cancel that raced the in-flight delete has already
	// released this context (the handle went stale with it); removePDP on
	// a live record is naturally idempotent because the NSAPI entry is
	// already gone.
	if r := s.mms.Get(t.mm); r != nil {
		s.removePDP(r, t.nsapi)
	}
	s.mu.Unlock()
	s.reply(env, t.peer, t.ms, t.tlli, DeactivatePDPAccept{NSAPI: t.nsapi})
}

func (s *SGSN) handleUplinkData(env *sim.Env, ul gb.ULUnitdata, nsapi uint8, payload []byte) {
	s.mu.Lock()
	_, r := s.lookupTLLI(ul.TLLI)
	var pdp *pdpRec
	if r != nil {
		pdp = s.findPDP(r, nsapi)
	}
	var tid gtp.TID
	var med *pdpMedia
	if pdp != nil {
		s.ulPackets++
		tid = pdp.tid
		if pdp.qos.Realtime && isRTP(payload) {
			if pdp.media == nil {
				pdp.media = &pdpMedia{}
			}
			med = pdp.media
		}
	}
	s.mu.Unlock()
	if pdp == nil {
		return
	}
	if med != nil {
		// Realtime context: reuse the context's GTP message (the GGSN
		// consumes the previous one within the Gn latency).
		med.tpdu = gtp.TPDU{TID: tid, Payload: payload}
		env.Send(s.cfg.ID, s.cfg.GGSN, &med.tpdu)
		return
	}
	env.Send(s.cfg.ID, s.cfg.GGSN, gtp.TPDU{TID: tid, Payload: payload})
}

func (s *SGSN) handleDownlinkTPDU(env *sim.Env, m gtp.TPDU) {
	s.mu.Lock()
	r := s.mms.Get(s.byTID.Get(uint64(m.TID)))
	ok := r != nil
	var tlli gsmid.TLLI
	var med *pdpMedia
	peer, ms := sim.NodeID(""), sim.NodeID("")
	if ok {
		tlli = gsmid.LocalTLLI(r.ptmsi)
		s.dlPackets++
		// Downlink follows the path the context was activated over.
		peer, ms = sim.NodeID(s.names.Val(r.peer)), sim.NodeID(s.names.Val(r.ms))
		pdp := s.findPDP(r, m.TID.NSAPI())
		if pdp != nil && pdp.peer != 0 {
			peer, ms = sim.NodeID(s.names.Val(pdp.peer)), sim.NodeID(s.names.Val(pdp.ms))
		}
		// Downlink media rides whatever context owns the destination
		// address — the voice context, or the signalling context when an
		// endpoint registers its media address there — so the fast path
		// gates on the RTP port alone, not the QoS profile.
		if pdp != nil && isRTP(m.Payload) {
			if pdp.media == nil {
				pdp.media = &pdpMedia{}
			}
			med = pdp.media
		}
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	if med != nil {
		// Realtime context: frame the LLC PDU into the context's reusable
		// buffer and send the reusable Gb message by pointer. The Gb peer
		// (VMSC or PCU) copies the frame at arrival, within the link
		// latency.
		med.dlBuf = append(med.dlBuf[:0], sapiData, m.TID.NSAPI())
		med.dlBuf = append(med.dlBuf, m.Payload...)
		med.dl = gb.DLUnitdata{TLLI: tlli, MS: ms, PDU: med.dlBuf}
		env.Send(s.cfg.ID, peer, &med.dl)
		return
	}
	pdu := make([]byte, 0, 2+len(m.Payload))
	pdu = append(pdu, sapiData, m.TID.NSAPI())
	pdu = append(pdu, m.Payload...)
	env.Send(s.cfg.ID, peer, gb.DLUnitdata{TLLI: tlli, MS: ms, PDU: pdu})
}

// handleRAUpdate refreshes the subscriber's serving cell and Gb path on a
// routing-area update; PDP contexts survive (GSM 03.60 §6.9), though each
// context keeps routing downlink over the path it was activated on until
// re-activated.
func (s *SGSN) handleRAUpdate(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m RAUpdateRequest) {
	s.mu.Lock()
	_, r := s.lookupTLLI(ul.TLLI)
	ok := r != nil
	if ok {
		peerSym := s.names.ID(string(peer))
		msSym := s.names.ID(string(ul.MS))
		r.peer = peerSym
		r.ms = msSym
		r.cell = s.cells.ID(ul.Cell)
		// Contexts activated over the moving path follow the MS.
		for h := r.pdpHead; !h.IsZero(); {
			p := s.pdps.Get(h)
			if p == nil {
				break
			}
			if p.ms == msSym {
				p.peer = peerSym
			}
			h = p.next
		}
	}
	s.mu.Unlock()
	if ok {
		s.reply(env, peer, ul.MS, ul.TLLI, RAUpdateAccept{RAI: m.RAI})
	}
}

// handlePDUNotify relays the GGSN's network-requested activation to the MS
// (TR 23.923 MT-call path).
func (s *SGSN) handlePDUNotify(env *sim.Env, from sim.NodeID, m gtp.PDUNotifyRequest) {
	s.mu.Lock()
	r := s.mms.Get(s.byIMSI.Get(m.IMSI.Pack()))
	ok := r != nil
	var tlli gsmid.TLLI
	var peer, ms sim.NodeID
	if ok {
		tlli = gsmid.LocalTLLI(r.ptmsi)
		peer, ms = sim.NodeID(s.names.Val(r.peer)), sim.NodeID(s.names.Val(r.ms))
	}
	s.mu.Unlock()

	cause := gtp.CauseAccepted
	if !ok {
		cause = gtp.CauseNotFound
	}
	env.Send(s.cfg.ID, from, gtp.PDUNotifyResponse{Seq: m.Seq, Cause: cause})
	if ok {
		// Unsolicited requests use the subscriber's most recent attach
		// path (the only one the SGSN can assume is listening).
		s.reply(env, peer, ms, tlli, RequestPDPActivation{Address: m.Address})
	}
}

// StartPathSupervision begins periodic GTP Echo probing of the Gn path.
// It requires SGSNConfig.EchoInterval > 0 and is idempotent. Supervision
// keeps the event queue non-empty, so drive the simulation with RunUntil
// rather than Run once it is started.
func (s *SGSN) StartPathSupervision(env *sim.Env) {
	s.mu.Lock()
	if s.supervising || s.cfg.EchoInterval <= 0 {
		s.mu.Unlock()
		return
	}
	s.supervising = true
	s.mu.Unlock()
	s.echoTick(env)
}

// PathUp reports whether the Gn path toward the GGSN is considered alive.
// It is true until supervision observes the miss threshold.
func (s *SGSN) PathUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.pathDown
}

func (s *SGSN) echoTick(env *sim.Env) {
	s.mu.Lock()
	if s.echoAwaiting {
		s.echoMissed++
		limit := s.cfg.EchoMisses
		if limit == 0 {
			limit = 3
		}
		if s.echoMissed >= limit {
			s.pathDown = true
		}
	}
	s.echoAwaiting = true
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	env.Send(s.cfg.ID, s.cfg.GGSN, gtp.EchoRequest{Seq: seq})
	env.After(s.cfg.EchoInterval, func() { s.echoTick(env) })
}

// handleEchoResponse marks the Gn path alive again: any response clears
// the miss counter and a down verdict (peer restart recovery).
func (s *SGSN) handleEchoResponse() {
	s.mu.Lock()
	s.echoAwaiting = false
	s.echoMissed = 0
	s.pathDown = false
	s.mu.Unlock()
}
