package gprs

import (
	"sync"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// SGSNConfig parameterises an SGSN node.
type SGSNConfig struct {
	ID sim.NodeID
	// GGSN is the gateway this SGSN creates tunnels toward (Gn).
	GGSN sim.NodeID
	// HLR, when set, receives MAP_UPDATE_GPRS_LOCATION at attach (Gr).
	HLR sim.NodeID
	// SigRTO is the initial retransmission timeout for both the Gr MAP
	// dialogues and Gn GTP transactions this SGSN originates; it doubles
	// on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per transaction. Zero means 3.
	SigRetries int
	// MaxContexts bounds concurrently active PDP contexts (the resource
	// the paper's §6 PDP-residency trade-off is about). Zero means
	// unlimited.
	MaxContexts int
	// EchoInterval enables GTP path supervision (GSM 09.60 Echo): the
	// SGSN pings the GGSN every interval once StartPathSupervision is
	// called, and declares the Gn path down after EchoMisses consecutive
	// unanswered echoes. Zero leaves supervision off.
	EchoInterval time.Duration
	// EchoMisses is the consecutive-miss threshold for declaring the
	// path down. Zero means 3.
	EchoMisses int
}

// mmCtx is the SGSN's per-subscriber mobility context.
type mmCtx struct {
	imsi  gsmid.IMSI
	ptmsi gsmid.PTMSI
	// ms and peer record where downlink traffic goes: the Gb peer node
	// (BSC or VMSC) and the MS correlation handle it needs.
	ms   sim.NodeID
	peer sim.NodeID
	cell gsmid.CGI
	// pdp is created lazily on the first activation: every attach allocates
	// an mmCtx, but attach-only subscribers never need the map.
	pdp map[uint8]*sgsnPDP

	// Attach-transaction state. The HLR dialogue threads the mmCtx itself
	// through InvokeArg, so the attach procedure allocates no closures; the
	// fields below carry what the completion callback needs.
	sgsn       *SGSN
	attachEnv  *sim.Env
	attachTLLI gsmid.TLLI
	// attachPending dedupes in-flight attaches: a retransmitted
	// AttachRequest must not spawn a second HLR dialogue.
	attachPending bool
}

// sgsnPDP is the SGSN's per-context state. Each context remembers the Gb
// path it was activated over: the same subscriber can hold voice contexts
// through the VMSC and data contexts through the radio PCU simultaneously
// (the paper's Fig 2(b) shows both paths side by side), and downlink
// traffic must follow each context's own path.
type sgsnPDP struct {
	nsapi   uint8
	tid     gtp.TID
	address string
	qos     gtp.QoSProfile
	peer    sim.NodeID
	ms      sim.NodeID
}

// SGSN is the serving GPRS support node: it terminates the Gb interface,
// manages attach and PDP-context state, and tunnels user traffic to the
// GGSN over GTP (Gn).
type SGSN struct {
	cfg SGSNConfig
	dm  *ss7.DialogueManager

	mu       sync.Mutex
	byTLLI   map[gsmid.TLLI]*mmCtx
	byIMSI   map[gsmid.IMSI]*mmCtx
	byTID    map[gtp.TID]*mmCtx
	nextPT   uint32
	nextSeq  uint16
	pending  map[uint16]gtpTxn
	contexts int

	ulPackets, dlPackets uint64

	// GTP retransmission: timer records are slab-allocated and recycled
	// like the dialogue manager's, so arming a retry timer per transaction
	// stays allocation-free at steady state. gtpRetransmits counts re-sent
	// request PDUs.
	gtpTimerFree   []*gtpTimer
	gtpRetransmits uint64

	// GTP path supervision state (see SGSNConfig.EchoInterval).
	supervising  bool
	pathDown     bool
	echoAwaiting bool
	echoMissed   int
}

// gtpTxn records one outstanding GTP request toward the GGSN. Pending
// transactions are value-typed and dispatched by kind in resolve, so issuing
// a create or delete request allocates nothing beyond the map slot.
type gtpTxn struct {
	kind  uint8 // txnActivate, txnDeactivate or txnCleanup
	nsapi uint8
	peer  sim.NodeID
	ms    sim.NodeID
	tlli  gsmid.TLLI
	tid   gtp.TID
	ctx   *mmCtx

	// Retransmission state: the request PDU is re-sent with doubled RTO
	// each time its timer fires while the transaction is still pending.
	env         *sim.Env
	req         sim.Message
	rto         time.Duration
	retriesLeft int
}

const (
	txnActivate = iota + 1
	txnDeactivate
	// txnCleanup is a GGSN-side tunnel teardown with no GMM reply (detach
	// and HLR-cancel paths); it is retransmitted like the others so a lost
	// DeletePDPRequest does not leak the tunnel.
	txnCleanup
)

// gtpTimer is the slab-recycled argument for GTP retransmission timers; it
// locates the pending transaction by sequence number. A record is recycled
// only when its armed timer fires with the transaction already resolved —
// until then the event queue still references it.
type gtpTimer struct {
	s   *SGSN
	seq uint16
}

func (s *SGSN) getGTPTimer(seq uint16) *gtpTimer {
	if len(s.gtpTimerFree) == 0 {
		slab := make([]gtpTimer, 32)
		for i := range slab {
			s.gtpTimerFree = append(s.gtpTimerFree, &slab[i])
		}
	}
	n := len(s.gtpTimerFree)
	g := s.gtpTimerFree[n-1]
	s.gtpTimerFree = s.gtpTimerFree[:n-1]
	g.s, g.seq = s, seq
	return g
}

func (s *SGSN) putGTPTimer(g *gtpTimer) {
	*g = gtpTimer{}
	s.gtpTimerFree = append(s.gtpTimerFree, g)
}

// armGTP registers the pending transaction, transmits its request toward
// the GGSN and arms the retransmission timer.
func (s *SGSN) armGTP(env *sim.Env, seq uint16, t gtpTxn, req sim.Message) {
	t.env, t.req = env, req
	t.rto, t.retriesLeft = s.cfg.SigRTO, s.cfg.SigRetries
	s.mu.Lock()
	s.pending[seq] = t
	s.mu.Unlock()
	env.Send(s.cfg.ID, s.cfg.GGSN, req)
	env.AfterArg(t.rto, gtpExpire, s.getGTPTimer(seq))
}

// gtpExpire runs when a GTP retransmission timer fires. While budget
// remains the request is re-sent with the RTO doubled; once exhausted the
// transaction fails gracefully: activations are rejected back to the
// client, deactivations tear down locally, cleanups are abandoned.
func gtpExpire(arg any) {
	g := arg.(*gtpTimer)
	s := g.s
	s.mu.Lock()
	t, ok := s.pending[g.seq]
	if !ok {
		s.putGTPTimer(g)
		s.mu.Unlock()
		return
	}
	if t.retriesLeft > 0 {
		t.retriesLeft--
		t.rto = sim.NextRTO(t.rto, s.cfg.SigRTO)
		s.pending[g.seq] = t
		s.gtpRetransmits++
		s.mu.Unlock()
		t.env.Send(s.cfg.ID, s.cfg.GGSN, t.req)
		t.env.AfterArg(t.rto, gtpExpire, g)
		return
	}
	delete(s.pending, g.seq)
	s.putGTPTimer(g)
	s.mu.Unlock()
	switch t.kind {
	case txnActivate:
		s.reply(t.env, t.peer, t.ms, t.tlli, ActivatePDPReject{NSAPI: t.nsapi, Cause: SMCauseNetworkFailure})
	case txnDeactivate:
		// The GGSN is unreachable: release the context locally so the
		// subscriber is not stuck holding a dead tunnel (the GGSN side is
		// reclaimed by its own teardown paths on re-attach).
		s.finishDeactivate(t.env, t)
	}
}

var _ sim.Node = (*SGSN)(nil)

// NewSGSN returns an SGSN.
func NewSGSN(cfg SGSNConfig) *SGSN {
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	return &SGSN{
		cfg:     cfg,
		dm:      ss7.NewDialogueManager(),
		byTLLI:  make(map[gsmid.TLLI]*mmCtx),
		byIMSI:  make(map[gsmid.IMSI]*mmCtx),
		byTID:   make(map[gtp.TID]*mmCtx),
		pending: make(map[uint16]gtpTxn),
	}
}

// ID implements sim.Node.
func (s *SGSN) ID() sim.NodeID { return s.cfg.ID }

// Attached returns the number of attached subscribers.
func (s *SGSN) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byIMSI)
}

// ActiveContexts returns the number of active PDP contexts — the SGSN-side
// residency cost measured by experiment C2.
func (s *SGSN) ActiveContexts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.contexts
}

// Forwarded returns (uplink, downlink) user-plane packet counts.
func (s *SGSN) Forwarded() (ul, dl uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ulPackets, s.dlPackets
}

// PendingTransactions returns the number of outstanding GTP transactions
// toward the GGSN (creates, deletes and cleanups still awaiting a response
// or a retry-budget verdict). Zero at quiescence.
func (s *SGSN) PendingTransactions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// OutstandingDialogues returns un-answered MAP invokes toward the HLR.
func (s *SGSN) OutstandingDialogues() int { return s.dm.Outstanding() }

// Retransmits returns the number of signalling request PDUs (MAP + GTP)
// this SGSN has re-sent.
func (s *SGSN) Retransmits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dm.Retransmits() + s.gtpRetransmits
}

// Receive implements sim.Node.
func (s *SGSN) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case gb.ULUnitdata:
		s.handleUL(env, from, m)
	case gtp.CreatePDPResponse:
		s.resolve(env, m.Seq, m)
	case gtp.DeletePDPResponse:
		s.resolve(env, m.Seq, m)
	case gtp.TPDU:
		s.handleDownlinkTPDU(env, m)
	case gtp.PDUNotifyRequest:
		s.handlePDUNotify(env, from, m)
	case gtp.EchoRequest:
		env.Send(s.cfg.ID, from, gtp.EchoResponse{Seq: m.Seq})
	case gtp.EchoResponse:
		s.handleEchoResponse()
	case sigmap.UpdateGPRSLocationAck:
		s.dm.Resolve(m.Invoke, msg)
	case sigmap.CancelLocation:
		s.handleCancelLocation(env, from, m)
	}
}

// handleCancelLocation purges a subscriber whose service moved to another
// SGSN (HLR-driven, GSM 03.60 inter-SGSN routing-area update): the MM
// context and every PDP context go, including the GGSN-side tunnels.
func (s *SGSN) handleCancelLocation(env *sim.Env, from sim.NodeID, m sigmap.CancelLocation) {
	s.mu.Lock()
	ctx, ok := s.byIMSI[m.IMSI]
	var tids []gtp.TID
	if ok {
		for _, pdp := range ctx.pdp {
			delete(s.byTID, pdp.tid)
			tids = append(tids, pdp.tid)
			s.contexts--
		}
		ctx.pdp = nil
		delete(s.byIMSI, m.IMSI)
		delete(s.byTLLI, gsmid.LocalTLLI(ctx.ptmsi))
	}
	s.mu.Unlock()
	for _, tid := range tids {
		s.cleanupTunnel(env, tid)
	}
	env.Send(s.cfg.ID, from, sigmap.CancelLocationAck{Invoke: m.Invoke})
}

// cleanupTunnel tears a GGSN-side tunnel down with retransmission but no
// GMM reply (detach and HLR-cancel paths).
func (s *SGSN) cleanupTunnel(env *sim.Env, tid gtp.TID) {
	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()
	s.armGTP(env, seq, gtpTxn{kind: txnCleanup, tid: tid},
		gtp.DeletePDPRequest{Seq: seq, TID: tid})
}

func (s *SGSN) resolve(env *sim.Env, seq uint16, resp sim.Message) {
	s.mu.Lock()
	t, ok := s.pending[seq]
	if ok {
		delete(s.pending, seq)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	switch t.kind {
	case txnActivate:
		s.finishActivate(env, t, resp)
	case txnDeactivate:
		s.finishDeactivate(env, t)
	}
}

// reply sends a GMM/SM answer back over the path the request came in on
// (peer + MS handle), so transactions for one subscriber can run over the
// VMSC and radio paths independently.
func (s *SGSN) reply(env *sim.Env, peer, ms sim.NodeID, tlli gsmid.TLLI, sm sim.Message) {
	pdu, err := WrapSM(sm)
	if err != nil {
		return
	}
	// Record the logical GMM/SM arrow; the bytes ride inside LLC/Gb.
	env.Note(s.cfg.ID, peer, "GMM", sm)
	env.Send(s.cfg.ID, peer, gb.DLUnitdata{TLLI: tlli, MS: ms, PDU: pdu})
}

func (s *SGSN) handleUL(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata) {
	// User data takes a fast path: the SNDCP payload bytes ARE the inner
	// packet's wire form, so the SGSN relays them into the GTP tunnel
	// without the decode/re-encode round trip (the GGSN validates on its
	// end). Signalling still gets the full parse below.
	if len(ul.PDU) >= 2 && ul.PDU[0] == sapiData {
		s.handleUplinkData(env, ul, ul.PDU[1], ul.PDU[2:])
		return
	}
	parsed, err := ParsePDU(ul.PDU)
	if err != nil {
		return
	}
	// Record the logical GMM/SM arrow for the decoded signalling message.
	env.Note(peer, s.cfg.ID, "GMM", parsed.SM)
	switch m := parsed.SM.(type) {
	case AttachRequest:
		s.handleAttach(env, peer, ul, m)
	case DetachRequest:
		s.handleDetach(env, ul)
	case ActivatePDPRequest:
		s.handleActivate(env, peer, ul, m)
	case DeactivatePDPRequest:
		s.handleDeactivate(env, peer, ul, m)
	case RAUpdateRequest:
		s.handleRAUpdate(env, peer, ul, m)
	}
}

func (s *SGSN) handleAttach(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m AttachRequest) {
	s.mu.Lock()
	ctx, exists := s.byIMSI[m.IMSI]
	if !exists {
		s.nextPT++
		ctx = &mmCtx{
			imsi:  m.IMSI,
			ptmsi: gsmid.PTMSI(s.nextPT),
		}
		s.byIMSI[m.IMSI] = ctx
	}
	// A retransmitted AttachRequest while the HLR dialogue is in flight
	// must not spawn a second one; the pending dialogue will answer.
	if ctx.attachPending {
		s.mu.Unlock()
		return
	}
	ctx.ms = ul.MS
	ctx.peer = peer
	ctx.cell = ul.Cell
	ctx.sgsn = s
	ctx.attachEnv = env
	ctx.attachTLLI = ul.TLLI
	// Index under both the TLLI the request came with and the local TLLI
	// the client derives from its new P-TMSI.
	s.byTLLI[ul.TLLI] = ctx
	s.byTLLI[gsmid.LocalTLLI(ctx.ptmsi)] = ctx
	ptmsi := ctx.ptmsi
	if s.cfg.HLR != "" {
		ctx.attachPending = true
	}
	s.mu.Unlock()

	if s.cfg.HLR == "" {
		s.reply(env, peer, ul.MS, ul.TLLI, AttachAccept{PTMSI: ptmsi})
		return
	}
	invoke := s.dm.InvokeRetryArg(attachHLRDone, ctx)
	s.dm.Transmit(env, invoke, s.cfg.ID, s.cfg.HLR, sigmap.UpdateGPRSLocation{
		Invoke: invoke, IMSI: m.IMSI, SGSN: string(s.cfg.ID),
	}, s.cfg.SigRTO, s.cfg.SigRetries)
}

// attachHLRDone completes GPRS attach when the HLR answers (or the dialogue
// times out). The mmCtx doubles as the transaction record.
func attachHLRDone(arg any, resp sim.Message, ok bool) {
	ctx := arg.(*mmCtx)
	s := ctx.sgsn
	env := ctx.attachEnv
	s.mu.Lock()
	ctx.attachPending = false
	s.mu.Unlock()
	ack, isAck := resp.(sigmap.UpdateGPRSLocationAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone {
		s.reply(env, ctx.peer, ctx.ms, ctx.attachTLLI, AttachReject{Cause: SMCauseUnknownSubscriber})
		return
	}
	s.reply(env, ctx.peer, ctx.ms, ctx.attachTLLI, AttachAccept{PTMSI: ctx.ptmsi})
}

func (s *SGSN) handleDetach(env *sim.Env, ul gb.ULUnitdata) {
	s.mu.Lock()
	ctx, ok := s.byTLLI[ul.TLLI]
	var tids []gtp.TID
	if ok {
		for _, pdp := range ctx.pdp {
			delete(s.byTID, pdp.tid)
			tids = append(tids, pdp.tid)
			s.contexts--
		}
		ctx.pdp = nil
		delete(s.byIMSI, ctx.imsi)
		delete(s.byTLLI, ul.TLLI)
		delete(s.byTLLI, gsmid.LocalTLLI(ctx.ptmsi))
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	// Tear the tunnels down at the GGSN too, or a later re-attach would
	// collide with the stale TIDs (GSM 03.60 detach deletes all contexts).
	for _, tid := range tids {
		s.cleanupTunnel(env, tid)
	}
	s.reply(env, ctx.peer, ul.MS, ul.TLLI, DetachAccept{})
}

func (s *SGSN) handleActivate(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m ActivatePDPRequest) {
	s.mu.Lock()
	ctx, ok := s.byTLLI[ul.TLLI]
	var full, inFlight bool
	var dup *sgsnPDP
	if ok {
		dup = ctx.pdp[m.NSAPI]
		full = s.cfg.MaxContexts > 0 && s.contexts >= s.cfg.MaxContexts
		// A retransmitted ActivatePDPRequest while the GTP create is in
		// flight must not issue a second CreatePDPRequest.
		for _, t := range s.pending {
			if t.kind == txnActivate && t.tlli == ul.TLLI && t.nsapi == m.NSAPI {
				inFlight = true
				break
			}
		}
	}
	pathDown := s.pathDown
	s.mu.Unlock()

	switch {
	case !ok:
		return // not attached: no reply channel is even known
	case inFlight:
		return // duplicate of a pending activation: the original will answer
	case pathDown:
		// Path supervision has declared the GGSN unreachable: fail fast
		// instead of letting the create request vanish into the tunnel.
		s.reply(env, peer, ul.MS, ul.TLLI, ActivatePDPReject{NSAPI: m.NSAPI, Cause: SMCauseNetworkFailure})
		return
	case dup != nil:
		// The NSAPI is already active: this is a retransmission whose
		// Accept was lost. Re-ack with the existing binding — rejecting
		// here would turn one dropped downlink frame into a permanent
		// activation failure.
		s.reply(env, peer, ul.MS, ul.TLLI, ActivatePDPAccept{NSAPI: m.NSAPI, Address: dup.address, QoS: dup.qos})
		return
	case full:
		s.reply(env, peer, ul.MS, ul.TLLI, ActivatePDPReject{NSAPI: m.NSAPI, Cause: SMCauseNoResources})
		return
	}

	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	s.armGTP(env, seq, gtpTxn{
		kind: txnActivate, nsapi: m.NSAPI,
		peer: peer, ms: ul.MS, tlli: ul.TLLI, ctx: ctx,
	}, gtp.CreatePDPRequest{
		Seq: seq, IMSI: ctx.imsi, NSAPI: m.NSAPI, QoS: m.QoS,
		SGSN: string(s.cfg.ID), RequestedAddress: m.RequestedAddress,
	})
}

func (s *SGSN) finishActivate(env *sim.Env, t gtpTxn, resp sim.Message) {
	cr, isCreate := resp.(gtp.CreatePDPResponse)
	if !isCreate || !cr.Cause.Accepted() {
		s.reply(env, t.peer, t.ms, t.tlli, ActivatePDPReject{NSAPI: t.nsapi, Cause: SMCauseNetworkFailure})
		return
	}
	s.mu.Lock()
	if s.byIMSI[t.ctx.imsi] != t.ctx {
		// The subscriber detached (or the HLR cancelled it) while the
		// create was in flight: installing the context now would leak it
		// permanently — nothing ever detaches a context the MM maps no
		// longer reference. Reclaim the freshly built GGSN-side tunnel
		// instead and stay silent; there is no subscriber to answer.
		s.mu.Unlock()
		s.cleanupTunnel(env, cr.TID)
		return
	}
	if t.ctx.pdp == nil {
		t.ctx.pdp = make(map[uint8]*sgsnPDP)
	}
	t.ctx.pdp[t.nsapi] = &sgsnPDP{
		nsapi: t.nsapi, tid: cr.TID, address: cr.Address, qos: cr.QoS,
		peer: t.peer, ms: t.ms,
	}
	s.byTID[cr.TID] = t.ctx
	s.contexts++
	s.mu.Unlock()
	s.reply(env, t.peer, t.ms, t.tlli, ActivatePDPAccept{NSAPI: t.nsapi, Address: cr.Address, QoS: cr.QoS})
}

func (s *SGSN) handleDeactivate(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m DeactivatePDPRequest) {
	s.mu.Lock()
	ctx, ok := s.byTLLI[ul.TLLI]
	var pdp *sgsnPDP
	var inFlight bool
	if ok {
		pdp = ctx.pdp[m.NSAPI]
		for _, t := range s.pending {
			if t.kind == txnDeactivate && t.tlli == ul.TLLI && t.nsapi == m.NSAPI {
				inFlight = true
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok || inFlight {
		return
	}
	if pdp == nil {
		// Already deactivated: the Accept was lost and this is the
		// client's retransmission. Re-ack so its timer stops.
		s.reply(env, peer, ul.MS, ul.TLLI, DeactivatePDPAccept{NSAPI: m.NSAPI})
		return
	}

	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	s.armGTP(env, seq, gtpTxn{
		kind: txnDeactivate, nsapi: m.NSAPI,
		peer: peer, ms: ul.MS, tlli: ul.TLLI, tid: pdp.tid, ctx: ctx,
	}, gtp.DeletePDPRequest{Seq: seq, TID: pdp.tid})
}

func (s *SGSN) finishDeactivate(env *sim.Env, t gtpTxn) {
	s.mu.Lock()
	// A detach or HLR cancel that raced the in-flight delete has already
	// released this context and decremented the counter; decrementing
	// again would drift s.contexts negative and miscount forever after.
	if s.byIMSI[t.ctx.imsi] == t.ctx {
		if _, held := t.ctx.pdp[t.nsapi]; held {
			delete(t.ctx.pdp, t.nsapi)
			delete(s.byTID, t.tid)
			s.contexts--
		}
	}
	s.mu.Unlock()
	s.reply(env, t.peer, t.ms, t.tlli, DeactivatePDPAccept{NSAPI: t.nsapi})
}

func (s *SGSN) handleUplinkData(env *sim.Env, ul gb.ULUnitdata, nsapi uint8, payload []byte) {
	s.mu.Lock()
	ctx, ok := s.byTLLI[ul.TLLI]
	var pdp *sgsnPDP
	if ok {
		pdp = ctx.pdp[nsapi]
	}
	if pdp != nil {
		s.ulPackets++
	}
	s.mu.Unlock()
	if pdp == nil {
		return
	}
	env.Send(s.cfg.ID, s.cfg.GGSN, gtp.TPDU{TID: pdp.tid, Payload: payload})
}

func (s *SGSN) handleDownlinkTPDU(env *sim.Env, m gtp.TPDU) {
	s.mu.Lock()
	ctx, ok := s.byTID[m.TID]
	var tlli gsmid.TLLI
	peer, ms := sim.NodeID(""), sim.NodeID("")
	if ok {
		tlli = gsmid.LocalTLLI(ctx.ptmsi)
		s.dlPackets++
		// Downlink follows the path the context was activated over.
		peer, ms = ctx.peer, ctx.ms
		if pdp := ctx.pdp[m.TID.NSAPI()]; pdp != nil && pdp.peer != "" {
			peer, ms = pdp.peer, pdp.ms
		}
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	pdu := make([]byte, 0, 2+len(m.Payload))
	pdu = append(pdu, sapiData, m.TID.NSAPI())
	pdu = append(pdu, m.Payload...)
	env.Send(s.cfg.ID, peer, gb.DLUnitdata{TLLI: tlli, MS: ms, PDU: pdu})
}

// handleRAUpdate refreshes the subscriber's serving cell and Gb path on a
// routing-area update; PDP contexts survive (GSM 03.60 §6.9), though each
// context keeps routing downlink over the path it was activated on until
// re-activated.
func (s *SGSN) handleRAUpdate(env *sim.Env, peer sim.NodeID, ul gb.ULUnitdata, m RAUpdateRequest) {
	s.mu.Lock()
	ctx, ok := s.byTLLI[ul.TLLI]
	if ok {
		ctx.peer = peer
		ctx.ms = ul.MS
		ctx.cell = ul.Cell
		// Contexts activated over the moving path follow the MS.
		for _, pdp := range ctx.pdp {
			if pdp.ms == ul.MS {
				pdp.peer = peer
			}
		}
	}
	s.mu.Unlock()
	if ok {
		s.reply(env, peer, ul.MS, ul.TLLI, RAUpdateAccept{RAI: m.RAI})
	}
}

// handlePDUNotify relays the GGSN's network-requested activation to the MS
// (TR 23.923 MT-call path).
func (s *SGSN) handlePDUNotify(env *sim.Env, from sim.NodeID, m gtp.PDUNotifyRequest) {
	s.mu.Lock()
	ctx, ok := s.byIMSI[m.IMSI]
	var tlli gsmid.TLLI
	if ok {
		tlli = gsmid.LocalTLLI(ctx.ptmsi)
	}
	s.mu.Unlock()

	cause := gtp.CauseAccepted
	if !ok {
		cause = gtp.CauseNotFound
	}
	env.Send(s.cfg.ID, from, gtp.PDUNotifyResponse{Seq: m.Seq, Cause: cause})
	if ok {
		// Unsolicited requests use the subscriber's most recent attach
		// path (the only one the SGSN can assume is listening).
		s.reply(env, ctx.peer, ctx.ms, tlli, RequestPDPActivation{Address: m.Address})
	}
}

// StartPathSupervision begins periodic GTP Echo probing of the Gn path.
// It requires SGSNConfig.EchoInterval > 0 and is idempotent. Supervision
// keeps the event queue non-empty, so drive the simulation with RunUntil
// rather than Run once it is started.
func (s *SGSN) StartPathSupervision(env *sim.Env) {
	s.mu.Lock()
	if s.supervising || s.cfg.EchoInterval <= 0 {
		s.mu.Unlock()
		return
	}
	s.supervising = true
	s.mu.Unlock()
	s.echoTick(env)
}

// PathUp reports whether the Gn path toward the GGSN is considered alive.
// It is true until supervision observes the miss threshold.
func (s *SGSN) PathUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.pathDown
}

func (s *SGSN) echoTick(env *sim.Env) {
	s.mu.Lock()
	if s.echoAwaiting {
		s.echoMissed++
		limit := s.cfg.EchoMisses
		if limit == 0 {
			limit = 3
		}
		if s.echoMissed >= limit {
			s.pathDown = true
		}
	}
	s.echoAwaiting = true
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	env.Send(s.cfg.ID, s.cfg.GGSN, gtp.EchoRequest{Seq: seq})
	env.After(s.cfg.EchoInterval, func() { s.echoTick(env) })
}

// handleEchoResponse marks the Gn path alive again: any response clears
// the miss counter and a down verdict (peer restart recovery).
func (s *SGSN) handleEchoResponse() {
	s.mu.Lock()
	s.echoAwaiting = false
	s.echoMissed = 0
	s.pathDown = false
	s.mu.Unlock()
}
