package gprs

import (
	"fmt"

	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
	"vgprs/internal/wire"
)

// LLC service access points: signalling (GMM/SM) vs user data (SNDCP).
const (
	sapiSignalling uint8 = 1
	sapiData       uint8 = 3
)

// WrapSM frames a GMM/SM message as an LLC PDU. SAPI octet and message body
// marshal into one exact-copy buffer via the pooled writer — no
// intermediate body slice.
func WrapSM(msg sim.Message) ([]byte, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(sapiSignalling)
	if err := encodeSM(w, msg); err != nil {
		return nil, err
	}
	return w.CopyBytes(), nil
}

// WrapData frames an IP packet as an SNDCP LLC PDU on the given NSAPI. The
// LLC header and IP encoding share one exact-size buffer.
func WrapData(nsapi uint8, pkt ipnet.Packet) []byte {
	out := make([]byte, 0, 2+pkt.EncodedLen())
	out = append(out, sapiData, nsapi)
	return pkt.AppendTo(out)
}

// AppendData frames an IP packet as an SNDCP LLC PDU into dst, the
// allocation-free form of WrapData for talk paths that reuse one LLC buffer
// per bearer.
func AppendData(dst []byte, nsapi uint8, pkt ipnet.Packet) []byte {
	dst = append(dst, sapiData, nsapi)
	return pkt.AppendTo(dst)
}

// PDU is a parsed LLC PDU: exactly one of SM or Packet is meaningful.
type PDU struct {
	// SM holds the signalling message when the PDU is on the GMM SAPI.
	SM sim.Message
	// NSAPI and Packet hold user data when the PDU is on the data SAPI.
	NSAPI  uint8
	Packet ipnet.Packet
	// IsData discriminates the two arms.
	IsData bool
}

// ParsePDU decodes an LLC PDU produced by WrapSM or WrapData.
func ParsePDU(pdu []byte) (PDU, error) {
	if len(pdu) == 0 {
		return PDU{}, fmt.Errorf("%w: empty LLC PDU", ErrBadMessage)
	}
	switch pdu[0] {
	case sapiSignalling:
		msg, err := UnmarshalSM(pdu[1:])
		if err != nil {
			return PDU{}, err
		}
		return PDU{SM: msg}, nil
	case sapiData:
		if len(pdu) < 2 {
			return PDU{}, fmt.Errorf("%w: SNDCP PDU too short", ErrBadMessage)
		}
		pkt, err := ipnet.Unmarshal(pdu[2:])
		if err != nil {
			return PDU{}, fmt.Errorf("%w: SNDCP payload: %v", ErrBadMessage, err)
		}
		return PDU{IsData: true, NSAPI: pdu[1], Packet: pkt}, nil
	default:
		return PDU{}, fmt.Errorf("%w: unknown SAPI %d", ErrBadMessage, pdu[0])
	}
}
