package gprs

import (
	"fmt"
	"net/netip"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

// SendFunc transmits an uplink LLC PDU for the client. A radio-attached
// GPRS MS sends it over Um (the BSC's PCU relays it onto Gb); the VMSC sends
// it straight onto its own Gb interface — the paper's point that the VMSC
// "activates a new PDP context just like a GPRS MS does" is literally this
// shared state machine.
type SendFunc func(env *sim.Env, tlli gsmid.TLLI, pdu []byte)

// Client is the GPRS protocol client: GPRS attach, PDP context
// activation/deactivation, and IP send/receive over SNDCP. One Client
// instance represents one subscriber; the VMSC hosts one per registered MS.
type Client struct {
	IMSI gsmid.IMSI

	// Timeout bounds each attach/activation/deactivation transaction;
	// an unanswered request fires its callback with failure. Zero
	// disables expiry (useful for single-procedure tests).
	Timeout time.Duration

	send SendFunc

	attached bool
	ptmsi    gsmid.PTMSI
	tlli     gsmid.TLLI

	contexts map[uint8]*ClientPDP

	pendingAttach     func(ok bool)
	pendingDetach     func()
	pendingRAU        func()
	pendingActivate   map[uint8]func(addr netip.Addr, ok bool)
	pendingDeactivate map[uint8]func()

	// OnPacket delivers downlink IP packets per NSAPI.
	OnPacket func(env *sim.Env, nsapi uint8, pkt ipnet.Packet)
	// OnActivationRequest fires for a network-requested PDP activation
	// (TR 23.923 MT path); the handler decides whether to activate.
	OnActivationRequest func(env *sim.Env, address string)
}

// ClientPDP is the client-side view of one PDP context.
type ClientPDP struct {
	NSAPI   uint8
	Address netip.Addr
	QoS     gtp.QoSProfile
}

// NewClient returns a detached client.
func NewClient(imsi gsmid.IMSI, send SendFunc) *Client {
	return &Client{
		IMSI:              imsi,
		send:              send,
		contexts:          make(map[uint8]*ClientPDP),
		pendingActivate:   make(map[uint8]func(netip.Addr, bool)),
		pendingDeactivate: make(map[uint8]func()),
	}
}

// Attached reports whether GPRS attach has completed.
func (c *Client) Attached() bool { return c.attached }

// TLLI returns the client's current logical link identity. Before attach
// completes this is a "random" TLLI derived from the IMSI; afterwards the
// local TLLI derived from the assigned P-TMSI (GSM 04.64).
func (c *Client) TLLI() gsmid.TLLI {
	if c.attached {
		return gsmid.LocalTLLI(c.ptmsi)
	}
	return c.foreignTLLI()
}

func (c *Client) foreignTLLI() gsmid.TLLI {
	var v uint32
	for i := 0; i < len(c.IMSI); i++ {
		v = v*31 + uint32(c.IMSI[i])
	}
	return gsmid.TLLI(v &^ 0xC0000000) // clear the "local" marker bits
}

// Context returns the active PDP context on an NSAPI.
func (c *Client) Context(nsapi uint8) (ClientPDP, bool) {
	ctx, ok := c.contexts[nsapi]
	if !ok {
		return ClientPDP{}, false
	}
	return *ctx, true
}

// ActiveContexts returns the number of active PDP contexts.
func (c *Client) ActiveContexts() int { return len(c.contexts) }

// Attach starts GPRS attach; done fires with the outcome.
func (c *Client) Attach(env *sim.Env, done func(ok bool)) error {
	if c.attached {
		return fmt.Errorf("gprs: client %s already attached", c.IMSI)
	}
	if c.pendingAttach != nil {
		return fmt.Errorf("gprs: client %s attach already in progress", c.IMSI)
	}
	c.pendingAttach = done
	pdu, err := WrapSM(AttachRequest{IMSI: c.IMSI})
	if err != nil {
		return err
	}
	c.send(env, c.TLLI(), pdu)
	c.expire(env, func() bool { return c.pendingAttach != nil }, func() {
		cb := c.pendingAttach
		c.pendingAttach = nil
		if cb != nil {
			cb(false)
		}
	})
	return nil
}

// expire schedules a transaction timeout when Timeout is configured.
func (c *Client) expire(env *sim.Env, pending func() bool, onExpire func()) {
	if c.Timeout == 0 {
		return
	}
	env.After(c.Timeout, func() {
		if pending() {
			onExpire()
		}
	})
}

// UpdateRoutingArea reports a new routing area to the SGSN (movement). The
// attach and PDP contexts survive; done fires on the accept.
func (c *Client) UpdateRoutingArea(env *sim.Env, rai gsmid.RAI, done func()) error {
	if !c.attached {
		return fmt.Errorf("gprs: client %s not attached", c.IMSI)
	}
	c.pendingRAU = done
	pdu, err := WrapSM(RAUpdateRequest{RAI: rai})
	if err != nil {
		return err
	}
	c.send(env, c.TLLI(), pdu)
	return nil
}

// Detach leaves the GPRS network.
func (c *Client) Detach(env *sim.Env, done func()) error {
	if !c.attached {
		return fmt.Errorf("gprs: client %s not attached", c.IMSI)
	}
	c.pendingDetach = done
	pdu, err := WrapSM(DetachRequest{})
	if err != nil {
		return err
	}
	c.send(env, c.TLLI(), pdu)
	return nil
}

// ActivatePDP requests a PDP context on the NSAPI; done fires with the
// assigned address. requestedAddr requests a static address ("" = dynamic).
func (c *Client) ActivatePDP(env *sim.Env, nsapi uint8, qos gtp.QoSProfile,
	requestedAddr string, done func(addr netip.Addr, ok bool)) error {
	if !c.attached {
		return fmt.Errorf("gprs: client %s must attach before PDP activation", c.IMSI)
	}
	if _, exists := c.contexts[nsapi]; exists {
		return fmt.Errorf("gprs: client %s NSAPI %d already active", c.IMSI, nsapi)
	}
	if _, pending := c.pendingActivate[nsapi]; pending {
		return fmt.Errorf("gprs: client %s NSAPI %d activation in progress", c.IMSI, nsapi)
	}
	c.pendingActivate[nsapi] = done
	pdu, err := WrapSM(ActivatePDPRequest{NSAPI: nsapi, QoS: qos, RequestedAddress: requestedAddr})
	if err != nil {
		return err
	}
	c.send(env, c.TLLI(), pdu)
	c.expire(env, func() bool { _, p := c.pendingActivate[nsapi]; return p }, func() {
		cb := c.pendingActivate[nsapi]
		delete(c.pendingActivate, nsapi)
		if cb != nil {
			cb(netip.Addr{}, false)
		}
	})
	return nil
}

// DeactivatePDP tears down the context on the NSAPI.
func (c *Client) DeactivatePDP(env *sim.Env, nsapi uint8, done func()) error {
	if _, exists := c.contexts[nsapi]; !exists {
		return fmt.Errorf("gprs: client %s NSAPI %d not active", c.IMSI, nsapi)
	}
	c.pendingDeactivate[nsapi] = done
	pdu, err := WrapSM(DeactivatePDPRequest{NSAPI: nsapi})
	if err != nil {
		return err
	}
	c.send(env, c.TLLI(), pdu)
	return nil
}

// SendIP transmits an IP packet on the context's NSAPI. The packet's source
// address is filled from the context when unset.
func (c *Client) SendIP(env *sim.Env, nsapi uint8, pkt ipnet.Packet) error {
	ctx, ok := c.contexts[nsapi]
	if !ok {
		return fmt.Errorf("gprs: client %s NSAPI %d not active", c.IMSI, nsapi)
	}
	if !pkt.Src.IsValid() {
		pkt.Src = ctx.Address
	}
	c.send(env, c.TLLI(), WrapData(nsapi, pkt))
	return nil
}

// HandleDownlink processes a downlink LLC PDU addressed to this client.
func (c *Client) HandleDownlink(env *sim.Env, pdu []byte) error {
	parsed, err := ParsePDU(pdu)
	if err != nil {
		return err
	}
	if parsed.IsData {
		if c.OnPacket != nil {
			c.OnPacket(env, parsed.NSAPI, parsed.Packet)
		}
		return nil
	}
	switch m := parsed.SM.(type) {
	case AttachAccept:
		c.attached = true
		c.ptmsi = m.PTMSI
		if done := c.pendingAttach; done != nil {
			c.pendingAttach = nil
			done(true)
		}
	case AttachReject:
		if done := c.pendingAttach; done != nil {
			c.pendingAttach = nil
			done(false)
		}
	case DetachAccept:
		c.attached = false
		c.contexts = make(map[uint8]*ClientPDP)
		if done := c.pendingDetach; done != nil {
			c.pendingDetach = nil
			done()
		}
	case ActivatePDPAccept:
		addr, parseErr := netip.ParseAddr(m.Address)
		done := c.pendingActivate[m.NSAPI]
		delete(c.pendingActivate, m.NSAPI)
		if parseErr != nil {
			if done != nil {
				done(netip.Addr{}, false)
			}
			return fmt.Errorf("gprs: bad PDP address %q: %w", m.Address, parseErr)
		}
		c.contexts[m.NSAPI] = &ClientPDP{NSAPI: m.NSAPI, Address: addr, QoS: m.QoS}
		if done != nil {
			done(addr, true)
		}
	case ActivatePDPReject:
		if done := c.pendingActivate[m.NSAPI]; done != nil {
			delete(c.pendingActivate, m.NSAPI)
			done(netip.Addr{}, false)
		}
	case DeactivatePDPAccept:
		delete(c.contexts, m.NSAPI)
		if done := c.pendingDeactivate[m.NSAPI]; done != nil {
			delete(c.pendingDeactivate, m.NSAPI)
			done()
		}
	case RequestPDPActivation:
		if c.OnActivationRequest != nil {
			c.OnActivationRequest(env, m.Address)
		}
	case RAUpdateAccept:
		if done := c.pendingRAU; done != nil {
			c.pendingRAU = nil
			done()
		}
	}
	return nil
}
