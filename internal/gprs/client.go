package gprs

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

// Typed errors surfaced (via Client.LastError) when a GMM/SM transaction
// exhausts its retransmission budget without an answer.
var (
	ErrAttachTimeout     = errors.New("gprs: attach timed out")
	ErrActivateTimeout   = errors.New("gprs: PDP activation timed out")
	ErrDeactivateTimeout = errors.New("gprs: PDP deactivation timed out")
)

// SendFunc transmits an uplink LLC PDU for the client. A radio-attached
// GPRS MS sends it over Um (the BSC's PCU relays it onto Gb); the VMSC sends
// it straight onto its own Gb interface — the paper's point that the VMSC
// "activates a new PDP context just like a GPRS MS does" is literally this
// shared state machine.
type SendFunc func(env *sim.Env, tlli gsmid.TLLI, pdu []byte)

// Host is the closure-free alternative to SendFunc/OnPacket/
// OnActivationRequest: an owner that embeds or references its clients can
// implement Host once instead of allocating three callbacks per client. The
// VMSC hosts one client per registered subscriber, so this matters on its
// registration path.
type Host interface {
	// SendLLC transmits an uplink LLC PDU (the SendFunc role).
	SendLLC(env *sim.Env, tlli gsmid.TLLI, pdu []byte)
	// PacketIn delivers a downlink IP packet on an NSAPI (the OnPacket role).
	PacketIn(env *sim.Env, nsapi uint8, pkt ipnet.Packet)
	// ActivationRequested handles a network-requested PDP activation (the
	// OnActivationRequest role).
	ActivationRequested(env *sim.Env, address string)
}

// Client is the GPRS protocol client: GPRS attach, PDP context
// activation/deactivation, and IP send/receive over SNDCP. One Client
// instance represents one subscriber; the VMSC hosts one per registered MS.
type Client struct {
	IMSI gsmid.IMSI

	// Timeout is the per-attempt RTO for attach/activation/deactivation
	// transactions: an unanswered request is retransmitted with the RTO
	// doubled each time until Retries is exhausted, then the callback
	// fires with failure and LastError reports the typed cause. Zero
	// disables expiry entirely (useful for single-procedure tests).
	Timeout time.Duration
	// Retries is the retransmission budget per transaction. Zero means
	// the default (3); negative disables retransmission so the first
	// unanswered attempt fails at Timeout.
	Retries int

	send SendFunc
	host Host

	attached bool
	ptmsi    gsmid.PTMSI
	tlli     gsmid.TLLI

	contexts map[uint8]*ClientPDP

	pendingAttach     func(arg any, ok bool)
	pendingAttachArg  any
	pendingDetach     func()
	pendingRAU        func()
	pendingActivate   map[uint8]activatePending
	pendingDeactivate map[uint8]deactivatePending

	// Attach retransmission state. The PDU is retained until the
	// transaction resolves; expireAttach re-sends it with a doubled RTO
	// until the budget runs out. attachTimerArmed keeps the invariant of
	// at most one outstanding attach timer per client.
	attachEnv        *sim.Env
	attachPDU        []byte
	attachRTO        time.Duration
	attachRetries    int
	attachTimerArmed bool

	// activateGen disambiguates timer records across successive
	// activations of the same NSAPI: a stale timer whose generation no
	// longer matches the pending entry is ignored.
	activateGen uint32

	retransmits uint64
	lastErr     error

	// OnPacket delivers downlink IP packets per NSAPI.
	OnPacket func(env *sim.Env, nsapi uint8, pkt ipnet.Packet)
	// OnActivationRequest fires for a network-requested PDP activation
	// (TR 23.923 MT path); the handler decides whether to activate.
	OnActivationRequest func(env *sim.Env, address string)
}

// ClientPDP is the client-side view of one PDP context.
type ClientPDP struct {
	NSAPI   uint8
	Address netip.Addr
	QoS     gtp.QoSProfile
}

// activatePending is one outstanding activation: a package-level (or at
// least closure-free) completion function plus its argument. The plain
// ActivatePDP entry point adapts func(addr, ok) callbacks onto it; func
// values are pointer-shaped, so boxing one into arg costs nothing. The
// retained request PDU and RTO state drive retransmission on timeout.
type activatePending struct {
	fn  func(arg any, addr netip.Addr, ok bool)
	arg any

	env     *sim.Env
	pdu     []byte
	rto     time.Duration
	retries int
	gen     uint32
}

// deactivatePending mirrors activatePending for context tear-down.
type deactivatePending struct {
	fn func()

	env     *sim.Env
	pdu     []byte
	rto     time.Duration
	retries int
	gen     uint32
}

// callActivateDone adapts a plain activation callback stored in arg.
func callActivateDone(arg any, addr netip.Addr, ok bool) {
	arg.(func(netip.Addr, bool))(addr, ok)
}

// callAttachDone adapts a plain attach callback stored in arg.
func callAttachDone(arg any, ok bool) {
	arg.(func(bool))(ok)
}

// NewClient returns a detached client. The per-NSAPI maps are created
// lazily on first use: a VMSC builds one client per registering MS, and
// three eager map allocations per subscriber add up on that path.
func NewClient(imsi gsmid.IMSI, send SendFunc) *Client {
	return &Client{IMSI: imsi, send: send}
}

// NewHostedClient returns a detached client whose transport and event
// delivery go through host rather than per-client callbacks.
func NewHostedClient(imsi gsmid.IMSI, host Host) *Client {
	return &Client{IMSI: imsi, host: host}
}

// sendPDU routes an uplink PDU through the host or the send callback.
func (c *Client) sendPDU(env *sim.Env, tlli gsmid.TLLI, pdu []byte) {
	if c.host != nil {
		c.host.SendLLC(env, tlli, pdu)
		return
	}
	c.send(env, tlli, pdu)
}

// retryBudget resolves the Retries field: zero means the default of 3,
// negative disables retransmission.
func (c *Client) retryBudget() int {
	switch {
	case c.Retries > 0:
		return c.Retries
	case c.Retries < 0:
		return 0
	default:
		return 3
	}
}

// Retransmits reports how many GMM/SM PDUs this client has retransmitted.
func (c *Client) Retransmits() uint64 { return c.retransmits }

// LastError returns the typed error from the most recent transaction that
// exhausted its retransmission budget (nil if none has).
func (c *Client) LastError() error { return c.lastErr }

// Attached reports whether GPRS attach has completed.
func (c *Client) Attached() bool { return c.attached }

// TLLI returns the client's current logical link identity. Before attach
// completes this is a "random" TLLI derived from the IMSI; afterwards the
// local TLLI derived from the assigned P-TMSI (GSM 04.64).
func (c *Client) TLLI() gsmid.TLLI {
	if c.attached {
		return gsmid.LocalTLLI(c.ptmsi)
	}
	return c.foreignTLLI()
}

func (c *Client) foreignTLLI() gsmid.TLLI {
	var v uint32
	for i := 0; i < len(c.IMSI); i++ {
		v = v*31 + uint32(c.IMSI[i])
	}
	return gsmid.TLLI(v &^ 0xC0000000) // clear the "local" marker bits
}

// Context returns the active PDP context on an NSAPI.
func (c *Client) Context(nsapi uint8) (ClientPDP, bool) {
	ctx, ok := c.contexts[nsapi]
	if !ok {
		return ClientPDP{}, false
	}
	return *ctx, true
}

// ActiveContexts returns the number of active PDP contexts.
func (c *Client) ActiveContexts() int { return len(c.contexts) }

// PendingTransactions counts GMM/SM transactions still awaiting an answer
// (attach, detach, RAU, and per-NSAPI activate/deactivate). A quiesced
// client reports zero; soak tests assert on it to catch leaked callbacks.
func (c *Client) PendingTransactions() int {
	n := len(c.pendingActivate) + len(c.pendingDeactivate)
	if c.pendingAttach != nil {
		n++
	}
	if c.pendingDetach != nil {
		n++
	}
	if c.pendingRAU != nil {
		n++
	}
	return n
}

// Attach starts GPRS attach; done fires with the outcome.
func (c *Client) Attach(env *sim.Env, done func(ok bool)) error {
	return c.AttachArg(env, callAttachDone, done)
}

// AttachArg is Attach with a closure-free completion: fn(arg, ok) fires with
// the outcome. Callers driving many clients thread a per-subscriber record
// through arg instead of allocating a callback per attach.
func (c *Client) AttachArg(env *sim.Env, fn func(arg any, ok bool), arg any) error {
	if c.attached {
		return fmt.Errorf("gprs: client %s already attached", c.IMSI)
	}
	if c.pendingAttach != nil {
		return fmt.Errorf("gprs: client %s attach already in progress", c.IMSI)
	}
	c.pendingAttach, c.pendingAttachArg = fn, arg
	pdu, err := WrapSM(AttachRequest{IMSI: c.IMSI})
	if err != nil {
		c.pendingAttach, c.pendingAttachArg = nil, nil
		return err
	}
	c.sendPDU(env, c.TLLI(), pdu)
	if c.Timeout > 0 {
		c.attachEnv, c.attachPDU = env, pdu
		c.attachRTO, c.attachRetries = c.Timeout, c.retryBudget()
		if !c.attachTimerArmed {
			c.attachTimerArmed = true
			env.AfterArg(c.Timeout, expireAttach, c)
		}
	}
	return nil
}

// finishAttach fires and clears the pending attach callback.
func (c *Client) finishAttach(ok bool) {
	c.attachEnv, c.attachPDU = nil, nil
	fn, arg := c.pendingAttach, c.pendingAttachArg
	if fn == nil {
		return
	}
	c.pendingAttach, c.pendingAttachArg = nil, nil
	fn(arg, ok)
}

// expireAttach runs on the attach RTO timer. It is a package-level
// function scheduled through AfterArg so arming the timer allocates
// nothing; retransmission re-arms with the same receiver, keeping at
// most one outstanding attach timer.
func expireAttach(arg any) {
	c := arg.(*Client)
	if c.pendingAttach == nil || c.attachPDU == nil {
		c.attachTimerArmed = false
		return
	}
	if c.attachRetries > 0 {
		c.attachRetries--
		c.retransmits++
		c.attachRTO = sim.NextRTO(c.attachRTO, c.Timeout)
		c.sendPDU(c.attachEnv, c.TLLI(), c.attachPDU)
		c.attachEnv.AfterArg(c.attachRTO, expireAttach, c)
		return
	}
	c.attachTimerArmed = false
	c.lastErr = ErrAttachTimeout
	c.finishAttach(false)
}

// activateExpiry carries the (client, NSAPI, generation) triple an
// activation timeout needs; one small record replaces the three closures
// the timer previously cost. The generation lets a stale timer from a
// previous activation of the same NSAPI step aside.
type activateExpiry struct {
	c     *Client
	nsapi uint8
	gen   uint32
}

func expireActivate(arg any) {
	e := arg.(*activateExpiry)
	p, ok := e.c.pendingActivate[e.nsapi]
	if !ok || p.gen != e.gen {
		return
	}
	if p.retries > 0 {
		p.retries--
		p.rto = sim.NextRTO(p.rto, e.c.Timeout)
		e.c.pendingActivate[e.nsapi] = p
		e.c.retransmits++
		e.c.sendPDU(p.env, e.c.TLLI(), p.pdu)
		p.env.AfterArg(p.rto, expireActivate, e)
		return
	}
	delete(e.c.pendingActivate, e.nsapi)
	e.c.lastErr = ErrActivateTimeout
	if p.fn != nil {
		p.fn(p.arg, netip.Addr{}, false)
	}
}

// deactivateExpiry mirrors activateExpiry for context tear-down timers.
type deactivateExpiry struct {
	c     *Client
	nsapi uint8
	gen   uint32
}

func expireDeactivate(arg any) {
	e := arg.(*deactivateExpiry)
	p, ok := e.c.pendingDeactivate[e.nsapi]
	if !ok || p.gen != e.gen {
		return
	}
	if p.retries > 0 {
		p.retries--
		p.rto = sim.NextRTO(p.rto, e.c.Timeout)
		e.c.pendingDeactivate[e.nsapi] = p
		e.c.retransmits++
		e.c.sendPDU(p.env, e.c.TLLI(), p.pdu)
		p.env.AfterArg(p.rto, expireDeactivate, e)
		return
	}
	// Budget exhausted: tear the context down locally anyway — the
	// network side reclaims its half via its own supervision — and
	// surface the typed error while still completing the callback so
	// the caller's clear-down never hangs.
	delete(e.c.pendingDeactivate, e.nsapi)
	delete(e.c.contexts, e.nsapi)
	e.c.lastErr = ErrDeactivateTimeout
	if p.fn != nil {
		p.fn()
	}
}

// UpdateRoutingArea reports a new routing area to the SGSN (movement). The
// attach and PDP contexts survive; done fires on the accept.
func (c *Client) UpdateRoutingArea(env *sim.Env, rai gsmid.RAI, done func()) error {
	if !c.attached {
		return fmt.Errorf("gprs: client %s not attached", c.IMSI)
	}
	c.pendingRAU = done
	pdu, err := WrapSM(RAUpdateRequest{RAI: rai})
	if err != nil {
		return err
	}
	c.sendPDU(env, c.TLLI(), pdu)
	return nil
}

// Detach leaves the GPRS network.
func (c *Client) Detach(env *sim.Env, done func()) error {
	if !c.attached {
		return fmt.Errorf("gprs: client %s not attached", c.IMSI)
	}
	c.pendingDetach = done
	pdu, err := WrapSM(DetachRequest{})
	if err != nil {
		return err
	}
	c.sendPDU(env, c.TLLI(), pdu)
	return nil
}

// ActivatePDP requests a PDP context on the NSAPI; done fires with the
// assigned address. requestedAddr requests a static address ("" = dynamic).
func (c *Client) ActivatePDP(env *sim.Env, nsapi uint8, qos gtp.QoSProfile,
	requestedAddr string, done func(addr netip.Addr, ok bool)) error {
	return c.ActivatePDPArg(env, nsapi, qos, requestedAddr, callActivateDone, done)
}

// ActivatePDPArg is ActivatePDP with a closure-free completion:
// fn(arg, addr, ok) fires with the assigned address.
func (c *Client) ActivatePDPArg(env *sim.Env, nsapi uint8, qos gtp.QoSProfile,
	requestedAddr string, fn func(arg any, addr netip.Addr, ok bool), arg any) error {
	if !c.attached {
		return fmt.Errorf("gprs: client %s must attach before PDP activation", c.IMSI)
	}
	if _, exists := c.contexts[nsapi]; exists {
		return fmt.Errorf("gprs: client %s NSAPI %d already active", c.IMSI, nsapi)
	}
	if _, pending := c.pendingActivate[nsapi]; pending {
		return fmt.Errorf("gprs: client %s NSAPI %d activation in progress", c.IMSI, nsapi)
	}
	if c.pendingActivate == nil {
		c.pendingActivate = make(map[uint8]activatePending)
	}
	pdu, err := WrapSM(ActivatePDPRequest{NSAPI: nsapi, QoS: qos, RequestedAddress: requestedAddr})
	if err != nil {
		return err
	}
	c.activateGen++
	c.pendingActivate[nsapi] = activatePending{
		fn: fn, arg: arg,
		env: env, pdu: pdu, rto: c.Timeout, retries: c.retryBudget(), gen: c.activateGen,
	}
	c.sendPDU(env, c.TLLI(), pdu)
	if c.Timeout > 0 {
		env.AfterArg(c.Timeout, expireActivate, &activateExpiry{c: c, nsapi: nsapi, gen: c.activateGen})
	}
	return nil
}

// DeactivatePDP tears down the context on the NSAPI.
func (c *Client) DeactivatePDP(env *sim.Env, nsapi uint8, done func()) error {
	if _, exists := c.contexts[nsapi]; !exists {
		return fmt.Errorf("gprs: client %s NSAPI %d not active", c.IMSI, nsapi)
	}
	if _, pending := c.pendingDeactivate[nsapi]; pending {
		return fmt.Errorf("gprs: client %s NSAPI %d deactivation in progress", c.IMSI, nsapi)
	}
	if c.pendingDeactivate == nil {
		c.pendingDeactivate = make(map[uint8]deactivatePending)
	}
	pdu, err := WrapSM(DeactivatePDPRequest{NSAPI: nsapi})
	if err != nil {
		return err
	}
	c.activateGen++
	c.pendingDeactivate[nsapi] = deactivatePending{
		fn: done,
		env: env, pdu: pdu, rto: c.Timeout, retries: c.retryBudget(), gen: c.activateGen,
	}
	c.sendPDU(env, c.TLLI(), pdu)
	if c.Timeout > 0 {
		env.AfterArg(c.Timeout, expireDeactivate, &deactivateExpiry{c: c, nsapi: nsapi, gen: c.activateGen})
	}
	return nil
}

// SendIP transmits an IP packet on the context's NSAPI. The packet's source
// address is filled from the context when unset.
func (c *Client) SendIP(env *sim.Env, nsapi uint8, pkt ipnet.Packet) error {
	ctx, ok := c.contexts[nsapi]
	if !ok {
		return fmt.Errorf("gprs: client %s NSAPI %d not active", c.IMSI, nsapi)
	}
	if !pkt.Src.IsValid() {
		pkt.Src = ctx.Address
	}
	c.sendPDU(env, c.TLLI(), WrapData(nsapi, pkt))
	return nil
}

// HandleDownlink processes a downlink LLC PDU addressed to this client.
func (c *Client) HandleDownlink(env *sim.Env, pdu []byte) error {
	parsed, err := ParsePDU(pdu)
	if err != nil {
		return err
	}
	if parsed.IsData {
		if c.host != nil {
			c.host.PacketIn(env, parsed.NSAPI, parsed.Packet)
		} else if c.OnPacket != nil {
			c.OnPacket(env, parsed.NSAPI, parsed.Packet)
		}
		return nil
	}
	switch m := parsed.SM.(type) {
	case AttachAccept:
		c.attached = true
		c.ptmsi = m.PTMSI
		c.finishAttach(true)
	case AttachReject:
		c.finishAttach(false)
	case DetachAccept:
		c.attached = false
		c.contexts = nil
		// Detach implicitly aborts every in-flight context transaction —
		// the SGSN has dropped the subscriber record, so no accept or
		// reject will ever arrive. Fail the activations and complete the
		// deactivations (their contexts are gone either way), in NSAPI
		// order so completion order is deterministic.
		for nsapi := 0; nsapi < 256; nsapi++ {
			if p, ok := c.pendingActivate[uint8(nsapi)]; ok {
				delete(c.pendingActivate, uint8(nsapi))
				if p.fn != nil {
					p.fn(p.arg, netip.Addr{}, false)
				}
			}
			if p, ok := c.pendingDeactivate[uint8(nsapi)]; ok {
				delete(c.pendingDeactivate, uint8(nsapi))
				if p.fn != nil {
					p.fn()
				}
			}
		}
		if done := c.pendingDetach; done != nil {
			c.pendingDetach = nil
			done()
		}
	case ActivatePDPAccept:
		addr, parseErr := netip.ParseAddr(m.Address)
		done := c.pendingActivate[m.NSAPI]
		delete(c.pendingActivate, m.NSAPI)
		if parseErr != nil {
			if done.fn != nil {
				done.fn(done.arg, netip.Addr{}, false)
			}
			return fmt.Errorf("gprs: bad PDP address %q: %w", m.Address, parseErr)
		}
		if c.contexts == nil {
			c.contexts = make(map[uint8]*ClientPDP)
		}
		c.contexts[m.NSAPI] = &ClientPDP{NSAPI: m.NSAPI, Address: addr, QoS: m.QoS}
		if done.fn != nil {
			done.fn(done.arg, addr, true)
		}
	case ActivatePDPReject:
		if done, pending := c.pendingActivate[m.NSAPI]; pending {
			delete(c.pendingActivate, m.NSAPI)
			if done.fn != nil {
				done.fn(done.arg, netip.Addr{}, false)
			}
		}
	case DeactivatePDPAccept:
		delete(c.contexts, m.NSAPI)
		if done, pending := c.pendingDeactivate[m.NSAPI]; pending {
			delete(c.pendingDeactivate, m.NSAPI)
			if done.fn != nil {
				done.fn()
			}
		}
	case RequestPDPActivation:
		if c.host != nil {
			c.host.ActivationRequested(env, m.Address)
		} else if c.OnActivationRequest != nil {
			c.OnActivationRequest(env, m.Address)
		}
	case RAUpdateAccept:
		if done := c.pendingRAU; done != nil {
			c.pendingRAU = nil
			done()
		}
	}
	return nil
}
