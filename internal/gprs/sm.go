// Package gprs implements the GPRS core network of the paper's Fig 1: the
// serving GPRS support node (SGSN), the gateway GPRS support node (GGSN),
// the GMM/SM signalling messages (GPRS attach, PDP context activation and
// deactivation, GSM 04.08 chapter 9), and a reusable protocol client that
// both plain GPRS mobile stations and the VMSC's per-MS virtual clients run
// (paper step 1.3: "the VMSC activates a new PDP context just like a GPRS
// MS does").
package gprs

import (
	"errors"
	"fmt"

	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/sim"
	"vgprs/internal/wire"
)

// ErrBadMessage is returned when a GMM/SM message fails to decode.
var ErrBadMessage = errors.New("gprs: malformed GMM/SM message")

// SMCause is the session/mobility-management failure cause.
type SMCause uint8

// Causes.
const (
	SMCauseNone SMCause = iota
	SMCauseNetworkFailure
	SMCauseNoResources
	SMCauseUnknownSubscriber
	SMCauseAlreadyAttached
	SMCauseNotAttached
	SMCauseDuplicateNSAPI
	SMCauseUnknownNSAPI
)

// String names the cause.
func (c SMCause) String() string {
	switch c {
	case SMCauseNone:
		return "none"
	case SMCauseNetworkFailure:
		return "network-failure"
	case SMCauseNoResources:
		return "no-resources"
	case SMCauseUnknownSubscriber:
		return "unknown-subscriber"
	case SMCauseAlreadyAttached:
		return "already-attached"
	case SMCauseNotAttached:
		return "not-attached"
	case SMCauseDuplicateNSAPI:
		return "duplicate-nsapi"
	case SMCauseUnknownNSAPI:
		return "unknown-nsapi"
	default:
		return fmt.Sprintf("SMCause(%d)", uint8(c))
	}
}

// AttachRequest starts GPRS attach (paper step 1.3: "the VMSC performs GPRS
// attach to the SGSN by exchanging the GPRS Attach Request and Accept
// message pair").
type AttachRequest struct {
	IMSI gsmid.IMSI
}

// Name implements sim.Message.
func (AttachRequest) Name() string { return "GPRS Attach Request" }

// AttachAccept completes attach and assigns the P-TMSI.
type AttachAccept struct {
	PTMSI gsmid.PTMSI
}

// Name implements sim.Message.
func (AttachAccept) Name() string { return "GPRS Attach Accept" }

// AttachReject refuses attach.
type AttachReject struct {
	Cause SMCause
}

// Name implements sim.Message.
func (AttachReject) Name() string { return "GPRS Attach Reject" }

// DetachRequest leaves the GPRS network.
type DetachRequest struct{}

// Name implements sim.Message.
func (DetachRequest) Name() string { return "GPRS Detach Request" }

// DetachAccept confirms detach.
type DetachAccept struct{}

// Name implements sim.Message.
func (DetachAccept) Name() string { return "GPRS Detach Accept" }

// ActivatePDPRequest asks for a PDP context (paper steps 1.3 and 2.9).
type ActivatePDPRequest struct {
	NSAPI uint8
	QoS   gtp.QoSProfile
	// RequestedAddress requests a static PDP address; empty means dynamic.
	RequestedAddress string
}

// Name implements sim.Message.
func (ActivatePDPRequest) Name() string { return "Activate PDP Context Request" }

// ActivatePDPAccept confirms activation with the address in use.
type ActivatePDPAccept struct {
	NSAPI   uint8
	Address string
	QoS     gtp.QoSProfile
}

// Name implements sim.Message.
func (ActivatePDPAccept) Name() string { return "Activate PDP Context Accept" }

// ActivatePDPReject refuses activation.
type ActivatePDPReject struct {
	NSAPI uint8
	Cause SMCause
}

// Name implements sim.Message.
func (ActivatePDPReject) Name() string { return "Activate PDP Context Reject" }

// DeactivatePDPRequest tears a context down (paper step 3.4).
type DeactivatePDPRequest struct {
	NSAPI uint8
}

// Name implements sim.Message.
func (DeactivatePDPRequest) Name() string { return "Deactivate PDP Context Request" }

// DeactivatePDPAccept confirms deactivation.
type DeactivatePDPAccept struct {
	NSAPI uint8
}

// Name implements sim.Message.
func (DeactivatePDPAccept) Name() string { return "Deactivate PDP Context Accept" }

// RequestPDPActivation is the network-requested activation (GSM 04.08
// §9.5.4) the SGSN relays when the GGSN holds downlink traffic for an
// inactive static-address context — the TR 23.923 MT-call path.
type RequestPDPActivation struct {
	Address string
}

// Name implements sim.Message.
func (RequestPDPActivation) Name() string { return "Request PDP Context Activation" }

// RAUpdateRequest is the routing-area update a GPRS MS performs when it
// observes a new RAI (GSM 03.60 §6.9); PDP contexts survive it.
type RAUpdateRequest struct {
	RAI gsmid.RAI
}

// Name implements sim.Message.
func (RAUpdateRequest) Name() string { return "Routing Area Update Request" }

// RAUpdateAccept confirms the routing-area update.
type RAUpdateAccept struct {
	RAI gsmid.RAI
}

// Name implements sim.Message.
func (RAUpdateAccept) Name() string { return "Routing Area Update Accept" }

// Interface-compliance assertions.
var (
	_ sim.Message = AttachRequest{}
	_ sim.Message = AttachAccept{}
	_ sim.Message = AttachReject{}
	_ sim.Message = DetachRequest{}
	_ sim.Message = DetachAccept{}
	_ sim.Message = ActivatePDPRequest{}
	_ sim.Message = ActivatePDPAccept{}
	_ sim.Message = ActivatePDPReject{}
	_ sim.Message = DeactivatePDPRequest{}
	_ sim.Message = DeactivatePDPAccept{}
	_ sim.Message = RequestPDPActivation{}
	_ sim.Message = RAUpdateRequest{}
	_ sim.Message = RAUpdateAccept{}
)

const (
	smAttachRequest uint8 = iota + 1
	smAttachAccept
	smAttachReject
	smDetachRequest
	smDetachAccept
	smActivateRequest
	smActivateAccept
	smActivateReject
	smDeactivateRequest
	smDeactivateAccept
	smRequestActivation
	smRAUpdateRequest
	smRAUpdateAccept
)

func marshalQoS(w *wire.Writer, q gtp.QoSProfile) {
	w.U8(q.Precedence)
	w.U8(q.DelayClass)
	w.U16(q.PeakThroughputKbps)
	if q.Realtime {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

func unmarshalQoS(r *wire.Reader) gtp.QoSProfile {
	return gtp.QoSProfile{
		Precedence:         r.U8(),
		DelayClass:         r.U8(),
		PeakThroughputKbps: r.U16(),
		Realtime:           r.U8() != 0,
	}
}

// MarshalSM encodes a GMM/SM message, returning a fresh buffer the caller
// owns.
func MarshalSM(msg sim.Message) ([]byte, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	if err := encodeSM(w, msg); err != nil {
		return nil, err
	}
	return w.CopyBytes(), nil
}

// AppendSM encodes a GMM/SM message onto dst and returns the extended
// slice. On error dst is returned unchanged.
func AppendSM(dst []byte, msg sim.Message) ([]byte, error) {
	w := wire.Wrap(dst)
	if err := encodeSM(&w, msg); err != nil {
		return dst, err
	}
	return w.Bytes(), nil
}

func encodeSM(w *wire.Writer, msg sim.Message) error {
	switch m := msg.(type) {
	case AttachRequest:
		w.U8(smAttachRequest)
		w.BCD(string(m.IMSI))
	case AttachAccept:
		w.U8(smAttachAccept)
		w.U32(uint32(m.PTMSI))
	case AttachReject:
		w.U8(smAttachReject)
		w.U8(uint8(m.Cause))
	case DetachRequest:
		w.U8(smDetachRequest)
	case DetachAccept:
		w.U8(smDetachAccept)
	case ActivatePDPRequest:
		w.U8(smActivateRequest)
		w.U8(m.NSAPI)
		marshalQoS(w, m.QoS)
		w.String8(m.RequestedAddress)
	case ActivatePDPAccept:
		w.U8(smActivateAccept)
		w.U8(m.NSAPI)
		w.String8(m.Address)
		marshalQoS(w, m.QoS)
	case ActivatePDPReject:
		w.U8(smActivateReject)
		w.U8(m.NSAPI)
		w.U8(uint8(m.Cause))
	case DeactivatePDPRequest:
		w.U8(smDeactivateRequest)
		w.U8(m.NSAPI)
	case DeactivatePDPAccept:
		w.U8(smDeactivateAccept)
		w.U8(m.NSAPI)
	case RequestPDPActivation:
		w.U8(smRequestActivation)
		w.String8(m.Address)
	case RAUpdateRequest:
		w.U8(smRAUpdateRequest)
		gsmid.MarshalLAI(w, m.RAI.LAI)
		w.U8(m.RAI.RAC)
	case RAUpdateAccept:
		w.U8(smRAUpdateAccept)
		gsmid.MarshalLAI(w, m.RAI.LAI)
		w.U8(m.RAI.RAC)
	default:
		return fmt.Errorf("gprs: cannot marshal %T", msg)
	}
	return nil
}

// UnmarshalSM decodes a GMM/SM message.
func UnmarshalSM(b []byte) (sim.Message, error) {
	var r wire.Reader
	r.Reset(b)
	var msg sim.Message
	switch op := r.U8(); op {
	case smAttachRequest:
		msg = AttachRequest{IMSI: gsmid.IMSI(r.BCD())}
	case smAttachAccept:
		msg = AttachAccept{PTMSI: gsmid.PTMSI(r.U32())}
	case smAttachReject:
		msg = AttachReject{Cause: SMCause(r.U8())}
	case smDetachRequest:
		msg = DetachRequest{}
	case smDetachAccept:
		msg = DetachAccept{}
	case smActivateRequest:
		msg = ActivatePDPRequest{NSAPI: r.U8(), QoS: unmarshalQoS(&r), RequestedAddress: r.String8()}
	case smActivateAccept:
		msg = ActivatePDPAccept{NSAPI: r.U8(), Address: r.String8(), QoS: unmarshalQoS(&r)}
	case smActivateReject:
		msg = ActivatePDPReject{NSAPI: r.U8(), Cause: SMCause(r.U8())}
	case smDeactivateRequest:
		msg = DeactivatePDPRequest{NSAPI: r.U8()}
	case smDeactivateAccept:
		msg = DeactivatePDPAccept{NSAPI: r.U8()}
	case smRequestActivation:
		msg = RequestPDPActivation{Address: r.String8()}
	case smRAUpdateRequest:
		msg = RAUpdateRequest{RAI: gsmid.RAI{LAI: gsmid.UnmarshalLAI(&r), RAC: r.U8()}}
	case smRAUpdateAccept:
		msg = RAUpdateAccept{RAI: gsmid.RAI{LAI: gsmid.UnmarshalLAI(&r), RAC: r.U8()}}
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", ErrBadMessage, op)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, r.Remaining())
	}
	return msg, nil
}
