package gprs

import (
	"errors"
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/hlr"
	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

const testIMSI = gsmid.IMSI("466920000000001")

func TestSMCodecRoundTrip(t *testing.T) {
	msgs := []sim.Message{
		AttachRequest{IMSI: testIMSI},
		AttachAccept{PTMSI: 0xBEEF},
		AttachReject{Cause: SMCauseUnknownSubscriber},
		DetachRequest{},
		DetachAccept{},
		ActivatePDPRequest{NSAPI: 5, QoS: gtp.SignallingQoS(), RequestedAddress: "10.0.0.9"},
		ActivatePDPAccept{NSAPI: 5, Address: "10.1.1.1", QoS: gtp.VoiceQoS()},
		ActivatePDPReject{NSAPI: 5, Cause: SMCauseNoResources},
		DeactivatePDPRequest{NSAPI: 6},
		DeactivatePDPAccept{NSAPI: 6},
		RequestPDPActivation{Address: "10.0.0.9"},
		RAUpdateRequest{RAI: gsmid.RAI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 9}, RAC: 3}},
		RAUpdateAccept{RAI: gsmid.RAI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 9}, RAC: 3}},
	}
	for _, m := range msgs {
		b, err := MarshalSM(m)
		if err != nil {
			t.Fatalf("MarshalSM(%T): %v", m, err)
		}
		got, err := UnmarshalSM(b)
		if err != nil {
			t.Fatalf("UnmarshalSM(%T): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %#v -> %#v", m, got)
		}
	}
}

func TestSMCodecErrors(t *testing.T) {
	if _, err := UnmarshalSM([]byte{99}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("unknown opcode err = %v", err)
	}
	if _, err := UnmarshalSM(nil); !errors.Is(err, ErrBadMessage) {
		t.Errorf("empty err = %v", err)
	}
	b, err := MarshalSM(DetachRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSM(append(b, 1)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("trailing err = %v", err)
	}
	if _, err := MarshalSM(foreignMsg{}); err == nil {
		t.Error("foreign type accepted")
	}
}

func TestLLCFraming(t *testing.T) {
	pdu, err := WrapSM(AttachRequest{IMSI: testIMSI})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePDU(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.IsData {
		t.Fatal("signalling PDU parsed as data")
	}
	if _, ok := parsed.SM.(AttachRequest); !ok {
		t.Fatalf("SM = %T", parsed.SM)
	}

	pkt := ipnet.Packet{
		Src: ipnet.MustAddr("10.1.1.1"), Dst: ipnet.MustAddr("192.168.1.1"),
		Proto: ipnet.ProtoUDP, SrcPort: 1, DstPort: 2, Payload: []byte("x"),
	}
	dataPDU := WrapData(5, pkt)
	parsed, err = ParsePDU(dataPDU)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.IsData || parsed.NSAPI != 5 || parsed.Packet.Dst != pkt.Dst {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestLLCFramingErrors(t *testing.T) {
	for _, bad := range [][]byte{nil, {9}, {sapiData}, {sapiData, 5, 0xFF}} {
		if _, err := ParsePDU(bad); err == nil {
			t.Errorf("ParsePDU(% X) accepted", bad)
		}
	}
}

func TestSMCauseStrings(t *testing.T) {
	if SMCauseNoResources.String() != "no-resources" || SMCause(99).String() != "SMCause(99)" {
		t.Fatal("cause strings wrong")
	}
}

// ipHost is a test IP endpoint on the Gi network that echoes UDP packets.
type ipHost struct {
	id   sim.NodeID
	addr netip.Addr
	got  []ipnet.Packet
	echo bool
}

func (h *ipHost) ID() sim.NodeID { return h.id }

func (h *ipHost) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	pkt, ok := msg.(ipnet.Packet)
	if !ok {
		return
	}
	h.got = append(h.got, pkt)
	if h.echo {
		env.Send(h.id, from, pkt.Reply([]byte("echo:"+string(pkt.Payload))))
	}
}

type coreFixture struct {
	env    *sim.Env
	ms     *MS
	sgsn   *SGSN
	ggsn   *GGSN
	hlr    *hlr.HLR
	router *ipnet.Router
	host   *ipHost
}

// newCoreFixture wires the full Fig 1 topology:
// MS -Um- BTS -Abis- BSC(PCU) -Gb- SGSN -Gn- GGSN -Gi- Router - Host,
// with HLR reachable over Gr (SGSN) and Gc (GGSN).
func newCoreFixture(t *testing.T, ggsnCfg GGSNConfig, sgsnCfg SGSNConfig) *coreFixture {
	t.Helper()
	env := sim.NewEnv(1)

	h := hlr.New(hlr.Config{ID: "HLR"})
	if err := h.Provision(hlr.Subscriber{IMSI: testIMSI, MSISDN: "886912345678"}); err != nil {
		t.Fatal(err)
	}

	if sgsnCfg.ID == "" {
		sgsnCfg.ID = "SGSN-1"
	}
	sgsnCfg.GGSN = "GGSN-1"
	sgsnCfg.HLR = "HLR"
	sgsn := NewSGSN(sgsnCfg)

	ggsnCfg.ID = "GGSN-1"
	ggsnCfg.Gi = "GI"
	if ggsnCfg.HLR == "" {
		ggsnCfg.HLR = "HLR"
	}
	ggsn := NewGGSN(ggsnCfg)

	router := ipnet.NewRouter("GI")
	host := &ipHost{id: "HOST", addr: ipnet.MustAddr("192.168.1.10"), echo: true}
	router.AddHost(host.addr, "HOST")
	router.AddPrefix(netip.MustParsePrefix("10.1.1.0/24"), "GGSN-1")

	ms := NewMS(MSConfig{ID: "MS-1", IMSI: testIMSI, BTS: "BTS-1"})
	bts := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-1", BSC: "BSC-1"})
	bsc := gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-1", MSC: "MSC-X", SGSN: "SGSN-1", BTSs: []sim.NodeID{"BTS-1"},
	})
	// The BSC requires an MSC link even though this test never uses CS.
	mscStub := &ipHost{id: "MSC-X"}

	for _, n := range []sim.Node{h, sgsn, ggsn, router, host, ms, bts, bsc, mscStub} {
		env.AddNode(n)
	}
	env.Connect("MS-1", "BTS-1", "Um", time.Millisecond)
	env.Connect("BTS-1", "BSC-1", "Abis", time.Millisecond)
	env.Connect("BSC-1", "MSC-X", "A", time.Millisecond)
	env.Connect("BSC-1", "SGSN-1", "Gb", time.Millisecond)
	env.Connect("SGSN-1", "GGSN-1", "Gn", time.Millisecond)
	env.Connect("SGSN-1", "HLR", "Gr", time.Millisecond)
	env.Connect("GGSN-1", "HLR", "Gc", time.Millisecond)
	env.Connect("GGSN-1", "GI", "Gi", time.Millisecond)
	env.Connect("GI", "HOST", "IP", time.Millisecond)

	return &coreFixture{env: env, ms: ms, sgsn: sgsn, ggsn: ggsn, hlr: h, router: router, host: host}
}

func (f *coreFixture) attach(t *testing.T) {
	t.Helper()
	attached := false
	if err := f.ms.Client.Attach(f.env, func(ok bool) { attached = ok }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !attached {
		t.Fatal("attach failed")
	}
}

func (f *coreFixture) activate(t *testing.T, nsapi uint8, qos gtp.QoSProfile, req string) netip.Addr {
	t.Helper()
	var addr netip.Addr
	ok := false
	if err := f.ms.Client.ActivatePDP(f.env, nsapi, qos, req, func(a netip.Addr, k bool) {
		addr, ok = a, k
	}); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !ok {
		t.Fatal("PDP activation failed")
	}
	return addr
}

func TestAttachUpdatesHLR(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	if !f.ms.Client.Attached() {
		t.Fatal("client not attached")
	}
	if f.sgsn.Attached() != 1 {
		t.Fatalf("SGSN.Attached = %d", f.sgsn.Attached())
	}
	rec, _ := f.hlr.Lookup(testIMSI)
	if rec.SGSN != "SGSN-1" {
		t.Fatalf("HLR SGSN = %q", rec.SGSN)
	}
	// After attach the client uses a local TLLI.
	if uint32(f.ms.Client.TLLI())&0xC0000000 != 0xC0000000 {
		t.Fatal("post-attach TLLI is not local")
	}
}

func TestAttachUnknownIMSIRejected(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	bad := NewMS(MSConfig{ID: "MS-BAD", IMSI: "466929999999999", BTS: "BTS-1"})
	f.env.AddNode(bad)
	f.env.Connect("MS-BAD", "BTS-1", "Um", time.Millisecond)
	result := true
	if err := bad.Client.Attach(f.env, func(ok bool) { result = ok }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if result {
		t.Fatal("unknown IMSI attach accepted")
	}
}

func TestActivateDynamicPDP(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	addr := f.activate(t, 5, gtp.SignallingQoS(), "")
	if !addr.IsValid() {
		t.Fatal("no address assigned")
	}
	if f.sgsn.ActiveContexts() != 1 || f.ggsn.ActiveContexts() != 1 {
		t.Fatalf("contexts sgsn=%d ggsn=%d", f.sgsn.ActiveContexts(), f.ggsn.ActiveContexts())
	}
	ctx, ok := f.ms.Client.Context(5)
	if !ok || ctx.Address != addr {
		t.Fatalf("client context = %+v/%v", ctx, ok)
	}
}

func TestActivateStaticAddress(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	addr := f.activate(t, 5, gtp.SignallingQoS(), "10.1.1.200")
	if addr.String() != "10.1.1.200" {
		t.Fatalf("addr = %s", addr)
	}
}

func TestActivateDuplicateNSAPIRejected(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	if err := f.ms.Client.ActivatePDP(f.env, 5, gtp.VoiceQoS(), "", func(netip.Addr, bool) {}); err == nil {
		t.Fatal("client allowed duplicate NSAPI")
	}
}

func TestActivateBeyondMaxContextsRejected(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{MaxContexts: 1})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	ok := true
	if err := f.ms.Client.ActivatePDP(f.env, 6, gtp.VoiceQoS(), "", func(_ netip.Addr, k bool) { ok = k }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if ok {
		t.Fatal("activation beyond MaxContexts accepted")
	}
}

func TestEndToEndDataPath(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	addr := f.activate(t, 5, gtp.SignallingQoS(), "")

	var rx []ipnet.Packet
	f.ms.Client.OnPacket = func(_ *sim.Env, nsapi uint8, pkt ipnet.Packet) {
		rx = append(rx, pkt)
	}
	err := f.ms.Client.SendIP(f.env, 5, ipnet.Packet{
		Dst: f.host.addr, Proto: ipnet.ProtoUDP, SrcPort: 1000, DstPort: 2000,
		Payload: []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.env.Run()

	// The host saw the uplink packet with the PDP address as source
	// (Fig 1 data path (1)(2)(3)(4)).
	if len(f.host.got) != 1 {
		t.Fatalf("host got %d packets", len(f.host.got))
	}
	if f.host.got[0].Src != addr || string(f.host.got[0].Payload) != "hello" {
		t.Fatalf("host packet = %+v", f.host.got[0])
	}
	// The echo came back down the tunnel to the client.
	if len(rx) != 1 || string(rx[0].Payload) != "echo:hello" {
		t.Fatalf("client rx = %+v", rx)
	}
	ul, dl := f.sgsn.Forwarded()
	if ul != 1 || dl != 1 {
		t.Fatalf("SGSN forwarded ul=%d dl=%d", ul, dl)
	}
}

func TestDeactivateReleasesAddress(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	addr := f.activate(t, 5, gtp.SignallingQoS(), "")
	done := false
	if err := f.ms.Client.DeactivatePDP(f.env, 5, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done {
		t.Fatal("deactivate did not complete")
	}
	if f.sgsn.ActiveContexts() != 0 || f.ggsn.ActiveContexts() != 0 {
		t.Fatal("contexts leaked")
	}
	// The released address is reusable.
	got := f.activate(t, 5, gtp.SignallingQoS(), "")
	if got != addr {
		t.Fatalf("expected address reuse %s, got %s", addr, got)
	}
}

func TestDetachCleansUp(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	done := false
	if err := f.ms.Client.Detach(f.env, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done || f.ms.Client.Attached() {
		t.Fatal("detach did not complete")
	}
	if f.sgsn.Attached() != 0 || f.sgsn.ActiveContexts() != 0 {
		t.Fatalf("SGSN state leaked: attached=%d contexts=%d", f.sgsn.Attached(), f.sgsn.ActiveContexts())
	}
	if f.ms.Client.ActiveContexts() != 0 {
		t.Fatal("client contexts leaked")
	}
	// The tunnels were deleted at the GGSN too (a re-attach must not
	// collide with stale TIDs).
	if f.ggsn.ActiveContexts() != 0 {
		t.Fatalf("GGSN contexts leaked: %d", f.ggsn.ActiveContexts())
	}
}

func TestNetworkInitiatedActivation(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{NetworkInitiatedActivation: true}, SGSNConfig{})
	staticAddr := ipnet.MustAddr("10.1.1.250")
	f.ggsn.ProvisionStatic(staticAddr, testIMSI)
	f.router.AddPrefix(netip.MustParsePrefix("10.1.1.250/32"), "GGSN-1")
	f.attach(t)

	// The MS-side policy: on a network activation request, activate with
	// the requested static address (what a TR 23.923 terminal would do).
	var rx []ipnet.Packet
	f.ms.Client.OnPacket = func(_ *sim.Env, _ uint8, pkt ipnet.Packet) { rx = append(rx, pkt) }
	f.ms.Client.OnActivationRequest = func(env *sim.Env, address string) {
		_ = f.ms.Client.ActivatePDP(env, 5, gtp.SignallingQoS(), address, func(netip.Addr, bool) {})
	}

	// Downlink packet arrives for the static address with no context.
	f.env.Send("HOST", "GI", ipnet.Packet{
		Src: f.host.addr, Dst: staticAddr,
		Proto: ipnet.ProtoUDP, SrcPort: 9, DstPort: 9, Payload: []byte("wake"),
	})
	f.env.Run()

	if len(rx) != 1 || string(rx[0].Payload) != "wake" {
		t.Fatalf("client rx = %+v (network-initiated activation failed)", rx)
	}
	if f.ggsn.ActiveContexts() != 1 {
		t.Fatalf("GGSN contexts = %d", f.ggsn.ActiveContexts())
	}
}

func TestDownlinkWithoutContextDropsWhenDisabled(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.env.Send("HOST", "GI", ipnet.Packet{
		Src: f.host.addr, Dst: ipnet.MustAddr("10.1.1.77"),
		Proto: ipnet.ProtoUDP, Payload: []byte("lost"),
	})
	f.env.Run()
	if _, _, dropped := f.ggsn.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestGTPEcho(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.env.Send("SGSN-1", "GGSN-1", gtp.EchoRequest{Seq: 42})
	f.env.Run()
	// No assertion on internals needed: absence of panics plus the
	// response being routed back (SGSN handles EchoRequest only; the
	// response is dropped silently) exercises the path. Send the reverse
	// direction too.
	f.env.Send("GGSN-1", "SGSN-1", gtp.EchoRequest{Seq: 43})
	f.env.Run()
}

func TestClientGuards(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	c := f.ms.Client
	if err := c.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "", nil); err == nil {
		t.Error("activate before attach accepted")
	}
	if err := c.Detach(f.env, nil); err == nil {
		t.Error("detach before attach accepted")
	}
	if err := c.SendIP(f.env, 5, ipnet.Packet{}); err == nil {
		t.Error("SendIP without context accepted")
	}
	if err := c.DeactivatePDP(f.env, 5, nil); err == nil {
		t.Error("deactivate without context accepted")
	}
	f.attach(t)
	if err := c.Attach(f.env, nil); err == nil {
		t.Error("double attach accepted")
	}
}

func TestSMRoundTripProperty(t *testing.T) {
	prop := func(nsapi, prec uint8, kbps uint16, rt bool, addr []byte) bool {
		addrStr := ""
		if len(addr) > 0 {
			addrStr = netip.AddrFrom4([4]byte{10, 1, 1, addr[0]}).String()
		}
		m := ActivatePDPRequest{
			NSAPI:            nsapi,
			QoS:              gtp.QoSProfile{Precedence: prec, PeakThroughputKbps: kbps, Realtime: rt},
			RequestedAddress: addrStr,
		}
		b, err := MarshalSM(m)
		if err != nil {
			return false
		}
		got, err := UnmarshalSM(b)
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type foreignMsg struct{}

func (foreignMsg) Name() string { return "X" }

func TestQoSNegotiationCapsThroughput(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{MaxKbps: 16}, SGSNConfig{})
	f.attach(t)
	var negotiated gtp.QoSProfile
	if err := f.ms.Client.ActivatePDP(f.env, 6, gtp.VoiceQoS(), "", func(netip.Addr, bool) {}); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	ctx, ok := f.ms.Client.Context(6)
	if !ok {
		t.Fatal("activation failed")
	}
	negotiated = ctx.QoS
	if negotiated.PeakThroughputKbps != 16 {
		t.Fatalf("negotiated rate = %d, want capped at 16", negotiated.PeakThroughputKbps)
	}
	// Other fields survive the negotiation unchanged.
	if !negotiated.Realtime || negotiated.Precedence != gtp.VoiceQoS().Precedence {
		t.Fatalf("negotiated profile mangled: %+v", negotiated)
	}
}

func TestRoutingAreaUpdate(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")

	done := false
	newRAI := gsmid.RAI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 9}, RAC: 2}
	if err := f.ms.Client.UpdateRoutingArea(f.env, newRAI, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !done {
		t.Fatal("RAU did not complete")
	}
	// The attach and the PDP context survive the update.
	if !f.ms.Client.Attached() || f.ms.Client.ActiveContexts() != 1 {
		t.Fatalf("attached=%v contexts=%d", f.ms.Client.Attached(), f.ms.Client.ActiveContexts())
	}
	if f.sgsn.ActiveContexts() != 1 {
		t.Fatalf("SGSN contexts = %d", f.sgsn.ActiveContexts())
	}
	// Data still flows after the update.
	var rx int
	f.ms.Client.OnPacket = func(*sim.Env, uint8, ipnet.Packet) { rx++ }
	if err := f.ms.Client.SendIP(f.env, 5, ipnet.Packet{
		Dst: f.host.addr, Proto: ipnet.ProtoUDP, Payload: []byte("post-rau"),
	}); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if rx != 1 {
		t.Fatalf("post-RAU echoes = %d", rx)
	}
}

func TestRAUBeforeAttachFails(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	if err := f.ms.Client.UpdateRoutingArea(f.env, gsmid.RAI{}, nil); err == nil {
		t.Fatal("RAU before attach accepted")
	}
}

// TestInterSGSNCancelLocation covers GSM 03.60 inter-SGSN mobility: when a
// subscriber attaches through a new SGSN, the HLR cancels the old SGSN,
// which must purge its MM and PDP state and tear down the GGSN tunnels so
// the TIDs (derived from IMSI+NSAPI) are free for re-activation.
func TestInterSGSNCancelLocation(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	f.activate(t, 5, gtp.SignallingQoS(), "")
	if f.sgsn.ActiveContexts() != 1 || f.ggsn.ActiveContexts() != 1 {
		t.Fatalf("before move: sgsn=%d ggsn=%d contexts",
			f.sgsn.ActiveContexts(), f.ggsn.ActiveContexts())
	}

	// Second routing area: BTS-2 / BSC-2 / SGSN-2 sharing GGSN and HLR.
	sgsn2 := NewSGSN(SGSNConfig{ID: "SGSN-2", GGSN: "GGSN-1", HLR: "HLR"})
	ms2 := NewMS(MSConfig{ID: "MS-1b", IMSI: testIMSI, BTS: "BTS-2"})
	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-2", BSC: "BSC-2"})
	bsc2 := gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-2", MSC: "MSC-X", SGSN: "SGSN-2", BTSs: []sim.NodeID{"BTS-2"},
	})
	for _, n := range []sim.Node{sgsn2, ms2, bts2, bsc2} {
		f.env.AddNode(n)
	}
	f.env.Connect("MS-1b", "BTS-2", "Um", time.Millisecond)
	f.env.Connect("BTS-2", "BSC-2", "Abis", time.Millisecond)
	f.env.Connect("BSC-2", "MSC-X", "A", time.Millisecond)
	f.env.Connect("BSC-2", "SGSN-2", "Gb", time.Millisecond)
	f.env.Connect("SGSN-2", "GGSN-1", "Gn", time.Millisecond)
	f.env.Connect("SGSN-2", "HLR", "Gr", time.Millisecond)

	attached := false
	if err := ms2.Client.Attach(f.env, func(ok bool) { attached = ok }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !attached {
		t.Fatal("attach at SGSN-2 failed")
	}

	if rec, _ := f.hlr.Lookup(testIMSI); rec.SGSN != "SGSN-2" {
		t.Fatalf("HLR SGSN = %q, want SGSN-2", rec.SGSN)
	}
	if f.sgsn.Attached() != 0 || f.sgsn.ActiveContexts() != 0 {
		t.Fatalf("old SGSN not cancelled: attached=%d contexts=%d",
			f.sgsn.Attached(), f.sgsn.ActiveContexts())
	}
	if f.ggsn.ActiveContexts() != 0 {
		t.Fatalf("GGSN still holds %d contexts after cancel", f.ggsn.ActiveContexts())
	}

	// The TID for (IMSI, NSAPI 5) must be free again: re-activate at SGSN-2.
	var ok bool
	if err := ms2.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(_ netip.Addr, k bool) { ok = k }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !ok {
		t.Fatal("re-activation at SGSN-2 failed (stale TID at GGSN?)")
	}
	if sgsn2.ActiveContexts() != 1 || f.ggsn.ActiveContexts() != 1 {
		t.Fatalf("after move: sgsn2=%d ggsn=%d contexts",
			sgsn2.ActiveContexts(), f.ggsn.ActiveContexts())
	}
}

// TestPathSupervisionDetectsGGSNOutage drives the GSM 09.60 Echo-based
// path management: a dead Gn path is declared down after the miss
// threshold, activations then fail fast with a network-failure cause, and
// the path recovers when echoes flow again.
func TestPathSupervisionDetectsGGSNOutage(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{
		EchoInterval: 100 * time.Millisecond,
		EchoMisses:   3,
	})
	f.attach(t)
	f.sgsn.StartPathSupervision(f.env)
	f.env.RunUntil(f.env.Now() + time.Second)
	if !f.sgsn.PathUp() {
		t.Fatal("path down with a healthy GGSN")
	}

	gn := f.env.LinkBetween("SGSN-1", "GGSN-1")
	ng := f.env.LinkBetween("GGSN-1", "SGSN-1")
	gn.Down, ng.Down = true, true
	f.env.RunUntil(f.env.Now() + time.Second)
	if f.sgsn.PathUp() {
		t.Fatal("path still up after 10 missed echoes")
	}

	// Activation now fails fast with a reject, not a client timeout.
	start := f.env.Now()
	var done, ok bool
	if err := f.ms.Client.ActivatePDP(f.env, 6, gtp.VoiceQoS(), "",
		func(_ netip.Addr, k bool) { done, ok = true, k }); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 10*time.Second)
	if !done || ok {
		t.Fatalf("activation on a down path: done=%v ok=%v", done, ok)
	}
	if elapsed := f.env.Now() - start; elapsed > 10*time.Second {
		t.Fatalf("reject took %v, want fast-fail", elapsed)
	}

	// Recovery: echoes flow again, the path comes back, activation works.
	gn.Down, ng.Down = false, false
	f.env.RunUntil(f.env.Now() + time.Second)
	if !f.sgsn.PathUp() {
		t.Fatal("path did not recover")
	}
	var rok bool
	if err := f.ms.Client.ActivatePDP(f.env, 6, gtp.VoiceQoS(), "",
		func(_ netip.Addr, k bool) { rok = k }); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + time.Second)
	if !rok {
		t.Fatal("activation after recovery failed")
	}
}

// TestClientTimeoutsFireOnDeadNetwork covers the client's transaction
// expiry: with the Um link down, attach and activation callbacks must fire
// with failure after Timeout instead of hanging forever.
func TestClientTimeoutsFireOnDeadNetwork(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.ms.Client.Timeout = 2 * time.Second
	f.ms.Client.Retries = -1 // single-attempt expiry; retransmission has its own tests

	um := f.env.LinkBetween("MS-1", "BTS-1")
	um.Down = true

	var attachDone, attachOK bool
	if err := f.ms.Client.Attach(f.env, func(ok bool) { attachDone, attachOK = true, ok }); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 5*time.Second)
	if !attachDone || attachOK {
		t.Fatalf("attach on a dead link: done=%v ok=%v", attachDone, attachOK)
	}

	// Recover, attach for real, then kill the link again for activation.
	um.Down = false
	f.attach(t)
	um.Down = true
	var actDone, actOK bool
	if err := f.ms.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(_ netip.Addr, ok bool) { actDone, actOK = true, ok }); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 5*time.Second)
	if !actDone || actOK {
		t.Fatalf("activation on a dead link: done=%v ok=%v", actDone, actOK)
	}
	// The expired NSAPI must be reusable.
	um.Down = false
	f.activate(t, 5, gtp.SignallingQoS(), "")
}

// TestClientDuplicateTransactionsRejected covers the guard clauses for
// overlapping transactions.
func TestClientDuplicateTransactionsRejected(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	c := f.ms.Client
	if err := c.Attach(f.env, func(bool) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(f.env, func(bool) {}); err == nil {
		t.Fatal("overlapping attach accepted")
	}
	f.env.Run()
	if err := c.Attach(f.env, func(bool) {}); err == nil {
		t.Fatal("attach while attached accepted")
	}
	if err := c.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "", func(netip.Addr, bool) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "", func(netip.Addr, bool) {}); err == nil {
		t.Fatal("overlapping activation accepted")
	}
	f.env.Run()
	if err := c.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "", func(netip.Addr, bool) {}); err == nil {
		t.Fatal("activation of an active NSAPI accepted")
	}
}

// TestGGSNAddressOf covers the tunnel-address accessor.
func TestGGSNAddressOf(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})
	f.attach(t)
	addr := f.activate(t, 5, gtp.SignallingQoS(), "")
	tid := gtp.MakeTID(testIMSI, 5)
	got, ok := f.ggsn.AddressOf(tid)
	if !ok || got != addr {
		t.Fatalf("AddressOf(%v) = %v,%v want %v", tid, got, ok, addr)
	}
	if _, ok := f.ggsn.AddressOf(gtp.MakeTID(testIMSI, 9)); ok {
		t.Fatal("AddressOf for an unknown TID reported ok")
	}
}

// TestGGSNPoolExhaustionRejectsActivation drains the GGSN's dynamic
// address pool (254 addresses, one per subscriber — the TID's 4-bit NSAPI
// field means scale comes from subscribers, as in a real GGSN) and
// verifies the 255th activation is rejected end to end, then that one
// deactivation frees an address for the next subscriber.
func TestGGSNPoolExhaustionRejectsActivation(t *testing.T) {
	f := newCoreFixture(t, GGSNConfig{}, SGSNConfig{})

	newSub := func(i int) *MS {
		imsi := gsmid.IMSI(fmt.Sprintf("4669201%08d", i))
		if err := f.hlr.Provision(hlr.Subscriber{
			IMSI: imsi, MSISDN: gsmid.MSISDN(fmt.Sprintf("88691%07d", i)),
		}); err != nil {
			t.Fatal(err)
		}
		ms := NewMS(MSConfig{ID: sim.NodeID(fmt.Sprintf("MS-P%d", i)), IMSI: imsi, BTS: "BTS-1"})
		f.env.AddNode(ms)
		f.env.Connect(ms.ID(), "BTS-1", "Um", time.Millisecond)
		return ms
	}
	attachAndActivate := func(ms *MS) bool {
		attached := false
		if err := ms.Client.Attach(f.env, func(ok bool) { attached = ok }); err != nil {
			t.Fatal(err)
		}
		f.env.Run()
		if !attached {
			t.Fatalf("%s attach failed", ms.Client.IMSI)
		}
		var done, ok bool
		if err := ms.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
			func(_ netip.Addr, k bool) { done, ok = true, k }); err != nil {
			t.Fatal(err)
		}
		f.env.Run()
		if !done {
			t.Fatalf("%s activation never resolved", ms.Client.IMSI)
		}
		return ok
	}

	subs := make([]*MS, 0, 254)
	for i := 0; i < 254; i++ {
		ms := newSub(i)
		subs = append(subs, ms)
		if !attachAndActivate(ms) {
			t.Fatalf("subscriber %d rejected before exhaustion", i)
		}
	}
	if f.ggsn.ActiveContexts() != 254 {
		t.Fatalf("GGSN contexts = %d", f.ggsn.ActiveContexts())
	}

	// The 255th dynamic allocation must fail cleanly.
	extra := newSub(254)
	if attachAndActivate(extra) {
		t.Fatal("activation past pool exhaustion succeeded")
	}

	// One deactivation frees an address; the extra subscriber retries OK.
	deactivated := false
	if err := subs[0].Client.DeactivatePDP(f.env, 5, func() { deactivated = true }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !deactivated {
		t.Fatal("deactivation never confirmed")
	}
	var ok bool
	if err := extra.Client.ActivatePDP(f.env, 5, gtp.SignallingQoS(), "",
		func(_ netip.Addr, k bool) { ok = k }); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if !ok {
		t.Fatal("retry after a freed address failed")
	}
}
