package gprs

import (
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
)

// MSConfig parameterises a GPRS-capable mobile station.
type MSConfig struct {
	ID   sim.NodeID
	IMSI gsmid.IMSI
	// BTS is the serving cell; LLC frames cross Um to it and the BSC's
	// PCU relays them onto Gb (the Fig 1 data path (1)(2)(3)(4)).
	BTS sim.NodeID
}

// MS is a GPRS mobile station: the radio-attached host of a Client. Unlike
// the paper's vGPRS handsets it speaks packet data natively, but — also per
// the paper — it has no H.323 stack; its voice service still comes from the
// VMSC.
type MS struct {
	cfg MSConfig
	// Client is the GPRS protocol client; callers drive Attach /
	// ActivatePDP / SendIP through it.
	Client *Client
}

var _ sim.Node = (*MS)(nil)

// NewMS returns a detached GPRS MS.
func NewMS(cfg MSConfig) *MS {
	ms := &MS{cfg: cfg}
	ms.Client = NewClient(cfg.IMSI, func(env *sim.Env, tlli gsmid.TLLI, pdu []byte) {
		env.Send(cfg.ID, cfg.BTS, gsm.LLCFrame{
			Leg: gsm.LegUm, MS: cfg.ID, TLLI: tlli, Payload: pdu,
		})
	})
	return ms
}

// ID implements sim.Node.
func (m *MS) ID() sim.NodeID { return m.cfg.ID }

// Receive implements sim.Node: downlink LLC frames feed the client.
func (m *MS) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	frame, ok := msg.(gsm.LLCFrame)
	if !ok || !frame.Downlink {
		return
	}
	_ = m.Client.HandleDownlink(env, frame.Payload)
}
