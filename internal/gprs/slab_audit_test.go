package gprs

import (
	"testing"

	"vgprs/internal/gb"
	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
)

// gbSink is a bare Gb peer: it absorbs DLUnitdata replies and remembers the
// last accept's P-TMSI.
type gbSink struct {
	id    sim.NodeID
	ptmsi gsmid.PTMSI
}

func (s *gbSink) ID() sim.NodeID { return s.id }

func (s *gbSink) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	dl, ok := msg.(gb.DLUnitdata)
	if !ok {
		return
	}
	pdu, err := ParsePDU(dl.PDU)
	if err != nil {
		return
	}
	if acc, ok := pdu.SM.(AttachAccept); ok {
		s.ptmsi = acc.PTMSI
	}
}

// TestReattachForeignTLLIDoesNotLeakIndex pins the foreign-TLLI index leak:
// a subscriber that re-attaches on a new foreign TLLI (fresh arrival from
// another routing area) must not leave its previous alias in the TLLI
// index. Before the fix every such re-attach grew the index by one entry
// that nothing would ever delete; the slab audit now counts exactly one
// alias per roaming subscriber.
func TestReattachForeignTLLIDoesNotLeakIndex(t *testing.T) {
	env := sim.NewEnv(1)
	sgsn := NewSGSN(SGSNConfig{ID: "SGSN-1", GGSN: "GGSN-1"}) // no HLR: attach accepts locally
	peer := &gbSink{id: "PEER"}
	env.AddNode(sgsn)
	env.AddNode(peer)
	env.Connect("PEER", "SGSN-1", "Gb", 0)

	attachOn := func(tlli uint32) {
		pdu, err := WrapSM(AttachRequest{IMSI: testIMSI})
		if err != nil {
			t.Fatal(err)
		}
		env.Send("PEER", "SGSN-1", gb.ULUnitdata{
			TLLI: gsmid.TLLI(tlli), MS: "PEER", PDU: pdu,
		})
		env.Run()
	}

	for round, tlli := range []uint32{1, 2, 3} {
		attachOn(tlli)
		if got := sgsn.Attached(); got != 1 {
			t.Fatalf("round %d: attached = %d, want 1", round, got)
		}
		if got := sgsn.SlabImbalance(); got != 0 {
			t.Fatalf("round %d: slab imbalance = %d after re-attach on TLLI %d (stale alias leaked)",
				round, got, tlli)
		}
	}

	// The audit must actually see planted garbage, or the zeros above
	// prove nothing: inject a dangling alias and expect a violation.
	sgsn.mu.Lock()
	h := sgsn.byTLLI.Get(3)
	sgsn.byTLLI.Put(99, h)
	sgsn.mu.Unlock()
	if got := sgsn.SlabImbalance(); got == 0 {
		t.Fatal("audit missed a planted stale TLLI alias")
	}
	sgsn.mu.Lock()
	sgsn.byTLLI.Delete(99)
	sgsn.mu.Unlock()

	// Detach must return the record and both TLLI entries.
	pdu, err := WrapSM(DetachRequest{})
	if err != nil {
		t.Fatal(err)
	}
	env.Send("PEER", "SGSN-1", gb.ULUnitdata{
		TLLI: gsmid.LocalTLLI(peer.ptmsi), MS: "PEER", PDU: pdu,
	})
	env.Run()
	if got := sgsn.Attached(); got != 0 {
		t.Fatalf("attached after detach = %d, want 0", got)
	}
	if got := sgsn.SlabImbalance(); got != 0 {
		t.Fatalf("slab imbalance after detach = %d, want 0", got)
	}
}
