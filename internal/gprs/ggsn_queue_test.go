package gprs

import (
	"testing"

	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

// silentNode absorbs everything — an HLR that never answers, so a pending
// network-initiated activation stays pending until its retries exhaust.
type silentNode struct{ id sim.NodeID }

func (s *silentNode) ID() sim.NodeID { return s.id }
func (s *silentNode) Receive(*sim.Env, sim.NodeID, string, sim.Message) {
}

// TestDownlinkQueueBounded pins the activation-queue cap: a downlink burst
// toward a provisioned static address with no active context must park at
// most maxQueuedPerAddr packets, count the overflow in QueueDrops, and
// release the whole queue (backing array included — the map entry is
// deleted) when the Gc lookup fails.
func TestDownlinkQueueBounded(t *testing.T) {
	env := sim.NewEnv(1)
	ggsn := NewGGSN(GGSNConfig{
		ID: "GGSN-1", HLR: "HLR", NetworkInitiatedActivation: true,
	})
	hlr := &silentNode{id: "HLR"}
	gi := &silentNode{id: "GI"}
	env.AddNode(ggsn)
	env.AddNode(hlr)
	env.AddNode(gi)
	env.Connect("GI", "GGSN-1", "Gi", 0)
	env.Connect("GGSN-1", "HLR", "Gc", 0)

	dst := ipnet.MustAddr("10.9.9.9")
	ggsn.ProvisionStatic(dst, testIMSI)

	const burst = maxQueuedPerAddr + 8
	for i := 0; i < burst; i++ {
		env.Send("GI", "GGSN-1", ipnet.Packet{
			Src: ipnet.MustAddr("192.168.1.10"), Dst: dst, Payload: []byte{byte(i)},
		})
	}
	// Drain only the burst deliveries, not the dialogue retry timers: the
	// queue should sit exactly at the cap while the HLR lookup is pending.
	for env.Step() && ggsn.OutstandingDialogues() == 0 {
	}
	for i := 0; i < burst; i++ {
		env.Step()
	}
	if got := ggsn.QueuedPackets(); got != maxQueuedPerAddr {
		t.Fatalf("queued during lookup = %d, want cap %d", got, maxQueuedPerAddr)
	}
	if got := ggsn.QueueDrops(); got != burst-maxQueuedPerAddr {
		t.Fatalf("queue drops = %d, want %d", got, burst-maxQueuedPerAddr)
	}

	// Let the dialogue retries exhaust; the failed activation must drop
	// and forget the queue entirely.
	env.Run()
	if got := ggsn.QueuedPackets(); got != 0 {
		t.Fatalf("queued after Gc failure = %d, want 0", got)
	}
	_, _, dropped := ggsn.Stats()
	if dropped != burst {
		t.Fatalf("dropped = %d, want the whole burst %d", dropped, burst)
	}
	if got := ggsn.SlabImbalance(); got != 0 {
		t.Fatalf("slab imbalance = %d, want 0", got)
	}
}
