package tr23923

import (
	"testing"
	"time"

	"vgprs/internal/h323"
	"vgprs/internal/netsim"
	"vgprs/internal/trace"
)

func TestRegistrationDeactivatesContext(t *testing.T) {
	n := BuildNet(Options{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// The defining TR 23.923 behaviour: registered in the GK table but no
	// PDP context held while idle.
	if n.GK.Registered() != 2 { // MS + terminal
		t.Fatalf("GK registrations = %d", n.GK.Registered())
	}
	if n.SGSN.ActiveContexts() != 0 {
		t.Fatalf("idle contexts = %d, want 0", n.SGSN.ActiveContexts())
	}
	// The gatekeeper memorized the IMSI — the §6 confidentiality problem.
	if n.GK.KnownIMSIs() != 1 {
		t.Fatalf("GK known IMSIs = %d, want 1", n.GK.KnownIMSIs())
	}
	if n.Rec.CountMessages("MAP_SEND_IMSI") == 0 {
		t.Fatal("no MAP_SEND_IMSI in trace; the GK should have queried the HLR")
	}
}

func TestKeepActiveAblation(t *testing.T) {
	n := BuildNet(Options{Seed: 1, KeepPDPActive: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("contexts = %d, want 1 (kept active)", n.SGSN.ActiveContexts())
	}
}

func TestMOCallReactivatesContext(t *testing.T) {
	n := BuildNet(Options{Seed: 1, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]

	connected := false
	ref, err := ms.Call(n.Env, netsim.TerminalAlias(0))
	_ = ref
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if st, _ := ms.Term.CallState(ref); st != h323.CallConnected {
		t.Fatalf("call state = %v", st)
	}
	connected = true
	_ = connected
	// During the call exactly one context is active.
	if n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("contexts during call = %d", n.SGSN.ActiveContexts())
	}
	// The per-call activation appears in the trace BEFORE the ARQ hits
	// the gatekeeper (the §6 setup-latency cost).
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Activate PDP Context Request"},
		{Msg: "GTP Create PDP Context Request"},
		{Msg: "RAS ARQ", To: "GK"},
		{Msg: "Q.931 Connect"},
	}); err != nil {
		t.Fatal(err)
	}
	// Media flows (PS radio path).
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.Terminals[0].Media.Received() == 0 || ms.Term.Media.Received() == 0 {
		t.Fatalf("media term=%d ms=%d", n.Terminals[0].Media.Received(), ms.Term.Media.Received())
	}

	if err := ms.Hangup(n.Env, ref); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	// The context is deactivated again after the call.
	if n.SGSN.ActiveContexts() != 0 {
		t.Fatalf("contexts after call = %d", n.SGSN.ActiveContexts())
	}
}

func TestMTCallNeedsNetworkInitiatedActivation(t *testing.T) {
	n := BuildNet(Options{Seed: 1, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	_ = n.MSs[0]
	term := n.Terminals[0]

	ref, err := term.Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if st, _ := term.CallState(ref); st != h323.CallConnected {
		t.Fatalf("terminal call state = %v", st)
	}
	// The MT path crossed the network-initiated activation machinery.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Q.931 Setup", From: "TERM-1"},
		{Msg: "MAP_SEND_ROUTING_INFO_FOR_GPRS", From: "GGSN-1", To: "HLR"},
		{Msg: "GTP PDU Notification Request", From: "GGSN-1", To: "SGSN-1"},
		{Msg: "Request PDP Context Activation", From: "SGSN-1"},
		{Msg: "Activate PDP Context Request"},
		{Msg: "Q.931 Connect"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPSJitterDegradesMedia(t *testing.T) {
	run := func(jitter time.Duration) time.Duration {
		n := BuildNet(Options{Seed: 7, Talk: true, PSJitter: jitter, KeepPDPActive: true})
		if err := n.RegisterAll(); err != nil {
			t.Fatal(err)
		}
		ref, err := n.MSs[0].Call(n.Env, netsim.TerminalAlias(0))
		if err != nil {
			t.Fatal(err)
		}
		_ = ref
		n.Env.RunUntil(n.Env.Now() + 10*time.Second)
		if n.Terminals[0].Media.Received() == 0 {
			t.Fatal("no media")
		}
		return n.Terminals[0].Media.Jitter()
	}
	smooth := run(0)
	rough := run(30 * time.Millisecond)
	if rough <= smooth {
		t.Fatalf("PS jitter %v <= smooth %v; contention model broken", rough, smooth)
	}
}

func TestTransportDropsWhenContextDown(t *testing.T) {
	n := BuildNet(Options{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Idle: context down. A stray send through the terminal's transport
	// (simulated by a direct RAS keepalive) is counted as dropped.
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if n.SGSN.ActiveContexts() != 0 {
		t.Fatalf("contexts = %d", n.SGSN.ActiveContexts())
	}
	before := n.MSs[0].Dropped()
	n.MSs[0].Term.Register(n.Env) // RRQ with no context and no activation in flight
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.MSs[0].Dropped() != before+1 {
		t.Fatalf("dropped = %d, want %d", n.MSs[0].Dropped(), before+1)
	}
}
