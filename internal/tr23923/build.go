package tr23923

import (
	"fmt"
	"net/netip"
	"time"

	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/h323"
	"vgprs/internal/hlr"
	"vgprs/internal/ipnet"
	"vgprs/internal/netsim"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

// Options parameterises BuildNet.
type Options struct {
	Seed         int64
	NumMS        int
	NumTerminals int
	Latencies    *netsim.Latencies
	// PSJitter is the extra uniform delay on the packet-switched air
	// interface (shared-PDCH contention). Zero disables it; the C3
	// experiment sweeps it.
	PSJitter time.Duration
	// KeepPDPActive is the ablation that holds contexts while idle.
	KeepPDPActive bool
	Talk          bool
	AutoAnswer    time.Duration
	NoTrace       bool
}

// Net is a TR 23.923 network: H.323-terminal MSs over a packet-switched
// radio path, a MAP-capable gatekeeper, and the same GPRS core as the vGPRS
// build.
type Net struct {
	Env *sim.Env
	Rec *trace.Recorder
	Dir *h323.Directory

	HLR       *hlr.HLR
	SGSN      *gprs.SGSN
	GGSN      *gprs.GGSN
	GK        *h323.Gatekeeper
	Router    *ipnet.Router
	MSs       []*MS
	Terminals []*h323.Terminal

	Subscribers []netsim.Subscriber
}

// staticAddrN is the n-th MS's provisioned static PDP address.
func staticAddrN(n int) string { return fmt.Sprintf("10.3.1.%d", n+1) }

// BuildNet wires the TR 23.923 comparison network.
func BuildNet(opts Options) *Net {
	if opts.NumMS == 0 {
		opts.NumMS = 1
	}
	if opts.NumTerminals == 0 {
		opts.NumTerminals = 1
	}
	if opts.AutoAnswer == 0 {
		opts.AutoAnswer = 200 * time.Millisecond
	}
	lat := netsim.DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	env := sim.NewEnv(opts.Seed)
	var rec *trace.Recorder
	if !opts.NoTrace {
		rec = trace.NewRecorder()
		env.SetTracer(rec)
	}
	dir := h323.NewDirectory()
	n := &Net{Env: env, Rec: rec, Dir: dir}

	n.HLR = hlr.New(hlr.Config{ID: "HLR"})
	n.SGSN = gprs.NewSGSN(gprs.SGSNConfig{ID: "SGSN-1", GGSN: "GGSN-1", HLR: "HLR"})
	n.GGSN = gprs.NewGGSN(gprs.GGSNConfig{
		ID: "GGSN-1", PoolPrefix: "10.3.9.0", Gi: "GI", HLR: "HLR",
		NetworkInitiatedActivation: true,
	})
	n.Router = ipnet.NewRouter("GI")

	gkAddr := ipnet.MustAddr("192.168.3.1")
	// The TR 23.923 gatekeeper is NOT a standard H.323 element: it
	// resolves and memorizes IMSIs over GSM MAP (paper §6).
	n.GK = h323.NewGatekeeper(h323.GatekeeperConfig{
		ID: "GK", Addr: gkAddr, Router: "GI", Dir: dir,
		HLR: "HLR", RequireIMSI: true, MobilePrefixes: []string{"8869"},
	})
	n.Router.AddHost(gkAddr, "GK")
	n.Router.AddPrefix(netip.MustParsePrefix("10.3.1.0/24"), "GGSN-1")
	dir.Bind(gkAddr, "GK")

	bts := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-1", BSC: "BSC-1"})
	bsc := gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-1", MSC: "CS-SINK", SGSN: "SGSN-1", BTSs: []sim.NodeID{"BTS-1"},
	})
	// The CS side is unused in this architecture; a sink absorbs strays.
	sink := &csSink{id: "CS-SINK"}

	for _, node := range []sim.Node{n.HLR, n.SGSN, n.GGSN, n.Router, n.GK, bts, bsc, sink} {
		env.AddNode(node)
	}
	env.Connect("BTS-1", "BSC-1", "Abis", lat.Abis)
	env.Connect("BSC-1", "CS-SINK", "A", lat.A)
	env.Connect("BSC-1", "SGSN-1", "Gb", lat.Gb)
	env.Connect("SGSN-1", "GGSN-1", "Gn", lat.Gn)
	env.Connect("SGSN-1", "HLR", "Gr", lat.SS7)
	env.Connect("GGSN-1", "HLR", "Gc", lat.SS7)
	env.Connect("GK", "HLR", "MAP", lat.SS7) // the non-standard interface
	env.Connect("GGSN-1", "GI", "Gi", lat.Gi)
	env.Connect("GI", "GK", "IP", lat.LAN)

	for i := 0; i < opts.NumMS; i++ {
		sub := netsim.SubscriberN(i)
		n.Subscribers = append(n.Subscribers, sub)
		static := staticAddrN(i)
		if err := n.HLR.Provision(hlr.Subscriber{
			IMSI: sub.IMSI, MSISDN: sub.MSISDN, Ki: sub.Ki,
			Profile:          sigmap.SubscriberProfile{MSISDN: sub.MSISDN},
			StaticPDPAddress: static,
		}); err != nil {
			panic(err)
		}
		n.GGSN.ProvisionStatic(ipnet.MustAddr(static), sub.IMSI)

		msID := sim.NodeID(fmt.Sprintf("MS-%d", i+1))
		ms := NewMS(MSConfig{
			ID: msID, IMSI: sub.IMSI, MSISDN: sub.MSISDN,
			BTS: "BTS-1", Gatekeeper: gkAddr, StaticAddr: static, Dir: dir,
			KeepPDPActive: opts.KeepPDPActive,
			Talk:          opts.Talk, AutoAnswer: true, AnswerDelay: opts.AutoAnswer,
		})
		n.MSs = append(n.MSs, ms)
		env.AddNode(ms)
		// The packet-switched radio leg carries the contention jitter.
		ab, ba := env.Connect(msID, "BTS-1", "Um", lat.Um)
		ab.Jitter = opts.PSJitter
		ba.Jitter = opts.PSJitter
	}

	for i := 0; i < opts.NumTerminals; i++ {
		termID := sim.NodeID(fmt.Sprintf("TERM-%d", i+1))
		addr := ipnet.MustAddr(fmt.Sprintf("192.168.3.%d", 10+i))
		term := h323.NewTerminal(h323.TerminalConfig{
			ID: termID, Alias: netsim.TerminalAlias(i), Addr: addr,
			Router: "GI", Gatekeeper: gkAddr, Dir: dir,
			AutoAnswer: true, AnswerDelay: opts.AutoAnswer, Talk: opts.Talk,
		})
		n.Terminals = append(n.Terminals, term)
		n.Router.AddHost(addr, termID)
		dir.Bind(addr, termID)
		env.AddNode(term)
		env.Connect("GI", termID, "IP", lat.LAN)
	}
	return n
}

// RegisterAll registers every terminal and MS.
func (n *Net) RegisterAll() error {
	for _, term := range n.Terminals {
		term.Register(n.Env)
	}
	for _, ms := range n.MSs {
		if err := ms.Register(n.Env); err != nil {
			return err
		}
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	for i, ms := range n.MSs {
		if !ms.Registered() {
			return fmt.Errorf("tr23923: MS %d not registered", i)
		}
	}
	return nil
}

// csSink absorbs any circuit-switched message (there should be none in this
// architecture; a count would indicate a modelling bug).
type csSink struct {
	id  sim.NodeID
	got int
}

func (s *csSink) ID() sim.NodeID { return s.id }

func (s *csSink) Receive(*sim.Env, sim.NodeID, string, sim.Message) { s.got++ }
