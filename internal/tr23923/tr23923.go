// Package tr23923 implements the comparison baseline of the paper's §6: the
// 3G TR 23.923 approach to voice over GPRS. Its differences from vGPRS are
// exactly the ones the paper enumerates, each of which this package models
// so the experiment harness can measure them:
//
//   - The MS itself must be an H.323 terminal with a vocoder (here: an
//     h323.Terminal whose IP transport is a GPRS PDP context over the
//     packet-switched radio path).
//   - Voice crosses the radio interface packet-switched, so it sees the
//     shared-channel contention the paper says breaks real-time quality
//     (modelled as configurable jitter on the Um link — experiment C3).
//   - After gatekeeper registration the PDP context is DEACTIVATED; every
//     call re-activates it, and terminating calls need network-initiated
//     activation, which requires a static PDP address (GSM 03.60) —
//     experiments C1/C2.
//   - The gatekeeper must speak GSM MAP and memorize IMSIs (experiment C4).
package tr23923

import (
	"fmt"
	"net/netip"
	"time"

	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

// MSHooks observe the TR 23.923 mobile's events.
type MSHooks struct {
	OnRegistered func()
	OnConnected  func(ref uint16)
	OnReleased   func(ref uint16)
	OnIncoming   func(ref uint16, calling gsmid.MSISDN)
}

// MSConfig parameterises a TR 23.923 mobile station.
type MSConfig struct {
	ID     sim.NodeID
	IMSI   gsmid.IMSI
	MSISDN gsmid.MSISDN
	// BTS is the serving cell; all traffic is packet-switched over Um.
	BTS sim.NodeID
	// Gatekeeper is the GK's IP address.
	Gatekeeper netip.Addr
	// StaticAddr is the provisioned static PDP address — mandatory in
	// this architecture, since terminating calls need network-initiated
	// activation (the paper: "static PDP address is required (which may
	// not be practical for a large-scaled network)").
	StaticAddr string
	// Dir resolves addresses for tracing.
	Dir *h323.Directory
	// KeepPDPActive disables the per-call activate/deactivate cycle (an
	// ablation; TR 23.923 proper deactivates when idle).
	KeepPDPActive bool
	// Talk generates RTP media while connected.
	Talk        bool
	AutoAnswer  bool
	AnswerDelay time.Duration

	Hooks MSHooks
}

const nsapiVoIP uint8 = 5

// MS is a TR 23.923 mobile: an H.323 terminal riding a GPRS PDP context.
type MS struct {
	cfg    MSConfig
	Client *gprs.Client
	// Term is the embedded H.323 terminal; its media statistics are the
	// C3 experiment's TR-side measurements.
	Term *h323.Terminal

	registered bool
	dropped    uint64
	// pendingSend queues packets produced while the context is being
	// (re)activated.
	pendingSend []ipnet.Packet
	activating  bool
	// pendingDeactivate defers context teardown until in-flight
	// signalling (the DRQ and its DCF) has drained.
	pendingDeactivate bool
	// env caches the simulation environment for hook callbacks, which
	// always run on the simulation goroutine.
	env *sim.Env
}

var _ sim.Node = (*MS)(nil)

// NewMS returns a detached TR 23.923 mobile.
func NewMS(cfg MSConfig) *MS {
	m := &MS{cfg: cfg}
	m.Client = gprs.NewClient(cfg.IMSI, func(env *sim.Env, tlli gsmid.TLLI, pdu []byte) {
		env.Send(cfg.ID, cfg.BTS, gsm.LLCFrame{
			Leg: gsm.LegUm, MS: cfg.ID, TLLI: tlli, Payload: pdu,
		})
	})
	m.Client.OnPacket = func(env *sim.Env, nsapi uint8, pkt ipnet.Packet) {
		m.Term.HandlePacket(env, pkt)
	}
	m.Client.OnActivationRequest = func(env *sim.Env, address string) {
		// Network-initiated activation for a terminating call.
		m.ensureActive(env, func(bool) {})
	}
	m.Term = h323.NewTerminal(h323.TerminalConfig{
		ID:         cfg.ID,
		Alias:      cfg.MSISDN,
		Addr:       ipnet.MustAddr(cfg.StaticAddr),
		Gatekeeper: cfg.Gatekeeper,
		Dir:        cfg.Dir,
		AutoAnswer: cfg.AutoAnswer, AnswerDelay: cfg.AnswerDelay,
		Talk:      cfg.Talk,
		Transport: m.transport,
		Hooks: h323.TerminalHooks{
			OnRegistered: func() {
				m.registered = true
				// The defining TR 23.923 move: drop the context once
				// registered "due to the network resource consideration".
				if !m.cfg.KeepPDPActive {
					m.deactivateLater(m.env)
				}
				if cfg.Hooks.OnRegistered != nil {
					cfg.Hooks.OnRegistered()
				}
			},
			OnConnected: func(ref uint16) {
				if cfg.Hooks.OnConnected != nil {
					cfg.Hooks.OnConnected(ref)
				}
			},
			OnReleased: func(ref uint16) {
				if !m.cfg.KeepPDPActive {
					m.deactivateLater(m.env)
				}
				if cfg.Hooks.OnReleased != nil {
					cfg.Hooks.OnReleased(ref)
				}
			},
			OnIncoming: cfg.Hooks.OnIncoming,
		},
	})
	return m
}

// ID implements sim.Node.
func (m *MS) ID() sim.NodeID { return m.cfg.ID }

// Registered reports gatekeeper registration.
func (m *MS) Registered() bool { return m.registered }

// Dropped returns packets lost because no PDP context was active.
func (m *MS) Dropped() uint64 { return m.dropped }

// deactivateLater schedules the context teardown after a short linger, so
// in-flight signalling (the DRQ/DCF pair) and straggler media drain first —
// otherwise a late RTP packet reaching the GGSN with no context would
// immediately trigger a spurious network-initiated re-activation.
func (m *MS) deactivateLater(env *sim.Env) {
	m.pendingDeactivate = true
	env.After(time.Second, func() {
		if !m.pendingDeactivate || m.Term.ActiveCalls() > 0 {
			return
		}
		m.pendingDeactivate = false
		if _, active := m.Client.Context(nsapiVoIP); active {
			_ = m.Client.DeactivatePDP(env, nsapiVoIP, func() {})
		}
	})
}

// transport pushes the terminal's IP packets through the PDP context.
func (m *MS) transport(env *sim.Env, pkt ipnet.Packet) {
	m.env = env
	if _, active := m.Client.Context(nsapiVoIP); active {
		_ = m.Client.SendIP(env, nsapiVoIP, pkt)
		return
	}
	if m.activating {
		m.pendingSend = append(m.pendingSend, pkt)
		return
	}
	m.dropped++
}

// Register attaches, activates the context, registers with the gatekeeper,
// and (per TR 23.923) deactivates again.
func (m *MS) Register(env *sim.Env) error {
	return m.Client.Attach(env, func(ok bool) {
		if !ok {
			return
		}
		m.ensureActive(env, func(ok bool) {
			if !ok {
				return
			}
			m.Term.Register(env)
		})
	})
}

// Call originates a call: the PDP context must be re-activated first — the
// setup-time cost the C1 experiment measures.
func (m *MS) Call(env *sim.Env, called gsmid.MSISDN) (uint16, error) {
	if !m.registered {
		return 0, fmt.Errorf("tr23923: MS %s not registered", m.cfg.ID)
	}
	// Start re-activation first: ensureActive marks the client as
	// activating synchronously, so the ARQ the terminal pushes next is
	// queued rather than dropped, and flows once the context is up.
	m.ensureActive(env, func(bool) {})
	return m.Term.Call(env, called)
}

// Hangup clears a call.
func (m *MS) Hangup(env *sim.Env, ref uint16) error {
	return m.Term.Hangup(env, ref)
}

// ensureActive re-activates the PDP context if needed.
func (m *MS) ensureActive(env *sim.Env, done func(ok bool)) {
	if _, active := m.Client.Context(nsapiVoIP); active {
		done(true)
		return
	}
	if m.activating {
		done(true) // piggyback on the in-flight activation
		return
	}
	m.activating = true
	err := m.Client.ActivatePDP(env, nsapiVoIP, gtp.VoiceQoS(), m.cfg.StaticAddr,
		func(_ netip.Addr, ok bool) {
			m.activating = false
			if ok {
				for _, pkt := range m.pendingSend {
					_ = m.Client.SendIP(env, nsapiVoIP, pkt)
				}
				m.pendingSend = nil
			} else {
				m.pendingSend = nil
			}
			done(ok)
		})
	if err != nil {
		m.activating = false
		done(false)
	}
}

// Receive implements sim.Node: downlink LLC frames feed the client.
func (m *MS) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	m.env = env
	frame, ok := msg.(gsm.LLCFrame)
	if !ok || !frame.Downlink {
		return
	}
	_ = m.Client.HandleDownlink(env, frame.Payload)
}
