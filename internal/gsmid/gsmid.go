// Package gsmid defines the GSM/GPRS subscriber and location identities used
// throughout the vGPRS reproduction: IMSI, TMSI, P-TMSI, TLLI, MSISDN, and
// the location/cell identifiers (LAI, RAI, CGI). Identities validate at
// construction and carry their GSM 04.08 BCD wire form.
package gsmid

import (
	"errors"
	"fmt"

	"vgprs/internal/wire"
)

// Errors returned by identity constructors.
var (
	ErrBadIMSI   = errors.New("gsmid: invalid IMSI")
	ErrBadMSISDN = errors.New("gsmid: invalid MSISDN")
)

// IMSI is the International Mobile Subscriber Identity: 6 to 15 decimal
// digits (MCC + MNC + MSIN). It is confidential to the home operator — the
// paper's Section 6 argues that a correct architecture never exposes it to
// the H.323 gatekeeper; test C4 audits exactly which elements observe values
// of this type.
type IMSI string

// ParseIMSI validates and returns an IMSI.
func ParseIMSI(s string) (IMSI, error) {
	if len(s) < 6 || len(s) > 15 {
		return "", fmt.Errorf("%w: length %d", ErrBadIMSI, len(s))
	}
	if !allDigits(s) {
		return "", fmt.Errorf("%w: non-digit in %q", ErrBadIMSI, s)
	}
	return IMSI(s), nil
}

// MustIMSI is ParseIMSI that panics on error; for test fixtures and
// compile-time-constant topologies.
func MustIMSI(s string) IMSI {
	im, err := ParseIMSI(s)
	if err != nil {
		panic(err)
	}
	return im
}

// MCC returns the three-digit mobile country code.
func (i IMSI) MCC() string { return string(i[:3]) }

// MNC returns the two-digit mobile network code. (Three-digit MNCs exist in
// some PLMNs; this reproduction uses two-digit codes throughout.)
func (i IMSI) MNC() string { return string(i[3:5]) }

// String returns the digit string.
func (i IMSI) String() string { return string(i) }

// MSISDN is the subscriber's E.164 directory number (the number a caller
// dials). In vGPRS it doubles as the H.323 alias address registered with the
// gatekeeper.
type MSISDN string

// ParseMSISDN validates and returns an MSISDN.
func ParseMSISDN(s string) (MSISDN, error) {
	if len(s) < 3 || len(s) > 15 {
		return "", fmt.Errorf("%w: length %d", ErrBadMSISDN, len(s))
	}
	if !allDigits(s) {
		return "", fmt.Errorf("%w: non-digit in %q", ErrBadMSISDN, s)
	}
	return MSISDN(s), nil
}

// MustMSISDN is ParseMSISDN that panics on error.
func MustMSISDN(s string) MSISDN {
	m, err := ParseMSISDN(s)
	if err != nil {
		panic(err)
	}
	return m
}

// CountryCode returns the leading country-code digits. This reproduction
// uses fixed-width 3-digit country codes (e.g. 886 Taiwan, 852 Hong Kong,
// 044 standing in for the UK) so routing logic stays simple.
func (m MSISDN) CountryCode() string {
	if len(m) < 3 {
		return string(m)
	}
	return string(m[:3])
}

// String returns the digit string.
func (m MSISDN) String() string { return string(m) }

// TMSI is the Temporary Mobile Subscriber Identity allocated by a VLR to
// avoid sending IMSI over the air.
type TMSI uint32

// String formats the TMSI as 8 hex digits, the conventional display form.
func (t TMSI) String() string { return fmt.Sprintf("TMSI-%08X", uint32(t)) }

// PTMSI is the packet-domain TMSI allocated by an SGSN.
type PTMSI uint32

// String formats the P-TMSI as 8 hex digits.
func (p PTMSI) String() string { return fmt.Sprintf("PTMSI-%08X", uint32(p)) }

// TLLI is the Temporary Logical Link Identity used on the Gb interface to
// address an MS (or, in vGPRS, a VMSC-hosted virtual MS). A local TLLI is
// derived from the P-TMSI by setting the two top bits (GSM 04.64 §7.2).
type TLLI uint32

// LocalTLLI derives a local TLLI from a P-TMSI.
func LocalTLLI(p PTMSI) TLLI { return TLLI(uint32(p) | 0xC0000000) }

// String formats the TLLI as 8 hex digits.
func (t TLLI) String() string { return fmt.Sprintf("TLLI-%08X", uint32(t)) }

// LAI is a Location Area Identity: PLMN (MCC+MNC) plus a location area code.
// GSM MSs trigger a location update when they observe a LAI change.
type LAI struct {
	MCC string
	MNC string
	LAC uint16
}

// String formats the LAI as MCC-MNC-LAC.
func (l LAI) String() string { return fmt.Sprintf("%s-%s-%04X", l.MCC, l.MNC, l.LAC) }

// RAI is a GPRS Routing Area Identity: a LAI plus routing area code. GPRS
// MSs (and the VMSC's virtual MSs) perform routing-area updates on RAI
// change.
type RAI struct {
	LAI LAI
	RAC uint8
}

// String formats the RAI.
func (r RAI) String() string { return fmt.Sprintf("%s-%02X", r.LAI, r.RAC) }

// CGI is a Cell Global Identity: a LAI plus cell identity. It names the cell
// a call originates in, which the VMSC records in the MM context.
type CGI struct {
	LAI LAI
	CI  uint16
}

// String formats the CGI.
func (c CGI) String() string { return fmt.Sprintf("%s-%04X", c.LAI, c.CI) }

// MobileIdentityKind discriminates the identity carried in a GSM 04.08
// Mobile Identity information element.
type MobileIdentityKind uint8

// Mobile identity kinds (GSM 04.08 §10.5.1.4 type-of-identity values are
// remapped to start at one per house style).
const (
	IdentityIMSI MobileIdentityKind = iota + 1
	IdentityTMSI
	IdentityPTMSI
)

// String names the identity kind.
func (k MobileIdentityKind) String() string {
	switch k {
	case IdentityIMSI:
		return "IMSI"
	case IdentityTMSI:
		return "TMSI"
	case IdentityPTMSI:
		return "P-TMSI"
	default:
		return fmt.Sprintf("MobileIdentityKind(%d)", uint8(k))
	}
}

// MobileIdentity is the union type carried in location-update and attach
// requests: an MS identifies itself by IMSI on first contact and by TMSI
// afterwards.
type MobileIdentity struct {
	Kind  MobileIdentityKind
	IMSI  IMSI  // set when Kind == IdentityIMSI
	TMSI  TMSI  // set when Kind == IdentityTMSI
	PTMSI PTMSI // set when Kind == IdentityPTMSI
}

// ByIMSI returns a MobileIdentity holding an IMSI.
func ByIMSI(i IMSI) MobileIdentity { return MobileIdentity{Kind: IdentityIMSI, IMSI: i} }

// ByTMSI returns a MobileIdentity holding a TMSI.
func ByTMSI(t TMSI) MobileIdentity { return MobileIdentity{Kind: IdentityTMSI, TMSI: t} }

// ByPTMSI returns a MobileIdentity holding a P-TMSI.
func ByPTMSI(p PTMSI) MobileIdentity { return MobileIdentity{Kind: IdentityPTMSI, PTMSI: p} }

// String formats the contained identity.
func (m MobileIdentity) String() string {
	switch m.Kind {
	case IdentityIMSI:
		return "IMSI-" + string(m.IMSI)
	case IdentityTMSI:
		return m.TMSI.String()
	case IdentityPTMSI:
		return m.PTMSI.String()
	default:
		return "MobileIdentity(unset)"
	}
}

// Marshal appends the identity's wire form to w: a kind byte, then the
// BCD-coded IMSI or the 32-bit temporary identity.
func (m MobileIdentity) Marshal(w *wire.Writer) {
	w.U8(uint8(m.Kind))
	switch m.Kind {
	case IdentityIMSI:
		w.BCD(string(m.IMSI))
	case IdentityTMSI:
		w.U32(uint32(m.TMSI))
	case IdentityPTMSI:
		w.U32(uint32(m.PTMSI))
	}
}

// UnmarshalMobileIdentity reads a MobileIdentity from r.
func UnmarshalMobileIdentity(r *wire.Reader) MobileIdentity {
	kind := MobileIdentityKind(r.U8())
	m := MobileIdentity{Kind: kind}
	switch kind {
	case IdentityIMSI:
		m.IMSI = IMSI(r.BCD())
	case IdentityTMSI:
		m.TMSI = TMSI(r.U32())
	case IdentityPTMSI:
		m.PTMSI = PTMSI(r.U32())
	}
	return m
}

// MarshalLAI appends a LAI's wire form: BCD MCC+MNC then the LAC.
func MarshalLAI(w *wire.Writer, l LAI) {
	w.BCD2(l.MCC, l.MNC)
	w.U16(l.LAC)
}

// UnmarshalLAI reads a LAI written by MarshalLAI. It assumes a 3-digit MCC
// and 2-digit MNC, this repository's convention.
func UnmarshalLAI(r *wire.Reader) LAI {
	plmn := r.BCD()
	lac := r.U16()
	l := LAI{LAC: lac}
	if len(plmn) >= 5 {
		l.MCC, l.MNC = plmn[:3], plmn[3:5]
	}
	return l
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
