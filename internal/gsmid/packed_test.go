package gsmid

import "testing"

func TestPackedDigitsRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"1",
		"46692",
		"4669210000000001", // 16 digits: invalid, must pack to zero
		"466921000000001",  // 15 digits, max length
		"886912345678",
		"000000",
		"999999999999999",
	}
	for _, s := range cases {
		p := PackDigits(s)
		if len(s) > 15 {
			if !p.IsZero() {
				t.Errorf("PackDigits(%q) should be zero for >15 digits", s)
			}
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("round-trip %q -> %q", s, got)
		}
		if p.Len() != len(s) {
			t.Errorf("Len(%q) = %d, want %d", s, p.Len(), len(s))
		}
		if p.IsZero() != (s == "") {
			t.Errorf("IsZero(%q) = %v", s, p.IsZero())
		}
	}
}

func TestPackedDigitsRejectsNonDigits(t *testing.T) {
	if !PackDigits("12a45").IsZero() {
		t.Fatal("non-digit input must pack to zero")
	}
}

func TestPackedDigitsDistinct(t *testing.T) {
	// Leading zeros and lengths must stay distinguishable.
	a := PackDigits("0001")
	b := PackDigits("001")
	c := PackDigits("1")
	if a == b || b == c || a == c {
		t.Fatalf("packed forms collide: %x %x %x", a, b, c)
	}
}

func TestPackIMSIAndMSISDN(t *testing.T) {
	im := MustIMSI("466921000000001")
	if im.Pack().IMSI() != im {
		t.Fatal("IMSI pack round-trip failed")
	}
	ms := MustMSISDN("886912345678")
	if ms.Pack().MSISDN() != ms {
		t.Fatal("MSISDN pack round-trip failed")
	}
}
