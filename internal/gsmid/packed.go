package gsmid

import "vgprs/internal/slab"

// PackedDigits is a BCD-packed digit string — up to 15 decimal digits in 8
// bytes, the same density as the GSM 04.08 wire form. Nibble 0 (low nibble
// of byte 0) holds the length; digit i lives in nibble i+1. It exists so
// slab-resident subscriber records can hold an IMSI or MSISDN by value
// with no string header and no heap pointer: a million packed identities
// are 8 MB of flat array, invisible to the GC.
//
// The zero value is the empty digit string.
type PackedDigits [8]byte

// PackDigits packs up to 15 decimal digits. Longer strings or non-digit
// bytes return the zero value — identities are validated at parse time, so
// an invalid input here is a programming error surfaced as "empty".
func PackDigits(s string) PackedDigits {
	var p PackedDigits
	if len(s) > 15 || !allDigits(s) {
		return p
	}
	p[0] = byte(len(s))
	for i := 0; i < len(s); i++ {
		nib := i + 1
		d := s[i] - '0'
		p[nib/2] |= d << (4 * uint(nib%2))
	}
	return p
}

// Pack returns the IMSI's packed form.
func (i IMSI) Pack() PackedDigits { return PackDigits(string(i)) }

// Pack returns the MSISDN's packed form.
func (m MSISDN) Pack() PackedDigits { return PackDigits(string(m)) }

// Hash returns a deterministic 64-bit mix of the packed digits, suitable
// for slab.Index tables and shard routing.
func (p PackedDigits) Hash() uint64 { return slab.HashBytes8(p) }

// IsZero reports whether p is the empty digit string.
func (p PackedDigits) IsZero() bool { return p == PackedDigits{} }

// Len returns the digit count.
func (p PackedDigits) Len() int { return int(p[0] & 0x0F) }

// String unpacks the digits, allocating a fresh string.
func (p PackedDigits) String() string {
	n := p.Len()
	if n == 0 {
		return ""
	}
	var buf [15]byte
	for i := 0; i < n; i++ {
		nib := i + 1
		buf[i] = '0' + (p[nib/2]>>(4*uint(nib%2)))&0x0F
	}
	return string(buf[:n])
}

// IMSI unpacks the digits as an IMSI.
func (p PackedDigits) IMSI() IMSI { return IMSI(p.String()) }

// MSISDN unpacks the digits as an MSISDN.
func (p PackedDigits) MSISDN() MSISDN { return MSISDN(p.String()) }
