package gsmid

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"vgprs/internal/wire"
)

func TestParseIMSI(t *testing.T) {
	im, err := ParseIMSI("466923123456789")
	if err != nil {
		t.Fatal(err)
	}
	if im.MCC() != "466" || im.MNC() != "92" {
		t.Fatalf("MCC/MNC = %s/%s", im.MCC(), im.MNC())
	}
	if im.String() != "466923123456789" {
		t.Fatalf("String = %q", im)
	}
}

func TestParseIMSIErrors(t *testing.T) {
	cases := []string{"12345", strings.Repeat("1", 16), "46692abc"}
	for _, c := range cases {
		if _, err := ParseIMSI(c); !errors.Is(err, ErrBadIMSI) {
			t.Errorf("ParseIMSI(%q) err = %v, want ErrBadIMSI", c, err)
		}
	}
}

func TestParseMSISDN(t *testing.T) {
	m, err := ParseMSISDN("886912345678")
	if err != nil {
		t.Fatal(err)
	}
	if m.CountryCode() != "886" {
		t.Fatalf("CountryCode = %q", m.CountryCode())
	}
}

func TestParseMSISDNErrors(t *testing.T) {
	cases := []string{"12", strings.Repeat("9", 16), "+886123"}
	for _, c := range cases {
		if _, err := ParseMSISDN(c); !errors.Is(err, ErrBadMSISDN) {
			t.Errorf("ParseMSISDN(%q) err = %v, want ErrBadMSISDN", c, err)
		}
	}
}

func TestMustIMSIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustIMSI("bad")
}

func TestMustMSISDNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustMSISDN("x")
}

func TestLocalTLLI(t *testing.T) {
	tlli := LocalTLLI(PTMSI(0x12345678))
	if uint32(tlli)&0xC0000000 != 0xC0000000 {
		t.Fatalf("top bits not set: %s", tlli)
	}
	if uint32(tlli)&0x3FFFFFFF != 0x12345678&0x3FFFFFFF {
		t.Fatalf("low bits mangled: %s", tlli)
	}
}

func TestIdentityStrings(t *testing.T) {
	if got := TMSI(0xAB).String(); got != "TMSI-000000AB" {
		t.Errorf("TMSI.String = %q", got)
	}
	if got := (LAI{"466", "92", 0x1234}).String(); got != "466-92-1234" {
		t.Errorf("LAI.String = %q", got)
	}
	if got := (RAI{LAI{"466", "92", 1}, 7}).String(); got != "466-92-0001-07" {
		t.Errorf("RAI.String = %q", got)
	}
	if got := (CGI{LAI{"466", "92", 1}, 0xBEEF}).String(); got != "466-92-0001-BEEF" {
		t.Errorf("CGI.String = %q", got)
	}
	if got := ByIMSI("466920000000001").String(); got != "IMSI-466920000000001" {
		t.Errorf("MobileIdentity.String = %q", got)
	}
	if got := (MobileIdentity{}).String(); got != "MobileIdentity(unset)" {
		t.Errorf("zero MobileIdentity.String = %q", got)
	}
	if got := IdentityPTMSI.String(); got != "P-TMSI" {
		t.Errorf("kind string = %q", got)
	}
	if got := MobileIdentityKind(9).String(); got != "MobileIdentityKind(9)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func roundTripIdentity(t *testing.T, m MobileIdentity) MobileIdentity {
	t.Helper()
	w := wire.NewWriter(16)
	m.Marshal(w)
	r := wire.NewReader(w.Bytes())
	got := UnmarshalMobileIdentity(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	return got
}

func TestMobileIdentityRoundTrip(t *testing.T) {
	cases := []MobileIdentity{
		ByIMSI("466923123456789"),
		ByTMSI(0xDEADBEEF),
		ByPTMSI(0x01020304),
	}
	for _, m := range cases {
		if got := roundTripIdentity(t, m); got != m {
			t.Errorf("round trip %v -> %v", m, got)
		}
	}
}

func TestLAIRoundTrip(t *testing.T) {
	l := LAI{"466", "92", 0xABCD}
	w := wire.NewWriter(8)
	MarshalLAI(w, l)
	r := wire.NewReader(w.Bytes())
	got := UnmarshalLAI(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if got != l {
		t.Fatalf("round trip %v -> %v", l, got)
	}
}

func TestMobileIdentityRoundTripProperty(t *testing.T) {
	prop := func(tmsi uint32, pick bool) bool {
		var m MobileIdentity
		if pick {
			m = ByTMSI(TMSI(tmsi))
		} else {
			m = ByPTMSI(PTMSI(tmsi))
		}
		w := wire.NewWriter(8)
		m.Marshal(w)
		r := wire.NewReader(w.Bytes())
		return UnmarshalMobileIdentity(r) == m && r.Err() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIMSIRoundTripProperty(t *testing.T) {
	prop := func(raw []byte) bool {
		digits := make([]byte, 0, 15)
		for i := 0; i < len(raw) && len(digits) < 15; i++ {
			digits = append(digits, '0'+raw[i]%10)
		}
		if len(digits) < 6 {
			return true // not a valid IMSI length; nothing to check
		}
		im, err := ParseIMSI(string(digits))
		if err != nil {
			return false
		}
		got := roundTripIdentityQuick(ByIMSI(im))
		return got.IMSI == im
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func roundTripIdentityQuick(m MobileIdentity) MobileIdentity {
	w := wire.NewWriter(16)
	m.Marshal(w)
	return UnmarshalMobileIdentity(wire.NewReader(w.Bytes()))
}
