package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// dumpTracer records deliveries as formatted lines so tests can compare
// whole traces byte-for-byte across shard counts. (The trace package's
// Recorder lives downstream of sim, so shard tests keep a local one.)
type dumpTracer struct {
	lines []string
}

func (d *dumpTracer) Trace(at time.Duration, from, to NodeID, iface string, msg Message) {
	d.lines = append(d.lines, fmt.Sprintf("%v %s->%s [%s] %s", at, from, to, iface, msg.Name()))
}

func (d *dumpTracer) dump() string { return strings.Join(d.lines, "\n") }

// relayNode forwards or counts without recording, so allocation tests see
// only the engine's own behavior.
type relayNode struct {
	id    NodeID
	onMsg func(env *Env, from NodeID, iface string, msg Message)
}

func (n *relayNode) ID() NodeID { return n.id }
func (n *relayNode) Receive(env *Env, from NodeID, iface string, msg Message) {
	if n.onMsg != nil {
		n.onMsg(env, from, iface, msg)
	}
}

// buildFanIn builds `senders` nodes spread across shards (when shards > 1),
// each wired to a common sink with the same latency, and schedules every
// sender to fire a burst of messages at identical timestamps. The sink's
// arrival order exercises cross-shard same-timestamp tie-breaking.
func buildFanIn(shards, senders int) (*Env, *recorderNode, *dumpTracer) {
	env := NewShardedEnv(42, shards)
	tr := &dumpTracer{}
	env.SetTracer(tr)
	sink := &recorderNode{id: "sink"}
	env.AddNode(sink)
	for i := 0; i < senders; i++ {
		id := NodeID(fmt.Sprintf("n%d", i))
		env.AddNode(&recorderNode{id: id})
		env.Connect(id, "sink", "tie", 3*time.Millisecond)
		if shards > 1 {
			env.AssignShard(id, 1+i%(shards-1))
		}
	}
	for i := 0; i < senders; i++ {
		id := NodeID(fmt.Sprintf("n%d", i))
		// AfterNode pins the burst to the sender's own context and shard,
		// so the sends race across shards at identical virtual times.
		env.AfterNode(id, 10*time.Millisecond, func(sh *Env) {
			for k := 0; k < 3; k++ {
				sh.Send(id, "sink", testMsg{fmt.Sprintf("m-%s-%d", id, k)})
			}
		})
	}
	return env, sink, tr
}

func TestCrossShardSameTimestampTieBreak(t *testing.T) {
	var ref []string
	var refTrace string
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			env, sink, tr := buildFanIn(shards, 6)
			env.Run()
			if shards == 1 {
				ref = append([]string(nil), sink.got...)
				refTrace = tr.dump()
				if len(ref) != 18 {
					t.Fatalf("reference run delivered %d messages, want 18", len(ref))
				}
				return
			}
			if got := strings.Join(sink.got, ","); got != strings.Join(ref, ",") {
				t.Fatalf("shards=%d delivery order diverged:\n got %s\nwant %s",
					shards, got, strings.Join(ref, ","))
			}
			if tr.dump() != refTrace {
				t.Fatalf("shards=%d trace diverged:\n%s\nvs\n%s", shards, tr.dump(), refTrace)
			}
		})
	}
}

func TestSameTimestampOrderFollowsEventKey(t *testing.T) {
	// All bursts fire at t=10ms and arrive at t=13ms; the total order at
	// equal timestamps is (context index, per-context counter): senders in
	// registration order, each sender's messages in send order — no matter
	// which shards the senders live on.
	env, sink, _ := buildFanIn(4, 4)
	env.Run()
	var want []string
	for i := 0; i < 4; i++ {
		for k := 0; k < 3; k++ {
			want = append(want, fmt.Sprintf("m-n%d-%d", i, k))
		}
	}
	if got := strings.Join(sink.got, ","); got != strings.Join(want, ",") {
		t.Fatalf("arrival order = %s, want %s", got, strings.Join(want, ","))
	}
	for _, at := range sink.gotAt {
		if at != 13*time.Millisecond {
			t.Fatalf("arrival at %v, want 13ms", at)
		}
	}
}

func TestPendingSumsAcrossShards(t *testing.T) {
	env := NewShardedEnv(7, 4)
	for i := 0; i < 4; i++ {
		id := NodeID(fmt.Sprintf("p%d", i))
		env.AddNode(&recorderNode{id: id})
		env.AssignShard(id, i)
	}
	if env.Pending() != 0 {
		t.Fatalf("Pending = %d on empty env", env.Pending())
	}
	for i := 0; i < 4; i++ {
		id := NodeID(fmt.Sprintf("p%d", i))
		env.AfterNode(id, time.Duration(i+1)*time.Millisecond, func(*Env) {})
		env.AfterNode(id, time.Duration(i+1)*time.Millisecond, func(*Env) {})
	}
	if env.Pending() != 8 {
		t.Fatalf("Pending = %d, want 8 across 4 shards", env.Pending())
	}
	env.Run()
	if env.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", env.Pending())
	}
}

func TestStepPicksGlobalMinimumAcrossShards(t *testing.T) {
	env := NewShardedEnv(7, 3)
	var order []string
	ids := []NodeID{"s0", "s1", "s2"}
	for i, id := range ids {
		env.AddNode(&recorderNode{id: id})
		env.AssignShard(id, i)
	}
	// Deliberately schedule out of shard order: the earliest event lives on
	// shard 2, then shard 0; the two same-time events at 3ms break the tie
	// on the event key, which orders s1 (lower context index) before s2.
	env.AfterNode("s2", 1*time.Millisecond, func(*Env) { order = append(order, "s2@1") })
	env.AfterNode("s0", 2*time.Millisecond, func(*Env) { order = append(order, "s0@2") })
	env.AfterNode("s1", 3*time.Millisecond, func(*Env) { order = append(order, "s1@3") })
	env.AfterNode("s2", 3*time.Millisecond, func(*Env) { order = append(order, "s2@3") })

	want := []string{"s2@1", "s0@2", "s1@3", "s2@3"}
	for i, w := range want {
		if !env.Step() {
			t.Fatalf("Step %d: no event, want %s", i, w)
		}
		if order[len(order)-1] != w {
			t.Fatalf("Step %d ran %s, want %s", i, order[len(order)-1], w)
		}
	}
	if env.Step() {
		t.Fatal("Step returned true on drained env")
	}
	if env.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v after stepping, want 3ms", env.Now())
	}
}

func TestStepInterleavedWithShardedRunUntil(t *testing.T) {
	env := NewShardedEnv(9, 2)
	a := &recorderNode{id: "a"}
	b := &recorderNode{id: "b"}
	env.AddNode(a)
	env.AddNode(b)
	env.Connect("a", "b", "x", 2*time.Millisecond)
	env.AssignShard("b", 1)
	for i := 0; i < 4; i++ {
		env.AfterNode("a", time.Duration(i)*time.Millisecond, func(sh *Env) {
			sh.Send("a", "b", testMsg{"tick"})
		})
	}
	if !env.Step() { // runs the t=0 timer on shard 0
		t.Fatal("Step found no event")
	}
	env.RunUntil(2 * time.Millisecond) // timers at 1ms/2ms fire; only the t=0 send has arrived
	if got := len(b.got); got != 1 {
		t.Fatalf("b received %d messages by 2ms, want 1", got)
	}
	env.Run()
	if got := len(b.got); got != 4 {
		t.Fatalf("b received %d messages total, want 4", got)
	}
}

func TestShardedRunUntilIdleAdvancesClock(t *testing.T) {
	env := NewShardedEnv(3, 4)
	env.RunUntil(50 * time.Millisecond)
	if env.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v, want 50ms (idle bounded run advances the clock)", env.Now())
	}
	env.RunUntil(10 * time.Millisecond) // stale deadline must not move time backwards
	if env.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v after stale deadline, want 50ms", env.Now())
	}
}

func TestShardedRunUntilDeadlineExactlyOnEvent(t *testing.T) {
	env := NewShardedEnv(3, 2)
	env.AddNode(&recorderNode{id: "n"})
	env.AssignShard("n", 1)
	fired := false
	env.AfterNode("n", 10*time.Millisecond, func(*Env) { fired = true })
	env.RunUntil(10 * time.Millisecond)
	if !fired {
		t.Fatal("event exactly at the deadline did not fire")
	}
	if env.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", env.Now())
	}
}

func TestIndependentIslandsQuiesce(t *testing.T) {
	// No cross-shard links: lookahead is unbounded and each shard runs to
	// quiescence in a single window.
	env := NewShardedEnv(5, 2)
	for s := 0; s < 2; s++ {
		a := NodeID(fmt.Sprintf("a%d", s))
		b := NodeID(fmt.Sprintf("b%d", s))
		env.AddNode(&recorderNode{id: a})
		env.AddNode(&recorderNode{id: b})
		env.Connect(a, b, "isl", time.Millisecond)
		env.AssignShard(a, s)
		env.AssignShard(b, s)
	}
	for s := 0; s < 2; s++ {
		a := NodeID(fmt.Sprintf("a%d", s))
		b := NodeID(fmt.Sprintf("b%d", s))
		env.AfterNode(a, 0, func(sh *Env) { sh.Send(a, b, testMsg{"hi"}) })
	}
	end := env.Run()
	if end != time.Millisecond {
		t.Fatalf("quiesced at %v, want 1ms", end)
	}
	if env.Delivered() != 2 {
		t.Fatalf("Delivered = %d, want 2", env.Delivered())
	}
}

func TestZeroLatencyCrossShardLinkPanics(t *testing.T) {
	env := NewShardedEnv(1, 2)
	env.AddNode(&recorderNode{id: "x"})
	env.AddNode(&recorderNode{id: "y"})
	env.Connect("x", "y", "bad", 0)
	env.AssignShard("y", 1)
	env.After(time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil did not panic on zero-latency cross-shard link")
		}
	}()
	env.Run()
}

func TestAssignShardValidation(t *testing.T) {
	t.Run("unknown node", func(t *testing.T) {
		env := NewShardedEnv(1, 2)
		defer mustPanic(t, "unknown node")
		env.AssignShard("ghost", 1)
	})
	t.Run("shard out of range", func(t *testing.T) {
		env := NewShardedEnv(1, 2)
		env.AddNode(&recorderNode{id: "n"})
		defer mustPanic(t, "shard out of range")
		env.AssignShard("n", 2)
	})
	t.Run("after start", func(t *testing.T) {
		env := NewShardedEnv(1, 2)
		env.AddNode(&recorderNode{id: "n"})
		env.Run()
		defer mustPanic(t, "assign after start")
		env.AssignShard("n", 1)
	})
	t.Run("with pending events", func(t *testing.T) {
		env := NewShardedEnv(1, 2)
		env.AddNode(&recorderNode{id: "n"})
		env.After(time.Millisecond, func() {})
		defer mustPanic(t, "assign with pending events")
		env.AssignShard("n", 1)
	})
}

func mustPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", what)
	}
}

func TestAfterNodeCrossShardDuringRunPanics(t *testing.T) {
	env := NewShardedEnv(1, 2)
	env.AddNode(&recorderNode{id: "x"})
	env.AddNode(&recorderNode{id: "y"})
	env.Connect("x", "y", "l", time.Millisecond)
	env.AssignShard("y", 1)
	panicked := make(chan bool, 1)
	env.AfterNode("x", 0, func(sh *Env) {
		defer func() { panicked <- recover() != nil }()
		sh.AfterNode("y", time.Millisecond, func(*Env) {})
	})
	env.Run()
	if !<-panicked {
		t.Fatal("cross-shard AfterNode during a run did not panic")
	}
}

func TestPerNodeRandStreamsMatchAcrossShardCounts(t *testing.T) {
	draw := func(shards int) string {
		env := NewShardedEnv(1234, shards)
		var mu sync.Mutex
		outs := make(map[NodeID][]int64)
		for i := 0; i < 4; i++ {
			id := NodeID(fmt.Sprintf("r%d", i))
			env.AddNode(&recorderNode{id: id})
			if shards > 1 {
				env.AssignShard(id, i%shards)
			}
		}
		for i := 0; i < 4; i++ {
			id := NodeID(fmt.Sprintf("r%d", i))
			env.AfterNode(id, time.Millisecond, func(sh *Env) {
				v := sh.Rand().Int63()
				mu.Lock()
				outs[id] = append(outs[id], v, sh.Rand().Int63())
				mu.Unlock()
			})
		}
		env.Run()
		var parts []string
		for i := 0; i < 4; i++ {
			parts = append(parts, fmt.Sprint(outs[NodeID(fmt.Sprintf("r%d", i))]))
		}
		return strings.Join(parts, ";")
	}
	ref := draw(1)
	for _, s := range []int{2, 4} {
		if got := draw(s); got != ref {
			t.Fatalf("shards=%d per-node draws %s, want %s", s, got, ref)
		}
	}
}

// TestShardedAmortizedZeroAlloc locks in the engine's allocation behavior
// under sharding: per-RunUntil costs are fixed (worker goroutines, window
// barriers), while the per-event hot path — heap push/pop, outbox buffering,
// dispatch — allocates nothing once steady-state capacity is reached.
func TestShardedAmortizedZeroAlloc(t *testing.T) {
	env := NewShardedEnv(11, 2)
	const events = 20000
	count := 0
	a := &relayNode{id: "pa"}
	b := &relayNode{id: "pb"}
	bounce := func(e *Env, from NodeID, iface string, msg Message) {
		if count < events {
			count++
			e.Send(e.w.list[e.cur].ID(), from, msg)
		}
	}
	a.onMsg = bounce
	b.onMsg = bounce
	env.AddNode(a)
	env.AddNode(b)
	env.Connect("pa", "pb", "pp", time.Millisecond)
	env.AssignShard("pb", 1)

	run := func() {
		count = 0
		env.Send("pa", "pb", testMsg{"ball"})
		env.Run()
	}
	run() // warm the arenas and outboxes to their high-water mark
	allocs := testing.AllocsPerRun(3, run)
	// Budget: fixed per-run machinery only. 20k cross-shard events must not
	// contribute, so even a tiny per-event leak fails loudly.
	if allocs > 100 {
		t.Fatalf("sharded run allocated %.0f objects for %d events (want fixed per-run cost < 100)", allocs, events)
	}
}

func TestShardOfAndShardCount(t *testing.T) {
	env := NewShardedEnv(1, 3)
	if env.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", env.ShardCount())
	}
	env.AddNode(&recorderNode{id: "n"})
	if env.ShardOf("n") != 0 {
		t.Fatalf("default shard = %d, want 0", env.ShardOf("n"))
	}
	env.AssignShard("n", 2)
	if env.ShardOf("n") != 2 {
		t.Fatalf("ShardOf = %d after AssignShard, want 2", env.ShardOf("n"))
	}
}
