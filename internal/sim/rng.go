package sim

import "math/rand"

// Per-context random streams.
//
// Env.Rand() hands out one independent stream per scheduling context (per
// node, plus one root stream for draws made outside a run). Derivation:
//
//	streamSeed(ctx) = mix64(uint64(rootSeed) ^ (uint64(ctx+1) * golden))
//
// where golden is 2^64/phi (the splitmix64 gamma) and mix64 is the
// splitmix64 finalizer. The stream itself is a splitmix64 generator over
// that seed. Two properties matter:
//
//  1. The derivation depends only on the root seed and the node's
//     registration index — never on shard assignment or goroutine
//     interleaving — so draw sequences are identical at any shard count.
//  2. Each context owns its stream exclusively (a node's dispatches are
//     serialized on its shard), so Env.Rand() is race-free under sharding
//     without locks.
//
// A stream is 8 bytes of state and is created lazily on first draw, so
// large populations of nodes that never draw cost nothing — unlike
// math/rand's default source (~5 KB each), which would blow the engine's
// allocation budget at million-node scale.
type stream struct {
	state uint64
}

const golden = 0x9E3779B97F4A7C15 // 2^64 / phi, the splitmix64 gamma

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// newStream derives the context's generator from the root seed.
func newStream(rootSeed int64, ctx int32) *stream {
	return &stream{state: mix64(uint64(rootSeed) ^ (uint64(ctx+1) * golden))}
}

var _ rand.Source64 = (*stream)(nil)

func (s *stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

func (s *stream) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *stream) Seed(seed int64) { s.state = mix64(uint64(seed)) }
