package sim_test

import (
	"fmt"
	"time"

	"vgprs/internal/sim"
)

// pinger sends one ping and prints the reply's arrival time.
type pinger struct{ peer sim.NodeID }

func (pinger) ID() sim.NodeID { return "pinger" }

func (p pinger) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	fmt.Printf("%v: %s from %s\n", env.Now(), msg.Name(), from)
}

// echoNode answers every message with a pong.
type echoNode struct{}

func (echoNode) ID() sim.NodeID { return "echo" }

func (echoNode) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	env.Send("echo", from, text("pong"))
}

type text string

func (t text) Name() string { return string(t) }

func Example() {
	env := sim.NewEnv(1)
	env.AddNode(pinger{peer: "echo"})
	env.AddNode(echoNode{})
	env.Connect("pinger", "echo", "wire", 3*time.Millisecond)

	env.Send("pinger", "echo", text("ping"))
	env.Run()
	// Output:
	// 6ms: pong from echo
}
