package sim

import (
	"testing"
	"testing/quick"
	"time"
)

type testMsg struct{ name string }

func (m testMsg) Name() string { return m.name }

type recorderNode struct {
	id       NodeID
	got      []string
	gotAt    []time.Duration
	onMsg    func(env *Env, from NodeID, iface string, msg Message)
	lastFrom NodeID
	lastIf   string
}

func (n *recorderNode) ID() NodeID { return n.id }

func (n *recorderNode) Receive(env *Env, from NodeID, iface string, msg Message) {
	n.got = append(n.got, msg.Name())
	n.gotAt = append(n.gotAt, env.Now())
	n.lastFrom = from
	n.lastIf = iface
	if n.onMsg != nil {
		n.onMsg(env, from, iface, msg)
	}
}

func newPair(t *testing.T, latency time.Duration) (*Env, *recorderNode, *recorderNode) {
	t.Helper()
	env := NewEnv(1)
	a := &recorderNode{id: "a"}
	b := &recorderNode{id: "b"}
	env.AddNode(a)
	env.AddNode(b)
	env.Connect("a", "b", "test", latency)
	return env, a, b
}

func TestSendDeliversAfterLatency(t *testing.T) {
	env, _, b := newPair(t, 5*time.Millisecond)
	env.Send("a", "b", testMsg{"hello"})
	env.Run()
	if len(b.got) != 1 || b.got[0] != "hello" {
		t.Fatalf("b.got = %v, want [hello]", b.got)
	}
	if b.gotAt[0] != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", b.gotAt[0])
	}
	if b.lastFrom != "a" || b.lastIf != "test" {
		t.Fatalf("from=%q iface=%q, want a/test", b.lastFrom, b.lastIf)
	}
}

func TestBidirectionalLink(t *testing.T) {
	env, a, b := newPair(t, time.Millisecond)
	b.onMsg = func(env *Env, from NodeID, _ string, _ Message) {
		env.Send("b", from, testMsg{"pong"})
	}
	env.Send("a", "b", testMsg{"ping"})
	env.Run()
	if len(a.got) != 1 || a.got[0] != "pong" {
		t.Fatalf("a.got = %v, want [pong]", a.got)
	}
	if a.gotAt[0] != 2*time.Millisecond {
		t.Fatalf("round trip at %v, want 2ms", a.gotAt[0])
	}
}

func TestFIFOOrderingAtEqualTime(t *testing.T) {
	env, _, b := newPair(t, 0)
	for _, name := range []string{"m1", "m2", "m3", "m4"} {
		env.Send("a", "b", testMsg{name})
	}
	env.Run()
	want := []string{"m1", "m2", "m3", "m4"}
	if len(b.got) != len(want) {
		t.Fatalf("got %d messages, want %d", len(b.got), len(want))
	}
	for i := range want {
		if b.got[i] != want[i] {
			t.Fatalf("b.got = %v, want %v", b.got, want)
		}
	}
}

func TestAfterTimerFires(t *testing.T) {
	env := NewEnv(1)
	var firedAt time.Duration
	env.After(7*time.Millisecond, func() { firedAt = env.Now() })
	env.Run()
	if firedAt != 7*time.Millisecond {
		t.Fatalf("fired at %v, want 7ms", firedAt)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	env := NewEnv(1)
	fired := false
	env.After(-time.Second, func() { fired = true })
	env.Run()
	if !fired || env.Now() != 0 {
		t.Fatalf("fired=%v now=%v, want true/0", fired, env.Now())
	}
}

func TestRunUntilDeadlineStopsClock(t *testing.T) {
	env := NewEnv(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		d := d
		env.After(d, func() { fired = append(fired, d) })
	}
	now := env.RunUntil(6 * time.Millisecond)
	if now != 6*time.Millisecond {
		t.Fatalf("now = %v, want 6ms", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want two events", fired)
	}
	// The remaining event still runs on the next Run.
	env.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after final Run, want three events", fired)
	}
}

func TestDownLinkDropsMessage(t *testing.T) {
	env, _, b := newPair(t, time.Millisecond)
	env.LinkBetween("a", "b").Down = true
	env.Send("a", "b", testMsg{"lost"})
	env.Run()
	if len(b.got) != 0 {
		t.Fatalf("b.got = %v, want none (link down)", b.got)
	}
}

func TestJitterIsBoundedAndSeedStable(t *testing.T) {
	run := func(seed int64) time.Duration {
		env := NewEnv(seed)
		a := &recorderNode{id: "a"}
		b := &recorderNode{id: "b"}
		env.AddNode(a)
		env.AddNode(b)
		ab, _ := env.Connect("a", "b", "test", 2*time.Millisecond)
		ab.Jitter = 3 * time.Millisecond
		env.Send("a", "b", testMsg{"j"})
		env.Run()
		return b.gotAt[0]
	}
	first := run(42)
	if first < 2*time.Millisecond || first >= 5*time.Millisecond {
		t.Fatalf("jittered delivery at %v, want in [2ms,5ms)", first)
	}
	if again := run(42); again != first {
		t.Fatalf("same seed gave %v then %v", first, again)
	}
}

func TestLossyLinkDropsProportionally(t *testing.T) {
	env, _, b := newPair(t, time.Millisecond)
	env.LinkBetween("a", "b").Loss = 0.5
	const sent = 2000
	for range sent {
		env.Send("a", "b", testMsg{"m"})
	}
	env.Run()
	got := len(b.got)
	if got < sent*35/100 || got > sent*65/100 {
		t.Fatalf("delivered %d of %d with 50%% loss", got, sent)
	}
}

func TestLossyLinkSeedStable(t *testing.T) {
	run := func() int {
		env := NewEnv(99)
		a := &recorderNode{id: "a"}
		b := &recorderNode{id: "b"}
		env.AddNode(a)
		env.AddNode(b)
		ab, _ := env.Connect("a", "b", "test", time.Millisecond)
		ab.Loss = 0.3
		for range 100 {
			env.Send("a", "b", testMsg{"m"})
		}
		env.Run()
		return len(b.got)
	}
	if run() != run() {
		t.Fatal("lossy delivery not reproducible from the seed")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	env := NewEnv(1)
	env.AddNode(&recorderNode{id: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node ID")
		}
	}()
	env.AddNode(&recorderNode{id: "x"})
}

func TestSendWithoutLinkPanics(t *testing.T) {
	env := NewEnv(1)
	env.AddNode(&recorderNode{id: "a"})
	env.AddNode(&recorderNode{id: "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on send without link")
		}
	}()
	env.Send("a", "b", testMsg{"nope"})
}

func TestConnectUnknownNodePanics(t *testing.T) {
	env := NewEnv(1)
	env.AddNode(&recorderNode{id: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on connect to unknown node")
		}
	}()
	env.Connect("a", "ghost", "test", 0)
}

func TestStepProcessesOneEvent(t *testing.T) {
	env := NewEnv(1)
	count := 0
	env.After(time.Millisecond, func() { count++ })
	env.After(2*time.Millisecond, func() { count++ })
	if !env.Step() || count != 1 {
		t.Fatalf("after first Step count=%d", count)
	}
	if !env.Step() || count != 2 {
		t.Fatalf("after second Step count=%d", count)
	}
	if env.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}

func TestHasLinkAndNeighbors(t *testing.T) {
	env, _, _ := newPair(t, 0)
	if !env.HasLink("a", "b") {
		t.Fatal("HasLink(a,b) = false")
	}
	if env.HasLink("a", "c") {
		t.Fatal("HasLink(a,c) = true for missing node")
	}
	nbrs := env.Neighbors("a")
	if len(nbrs) != 1 || nbrs[0] != "b" {
		t.Fatalf("Neighbors(a) = %v, want [b]", nbrs)
	}
}

func TestDeliveredCounter(t *testing.T) {
	env, _, _ := newPair(t, 0)
	for range 5 {
		env.Send("a", "b", testMsg{"m"})
	}
	env.Run()
	if env.Delivered() != 5 {
		t.Fatalf("Delivered = %d, want 5", env.Delivered())
	}
}

// TestEventOrderProperty checks, for arbitrary sets of timer delays, that
// callbacks always observe a monotonically nondecreasing clock and that all
// timers fire.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		env := NewEnv(7)
		fired := 0
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			env.After(time.Duration(d)*time.Microsecond, func() {
				if env.Now() < last {
					ok = false
				}
				last = env.Now()
				fired++
			})
		}
		env.Run()
		return ok && fired == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTieBreakProperty checks that events scheduled for the same instant fire
// in scheduling order regardless of how many there are.
func TestTieBreakProperty(t *testing.T) {
	prop := func(n uint8) bool {
		env := NewEnv(7)
		var order []int
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			i := i
			env.After(time.Millisecond, func() { order = append(order, i) })
		}
		env.Run()
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return len(order) == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilDeadlineExactlyOnEvent(t *testing.T) {
	env := NewEnv(1)
	var fired []time.Duration
	env.After(5*time.Millisecond, func() { fired = append(fired, env.Now()) })
	env.After(5*time.Millisecond, func() { fired = append(fired, env.Now()) })
	env.After(5*time.Millisecond+time.Nanosecond, func() { fired = append(fired, env.Now()) })
	// A deadline exactly on an event timestamp is inclusive: both 5ms
	// events run, the 5ms+1ns event stays queued.
	if now := env.RunUntil(5 * time.Millisecond); now != 5*time.Millisecond {
		t.Fatalf("RunUntil returned %v, want 5ms", now)
	}
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 5*time.Millisecond {
		t.Fatalf("fired = %v, want two events at 5ms", fired)
	}
	if env.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", env.Pending())
	}
	env.Run()
	if len(fired) != 3 {
		t.Fatalf("fired = %v after Run, want three events", fired)
	}
}

func TestRunUntilIdleEmptyQueueAdvancesToDeadline(t *testing.T) {
	env := NewEnv(1)
	// Repeated idle bounded runs each land exactly on their deadline; an
	// earlier (already passed) deadline must not move the clock backwards.
	if got := env.RunUntil(3 * time.Second); got != 3*time.Second {
		t.Fatalf("first idle RunUntil returned %v", got)
	}
	if got := env.RunUntil(2 * time.Second); got != 3*time.Second {
		t.Fatalf("stale deadline moved the clock: %v", got)
	}
	if got := env.RunUntil(7 * time.Second); got != 7*time.Second {
		t.Fatalf("second idle RunUntil returned %v", got)
	}
	if env.Now() != 7*time.Second {
		t.Fatalf("Now = %v, want 7s", env.Now())
	}
}

func TestStepInterleavedWithRunUntil(t *testing.T) {
	env := NewEnv(1)
	var order []string
	for _, ev := range []struct {
		name string
		at   time.Duration
	}{
		{"a", 1 * time.Millisecond},
		{"b", 2 * time.Millisecond},
		{"c", 3 * time.Millisecond},
		{"d", 9 * time.Millisecond},
	} {
		ev := ev
		env.After(ev.at, func() { order = append(order, ev.name) })
	}
	// Step consumes the earliest event and advances the clock to it.
	if !env.Step() {
		t.Fatal("Step found no event")
	}
	if env.Now() != time.Millisecond {
		t.Fatalf("Now after Step = %v, want 1ms", env.Now())
	}
	// A bounded run picks up from where Step left off.
	if got := env.RunUntil(3 * time.Millisecond); got != 3*time.Millisecond {
		t.Fatalf("RunUntil returned %v, want 3ms", got)
	}
	// Another Step drains the event past the previous deadline.
	if !env.Step() {
		t.Fatal("Step found no event after RunUntil")
	}
	if env.Now() != 9*time.Millisecond {
		t.Fatalf("Now after final Step = %v, want 9ms", env.Now())
	}
	if env.Step() {
		t.Fatal("Step on drained queue should return false")
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	env := NewEnv(1)
	if got := env.RunUntil(5 * time.Second); got != 5*time.Second {
		t.Fatalf("idle RunUntil returned %v", got)
	}
	if env.Now() != 5*time.Second {
		t.Fatalf("Now = %v after idle bounded run", env.Now())
	}
	// A later deadline with one event in between: the event runs at its
	// own time, and the clock still ends at the deadline.
	var firedAt time.Duration
	env.After(time.Second, func() { firedAt = env.Now() })
	if got := env.RunUntil(20 * time.Second); got != 20*time.Second {
		t.Fatalf("RunUntil returned %v", got)
	}
	if firedAt != 6*time.Second {
		t.Fatalf("event fired at %v, want 6s", firedAt)
	}
	// Run-to-quiescence must NOT advance an idle clock.
	if got := env.Run(); got != 20*time.Second {
		t.Fatalf("Run moved the idle clock to %v", got)
	}
}
