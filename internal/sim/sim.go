// Package sim provides a deterministic discrete-event simulation engine.
//
// Every network element in the vGPRS reproduction (MS, BTS, BSC, VMSC, SGSN,
// GGSN, gatekeeper, ...) is a Node registered with an Env. Nodes exchange
// typed protocol messages over Links that model a named interface (Um, Abis,
// A, Gb, ...) with a fixed one-way latency. The engine runs on a virtual
// clock, so latency measurements are exact and runs are reproducible from a
// seed.
//
// The engine is intentionally single-threaded: determinism is what lets the
// figure-flow tests assert exact message sequences and lets the benchmark
// harness report stable latencies. Concurrency-sensitive state inside nodes
// (tables shared with inspection APIs) is still guarded by mutexes so nodes
// remain safe to inspect from tests while an Env is not running.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID identifies a network element within an Env.
type NodeID string

// Message is a protocol message exchanged between nodes. Every protocol
// package defines typed messages implementing this interface; Name returns
// the wire-level message name used in the paper's figures (for example
// "MAP_UPDATE_LOCATION" or "RAS RRQ") so traces read like the paper.
type Message interface {
	Name() string
}

// Node is a simulated network element.
type Node interface {
	// ID returns the node's unique identifier within its Env.
	ID() NodeID
	// Receive handles a message delivered over the named interface.
	// It runs on the simulation goroutine; implementations may call back
	// into the Env (Send, After) but must not block.
	Receive(env *Env, from NodeID, iface string, msg Message)
}

// Tracer observes every message delivery. The trace package provides a
// recording implementation; a nil tracer disables tracing.
type Tracer interface {
	Trace(at time.Duration, from, to NodeID, iface string, msg Message)
}

// Env is a simulation environment: a registry of nodes and links plus the
// virtual clock and event queue.
type Env struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	nodes  map[NodeID]Node
	links  map[linkKey]*Link
	tracer Tracer
	rng    *rand.Rand

	delivered uint64
	running   bool
}

type linkKey struct {
	from, to NodeID
}

// Link is a unidirectional edge between two nodes. Connect creates both
// directions with the same properties.
type Link struct {
	From    NodeID
	To      NodeID
	Iface   string
	Latency time.Duration
	// Jitter, when positive, adds a uniformly distributed extra delay in
	// [0, Jitter) to each delivery. Jitter draws from the Env's seeded
	// RNG, so runs remain reproducible.
	Jitter time.Duration
	// Loss, when positive, drops each delivery independently with this
	// probability (0..1), drawing from the Env's seeded RNG.
	Loss float64
	// Down marks the link as failed; sends over a down link are dropped
	// (and still traced with the "drop:" prefix on the interface name).
	Down bool
	// Dup, when positive, duplicates each (non-dropped) delivery
	// independently with this probability (0..1): the message is delivered
	// twice, each copy with its own jitter draw. Receivers must treat
	// signalling PDUs idempotently, which is exactly what the chaos tests
	// exercise.
	Dup float64
}

// NewEnv creates an empty simulation environment seeded for reproducibility.
func NewEnv(seed int64) *Env {
	return &Env{
		nodes: make(map[NodeID]Node),
		links: make(map[linkKey]*Link),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetTracer installs the message tracer. Passing nil disables tracing.
func (e *Env) SetTracer(t Tracer) { e.tracer = t }

// Tracer returns the currently installed tracer, or nil.
func (e *Env) Tracer() Tracer { return e.tracer }

// Rand returns the environment's seeded random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Delivered returns the total number of messages delivered so far.
func (e *Env) Delivered() uint64 { return e.delivered }

// AddNode registers a node. It panics if the node's ID is already taken:
// topology construction errors are programming errors, not runtime
// conditions.
func (e *Env) AddNode(n Node) {
	id := n.ID()
	if _, ok := e.nodes[id]; ok {
		panic(fmt.Sprintf("sim: duplicate node ID %q", id))
	}
	e.nodes[id] = n
}

// Node returns the registered node with the given ID, or nil.
func (e *Env) Node(id NodeID) Node { return e.nodes[id] }

// Connect creates a bidirectional link between a and b over the named
// interface with the given one-way latency. Both endpoints must already be
// registered. It returns the two unidirectional links so callers can adjust
// jitter or fail one direction.
func (e *Env) Connect(a, b NodeID, iface string, latency time.Duration) (ab, ba *Link) {
	for _, id := range []NodeID{a, b} {
		if _, ok := e.nodes[id]; !ok {
			panic(fmt.Sprintf("sim: Connect references unknown node %q", id))
		}
	}
	ab = &Link{From: a, To: b, Iface: iface, Latency: latency}
	ba = &Link{From: b, To: a, Iface: iface, Latency: latency}
	e.links[linkKey{a, b}] = ab
	e.links[linkKey{b, a}] = ba
	return ab, ba
}

// LinkBetween returns the unidirectional link from a to b, or nil.
func (e *Env) LinkBetween(a, b NodeID) *Link { return e.links[linkKey{a, b}] }

// HasLink reports whether a bidirectional link exists between a and b.
func (e *Env) HasLink(a, b NodeID) bool {
	_, ab := e.links[linkKey{a, b}]
	_, ba := e.links[linkKey{b, a}]
	return ab && ba
}

// Neighbors returns the IDs of all nodes directly linked from id, sorted
// lexicographically so the result is deterministic regardless of link
// insertion order.
func (e *Env) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for k := range e.links {
		if k.from == id {
			out = append(out, k.to)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Send delivers msg from one node to another over the link between them.
// Delivery is scheduled after the link latency (plus jitter, if configured).
// Send panics if no link exists: sending over a nonexistent interface is a
// topology bug the figure tests must surface loudly.
func (e *Env) Send(from, to NodeID, msg Message) {
	link := e.links[linkKey{from, to}]
	if link == nil {
		panic(fmt.Sprintf("sim: no link %s -> %s for message %s", from, to, msg.Name()))
	}
	if link.Down || (link.Loss > 0 && e.rng.Float64() < link.Loss) {
		if e.tracer != nil {
			e.tracer.Trace(e.now, from, to, "drop:"+link.Iface, msg)
		}
		return
	}
	// Fault draws happen in a fixed order (loss, then duplication, then one
	// jitter draw per copy) so a seeded run replays identically.
	copies := 1
	if link.Dup > 0 && e.rng.Float64() < link.Dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		delay := link.Latency
		if link.Jitter > 0 {
			delay += time.Duration(e.rng.Int63n(int64(link.Jitter)))
		}
		// Delivery is the engine's steady state: schedule a typed record
		// rather than a closure so the hot path performs zero heap
		// allocations.
		e.seq++
		e.queue.push(event{
			at: e.now + delay, seq: e.seq, kind: evDeliver,
			from: from, to: to, link: link, msg: msg,
		})
	}
}

// dispatch runs one popped event on the simulation goroutine.
func (e *Env) dispatch(ev *event) {
	if ev.kind == evDeliver {
		dst := e.nodes[ev.to]
		if dst == nil {
			return
		}
		if e.tracer != nil {
			e.tracer.Trace(e.now, ev.from, ev.to, ev.link.Iface, ev.msg)
		}
		e.delivered++
		dst.Receive(e, ev.from, ev.link.Iface, ev.msg)
		return
	}
	if ev.kind == evTimerArg {
		ev.argFn(ev.arg)
		return
	}
	ev.fn()
}

// Note records an application-level message in the trace without delivering
// anything: protocol endpoints call it when they send or decode a message
// that rides encapsulated inside lower layers (a Q.931 Setup inside
// TCP/GTP/Gb, a RAS RRQ inside UDP). This is what lets recorded traces show
// the paper's logical arrows (VMSC -> GK "RAS RRQ") alongside the physical
// encapsulation hops.
func (e *Env) Note(from, to NodeID, iface string, msg Message) {
	if e.tracer != nil {
		e.tracer.Trace(e.now, from, to, iface, msg)
	}
}

// After schedules fn to run at Now()+d on the simulation goroutine. Nodes
// use it for protocol timers (paging response timers, PDP activation
// timeouts, RTP packetisation ticks).
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn)
}

func (e *Env) schedule(at time.Duration, fn func()) {
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, kind: evTimer, fn: fn})
}

// AfterArg schedules fn(arg) to run at Now()+d. Unlike After it takes a
// plain function plus its argument, so callers with many outstanding timers
// (the MAP dialogue manager) can schedule a package-level function without
// allocating a fresh closure per timer.
func (e *Env) AfterArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.queue.push(event{at: e.now + d, seq: e.seq, kind: evTimerArg, argFn: fn, arg: arg})
}

// NextRTO advances a retransmission timeout one step: binary exponential
// backoff capped at 8x the initial value (TCP-style bounded backoff, so
// large retry budgets keep probing instead of going silent for the rest of
// the run). Every retransmitting plane in the stack paces itself with this
// so budgets compose predictably.
func NextRTO(cur, initial time.Duration) time.Duration {
	next := cur * 2
	if max := initial * 8; next > max {
		return max
	}
	return next
}

// RetryDeadline returns the virtual time between a request's first
// transmission and its retry budget exhausting, for a schedule of retries
// retransmissions paced by NextRTO from the given initial RTO. For budgets
// of three or fewer this is the classic (2^(retries+1)-1)*rto; beyond that
// the cap makes it linear.
func RetryDeadline(rto time.Duration, retries int) time.Duration {
	var total time.Duration
	cur := rto
	for i := 0; i <= retries; i++ {
		total += cur
		cur = NextRTO(cur, rto)
	}
	return total
}

// Run processes events until the queue is empty. It returns the virtual time
// at which the simulation quiesced.
func (e *Env) Run() time.Duration {
	return e.RunUntil(-1)
}

// RunUntil processes events with timestamps <= deadline. A negative deadline
// means run to quiescence. Events scheduled during the run are processed if
// they fall within the deadline. It returns the current virtual time.
func (e *Env) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		at, ok := e.queue.peekAt()
		if !ok {
			// Idle time still passes: a bounded run leaves the clock at
			// the deadline so time-based state (expiries, TTLs) observes
			// the full interval.
			if deadline >= 0 && deadline > e.now {
				e.now = deadline
			}
			break
		}
		if deadline >= 0 && at > deadline {
			e.now = deadline
			break
		}
		ev, _ := e.queue.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatch(&ev)
	}
	return e.now
}

// Step processes exactly one pending event, returning false if none remain.
func (e *Env) Step() bool {
	ev, ok := e.queue.pop()
	if !ok {
		return false
	}
	if ev.at > e.now {
		e.now = ev.at
	}
	e.dispatch(&ev)
	return true
}

// Pending returns the number of queued events.
func (e *Env) Pending() int { return e.queue.len() }
