// Package sim provides a deterministic discrete-event simulation engine.
//
// Every network element in the vGPRS reproduction (MS, BTS, BSC, VMSC, SGSN,
// GGSN, gatekeeper, ...) is a Node registered with an Env. Nodes exchange
// typed protocol messages over Links that model a named interface (Um, Abis,
// A, Gb, ...) with a fixed one-way latency. The engine runs on a virtual
// clock, so latency measurements are exact and runs are reproducible from a
// seed.
//
// # Sharding
//
// The engine can partition its event loop across shards (NewShardedEnv),
// each with its own event heap, clock, and worker goroutine. Shards
// synchronize conservatively: the minimum latency of any cross-shard link is
// the lookahead, and every shard may safely process all events strictly
// earlier than the globally earliest pending event plus that lookahead,
// because no message sent during the window can arrive inside it. Cross-
// shard deliveries are exchanged through per-shard outboxes at the barrier
// between windows, so the hot path stays lock-free and allocation-free.
//
// Determinism is independent of the shard count. Every event carries a
// 64-bit key combining the scheduling context (the node whose dispatch
// created it, or the root context for events scheduled from outside a run)
// with that context's private emission counter; ties on the timestamp break
// on the key. Random draws likewise come from per-node streams derived from
// the root seed (see rng.go). Both the key and the draw sequence depend only
// on the topology and the seed — never on how nodes are assigned to shards —
// so the same seed produces a byte-identical trace and identical metrics at
// any shard count, including one. Node state is only ever touched from its
// own shard; nodes on different shards must share no mutable state outside
// the message layer.
//
// Concurrency-sensitive state inside nodes (tables shared with inspection
// APIs) is still guarded by mutexes so nodes remain safe to inspect from
// tests while an Env is not running.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID identifies a network element within an Env.
type NodeID string

// Message is a protocol message exchanged between nodes. Every protocol
// package defines typed messages implementing this interface; Name returns
// the wire-level message name used in the paper's figures (for example
// "MAP_UPDATE_LOCATION" or "RAS RRQ") so traces read like the paper.
type Message interface {
	Name() string
}

// Node is a simulated network element.
type Node interface {
	// ID returns the node's unique identifier within its Env.
	ID() NodeID
	// Receive handles a message delivered over the named interface.
	// It runs on the node's shard goroutine; implementations may call back
	// into the Env (Send, After) but must not block.
	Receive(env *Env, from NodeID, iface string, msg Message)
}

// Tracer observes every message delivery. The trace package provides a
// recording implementation; a nil tracer disables tracing.
type Tracer interface {
	Trace(at time.Duration, from, to NodeID, iface string, msg Message)
}

// ctrBits is the width of the per-context emission counter within an event
// key; the context index occupies the bits above it. 2^24 contexts times
// 2^40 emissions per context bound a single simulation.
const ctrBits = 40

// world is the state shared by every shard view of one simulation: node and
// link registries, per-context key counters and RNG streams, and the shard
// runtime. Exactly one *Env exists per shard; the value returned by
// NewEnv/NewShardedEnv is shard 0's view and the user-facing handle.
type world struct {
	seed    int64
	nodes   map[NodeID]Node
	list    []Node // dense context index -> node; [0] is the root context
	idx     map[NodeID]int32
	ctr     []uint64     // per-context emission counters (event key tie-break)
	rngs    []*rand.Rand // per-context RNG streams, created on first draw
	shardOf []int32      // per-context home shard
	links   map[linkKey]*Link
	tracer  Tracer
	shards  []*Env
	running bool
	started bool
}

// Env is one shard's view of a simulation environment. All views share the
// node/link registries and the tracer; the event queue, clock, and delivery
// counter are per-shard. Topology construction and scheduling from outside a
// run may use any view (they are single-threaded); during a run each view is
// owned by its shard goroutine.
type Env struct {
	w      *world
	shard  int32
	queue  eventQueue
	now    time.Duration
	cur    int32  // context (node index) of the event being dispatched
	curKey uint64 // key of the event being dispatched (trace ordering)
	emit   uint32 // trace emissions within the current dispatch

	delivered uint64
	outbox    [][]event  // cross-shard sends buffered during a window, per dst shard
	trbuf     []traceRec // trace entries buffered during a sharded run
}

type linkKey struct {
	from, to NodeID
}

// Link is a unidirectional edge between two nodes. Connect creates both
// directions with the same properties.
type Link struct {
	From    NodeID
	To      NodeID
	Iface   string
	Latency time.Duration
	// Jitter, when positive, adds a uniformly distributed extra delay in
	// [0, Jitter) to each delivery. Jitter draws from the sending node's
	// seeded stream, so runs remain reproducible.
	Jitter time.Duration
	// Loss, when positive, drops each delivery independently with this
	// probability (0..1), drawing from the sending node's seeded stream.
	Loss float64
	// Down marks the link as failed; sends over a down link are dropped
	// (and still traced with the "drop:" prefix on the interface name).
	Down bool
	// Dup, when positive, duplicates each (non-dropped) delivery
	// independently with this probability (0..1): the message is delivered
	// twice, each copy with its own jitter draw. Receivers must treat
	// signalling PDUs idempotently, which is exactly what the chaos tests
	// exercise.
	Dup float64

	// toIdx caches the destination's context index so the delivery hot
	// path resolves the node and its shard without a map lookup.
	toIdx int32
}

// NewEnv creates an empty single-shard simulation environment seeded for
// reproducibility.
func NewEnv(seed int64) *Env {
	return NewShardedEnv(seed, 1)
}

// NewShardedEnv creates an empty simulation environment whose event loop is
// partitioned across the given number of shards. The returned Env is shard
// 0's view and the handle all topology and run calls go through. Nodes
// default to shard 0; AssignShard moves them before the first run.
func NewShardedEnv(seed int64, shards int) *Env {
	if shards < 1 {
		shards = 1
	}
	w := &world{
		seed:    seed,
		nodes:   make(map[NodeID]Node),
		idx:     make(map[NodeID]int32),
		list:    []Node{nil},
		ctr:     make([]uint64, 1),
		rngs:    make([]*rand.Rand, 1),
		shardOf: []int32{0},
		links:   make(map[linkKey]*Link),
		shards:  make([]*Env, shards),
	}
	for i := range w.shards {
		sh := &Env{w: w, shard: int32(i)}
		if shards > 1 {
			sh.outbox = make([][]event, shards)
		}
		w.shards[i] = sh
	}
	return w.shards[0]
}

// SetTracer installs the message tracer. Passing nil disables tracing.
func (e *Env) SetTracer(t Tracer) { e.w.tracer = t }

// Tracer returns the currently installed tracer, or nil.
func (e *Env) Tracer() Tracer { return e.w.tracer }

// Rand returns the seeded random stream of the current scheduling context:
// the node whose event is being dispatched, or the root stream outside a
// run. Streams are derived per node from the root seed (see rng.go), so
// draws are reproducible and independent of the shard count.
func (e *Env) Rand() *rand.Rand { return e.ctxRand() }

func (e *Env) ctxRand() *rand.Rand {
	w := e.w
	r := w.rngs[e.cur]
	if r == nil {
		// Lazy creation keeps populations of nodes that never draw (the
		// common case) from paying a stream each. The slot is only ever
		// touched from the context's own shard, so this is race-free.
		r = rand.New(newStream(w.seed, e.cur))
		w.rngs[e.cur] = r
	}
	return r
}

// Now returns the current virtual time of this shard. Outside a run all
// shard clocks are synchronized, so the root view reports the global time.
func (e *Env) Now() time.Duration { return e.now }

// Delivered returns the total number of messages delivered so far across
// all shards.
func (e *Env) Delivered() uint64 {
	var total uint64
	for _, sh := range e.w.shards {
		total += sh.delivered
	}
	return total
}

// AddNode registers a node on shard 0. It panics if the node's ID is
// already taken: topology construction errors are programming errors, not
// runtime conditions.
func (e *Env) AddNode(n Node) {
	w := e.w
	id := n.ID()
	if _, ok := w.nodes[id]; ok {
		panic(fmt.Sprintf("sim: duplicate node ID %q", id))
	}
	w.nodes[id] = n
	w.idx[id] = int32(len(w.list))
	w.list = append(w.list, n)
	w.ctr = append(w.ctr, 0)
	w.rngs = append(w.rngs, nil)
	w.shardOf = append(w.shardOf, 0)
}

// Node returns the registered node with the given ID, or nil.
func (e *Env) Node(id NodeID) Node { return e.w.nodes[id] }

// ShardCount returns the number of shards the event loop is partitioned
// across (1 for a sequential environment).
func (e *Env) ShardCount() int { return len(e.w.shards) }

// ShardOf returns the shard the node is assigned to. It panics on an
// unknown node.
func (e *Env) ShardOf(id NodeID) int {
	i, ok := e.w.idx[id]
	if !ok {
		panic(fmt.Sprintf("sim: ShardOf unknown node %q", id))
	}
	return int(e.w.shardOf[i])
}

// AssignShard moves a node to the given shard. Assignments must be complete
// before anything is scheduled: a node's pending events live in its shard's
// queue, so reassigning later would strand them. Timers the node schedules
// run on its shard; nodes on different shards must not share mutable state
// outside the message layer.
func (e *Env) AssignShard(id NodeID, shard int) {
	w := e.w
	i, ok := w.idx[id]
	if !ok {
		panic(fmt.Sprintf("sim: AssignShard of unknown node %q", id))
	}
	if shard < 0 || shard >= len(w.shards) {
		panic(fmt.Sprintf("sim: AssignShard %q to shard %d of %d", id, shard, len(w.shards)))
	}
	if w.started {
		panic("sim: AssignShard after the simulation has started")
	}
	if e.Pending() > 0 {
		panic("sim: AssignShard with events already scheduled")
	}
	w.shardOf[i] = int32(shard)
}

// Connect creates a bidirectional link between a and b over the named
// interface with the given one-way latency. Both endpoints must already be
// registered. It returns the two unidirectional links so callers can adjust
// jitter or fail one direction.
func (e *Env) Connect(a, b NodeID, iface string, latency time.Duration) (ab, ba *Link) {
	w := e.w
	for _, id := range []NodeID{a, b} {
		if _, ok := w.nodes[id]; !ok {
			panic(fmt.Sprintf("sim: Connect references unknown node %q", id))
		}
	}
	ab = &Link{From: a, To: b, Iface: iface, Latency: latency, toIdx: w.idx[b]}
	ba = &Link{From: b, To: a, Iface: iface, Latency: latency, toIdx: w.idx[a]}
	w.links[linkKey{a, b}] = ab
	w.links[linkKey{b, a}] = ba
	return ab, ba
}

// LinkBetween returns the unidirectional link from a to b, or nil.
func (e *Env) LinkBetween(a, b NodeID) *Link { return e.w.links[linkKey{a, b}] }

// HasLink reports whether a bidirectional link exists between a and b.
func (e *Env) HasLink(a, b NodeID) bool {
	_, ab := e.w.links[linkKey{a, b}]
	_, ba := e.w.links[linkKey{b, a}]
	return ab && ba
}

// Neighbors returns the IDs of all nodes directly linked from id, sorted
// lexicographically so the result is deterministic regardless of link
// insertion order.
func (e *Env) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for k := range e.w.links {
		if k.from == id {
			out = append(out, k.to)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// nextKey mints the total-order key for an event scheduled by the given
// context: the context index in the high bits, its private emission counter
// below. Keys depend only on the deterministic per-context dispatch
// sequence, never on shard assignment, which is what makes the engine's
// event order identical at any shard count.
func (w *world) nextKey(ctx int32) uint64 {
	w.ctr[ctx]++
	return uint64(ctx)<<ctrBits | w.ctr[ctx]
}

// push routes a scheduled event to the destination shard's queue. During a
// run, cross-shard events go through this shard's outbox and are merged at
// the next window barrier; everything else lands in the heap directly.
func (e *Env) push(ev event, dst int32) {
	if dst == e.shard || !e.w.running {
		e.w.shards[dst].queue.push(ev)
		return
	}
	e.outbox[dst] = append(e.outbox[dst], ev)
}

// Send delivers msg from one node to another over the link between them.
// Delivery is scheduled after the link latency (plus jitter, if configured).
// Send panics if no link exists: sending over a nonexistent interface is a
// topology bug the figure tests must surface loudly.
func (e *Env) Send(from, to NodeID, msg Message) {
	w := e.w
	link := w.links[linkKey{from, to}]
	if link == nil {
		panic(fmt.Sprintf("sim: no link %s -> %s for message %s", from, to, msg.Name()))
	}
	if link.Down || (link.Loss > 0 && e.ctxRand().Float64() < link.Loss) {
		if w.tracer != nil {
			e.trace(e.now, from, to, "drop:"+link.Iface, msg)
		}
		return
	}
	// Fault draws happen in a fixed order (loss, then duplication, then one
	// jitter draw per copy) so a seeded run replays identically.
	copies := 1
	if link.Dup > 0 && e.ctxRand().Float64() < link.Dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		delay := link.Latency
		if link.Jitter > 0 {
			delay += time.Duration(e.ctxRand().Int63n(int64(link.Jitter)))
		}
		// Delivery is the engine's steady state: schedule a typed record
		// rather than a closure so the hot path performs zero heap
		// allocations.
		e.push(event{
			at: e.now + delay, seq: w.nextKey(e.cur), kind: evDeliver,
			ctx: link.toIdx, from: from, to: to, link: link, msg: msg,
		}, w.shardOf[link.toIdx])
	}
}

// dispatch runs one popped event on its shard.
func (e *Env) dispatch(ev *event) {
	e.cur = ev.ctx
	e.curKey = ev.seq
	e.emit = 0
	switch ev.kind {
	case evDeliver:
		dst := e.w.list[ev.ctx]
		if dst == nil {
			return
		}
		if e.w.tracer != nil {
			e.trace(e.now, ev.from, ev.to, ev.link.Iface, ev.msg)
		}
		e.delivered++
		dst.Receive(e, ev.from, ev.link.Iface, ev.msg)
	case evTimerArg:
		ev.argFn(ev.arg)
	default:
		ev.fn()
	}
}

// Note records an application-level message in the trace without delivering
// anything: protocol endpoints call it when they send or decode a message
// that rides encapsulated inside lower layers (a Q.931 Setup inside
// TCP/GTP/Gb, a RAS RRQ inside UDP). This is what lets recorded traces show
// the paper's logical arrows (VMSC -> GK "RAS RRQ") alongside the physical
// encapsulation hops.
func (e *Env) Note(from, to NodeID, iface string, msg Message) {
	e.trace(e.now, from, to, iface, msg)
}

// After schedules fn to run at Now()+d on the scheduling context's shard.
// Nodes use it for protocol timers (paging response timers, PDP activation
// timeouts, RTP packetisation ticks); a timer scheduled during a node's
// dispatch runs on that node's shard. Timers scheduled from outside a run
// belong to the root context and run on shard 0 — in a sharded environment
// their callbacks must only touch shard-0 state (see AfterNode).
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn)
}

func (e *Env) schedule(at time.Duration, fn func()) {
	e.queue.push(event{at: at, seq: e.w.nextKey(e.cur), kind: evTimer, ctx: e.cur, fn: fn})
}

// AfterArg schedules fn(arg) to run at Now()+d. Unlike After it takes a
// plain function plus its argument, so callers with many outstanding timers
// (the MAP dialogue manager) can schedule a package-level function without
// allocating a fresh closure per timer.
func (e *Env) AfterArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.queue.push(event{at: e.now + d, seq: e.w.nextKey(e.cur), kind: evTimerArg, ctx: e.cur, argFn: fn, arg: arg})
}

// AfterNode schedules fn to run at Now()+d on the named node's shard, in
// that node's scheduling context. The callback receives that shard's Env
// view — the one it must use for any Send/After calls, since the caller's
// view may belong to a different shard. Scenario drivers use AfterNode from
// outside a run to script state changes that must be ordered with a
// specific shard's clock (the chaos harness toggling link faults, for
// example). During a run it may only target the calling shard.
func (e *Env) AfterNode(id NodeID, d time.Duration, fn func(*Env)) {
	w := e.w
	i, ok := w.idx[id]
	if !ok {
		panic(fmt.Sprintf("sim: AfterNode of unknown node %q", id))
	}
	dst := w.shardOf[i]
	if w.running && dst != e.shard {
		panic("sim: AfterNode across shards during a run")
	}
	if d < 0 {
		d = 0
	}
	sh := w.shards[dst]
	sh.queue.push(event{at: e.now + d, seq: w.nextKey(i), kind: evTimer, ctx: i,
		fn: func() { fn(sh) }})
}

// NextRTO advances a retransmission timeout one step: binary exponential
// backoff capped at 8x the initial value (TCP-style bounded backoff, so
// large retry budgets keep probing instead of going silent for the rest of
// the run). Every retransmitting plane in the stack paces itself with this
// so budgets compose predictably.
func NextRTO(cur, initial time.Duration) time.Duration {
	next := cur * 2
	if max := initial * 8; next > max {
		return max
	}
	return next
}

// RetryDeadline returns the virtual time between a request's first
// transmission and its retry budget exhausting, for a schedule of retries
// retransmissions paced by NextRTO from the given initial RTO. For budgets
// of three or fewer this is the classic (2^(retries+1)-1)*rto; beyond that
// the cap makes it linear.
func RetryDeadline(rto time.Duration, retries int) time.Duration {
	var total time.Duration
	cur := rto
	for i := 0; i <= retries; i++ {
		total += cur
		cur = NextRTO(cur, rto)
	}
	return total
}

// Run processes events until the queue is empty. It returns the virtual time
// at which the simulation quiesced.
func (e *Env) Run() time.Duration {
	return e.RunUntil(-1)
}

// RunUntil processes events with timestamps <= deadline. A negative deadline
// means run to quiescence. Events scheduled during the run are processed if
// they fall within the deadline. It returns the current virtual time.
//
// On a sharded environment this runs the conservative-lookahead parallel
// loop: see shard.go.
func (e *Env) RunUntil(deadline time.Duration) time.Duration {
	w := e.w
	if w.running {
		panic("sim: re-entrant Run")
	}
	w.running = true
	w.started = true
	defer func() { w.running = false }()
	if len(w.shards) == 1 {
		e.runLocal(deadline)
	} else {
		w.runSharded(deadline)
	}
	return e.now
}

// runLocal is the sequential event loop used by single-shard environments.
func (e *Env) runLocal(deadline time.Duration) {
	for {
		at, ok := e.queue.peekAt()
		if !ok {
			// Idle time still passes: a bounded run leaves the clock at
			// the deadline so time-based state (expiries, TTLs) observes
			// the full interval.
			if deadline >= 0 && deadline > e.now {
				e.now = deadline
			}
			break
		}
		if deadline >= 0 && at > deadline {
			e.now = deadline
			break
		}
		ev, _ := e.queue.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatch(&ev)
	}
	e.cur = 0
}

// Step processes exactly one pending event — the globally earliest by
// (timestamp, key) across all shards — returning false if none remain. Step
// is sequential regardless of the shard count: it is the debugging and
// test-harness interface, not the performance path.
func (e *Env) Step() bool {
	w := e.w
	best := (*Env)(nil)
	var bat time.Duration
	var bseq uint64
	for _, sh := range w.shards {
		at, seq, ok := sh.queue.peekKey()
		if !ok {
			continue
		}
		if best == nil || at < bat || (at == bat && seq < bseq) {
			best, bat, bseq = sh, at, seq
		}
	}
	if best == nil {
		return false
	}
	ev, _ := best.queue.pop()
	// Sequential stepping keeps one logical clock: every shard observes the
	// event's time.
	for _, sh := range w.shards {
		if ev.at > sh.now {
			sh.now = ev.at
		}
	}
	best.dispatch(&ev)
	best.cur = 0
	w.started = true
	return true
}

// Pending returns the number of queued events across all shards.
func (e *Env) Pending() int {
	total := 0
	for _, sh := range e.w.shards {
		total += sh.queue.len()
	}
	return total
}
