package sim

import (
	"time"
)

// Event kinds. Delivery events are the engine's steady state and carry their
// routing inline so dispatch needs no closure; timer events keep the general
// func() path for protocol timers.
const (
	evTimer uint8 = iota
	evTimerArg
	evDeliver
)

// event is a scheduled occurrence. Ties on timestamp break on the event key
// (seq): the scheduling context's index in the high bits, its private
// emission counter below, so the total order is identical at any shard
// count. Events live by value in the queue's arena, never individually on
// the heap: a delivery event is a plain record (from/to/link/msg) and a
// timer event carries its callback.
type event struct {
	at    time.Duration
	seq   uint64
	kind  uint8
	ctx   int32     // context the event dispatches in (destination node, or scheduler for timers)
	fn    func()    // evTimer
	argFn func(any) // evTimerArg
	arg   any       // evTimerArg
	from  NodeID    // evDeliver
	to    NodeID    // evDeliver
	link  *Link     // evDeliver
	msg   Message
}

// eventQueue is an index-based 4-ary min-heap ordered by (at, seq).
//
// Layout: events are stored by value in a slot arena; the heap itself orders
// int32 slot indices, so sift operations move 4-byte indices instead of
// multi-word event records. Freed slots go on a free-list and are reused by
// later pushes, so a steady-state schedule/dispatch cycle performs zero heap
// allocations once the arena has grown to the high-water mark.
//
// A 4-ary heap does the same work as a binary heap in half the tree height,
// and the four children of a node share a cache line of indices — both
// matter here because the event queue is the hottest structure in the
// engine.
type eventQueue struct {
	arena []event // slot storage, indexed by the heap entries
	free  []int32 // arena slots available for reuse
	heap  []int32 // heap-ordered arena indices
}

// alloc returns a free arena slot, growing the arena only when the free-list
// is empty.
func (q *eventQueue) alloc() int32 {
	if n := len(q.free); n > 0 {
		idx := q.free[n-1]
		q.free = q.free[:n-1]
		return idx
	}
	q.arena = append(q.arena, event{})
	return int32(len(q.arena) - 1)
}

// release returns a slot to the free-list, dropping references the event
// held so the arena does not retain callbacks or messages past dispatch.
func (q *eventQueue) release(idx int32) {
	q.arena[idx] = event{}
	q.free = append(q.free, idx)
}

// less orders two arena slots by (at, seq).
func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.arena[a], &q.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push schedules an event value.
func (q *eventQueue) push(ev event) {
	idx := q.alloc()
	q.arena[idx] = ev
	q.heap = append(q.heap, idx)
	q.siftUp(len(q.heap) - 1)
}

// peekAt reports the timestamp of the earliest event, if any.
func (q *eventQueue) peekAt() (time.Duration, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.arena[q.heap[0]].at, true
}

// peekKey reports the full (timestamp, key) order of the earliest event, if
// any — the cross-shard comparison Step uses to find the global minimum.
func (q *eventQueue) peekKey() (time.Duration, uint64, bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	ev := &q.arena[q.heap[0]]
	return ev.at, ev.seq, true
}

// pop removes and returns the earliest event by value. The returned record
// is fully detached: its arena slot is already back on the free-list.
func (q *eventQueue) pop() (event, bool) {
	if len(q.heap) == 0 {
		return event{}, false
	}
	idx := q.heap[0]
	ev := q.arena[idx]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	q.release(idx)
	return ev, true
}

func (q *eventQueue) len() int { return len(q.heap) }

func (q *eventQueue) siftUp(i int) {
	h := q.heap
	moved := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(moved, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = moved
}

func (q *eventQueue) siftDown(i int) {
	h := q.heap
	n := len(h)
	moved := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(h[c], h[best]) {
				best = c
			}
		}
		if !q.less(h[best], moved) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = moved
}
