package sim

import (
	"container/heap"
	"time"
)

// event is a scheduled callback. Ties on timestamp break on insertion
// sequence so the engine is fully deterministic.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue struct {
	h eventHeap
}

func (q *eventQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *eventQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	ev, ok := heap.Pop(&q.h).(*event)
	if !ok {
		return nil
	}
	return ev
}

func (q *eventQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *eventQueue) len() int { return len(q.h) }

type eventHeap []*event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: eventHeap.Push received non-event")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
