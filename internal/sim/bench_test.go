package sim

import (
	"testing"
	"time"
)

// benchMsg is a pointer message so Send boxes no payload: the interface
// value holds the same pointer on every iteration.
type benchMsg struct{}

func (*benchMsg) Name() string { return "bench" }

// sinkNode counts deliveries and does nothing else.
type sinkNode struct {
	id NodeID
	n  int
}

func (s *sinkNode) ID() NodeID                           { return s.id }
func (s *sinkNode) Receive(*Env, NodeID, string, Message) { s.n++ }

func newBenchPair() (*Env, *sinkNode) {
	env := NewEnv(1)
	src := &sinkNode{id: "src"}
	dst := &sinkNode{id: "dst"}
	env.AddNode(src)
	env.AddNode(dst)
	env.Connect("src", "dst", "bench", time.Microsecond)
	return env, dst
}

// BenchmarkSendDeliver measures the steady-state cost of one message
// delivery: Send schedules a typed delivery record, Run pops and dispatches
// it. This is the engine's hot path; it must report 0 allocs/op.
func BenchmarkSendDeliver(b *testing.B) {
	env, dst := newBenchPair()
	msg := &benchMsg{}
	// Warm the arena and heap to their steady-state size.
	env.Send("src", "dst", msg)
	env.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Send("src", "dst", msg)
		env.Run()
	}
	if dst.n != b.N+1 {
		b.Fatalf("delivered %d, want %d", dst.n, b.N+1)
	}
}

// BenchmarkSendDeliverFanout stresses heap depth: each iteration schedules a
// burst of deliveries before draining, so sift operations traverse a real
// tree instead of a single slot.
func BenchmarkSendDeliverFanout(b *testing.B) {
	env, dst := newBenchPair()
	msg := &benchMsg{}
	const burst = 64
	for i := 0; i < burst; i++ {
		env.Send("src", "dst", msg)
	}
	env.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			env.Send("src", "dst", msg)
		}
		env.Run()
	}
	b.StopTimer()
	if want := (b.N + 1) * burst; dst.n != want {
		b.Fatalf("delivered %d, want %d", dst.n, want)
	}
}

// BenchmarkTimerChurn measures schedule/dispatch of After timers against a
// populated heap. The callback is pre-bound, so the only per-iteration work
// is the queue churn itself — slot reuse via the free-list keeps it
// allocation-free.
func BenchmarkTimerChurn(b *testing.B) {
	env := NewEnv(1)
	fired := 0
	fn := func() { fired++ }
	// Park background timers far in the future so churn works against a
	// heap with real depth.
	for i := 0; i < 256; i++ {
		env.After(time.Hour+time.Duration(i)*time.Second, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.After(time.Microsecond, fn)
		env.Step()
	}
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// TestSendDeliverZeroAlloc is the allocation budget for the delivery hot
// path: once the event arena is warm, a Send + Run cycle must not allocate.
func TestSendDeliverZeroAlloc(t *testing.T) {
	env, dst := newBenchPair()
	msg := &benchMsg{}
	env.Send("src", "dst", msg)
	env.Run()
	allocs := testing.AllocsPerRun(200, func() {
		env.Send("src", "dst", msg)
		env.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state delivery allocated %.1f objects/op, want 0", allocs)
	}
	if dst.n == 0 {
		t.Fatal("no messages delivered")
	}
}

// TestTimerChurnZeroAlloc locks in free-list reuse for the timer path with a
// pre-bound callback.
func TestTimerChurnZeroAlloc(t *testing.T) {
	env := NewEnv(1)
	fired := 0
	fn := func() { fired++ }
	env.After(time.Microsecond, fn)
	env.Step()
	allocs := testing.AllocsPerRun(200, func() {
		env.After(time.Microsecond, fn)
		env.Step()
	})
	if allocs != 0 {
		t.Fatalf("timer churn allocated %.1f objects/op, want 0", allocs)
	}
}
