package sim

import (
	"fmt"
	"testing"
	"time"
)

// captureTracer records every Trace call as "iface:msg" strings.
type captureTracer struct {
	lines []string
}

func (c *captureTracer) Trace(at time.Duration, from, to NodeID, iface string, msg Message) {
	c.lines = append(c.lines, fmt.Sprintf("%s:%s", iface, msg.Name()))
}

// TestLinkFaultSemantics is the table-driven contract for Loss/Down/Dup
// interplay on a single link: what gets delivered, what gets dropped, and
// what the tracer records.
func TestLinkFaultSemantics(t *testing.T) {
	cases := []struct {
		name      string
		loss      float64
		dup       float64
		down      bool
		sent      int
		wantGot   int    // exact delivery count
		wantTrace string // expected first trace line, "" to skip
	}{
		{name: "clean", sent: 3, wantGot: 3, wantTrace: "test:m"},
		{name: "loss-1-drops-all", loss: 1, sent: 3, wantGot: 0, wantTrace: "drop:test:m"},
		{name: "down-drops-all", down: true, sent: 3, wantGot: 0, wantTrace: "drop:test:m"},
		{name: "down-wins-over-clean-loss", down: true, loss: 0, sent: 2, wantGot: 0, wantTrace: "drop:test:m"},
		{name: "dup-1-doubles", dup: 1, sent: 3, wantGot: 6, wantTrace: "test:m"},
		{name: "down-wins-over-dup", down: true, dup: 1, sent: 3, wantGot: 0, wantTrace: "drop:test:m"},
		{name: "loss-1-wins-over-dup", loss: 1, dup: 1, sent: 3, wantGot: 0, wantTrace: "drop:test:m"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, _, b := newPair(t, time.Millisecond)
			tr := &captureTracer{}
			env.SetTracer(tr)
			link := env.LinkBetween("a", "b")
			link.Loss = tc.loss
			link.Dup = tc.dup
			link.Down = tc.down
			for i := 0; i < tc.sent; i++ {
				env.Send("a", "b", testMsg{"m"})
			}
			env.Run()
			if len(b.got) != tc.wantGot {
				t.Fatalf("delivered %d messages, want %d", len(b.got), tc.wantGot)
			}
			if tc.wantTrace != "" {
				if len(tr.lines) == 0 {
					t.Fatalf("no trace lines recorded, want first %q", tc.wantTrace)
				}
				if tr.lines[0] != tc.wantTrace {
					t.Fatalf("first trace line %q, want %q", tr.lines[0], tc.wantTrace)
				}
			}
		})
	}
}

// TestDupLinkDuplicatesProportionally checks the duplication probability is
// honoured statistically.
func TestDupLinkDuplicatesProportionally(t *testing.T) {
	env, _, b := newPair(t, time.Millisecond)
	env.LinkBetween("a", "b").Dup = 0.5
	const sent = 2000
	for i := 0; i < sent; i++ {
		env.Send("a", "b", testMsg{"m"})
	}
	env.Run()
	got := len(b.got)
	if got < sent+sent*4/10 || got > sent+sent*6/10 {
		t.Fatalf("delivered %d of %d sent with 50%% duplication, want ~%d", got, sent, sent+sent/2)
	}
}

// TestDupDeliveriesGetOwnJitter checks that each duplicated copy draws its
// own jitter, so copies arrive at distinct times (with overwhelming
// probability under a fixed seed).
func TestDupDeliveriesGetOwnJitter(t *testing.T) {
	env, _, b := newPair(t, time.Millisecond)
	link := env.LinkBetween("a", "b")
	link.Dup = 1
	link.Jitter = time.Millisecond
	env.Send("a", "b", testMsg{"m"})
	env.Run()
	if len(b.got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(b.got))
	}
	if b.gotAt[0] == b.gotAt[1] {
		t.Fatalf("both copies arrived at %v; want distinct jitter draws", b.gotAt[0])
	}
}

// TestFaultyLinkSeedStable checks drop/dup patterns are a pure function of
// the seed: two runs with the same seed produce identical delivery
// sequences, and a different seed produces a different one.
func TestFaultyLinkSeedStable(t *testing.T) {
	run := func(seed int64) []time.Duration {
		env := NewEnv(seed)
		a := &recorderNode{id: "a"}
		b := &recorderNode{id: "b"}
		env.AddNode(a)
		env.AddNode(b)
		ab, _ := env.Connect("a", "b", "test", time.Millisecond)
		ab.Loss = 0.3
		ab.Dup = 0.3
		ab.Jitter = time.Millisecond
		for i := 0; i < 200; i++ {
			env.Send("a", "b", testMsg{"m"})
		}
		env.Run()
		return b.gotAt
	}
	first := run(7)
	again := run(7)
	if len(first) != len(again) {
		t.Fatalf("same seed delivered %d then %d messages", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("same seed: delivery %d at %v then %v", i, first[i], again[i])
		}
	}
	other := run(8)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical delivery sequences")
	}
}
