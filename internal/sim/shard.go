package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

const durMax = time.Duration(math.MaxInt64)

// traceRec is one buffered trace emission from a sharded run. Records sort
// by (at, key, emit): the dispatched event's timestamp and total-order key,
// then the emission index within that dispatch — exactly the order a
// single-shard run would have handed the same records to the tracer, which
// is what makes sharded traces byte-identical to sequential ones.
type traceRec struct {
	at    time.Duration
	key   uint64
	emit  uint32
	from  NodeID
	to    NodeID
	iface string
	msg   Message
}

// trace hands one record to the tracer. Single-shard runs (and calls from
// outside a run) trace directly; shard workers buffer, and the records are
// sorted into the global event order and flushed when RunUntil returns.
func (e *Env) trace(at time.Duration, from, to NodeID, iface string, msg Message) {
	w := e.w
	if w.tracer == nil {
		return
	}
	if len(w.shards) == 1 || !w.running {
		w.tracer.Trace(at, from, to, iface, msg)
		return
	}
	e.trbuf = append(e.trbuf, traceRec{at: at, key: e.curKey, emit: e.emit,
		from: from, to: to, iface: iface, msg: msg})
	e.emit++
}

// crossLookahead returns the minimum latency of any link whose endpoints
// live on different shards — the conservative lookahead bound. A simulation
// with no cross-shard links returns durMax (shards are fully independent).
// A zero-latency cross-shard link makes conservative windows degenerate, so
// it panics with partitioning guidance instead of silently serializing.
func (w *world) crossLookahead() time.Duration {
	min := durMax
	for _, l := range w.links {
		if w.shardOf[w.idx[l.From]] == w.shardOf[l.toIdx] {
			continue
		}
		if l.Latency <= 0 {
			panic(fmt.Sprintf(
				"sim: zero-latency cross-shard link %s -> %s (%s); co-locate both endpoints on one shard or give the link a latency",
				l.From, l.To, l.Iface))
		}
		if l.Latency < min {
			min = l.Latency
		}
	}
	return min
}

// runSharded is the conservative-lookahead parallel event loop.
//
// Each round, the coordinator finds the globally earliest pending event at
// minAt and grants every shard the window [.., minAt+L) where L is the
// minimum cross-shard link latency: any message sent during the round is
// sent at a time >= minAt and arrives after >= L more, so nothing can land
// inside the window — shards are free to process it in parallel without
// ever seeing an event out of order. Cross-shard sends buffer in per-shard
// outboxes and merge into the destination heaps at the barrier between
// rounds.
func (w *world) runSharded(deadline time.Duration) {
	lookahead := w.crossLookahead()
	starts := make([]chan time.Duration, len(w.shards))
	done := make(chan struct{}, len(w.shards))
	for i, sh := range w.shards {
		starts[i] = make(chan time.Duration, 1)
		go func(sh *Env, start <-chan time.Duration) {
			for limit := range start {
				sh.runWindow(limit)
				done <- struct{}{}
			}
		}(sh, starts[i])
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	stoppedEarly := false
	for {
		minAt := durMax
		pending := false
		for _, sh := range w.shards {
			if at, ok := sh.queue.peekAt(); ok && (!pending || at < minAt) {
				pending = true
				minAt = at
			}
		}
		if !pending {
			break
		}
		if deadline >= 0 && minAt > deadline {
			stoppedEarly = true
			break
		}
		// The window bound is exclusive; a bounded run may process events
		// at the deadline itself, hence deadline+1.
		limit := durMax
		if lookahead < durMax-minAt {
			limit = minAt + lookahead
		}
		if deadline >= 0 && limit > deadline+1 {
			limit = deadline + 1
		}
		for _, ch := range starts {
			ch <- limit
		}
		for range w.shards {
			<-done
		}
		w.mergeOutboxes()
	}

	// Synchronize the clocks so Now() reports the same global time a
	// sequential run would: the last processed event's time, advanced to
	// the deadline when a bounded run went idle or stopped on a future
	// event.
	maxNow := time.Duration(0)
	for _, sh := range w.shards {
		if sh.now > maxNow {
			maxNow = sh.now
		}
	}
	if deadline >= 0 && (stoppedEarly || deadline > maxNow) {
		maxNow = deadline
	}
	for _, sh := range w.shards {
		sh.now = maxNow
		sh.cur = 0
	}
	w.flushTraces()
}

// runWindow processes this shard's events strictly earlier than limit.
func (e *Env) runWindow(limit time.Duration) {
	for {
		at, ok := e.queue.peekAt()
		if !ok || at >= limit {
			break
		}
		ev, _ := e.queue.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatch(&ev)
	}
	e.cur = 0
}

// mergeOutboxes drains every shard's cross-shard outboxes into the
// destination heaps. It runs on the coordinator goroutine at the barrier
// between rounds, when all workers are parked.
func (w *world) mergeOutboxes() {
	for _, src := range w.shards {
		for d := range src.outbox {
			box := src.outbox[d]
			if len(box) == 0 {
				continue
			}
			q := &w.shards[d].queue
			for i := range box {
				q.push(box[i])
				box[i] = event{} // drop message refs so the outbox doesn't retain them
			}
			src.outbox[d] = box[:0]
		}
	}
}

// flushTraces sorts the buffered per-shard trace records into the global
// event order and hands them to the tracer.
func (w *world) flushTraces() {
	if w.tracer == nil {
		return
	}
	total := 0
	for _, sh := range w.shards {
		total += len(sh.trbuf)
	}
	if total == 0 {
		return
	}
	all := make([]traceRec, 0, total)
	for _, sh := range w.shards {
		all = append(all, sh.trbuf...)
		for i := range sh.trbuf {
			sh.trbuf[i] = traceRec{}
		}
		sh.trbuf = sh.trbuf[:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.emit < b.emit
	})
	for i := range all {
		r := &all[i]
		w.tracer.Trace(r.at, r.from, r.to, r.iface, r.msg)
	}
}
