package ipnet

import (
	"net/netip"
	"testing"
	"time"

	"vgprs/internal/sim"
)

type host struct {
	id  sim.NodeID
	got []Packet
}

func (h *host) ID() sim.NodeID { return h.id }

func (h *host) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	if pkt, ok := msg.(Packet); ok {
		h.got = append(h.got, pkt)
	}
}

func buildLAN(t *testing.T) (*sim.Env, *Router, *host, *host) {
	t.Helper()
	env := sim.NewEnv(1)
	r := NewRouter("R")
	a := &host{id: "A"}
	b := &host{id: "B"}
	env.AddNode(r)
	env.AddNode(a)
	env.AddNode(b)
	env.Connect("R", "A", "IP", time.Millisecond)
	env.Connect("R", "B", "IP", time.Millisecond)
	r.AddHost(MustAddr("10.0.0.1"), "A")
	r.AddHost(MustAddr("10.0.0.2"), "B")
	return env, r, a, b
}

func TestRouterForwardsByHostEntry(t *testing.T) {
	env, _, _, b := buildLAN(t)
	env.Send("A", "R", Packet{
		Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"),
		Proto: ProtoUDP, Payload: []byte("hi"),
	})
	env.Run()
	if len(b.got) != 1 || string(b.got[0].Payload) != "hi" {
		t.Fatalf("b.got = %v", b.got)
	}
}

func TestRouterPrefixRoute(t *testing.T) {
	env, r, _, b := buildLAN(t)
	r.AddPrefix(netip.MustParsePrefix("192.168.0.0/16"), "B")
	env.Send("A", "R", Packet{
		Src: MustAddr("10.0.0.1"), Dst: MustAddr("192.168.55.9"), Proto: ProtoUDP,
	})
	env.Run()
	if len(b.got) != 1 {
		t.Fatalf("prefix route delivered %d packets", len(b.got))
	}
}

func TestRouterHostEntryBeatsPrefix(t *testing.T) {
	env, r, a, b := buildLAN(t)
	r.AddPrefix(netip.MustParsePrefix("10.0.0.0/8"), "B")
	// 10.0.0.1 is a host entry for A; the /8 must not shadow it.
	env.Send("B", "R", Packet{
		Src: MustAddr("10.0.0.2"), Dst: MustAddr("10.0.0.1"), Proto: ProtoUDP,
	})
	env.Run()
	if len(a.got) != 1 || len(b.got) != 0 {
		t.Fatalf("a=%d b=%d", len(a.got), len(b.got))
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	env, r, _, _ := buildLAN(t)
	env.Send("A", "R", Packet{
		Src: MustAddr("10.0.0.1"), Dst: MustAddr("203.0.113.9"), Proto: ProtoUDP,
	})
	env.Run()
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d", r.Dropped())
	}
}

func TestRouterDropsHairpin(t *testing.T) {
	env, r, a, _ := buildLAN(t)
	// A sends a packet whose next hop is A itself: dropped, not looped.
	env.Send("A", "R", Packet{
		Src: MustAddr("10.0.0.2"), Dst: MustAddr("10.0.0.1"), Proto: ProtoUDP,
	})
	env.Run()
	if len(a.got) != 0 || r.Dropped() != 1 {
		t.Fatalf("a=%d dropped=%d", len(a.got), r.Dropped())
	}
}

func TestRouterRemoveHost(t *testing.T) {
	env, r, _, b := buildLAN(t)
	r.RemoveHost(MustAddr("10.0.0.2"))
	env.Send("A", "R", Packet{
		Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"), Proto: ProtoUDP,
	})
	env.Run()
	if len(b.got) != 0 || r.Dropped() != 1 {
		t.Fatalf("b=%d dropped=%d", len(b.got), r.Dropped())
	}
}

func TestRouterLookup(t *testing.T) {
	_, r, _, _ := buildLAN(t)
	if next, ok := r.Lookup(MustAddr("10.0.0.1")); !ok || next != "A" {
		t.Fatalf("Lookup = %v/%v", next, ok)
	}
	if _, ok := r.Lookup(MustAddr("1.1.1.1")); ok {
		t.Fatal("Lookup of unroutable address succeeded")
	}
}

func TestRouterIgnoresForeignMessages(t *testing.T) {
	env, r, _, _ := buildLAN(t)
	env.Send("A", "R", foreignMsg{})
	env.Run()
	if r.Dropped() != 0 {
		t.Fatal("foreign message counted as drop")
	}
}

type foreignMsg struct{}

func (foreignMsg) Name() string { return "X" }
