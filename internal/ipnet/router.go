package ipnet

import (
	"net/netip"
	"sync"

	"vgprs/internal/sim"
)

// Router is a simple IP forwarding node for the external packet network (the
// PSDN / H.323 LAN of Figs 1-2): hosts register their addresses and the
// router delivers Packets by destination address. A default route catches
// addresses with no host entry (the GGSN registers the PDP address ranges it
// serves this way).
type Router struct {
	id sim.NodeID

	mu       sync.Mutex
	hosts    map[netip.Addr]sim.NodeID
	prefixes []prefixRoute
	dropped  uint64
}

type prefixRoute struct {
	prefix netip.Prefix
	next   sim.NodeID
}

var _ sim.Node = (*Router)(nil)

// NewRouter returns an empty router.
func NewRouter(id sim.NodeID) *Router {
	return &Router{id: id, hosts: make(map[netip.Addr]sim.NodeID)}
}

// ID implements sim.Node.
func (r *Router) ID() sim.NodeID { return r.id }

// AddHost binds an address to a directly attached node.
func (r *Router) AddHost(addr netip.Addr, node sim.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hosts[addr] = node
}

// RemoveHost unbinds an address.
func (r *Router) RemoveHost(addr netip.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.hosts, addr)
}

// AddPrefix routes a whole prefix (e.g. the GGSN's dynamic PDP range) to a
// next-hop node. Longest-registered wins is not implemented; first match in
// insertion order applies, which suffices for the disjoint ranges used here.
func (r *Router) AddPrefix(prefix netip.Prefix, node sim.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prefixes = append(r.prefixes, prefixRoute{prefix: prefix, next: node})
}

// Dropped returns the number of packets with no route.
func (r *Router) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Lookup resolves the next hop for an address.
func (r *Router) Lookup(addr netip.Addr) (sim.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if node, ok := r.hosts[addr]; ok {
		return node, true
	}
	for _, pr := range r.prefixes {
		if pr.prefix.Contains(addr) {
			return pr.next, true
		}
	}
	return "", false
}

// Receive implements sim.Node: forward by destination address.
func (r *Router) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	pkt, ok := msg.(Packet)
	if !ok {
		return
	}
	next, found := r.Lookup(pkt.Dst)
	if !found || next == from {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return
	}
	// Forward the original interface value: the packet is relayed
	// unchanged, so re-boxing the Packet struct would be a pure allocation.
	env.Send(r.id, next, msg)
}
