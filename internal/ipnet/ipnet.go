// Package ipnet models the IP packets that ride through the GPRS core and
// the external H.323 network: a compact (src, dst, proto, ports, payload)
// datagram with a binary codec. H.225/RAS signalling rides as TCP/UDP-like
// payloads inside these packets; RTP media rides as UDP payloads; the GGSN
// routes packets between the Gi side (H.323 network) and GTP tunnels by
// destination address (paper Fig 3, links (1)-(3) and (8)).
package ipnet

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"

	"vgprs/internal/sim"
	"vgprs/internal/wire"
)

// ErrBadPacket is returned when a packet fails to decode.
var ErrBadPacket = errors.New("ipnet: malformed packet")

// Proto is the layer-4 protocol discriminator.
type Proto uint8

// Protocols used by the reproduction.
const (
	ProtoTCP Proto = 6  // H.225/Q.931 call signalling, RAS responses
	ProtoUDP Proto = 17 // RAS and RTP
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return "Proto(" + strconv.Itoa(int(p)) + ")"
	}
}

// Well-known ports of the H.323 suite.
const (
	PortRAS   = 1719 // H.225.0 RAS (gatekeeper discovery/registration)
	PortQ931  = 1720 // H.225.0 call signalling
	PortRTP   = 5004 // default RTP media port
	PortGTPv0 = 3386 // GTP (GSM 09.60)
)

// Packet is an IP datagram.
type Packet struct {
	Src     netip.Addr
	Dst     netip.Addr
	Proto   Proto
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Name implements sim.Message; the name carries the protocol and ports so
// protocol-stack traces (Fig 3 validation) show the layering. Hand-rolled
// formatting: Name is called per traced message.
func (p Packet) Name() string {
	var b [32]byte
	out := append(b[:0], "IP/"...)
	out = append(out, p.Proto.String()...)
	out = append(out, ':')
	out = strconv.AppendUint(out, uint64(p.SrcPort), 10)
	out = append(out, "->"...)
	out = strconv.AppendUint(out, uint64(p.DstPort), 10)
	return string(out)
}

var _ sim.Message = Packet{}

// addrLen returns the encoded size of a length-prefixed address field.
func addrLen(a netip.Addr) int {
	switch {
	case !a.IsValid():
		return 1
	case a.Is4():
		return 5
	default:
		return 17
	}
}

// EncodedLen returns the exact size of the packet's wire form, so callers
// can size buffers without marshalling twice.
func (p Packet) EncodedLen() int {
	return addrLen(p.Src) + addrLen(p.Dst) + 5 + 2 + len(p.Payload)
}

// AppendTo appends the packet's wire form to dst and returns the extended
// slice.
func (p Packet) AppendTo(dst []byte) []byte {
	w := wire.Wrap(dst)
	w.Addr(p.Src)
	w.Addr(p.Dst)
	w.U8(uint8(p.Proto))
	w.U16(p.SrcPort)
	w.U16(p.DstPort)
	w.Bytes16(p.Payload)
	return w.Bytes()
}

// Marshal encodes the packet into an exact-size fresh buffer.
func (p Packet) Marshal() []byte {
	return p.AppendTo(make([]byte, 0, p.EncodedLen()))
}

// Unmarshal decodes a packet. The returned Payload aliases b rather than
// copying it: packets are decoded on every hop of the GPRS tunnel path, and
// the simulation's buffers are write-once (pooled writers hand out exact
// copies), so the alias is safe and saves a per-hop payload allocation.
// Callers that mutate or recycle b must copy Payload first.
func Unmarshal(b []byte) (Packet, error) {
	var r wire.Reader
	r.Reset(b)
	var p Packet
	p.Src = r.Addr()
	p.Dst = r.Addr()
	p.Proto = Proto(r.U8())
	p.SrcPort = r.U16()
	p.DstPort = r.U16()
	if n := int(r.U16()); n > 0 {
		p.Payload = r.View(n)
	}
	if err := r.Err(); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	if r.Remaining() != 0 {
		return Packet{}, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, r.Remaining())
	}
	return p, nil
}

// Reply returns a packet template answering p: swapped addresses and ports,
// same protocol.
func (p Packet) Reply(payload []byte) Packet {
	return Packet{
		Src: p.Dst, Dst: p.Src,
		Proto:   p.Proto,
		SrcPort: p.DstPort, DstPort: p.SrcPort,
		Payload: payload,
	}
}

// Pool allocates dynamic IP addresses from a contiguous range starting at a
// base address — the GGSN's dynamic PDP address allocation (paper step 1.3
// assumes dynamic allocation). Addresses are represented internally as
// 32-bit offsets from the base with a bitset membership check, so a
// million-address pool costs one bit per address instead of a map entry:
// the pool is sized to the subscriber population in the scale experiments.
type Pool struct {
	base uint32   // numeric value of the base address (offset 0, never issued)
	cap  uint32   // number of allocatable addresses (offsets 1..cap)
	next uint32   // high-water mark of sequentially issued offsets
	free []uint32 // LIFO stack of released offsets
	used []uint64 // bitset over offsets; bit set = currently allocated
	n    int
}

// NewPool returns a pool allocating prefix.1 through prefix.254, where
// prefix is a dotted base like "10.1.2.0".
func NewPool(prefix string) (*Pool, error) {
	return NewPoolSize(prefix, 0)
}

// NewPoolSize returns a pool of n addresses counting up from the base
// (carrying across octets, so a base of "10.0.0.0" with n=1000 spans
// 10.0.0.1 .. 10.0.3.232). Zero or negative n means the classic 254-host
// /24.
func NewPoolSize(prefix string, n int) (*Pool, error) {
	addr, err := netip.ParseAddr(prefix)
	if err != nil {
		return nil, fmt.Errorf("ipnet: bad pool prefix: %w", err)
	}
	if !addr.Is4() {
		return nil, fmt.Errorf("ipnet: pool prefix %s is not IPv4", prefix)
	}
	if n <= 0 {
		n = 254
	}
	a4 := addr.As4()
	base := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	if uint64(base)+uint64(n) > 0xFFFFFFFF {
		return nil, fmt.Errorf("ipnet: pool %s+%d overflows the IPv4 space", prefix, n)
	}
	return &Pool{
		base: base,
		cap:  uint32(n),
		used: make([]uint64, (n+64)/64+1),
	}, nil
}

// ErrPoolExhausted is returned when no addresses remain.
var ErrPoolExhausted = errors.New("ipnet: address pool exhausted")

func (p *Pool) addrAt(off uint32) netip.Addr {
	v := p.base + off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Allocate returns a free address, preferring the most recently released.
func (p *Pool) Allocate() (netip.Addr, error) {
	var off uint32
	if n := len(p.free); n > 0 {
		off = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		if p.next >= p.cap {
			return netip.Addr{}, ErrPoolExhausted
		}
		p.next++
		off = p.next
	}
	p.used[off/64] |= 1 << (off % 64)
	p.n++
	return p.addrAt(off), nil
}

// Release returns an address to the pool. Releasing an address not allocated
// from this pool is a no-op.
func (p *Pool) Release(addr netip.Addr) {
	if !addr.Is4() {
		return
	}
	a4 := addr.As4()
	v := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	off := v - p.base
	if v < p.base || off == 0 || off > p.cap || p.used[off/64]&(1<<(off%64)) == 0 {
		return
	}
	p.used[off/64] &^= 1 << (off % 64)
	p.n--
	p.free = append(p.free, off)
}

// InUse returns the number of allocated addresses.
func (p *Pool) InUse() int { return p.n }

// MustAddr parses an address, panicking on error; for fixture topologies.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
