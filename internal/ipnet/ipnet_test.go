package ipnet

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Src: MustAddr("10.1.2.3"), Dst: MustAddr("192.168.0.9"),
		Proto: ProtoTCP, SrcPort: 40000, DstPort: PortQ931,
		Payload: []byte("setup"),
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.Proto != p.Proto ||
		got.SrcPort != p.SrcPort || got.DstPort != p.DstPort ||
		!bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip %+v -> %+v", p, got)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	prop := func(a, b [4]byte, sp, dp uint16, tcp bool, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		proto := ProtoUDP
		if tcp {
			proto = ProtoTCP
		}
		p := Packet{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			Proto: proto, SrcPort: sp, DstPort: dp, Payload: payload,
		}
		got, err := Unmarshal(p.Marshal())
		return err == nil && got.Src == p.Src && got.Dst == p.Dst &&
			got.SrcPort == sp && got.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{4, 1}); !errors.Is(err, ErrBadPacket) {
		t.Errorf("short err = %v", err)
	}
	p := Packet{Src: MustAddr("1.2.3.4"), Dst: MustAddr("5.6.7.8"), Proto: ProtoUDP}
	if _, err := Unmarshal(append(p.Marshal(), 0)); !errors.Is(err, ErrBadPacket) {
		t.Errorf("trailing err = %v", err)
	}
}

func TestName(t *testing.T) {
	p := Packet{Proto: ProtoUDP, SrcPort: 1719, DstPort: 1719}
	if p.Name() != "IP/UDP:1719->1719" {
		t.Fatalf("Name = %q", p.Name())
	}
	if Proto(3).String() != "Proto(3)" {
		t.Fatal("unknown proto string")
	}
}

func TestReply(t *testing.T) {
	p := Packet{
		Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 1111, DstPort: 1720,
	}
	r := p.Reply([]byte("ok"))
	if r.Src != p.Dst || r.Dst != p.Src || r.SrcPort != p.DstPort || r.DstPort != p.SrcPort {
		t.Fatalf("reply = %+v", r)
	}
	if string(r.Payload) != "ok" || r.Proto != ProtoTCP {
		t.Fatalf("reply payload/proto = %+v", r)
	}
}

func TestPoolAllocateRelease(t *testing.T) {
	pool, err := NewPool("10.9.8.0")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("duplicate allocation")
	}
	if a1.String() != "10.9.8.1" {
		t.Fatalf("first address = %s", a1)
	}
	if pool.InUse() != 2 {
		t.Fatalf("InUse = %d", pool.InUse())
	}
	pool.Release(a1)
	if pool.InUse() != 1 {
		t.Fatalf("InUse after release = %d", pool.InUse())
	}
	a3, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Fatalf("expected reuse of %s, got %s", a1, a3)
	}
}

func TestPoolExhaustion(t *testing.T) {
	pool, err := NewPool("10.0.0.0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 254; i++ {
		if _, err := pool.Allocate(); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := pool.Allocate(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestPoolReleaseForeignAddrNoop(t *testing.T) {
	pool, err := NewPool("10.0.0.0")
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(MustAddr("1.1.1.1"))
	if pool.InUse() != 0 {
		t.Fatal("foreign release corrupted pool")
	}
}

func TestNewPoolErrors(t *testing.T) {
	if _, err := NewPool("not-an-ip"); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if _, err := NewPool("::1"); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
}

func TestPoolNeverDuplicatesProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		pool, err := NewPool("10.5.5.0")
		if err != nil {
			return false
		}
		var held []netip.Addr
		seen := make(map[netip.Addr]bool)
		for _, alloc := range ops {
			if alloc {
				a, err := pool.Allocate()
				if err != nil {
					continue
				}
				if seen[a] {
					return false // duplicate while held
				}
				seen[a] = true
				held = append(held, a)
			} else if len(held) > 0 {
				a := held[len(held)-1]
				held = held[:len(held)-1]
				pool.Release(a)
				delete(seen, a)
			}
		}
		return pool.InUse() == len(held)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMustAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAddr("nope")
}
