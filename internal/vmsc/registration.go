package vmsc

import (
	"net/netip"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/msc"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
)

// gbUL builds an uplink Gb frame for a virtual MS.
func gbUL(tlli gsmid.TLLI, ms sim.NodeID, cell gsmid.CGI, pdu []byte) gb.ULUnitdata {
	return gb.ULUnitdata{TLLI: tlli, MS: ms, Cell: cell, PDU: pdu}
}

// onVLROutcome continues the Fig 4 registration after the VLR accepted or
// rejected the location update (end of step 1.2). On success the VMSC runs
// steps 1.3-1.5 (GPRS attach, signalling-PDP activation, gatekeeper
// registration) before accepting toward the MS (step 1.6).
func (v *VMSC) onVLROutcome(env *sim.Env, reg msc.Registration) {
	if !reg.OK() {
		v.stats.RegisterFailers++
		env.Send(v.cfg.ID, reg.BSC, gsm.LocationUpdateReject{
			Leg: gsm.LegA, MS: reg.MS, Cause: uint8(reg.Cause),
		})
		return
	}

	entry := v.getOrCreateEntry(reg.IMSI)
	entry.tmsi = reg.TMSI
	entry.lai = reg.LAI
	entry.bsc = reg.BSC
	if entry.ms != reg.MS {
		if entry.ms != "" {
			v.byMS.Delete(entry.ms)
		}
		entry.ms = reg.MS
		v.byMS.Put(reg.MS, entry.self)
	}
	v.setMSISDN(entry, reg.MSISDN)

	if entry.registered {
		// Re-registration (location update due to movement, paper §3
		// closing remark): the GPRS and H.323 state already exists.
		v.acceptLU(env, entry)
		return
	}

	if entry.client == nil {
		entry.client = v.newClient(entry)
	}

	// The chain below (attach → PDP → gatekeeper) threads the entry itself
	// through package-level completion callbacks; entry.regEnv carries the
	// env between steps.
	entry.regEnv = env
	entry.regAnnounce = true

	// Step 1.3a: GPRS attach, just like a GPRS MS.
	if err := entry.client.AttachArg(env, regAttachDone, entry); err != nil {
		v.failRegistration(env, entry, "gprs-attach")
	}
}

// acceptLU answers the radio path with Location Update Accept (step 1.6).
func (v *VMSC) acceptLU(env *sim.Env, entry *msEntry) {
	env.Send(v.cfg.ID, entry.bsc, gsm.LocationUpdateAccept{
		Leg: gsm.LegA, MS: entry.ms, TMSI: entry.tmsi,
	})
}

// failRegistration reports a failed stage and rejects toward the MS.
func (v *VMSC) failRegistration(env *sim.Env, entry *msEntry, stage string) {
	v.stats.RegisterFailers++
	if v.cfg.Hooks.OnMSRegisterFailed != nil {
		v.cfg.Hooks.OnMSRegisterFailed(entry.imsi, stage)
	}
	env.Send(v.cfg.ID, entry.bsc, gsm.LocationUpdateReject{
		Leg: gsm.LegA, MS: entry.ms, Cause: 1,
	})
}

// regAttachDone continues the registration chain after GPRS attach.
func regAttachDone(arg any, ok bool) {
	entry := arg.(*msEntry)
	v, env := entry.v, entry.regEnv
	if !ok {
		v.failRegistration(env, entry, "gprs-attach")
		return
	}
	v.activateSignallingPDP(env, entry)
}

// activateSignallingPDP runs step 1.3b: a low-priority PDP context dedicated
// to H.323 signalling.
func (v *VMSC) activateSignallingPDP(env *sim.Env, entry *msEntry) {
	err := entry.client.ActivatePDPArg(env, NSAPISignalling, gtp.SignallingQoS(),
		v.staticAddrFor(entry.imsi), regSigPDPDone, entry)
	if err != nil {
		v.failRegistration(env, entry, "pdp-activation")
	}
}

// regSigPDPDone continues the chain once the signalling context is up.
func regSigPDPDone(arg any, addr netip.Addr, ok bool) {
	entry := arg.(*msEntry)
	v, env := entry.v, entry.regEnv
	if !ok {
		v.failRegistration(env, entry, "pdp-activation")
		return
	}
	entry.addr = addr
	v.setupEndpoint(entry)
	if v.cfg.Dir != nil {
		v.cfg.Dir.Bind(addr, v.cfg.ID)
	}
	v.registerWithGatekeeper(env, entry, true)
}

// registerWithGatekeeper runs steps 1.4-1.5: RAS RRQ carrying the MS's
// MSISDN as alias and the PDP address as transport address; the RCF
// completes the MS table entry. announce controls whether completion
// answers the radio path (initial registration) or stays silent (keepalive
// re-registration).
func (v *VMSC) registerWithGatekeeper(env *sim.Env, entry *msEntry, announce bool) {
	entry.regEnv = env
	entry.regAnnounce = announce
	v.nextRAS++
	seq := v.nextRAS
	v.rasTransmit(env, entry, seq, h323.RRQ{
		Seq: seq, Alias: entry.msisdn,
		SignalAddr: entry.addr, SignalPort: ipnet.PortQ931,
	}, regRRQDone, nil)
}

// regRRQDone completes the registration when the gatekeeper answers (or the
// RAS transaction times out).
func regRRQDone(env *sim.Env, p *rasPending, msg sim.Message) {
	v := p.v
	entry := v.ents.Get(p.entryH)
	if entry == nil {
		return // subscriber purged while the RRQ was in flight
	}
	if _, confirmed := msg.(h323.RCF); !confirmed { // RRJ or timeout
		if entry.regAnnounce {
			v.failRegistration(env, entry, "gatekeeper-registration")
		}
		return
	}
	entry.registered = true
	if entry.msisdn != "" {
		v.byMSISDN.Put(entry.msisdn.Pack(), entry.self)
	}
	v.stats.Registrations++
	if v.cfg.DeactivateIdlePDP {
		// The §6 ablation: drop the signalling context while idle
		// (TR 23.923-style resource saving).
		v.deactivateSignalling(env, entry, func() {
			v.finishRegistration(env, entry)
		})
		return
	}
	v.finishRegistration(env, entry)
}

func (v *VMSC) finishRegistration(env *sim.Env, entry *msEntry) {
	if entry.regAnnounce {
		v.acceptLU(env, entry)
	}
	if v.cfg.Hooks.OnMSRegistered != nil {
		v.cfg.Hooks.OnMSRegistered(entry.imsi, entry.addr)
	}
}

func (v *VMSC) deactivateSignalling(env *sim.Env, entry *msEntry, done func()) {
	if _, active := entry.client.Context(NSAPISignalling); !active {
		done()
		return
	}
	if err := entry.client.DeactivatePDP(env, NSAPISignalling, done); err != nil {
		done()
	}
}

// ensureSignallingPDP re-activates the signalling context in
// DeactivateIdlePDP mode before a call can proceed.
func (v *VMSC) ensureSignallingPDP(env *sim.Env, entry *msEntry, done func(ok bool)) {
	if _, active := entry.client.Context(NSAPISignalling); active {
		done(true)
		return
	}
	err := entry.client.ActivatePDP(env, NSAPISignalling, gtp.SignallingQoS(),
		v.staticAddrFor(entry.imsi),
		func(addr netip.Addr, ok bool) {
			if ok {
				entry.addr = addr
			}
			done(ok)
		})
	if err != nil {
		done(false)
	}
}

// setMSISDN records the subscriber's directory number; the Registrar learns
// it from the VLR profile only indirectly, so the VMSC resolves it during
// call authorization — and topology builders may pre-provision it so the
// alias is available at registration time.
func (v *VMSC) setMSISDN(entry *msEntry, msisdn gsmid.MSISDN) {
	if msisdn == "" || entry.msisdn == msisdn {
		return
	}
	if entry.msisdn != "" {
		v.byMSISDN.Delete(entry.msisdn.Pack())
	}
	entry.msisdn = msisdn
	v.byMSISDN.Put(msisdn.Pack(), entry.self)
}

// ProvisionMSISDN tells the VMSC a subscriber's MSISDN ahead of
// registration. The paper's VMSC learns it from subscription data; here the
// topology builder provides it so the RRQ of step 1.4 can carry the alias.
func (v *VMSC) ProvisionMSISDN(imsi gsmid.IMSI, msisdn gsmid.MSISDN) {
	v.setMSISDN(v.getOrCreateEntry(imsi), msisdn)
}

// handleDL feeds downlink Gb traffic into the right virtual client.
func (v *VMSC) handleDL(env *sim.Env, dl gb.DLUnitdata) {
	entry := v.entryByMS(dl.MS)
	if entry == nil || entry.client == nil {
		return
	}
	_ = entry.client.HandleDownlink(env, dl.PDU)
}

// handleIMSIDetach deregisters a powering-off MS: the gatekeeper row is
// removed (URQ), the GPRS contexts are detached, and the MS table entry is
// marked unregistered — the reverse of the Fig 4 procedure. The detach
// indication itself is unacknowledged, so failures here only delay garbage
// collection. The row itself stays resident (a powered-off subscriber is
// still this VMSC's), ready for the next power-on.
func (v *VMSC) handleIMSIDetach(env *sim.Env, t gsm.IMSIDetach) {
	entry := v.entryByMS(t.MS)
	if entry == nil || !entry.registered {
		return
	}
	v.deregister(env, entry)
}

// handleCancelLocation deregisters a subscriber whose location update ran
// through another switch: the VLR relays the HLR's cancel so the old VMSC
// releases the gatekeeper alias and GPRS contexts it holds on the MS's
// behalf (paper §5 — the VMSC cleans up when the MS leaves its area). The
// row is purged outright: once the deregistration chain completes, the slab
// slot is freed and every handle minted for it goes stale.
func (v *VMSC) handleCancelLocation(env *sim.Env, from sim.NodeID, m sigmap.CancelLocation) {
	entry := v.entryByIMSI(m.IMSI)
	if entry == nil {
		return
	}
	entry.purge = true
	if entry.registered {
		v.deregister(env, entry) // frees the row when the chain completes
		return
	}
	if entry.call == nil && (entry.client == nil ||
		(!entry.client.Attached() && entry.client.PendingTransactions() == 0)) {
		v.freeEntry(entry)
	}
	// Otherwise an in-flight detach chain observes purge and frees the row
	// on completion.
}

// deregister tears down a subscriber's vGPRS service: any call in progress,
// the gatekeeper alias (URQ), and the GPRS attachment — the reverse of the
// Fig 4 chain.
func (v *VMSC) deregister(env *sim.Env, entry *msEntry) {
	entry.registered = false
	if entry.msisdn != "" {
		v.byMSISDN.Delete(entry.msisdn.Pack())
	}

	// Abort any call in progress.
	if entry.call != nil {
		v.clearCall(env, entry.call, false)
	}

	// Unregister the alias at the gatekeeper. The context may already be
	// torn down in DeactivateIdlePDP mode; re-activate transiently if so.
	if _, active := entry.client.Context(NSAPISignalling); active {
		v.unregisterGK(env, entry)
		return
	}
	v.ensureSignallingPDP(env, entry, func(ok bool) {
		if !ok {
			return
		}
		v.setupEndpoint(entry)
		v.unregisterGK(env, entry)
	})
}

// unregisterGK sends the URQ whose completion detaches the GPRS side (and,
// for purged rows, frees the slab slot).
func (v *VMSC) unregisterGK(env *sim.Env, entry *msEntry) {
	v.nextRAS++
	seq := v.nextRAS
	v.rasTransmit(env, entry, seq, h323.URQ{
		Seq: seq, Alias: entry.msisdn, SignalAddr: entry.addr,
	}, rasURQDone, nil)
}

// rasURQDone finishes a deregistration: whether the gatekeeper confirmed
// (UCF) or the transaction timed out, the GPRS attachment is released, and
// a purged row is freed once the detach completes.
func rasURQDone(env *sim.Env, p *rasPending, _ sim.Message) {
	v := p.v
	entry := v.ents.Get(p.entryH)
	if entry == nil {
		return
	}
	if entry.client != nil && entry.client.Attached() {
		h := p.entryH
		_ = entry.client.Detach(env, func() {
			if e := v.ents.Get(h); e != nil && e.purge {
				v.freeEntry(e)
			}
		})
		return
	}
	if entry.purge {
		v.freeEntry(entry)
	}
}

// StartKeepAlive begins periodic H.225 keepalive RRQs for every registered
// subscriber — required when the gatekeeper enforces a registration TTL.
// The VMSC refreshes on behalf of its MSs just as it registered on their
// behalf (paper step 1.4); an MS whose row lapsed anyway (answered with
// "full registration required") is re-registered with a full RRQ. Idle-PDP
// mode skips subscribers whose signalling context is down; their rows are
// refreshed when the per-call activation re-registers. Keepalives keep the
// event queue non-empty: drive the simulation with RunUntil once started.
func (v *VMSC) StartKeepAlive(env *sim.Env, interval time.Duration) {
	if interval <= 0 || v.keepAlive {
		return
	}
	v.keepAlive = true
	var tick func()
	tick = func() {
		v.byIMSI.Range(func(_ gsmid.PackedDigits, h slab.Handle) bool {
			entry := v.ents.Get(h)
			if entry == nil || !entry.registered || entry.client == nil {
				return true
			}
			if _, active := entry.client.Context(NSAPISignalling); !active {
				return true
			}
			v.nextRAS++
			seq := v.nextRAS
			v.rasTransmit(env, entry, seq, h323.RRQ{
				Seq: seq, Alias: entry.msisdn,
				SignalAddr: entry.addr, SignalPort: ipnet.PortQ931,
				KeepAlive: true,
			}, rasKeepAliveDone, nil)
			return true
		})
		env.After(interval, tick)
	}
	tick()
}

// rasKeepAliveDone handles the keepalive RRQ's answer: a gatekeeper that
// lost the row (TTL lapse, restart) demands a full registration, which the
// VMSC performs silently.
func rasKeepAliveDone(env *sim.Env, p *rasPending, msg sim.Message) {
	v := p.v
	entry := v.ents.Get(p.entryH)
	if entry == nil {
		return
	}
	if rrj, isRRJ := msg.(h323.RRJ); isRRJ && rrj.Reason == h323.RejectFullRegistrationRequired {
		v.registerWithGatekeeper(env, entry, false)
	}
}
