package vmsc

import (
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/isup"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
)

// handoverRequired runs the anchor side of the inter-system handoff (paper
// §7, Fig 9): the serving BSC reports that the MS needs a cell under a
// legacy MSC. The VMSC prepares the target over MAP E, builds the
// circuit-switched trunk to the handover number, and orders the MS across.
// The VMSC stays the anchor: the H.323 leg toward the terminal is untouched.
func (v *VMSC) handoverRequired(env *sim.Env, t gsm.HandoverRequired) {
	entry := v.entryByMS(t.MS)
	if entry == nil || entry.call == nil || entry.call.state != callActive {
		// Not an anchored call: a handed-in MS asking to move again is
		// relayed to its anchor (GSM 03.09 subsequent handover).
		v.hoTarget.SubsequentRequired(env, t)
		return
	}
	call := entry.call
	target, known := v.cfg.HandoverTargets[t.TargetCell]
	if !known {
		return // no neighbour relation; the call simply stays put
	}

	v.nextHORef++
	hoRef := 0x80000000 | v.nextHORef
	call.hoRef = hoRef
	v.hoCalls[hoRef] = call

	invoke := v.dm.Invoke(env, v.sigDeadline(), func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.PrepareHandoverAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone {
			delete(v.hoCalls, hoRef)
			call.hoRef = 0
			return // target refused; call continues on the old cell
		}
		v.buildHandoverTrunk(env, call, target, t.TargetCell, ack)
	})
	env.Send(v.cfg.ID, target.MSC, sigmap.PrepareHandover{
		Invoke: invoke, IMSI: entry.imsi, CallRef: hoRef, TargetCell: t.TargetCell,
	})
}

// buildHandoverTrunk seizes the E-interface circuit toward the target MSC
// and, once the IAM is away, commands the MS to the target cell. The target
// answers the trunk immediately (it is a network leg), so the command can
// follow the IAM without waiting.
func (v *VMSC) buildHandoverTrunk(env *sim.Env, call *vCall, target HandoverTarget,
	cell gsmid.CGI, ack sigmap.PrepareHandoverAck) {
	trunks := v.cfg.ETrunks[target.MSC]
	var cic isup.CIC
	if trunks != nil {
		seized, err := trunks.Seize()
		if err != nil {
			return // no circuit; abandon the handover, keep the call
		}
		cic = seized
	}
	call.hoPeer = target.MSC
	call.hoCIC = cic
	call.hoTrunks = trunks

	env.Send(v.cfg.ID, target.MSC, isup.IAM{
		CIC: cic, CallRef: call.hoRef, Called: ack.HandoverNumber,
	})
	if entry := call.ent(); entry != nil {
		env.Send(v.cfg.ID, entry.bsc, gsm.HandoverCommand{
			Leg: gsm.LegA, MS: entry.ms, CallRef: call.hoRef,
			TargetCell: cell, TargetBTS: target.BTS, Channel: ack.RadioChannel,
		})
	}
}

// sendEndSignal completes the handover: the target MSC reports the MS has
// arrived, and the anchor switches its media bridge from the A interface to
// the E trunk.
func (v *VMSC) sendEndSignal(env *sim.Env, from sim.NodeID, t sigmap.SendEndSignal) {
	call := v.hoCalls[t.CallRef]
	if call == nil {
		return
	}
	switch {
	case call.hoNext != nil && call.hoNext.peer == from:
		// Subsequent handover to a third MSC confirmed: the old relay's
		// leg is released and the new leg becomes the active one.
		v.releaseHOLeg(env, call)
		call.hoPeer, call.hoCIC, call.hoTrunks =
			call.hoNext.peer, call.hoNext.cic, call.hoNext.trunks
		call.hoNext = nil
	case call.hoPeer == from && !call.hoActive:
		call.hoActive = true
	default:
		return
	}
	v.stats.Handovers++
	env.Send(v.cfg.ID, from, sigmap.SendEndSignalAck{Invoke: t.Invoke, CallRef: t.CallRef})
	if v.cfg.Hooks.OnHandoverComplete != nil {
		if entry := call.ent(); entry != nil {
			v.cfg.Hooks.OnHandoverComplete(entry.imsi, from)
		}
	}
}

// subsequentHandover runs the anchor side of GSM 03.09 subsequent handover:
// the relay MSC currently serving a handed-over MS reports that the MS
// needs yet another cell. Two outcomes, both decided here because only the
// anchor owns the call: a handback onto the VMSC's own radio system, or a
// further handover to a third MSC.
func (v *VMSC) subsequentHandover(env *sim.Env, from sim.NodeID, t sigmap.PrepareSubsequentHandover) {
	refuse := func() {
		env.Send(v.cfg.ID, from, sigmap.PrepareSubsequentHandoverAck{
			Invoke: t.Invoke, Cause: sigmap.CauseSystemFailure, CallRef: t.CallRef,
		})
	}
	call := v.hoCalls[t.CallRef]
	if call == nil || !call.hoActive || call.hoPeer != from || call.hoNext != nil {
		refuse()
		return
	}

	if bts, mine := v.cfg.HandbackCells[t.TargetCell]; mine {
		// Handback: reserve a channel on the anchor's own system and hand
		// the radio description to the relay; the completion arrives as
		// HandoverComplete on the A interface.
		v.nextHOChan++
		env.Send(v.cfg.ID, from, sigmap.PrepareSubsequentHandoverAck{
			Invoke: t.Invoke, Cause: sigmap.CauseNone, CallRef: t.CallRef,
			TargetCell: t.TargetCell, TargetBTS: string(bts),
			RadioChannel: v.nextHOChan,
		})
		return
	}

	target, known := v.cfg.HandoverTargets[t.TargetCell]
	if !known || target.MSC == from {
		refuse()
		return
	}
	// Third MSC: prepare it exactly like a first handover, but the
	// handover command travels through the relay, and the old trunk lives
	// until the new target confirms the MS's arrival.
	invoke := v.dm.Invoke(env, v.sigDeadline(), func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.PrepareHandoverAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone {
			refuse()
			return
		}
		trunks := v.cfg.ETrunks[target.MSC]
		var cic isup.CIC
		if trunks != nil {
			seized, err := trunks.Seize()
			if err != nil {
				refuse()
				return
			}
			cic = seized
		}
		call.hoNext = &hoLeg{peer: target.MSC, cic: cic, trunks: trunks}
		env.Send(v.cfg.ID, target.MSC, isup.IAM{
			CIC: cic, CallRef: call.hoRef, Called: ack.HandoverNumber,
		})
		env.Send(v.cfg.ID, from, sigmap.PrepareSubsequentHandoverAck{
			Invoke: t.Invoke, Cause: sigmap.CauseNone, CallRef: t.CallRef,
			TargetCell: t.TargetCell, TargetBTS: string(target.BTS),
			RadioChannel: ack.RadioChannel,
		})
	})
	var imsi gsmid.IMSI
	if entry := call.ent(); entry != nil {
		imsi = entry.imsi
	}
	env.Send(v.cfg.ID, target.MSC, sigmap.PrepareHandover{
		Invoke: invoke, IMSI: imsi, CallRef: call.hoRef,
		TargetCell: t.TargetCell,
	})
}

// handoverComplete consumes the MS arriving on the anchor's own radio
// system — the completion of a handback. It reports whether the message
// belonged to a handback (otherwise the caller tries the target role).
func (v *VMSC) handoverComplete(env *sim.Env, from sim.NodeID, t gsm.HandoverComplete) bool {
	call := v.hoCalls[t.CallRef]
	if call == nil || !call.hoActive {
		return false
	}
	// The MS is home: drop the relay leg and bridge to the A interface.
	v.releaseHOLeg(env, call)
	call.hoActive = false
	call.hoRef = 0
	delete(v.hoCalls, t.CallRef)
	entry := call.ent()
	if entry != nil {
		entry.bsc = from
	}
	v.stats.Handovers++
	if v.cfg.Hooks.OnHandoverComplete != nil && entry != nil {
		v.cfg.Hooks.OnHandoverComplete(entry.imsi, v.cfg.ID)
	}
	return true
}

// releaseHOLeg releases the current handover circuit toward the relay MSC.
func (v *VMSC) releaseHOLeg(env *sim.Env, call *vCall) {
	env.Send(v.cfg.ID, call.hoPeer, isup.REL{
		CIC: call.hoCIC, CallRef: call.hoRef, Cause: isup.CauseNormalClearing,
	})
	if call.hoTrunks != nil {
		call.hoTrunks.Release(call.hoCIC)
	}
	call.hoPeer, call.hoCIC, call.hoTrunks = "", 0, nil
}
