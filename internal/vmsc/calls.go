package vmsc

import (
	"net/netip"
	"time"

	"vgprs/internal/codec"
	"vgprs/internal/gb"
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/q931"
	"vgprs/internal/rtp"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
)

// Receive implements sim.Node: the VMSC's five faces (A interface, MAP,
// Gb, ISUP E-trunks, and — through the Gb tunnel — H.225/RAS/RTP).
func (v *VMSC) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	if v.registrar.Handle(env, from, msg) {
		return
	}
	switch t := msg.(type) {
	case gb.DLUnitdata:
		v.handleDL(env, t)
	case *gb.DLUnitdata:
		// The SGSN's voice fast path sends its reusable downlink message
		// by pointer to avoid the interface-boxing allocation.
		v.handleDL(env, *t)
	case gsm.Setup:
		v.handleMOSetup(env, from, t)
	case gsm.PagingResponse:
		v.pagingResponse(env, t)
	case gsm.Alerting:
		v.radioAlerting(env, t)
	case gsm.Connect:
		v.radioConnect(env, t)
	case gsm.Disconnect:
		v.radioDisconnect(env, t)
	case gsm.ReleaseComplete:
		// Radio channel freed at the BSC; nothing more to do.
	case gsm.IMSIDetach:
		v.handleIMSIDetach(env, t)
	case sigmap.CancelLocation:
		v.handleCancelLocation(env, from, t)
	case gsm.TCHFrame:
		v.uplinkVoice(env, t)
	case gsm.HandoverRequired:
		v.handoverRequired(env, t)
	case sigmap.PrepareSubsequentHandover:
		// This VMSC anchors a call whose relay MSC wants the MS moved on.
		v.subsequentHandover(env, from, t)
	case sigmap.PrepareSubsequentHandoverAck:
		// This VMSC is the relay of a handed-in MS (VMSC-to-VMSC case).
		v.hoTarget.SubsequentAck(env, t)
	case gsm.HandoverAccess:
		// First burst on the target cell; wait for HandoverComplete.
	case gsm.HandoverComplete:
		// A handback onto this VMSC's own system first; otherwise this
		// VMSC is a handover target for another anchor.
		if !v.handoverComplete(env, from, t) {
			v.hoTarget.Complete(env, from, t)
		}
	case sigmap.PrepareHandover:
		// This VMSC is the handover TARGET (VMSC-to-VMSC handoff).
		v.hoTarget.Prepare(env, from, t)
	case sigmap.SendEndSignalAck:
		// The anchor acknowledged our end signal; nothing further.
	case isup.IAM:
		// Only handover trunks terminate at a VMSC.
		v.hoTarget.TrunkArrived(env, from, t)
	case sigmap.SendInfoForOutgoingCallAck:
		v.dm.Resolve(t.Invoke, t)
	case sigmap.PrepareHandoverAck:
		v.dm.Resolve(t.Invoke, t)
	case sigmap.SendEndSignal:
		v.sendEndSignal(env, from, t)
	case isup.ACM, isup.RLC:
		// Trunk progress on the handover leg needs no action.
	case isup.ANM:
		// Handover trunk answered; the HandoverCommand was already sent.
	case isup.REL:
		v.trunkREL(env, from, t)
	case isup.TrunkFrame:
		v.trunkVoice(env, t)
	}
}

// handleIP dispatches IP packets arriving through an MS's PDP contexts.
func (v *VMSC) handleIP(env *sim.Env, entry *msEntry, pkt ipnet.Packet) {
	if entry.endpoint.Via == nil {
		return
	}
	in, ok := entry.endpoint.Classify(pkt)
	if !ok {
		return
	}
	switch {
	case in.RAS != nil:
		v.handleRAS(env, in.RAS)
	case in.Q931 != nil:
		v.handleQ931(env, entry, pkt, in.Q931)
	case in.RTPPayload != nil:
		v.downlinkVoice(env, entry, in.RTPPayload)
	}
}

func (v *VMSC) handleRAS(env *sim.Env, msg sim.Message) {
	var seq uint32
	switch m := msg.(type) {
	case h323.RCF:
		seq = m.Seq
	case h323.RRJ:
		seq = m.Seq
	case h323.ACF:
		seq = m.Seq
	case h323.ARJ:
		seq = m.Seq
	case h323.DCF:
		seq = m.Seq
	case h323.UCF:
		seq = m.Seq
	default:
		return
	}
	p, ok := v.pendingRAS[seq]
	if !ok {
		return
	}
	delete(v.pendingRAS, seq)
	fn := p.fn
	p.fn, p.msg, p.resolved = nil, nil, true
	fn(env, p, msg)
	if !p.hasTimer {
		v.putRAS(p)
	}
	// Otherwise the armed RTO timer still references the record; it is
	// recycled when that timer fires and observes resolved.
}

// rasPending is one outstanding RAS transaction: a package-level completion
// function plus the transaction's subject — the MS-table row by generational
// handle and, for admissions, the call. Records are batch-allocated and
// recycled through rasFree (the ss7.DialogueManager treatment), and the
// record itself is the RTO timer's argument, so arming a transaction costs
// 1/32 of an allocation at steady state and boxes nothing.
//
// env is kept for the timeout path, which has no live env of its own. msg
// drives retransmission: the request is re-sent with a doubled RTO until
// the budget runs out, then the completion fires with a nil message.
type rasPending struct {
	v      *VMSC
	seq    uint32
	fn     func(env *sim.Env, p *rasPending, msg sim.Message)
	entryH slab.Handle
	call   *vCall
	env    *sim.Env
	msg    sim.Message

	rto         time.Duration
	retriesLeft int
	// hasTimer/resolved implement the DialogueManager recycling protocol:
	// a transaction resolved before its RTO timer fires stays allocated
	// (the event queue still references it) and is recycled by the timer.
	hasTimer bool
	resolved bool
}

// getRAS pops a recycled transaction record, replenishing the free list a
// batch at a time.
func (v *VMSC) getRAS() *rasPending {
	if len(v.rasFree) == 0 {
		batch := make([]rasPending, 32)
		for i := range batch {
			v.rasFree = append(v.rasFree, &batch[i])
		}
	}
	n := len(v.rasFree)
	p := v.rasFree[n-1]
	v.rasFree = v.rasFree[:n-1]
	return p
}

// putRAS zeroes a record (releasing its message and call references) and
// returns it to the free list.
func (v *VMSC) putRAS(p *rasPending) {
	*p = rasPending{}
	v.rasFree = append(v.rasFree, p)
}

// rasTransmit registers fn as the completion for the RAS transaction with
// sequence seq, arms its RTO timer, and sends the request through the MS's
// signalling context. call, if non-nil, is the admission's call; fn reads
// the subject back off the record (p.entryH, p.call). An unanswered
// transaction is retried per the SigRTO/H323Retries schedule and then fails
// with a nil message.
func (v *VMSC) rasTransmit(env *sim.Env, entry *msEntry, seq uint32, msg sim.Message,
	fn func(env *sim.Env, p *rasPending, msg sim.Message), call *vCall) {
	p := v.getRAS()
	p.v, p.seq, p.fn, p.entryH, p.call = v, seq, fn, entry.self, call
	p.env, p.msg = env, msg
	p.rto, p.retriesLeft = v.cfg.SigRTO, v.cfg.H323Retries
	p.hasTimer, p.resolved = true, false
	v.pendingRAS[seq] = p
	env.AfterArg(v.cfg.SigRTO, rasExpire, p)
	entry.endpoint.SendRAS(env, v.cfg.Gatekeeper, msg)
}

// rasExpire runs an unanswered RAS transaction's RTO timer. While budget
// remains (and the subscriber row is still live), the retained request is
// retransmitted with a doubled RTO, re-arming the SAME record. On
// exhaustion the completion fires with a nil message — callers treat that
// as failure, so a dead gatekeeper (or severed tunnel) fails procedures
// instead of wedging them.
func rasExpire(arg any) {
	p := arg.(*rasPending)
	v := p.v
	p.hasTimer = false
	if p.resolved {
		v.putRAS(p)
		return
	}
	if p.retriesLeft > 0 {
		if entry := v.ents.Get(p.entryH); entry != nil {
			p.retriesLeft--
			p.rto = sim.NextRTO(p.rto, v.cfg.SigRTO)
			v.rasRetransmits++
			entry.endpoint.SendRAS(p.env, v.cfg.Gatekeeper, p.msg)
			p.hasTimer = true
			p.env.AfterArg(p.rto, rasExpire, p)
			return
		}
	}
	delete(v.pendingRAS, p.seq)
	fn, env := p.fn, p.env
	p.fn, p.msg, p.resolved = nil, nil, true
	fn(env, p, nil)
	v.putRAS(p)
}

// --- Q.931 retransmission (T303 for Setup, T313 for Connect) ---

// q931Retry is the timer record for one Q.931 retransmission cycle.
type q931Retry struct {
	v    *VMSC
	call *vCall
	gen  uint32
}

// armQ931 sends a Q.931 message that expects an answer and starts its
// retransmission cycle: re-sent with doubling RTO until an answer stops the
// cycle (stopQ931) or the budget runs out, which tears the call down.
func (v *VMSC) armQ931(env *sim.Env, call *vCall, msg sim.Message) {
	entry := call.ent()
	if entry == nil {
		return
	}
	entry.endpoint.SendQ931(env, call.remoteSig, msg)
	call.q931Gen++
	call.q931Msg = msg
	call.q931RTO, call.q931Retries = v.cfg.SigRTO, v.cfg.H323Retries
	env.AfterArg(v.cfg.SigRTO, q931Expire, &q931Retry{v: v, call: call, gen: call.q931Gen})
}

// stopQ931 ends the call's current retransmission cycle (answer arrived).
func (v *VMSC) stopQ931(call *vCall) { call.q931Msg = nil }

func q931Expire(arg any) {
	r := arg.(*q931Retry)
	call := r.call
	if call.q931Msg == nil || call.q931Gen != r.gen {
		return
	}
	if call.q931Retries > 0 {
		if entry := call.ent(); entry != nil {
			call.q931Retries--
			call.q931RTO = sim.NextRTO(call.q931RTO, r.v.cfg.SigRTO)
			r.v.q931Retransmits++
			entry.endpoint.SendQ931(call.env, call.remoteSig, call.q931Msg)
			call.env.AfterArg(call.q931RTO, q931Expire, r)
			return
		}
	}
	// Budget exhausted (or subscriber purged): clear the call everywhere
	// rather than hang.
	call.q931Msg = nil
	r.v.clearCall(call.env, call, true)
}

// --- Mobile-originated calls (Fig 5, steps 2.1-2.9) ---

func (v *VMSC) handleMOSetup(env *sim.Env, bsc sim.NodeID, t gsm.Setup) {
	entry := v.entryByMS(t.MS)
	if entry == nil || !entry.registered || entry.call != nil {
		env.Send(v.cfg.ID, bsc, gsm.Release{Leg: gsm.LegA, MS: t.MS, CallRef: t.CallRef})
		return
	}
	v.nextRAS++ // Q.931 references share the VMSC-wide sequence space
	call := &vCall{
		v: v, entryH: entry.self, env: env, ref: uint16(v.nextRAS), radioRef: t.CallRef,
		state: callRouting, mobileOriginated: true, remote: t.Called,
	}
	entry.call = call
	v.active++

	// Step 2.2: ask the VLR whether the call is allowed, then check the
	// routing path to the GGSN (the PDP context record — already active
	// in vGPRS, which is the point of the §6 comparison). The invoke is
	// retransmitted on loss per the SigRTO schedule.
	invoke := v.dm.InvokeRetryArg(moSIFOCDone, call)
	v.dm.Transmit(env, invoke, v.cfg.ID, v.cfg.VLR, sigmap.SendInfoForOutgoingCall{
		Invoke: invoke, Identity: gsmid.ByTMSI(entry.tmsi), Called: t.Called,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// moSIFOCDone continues an MO call after the VLR authorises it (or the
// retried dialogue finally fails).
func moSIFOCDone(arg any, resp sim.Message, ok bool) {
	call := arg.(*vCall)
	v, env := call.v, call.env
	entry := call.ent()
	if entry == nil {
		v.forget(call)
		return
	}
	ack, isAck := resp.(sigmap.SendInfoForOutgoingCallAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone {
		v.clearCall(env, call, true)
		return
	}
	v.setMSISDN(entry, ack.MSISDN)
	v.ensureSignallingPDP(env, entry, func(ok bool) {
		if !ok {
			v.clearCall(env, call, true)
			return
		}
		v.admitMOCall(env, call, call.remote)
	})
}

// admitMOCall runs step 2.3: the ARQ/ACF exchange that yields the
// destination's call signalling channel transport address.
func (v *VMSC) admitMOCall(env *sim.Env, call *vCall, called gsmid.MSISDN) {
	entry := call.ent()
	if entry == nil {
		v.forget(call)
		return
	}
	v.nextRAS++
	seq := v.nextRAS
	v.rasTransmit(env, entry, seq, h323.ARQ{
		Seq: seq, CallerAlias: entry.msisdn, CalledAlias: called, CallRef: call.ref,
	}, rasMOAdmitDone, call)
}

// rasMOAdmitDone continues an MO call once the gatekeeper admits it (ACF
// carrying the destination's signalling address) or rejects/times out.
func rasMOAdmitDone(env *sim.Env, p *rasPending, msg sim.Message) {
	v, call := p.v, p.call
	if call == nil || call.released {
		return
	}
	m, admitted := msg.(h323.ACF)
	if !admitted { // ARJ or timeout
		v.clearCall(env, call, true)
		return
	}
	entry := call.ent()
	if entry == nil {
		v.forget(call)
		return
	}
	call.remoteSig = m.SignalAddr
	call.state = callDelivering
	// Step 2.4: Q.931 Setup through the GGSN to the terminal,
	// retransmitted (T303) until the far end acknowledges.
	v.armQ931(env, call, q931.Setup{
		CallRef: call.ref, Called: call.remote, Calling: entry.msisdn,
		Media: q931.MediaAddr{Addr: entry.addr, Port: ipnet.PortRTP},
	})
}

func (v *VMSC) handleQ931(env *sim.Env, entry *msEntry, pkt ipnet.Packet, msg sim.Message) {
	switch m := msg.(type) {
	case q931.Setup:
		v.handleMTSetup(env, entry, pkt, m)
	case q931.CallProceeding:
		// Step 2.4 tail: no more routing information expected — the far
		// end holds our Setup, so its retransmission cycle can stop.
		if call := entry.call; call != nil && call.ref == m.CallRef && call.mobileOriginated {
			v.stopQ931(call)
		}
	case q931.Alerting:
		// Step 2.7: relay the alerting indication down the radio path to
		// trigger ringback at the MS. A late duplicate must not regress
		// an answered call, hence the state guard.
		if call := entry.call; call != nil && call.ref == m.CallRef &&
			call.mobileOriginated && call.state == callDelivering {
			v.stopQ931(call)
			call.state = callAlerting
			env.Send(v.cfg.ID, entry.bsc, gsm.Alerting{
				Leg: gsm.LegA, MS: entry.ms, CallRef: call.radioRef,
			})
		}
	case q931.Connect:
		// Step 2.8 + 2.9: answer reaches the MS; then activate the
		// real-time voice PDP context. Every copy is acknowledged (the
		// answerer retransmits Connect until it sees the ack); only the
		// first is processed.
		if call := entry.call; call != nil && call.ref == m.CallRef && call.mobileOriginated {
			entry.endpoint.SendQ931(env, call.remoteSig, q931.ConnectAck{CallRef: m.CallRef})
			if call.answered {
				return
			}
			call.answered = true
			v.stopQ931(call)
			call.remoteMed = m.Media
			env.Send(v.cfg.ID, entry.bsc, gsm.Connect{
				Leg: gsm.LegA, MS: entry.ms, CallRef: call.radioRef,
			})
			v.activateVoicePDP(env, call)
		}
	case q931.ConnectAck:
		// The far end saw our Connect (MT answer): stop T313.
		if call := entry.call; call != nil && call.ref == m.CallRef {
			v.stopQ931(call)
		}
	case q931.ReleaseComplete:
		// Far party cleared (or step 3.2's mirror for MT calls).
		if call := entry.call; call != nil && call.ref == m.CallRef {
			v.disengage(env, call)
			v.releaseRadio(env, call)
			v.teardownVoicePDP(env, entry)
			v.forget(call)
		}
	}
}

// handleMTSetup runs Fig 6 steps 4.2-4.5: the Setup arrived through the
// GGSN on the MS's signalling PDP context.
func (v *VMSC) handleMTSetup(env *sim.Env, entry *msEntry, pkt ipnet.Packet, m q931.Setup) {
	if entry.call != nil {
		if entry.call.ref == m.CallRef && entry.call.remoteSig == pkt.Src {
			// A retransmitted Setup for the call already in progress:
			// re-acknowledge so the caller's T303 stops; killing the
			// call with UserBusy here would fail every MT call whose
			// first CallProceeding was lost.
			entry.endpoint.SendQ931(env, pkt.Src, q931.CallProceeding{CallRef: m.CallRef})
			return
		}
		entry.endpoint.SendQ931(env, pkt.Src, q931.ReleaseComplete{
			CallRef: m.CallRef, Cause: q931.CauseUserBusy,
		})
		return
	}
	call := &vCall{
		v: v, entryH: entry.self, env: env, ref: m.CallRef, radioRef: uint32(m.CallRef),
		state: callPaging, remote: m.Calling, remoteSig: pkt.Src, remoteMed: m.Media,
	}
	entry.call = call
	v.active++

	// Step 4.2 tail: Call Proceeding back to the caller.
	entry.endpoint.SendQ931(env, pkt.Src, q931.CallProceeding{CallRef: m.CallRef})

	// Step 4.3: ARQ/ACF with the gatekeeper.
	v.nextRAS++
	seq := v.nextRAS
	v.rasTransmit(env, entry, seq, h323.ARQ{
		Seq: seq, CallerAlias: entry.msisdn, CalledAlias: m.Calling,
		CallRef: m.CallRef, Answer: true,
	}, rasMTAdmitDone, call)
}

// rasMTAdmitDone pages the MS once the gatekeeper admits the terminating
// call; rejection (or timeout) releases the caller.
func rasMTAdmitDone(env *sim.Env, p *rasPending, msg sim.Message) {
	v, call := p.v, p.call
	if call == nil || call.released {
		return
	}
	entry := call.ent()
	if entry == nil {
		v.forget(call)
		return
	}
	if _, admitted := msg.(h323.ACF); !admitted { // ARJ or timeout
		entry.endpoint.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
			CallRef: call.ref, Cause: q931.CauseResourcesUnavail,
		})
		v.forget(call)
		return
	}
	// Step 4.4: page the MS. The timeout references the call directly
	// (paging state holds the subscriber only through call.entryH).
	env.Send(v.cfg.ID, entry.bsc, gsm.Paging{
		Leg: gsm.LegA, MS: entry.ms, Identity: gsmid.ByTMSI(entry.tmsi),
	})
	env.AfterArg(v.cfg.PagingTimeout, pagingExpire, call)
}

// pagingExpire releases an MT call whose page went unanswered.
func pagingExpire(arg any) {
	call := arg.(*vCall)
	if call.released || call.state != callPaging {
		return
	}
	v := call.v
	if entry := call.ent(); entry != nil {
		entry.endpoint.SendQ931(call.env, call.remoteSig, q931.ReleaseComplete{
			CallRef: call.ref, Cause: q931.CauseNoAnswer,
		})
	}
	v.disengage(call.env, call)
	v.forget(call)
}

func (v *VMSC) pagingResponse(env *sim.Env, t gsm.PagingResponse) {
	entry := v.entryByMS(t.MS)
	if entry == nil || entry.call == nil || entry.call.state != callPaging {
		// Orphan paging response (the caller gave up, or the page raced
		// the paging timer): release the channel the MS acquired to
		// answer, or it would sit allocated forever.
		if entry != nil {
			env.Send(v.cfg.ID, entry.bsc, gsm.Release{Leg: gsm.LegA, MS: t.MS})
		}
		return
	}
	call := entry.call
	call.state = callDelivering
	// Step 4.5: Setup down the radio path.
	env.Send(v.cfg.ID, entry.bsc, gsm.Setup{
		Leg: gsm.LegA, MS: entry.ms, CallRef: call.radioRef,
	})
}

func (v *VMSC) radioAlerting(env *sim.Env, t gsm.Alerting) {
	entry := v.entryByMS(t.MS)
	if entry == nil || entry.call == nil || entry.call.mobileOriginated {
		return
	}
	call := entry.call
	call.state = callAlerting
	// Step 4.6: Q.931 Alerting toward the calling terminal (ringback).
	entry.endpoint.SendQ931(env, call.remoteSig, q931.Alerting{CallRef: call.ref})
}

func (v *VMSC) radioConnect(env *sim.Env, t gsm.Connect) {
	entry := v.entryByMS(t.MS)
	if entry == nil || entry.call == nil || entry.call.mobileOriginated {
		return
	}
	call := entry.call
	// Step 4.7: Connect toward the caller, with the MS's media address,
	// retransmitted (T313) until the caller's ConnectAck.
	v.armQ931(env, call, q931.Connect{
		CallRef: call.ref,
		Media:   q931.MediaAddr{Addr: entry.addr, Port: ipnet.PortRTP},
	})
	// Step 4.8: activate the voice PDP context.
	v.activateVoicePDP(env, call)
}

// activateVoicePDP runs step 2.9/4.8: a second, real-time PDP context for
// the voice packets. The call is active once it completes.
func (v *VMSC) activateVoicePDP(env *sim.Env, call *vCall) {
	entry := call.ent()
	if entry == nil {
		v.forget(call)
		return
	}
	establish := func() {
		call.state = callActive
		entry.voiceUp = true
		v.stats.CallsEstablished++
		if v.cfg.Hooks.OnCallEstablished != nil {
			v.cfg.Hooks.OnCallEstablished(entry.imsi, call.mobileOriginated)
		}
	}
	if _, active := entry.client.Context(NSAPIVoice); active {
		establish()
		return
	}
	err := entry.client.ActivatePDP(env, NSAPIVoice, gtp.VoiceQoS(), "",
		func(_ netip.Addr, ok bool) {
			if !ok {
				v.clearCall(env, call, true)
				return
			}
			establish()
		})
	if err != nil {
		v.clearCall(env, call, true)
	}
}

// --- Release (Fig 5, steps 3.1-3.4) ---

func (v *VMSC) radioDisconnect(env *sim.Env, t gsm.Disconnect) {
	entry := v.entryByMS(t.MS)
	if entry == nil || entry.call == nil {
		// Possibly a handed-in MS hanging up on this target system.
		v.hoTarget.RadioDisconnect(env, t)
		return
	}
	call := entry.call
	// Step 3.2: release the H.323 leg.
	entry.endpoint.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
		CallRef: call.ref, Cause: q931.CauseNormal,
	})
	// Step 3.3: disengage with the gatekeeper (charging stops).
	v.disengage(env, call)
	// Radio leg clearing toward the MS.
	v.releaseRadio(env, call)
	// Step 3.4: deactivate the voice PDP context.
	v.teardownVoicePDP(env, entry)
	v.forget(call)
}

// disengage sends the DRQ fire-and-forget (charging stop, no answer
// awaited).
func (v *VMSC) disengage(env *sim.Env, call *vCall) {
	entry := call.ent()
	if entry == nil {
		return
	}
	v.nextRAS++
	entry.endpoint.SendRAS(env, v.cfg.Gatekeeper, h323.DRQ{
		Seq: v.nextRAS, Alias: entry.msisdn, CallRef: call.ref,
		Peer: call.remote,
	})
}

func (v *VMSC) releaseRadio(env *sim.Env, call *vCall) {
	if call.hoActive {
		// After inter-system handover the radio leg lives at the target
		// MSC; release it over the trunk instead.
		env.Send(v.cfg.ID, call.hoPeer, isup.REL{
			CIC: call.hoCIC, CallRef: call.hoRef, Cause: isup.CauseNormalClearing,
		})
		if call.hoTrunks != nil {
			call.hoTrunks.Release(call.hoCIC)
		}
		return
	}
	entry := call.ent()
	if entry == nil {
		return
	}
	env.Send(v.cfg.ID, entry.bsc, gsm.Release{
		Leg: gsm.LegA, MS: entry.ms, CallRef: call.radioRef,
	})
}

// teardownVoicePDP deactivates the voice context and, in DeactivateIdlePDP
// mode, the signalling context too.
func (v *VMSC) teardownVoicePDP(env *sim.Env, entry *msEntry) {
	entry.voiceUp = false
	if _, active := entry.client.Context(NSAPIVoice); active {
		_ = entry.client.DeactivatePDP(env, NSAPIVoice, func() {
			if v.cfg.DeactivateIdlePDP {
				v.deactivateSignalling(env, entry, func() {})
			}
		})
		return
	}
	if v.cfg.DeactivateIdlePDP {
		v.deactivateSignalling(env, entry, func() {})
	}
}

// clearCall aborts a failed call attempt, clearing the radio side and — if
// call signalling already reached the far end — the H.323 leg too.
func (v *VMSC) clearCall(env *sim.Env, call *vCall, radio bool) {
	if radio {
		v.releaseRadio(env, call)
	}
	entry := call.ent()
	if call.remoteSig.IsValid() && entry != nil {
		entry.endpoint.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
			CallRef: call.ref, Cause: q931.CauseResourcesUnavail,
		})
		v.disengage(env, call)
	}
	if entry != nil {
		v.teardownVoicePDP(env, entry)
	}
	v.forget(call)
}

func (v *VMSC) forget(call *vCall) {
	if call.released {
		return
	}
	call.released = true
	v.stopQ931(call) // a live retry timer must not resurrect the call
	v.stats.CallsReleased++
	entry := call.ent()
	if v.cfg.Hooks.OnCallReleased != nil && entry != nil {
		v.cfg.Hooks.OnCallReleased(entry.imsi)
	}
	if entry != nil && entry.call == call {
		entry.call = nil
	}
	if call.hoRef != 0 {
		delete(v.hoCalls, call.hoRef)
	}
	v.active--
}

// --- Media plane: vocoder + PCU (paper §2: "at the VMSC, the voice
// information is translated into GPRS packets through vocoder and packet
// control unit") ---

// callMedia is the per-call reusable media-plane state. The talk path is a
// pipeline with a 20 ms beat: each stage owns one buffer that it overwrites
// once per frame interval, and every downstream consumer either copies the
// bytes at arrival or finishes with them well inside the interval — so no
// per-frame allocation and no free step are needed. upBuf/dnFrame hold the
// transcoded frame while the vocoder delay elapses; rtpBuf holds the
// marshalled RTP packet whose bytes the SGSN/GGSN relay legs alias until
// the far SGSN copies them (~4 ms + chaos jitter later). upJob/dnJob are
// the pre-bound timer records that make the vocoder delay closure-free.
type callMedia struct {
	upBuf   [codec.FrameBytes]byte
	upLen   int
	rtpBuf  []byte
	dnFrame [codec.FrameBytes]byte
	dnLen   int
	upJob   frameJob
	dnJob   frameJob
	// rx is the RFC 3550 receiver accounting for the RTP stream the far
	// party sends to this call's endpoint: sequence-gap loss on the core
	// legs, reordering, and interarrival jitter.
	rx rtp.Receiver
}

// frameJob is the AfterArg record for one direction of a call's vocoder
// stage; the call's env carries the timer back into the simulation.
type frameJob struct {
	v    *VMSC
	call *vCall
}

func (v *VMSC) uplinkVoice(env *sim.Env, t gsm.TCHFrame) {
	entry := v.entryByMS(t.MS)
	if entry == nil || entry.call == nil {
		// Possibly a handed-in MS anchored at another (V)MSC.
		v.hoTarget.UplinkVoice(env, t)
		return
	}
	call := entry.call
	if call.state != callActive || !call.remoteMed.Valid() {
		v.stats.FramesClipped++
		return
	}
	v.stats.FramesUplink++
	// Transcode at arrival: the radio-leg payload may be the MS's reused
	// frame buffer, so the copy cannot wait out the vocoder delay.
	call.med.upLen = codec.TranscodeInto(call.med.upBuf[:], t.Payload)
	if call.med.upJob.call == nil {
		call.med.upJob = frameJob{v: v, call: call}
	}
	// The vocoder charges its processing delay before the packet leaves.
	v.frameJobs++
	env.AfterArg(v.transcodeCost(), uplinkFire, &call.med.upJob)
}

// uplinkFire sends the transcoded uplink frame as RTP once the vocoder
// delay has elapsed. Only one job per direction is ever in flight (the
// vocoder delay is far shorter than the frame interval), so reusing the
// call's buffers here is safe.
func uplinkFire(arg any) {
	j := arg.(*frameJob)
	j.v.frameJobs--
	call := j.call
	if call.released || call.state != callActive || !call.remoteMed.Valid() {
		return
	}
	entry := call.ent()
	if entry == nil {
		return
	}
	env := call.env
	call.rtpSeq++
	p := rtp.Packet{
		PayloadType: rtp.PayloadTypeGSM,
		Seq:         call.rtpSeq,
		Timestamp:   rtp.TimestampAt(env.Now()),
		SSRC:        uint32(call.ref),
		Payload:     call.med.upBuf[:call.med.upLen],
	}
	call.med.rtpBuf = p.AppendTo(call.med.rtpBuf[:0])
	entry.endpoint.SendRTP(env, call.remoteMed, call.med.rtpBuf)
}

func (v *VMSC) downlinkVoice(env *sim.Env, entry *msEntry, payload []byte) {
	call := entry.call
	if call == nil {
		return
	}
	p, err := rtp.UnmarshalView(payload)
	if err != nil {
		return
	}
	v.stats.FramesDownlink++
	call.med.rx.Receive(p, env.Now(), 0, false)
	// Copy at arrival: the RTP payload aliases the relay pipeline's
	// reusable buffers, which the next frame overwrites.
	call.med.dnLen = codec.TranscodeInto(call.med.dnFrame[:], p.Payload)
	if call.med.dnJob.call == nil {
		call.med.dnJob = frameJob{v: v, call: call}
	}
	v.frameJobs++
	env.AfterArg(v.transcodeCost(), downlinkFire, &call.med.dnJob)
}

// downlinkFire forwards the transcoded downlink frame onto the radio leg
// (or the post-handover E trunk) once the vocoder delay has elapsed.
func downlinkFire(arg any) {
	j := arg.(*frameJob)
	j.v.frameJobs--
	call := j.call
	if call.released {
		return
	}
	env := call.env
	call.seqDown++
	if call.hoActive {
		// Post-handover: the radio leg is behind the E trunk.
		call.hoSeq++
		env.Send(j.v.cfg.ID, call.hoPeer, isup.TrunkFrame{
			CIC: call.hoCIC, CallRef: call.hoRef, Seq: call.hoSeq,
			Payload: call.med.dnFrame[:call.med.dnLen],
		})
		return
	}
	entry := call.ent()
	if entry == nil {
		return
	}
	env.Send(j.v.cfg.ID, entry.bsc, gsm.TCHFrame{
		Leg: gsm.LegA, MS: entry.ms, CallRef: call.radioRef,
		Seq: call.seqDown, Downlink: true, Payload: call.med.dnFrame[:call.med.dnLen],
	})
}

// trunkVoice carries uplink speech arriving from a handover target MSC (as
// anchor) or anchor speech for a handed-in MS (as target).
func (v *VMSC) trunkVoice(env *sim.Env, t isup.TrunkFrame) {
	call := v.hoCalls[t.CallRef]
	if call == nil {
		v.hoTarget.TrunkVoice(env, t)
		return
	}
	if !call.hoActive || call.state != callActive || !call.remoteMed.Valid() {
		return
	}
	v.stats.FramesUplink++
	payload := codec.Transcode(t.Payload)
	env.After(v.transcodeCost(), func() {
		entry := call.ent()
		if entry == nil {
			return
		}
		call.rtpSeq++
		p := rtp.Packet{
			PayloadType: rtp.PayloadTypeGSM,
			Seq:         call.rtpSeq,
			Timestamp:   rtp.TimestampAt(env.Now()),
			SSRC:        uint32(call.ref),
			Payload:     payload,
		}
		entry.endpoint.SendRTP(env, call.remoteMed, p.Marshal())
	})
}

// trunkREL handles release of the handover trunk from the target side (the
// handed-over MS hung up).
func (v *VMSC) trunkREL(env *sim.Env, from sim.NodeID, t isup.REL) {
	env.Send(v.cfg.ID, from, isup.RLC{CIC: t.CIC, CallRef: t.CallRef})
	call := v.hoCalls[t.CallRef]
	if call == nil {
		// Possibly the anchor releasing a call handed in to this VMSC.
		v.hoTarget.TrunkREL(env, t)
		return
	}
	if call.hoTrunks != nil {
		call.hoTrunks.Release(call.hoCIC)
	}
	if entry := call.ent(); entry != nil {
		entry.endpoint.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
			CallRef: call.ref, Cause: q931.CauseNormal,
		})
		v.teardownVoicePDP(env, entry)
	}
	v.disengage(env, call)
	v.forget(call)
}

// transcodeCost returns the configured per-direction vocoder delay.
func (v *VMSC) transcodeCost() time.Duration {
	if v.cfg.TranscodeCost != 0 {
		return v.cfg.TranscodeCost
	}
	return codec.TranscodeCost
}
