// Package vmsc implements the paper's contribution: the VoIP Mobile
// Switching Center, a router-based softswitch that replaces the GSM MSC.
//
// Toward the radio network the VMSC is indistinguishable from an MSC (A
// interface to the BSC, MAP B to the VLR). Toward the packet core it acts
// as a GPRS MS *per registered subscriber*: it attaches and activates PDP
// contexts over the Gb interface exactly like a handset would (paper step
// 1.3), giving every MS an IP identity. Toward the VoIP world it is an
// H.323 endpoint per MS, registering each MSISDN with a standard gatekeeper
// (step 1.4) and running H.225/Q.931 call signalling plus vocoder-transcoded
// RTP through the GPRS tunnel. Toward legacy MSCs it anchors inter-system
// handovers over MAP E and ISUP trunks (Fig 9).
//
// The MS table required by the paper ("the VMSC maintains an MS table...
// MM and PDP contexts such as TMSI, IMSI, and the QoS profile requested")
// is the ents slab below: rows live by value in slab chunks addressed by
// generational handles, with open-addressing indexes for the IMSI, MSISDN
// and radio-node lookups — the same storage treatment the HLR/VLR/SGSN/GGSN
// already use, so a million-subscriber population is flat arrays rather
// than a million map-of-pointer entries.
package vmsc

import (
	"net/netip"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gprs"
	"vgprs/internal/gsmid"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/msc"
	"vgprs/internal/q931"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
	"vgprs/internal/ss7"
)

// NSAPIs for the two PDP contexts each MS holds (paper steps 1.3 and 2.9).
const (
	NSAPISignalling uint8 = 5
	NSAPIVoice      uint8 = 6
)

// mscShards is the MS-table slab fan-out. Entries route by IMSI hash; the
// per-shard audits localise a leak to one shard.
const mscShards = 8

// HandoverTarget names the legacy MSC (and its BTS, standing in for the
// radio channel description) serving a neighbour cell.
type HandoverTarget struct {
	MSC sim.NodeID
	BTS sim.NodeID
}

// Hooks observe VMSC events; all run on the simulation goroutine.
type Hooks struct {
	// OnMSRegistered fires when the full Fig 4 procedure (VLR + GPRS +
	// gatekeeper) completes for an MS.
	OnMSRegistered func(imsi gsmid.IMSI, addr netip.Addr)
	// OnMSRegisterFailed fires when any stage fails.
	OnMSRegisterFailed func(imsi gsmid.IMSI, stage string)
	// OnCallEstablished fires when a call reaches conversation.
	OnCallEstablished func(imsi gsmid.IMSI, mobileOriginated bool)
	// OnCallReleased fires when a call finishes clearing.
	OnCallReleased func(imsi gsmid.IMSI)
	// OnHandoverComplete fires when an inter-system handover finishes.
	OnHandoverComplete func(imsi gsmid.IMSI, target sim.NodeID)
}

// Config parameterises a VMSC.
type Config struct {
	ID sim.NodeID
	// VLR is the attached visitor location register (B interface).
	VLR sim.NodeID
	// SGSN is the Gb peer.
	SGSN sim.NodeID
	// Cell is the cell identity stamped on the virtual MSs' Gb traffic.
	Cell gsmid.CGI
	// Gatekeeper is the H.323 gatekeeper's IP address.
	Gatekeeper netip.Addr
	// Dir resolves IP addresses for trace annotation.
	Dir *h323.Directory
	// HandoverTargets maps neighbour cells to legacy MSCs (Fig 9).
	HandoverTargets map[gsmid.CGI]HandoverTarget
	// ETrunks maps each E-interface peer MSC to the shared trunk group.
	ETrunks map[sim.NodeID]*isup.TrunkGroup
	// HandbackCells maps this VMSC's own cells to their BTS nodes, so a
	// subsequent-handover request naming one of them is recognised as a
	// handback onto the anchor's radio system (GSM 03.09).
	HandbackCells map[gsmid.CGI]sim.NodeID
	// DeactivateIdlePDP enables the ablation the paper discusses in §6:
	// tear the signalling PDP context down while the MS is idle and
	// re-activate per call. Requires static PDP addresses.
	DeactivateIdlePDP bool
	// StaticAddrs provides per-IMSI static PDP addresses for the
	// DeactivateIdlePDP mode (and must be provisioned at the GGSN).
	StaticAddrs map[gsmid.IMSI]string
	// PagingTimeout bounds the wait for paging responses. Zero = 5 s.
	PagingTimeout time.Duration
	// SigRTO is the initial retransmission timeout for MAP, RAS and
	// Q.931 transactions; it doubles on each retry, capped at 8x. Zero
	// = 1 s.
	SigRTO time.Duration
	// SigRetries is the per-transaction retransmission budget. Zero
	// means the default (3); negative disables retransmission.
	SigRetries int
	// H323Retries is a separate budget for the RAS and Q.931 planes,
	// whose PDUs tunnel through the whole GPRS stack and so cross far
	// more lossy hops end-to-end than the single-hop MAP links (H.225
	// rides TCP in real deployments, so a transport-grade budget here
	// is the honest model). Zero inherits SigRetries; negative
	// disables retransmission.
	H323Retries int
	// TranscodeCost is the vocoder's per-frame processing delay in each
	// direction. Zero means codec.TranscodeCost (500µs). The A2 ablation
	// sweeps it to show how vocoder placement at the VMSC prices into
	// mouth-to-ear delay.
	TranscodeCost time.Duration

	Hooks Hooks
}

// VMSC is the VoIP mobile switching center node.
type VMSC struct {
	cfg       Config
	registrar *msc.Registrar
	hoTarget  *msc.HandoverTarget
	dm        *ss7.DialogueManager

	keepAlive bool

	// ents is the paper's MS table: rows by value in slab chunks, indexed
	// by packed IMSI, serving radio node, and packed MSISDN. Chunks never
	// move, so an *msEntry stays valid until the row is freed; everything
	// that outlives a procedure step (calls, RAS transactions, paging
	// timers) references the row by generational Handle instead, so a
	// freed subscriber can never be resurrected through a stale pointer.
	ents     *slab.Sharded[msEntry]
	byIMSI   *slab.Index[gsmid.PackedDigits]
	byMS     *slab.Index[sim.NodeID]
	byMSISDN *slab.Index[gsmid.PackedDigits]

	// pendingRAS tracks outstanding RAS transactions by sequence number.
	// Records are batch-allocated and recycled (see rasFree), mirroring
	// ss7.DialogueManager's pendingInvoke slab.
	pendingRAS map[uint32]*rasPending
	rasFree    []*rasPending
	nextRAS    uint32
	// rasRetransmits and q931Retransmits count re-sent signalling
	// requests (fault-tolerance observability).
	rasRetransmits  uint64
	q931Retransmits uint64

	// hoCalls indexes handed-over calls by the anchor-allocated trunk
	// call reference (Q.931 references are resolved per MS entry, since
	// each MS holds at most one call).
	hoCalls    map[uint32]*vCall
	nextHORef  uint32
	nextHOChan uint16
	active     int

	// frameJobs counts scheduled-but-not-yet-fired vocoder jobs (the
	// transcode-delay timers on the talk path); the residual leak audit
	// checks it drains to zero after release.
	frameJobs int

	stats Stats
}

// Stats counts VMSC activity for the experiment harness.
type Stats struct {
	Registrations    uint64
	RegisterFailers  uint64
	CallsEstablished uint64
	CallsReleased    uint64
	FramesUplink     uint64
	FramesDownlink   uint64
	FramesClipped    uint64 // speech frames arriving before the voice PDP context was ready
	Handovers        uint64
}

// msEntry is one row of the MS table: the MM context plus the virtual GPRS
// client holding the PDP contexts, plus the per-MS H.323 endpoint. The entry
// itself is the hub of the per-MS machinery: it hosts the GPRS client
// (gprs.Host), carries the H.323 endpoint's traffic (h323.Sender), and
// threads through the registration chain's completion callbacks — so one
// registering subscriber costs one slab slot instead of a heap object plus
// a closure per wired-up callback.
type msEntry struct {
	v *VMSC
	// self is the row's own slab handle; index entries and cross-references
	// (vCall.entryH, rasPending.entryH) carry it instead of the pointer.
	self    slab.Handle
	imsi    gsmid.IMSI
	imsiKey gsmid.PackedDigits
	msisdn  gsmid.MSISDN
	tmsi    gsmid.TMSI
	lai     gsmid.LAI
	ms      sim.NodeID
	bsc     sim.NodeID

	client *gprs.Client
	addr   netip.Addr
	// endpoint is valid once endpoint.Via is set (after the signalling PDP
	// context comes up).
	endpoint   h323.Endpoint
	registered bool
	voiceUp    bool
	// purge marks a row whose subscriber left the area (CancelLocation):
	// the slot is freed — handle invalidated, indexes dropped — once the
	// deregistration chain (URQ, GPRS detach) completes.
	purge bool

	// regEnv and regAnnounce are registration-transaction state: the env
	// the in-flight registration runs under, and whether its completion
	// answers the radio path (initial registration) or stays silent
	// (keepalive-driven re-registration).
	regEnv      *sim.Env
	regAnnounce bool

	call *vCall

	// Voice fast path (allocation-free relay): the LLC framing buffer and
	// Gb message reused for every uplink RTP packet this MS sends. The
	// SGSN/GGSN relay legs alias these bytes (zero-copy) until the far
	// SGSN's downlink step copies them into its own buffer at arrival —
	// total retention is the Gb+Gn+Gn latency (a few ms plus any chaos
	// jitter), well inside one 20 ms frame interval, so overwriting the
	// buffer every frame is safe. See chaos.MediaChaosPlan's jitter cap.
	llcBuf []byte
	ulMsg  *gb.ULUnitdata
}

// SendLLC implements gprs.Host: uplink LLC PDUs go straight onto the Gb
// interface — the VMSC-specific twist on the shared gprs.Client state
// machine.
func (e *msEntry) SendLLC(env *sim.Env, tlli gsmid.TLLI, pdu []byte) {
	env.Send(e.v.cfg.ID, e.v.cfg.SGSN, gbUL(tlli, e.ms, e.v.cfg.Cell, pdu))
}

// PacketIn implements gprs.Host: downlink IP packets feed the H.323 side.
func (e *msEntry) PacketIn(env *sim.Env, nsapi uint8, pkt ipnet.Packet) {
	e.v.handleIP(env, e, pkt)
}

// ActivationRequested implements gprs.Host: a network-requested PDP
// activation (DeactivateIdlePDP mode) brings the signalling context back so
// an incoming Setup can reach us.
func (e *msEntry) ActivationRequested(env *sim.Env, address string) {
	if _, active := e.client.Context(NSAPISignalling); active {
		return
	}
	_ = e.client.ActivatePDPArg(env, NSAPISignalling, gtp.SignallingQoS(), address,
		reactivateSigDone, e)
}

// reactivateSigDone records the re-activated signalling context's address.
func reactivateSigDone(arg any, addr netip.Addr, ok bool) {
	if ok {
		arg.(*msEntry).addr = addr
	}
}

// SendIPPacket implements h323.Sender: the per-MS endpoint's traffic routes
// through the MS's PDP contexts, choosing the voice context for RTP when it
// is up — the traffic-flow-template role of GPRS.
func (e *msEntry) SendIPPacket(env *sim.Env, pkt ipnet.Packet) {
	nsapi := NSAPISignalling
	if e.voiceUp && (pkt.DstPort == ipnet.PortRTP || pkt.SrcPort == ipnet.PortRTP) {
		// RTP rides the voice context on an allocation-free relay: frame
		// the SNDCP PDU into the per-MS reusable buffer and put the
		// reusable Gb message straight on the wire (pointer messages are
		// not boxed by the interface conversion).
		if _, active := e.client.Context(NSAPIVoice); active {
			if e.ulMsg == nil {
				e.ulMsg = &gb.ULUnitdata{}
			}
			e.llcBuf = gprs.AppendData(e.llcBuf[:0], NSAPIVoice, pkt)
			*e.ulMsg = gb.ULUnitdata{
				TLLI: e.client.TLLI(), MS: e.ms, Cell: e.v.cfg.Cell, PDU: e.llcBuf,
			}
			env.Send(e.v.cfg.ID, e.v.cfg.SGSN, e.ulMsg)
			return
		}
		nsapi = NSAPIVoice
	}
	_ = e.client.SendIP(env, nsapi, pkt)
}

type callState uint8

const (
	callRouting callState = iota + 1
	callPaging
	callDelivering
	callAlerting
	callActive
	callClearing
)

// vCall is one call through the VMSC.
type vCall struct {
	v *VMSC
	// entryH references the owning MS-table row by generational handle;
	// ent() resolves it and reports nil once the subscriber was purged.
	entryH slab.Handle
	// env is the simulation the call runs under, kept for retry timers
	// and retried-dialogue completions that have no live env of their own.
	env *sim.Env
	// ref is the Q.931 call reference on the H.323 leg.
	ref uint16
	// radioRef is the call reference on the A-interface leg.
	radioRef         uint32
	state            callState
	mobileOriginated bool
	// answered dedupes retransmitted Q.931 Connects: the answer is
	// processed once, later copies are only re-acknowledged.
	answered bool
	// released marks a call already passed to forget. Release can reach a
	// call from two directions at once (a far-end ReleaseComplete racing
	// the paging timeout, say); the second path must be a no-op or the
	// active-call count and release stats double-book.
	released bool

	// Q.931 retransmission state (T303 for Setup, T313 for Connect):
	// the in-flight message, its current RTO and remaining budget. A nil
	// q931Msg means no retransmission cycle is running; q931Gen guards
	// stale timers from a previous cycle on the same call.
	q931Msg     sim.Message
	q931RTO     time.Duration
	q931Retries int
	q931Gen     uint32
	// remote is the far party's alias (dialled number on MO, calling
	// party on MT) — the gatekeeper's DRQ matching needs it.
	remote    gsmid.MSISDN
	remoteSig netip.Addr
	remoteMed q931.MediaAddr

	rtpSeq  uint16
	seqDown uint32
	// med is the per-call reusable media-plane state: transcode buffers,
	// the RTP marshal buffer, the pre-bound vocoder-job records, and the
	// RFC 3550 receiver stats for the RTP leg. All of it is scratch that
	// is overwritten every frame interval; nothing downstream retains it
	// longer than the pipeline latency (see callMedia).
	med callMedia

	// Inter-system handover leg (Fig 9), once active.
	hoActive bool
	hoRef    uint32
	hoPeer   sim.NodeID
	hoCIC    isup.CIC
	hoTrunks *isup.TrunkGroup
	hoSeq    uint32
	// hoNext is the prepared-but-not-yet-confirmed leg of a subsequent
	// handover to a third MSC; it replaces hoPeer/hoCIC/hoTrunks when
	// the new target reports the MS's arrival.
	hoNext *hoLeg
}

// ent resolves the call's MS-table row. A nil result means the row was
// freed since the call started (generational-handle invalidation); callers
// treat it as "subscriber gone" and wind the call down.
func (c *vCall) ent() *msEntry { return c.v.ents.Get(c.entryH) }

// hoLeg is one circuit leg of the inter-system handover path.
type hoLeg struct {
	peer   sim.NodeID
	cic    isup.CIC
	trunks *isup.TrunkGroup
}

var _ sim.Node = (*VMSC)(nil)

// New returns a VMSC.
func New(cfg Config) *VMSC {
	if cfg.PagingTimeout == 0 {
		cfg.PagingTimeout = 5 * time.Second
	}
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	switch {
	case cfg.SigRetries == 0:
		cfg.SigRetries = 3
	case cfg.SigRetries < 0:
		cfg.SigRetries = 0
	}
	switch {
	case cfg.H323Retries == 0:
		cfg.H323Retries = cfg.SigRetries
	case cfg.H323Retries < 0:
		cfg.H323Retries = 0
	}
	v := &VMSC{
		cfg:        cfg,
		dm:         ss7.NewDialogueManager(),
		ents:       slab.NewSharded[msEntry](mscShards),
		byIMSI:     slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
		byMS:       slab.NewIndex[sim.NodeID](hashNodeID),
		byMSISDN:   slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
		pendingRAS: make(map[uint32]*rasPending),
		hoCalls:    make(map[uint32]*vCall),
	}
	v.registrar = msc.NewRegistrar(cfg.ID, cfg.VLR, v.onVLROutcome)
	v.registrar.RTO = cfg.SigRTO
	v.registrar.Retries = cfg.SigRetries
	v.hoTarget = msc.NewHandoverTarget(cfg.ID, "88697")
	return v
}

// hashNodeID keys the radio-node index (deterministic, unseeded).
func hashNodeID(n sim.NodeID) uint64 { return slab.HashString(string(n)) }

// entryByIMSI resolves a subscriber row by IMSI (nil if absent).
func (v *VMSC) entryByIMSI(imsi gsmid.IMSI) *msEntry {
	return v.ents.Get(v.byIMSI.Get(imsi.Pack()))
}

// entryByMS resolves a subscriber row by its radio node (nil if absent).
func (v *VMSC) entryByMS(ms sim.NodeID) *msEntry {
	return v.ents.Get(v.byMS.Get(ms))
}

// getOrCreateEntry returns the row for imsi, allocating a slab slot and
// indexing it on first sight.
func (v *VMSC) getOrCreateEntry(imsi gsmid.IMSI) *msEntry {
	key := imsi.Pack()
	if e := v.ents.Get(v.byIMSI.Get(key)); e != nil {
		return e
	}
	h, e := v.ents.Alloc(int(key.Hash() & (mscShards - 1)))
	e.v, e.self, e.imsi, e.imsiKey = v, h, imsi, key
	v.byIMSI.Put(key, h)
	return e
}

// freeEntry releases a subscriber row: every index entry is dropped, the
// directory binding removed, and the slab slot freed — which bumps the
// slot's generation, so handles minted for this occupancy (calls, RAS
// transactions, paging timers, test probes) resolve to nil from now on.
func (v *VMSC) freeEntry(entry *msEntry) {
	v.byIMSI.Delete(entry.imsiKey)
	if entry.msisdn != "" {
		v.byMSISDN.Delete(entry.msisdn.Pack())
	}
	if entry.ms != "" {
		v.byMS.Delete(entry.ms)
	}
	if v.cfg.Dir != nil && entry.addr.IsValid() {
		v.cfg.Dir.Unbind(entry.addr)
	}
	v.ents.Free(entry.self)
}

// HandoversIn returns how many inter-system handovers this VMSC received as
// the target — the paper's §7 "between two VMSCs follows the same
// procedure" case.
func (v *VMSC) HandoversIn() uint64 { return v.hoTarget.Completed() }

// ID implements sim.Node.
func (v *VMSC) ID() sim.NodeID { return v.cfg.ID }

// Stats returns a copy of the activity counters.
func (v *VMSC) Stats() Stats { return v.stats }

// MSTable returns the number of MS table entries (MM+PDP contexts held).
func (v *VMSC) MSTable() int { return v.ents.Len() }

// Entry reports a subscriber's registration state and PDP address.
func (v *VMSC) Entry(imsi gsmid.IMSI) (addr netip.Addr, registered bool, ok bool) {
	e := v.entryByIMSI(imsi)
	if e == nil {
		return netip.Addr{}, false, false
	}
	return e.addr, e.registered, true
}

// EntryHandle returns the generational slab handle of a subscriber's MS
// table row (zero if absent). Test instrumentation for handle-invalidation
// checks; production cross-references mint their own handles.
func (v *VMSC) EntryHandle(imsi gsmid.IMSI) slab.Handle {
	return v.byIMSI.Get(imsi.Pack())
}

// EntryAlive reports whether a handle still resolves to a live MS table
// row. A handle minted before the row was freed reports false forever.
func (v *VMSC) EntryAlive(h slab.Handle) bool { return v.ents.Get(h) != nil }

// ActiveCalls returns the number of calls in progress.
func (v *VMSC) ActiveCalls() int { return v.active }

// InflightFrames returns vocoder jobs scheduled but not yet fired. Zero
// once the media plane has drained; the residual audit asserts this.
func (v *VMSC) InflightFrames() int { return v.frameJobs }

// MediaStats is the RTP-leg receiver accounting for one call, measured at
// the VMSC where the far party's RTP stream terminates. Loss here
// attributes drops to the core (Gb/Gn) legs specifically, as opposed to
// the listener-side end-to-end loss the MS reports.
type MediaStats struct {
	RTPReceived  uint64
	RTPExpected  uint64
	RTPReordered uint64
	// RTPJitter is the RFC 3550 interarrival jitter estimate.
	RTPJitter time.Duration
}

// CallMedia reports the RTP receiver stats for an MS's active call. Read
// it before release: the stats live on the call and die with it.
func (v *VMSC) CallMedia(ms sim.NodeID) (MediaStats, bool) {
	e := v.entryByMS(ms)
	if e == nil || e.call == nil {
		return MediaStats{}, false
	}
	rx := &e.call.med.rx
	return MediaStats{
		RTPReceived:  rx.Received(),
		RTPExpected:  rx.ExpectedFrom(),
		RTPReordered: rx.Reordered(),
		RTPJitter:    rx.Jitter(),
	}, true
}

// PendingRAS returns RAS transactions still awaiting a gatekeeper answer.
func (v *VMSC) PendingRAS() int { return len(v.pendingRAS) }

// HandoffCalls returns calls currently relayed over an E-interface trunk
// (this VMSC as the anchor of an inter-system handover).
func (v *VMSC) HandoffCalls() int { return len(v.hoCalls) }

// PendingTransactions sums every transient signalling record this VMSC
// holds: open MAP dialogues, in-flight location updates at the registrar,
// RAS transactions, and the per-MS GPRS clients' GMM/SM transactions. A
// quiesced VMSC reports zero; the scenario soak asserts on it.
func (v *VMSC) PendingTransactions() int {
	n := v.dm.Outstanding() + v.registrar.Pending() + len(v.pendingRAS)
	v.byIMSI.Range(func(_ gsmid.PackedDigits, h slab.Handle) bool {
		if e := v.ents.Get(h); e != nil && e.client != nil {
			n += e.client.PendingTransactions()
		}
		return true
	})
	return n
}

// SlabImbalance audits the MS-table storage: per-shard occupancy must
// balance (cap == live + free) and every index entry must resolve to a
// live row that agrees with the key. Non-zero means a row leaked out of —
// or was lost by — the slab; the soak/leak gates assert zero alongside the
// transient residuals.
func (v *VMSC) SlabImbalance() int {
	imb := 0
	perShard := make([]int, mscShards)
	v.byIMSI.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		e := v.ents.Get(h)
		if e == nil || e.imsiKey != k {
			imb++
			return true
		}
		perShard[h.Shard()]++
		return true
	})
	for _, a := range v.ents.Audit() {
		imb += a.Imbalance() + absInt(perShard[a.Shard]-a.Live)
	}
	v.byMS.Range(func(k sim.NodeID, h slab.Handle) bool {
		if e := v.ents.Get(h); e == nil || e.ms != k {
			imb++
		}
		return true
	})
	v.byMSISDN.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		if e := v.ents.Get(h); e == nil || e.msisdn.Pack() != k {
			imb++
		}
		return true
	})
	return imb
}

func absInt(d int) int {
	if d < 0 {
		return -d
	}
	return d
}

// staticAddrFor returns the provisioned static PDP address for an IMSI in
// DeactivateIdlePDP mode ("" = dynamic).
func (v *VMSC) staticAddrFor(imsi gsmid.IMSI) string {
	if !v.cfg.DeactivateIdlePDP {
		return ""
	}
	return v.cfg.StaticAddrs[imsi]
}

// newClient builds the virtual GPRS client for an MS, hosted by the entry
// itself (no per-client callback closures).
func (v *VMSC) newClient(entry *msEntry) *gprs.Client {
	client := gprs.NewHostedClient(entry.imsi, entry)
	client.Timeout = v.cfg.SigRTO
	client.Retries = v.cfg.SigRetries
	if client.Retries == 0 {
		client.Retries = -1 // cfg 0 is post-normalisation "no retries"
	}
	return client
}

// sigDeadline is the worst-case transaction lifetime under the capped RTO
// schedule (attempts at 0, T, 3T, 7T…). One-shot MAP dialogues that do not
// retransmit (the handover legs) use it so their timeout matches the
// retried planes' failure horizon.
func (v *VMSC) sigDeadline() time.Duration {
	return sim.RetryDeadline(v.cfg.SigRTO, v.cfg.SigRetries)
}

// Retransmits reports the total signalling retransmissions this VMSC has
// performed across its MAP, RAS and Q.931 planes (GPRS GMM/SM retries are
// counted by the per-MS clients).
func (v *VMSC) Retransmits() uint64 {
	total := v.dm.Retransmits() + v.rasRetransmits + v.q931Retransmits
	v.byIMSI.Range(func(_ gsmid.PackedDigits, h slab.Handle) bool {
		if e := v.ents.Get(h); e != nil && e.client != nil {
			total += e.client.Retransmits()
		}
		return true
	})
	return total
}

// setupEndpoint (re)initialises the per-MS H.323 endpoint in place; the
// entry routes its traffic (h323.Sender), so no closures are allocated.
func (v *VMSC) setupEndpoint(entry *msEntry) {
	entry.endpoint = h323.Endpoint{
		Node: v.cfg.ID,
		Addr: entry.addr,
		Dir:  v.cfg.Dir,
		Via:  entry,
	}
}
