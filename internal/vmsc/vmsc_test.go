package vmsc_test

import (
	"net/netip"
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/netsim"
	"vgprs/internal/q931"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
	"vgprs/internal/vmsc"
)

func registered(t *testing.T, opts netsim.VGPRSOptions) *netsim.VGPRSNet {
	t.Helper()
	n := netsim.BuildVGPRS(opts)
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMSTableAndEntry(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1, NumMS: 3})
	if n.VMSC.MSTable() != 3 {
		t.Fatalf("MSTable = %d", n.VMSC.MSTable())
	}
	if _, _, ok := n.VMSC.Entry("999990000000000"); ok {
		t.Fatal("Entry for unknown IMSI reported ok")
	}
	st := n.VMSC.Stats()
	if st.Registrations != 3 || st.RegisterFailers != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMTCallWhileBusyIsRefused(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1, NumTerminals: 2})
	ms := n.MSs[0]

	// First call occupies the MS.
	if _, err := n.Terminals[0].Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("state = %v", ms.State())
	}

	// Second caller gets Release Complete with user-busy.
	ref, err := n.Terminals[1].Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if st, _ := n.Terminals[1].CallState(ref); st != h323.CallCleared {
		t.Fatalf("second caller state = %v", st)
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Q.931 Release Complete", From: "VMSC-1", To: "TERM-2"},
	}); err != nil {
		t.Fatal(err)
	}
	// The first call is unaffected.
	if ms.State() != gsm.MSInCall || n.VMSC.ActiveCalls() != 1 {
		t.Fatalf("first call disturbed: %v / %d", ms.State(), n.VMSC.ActiveCalls())
	}
}

func TestPagingTimeoutReleasesCaller(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1})
	ms := n.MSs[0]
	// Sever the radio path so paging can never reach the MS.
	n.Env.LinkBetween("BTS-1", sim.NodeID(ms.ID())).Down = true

	ref, err := n.Terminals[0].Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	if st, _ := n.Terminals[0].CallState(ref); st != h323.CallCleared {
		t.Fatalf("caller state after paging timeout = %v", st)
	}
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatal("call state leaked after paging timeout")
	}
}

func TestMOCallToUnknownAliasReleased(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1})
	ms := n.MSs[0]
	released := false
	ms.SetOnReleased(func(uint32) { released = true })
	if err := ms.Dial(n.Env, "886299999999"); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if !released || ms.State() != gsm.MSIdle {
		t.Fatalf("released=%v state=%v", released, ms.State())
	}
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatal("call state leaked after ARJ")
	}
	// Channel returned to the BSC pool.
	if n.BSC.ChannelsInUse() != 0 {
		t.Fatalf("channels in use = %d", n.BSC.ChannelsInUse())
	}
}

func TestRegistrationFailsWhenGatekeeperUnreachable(t *testing.T) {
	failedStage := ""
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{
		Seed: 1,
		VMSCMutate: func(cfg *vmsc.Config) {
			cfg.SigRTO = 500 * time.Millisecond
			cfg.Hooks.OnMSRegisterFailed = func(_ gsmid.IMSI, stage string) {
				failedStage = stage
			}
		},
	})
	// Cut the Gi link so RAS can never reach the gatekeeper.
	n.Env.LinkBetween("GGSN-1", "GI").Down = true
	n.Terminals[0].Register(n.Env)
	n.MSs[0].PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 60*time.Second)

	if n.MSs[0].State() == gsm.MSIdle {
		t.Fatal("MS registered despite unreachable gatekeeper")
	}
	if _, registered, _ := n.VMSC.Entry(n.Subscribers[0].IMSI); registered {
		t.Fatal("MS table entry marked registered")
	}
	if failedStage != "gatekeeper-registration" {
		t.Fatalf("failed stage = %q", failedStage)
	}
}

func TestRegistrationFailsWhenSGSNUnreachable(t *testing.T) {
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{Seed: 1})
	n.Env.LinkBetween("VMSC-1", "SGSN-1").Down = true
	n.MSs[0].PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 60*time.Second)
	if n.MSs[0].State() == gsm.MSIdle {
		t.Fatal("MS registered despite unreachable SGSN")
	}
}

func TestUnknownSubscriberRejected(t *testing.T) {
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{Seed: 1})
	ghost := gsm.NewMS(gsm.MSConfig{
		ID: "MS-GHOST", IMSI: "466929999999999", MSISDN: "886999999999",
		Ki: [16]byte{1}, BTS: "BTS-1",
	})
	n.Env.AddNode(ghost)
	n.Env.Connect("MS-GHOST", "BTS-1", "Um", time.Millisecond)
	ghost.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	if ghost.State() == gsm.MSIdle {
		t.Fatal("unprovisioned IMSI registered")
	}
}

func TestFarEndReleaseClearsEverything(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1})
	ms := n.MSs[0]
	term := n.Terminals[0]
	if err := ms.Dial(n.Env, netsim.TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	refs := term.CallRefs()
	if len(refs) != 1 {
		t.Fatalf("terminal refs = %v", refs)
	}
	if err := term.Hangup(n.Env, refs[0]); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("MS state = %v", ms.State())
	}
	if n.VMSC.ActiveCalls() != 0 || n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("calls=%d contexts=%d", n.VMSC.ActiveCalls(), n.SGSN.ActiveContexts())
	}
	if n.VMSC.Stats().CallsReleased == 0 {
		t.Fatal("release not counted")
	}
}

func TestConsecutiveCallsReuseState(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1})
	ms := n.MSs[0]
	for i := 0; i < 5; i++ {
		if err := ms.Dial(n.Env, netsim.TerminalAlias(0)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		n.Env.RunUntil(n.Env.Now() + 3*time.Second)
		if ms.State() != gsm.MSInCall {
			t.Fatalf("call %d state = %v", i, ms.State())
		}
		if err := ms.Hangup(n.Env); err != nil {
			t.Fatal(err)
		}
		n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	}
	st := n.VMSC.Stats()
	if st.CallsEstablished != 5 || st.CallsReleased != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("contexts after 5 calls = %d", n.SGSN.ActiveContexts())
	}
}

func TestUplinkSpeechBeforeVoiceContextIsClipped(t *testing.T) {
	// The MS starts talking at Um_Connect, a moment before the voice PDP
	// context finishes activating; those frames are clipped, not crashed.
	n := registered(t, netsim.VGPRSOptions{Seed: 1, Talk: true})
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, netsim.TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	st := n.VMSC.Stats()
	if st.FramesUplink == 0 {
		t.Fatal("no uplink frames transcoded")
	}
	// Clipping may be zero when activation wins the race; the invariant
	// is only that clipped+uplink accounts for everything sent.
	if st.FramesClipped > st.FramesUplink {
		t.Fatalf("clipped %d > uplink %d", st.FramesClipped, st.FramesUplink)
	}
}

// TestOrphanPagingResponseReleasesChannel covers the race where the paging
// response arrives after the caller abandoned: the VMSC must release the
// channel the MS acquired rather than leak it.
func TestOrphanPagingResponseReleasesChannel(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1})
	n.Env.Send("BSC-1", "VMSC-1", gsm.PagingResponse{
		Leg: gsm.LegA, MS: "MS-1", Identity: gsmid.ByTMSI(1),
	})
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "A_Paging_Response", To: "VMSC-1"},
		{Msg: "A_Release", From: "VMSC-1", To: "BSC-1"},
	}); err != nil {
		t.Fatal(err)
	}
	if n.BSC.ChannelsInUse() != 0 {
		t.Fatalf("channels in use = %d", n.BSC.ChannelsInUse())
	}
}

func TestQ931ReleaseForUnknownCallIgnored(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 1})
	// Inject a stray ReleaseComplete toward the MS's signalling address.
	addr, _, _ := n.VMSC.Entry(n.Subscribers[0].IMSI)
	body, err := q931.Marshal(q931.ReleaseComplete{CallRef: 999, Cause: q931.CauseNormal})
	if err != nil {
		t.Fatal(err)
	}
	n.Env.Send("TERM-1", "GI", strayPacket(n, addr, body))
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	// Nothing crashed; no call state appeared.
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatal("stray release created call state")
	}
}

func strayPacket(n *netsim.VGPRSNet, dst netip.Addr, body []byte) sim.Message {
	return ipnet.Packet{
		Src: ipnet.MustAddr("192.168.1.10"), Dst: dst,
		Proto: ipnet.ProtoTCP, SrcPort: ipnet.PortQ931, DstPort: ipnet.PortQ931,
		Payload: body,
	}
}

// TestVoicePDPExhaustionClearsBothLegs injects resource exhaustion at the
// SGSN so the per-call voice context (paper step 2.9) cannot activate: the
// VMSC must clear the radio leg AND release the already-answered H.323 leg.
func TestVoicePDPExhaustionClearsBothLegs(t *testing.T) {
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{Seed: 1, SGSNMaxContexts: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// The single context slot is held by the signalling context; the
	// voice activation at Connect time must fail.
	ms := n.MSs[0]
	released := false
	ms.SetOnReleased(func(uint32) { released = true })
	if err := ms.Dial(n.Env, netsim.TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	if !released || ms.State() != gsm.MSIdle {
		t.Fatalf("released=%v state=%v", released, ms.State())
	}
	if n.Terminals[0].ActiveCalls() != 0 {
		t.Fatal("terminal call leaked after voice-PDP failure")
	}
	if n.VMSC.ActiveCalls() != 0 || n.BSC.ChannelsInUse() != 0 {
		t.Fatalf("leaks: calls=%d channels=%d", n.VMSC.ActiveCalls(), n.BSC.ChannelsInUse())
	}
	// The network recovers once resources exist: the signalling context
	// still works for a later (failed) attempt's signalling.
	if n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("contexts = %d", n.SGSN.ActiveContexts())
	}
}

func TestOnMSRegisteredHookFires(t *testing.T) {
	type regEvent struct {
		imsi gsmid.IMSI
		addr netip.Addr
	}
	var events []regEvent
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{
		Seed: 3, NumMS: 2,
		VMSCMutate: func(cfg *vmsc.Config) {
			cfg.Hooks.OnMSRegistered = func(imsi gsmid.IMSI, addr netip.Addr) {
				events = append(events, regEvent{imsi, addr})
			}
		},
	})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(events))
	}
	for i, ev := range events {
		if ev.imsi != n.Subscribers[i].IMSI {
			t.Errorf("event %d IMSI = %s, want %s", i, ev.imsi, n.Subscribers[i].IMSI)
		}
		if !ev.addr.IsValid() {
			t.Errorf("event %d has no PDP address", i)
		}
	}
}

// TestPowerOffDuringCallClearsBothLegs powers the MS off mid-call: the VMSC
// must clear the H.323 leg toward the terminal, remove the gatekeeper
// alias, and detach the subscriber's GPRS contexts.
func TestPowerOffDuringCallClearsBothLegs(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 5})
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, netsim.TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if n.VMSC.ActiveCalls() != 1 || n.Terminals[0].ActiveCalls() != 1 {
		t.Fatalf("call not up: vmsc=%d term=%d",
			n.VMSC.ActiveCalls(), n.Terminals[0].ActiveCalls())
	}

	if err := ms.PowerOff(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)

	if n.VMSC.ActiveCalls() != 0 {
		t.Errorf("VMSC still holds %d calls", n.VMSC.ActiveCalls())
	}
	if n.Terminals[0].ActiveCalls() != 0 {
		t.Errorf("terminal still holds %d calls", n.Terminals[0].ActiveCalls())
	}
	if _, reg, _ := n.VMSC.Entry(n.Subscribers[0].IMSI); reg {
		t.Error("subscriber still marked registered at the VMSC")
	}
	if _, found := n.GK.Lookup(n.Subscribers[0].MSISDN); found {
		t.Error("gatekeeper still resolves the detached alias")
	}
	if got := n.SGSN.ActiveContexts(); got != 0 {
		t.Errorf("SGSN still holds %d PDP contexts after detach", got)
	}
}

// TestPowerOffInIdlePDPModeReactivatesSignalling covers the IMSI-detach
// path in DeactivateIdlePDP mode: the signalling context is already torn
// down when the detach arrives, so the VMSC must transiently re-activate it
// to deliver the URQ before detaching for good.
func TestPowerOffInIdlePDPModeReactivatesSignalling(t *testing.T) {
	n := registered(t, netsim.VGPRSOptions{Seed: 5, DeactivateIdlePDP: true})
	if got := n.SGSN.ActiveContexts(); got != 0 {
		t.Fatalf("idle-PDP mode left %d contexts active", got)
	}

	if err := n.MSs[0].PowerOff(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)

	if _, found := n.GK.Lookup(n.Subscribers[0].MSISDN); found {
		t.Error("gatekeeper still resolves the detached alias")
	}
	if _, reg, _ := n.VMSC.Entry(n.Subscribers[0].IMSI); reg {
		t.Error("subscriber still marked registered at the VMSC")
	}
	if got := n.SGSN.ActiveContexts(); got != 0 {
		t.Errorf("SGSN holds %d contexts after idle-mode detach", got)
	}
	// The unregistration must be visible on the RAS plane.
	if _, ok := n.Rec.First("RAS URQ"); !ok {
		t.Error("no URQ traced for the detach")
	}
}

// TestVMSCKeepAliveUnderGatekeeperTTL runs the full vGPRS network against
// a TTL-enforcing gatekeeper. Without keepalives the MS aliases lapse and
// terminating calls are rejected; with the VMSC refreshing on behalf of
// its MSs (as it registered on their behalf, paper step 1.4) the rows
// survive indefinitely and MT calls still connect.
func TestVMSCKeepAliveUnderGatekeeperTTL(t *testing.T) {
	ttl := func(cfg *h323.GatekeeperConfig) { cfg.RegistrationTTL = 20 * time.Second }

	// No keepalive: the alias lapses.
	n := registered(t, netsim.VGPRSOptions{Seed: 7, GKMutate: ttl})
	n.Env.RunUntil(n.Env.Now() + 60*time.Second)
	if n.GK.SweepExpired(n.Env.Now()) == 0 {
		t.Fatal("no registration expired without keepalives")
	}
	if _, ok := n.GK.Lookup(n.Subscribers[0].MSISDN); ok {
		t.Fatal("MS alias survived without keepalives")
	}
	if _, err := n.Terminals[0].Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatal("MT call connected to a lapsed registration")
	}

	// With keepalives: rows live across three lifetimes, MT call works.
	k := registered(t, netsim.VGPRSOptions{Seed: 7, GKMutate: ttl})
	k.VMSC.StartKeepAlive(k.Env, 8*time.Second)
	k.Terminals[0].StartKeepAlive(k.Env, 8*time.Second)
	k.Env.RunUntil(k.Env.Now() + 60*time.Second)
	if lapsed := k.GK.SweepExpired(k.Env.Now()); lapsed != 0 {
		t.Fatalf("%d registrations lapsed despite VMSC keepalives", lapsed)
	}
	if _, err := k.Terminals[0].Call(k.Env, k.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	k.Env.RunUntil(k.Env.Now() + 5*time.Second)
	if k.VMSC.ActiveCalls() != 1 {
		t.Fatal("MT call failed under keepalive")
	}
}
