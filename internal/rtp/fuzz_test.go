package rtp

import (
	"reflect"
	"testing"
)

// FuzzDecode hammers Unmarshal with arbitrary bytes. The decoder must never
// panic, and any packet it accepts must survive a marshal/unmarshal round
// trip with identical decoded fields — the media plane re-encodes packets
// it has decoded when relaying between legs. The comparison is
// decoded-vs-redecoded rather than input-vs-output bytes: the header bits
// the Packet struct does not model (padding, the exact version byte) are
// normalised by Marshal, legitimately.
func FuzzDecode(f *testing.F) {
	for _, p := range []Packet{
		{PayloadType: PayloadTypeGSM, Seq: 1, Timestamp: TimestampStep, SSRC: 0xCAFE,
			Payload: []byte{0xD0, 0x01, 0x02}},
		{PayloadType: 0x7F, Marker: true, Seq: 0xFFFF, Timestamp: 0xFFFFFFFF,
			SSRC: 0xFFFFFFFF, Payload: nil},
		{},
	} {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0x40, 0x00}) // wrong version
	f.Add([]byte{0x80, 0x03, 0x00, 0x01, 0x00, 0x00, 0x00, 0xA0, 0x00, 0x00, 0xCA, 0xFE})

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Unmarshal(b)
		if err != nil {
			return
		}
		back, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("re-marshalled packet does not decode: %v", err)
		}
		// Normalise the nil-vs-empty payload distinction: the wire form
		// cannot express it.
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		if len(back.Payload) == 0 {
			back.Payload = nil
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatalf("round trip changed packet:\n got %#v\nwant %#v", back, p)
		}
	})
}
