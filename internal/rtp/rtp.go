// Package rtp implements the Real-time Transport Protocol packetisation
// used on the vGPRS media plane: the RFC 3550 fixed header, payload
// marshalling, and receive-side statistics (loss, reordering, interarrival
// jitter) for the voice-quality experiment C3.
package rtp

import (
	"errors"
	"fmt"
	"time"

	"vgprs/internal/wire"
)

// ErrBadPacket is returned when an RTP packet fails to decode.
var ErrBadPacket = errors.New("rtp: malformed packet")

// PayloadTypeGSM is the static RTP payload type for GSM 06.10 (RFC 3551).
const PayloadTypeGSM = 3

// ClockRate is the RTP timestamp clock for GSM audio (8 kHz).
const ClockRate = 8000

// TimestampStep is the RTP timestamp increment per 20 ms GSM frame.
const TimestampStep = 160

// TimestampAt converts a wall/virtual-clock instant into RTP timestamp
// units. Senders that gate frames (DTX) must derive timestamps from the
// sampling clock, not a per-packet counter, or receivers would measure the
// silence gaps as jitter.
func TimestampAt(now time.Duration) uint32 {
	return uint32(now * ClockRate / time.Second)
}

// Packet is an RTP packet: the fixed header plus payload.
type Packet struct {
	PayloadType uint8
	Marker      bool
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
	Payload     []byte
}

// Name implements sim.Message.
func (Packet) Name() string { return "RTP" }

// AppendTo appends the packet's wire form (RFC 3550 fixed header: V=2, no
// padding, no extension, no CSRC) to dst and returns the extended slice.
func (p Packet) AppendTo(dst []byte) []byte {
	w := wire.Wrap(dst)
	w.U8(0x80) // V=2
	b2 := p.PayloadType & 0x7F
	if p.Marker {
		b2 |= 0x80
	}
	w.U8(b2)
	w.U16(p.Seq)
	w.U32(p.Timestamp)
	w.U32(p.SSRC)
	w.Raw(p.Payload)
	return w.Bytes()
}

// Marshal encodes the packet into an exact-size fresh buffer.
func (p Packet) Marshal() []byte {
	return p.AppendTo(make([]byte, 0, 12+len(p.Payload)))
}

// Unmarshal decodes an RTP packet.
func Unmarshal(b []byte) (Packet, error) {
	var r wire.Reader
	r.Reset(b)
	v := r.U8()
	if r.Err() == nil && v>>6 != 2 {
		return Packet{}, fmt.Errorf("%w: version %d", ErrBadPacket, v>>6)
	}
	b2 := r.U8()
	p := Packet{
		PayloadType: b2 & 0x7F,
		Marker:      b2&0x80 != 0,
		Seq:         r.U16(),
		Timestamp:   r.U32(),
		SSRC:        r.U32(),
	}
	p.Payload = r.Rest()
	if err := r.Err(); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	return p, nil
}

// UnmarshalView decodes like Unmarshal but the returned packet's Payload
// aliases b instead of copying it. For receive paths that consume the
// payload before b is reused (the per-frame media pipeline).
func UnmarshalView(b []byte) (Packet, error) {
	if len(b) < 12 {
		return Unmarshal(b)
	}
	p, err := Unmarshal(b[:12:12])
	if err != nil {
		return Packet{}, err
	}
	if len(b) > 12 {
		p.Payload = b[12:]
	}
	return p, nil
}

// Receiver tracks receive-side stream statistics.
type Receiver struct {
	started   bool
	highest   uint16
	cycles    uint32
	received  uint64
	reordered uint64
	// jitter is the RFC 3550 interarrival jitter estimate in RTP clock
	// units, kept as a float per the spec's running formula.
	jitter        float64
	lastTransit   float64
	haveTransit   bool
	delays        []time.Duration
	firstSeq      uint16
	expectedBase  uint64
	lastArrival   time.Duration
	lastTimestamp uint32
}

// NewReceiver returns an empty receiver.
func NewReceiver() *Receiver { return &Receiver{} }

// Receive records a packet arriving at the given (virtual) time, with the
// sender-side generation time when known (for one-way delay tracking).
func (r *Receiver) Receive(p Packet, arrival time.Duration, generated time.Duration, haveGenerated bool) {
	if !r.started {
		r.started = true
		r.firstSeq = p.Seq
		r.highest = p.Seq
	} else {
		diff := int16(p.Seq - r.highest)
		switch {
		case diff > 0:
			if p.Seq < r.highest {
				r.cycles++
			}
			r.highest = p.Seq
		default:
			r.reordered++
		}
	}
	r.received++

	// RFC 3550 interarrival jitter: J += (|D| - J) / 16, with transit
	// times in clock units.
	arrivalTicks := float64(arrival) / float64(time.Second) * ClockRate
	transit := arrivalTicks - float64(p.Timestamp)
	if r.haveTransit {
		d := transit - r.lastTransit
		if d < 0 {
			d = -d
		}
		r.jitter += (d - r.jitter) / 16
	}
	r.lastTransit = transit
	r.haveTransit = true
	r.lastArrival = arrival
	r.lastTimestamp = p.Timestamp

	if haveGenerated {
		r.delays = append(r.delays, arrival-generated)
	}
}

// Received returns the number of packets received.
func (r *Receiver) Received() uint64 { return r.received }

// Reordered returns the number of out-of-order arrivals.
func (r *Receiver) Reordered() uint64 { return r.reordered }

// ExpectedFrom returns how many packets were expected given the highest
// sequence seen (inclusive range from the first).
func (r *Receiver) ExpectedFrom() uint64 {
	if !r.started {
		return 0
	}
	// RFC 3550 extended sequence numbers: the cycle count extends the
	// highest sequence; plain uint16 subtraction would wrap on its own
	// and double-count the cycle.
	extHighest := uint64(r.cycles)<<16 + uint64(r.highest)
	return extHighest - uint64(r.firstSeq) + 1
}

// Lost returns the estimated number of lost packets.
func (r *Receiver) Lost() uint64 {
	exp := r.ExpectedFrom()
	if exp <= r.received {
		return 0
	}
	return exp - r.received
}

// Jitter returns the RFC 3550 interarrival jitter as a duration.
func (r *Receiver) Jitter() time.Duration {
	return time.Duration(r.jitter / ClockRate * float64(time.Second))
}

// Delays returns the recorded one-way delays (for percentile analysis).
func (r *Receiver) Delays() []time.Duration {
	out := make([]time.Duration, len(r.delays))
	copy(out, r.delays)
	return out
}

// MeanDelay returns the average one-way delay, or zero with no samples.
func (r *Receiver) MeanDelay() time.Duration {
	if len(r.delays) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.delays {
		sum += d
	}
	return sum / time.Duration(len(r.delays))
}
