package rtp

import (
	"testing"
	"time"
)

func BenchmarkMarshalPacket(b *testing.B) {
	p := Packet{PayloadType: PayloadTypeGSM, Seq: 7, Timestamp: 160, SSRC: 1, Payload: make([]byte, 33)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkUnmarshalPacket(b *testing.B) {
	buf := Packet{PayloadType: PayloadTypeGSM, Seq: 7, Payload: make([]byte, 33)}.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiverReceive(b *testing.B) {
	r := NewReceiver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Receive(Packet{Seq: uint16(i), Timestamp: uint32(i) * TimestampStep},
			time.Duration(i)*20*time.Millisecond, 0, false)
	}
}
