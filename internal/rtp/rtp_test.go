package rtp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	p := Packet{
		PayloadType: PayloadTypeGSM, Marker: true,
		Seq: 1000, Timestamp: 160000, SSRC: 0xDEADBEEF,
		Payload: []byte("frame"),
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadType != p.PayloadType || got.Marker != p.Marker ||
		got.Seq != p.Seq || got.Timestamp != p.Timestamp || got.SSRC != p.SSRC ||
		!bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip %+v -> %+v", p, got)
	}
}

func TestHeaderLayout(t *testing.T) {
	b := Packet{PayloadType: 3, Seq: 1}.Marshal()
	if len(b) != 12 {
		t.Fatalf("header len = %d, want 12", len(b))
	}
	if b[0] != 0x80 {
		t.Fatalf("first octet = %#x, want 0x80 (V=2)", b[0])
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{0x80, 3}); !errors.Is(err, ErrBadPacket) {
		t.Errorf("short err = %v", err)
	}
	b := Packet{}.Marshal()
	b[0] = 0x40 // version 1
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadPacket) {
		t.Errorf("version err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(pt uint8, marker bool, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := Packet{PayloadType: pt & 0x7F, Marker: marker, Seq: seq, Timestamp: ts, SSRC: ssrc, Payload: payload}
		got, err := Unmarshal(p.Marshal())
		return err == nil && got.PayloadType == p.PayloadType && got.Marker == marker &&
			got.Seq == seq && got.Timestamp == ts && got.SSRC == ssrc &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func receiveN(r *Receiver, n int, interval time.Duration, jitterEvery int, jitterAmount time.Duration) {
	for i := 0; i < n; i++ {
		arrival := time.Duration(i) * interval
		if jitterEvery > 0 && i%jitterEvery == 0 {
			arrival += jitterAmount
		}
		r.Receive(Packet{
			Seq:       uint16(i),
			Timestamp: uint32(i * TimestampStep),
		}, arrival, arrival-10*time.Millisecond, true)
	}
}

func TestReceiverCountsAndDelay(t *testing.T) {
	r := NewReceiver()
	receiveN(r, 100, 20*time.Millisecond, 0, 0)
	if r.Received() != 100 || r.Lost() != 0 || r.Reordered() != 0 {
		t.Fatalf("recv=%d lost=%d reorder=%d", r.Received(), r.Lost(), r.Reordered())
	}
	if r.MeanDelay() != 10*time.Millisecond {
		t.Fatalf("mean delay = %v", r.MeanDelay())
	}
	if len(r.Delays()) != 100 {
		t.Fatalf("delays = %d", len(r.Delays()))
	}
}

func TestReceiverPerfectStreamHasLowJitter(t *testing.T) {
	r := NewReceiver()
	receiveN(r, 200, 20*time.Millisecond, 0, 0)
	if r.Jitter() > time.Millisecond {
		t.Fatalf("jitter = %v for a perfectly paced stream", r.Jitter())
	}
}

func TestReceiverJitterDetectsVariance(t *testing.T) {
	steady := NewReceiver()
	receiveN(steady, 200, 20*time.Millisecond, 0, 0)
	bursty := NewReceiver()
	receiveN(bursty, 200, 20*time.Millisecond, 3, 15*time.Millisecond)
	if bursty.Jitter() <= steady.Jitter() {
		t.Fatalf("bursty jitter %v <= steady %v", bursty.Jitter(), steady.Jitter())
	}
}

func TestReceiverLoss(t *testing.T) {
	r := NewReceiver()
	for i := 0; i < 100; i++ {
		if i%10 == 3 {
			continue // drop every 10th
		}
		r.Receive(Packet{Seq: uint16(i), Timestamp: uint32(i * TimestampStep)},
			time.Duration(i)*20*time.Millisecond, 0, false)
	}
	if r.Lost() != 10 {
		t.Fatalf("Lost = %d, want 10", r.Lost())
	}
}

func TestReceiverReordering(t *testing.T) {
	r := NewReceiver()
	seqs := []uint16{0, 1, 3, 2, 4}
	for i, s := range seqs {
		r.Receive(Packet{Seq: s}, time.Duration(i)*time.Millisecond, 0, false)
	}
	if r.Reordered() != 1 {
		t.Fatalf("Reordered = %d, want 1", r.Reordered())
	}
	if r.Lost() != 0 {
		t.Fatalf("Lost = %d, want 0 (late arrival filled the gap)", r.Lost())
	}
}

func TestReceiverEmpty(t *testing.T) {
	r := NewReceiver()
	if r.ExpectedFrom() != 0 || r.Lost() != 0 || r.MeanDelay() != 0 {
		t.Fatal("empty receiver stats must be zero")
	}
}

func TestReceiverSequenceWraparound(t *testing.T) {
	r := NewReceiver()
	at := time.Duration(0)
	// 100 packets straddling the uint16 boundary: 65500..65535, 0..63.
	for i := 0; i < 100; i++ {
		seq := uint16(65500 + i) // wraps naturally
		r.Receive(Packet{Seq: seq, Timestamp: uint32(i) * TimestampStep},
			at, 0, false)
		at += 20 * time.Millisecond
	}
	if r.Received() != 100 {
		t.Fatalf("received = %d", r.Received())
	}
	if r.ExpectedFrom() != 100 {
		t.Fatalf("expected = %d across the wrap", r.ExpectedFrom())
	}
	if r.Lost() != 0 {
		t.Fatalf("lost = %d on a complete wrapped stream", r.Lost())
	}
}

// TestReceiverDTXGapIsNotJitter models silence suppression: the sender
// skips frames but stamps timestamps from the sampling clock, so the
// arrival gap matches the timestamp gap exactly and measured jitter must
// stay zero.
func TestReceiverDTXGapIsNotJitter(t *testing.T) {
	r := NewReceiver()
	at := time.Duration(0)
	seq := uint16(0)
	emit := func(frames int) {
		for i := 0; i < frames; i++ {
			seq++
			r.Receive(Packet{Seq: seq, Timestamp: TimestampAt(at)}, at, 0, false)
			at += 20 * time.Millisecond
		}
	}
	emit(50)                     // talk spurt
	at += 600 * time.Millisecond // silence: no packets, clock advances
	emit(50)                     // next spurt
	if got := r.Jitter(); got != 0 {
		t.Fatalf("jitter = %v across a DTX gap, want 0", got)
	}
	// Counter-case: if the sender had stamped timestamps per packet sent
	// (the bug TimestampAt prevents), the same gap WOULD read as jitter.
	w := NewReceiver()
	at2, ts := time.Duration(0), uint32(0)
	for i := 0; i < 50; i++ {
		w.Receive(Packet{Seq: uint16(i), Timestamp: ts}, at2, 0, false)
		ts += TimestampStep
		at2 += 20 * time.Millisecond
	}
	at2 += 600 * time.Millisecond
	for i := 50; i < 100; i++ {
		w.Receive(Packet{Seq: uint16(i), Timestamp: ts}, at2, 0, false)
		ts += TimestampStep
		at2 += 20 * time.Millisecond
	}
	if w.Jitter() == 0 {
		t.Fatal("per-packet timestamps should have produced jitter")
	}
}

// TestReceiverAccountingProperty: for any starting sequence (including
// ones that wrap) and any loss pattern that keeps the first and last
// packet, ExpectedFrom equals the span and Lost equals the drop count.
func TestReceiverAccountingProperty(t *testing.T) {
	prop := func(start uint16, lossMask uint64) bool {
		const n = 200
		r := NewReceiver()
		at := time.Duration(0)
		dropped := uint64(0)
		for i := 0; i < n; i++ {
			seq := start + uint16(i)
			// Drop middle packets per the mask; always deliver the
			// first and last so the span is well defined.
			if i != 0 && i != n-1 && lossMask>>(uint(i)%64)&1 == 1 {
				lossMask = lossMask*6364136223846793005 + 1 // next bits
				dropped++
				continue
			}
			lossMask = lossMask*6364136223846793005 + 1
			r.Receive(Packet{Seq: seq, Timestamp: TimestampAt(at)}, at, 0, false)
			at += 20 * time.Millisecond
		}
		return r.ExpectedFrom() == n && r.Lost() == dropped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
