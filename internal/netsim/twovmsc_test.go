package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/trace"
)

func area1LAI() gsmid.LAI { return gsmid.LAI{MCC: "466", MNC: "92", LAC: 1} }

// TestInterVMSCMovement is the paper's §5 movement case end to end: an MS
// registered through VMSC-1 moves into VMSC-2's area. The location update
// runs through VMSC-2 and VLR-2, the HLR cancels VLR-1 (and SGSN-1 when the
// new attach lands), VLR-1 tells VMSC-1, and VMSC-1 releases the
// gatekeeper alias and GPRS contexts — after which the alias resolves to
// VMSC-2's address and terminating calls reach the MS through the new
// switch.
func TestInterVMSCMovement(t *testing.T) {
	n := BuildTwoVMSC(VGPRSOptions{Seed: 3})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	sub := n.Subscribers[0]

	addr1, reg1, _ := n.VMSC.Entry(sub.IMSI)
	if !reg1 {
		t.Fatal("not registered at VMSC-1 to begin with")
	}
	if reg, ok := n.GK.Lookup(sub.MSISDN); !ok || reg.SignalAddr != addr1 {
		t.Fatalf("GK alias not at VMSC-1's address: %+v ok=%v", reg, ok)
	}
	if n.SGSN.ActiveContexts() == 0 {
		t.Fatal("no contexts at SGSN-1 before the move")
	}

	if err := ms.MoveTo(n.Env, "BTS-2", n.Area2LAI); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("MS state after move = %v", ms.State())
	}

	// New area serves the subscriber...
	addr2, reg2, ok2 := n.VMSC2.Entry(sub.IMSI)
	if !ok2 || !reg2 {
		t.Fatalf("not registered at VMSC-2: ok=%v registered=%v", ok2, reg2)
	}
	if reg, ok := n.GK.Lookup(sub.MSISDN); !ok || reg.SignalAddr != addr2 {
		t.Fatalf("GK alias not re-pointed to VMSC-2: %+v ok=%v", reg, ok)
	}
	if n.SGSN2.ActiveContexts() == 0 {
		t.Fatal("no contexts at SGSN-2 after the move")
	}

	// ...and the old area cleaned up completely.
	if _, reg, _ := n.VMSC.Entry(sub.IMSI); reg {
		t.Fatal("VMSC-1 still thinks the subscriber is registered")
	}
	if got := n.SGSN.ActiveContexts(); got != 0 {
		t.Fatalf("SGSN-1 still holds %d contexts", got)
	}
	if _, ok := n.HLR.Lookup(sub.IMSI); !ok {
		t.Fatal("HLR record lost")
	}
	rec, _ := n.HLR.Lookup(sub.IMSI)
	if rec.VLR != "VLR-2" || rec.SGSN != "SGSN-2" {
		t.Fatalf("HLR points at VLR=%q SGSN=%q", rec.VLR, rec.SGSN)
	}

	// The cleanup chain is visible in the trace: location update through
	// the new switch, HLR cancel to the old VLR, the VLR's relay to its
	// VMSC, the alias unregistration, and the GPRS detach.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Location_Update_Request", From: "MS-1", To: "BTS-2"},
		{Msg: "MAP_UPDATE_LOCATION_AREA", From: "VMSC-2", To: "VLR-2", Iface: "B"},
		{Msg: "MAP_UPDATE_LOCATION", From: "VLR-2", To: "HLR", Iface: "D"},
		{Msg: "MAP_CANCEL_LOCATION", From: "HLR", To: "VLR-1"},
		{Msg: "MAP_CANCEL_LOCATION", From: "VLR-1", To: "VMSC-1", Iface: "B"},
		{Msg: "RAS URQ", From: "VMSC-1"},
		{Msg: "GPRS Detach Request", From: "VMSC-1", To: "SGSN-1"},
	}); err != nil {
		t.Fatal(err)
	}

	// A terminating call now lands through VMSC-2.
	if _, err := n.Terminals[0].Call(n.Env, sub.MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MT call after the move: MS state = %v", ms.State())
	}
	if n.VMSC2.ActiveCalls() != 1 || n.VMSC.ActiveCalls() != 0 {
		t.Fatalf("call anchored wrong: VMSC-2=%d VMSC-1=%d",
			n.VMSC2.ActiveCalls(), n.VMSC.ActiveCalls())
	}

	// And the subscriber can move back.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if err := ms.MoveTo(n.Env, "BTS-1", area1LAI()); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if _, reg, _ := n.VMSC.Entry(sub.IMSI); !reg {
		t.Fatal("move back to VMSC-1 failed")
	}
	if _, reg, _ := n.VMSC2.Entry(sub.IMSI); reg {
		t.Fatal("VMSC-2 not cleaned up after the move back")
	}
	if got := n.SGSN2.ActiveContexts(); got != 0 {
		t.Fatalf("SGSN-2 still holds %d contexts", got)
	}
}

// TestInterVLRMoveWithTMSIRetries covers GSM 04.08 identity recovery: an MS
// that identifies by TMSI moves to a VLR that has never seen that TMSI.
// The new VLR rejects; the MS deletes the TMSI and retries the location
// update with IMSI, which succeeds — and it is granted a fresh TMSI by the
// new VLR.
func TestInterVLRMoveWithTMSIRetries(t *testing.T) {
	n := BuildTwoVMSC(VGPRSOptions{Seed: 4})
	sub := n.Subscribers[0]
	ms := gsm.NewMS(gsm.MSConfig{
		ID: "MS-T", IMSI: sub.IMSI, MSISDN: sub.MSISDN, Ki: sub.Ki,
		BTS: "BTS-1", LAI: area1LAI(),
		UseTMSIAfterFirstUpdate: true,
		AutoAnswer:              true,
		AnswerDelay:             100 * time.Millisecond,
	})
	n.Env.AddNode(ms)
	n.Env.Connect("MS-T", "BTS-1", "Um", 10*time.Millisecond)
	n.Env.Connect("MS-T", "BTS-2", "Um", 10*time.Millisecond)
	n.Terminals[0].Register(n.Env)

	ms.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("initial registration failed: %v", ms.State())
	}
	tmsi1, has := ms.TMSI()
	if !has {
		t.Fatal("no TMSI after first registration")
	}

	if err := ms.MoveTo(n.Env, "BTS-2", n.Area2LAI); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("inter-VLR move failed: %v", ms.State())
	}
	// The reject-and-retry must be visible: a TMSI attempt, a rejection,
	// then an IMSI attempt.
	rejects := n.Rec.CountMessages("Um_Location_Update_Reject")
	if rejects == 0 {
		t.Fatal("no rejection traced — the TMSI path was never exercised")
	}
	if _, has2 := ms.TMSI(); !has2 {
		t.Fatal("no TMSI granted by the new VLR")
	}
	_ = tmsi1 // TMSI values are only unique per VLR; equality is legal
	if _, reg, _ := n.VMSC2.Entry(sub.IMSI); !reg {
		t.Fatal("not registered at VMSC-2 after the retry")
	}
	// The new VLR must resolve the fresh TMSI: an MT call pages and lands.
	if _, err := n.Terminals[0].Call(n.Env, sub.MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MT call after TMSI retry: MS state = %v", ms.State())
	}
}
