package netsim

import (
	"fmt"
	"testing"
	"time"

	"vgprs/internal/gsm"
)

// TestShardedMatchesSequential is the tentpole determinism invariant of the
// multi-core engine: the same seed must produce a byte-identical trace and
// identical metrics at any shard count, including 1, for both the
// registration and the call scenario. A single diverging random draw, tie
// order, or clock value anywhere in the stack shows up as a trace diff.
func TestShardedMatchesSequential(t *testing.T) {
	type outcome struct {
		trace     string
		delivered uint64
		now       time.Duration
		entries   int
	}

	scenarios := []struct {
		name string
		run  func(shards int) outcome
	}{
		{
			name: "registration",
			run: func(shards int) outcome {
				n := BuildVGPRS(VGPRSOptions{Seed: 7, NumMS: 5, NumTerminals: 2, Shards: shards})
				if err := n.RegisterAll(); err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return outcome{n.Rec.Dump(), n.Env.Delivered(), n.Env.Now(), n.Rec.Len()}
			},
		},
		{
			name: "call",
			run: func(shards int) outcome {
				n := BuildVGPRS(VGPRSOptions{Seed: 11, NumMS: 2, Talk: true, Shards: shards})
				if err := n.RegisterAll(); err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				caller, callee := n.MSs[0], n.MSs[1]
				if err := caller.Dial(n.Env, n.Subscribers[1].MSISDN); err != nil {
					t.Fatalf("shards=%d dial: %v", shards, err)
				}
				n.Env.RunUntil(n.Env.Now() + 5*time.Second)
				if caller.State() != gsm.MSInCall || callee.State() != gsm.MSInCall {
					t.Fatalf("shards=%d states %v/%v", shards, caller.State(), callee.State())
				}
				n.Env.RunUntil(n.Env.Now() + time.Second) // speech both ways
				if err := caller.Hangup(n.Env); err != nil {
					t.Fatalf("shards=%d hangup: %v", shards, err)
				}
				n.Env.RunUntil(n.Env.Now() + 2*time.Second)
				return outcome{n.Rec.Dump(), n.Env.Delivered(), n.Env.Now(), n.Rec.Len()}
			},
		},
		{
			name: "multi-region registration",
			run: func(shards int) outcome {
				n := BuildMultiRegion(MultiRegionOptions{
					Seed: 3, Regions: 3, MSPerRegion: 4, Shards: shards,
				})
				if err := n.RegisterAll(); err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return outcome{n.Rec.Dump(), n.Env.Delivered(), n.Env.Now(), n.Rec.Len()}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ref := sc.run(1)
			if ref.entries == 0 {
				t.Fatal("reference run recorded no trace entries")
			}
			for _, shards := range []int{2, 4} {
				got := sc.run(shards)
				if got.delivered != ref.delivered {
					t.Errorf("shards=%d delivered %d, sequential %d", shards, got.delivered, ref.delivered)
				}
				if got.now != ref.now {
					t.Errorf("shards=%d final clock %v, sequential %v", shards, got.now, ref.now)
				}
				if got.trace != ref.trace {
					t.Fatalf("shards=%d trace diverged from sequential (%d vs %d entries):\n%s",
						shards, got.entries, ref.entries, firstTraceDiff(ref.trace, got.trace))
				}
			}
		})
	}
}

// firstTraceDiff renders a window around the first differing line of two
// trace dumps, keeping failure output readable for multi-thousand-line
// traces.
func firstTraceDiff(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			out := fmt.Sprintf("first divergence at line %d:\n", i+1)
			for j := lo; j <= i; j++ {
				out += fmt.Sprintf("  seq: %s\n", la[j])
			}
			out += fmt.Sprintf("  shd: %s\n", lb[i])
			return out
		}
	}
	return fmt.Sprintf("traces are a prefix of each other (%d vs %d lines)", len(la), len(lb))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestShardedRegistrationUnderLoad runs a larger sharded population end to
// end, guarding the parallel path against deadlocks and dropped events at a
// size where many synchronization windows elapse.
func TestShardedRegistrationUnderLoad(t *testing.T) {
	n := BuildMultiRegion(MultiRegionOptions{
		Seed: 9, Regions: 4, MSPerRegion: 25, Shards: 4, NoTrace: true,
	})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	seq := BuildMultiRegion(MultiRegionOptions{
		Seed: 9, Regions: 4, MSPerRegion: 25, Shards: 1, NoTrace: true,
	})
	if err := seq.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if n.Env.Delivered() != seq.Env.Delivered() {
		t.Fatalf("sharded delivered %d, sequential %d", n.Env.Delivered(), seq.Env.Delivered())
	}
}
