package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

// TestFigure1Topology verifies the reference GPRS architecture of paper
// Fig 1: the node set and interface graph (BTS-BSC-{MSC,SGSN}-GGSN-PSDN
// with the HLR/VLR attachments). The vGPRS network embeds it with the VMSC
// in the MSC position.
func TestFigure1Topology(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	edges := [][2]sim.NodeID{
		{"MS-1", "BTS-1"},    // Um
		{"BTS-1", "BSC-1"},   // Abis
		{"BSC-1", "VMSC-1"},  // A (the MSC position)
		{"VMSC-1", "SGSN-1"}, // Gb
		{"SGSN-1", "GGSN-1"}, // Gn
		{"GGSN-1", "GI"},     // Gi -> PSDN
		{"VMSC-1", "VLR-1"},  // B
		{"VLR-1", "HLR"},     // D
		{"SGSN-1", "HLR"},    // Gr
		{"GGSN-1", "HLR"},    // Gc
	}
	for _, e := range edges {
		if !n.Env.HasLink(e[0], e[1]) {
			t.Errorf("missing link %s <-> %s", e[0], e[1])
		}
	}
	// Figure 1's defining constraint: a BSC connects to exactly one SGSN
	// and one MSC-position element.
	if n.Env.HasLink("BSC-1", "SGSN-1") {
		t.Log("BSC has a direct PCU link (allowed for plain GPRS MSs)")
	}
}

// TestFigure2Interfaces verifies the VMSC interface set of Fig 2(a): A to
// the BSC, B to the VLR, Gb to the SGSN — plus the E/ISUP faces exercised
// by the handoff build.
func TestFigure2Interfaces(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 1})
	for _, peer := range []sim.NodeID{"BSC-1", "VLR-1", "SGSN-1", "MSC-2"} {
		if !n.Env.HasLink("VMSC-1", peer) {
			t.Errorf("VMSC missing interface to %s", peer)
		}
	}
}

// TestFigure2Paths verifies Fig 2(b)'s two paths. The data path of a GPRS
// MS is (1)(2)(3)(4): MS-BSC-SGSN-GGSN. The voice path is (1)(2)(5)(6)(4):
// MS-BSC-VMSC-SGSN-GGSN, with (1)(2)(5) circuit switched.
func TestFigure2Paths(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if err := n.MSs[0].Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if n.MSs[0].State() != gsm.MSInCall {
		t.Fatalf("call not established: %v", n.MSs[0].State())
	}

	// Voice path: a speech frame crosses Um (CS), Abis (CS), A (CS), then
	// Gb/Gn as packets — in that order for one uplink frame.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_TCH_Frame", From: "MS-1", To: "BTS-1", Iface: "Um", Note: "(1)"},
		{Msg: "Abis_TCH_Frame", From: "BTS-1", To: "BSC-1", Iface: "Abis", Note: "(2)"},
		{Msg: "A_TCH_Frame", From: "BSC-1", To: "VMSC-1", Iface: "A", Note: "(5)"},
		{Msg: "Gb_UL_UNITDATA", From: "VMSC-1", To: "SGSN-1", Iface: "Gb", Note: "(6)"},
		{Msg: "GTP T-PDU", From: "SGSN-1", To: "GGSN-1", Iface: "Gn", Note: "(4)"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure3ProtocolStack verifies the per-link protocol layering of
// Fig 3: H.323 signalling is TCP/IP end to end, carried by GTP on the Gn
// link and by the Gb protocol between VMSC and SGSN, while links (5)-(7)
// stay pure GSM.
func TestFigure3ProtocolStack(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if err := n.MSs[0].Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)

	byIface := n.Rec.MessagesByInterface()
	// Links (3) and (4): tunnel protocols carried traffic.
	if byIface["Gn"] == 0 {
		t.Error("no GTP traffic on Gn (Fig 3 link (3))")
	}
	if byIface["Gb"] == 0 {
		t.Error("no Gb traffic (Fig 3 link (4))")
	}
	// Links (1), (2), (8): IP in the H.323 network.
	if byIface["IP"] == 0 && byIface["Gi"] == 0 {
		t.Error("no IP traffic toward the H.323 network (links (1)/(2)/(8))")
	}
	// Links (5)-(7): GSM only — no IP packet ever crosses Um/Abis/A.
	for _, e := range n.Rec.Entries() {
		switch e.Iface {
		case "Um", "Abis", "A":
			if strings.HasPrefix(e.Msg.Name(), "IP/") || strings.HasPrefix(e.Msg.Name(), "GTP") {
				t.Errorf("packet protocol %q crossed GSM link %s", e.Msg.Name(), e.Iface)
			}
		}
	}
	// The logical H.225/RAS arrows exist above the tunnel.
	if n.Rec.CountOnInterface("RAS") == 0 || n.Rec.CountOnInterface("H.225") == 0 {
		t.Error("missing H.323-layer arrows in the trace")
	}
}

// TestFigure4Registration asserts the exact message flow of paper Fig 4,
// steps 1.1-1.6.
func TestFigure4Registration(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		// Step 1.1: location update up the radio path, MAP to the VLR.
		{Msg: "Um_Location_Update_Request", From: "MS-1", To: "BTS-1", Iface: "Um", Note: "1.1"},
		{Msg: "Abis_Location_Update", From: "BTS-1", To: "BSC-1", Iface: "Abis", Note: "1.1"},
		{Msg: "A_Location_Update", From: "BSC-1", To: "VMSC-1", Iface: "A", Note: "1.1"},
		{Msg: "MAP_UPDATE_LOCATION_AREA", From: "VMSC-1", To: "VLR-1", Iface: "B", Note: "1.1"},
		// Step 1.2: HLR update, profile insertion, ack to the VMSC.
		{Msg: "MAP_UPDATE_LOCATION", From: "VLR-1", To: "HLR", Iface: "D", Note: "1.2"},
		{Msg: "MAP_INSERT_SUBS_DATA", From: "HLR", To: "VLR-1", Note: "1.2"},
		{Msg: "MAP_UPDATE_LOCATION_AREA_ack", From: "VLR-1", To: "VMSC-1", Note: "1.2"},
		// Step 1.3: GPRS attach + signalling PDP context activation,
		// performed by the VMSC "just like a GPRS MS does".
		{Msg: "Gb_UL_UNITDATA", From: "VMSC-1", To: "SGSN-1", Iface: "Gb", Note: "1.3"},
		{Msg: "MAP_UPDATE_GPRS_LOCATION", From: "SGSN-1", To: "HLR", Note: "1.3"},
		{Msg: "GTP Create PDP Context Request", From: "SGSN-1", To: "GGSN-1", Note: "1.3"},
		{Msg: "MAP_SEND_ROUTING_INFO_FOR_GPRS", From: "GGSN-1", To: "HLR", Iface: "Gc", Note: "1.3"},
		{Msg: "GTP Create PDP Context Response", From: "GGSN-1", To: "SGSN-1", Note: "1.3"},
		// Steps 1.4-1.5: gatekeeper registration.
		{Msg: "RAS RRQ", From: "VMSC-1", To: "GK", Iface: "RAS", Note: "1.4"},
		{Msg: "RAS RCF", From: "GK", To: "VMSC-1", Iface: "RAS", Note: "1.5"},
		// Step 1.6: accept to the MS.
		{Msg: "A_Location_Update_Accept", From: "VMSC-1", To: "BSC-1", Note: "1.6"},
		{Msg: "Um_Location_Update_Accept", From: "BTS-1", To: "MS-1", Note: "1.6"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure5Origination asserts the message flow of paper Fig 5, steps
// 2.1-2.9 (call origination) and 3.1-3.4 (release).
func TestFigure5OriginationAndRelease(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	n.Rec.Reset()
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("call not established: %v", ms.State())
	}
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)

	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		// Step 2.1: channel assignment, then the dialled digits.
		{Msg: "Um_Channel_Request", From: "MS-1", Note: "2.1"},
		{Msg: "Um_Immediate_Assignment", To: "MS-1", Note: "2.1"},
		{Msg: "Um_Setup", From: "MS-1", To: "BTS-1", Iface: "Um", Note: "2.1"},
		{Msg: "A_Setup", From: "BSC-1", To: "VMSC-1", Note: "2.1"},
		// Step 2.2: outgoing-call authorization.
		{Msg: "MAP_SEND_INFO_FOR_OUTGOING_CALL", From: "VMSC-1", To: "VLR-1", Note: "2.2"},
		{Msg: "MAP_SEND_INFO_FOR_OUTGOING_CALL_ack", From: "VLR-1", Note: "2.2"},
		// Step 2.3: admission and address translation.
		{Msg: "RAS ARQ", From: "VMSC-1", To: "GK", Note: "2.3"},
		{Msg: "RAS ACF", From: "GK", To: "VMSC-1", Note: "2.3"},
		// Step 2.4: Setup to the terminal, Call Proceeding back.
		{Msg: "Q.931 Setup", From: "VMSC-1", To: "TERM-1", Iface: "H.225", Note: "2.4"},
		{Msg: "Q.931 Call Proceeding", From: "TERM-1", To: "VMSC-1", Note: "2.4"},
		// Step 2.5: the terminal's own admission exchange.
		{Msg: "RAS ARQ", From: "TERM-1", To: "GK", Note: "2.5"},
		{Msg: "RAS ACF", From: "GK", To: "TERM-1", Note: "2.5"},
		// Steps 2.6-2.7: alerting toward the MS (ringback).
		{Msg: "Q.931 Alerting", From: "TERM-1", To: "VMSC-1", Note: "2.6"},
		{Msg: "A_Alerting", From: "VMSC-1", To: "BSC-1", Note: "2.7"},
		{Msg: "Abis_Alerting", From: "BSC-1", To: "BTS-1", Note: "2.7"},
		{Msg: "Um_Alerting", From: "BTS-1", To: "MS-1", Note: "2.7"},
		// Step 2.8: answer. (The VMSC relays Connect down the radio path
		// and starts the voice-PDP activation concurrently, so the test
		// anchors on A_Connect; Um_Connect lands one radio hop later.)
		{Msg: "Q.931 Connect", From: "TERM-1", To: "VMSC-1", Note: "2.8"},
		{Msg: "A_Connect", From: "VMSC-1", To: "BSC-1", Note: "2.8"},
		// Step 2.9: second PDP context for the voice packets.
		{Msg: "Activate PDP Context Request", Note: "2.9"},
		{Msg: "GTP Create PDP Context Request", From: "SGSN-1", To: "GGSN-1", Note: "2.9"},
		{Msg: "Um_Connect", To: "MS-1", Note: "2.8"},
		// Steps 3.1-3.4: release.
		{Msg: "Um_Disconnect", From: "MS-1", Note: "3.1"},
		{Msg: "A_Disconnect", To: "VMSC-1", Note: "3.1"},
		{Msg: "Q.931 Release Complete", From: "VMSC-1", To: "TERM-1", Note: "3.2"},
		{Msg: "RAS DRQ", From: "VMSC-1", To: "GK", Note: "3.3"},
		// Step 3.4 proceeds while the DCF is still crossing the tunnel.
		{Msg: "Deactivate PDP Context Request", Note: "3.4"},
		{Msg: "GTP Delete PDP Context Request", Note: "3.4"},
		{Msg: "RAS DCF", From: "GK", To: "VMSC-1", Note: "3.3"},
	}); err != nil {
		t.Fatal(err)
	}
	// Step 3.3 also happens on the terminal side.
	if n.Rec.CountMessages("RAS DRQ") < 2 {
		t.Error("terminal did not disengage (step 3.3 requires both sides)")
	}
}

// TestFigure6Termination asserts the message flow of paper Fig 6, steps
// 4.1-4.8.
func TestFigure6Termination(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	n.Rec.Reset()
	term := n.Terminals[0]
	if _, err := term.Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if n.MSs[0].State() != gsm.MSInCall {
		t.Fatalf("call not established: %v", n.MSs[0].State())
	}

	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		// Step 4.1: the caller's ARQ; the GK translates the MSISDN to
		// the MS's IP address.
		{Msg: "RAS ARQ", From: "TERM-1", To: "GK", Note: "4.1"},
		{Msg: "RAS ACF", From: "GK", To: "TERM-1", Note: "4.1"},
		// Step 4.2: Setup through the GGSN (routed by the PDP context),
		// Call Proceeding back.
		{Msg: "Q.931 Setup", From: "TERM-1", To: "VMSC-1", Iface: "H.225", Note: "4.2"},
		{Msg: "GTP T-PDU", From: "GGSN-1", To: "SGSN-1", Note: "4.2"},
		{Msg: "Gb_DL_UNITDATA", From: "SGSN-1", To: "VMSC-1", Note: "4.2"},
		{Msg: "Q.931 Call Proceeding", From: "VMSC-1", To: "TERM-1", Note: "4.2"},
		// Step 4.3: VMSC's admission exchange.
		{Msg: "RAS ARQ", From: "VMSC-1", To: "GK", Note: "4.3"},
		{Msg: "RAS ACF", From: "GK", To: "VMSC-1", Note: "4.3"},
		// Step 4.4: paging.
		{Msg: "A_Paging", From: "VMSC-1", To: "BSC-1", Note: "4.4"},
		{Msg: "Abis_Paging", From: "BSC-1", To: "BTS-1", Note: "4.4"},
		{Msg: "Um_Paging_Request", From: "BTS-1", To: "MS-1", Note: "4.4"},
		// Step 4.5: paging response, then Setup to the MS.
		{Msg: "Um_Paging_Response", From: "MS-1", Note: "4.5"},
		{Msg: "A_Setup", From: "VMSC-1", To: "BSC-1", Note: "4.5"},
		{Msg: "Um_Setup", From: "BTS-1", To: "MS-1", Note: "4.5"},
		// Step 4.6: MS rings; alerting to the terminal (ringback).
		{Msg: "Um_Alerting", From: "MS-1", Note: "4.6"},
		{Msg: "Q.931 Alerting", From: "VMSC-1", To: "TERM-1", Note: "4.6"},
		// Step 4.7: answer.
		{Msg: "Um_Connect", From: "MS-1", Note: "4.7"},
		{Msg: "Q.931 Connect", From: "VMSC-1", To: "TERM-1", Note: "4.7"},
		// Step 4.8: voice PDP context.
		{Msg: "Activate PDP Context Request", Note: "4.8"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestC4IMSIConfidentiality audits the §6 claim: in vGPRS the gatekeeper is
// a standard H.323 element and never observes the IMSI (unlike TR 23.923,
// whose gatekeeper must query the HLR with it).
func TestC4IMSIConfidentiality(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// A full MO + MT call cycle.
	if err := n.MSs[0].Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if err := n.MSs[0].Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if _, err := n.Terminals[0].Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)

	imsi := string(n.Subscribers[0].IMSI)
	for _, e := range n.Rec.Entries() {
		if e.To != "GK" && e.From != "GK" {
			continue
		}
		if strings.Contains(fmt.Sprintf("%+v", e.Msg), imsi) {
			t.Fatalf("IMSI leaked to the gatekeeper: %s", e)
		}
	}
	// The MSISDN, by contrast, IS the gatekeeper's alias (step 1.4) —
	// confirm the audit would catch identities if present.
	found := false
	msisdn := string(n.Subscribers[0].MSISDN)
	for _, e := range n.Rec.Entries() {
		if e.To == "GK" && strings.Contains(fmt.Sprintf("%+v", e.Msg), msisdn) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("audit saw no MSISDN at the gatekeeper; the check is vacuous")
	}
}
