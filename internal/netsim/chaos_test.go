package netsim

import (
	"errors"
	"testing"
	"time"
)

// chaosSeeds is the deterministic seed sweep the eventual-success
// scenarios run over. Twenty seeds at 10% uniform loss is the acceptance
// bar: every run must succeed within the per-transaction retry budget.
var chaosSeeds = func() []int64 {
	seeds := make([]int64, 20)
	for i := range seeds {
		seeds[i] = int64(1000 + 37*i)
	}
	return seeds
}()

// TestChaosRegistrationUnderUniformLoss runs the registration scenario at
// 10% independent loss on every core signalling link across the seed
// sweep. Every seed must register within the 30 s RegisterAll window —
// eventual success with bounded retries — and the sweep as a whole must
// actually have exercised the retransmission paths.
func TestChaosRegistrationUnderUniformLoss(t *testing.T) {
	var totalRetransmits uint64
	for _, seed := range chaosSeeds {
		res, err := RunChaosRegistration(seed, UniformLossPlan(0.10))
		if err != nil {
			t.Fatalf("seed %d: %v (retransmits %d)", seed, err, res.Retransmits)
		}
		totalRetransmits += res.Retransmits
	}
	if totalRetransmits == 0 {
		t.Fatal("20 seeds of 10% loss never retransmitted: faults not exercised")
	}
	t.Logf("registration: %d seeds, %d total retransmits", len(chaosSeeds), totalRetransmits)
}

// TestChaosCallUnderUniformLoss is the MS-to-MS analogue: registration
// plus call setup must both complete under 10% uniform loss, every seed.
func TestChaosCallUnderUniformLoss(t *testing.T) {
	var totalRetransmits uint64
	for _, seed := range chaosSeeds {
		res, err := RunChaosCall(seed, UniformLossPlan(0.10))
		if err != nil {
			t.Fatalf("seed %d: %v (retransmits %d)", seed, err, res.Retransmits)
		}
		totalRetransmits += res.Retransmits
	}
	if totalRetransmits == 0 {
		t.Fatal("20 seeds of 10% loss never retransmitted: faults not exercised")
	}
	t.Logf("call setup: %d seeds, %d total retransmits", len(chaosSeeds), totalRetransmits)
}

// TestChaosCallWithDuplication turns on duplication alongside loss: every
// responder must treat retransmitted and duplicated signalling
// idempotently or calls double-connect / double-count.
func TestChaosCallWithDuplication(t *testing.T) {
	plan := UniformLossPlan(0.05)
	for i := range plan {
		plan[i].Dup = 0.10
	}
	for _, seed := range chaosSeeds[:10] {
		if res, err := RunChaosCall(seed, plan); err != nil {
			t.Fatalf("seed %d: %v (retransmits %d)", seed, err, res.Retransmits)
		}
	}
}

// TestChaosDownLinkFailsCleanly takes the VMSC<->VLR MAP link down for
// good. Registration must fail with a typed ProcedureError before the
// deadline — a clean refusal, not a hang — and the MS must land back in
// the detached state with no calls or registrations half-open.
func TestChaosDownLinkFailsCleanly(t *testing.T) {
	plan := FaultPlan{{A: "VMSC-1", B: "VLR-1", Down: true}}
	res, err := RunChaosRegistration(7, plan)
	if err == nil {
		t.Fatal("registration succeeded over a down MAP link")
	}
	var perr *ProcedureError
	if !errors.As(err, &perr) {
		t.Fatalf("error is %T, want *ProcedureError: %v", err, err)
	}
	if perr.Procedure != "registration" || perr.Seed != 7 {
		t.Fatalf("wrong attribution: %+v", perr)
	}
	if res.Registered {
		t.Fatal("result claims registered despite error")
	}
	// The failure must come from the bounded retry budget, not the
	// scenario deadline racing an unbounded retry loop.
	if res.Elapsed > 31*time.Second {
		t.Fatalf("failure took %v, not bounded by the retry budget", res.Elapsed)
	}
}

// TestChaosDownLinkHealsAndRecovers fails the Gb link for a 5 s window at
// the start of registration. The GMM attach and GTP transactions launched
// into the outage must recover by retransmission once the window closes,
// within the same RegisterAll deadline.
func TestChaosDownLinkHealsAndRecovers(t *testing.T) {
	plan := FaultPlan{{A: "VMSC-1", B: "SGSN-1", Down: true, Until: 5 * time.Second}}
	res, err := RunChaosRegistration(11, plan)
	if err != nil {
		t.Fatalf("registration did not recover from a healed outage: %v", err)
	}
	if res.Retransmits == 0 {
		t.Fatal("outage recovery without a single retransmission is impossible")
	}
	t.Logf("healed after outage: %d retransmits, elapsed %v", res.Retransmits, res.Elapsed)
}

// TestChaosDeterminism replays one lossy seed twice and requires
// identical retransmission counts and virtual-time outcomes: the fault
// draws come from the Env's seeded RNG and nothing else.
func TestChaosDeterminism(t *testing.T) {
	run := func() ChaosResult {
		res, err := RunChaosCall(42, UniformLossPlan(0.10))
		if err != nil {
			t.Fatalf("seed 42: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different outcomes:\n a: %+v\n b: %+v", a, b)
	}
}

// TestChaosDeterminismAcrossShardCounts requires the loss/dup/outage fault
// machinery to produce identical outcomes — registration success, call
// success, retransmit counts, virtual elapsed time — whether the engine
// runs sequentially or sharded. Fault draws come from the sending node's
// seeded stream and fault toggles run on the shard owning the link, so the
// shard count must be invisible.
func TestChaosDeterminismAcrossShardCounts(t *testing.T) {
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"uniform-loss", UniformLossPlan(0.10)},
		{"dup", FaultPlan{{A: "VLR-1", B: "HLR", Dup: 0.3}, {A: "SGSN-1", B: "GGSN-1", Dup: 0.3}}},
		{"outage-window", FaultPlan{{A: "VMSC-1", B: "VLR-1", Down: true, From: 100 * time.Millisecond, Until: 2 * time.Second}}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			regRef, err := RunChaosRegistrationSharded(42, tc.plan, 1)
			if err != nil {
				t.Fatalf("sequential registration: %v", err)
			}
			callRef, err := RunChaosCallSharded(42, tc.plan, 1)
			if err != nil {
				t.Fatalf("sequential call: %v", err)
			}
			for _, shards := range []int{2, 4} {
				reg, err := RunChaosRegistrationSharded(42, tc.plan, shards)
				if err != nil {
					t.Fatalf("shards=%d registration: %v", shards, err)
				}
				if reg != regRef {
					t.Errorf("shards=%d registration diverged:\n sharded:    %+v\n sequential: %+v", shards, reg, regRef)
				}
				call, err := RunChaosCallSharded(42, tc.plan, shards)
				if err != nil {
					t.Fatalf("shards=%d call: %v", shards, err)
				}
				if call != callRef {
					t.Errorf("shards=%d call diverged:\n sharded:    %+v\n sequential: %+v", shards, call, callRef)
				}
			}
		})
	}
}

// TestChaosFaultPlanRejectsCrossShardLink guards the sharded scripting
// surface: a fault on a link whose endpoints live on different shards
// cannot be toggled race-free, so Apply must refuse it.
func TestChaosFaultPlanRejectsCrossShardLink(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, Shards: 2})
	plan := FaultPlan{{A: "BSC-1", B: "VMSC-1", Loss: 0.5}}
	if err := plan.Apply(n.Env); err == nil {
		t.Fatal("fault plan across shards applied cleanly")
	}
}

// TestChaosFaultPlanRejectsUnknownLink guards the scripting surface: a
// typo'd node name must surface as an error, not as a silently fault-free
// run.
func TestChaosFaultPlanRejectsUnknownLink(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	plan := FaultPlan{{A: "VMSC-1", B: "NOPE", Loss: 0.5}}
	if err := plan.Apply(n.Env); err == nil {
		t.Fatal("fault plan against a missing link applied cleanly")
	}
}

// TestChaosLosslessBaselineHasNoRetransmits pins the control arm: with no
// faults scripted, the retry layer must stay completely quiet, so the
// PR 1/2 latency and allocation baselines are untouched.
func TestChaosLosslessBaselineHasNoRetransmits(t *testing.T) {
	res, err := RunChaosCall(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits != 0 {
		t.Fatalf("lossless run retransmitted %d times", res.Retransmits)
	}
	if !res.CallConnected {
		t.Fatal("lossless call did not connect")
	}
}
