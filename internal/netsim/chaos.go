package netsim

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/sim"
)

// This file is the deterministic chaos harness: scripted link faults over
// the BuildVGPRS topology plus canned scenarios (registration, MS-to-MS
// call setup) that must succeed eventually under loss — within the
// signalling planes' bounded retry budgets — or fail cleanly with a typed
// error when a link is down for good. Everything draws from the Env's
// seeded RNG, so a (seed, plan) pair replays exactly.

// LinkFault scripts one fault on the bidirectional link A<->B. From/Until
// bound the fault window in virtual time measured from Apply; a zero Until
// means the fault holds for the rest of the run. When the window closes
// the link is restored to a clean state (no loss, no duplication, up).
type LinkFault struct {
	A, B sim.NodeID
	// Loss drops each delivery independently with this probability.
	Loss float64
	// Dup duplicates each delivered message independently with this
	// probability.
	Dup float64
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// each delivery — the delay-variation axis of the media chaos matrix.
	// Keep media-leg jitter well under the 20 ms vocoder frame interval
	// (see MediaChaosPlan): the zero-alloc talk path reuses per-call
	// buffers on the assumption that each hop's retention stays inside
	// one frame beat.
	Jitter time.Duration
	// Down fails the link outright for the window.
	Down bool
	// From is when the fault engages (offset from Apply; zero = now).
	From time.Duration
	// Until is when the link heals (offset from Apply; zero = never).
	Until time.Duration
}

// FaultPlan is a scripted set of link faults. Plans should not overlap in
// time on the same link: healing restores the link to pristine rather than
// to a previous fault's state.
type FaultPlan []LinkFault

// Apply schedules every fault in the plan on env. It returns an error if a
// fault references a link the topology does not have — a scripting bug,
// surfaced rather than silently ignored.
//
// Under sharding, a link's fault fields are read by the sending shard, so a
// fault's engage/heal toggles run on the shard owning the link (scheduled
// with AfterNode on endpoint A); both endpoints must therefore live on the
// same shard. The default BuildVGPRS partition keeps every core signalling
// link on shard 0, so core fault plans shard transparently.
func (p FaultPlan) Apply(env *sim.Env) error {
	for i := range p {
		f := p[i]
		ab := env.LinkBetween(f.A, f.B)
		ba := env.LinkBetween(f.B, f.A)
		if ab == nil || ba == nil {
			return fmt.Errorf("netsim: fault plan references missing link %s<->%s", f.A, f.B)
		}
		if env.ShardCount() > 1 && env.ShardOf(f.A) != env.ShardOf(f.B) {
			return fmt.Errorf("netsim: fault plan targets cross-shard link %s<->%s (shards %d/%d); faults must stay within one shard",
				f.A, f.B, env.ShardOf(f.A), env.ShardOf(f.B))
		}
		engage := func(*sim.Env) {
			for _, l := range [2]*sim.Link{ab, ba} {
				l.Loss, l.Dup, l.Jitter, l.Down = f.Loss, f.Dup, f.Jitter, f.Down
			}
		}
		heal := func(*sim.Env) {
			for _, l := range [2]*sim.Link{ab, ba} {
				l.Loss, l.Dup, l.Jitter, l.Down = 0, 0, 0, false
			}
		}
		if f.From <= 0 {
			engage(nil)
		} else {
			env.AfterNode(f.A, f.From, engage)
		}
		if f.Until > 0 {
			env.AfterNode(f.A, f.Until, heal)
		}
	}
	return nil
}

// CoreSignallingLinks lists the BuildVGPRS links that carry signalling
// between fixed network elements: MAP (B, D, Gr, Gc), Gb, GTP (Gn), and
// the H.323 RAS/Q.931 path out of the GPRS core (Gi, GK LAN). The radio
// legs (Um, Abis, A) are excluded — the radio interface has its own L2
// machinery the fault model does not cover — as are the terminal LAN
// links, so scenarios distinguish core faults from endpoint faults.
func CoreSignallingLinks() [][2]sim.NodeID {
	return [][2]sim.NodeID{
		{"VMSC-1", "VLR-1"},
		{"VLR-1", "HLR"},
		{"VMSC-1", "SGSN-1"},
		{"SGSN-1", "GGSN-1"},
		{"SGSN-1", "HLR"},
		{"GGSN-1", "HLR"},
		{"GGSN-1", "GI"},
		{"GI", "GK"},
	}
}

// UniformLossPlan scripts independent loss at the given rate on every core
// signalling link, engaged immediately and never healed.
func UniformLossPlan(rate float64) FaultPlan {
	links := CoreSignallingLinks()
	plan := make(FaultPlan, 0, len(links))
	for _, l := range links {
		plan = append(plan, LinkFault{A: l[0], B: l[1], Loss: rate})
	}
	return plan
}

// MediaLinks lists the core legs the voice hairpin rides: Gb (VMSC↔SGSN)
// and Gn (SGSN↔GGSN). Both stay on shard 0 under the default BuildVGPRS
// partition, so media fault plans shard transparently. The radio legs are
// excluded for the same reason as in CoreSignallingLinks.
func MediaLinks() [][2]sim.NodeID {
	return [][2]sim.NodeID{
		{"VMSC-1", "SGSN-1"},
		{"SGSN-1", "GGSN-1"},
	}
}

// MaxMediaJitter caps per-link delay jitter on the media legs. The
// zero-alloc talk path pipelines reusable buffers with a 20 ms beat; the
// longest buffer-retention chain (three media-leg hops) must stay inside
// one beat, so per-link jitter is held to a fifth of the frame interval.
const MaxMediaJitter = 4 * time.Millisecond

// MediaChaosPlan scripts loss and delay jitter on both media legs for the
// window [from, until) measured from Apply (zero until = rest of the run).
// Jitter above MaxMediaJitter is clamped.
func MediaChaosPlan(loss float64, jitter time.Duration, from, until time.Duration) FaultPlan {
	if jitter > MaxMediaJitter {
		jitter = MaxMediaJitter
	}
	links := MediaLinks()
	plan := make(FaultPlan, 0, len(links))
	for _, l := range links {
		plan = append(plan, LinkFault{
			A: l[0], B: l[1], Loss: loss, Jitter: jitter, From: from, Until: until,
		})
	}
	return plan
}

// SignallingRetransmits sums the retransmission counters of every
// signalling plane in the network: MAP dialogues at the VMSC, VLR, HLR,
// SGSN and GGSN, GTP transactions at the SGSN, the VMSC's GMM/SM clients
// and RAS/Q.931 state machines, and the H.323 terminals.
func (n *VGPRSNet) SignallingRetransmits() uint64 {
	total := n.VMSC.Retransmits() +
		n.VLR.Retransmits() +
		n.HLR.Retransmits() +
		n.SGSN.Retransmits() +
		n.GGSN.Retransmits()
	for _, t := range n.Terminals {
		total += t.Retransmits()
	}
	return total
}

// ProcedureError reports a signalling procedure that failed *cleanly*
// under injected faults: the scenario ran to its deadline without hanging
// and the failure is attributable to a named procedure.
type ProcedureError struct {
	Procedure string // "registration" or "call-setup"
	Seed      int64
	Detail    error
}

func (e *ProcedureError) Error() string {
	return fmt.Sprintf("chaos %s (seed %d): %v", e.Procedure, e.Seed, e.Detail)
}

func (e *ProcedureError) Unwrap() error { return e.Detail }

// ChaosResult summarises one chaos scenario run.
type ChaosResult struct {
	// Registered reports whether every MS and terminal registered.
	Registered bool
	// CallConnected reports whether the MS-to-MS call reached the
	// in-call state at both parties (call scenario only).
	CallConnected bool
	// Retransmits is the total signalling retransmission count across
	// all planes at the end of the run.
	Retransmits uint64
	// Elapsed is the virtual time the scenario consumed.
	Elapsed time.Duration
}

// ChaosSigProfile is the loss-tolerant retransmission profile the chaos
// scenarios document as their retry budget. The single-hop MAP/GTP/GMM
// planes get 8 retries at a 150 ms initial RTO (capped backoff exhausts
// ~8.5 s after the first send); the H.323 RAS/Q.931 planes, whose PDUs
// hairpin through up to six lossy links each way when both parties live
// behind the same VMSC, get a transport-grade 24 — in real deployments
// H.225 rides TCP, which retries on this order. At 10% per-link loss these
// budgets put per-transaction residual failure below 1e-3.
func ChaosSigProfile() *SigProfile {
	return &SigProfile{
		RTO:         150 * time.Millisecond,
		Retries:     8,
		H323Retries: 24,
	}
}

// chaosNet builds a BuildVGPRS network with the chaos retransmission
// profile armed on every plane and the fault plan applied at t=0. A shards
// value above 1 runs the scenario on the sharded engine with the default
// core/radio partition.
func chaosNet(seed int64, numMS, shards int, plan FaultPlan) (*VGPRSNet, error) {
	n := BuildVGPRS(VGPRSOptions{
		Seed:    seed,
		NumMS:   numMS,
		NoTrace: true,
		Sig:     ChaosSigProfile(),
		Shards:  shards,
	})
	if err := plan.Apply(n.Env); err != nil {
		return nil, err
	}
	return n, nil
}

// chaosWindow bounds each chaos procedure. The H.323 budget exhausts
// ~28 s after a first send (24 retries at 150 ms, backoff capped at
// 1.2 s), so 30 s bounds even a worst-case run without truncating a
// recoverable one.
const chaosWindow = 30 * time.Second

// runUntilDone advances env in 100 ms steps until done reports true or the
// window elapses, so scenario timings reflect when the procedure actually
// finished rather than a fixed drain deadline. It reports done's final
// verdict.
func runUntilDone(env *sim.Env, window time.Duration, done func() bool) bool {
	deadline := env.Now() + window
	for {
		if done() {
			return true
		}
		if env.Now() >= deadline {
			return false
		}
		step := deadline - env.Now()
		if step > 100*time.Millisecond {
			step = 100 * time.Millisecond
		}
		env.RunUntil(env.Now() + step)
	}
}

// registered reports whether every MS and terminal has completed
// registration.
func (n *VGPRSNet) registered() bool {
	for _, ms := range n.MSs {
		if ms.State() != gsm.MSIdle {
			return false
		}
	}
	for _, term := range n.Terminals {
		if !term.Registered() {
			return false
		}
	}
	return true
}

// RunChaosRegistration powers on one MS and one terminal under the fault
// plan and reports whether registration completed within the window. A
// failed registration is returned as a *ProcedureError; the network never
// hangs either way.
func RunChaosRegistration(seed int64, plan FaultPlan) (ChaosResult, error) {
	return RunChaosRegistrationSharded(seed, plan, 1)
}

// RunChaosRegistrationSharded is RunChaosRegistration on a sharded engine.
// Results are identical at any shard count — the determinism tests compare
// them directly.
func RunChaosRegistrationSharded(seed int64, plan FaultPlan, shards int) (ChaosResult, error) {
	n, err := chaosNet(seed, 1, shards, plan)
	if err != nil {
		return ChaosResult{}, err
	}
	start := n.Env.Now()
	for _, term := range n.Terminals {
		term.Register(n.Env)
	}
	for _, ms := range n.MSs {
		ms.PowerOn(n.Env)
	}
	ok := runUntilDone(n.Env, chaosWindow, n.registered)
	res := ChaosResult{
		Registered:  ok,
		Retransmits: n.SignallingRetransmits(),
		Elapsed:     n.Env.Now() - start,
	}
	if !ok {
		return res, &ProcedureError{
			Procedure: "registration", Seed: seed,
			Detail: fmt.Errorf("MS state %v after deadline", n.MSs[0].State()),
		}
	}
	return res, nil
}

// RunChaosCall registers two MSs under the fault plan and then sets up an
// MS-to-MS call, reporting whether both parties reached the in-call state
// within the window. Failures come back as *ProcedureError. Elapsed covers
// dial to conversation, excluding the registration phase.
func RunChaosCall(seed int64, plan FaultPlan) (ChaosResult, error) {
	return RunChaosCallSharded(seed, plan, 1)
}

// RunChaosCallSharded is RunChaosCall on a sharded engine.
func RunChaosCallSharded(seed int64, plan FaultPlan, shards int) (ChaosResult, error) {
	n, err := chaosNet(seed, 2, shards, plan)
	if err != nil {
		return ChaosResult{}, err
	}
	for _, term := range n.Terminals {
		term.Register(n.Env)
	}
	for _, ms := range n.MSs {
		ms.PowerOn(n.Env)
	}
	if !runUntilDone(n.Env, chaosWindow, n.registered) {
		return ChaosResult{
				Retransmits: n.SignallingRetransmits(),
				Elapsed:     n.Env.Now(),
			}, &ProcedureError{
				Procedure: "registration", Seed: seed,
				Detail: fmt.Errorf("states %v/%v after deadline",
					n.MSs[0].State(), n.MSs[1].State()),
			}
	}
	caller, callee := n.MSs[0], n.MSs[1]
	start := n.Env.Now()
	if dialErr := caller.Dial(n.Env, n.Subscribers[1].MSISDN); dialErr != nil {
		return ChaosResult{Registered: true},
			&ProcedureError{Procedure: "call-setup", Seed: seed, Detail: dialErr}
	}
	inCall := func() bool {
		return caller.State() == gsm.MSInCall && callee.State() == gsm.MSInCall
	}
	ok := runUntilDone(n.Env, chaosWindow, inCall)
	res := ChaosResult{
		Registered:    true,
		CallConnected: ok,
		Retransmits:   n.SignallingRetransmits(),
		Elapsed:       n.Env.Now() - start,
	}
	if !ok {
		return res, &ProcedureError{
			Procedure: "call-setup", Seed: seed,
			Detail: fmt.Errorf("caller %v, callee %v after deadline",
				caller.State(), callee.State()),
		}
	}
	return res, nil
}
