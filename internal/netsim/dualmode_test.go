package netsim

import (
	"net/netip"
	"testing"
	"time"

	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

// TestSimultaneousVoiceAndData reproduces the full promise of paper
// Fig 2(b): the SAME subscriber runs the data path (1)(2)(3)(4) —
// MS ~ BSC(PCU) ~ SGSN ~ GGSN — for packets, while the voice path
// (1)(2)(5)(6)(4) through the VMSC carries a call, concurrently. The SGSN
// routes each PDP context over the path it was activated on: the VMSC's
// voice/signalling contexts and the handset's own data context coexist
// under one IMSI.
func TestSimultaneousVoiceAndData(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 6, Talk: true})

	// A data host on the Gi network for the GPRS session to talk to.
	host := &echoHost{id: "HOST", addr: ipnet.MustAddr("192.168.1.100")}
	n.Env.AddNode(host)
	n.Router.AddHost(host.addr, "HOST")
	n.Env.Connect("GI", "HOST", "IP", time.Millisecond)

	// The handset's packet side: a GPRS client for the SAME subscriber,
	// attached over the radio path through the BSC's PCU. (The BSC gets
	// its PCU by pointing at the SGSN; BuildVGPRS leaves it unset since
	// plain vGPRS needs none, so rebuild the radio data leg explicitly.)
	dataLeg := gprs.NewMS(gprs.MSConfig{ID: "MS-1-data", IMSI: n.Subscribers[0].IMSI, BTS: "BTS-2x"})
	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-2x", BSC: "BSC-2x"})
	bsc2 := gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-2x", MSC: "VMSC-1", SGSN: "SGSN-1", BTSs: []sim.NodeID{"BTS-2x"},
	})
	for _, node := range []sim.Node{dataLeg, bts2, bsc2} {
		n.Env.AddNode(node)
	}
	n.Env.Connect("MS-1-data", "BTS-2x", "Um", 10*time.Millisecond)
	n.Env.Connect("BTS-2x", "BSC-2x", "Abis", 2*time.Millisecond)
	n.Env.Connect("BSC-2x", "VMSC-1", "A", time.Millisecond)
	n.Env.Connect("BSC-2x", "SGSN-1", "Gb", 2*time.Millisecond)

	// Voice side registers first (the VMSC attaches for the subscriber).
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}

	// The data leg attaches itself — same IMSI, radio path.
	attached := false
	if err := dataLeg.Client.Attach(n.Env, func(ok bool) { attached = ok }); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if !attached {
		t.Fatal("data-leg attach failed")
	}
	// Data context on NSAPI 7 (the VMSC holds 5 and 6).
	var dataAddr netip.Addr
	if err := dataLeg.Client.ActivatePDP(n.Env, 7, gtp.SignallingQoS(), "",
		func(a netip.Addr, ok bool) {
			if ok {
				dataAddr = a
			}
		}); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if !dataAddr.IsValid() {
		t.Fatal("data PDP activation failed")
	}

	// Start the voice call.
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("voice call state = %v", ms.State())
	}

	// Data flows mid-call: send pings over the data context while RTP is
	// streaming, and require the echoes back on the radio path.
	var dataRx int
	dataLeg.Client.OnPacket = func(_ *sim.Env, nsapi uint8, pkt ipnet.Packet) {
		if nsapi == 7 {
			dataRx++
		}
	}
	for i := 0; i < 5; i++ {
		if err := dataLeg.Client.SendIP(n.Env, 7, ipnet.Packet{
			Dst: host.addr, Proto: ipnet.ProtoUDP, SrcPort: 9, DstPort: 9,
			Payload: []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rtpBefore := n.Terminals[0].Media.Received()
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)

	if dataRx != 5 {
		t.Fatalf("data echoes = %d, want 5", dataRx)
	}
	if n.Terminals[0].Media.Received() <= rtpBefore {
		t.Fatal("voice stalled while data flowed")
	}
	// Three contexts for the subscriber: signalling + voice (VMSC) +
	// data (handset).
	if got := n.SGSN.ActiveContexts(); got != 3 {
		t.Fatalf("SGSN contexts = %d, want 3", got)
	}
	// Clearing the voice call must not disturb the data context.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if got := n.SGSN.ActiveContexts(); got != 2 {
		t.Fatalf("contexts after voice clear = %d, want 2", got)
	}
	if err := dataLeg.Client.SendIP(n.Env, 7, ipnet.Packet{
		Dst: host.addr, Proto: ipnet.ProtoUDP, SrcPort: 9, DstPort: 9, Payload: []byte{99},
	}); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if dataRx != 6 {
		t.Fatalf("post-call data echoes = %d, want 6", dataRx)
	}
}

// echoHost answers every UDP packet.
type echoHost struct {
	id   sim.NodeID
	addr netip.Addr
}

func (h *echoHost) ID() sim.NodeID { return h.id }

func (h *echoHost) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	if pkt, ok := msg.(ipnet.Packet); ok {
		env.Send(h.id, from, pkt.Reply(pkt.Payload))
	}
}
