package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/trace"
)

func establishedCall(t *testing.T, n *HandoffNet) *gsm.MS {
	t.Helper()
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MS state = %v before handoff", ms.State())
	}
	return ms
}

func TestInterSystemHandoff(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 1, Talk: true})
	ms := establishedCall(t, n)
	term := n.Terminals[0]
	beforeRTP := term.Media.Received()

	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("handover did not complete")
	}
	// The E trunk is held: the VMSC stays anchored in the call path.
	if n.ETrunks.InUse() != 1 {
		t.Fatalf("E trunks in use = %d", n.ETrunks.InUse())
	}
	// The full Fig 9 message sequence appears in the trace.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Measurement_Report", From: "MS-1"},
		{Msg: "A_Handover_Required", To: "VMSC-1"},
		{Msg: "MAP_PREPARE_HANDOVER", From: "VMSC-1", To: "MSC-2", Iface: "E"},
		{Msg: "MAP_PREPARE_HANDOVER_ack", From: "MSC-2", To: "VMSC-1"},
		{Msg: "ISUP_IAM", From: "VMSC-1", To: "MSC-2"},
		{Msg: "Um_Handover_Command", To: "MS-1"},
		{Msg: "Um_Handover_Complete", From: "MS-1", To: "BTS-2"},
		{Msg: "MAP_SEND_END_SIGNAL", From: "MSC-2", To: "VMSC-1"},
	}); err != nil {
		t.Fatal(err)
	}

	// Voice continuity: media keeps flowing after the handoff, now via
	// the trunk path H.323 <-> VMSC <-> MSC <-> MS (Fig 9(b)).
	msRxBefore := ms.FramesReceived()
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.Media.Received() <= beforeRTP {
		t.Fatal("uplink media stopped after handoff")
	}
	if ms.FramesReceived() <= msRxBefore {
		t.Fatal("downlink media stopped after handoff")
	}

	// The MS can hang up on the target system; everything clears.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.ETrunks.InUse() != 0 {
		t.Fatalf("E trunk leaked: %d", n.ETrunks.InUse())
	}
	if term.ActiveCalls() != 0 {
		t.Fatal("terminal call not cleared after post-handoff hangup")
	}
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatal("VMSC call state leaked")
	}
}

func TestHandoffTerminalHangsUpAfter(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 2, Talk: true})
	ms := establishedCall(t, n)
	term := n.Terminals[0]
	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("handover did not complete")
	}
	// Terminal-side clearing reaches the MS through the trunk path.
	refs := term.CallRefs()
	if len(refs) != 1 {
		t.Fatalf("terminal call refs = %v", refs)
	}
	if err := term.Hangup(n.Env, refs[0]); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("MS state after far-end hangup = %v", ms.State())
	}
	if n.ETrunks.InUse() != 0 {
		t.Fatalf("E trunk leaked: %d", n.ETrunks.InUse())
	}
}

// TestVMSCToVMSCHandoff covers the paper's §7 remark: "inter-system handoff
// between two VMSCs follows the same procedure".
func TestVMSCToVMSCHandoff(t *testing.T) {
	n := BuildHandoffVMSC(VGPRSOptions{Seed: 5, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	term := n.Terminals[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MS state = %v before handoff", ms.State())
	}
	rtpBefore := term.Media.Received()

	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("VMSC-to-VMSC handover did not complete")
	}
	if n.Target.HandoversIn() != 1 {
		t.Fatalf("target HandoversIn = %d", n.Target.HandoversIn())
	}
	if n.ETrunks.InUse() != 1 {
		t.Fatalf("E trunks in use = %d", n.ETrunks.InUse())
	}
	// The same MAP-E procedure ran, with VMSC-2 as target.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "MAP_PREPARE_HANDOVER", From: "VMSC-1", To: "VMSC-2", Iface: "E"},
		{Msg: "MAP_PREPARE_HANDOVER_ack", From: "VMSC-2", To: "VMSC-1"},
		{Msg: "ISUP_IAM", From: "VMSC-1", To: "VMSC-2"},
		{Msg: "Um_Handover_Complete", From: "MS-1", To: "BTS-2"},
		{Msg: "MAP_SEND_END_SIGNAL", From: "VMSC-2", To: "VMSC-1"},
	}); err != nil {
		t.Fatal(err)
	}
	// Media continues both ways through the two-VMSC path.
	msRxBefore := ms.FramesReceived()
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.Media.Received() <= rtpBefore || ms.FramesReceived() <= msRxBefore {
		t.Fatal("media stopped after VMSC-to-VMSC handoff")
	}
	// Clearing from either side works; clear from the MS.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.ETrunks.InUse() != 0 || term.ActiveCalls() != 0 {
		t.Fatalf("post-clear trunks=%d terminal-calls=%d", n.ETrunks.InUse(), term.ActiveCalls())
	}
}

func TestHandoffToUnknownCellIgnored(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 3})
	ms := establishedCall(t, n)
	unknown := n.TargetCell
	unknown.CI = 0xFF
	ms.ReportNeighbor(n.Env, unknown)
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.VMSC.Stats().Handovers != 0 {
		t.Fatal("handover to unknown cell executed")
	}
	if ms.State() != gsm.MSInCall {
		t.Fatalf("call dropped: %v", ms.State())
	}
}

// TestSubsequentHandback runs the GSM 03.09 subsequent handover back onto
// the anchor: MS hands off to the legacy MSC mid-call, then reports the
// VMSC's own cell. The relay asks the anchor over MAP E, the MS comes
// home, the E trunk is released, and media is bridged on the A interface
// again.
func TestSubsequentHandback(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 1, Talk: true})
	ms := establishedCall(t, n)
	term := n.Terminals[0]

	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("first handover did not complete")
	}
	if n.ETrunks.InUse() != 1 {
		t.Fatalf("E trunks in use = %d after first handover", n.ETrunks.InUse())
	}

	// The MS reports the anchor's home cell from the legacy system.
	ms.ReportNeighbor(n.Env, n.HomeCell)
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)

	if got := n.VMSC.Stats().Handovers; got != 2 {
		t.Fatalf("anchor handover count = %d, want 2 (out + back)", got)
	}
	if n.ETrunks.InUse() != 0 {
		t.Fatalf("E trunk not released after handback: %d in use", n.ETrunks.InUse())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Measurement_Report", From: "MS-1"},
		{Msg: "A_Handover_Required", To: "MSC-2"},
		{Msg: "MAP_PREPARE_SUBSEQUENT_HANDOVER", From: "MSC-2", To: "VMSC-1", Iface: "E"},
		{Msg: "MAP_PREPARE_SUBSEQUENT_HANDOVER_ack", From: "VMSC-1", To: "MSC-2"},
		{Msg: "Um_Handover_Command", To: "MS-1"},
		{Msg: "Um_Handover_Complete", From: "MS-1", To: "BTS-1"},
		{Msg: "ISUP_REL", From: "VMSC-1", To: "MSC-2"},
	}); err != nil {
		t.Fatal(err)
	}

	// Voice continuity on the home system.
	beforeRTP := term.Media.Received()
	msRxBefore := ms.FramesReceived()
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.Media.Received() <= beforeRTP {
		t.Fatal("uplink media stopped after handback")
	}
	if ms.FramesReceived() <= msRxBefore {
		t.Fatal("downlink media stopped after handback")
	}

	// Clearing works exactly like a never-handed-over call.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.ActiveCalls() != 0 || n.VMSC.ActiveCalls() != 0 {
		t.Fatal("call state leaked after post-handback hangup")
	}
}

// TestSubsequentHandoffToThirdMSC moves the MS a second time, from the
// first legacy MSC to another one: the relay asks the anchor, the anchor
// prepares MSC-3 and re-homes the trunk, and the first MSC's circuit is
// released.
func TestSubsequentHandoffToThirdMSC(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 1, Talk: true})
	ms := establishedCall(t, n)
	term := n.Terminals[0]

	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("first handover did not complete")
	}

	ms.ReportNeighbor(n.Env, n.ThirdCell)
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)

	if got := n.VMSC.Stats().Handovers; got != 2 {
		t.Fatalf("anchor handover count = %d, want 2", got)
	}
	if n.MSC3.HandoversIn() != 1 {
		t.Fatalf("MSC-3 handovers in = %d", n.MSC3.HandoversIn())
	}
	if n.ETrunks.InUse() != 0 {
		t.Fatalf("old E trunk not released: %d in use", n.ETrunks.InUse())
	}
	if n.ETrunks3.InUse() != 1 {
		t.Fatalf("new E trunk in use = %d, want 1", n.ETrunks3.InUse())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "MAP_PREPARE_SUBSEQUENT_HANDOVER", From: "MSC-2", To: "VMSC-1"},
		{Msg: "MAP_PREPARE_HANDOVER", From: "VMSC-1", To: "MSC-3", Iface: "E"},
		{Msg: "MAP_PREPARE_HANDOVER_ack", From: "MSC-3", To: "VMSC-1"},
		{Msg: "ISUP_IAM", From: "VMSC-1", To: "MSC-3"},
		{Msg: "MAP_PREPARE_SUBSEQUENT_HANDOVER_ack", From: "VMSC-1", To: "MSC-2"},
		{Msg: "Um_Handover_Command", To: "MS-1"},
		{Msg: "Um_Handover_Complete", From: "MS-1", To: "BTS-3"},
		{Msg: "MAP_SEND_END_SIGNAL", From: "MSC-3", To: "VMSC-1"},
		{Msg: "ISUP_REL", From: "VMSC-1", To: "MSC-2"},
	}); err != nil {
		t.Fatal(err)
	}

	// Voice continuity via MSC-3.
	beforeRTP := term.Media.Received()
	msRxBefore := ms.FramesReceived()
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.Media.Received() <= beforeRTP {
		t.Fatal("uplink media stopped after second handover")
	}
	if ms.FramesReceived() <= msRxBefore {
		t.Fatal("downlink media stopped after second handover")
	}

	// Hangup from the third system clears everything.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.ETrunks3.InUse() != 0 {
		t.Fatalf("MSC-3 trunk leaked: %d", n.ETrunks3.InUse())
	}
	if term.ActiveCalls() != 0 || n.VMSC.ActiveCalls() != 0 {
		t.Fatal("call state leaked after hangup on MSC-3")
	}
}

// TestSubsequentHandbackBetweenVMSCs is the handback with a VMSC as the
// relay: the paper's "same procedure" claim extends to subsequent
// handovers, with the second VMSC relaying the MS's request to the anchor
// through the identical MAP E exchange a legacy MSC would use.
func TestSubsequentHandbackBetweenVMSCs(t *testing.T) {
	n := BuildHandoffVMSC(VGPRSOptions{Seed: 1, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("first handover did not complete")
	}

	homeCell := gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1}, CI: 1}
	ms.ReportNeighbor(n.Env, homeCell)
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)

	if got := n.VMSC.Stats().Handovers; got != 2 {
		t.Fatalf("anchor handover count = %d, want 2", got)
	}
	if n.ETrunks.InUse() != 0 {
		t.Fatalf("E trunk not released after handback: %d", n.ETrunks.InUse())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "MAP_PREPARE_SUBSEQUENT_HANDOVER", From: "VMSC-2", To: "VMSC-1", Iface: "E"},
		{Msg: "MAP_PREPARE_SUBSEQUENT_HANDOVER_ack", From: "VMSC-1", To: "VMSC-2"},
		{Msg: "Um_Handover_Complete", From: "MS-1", To: "BTS-1"},
	}); err != nil {
		t.Fatal(err)
	}

	// Call survives and clears normally.
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.VMSC.ActiveCalls() != 0 || n.Terminals[0].ActiveCalls() != 0 {
		t.Fatal("call state leaked")
	}
}

// TestSubsequentHandoverToUnknownCellRefused covers the refusal path: the
// relayed request names a cell the anchor has no neighbour relation for.
// The anchor answers with a failure cause, the MS stays on the relay
// system, and the call continues undisturbed.
func TestSubsequentHandoverToUnknownCellRefused(t *testing.T) {
	n := BuildHandoff(VGPRSOptions{Seed: 1, Talk: true})
	ms := establishedCall(t, n)
	if !n.RunHandoff(ms, 10*time.Second) {
		t.Fatal("first handover did not complete")
	}

	unknown := gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 9}, CI: 0x90}
	ms.ReportNeighbor(n.Env, unknown)
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)

	if got := n.VMSC.Stats().Handovers; got != 1 {
		t.Fatalf("handover count = %d, want 1 (refused move must not count)", got)
	}
	if n.ETrunks.InUse() != 1 {
		t.Fatalf("E trunk state changed on refusal: %d in use", n.ETrunks.InUse())
	}
	if _, ok := n.Rec.First("MAP_PREPARE_SUBSEQUENT_HANDOVER"); !ok {
		t.Fatal("relay never asked the anchor")
	}

	// Voice still flows on the relay system, and the MS can still come
	// home afterwards — the refused attempt leaves no stuck state.
	term := n.Terminals[0]
	before := term.Media.Received()
	n.Env.RunUntil(n.Env.Now() + time.Second)
	if term.Media.Received() <= before {
		t.Fatal("media stopped after refused subsequent handover")
	}
	ms.ReportNeighbor(n.Env, n.HomeCell)
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if n.VMSC.Stats().Handovers != 2 || n.ETrunks.InUse() != 0 {
		t.Fatal("handback after a refused attempt failed")
	}
}
