package netsim

import (
	"net/netip"
	"time"

	"vgprs/internal/gprs"
	"vgprs/internal/sim"
)

// SGSNHandle and GGSNHandle re-export the GPRS core elements without
// leaking construction details into every test.
type SGSNHandle struct{ *gprs.SGSN }

// GGSNHandle wraps the GGSN.
type GGSNHandle struct{ *gprs.GGSN }

type gprsCoreConfig struct {
	SGSNID, GGSNID sim.NodeID
	HLR            sim.NodeID
	Gi             sim.NodeID
	PoolPrefix     string
	MaxContexts    int
	NetworkInit    bool
	SigRTO         time.Duration
	SigRetries     int
}

func buildGPRSCore(cfg gprsCoreConfig) (*gprs.SGSN, *gprs.GGSN) {
	sgsn := gprs.NewSGSN(gprs.SGSNConfig{
		ID: cfg.SGSNID, GGSN: cfg.GGSNID, HLR: cfg.HLR, MaxContexts: cfg.MaxContexts,
		SigRTO: cfg.SigRTO, SigRetries: cfg.SigRetries,
	})
	ggsn := gprs.NewGGSN(gprs.GGSNConfig{
		ID: cfg.GGSNID, PoolPrefix: cfg.PoolPrefix, Gi: cfg.Gi, HLR: cfg.HLR,
		NetworkInitiatedActivation: cfg.NetworkInit,
		SigRTO:                     cfg.SigRTO, SigRetries: cfg.SigRetries,
	})
	return sgsn, ggsn
}

func mustPrefix(s string) netip.Prefix {
	return netip.MustParsePrefix(s)
}
