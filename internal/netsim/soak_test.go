package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
)

// TestSoakMixedWorkload drives a two-area vGPRS network through one
// simulated hour of randomized subscriber behaviour — calls, hangups,
// relocations between the areas, power cycles — and then audits every
// resource for leaks. Individual features are tested elsewhere; this test
// exists for their *interactions* (a move scheduled while another MS is
// mid-call, a power cycle racing a terminating call, and so on). The RNG
// is the environment's own seeded generator, so failures reproduce.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		numMS    = 6
		simHour  = time.Hour
		tickStep = 5 * time.Second
	)
	n := BuildTwoVMSC(VGPRSOptions{Seed: 42, NumMS: numMS, NumTerminals: 2, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	rng := n.Env.Rand()

	// area tracks which BTS each MS is camped on.
	area := make([]int, numMS)
	actions := map[string]int{}

	end := n.Env.Now() + simHour
	for n.Env.Now() < end {
		i := rng.Intn(numMS)
		ms := n.MSs[i]
		switch choice := rng.Intn(10); {
		case choice < 3: // dial a terminal
			if ms.State() == gsm.MSIdle {
				if err := ms.Dial(n.Env, TerminalAlias(rng.Intn(2))); err == nil {
					actions["dial"]++
				}
			}
		case choice < 5: // hang up
			if ms.State() == gsm.MSInCall {
				if err := ms.Hangup(n.Env); err == nil {
					actions["hangup"]++
				}
			}
		case choice < 7: // relocate to the other area
			if ms.State() == gsm.MSIdle {
				var err error
				if area[i] == 0 {
					err = ms.MoveTo(n.Env, "BTS-2", n.Area2LAI)
				} else {
					err = ms.MoveTo(n.Env, "BTS-1", area1LAI())
				}
				if err == nil {
					area[i] = 1 - area[i]
					actions["move"]++
				}
			}
		case choice < 8: // terminal calls the MS
			if _, err := n.Terminals[rng.Intn(2)].Call(n.Env, n.Subscribers[i].MSISDN); err == nil {
				actions["mt-call"]++
			}
		case choice < 9: // power cycle (also exercises abrupt mid-call loss)
			switch ms.State() {
			case gsm.MSIdle, gsm.MSInCall:
				if err := ms.PowerOff(n.Env); err == nil {
					actions["power-off"]++
				}
			case gsm.MSDetached:
				ms.PowerOn(n.Env)
				actions["power-on"]++
			}
		default: // let time pass
		}
		n.Env.RunUntil(n.Env.Now() + tickStep)
	}

	// Quiesce: hang up whatever is still up, power every MS back on.
	for _, ms := range n.MSs {
		if ms.State() == gsm.MSInCall {
			_ = ms.Hangup(n.Env)
		}
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	for _, ms := range n.MSs {
		if ms.State() == gsm.MSDetached {
			ms.PowerOn(n.Env)
		}
	}
	n.Env.RunUntil(n.Env.Now() + 60*time.Second)

	t.Logf("after 1h simulated: %v", actions)
	for _, key := range []string{"dial", "move", "mt-call", "power-off"} {
		if actions[key] == 0 {
			t.Errorf("workload never exercised %q — widen the mix", key)
		}
	}

	// Leak audit.
	if got := n.VMSC.ActiveCalls() + n.VMSC2.ActiveCalls(); got != 0 {
		t.Errorf("%d calls still active after quiesce", got)
	}
	for _, term := range n.Terminals {
		if term.ActiveCalls() != 0 {
			t.Errorf("terminal %s holds %d calls", term.ID(), term.ActiveCalls())
		}
	}
	// Every powered-on MS must be idle, registered exactly once, with its
	// alias resolving and one signalling context at the serving SGSN.
	totalCtx := 0
	for i, ms := range n.MSs {
		if ms.State() != gsm.MSIdle {
			t.Errorf("MS-%d state = %v after recovery", i+1, ms.State())
			continue
		}
		sub := n.Subscribers[i]
		_, reg1, _ := n.VMSC.Entry(sub.IMSI)
		_, reg2, _ := n.VMSC2.Entry(sub.IMSI)
		if reg1 == reg2 {
			t.Errorf("MS-%d registered at both or neither VMSC (1=%v 2=%v)", i+1, reg1, reg2)
		}
		if _, ok := n.GK.Lookup(sub.MSISDN); !ok {
			t.Errorf("MS-%d alias unresolvable after soak", i+1)
		}
		totalCtx++
	}
	if got := n.SGSN.ActiveContexts() + n.SGSN2.ActiveContexts(); got != totalCtx {
		t.Errorf("PDP contexts = %d, want %d (one signalling context per MS)", got, totalCtx)
	}
	if n.BSC.ChannelsInUse() != 0 || n.BSC2.ChannelsInUse() != 0 {
		t.Errorf("radio channels leaked: BSC-1=%d BSC-2=%d",
			n.BSC.ChannelsInUse(), n.BSC2.ChannelsInUse())
	}
	// The GK table holds one row per MS plus the two terminals.
	if got := n.GK.Registered(); got != totalCtx+2 {
		t.Errorf("GK table = %d rows, want %d", got, totalCtx+2)
	}
}

// TestSoakIdlePDPMode soaks the §6 idle-PDP-deactivation ablation: per-call
// context activation and network-initiated MT activation interleave with
// power cycles for a simulated half hour. The mode's invariant is audited
// throughout: zero PDP contexts whenever all MSs are idle.
func TestSoakIdlePDPMode(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const numMS = 4
	n := BuildVGPRS(VGPRSOptions{
		Seed: 7, NumMS: numMS, NumTerminals: 2, DeactivateIdlePDP: true,
	})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	rng := n.Env.Rand()
	actions := map[string]int{}

	end := n.Env.Now() + 30*time.Minute
	for n.Env.Now() < end {
		i := rng.Intn(numMS)
		ms := n.MSs[i]
		switch choice := rng.Intn(8); {
		case choice < 3:
			if ms.State() == gsm.MSIdle {
				if err := ms.Dial(n.Env, TerminalAlias(rng.Intn(2))); err == nil {
					actions["dial"]++
				}
			}
		case choice < 5:
			if ms.State() == gsm.MSInCall {
				if err := ms.Hangup(n.Env); err == nil {
					actions["hangup"]++
				}
			}
		case choice < 6:
			// MT call needs network-initiated activation in this mode.
			if _, err := n.Terminals[rng.Intn(2)].Call(n.Env, n.Subscribers[i].MSISDN); err == nil {
				actions["mt-call"]++
			}
		case choice < 7:
			switch ms.State() {
			case gsm.MSIdle, gsm.MSInCall:
				if err := ms.PowerOff(n.Env); err == nil {
					actions["power-off"]++
				}
			case gsm.MSDetached:
				ms.PowerOn(n.Env)
				actions["power-on"]++
			}
		}
		n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	}

	// Quiesce and audit: with every call cleared, the mode's whole point
	// is that no PDP context remains.
	for _, ms := range n.MSs {
		if ms.State() == gsm.MSInCall {
			_ = ms.Hangup(n.Env)
		}
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	for _, ms := range n.MSs {
		if ms.State() == gsm.MSDetached {
			ms.PowerOn(n.Env)
		}
	}
	n.Env.RunUntil(n.Env.Now() + 60*time.Second)

	t.Logf("after 30min simulated: %v", actions)
	for _, key := range []string{"dial", "mt-call", "power-off"} {
		if actions[key] == 0 {
			t.Errorf("workload never exercised %q", key)
		}
	}
	if got := n.VMSC.ActiveCalls(); got != 0 {
		t.Errorf("%d calls still active", got)
	}
	if got := n.SGSN.ActiveContexts(); got != 0 {
		t.Errorf("idle-PDP mode left %d contexts active", got)
	}
	if got := n.GGSN.ActiveContexts(); got != 0 {
		t.Errorf("GGSN holds %d contexts with all MSs idle", got)
	}
	for i, ms := range n.MSs {
		if ms.State() != gsm.MSIdle {
			t.Errorf("MS-%d state = %v", i+1, ms.State())
			continue
		}
		if _, reg, _ := n.VMSC.Entry(n.Subscribers[i].IMSI); !reg {
			t.Errorf("MS-%d not registered after soak", i+1)
		}
		if _, ok := n.GK.Lookup(n.Subscribers[i].MSISDN); !ok {
			t.Errorf("MS-%d alias unresolvable after soak", i+1)
		}
	}
	if n.BSC.ChannelsInUse() != 0 {
		t.Errorf("radio channels leaked: %d", n.BSC.ChannelsInUse())
	}
}
