package netsim_test

import (
	"fmt"
	"time"

	"vgprs/internal/netsim"
)

// Example brings up the complete Fig 2(b) vGPRS network, registers one
// mobile, and places a call to an H.323 terminal — the library's
// end-to-end happy path in a dozen lines.
func Example() {
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{Seed: 1})
	if err := n.RegisterAll(); err != nil {
		fmt.Println("registration:", err)
		return
	}
	ms := n.MSs[0]

	start := n.Env.Now()
	var connectedAt time.Duration
	ms.SetOnConnected(func(uint32) { connectedAt = n.Env.Now() })
	if err := ms.Dial(n.Env, netsim.TerminalAlias(0)); err != nil {
		fmt.Println("dial:", err)
		return
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)

	fmt.Println("registered subscribers:", n.VMSC.MSTable())
	fmt.Println("call setup:", connectedAt-start)
	// Output:
	// registered subscribers: 1
	// call setup: 284ms
}
