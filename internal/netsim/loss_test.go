package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
)

// TestMediaSurvivesPacketLoss injects loss on the Gn tunnel link and checks
// that the call survives, the RTP receiver measures the loss, and
// signalling (which in this build has no retransmission layer) still
// completed before the loss was enabled.
func TestMediaSurvivesPacketLoss(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 3, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("call not established: %v", ms.State())
	}

	// 10% loss on the uplink tunnel leg once the call is stable.
	n.Env.LinkBetween("SGSN-1", "GGSN-1").Loss = 0.10
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)

	term := n.Terminals[0]
	if term.Media.Received() == 0 {
		t.Fatal("no media at all under loss")
	}
	lost := term.Media.Lost()
	expected := term.Media.ExpectedFrom()
	if lost == 0 {
		t.Fatal("receiver measured no loss on a 10%-lossy path")
	}
	ratio := float64(lost) / float64(expected)
	if ratio < 0.03 || ratio > 0.25 {
		t.Fatalf("loss ratio = %.3f (lost %d of %d), want near 0.10", ratio, lost, expected)
	}
	// The call is still up and clearable (clearing crosses the lossy
	// link; this build has no signalling retransmission, so clear from
	// the MS side after healing the link — which also documents the
	// limitation).
	n.Env.LinkBetween("SGSN-1", "GGSN-1").Loss = 0
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSIdle || n.VMSC.ActiveCalls() != 0 {
		t.Fatalf("clearing failed: %v / %d", ms.State(), n.VMSC.ActiveCalls())
	}
}
