package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
)

// TestMediaSurvivesPacketLoss injects loss on the Gn tunnel link and checks
// that the call survives and the RTP receiver measures the loss. Media
// frames are deliberately unprotected — only the signalling planes
// retransmit (see chaos_test.go for loss on those).
func TestMediaSurvivesPacketLoss(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 3, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("call not established: %v", ms.State())
	}

	// 10% loss on the uplink tunnel leg once the call is stable.
	n.Env.LinkBetween("SGSN-1", "GGSN-1").Loss = 0.10
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)

	term := n.Terminals[0]
	if term.Media.Received() == 0 {
		t.Fatal("no media at all under loss")
	}
	lost := term.Media.Lost()
	expected := term.Media.ExpectedFrom()
	if lost == 0 {
		t.Fatal("receiver measured no loss on a 10%-lossy path")
	}
	ratio := float64(lost) / float64(expected)
	if ratio < 0.03 || ratio > 0.25 {
		t.Fatalf("loss ratio = %.3f (lost %d of %d), want near 0.10", ratio, lost, expected)
	}
	// The call is still up and clearable. Clearing crosses this link and
	// the H.225 release collapses into a single unacknowledged
	// ReleaseComplete — the one signalling message with no
	// retransmission timer — so heal the link first; chaos_test.go
	// covers the planes that do retransmit.
	n.Env.LinkBetween("SGSN-1", "GGSN-1").Loss = 0
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if ms.State() != gsm.MSIdle || n.VMSC.ActiveCalls() != 0 {
		t.Fatalf("clearing failed: %v / %d", ms.State(), n.VMSC.ActiveCalls())
	}
}
