package netsim

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/h323"
	"vgprs/internal/hlr"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/msc"
	"vgprs/internal/pstn"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
	"vgprs/internal/vlr"
	"vgprs/internal/vmsc"
)

// Roamer identities: a UK subscriber (MCC 234) visiting Hong Kong.
var (
	// RoamerIMSI is subscriber x's IMSI.
	RoamerIMSI = gsmid.IMSI("234150000000001")
	// RoamerMSISDN is x's UK directory number.
	RoamerMSISDN = gsmid.MSISDN("044781234567")
	// CallerNumber is y's Hong Kong fixed number.
	CallerNumber = gsmid.MSISDN("852211100001")
	// UKFixedNumber is a plain UK landline (for the gatekeeper-miss
	// fallback case).
	UKFixedNumber = gsmid.MSISDN("044612340001")
)

var roamerKi = [16]byte{0x77, 0x01}

// RoamingGSMNet is the Fig 7 baseline: subscriber x roams in Hong Kong
// under a classic GSM MSC; a local call from y becomes two international
// trunks (the tromboning the paper eliminates).
type RoamingGSMNet struct {
	Env *sim.Env
	Rec *trace.Recorder

	HLRUK  *hlr.HLR
	GMSCUK *pstn.Exchange
	LEHK   *pstn.Exchange
	PhoneY *pstn.Phone
	MSCHK  *msc.MSC
	VLRHK  *vlr.VLR
	MS     *gsm.MS

	// IntlToUK carries y's leg to the UK; IntlToHK carries the GMSC's
	// leg back to Hong Kong — the two international trunks of Fig 7.
	IntlToUK *isup.TrunkGroup
	IntlToHK *isup.TrunkGroup
}

// BuildRoamingGSM wires the Fig 7 configuration.
func BuildRoamingGSM(seed int64) *RoamingGSMNet {
	env := sim.NewEnv(seed)
	rec := trace.NewRecorder()
	env.SetTracer(rec)
	lat := DefaultLatencies()

	n := &RoamingGSMNet{
		Env: env, Rec: rec,
		IntlToUK: isup.NewTrunkGroup("LE-HK<->GMSC-UK", isup.TrunkInternational, 16),
		IntlToHK: isup.NewTrunkGroup("GMSC-UK<->MSC-HK", isup.TrunkInternational, 16),
	}

	n.HLRUK = hlr.New(hlr.Config{ID: "HLR-UK"})
	mustProvision(n.HLRUK, hlr.Subscriber{
		IMSI: RoamerIMSI, MSISDN: RoamerMSISDN, Ki: roamerKi,
		Profile: sigmap.SubscriberProfile{MSISDN: RoamerMSISDN, InternationalAllowed: true},
	})
	n.VLRHK = vlr.New(vlr.Config{
		ID: "VLR-HK", HLR: "HLR-UK", HomeCountryCode: "852", MSRNPrefix: "85290000",
	})
	n.MSCHK = msc.New(msc.Config{
		ID: "MSC-HK", VLR: "VLR-HK", PSTN: "GMSC-UK",
		Trunks: map[sim.NodeID]*isup.TrunkGroup{"GMSC-UK": n.IntlToHK},
	})
	n.GMSCUK = pstn.NewExchange(pstn.ExchangeConfig{
		ID: "GMSC-UK", HLR: "HLR-UK", MobilePrefixes: []string{"0447"},
		Routes: []pstn.Route{
			{Prefix: "85290", Next: "MSC-HK", Trunks: n.IntlToHK},
			{Prefix: "852", Next: "LE-HK", Trunks: n.IntlToUK},
		},
	})
	n.LEHK = pstn.NewExchange(pstn.ExchangeConfig{
		ID: "LE-HK",
		Routes: []pstn.Route{
			{Prefix: "044", Next: "GMSC-UK", Trunks: n.IntlToUK},
			{Prefix: "85221", Next: "PHONE-Y"},
		},
	})
	n.PhoneY = pstn.NewPhone(pstn.PhoneConfig{
		ID: "PHONE-Y", Number: CallerNumber, Exchange: "LE-HK", Talk: true,
	})

	bts := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-HK", BSC: "BSC-HK"})
	bsc := gsm.NewBSC(gsm.BSCConfig{ID: "BSC-HK", MSC: "MSC-HK", BTSs: []sim.NodeID{"BTS-HK"}})
	n.MS = gsm.NewMS(gsm.MSConfig{
		ID: "MS-X", IMSI: RoamerIMSI, MSISDN: RoamerMSISDN, Ki: roamerKi,
		BTS: "BTS-HK", LAI: gsmid.LAI{MCC: "454", MNC: "00", LAC: 1},
		AutoAnswer: true, AnswerDelay: 200 * time.Millisecond, Talk: true,
	})

	for _, node := range []sim.Node{
		n.HLRUK, n.VLRHK, n.MSCHK, n.GMSCUK, n.LEHK, n.PhoneY, bts, bsc, n.MS,
	} {
		env.AddNode(node)
	}
	env.Connect("MS-X", "BTS-HK", "Um", lat.Um)
	env.Connect("BTS-HK", "BSC-HK", "Abis", lat.Abis)
	env.Connect("BSC-HK", "MSC-HK", "A", lat.A)
	env.Connect("MSC-HK", "VLR-HK", "B", lat.SS7)
	env.Connect("VLR-HK", "HLR-UK", "D", lat.Intl) // international SS7
	env.Connect("GMSC-UK", "HLR-UK", "C", lat.SS7)
	env.Connect("PHONE-Y", "LE-HK", "Line", lat.LAN)
	env.Connect("LE-HK", "GMSC-UK", "ISUP", lat.Intl)
	env.Connect("GMSC-UK", "MSC-HK", "ISUP", lat.Intl)
	return n
}

// Register powers on the roamer and waits for registration.
func (n *RoamingGSMNet) Register() error {
	n.MS.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	if n.MS.State() != gsm.MSIdle {
		return fmt.Errorf("netsim: roamer state %v after registration", n.MS.State())
	}
	return nil
}

// InternationalSeizures returns the total international trunk legs used —
// the Fig 7 headline number (2 for the tromboned call).
func (n *RoamingGSMNet) InternationalSeizures() int {
	return n.IntlToUK.TotalSeizures() + n.IntlToHK.TotalSeizures()
}

// RoamingVGPRSNet is the Fig 8 configuration: the same roamer x now
// registers through a Hong Kong VMSC, so its MSISDN appears in the local
// gatekeeper's address-translation table; y's call goes local exchange ->
// H.323 gateway -> VoIP -> VMSC -> x, never leaving Hong Kong.
type RoamingVGPRSNet struct {
	Env *sim.Env
	Rec *trace.Recorder
	Dir *h323.Directory

	HLRUK   *hlr.HLR
	GMSCUK  *pstn.Exchange
	LEHK    *pstn.Exchange
	PhoneY  *pstn.Phone
	PhoneUK *pstn.Phone
	Gateway *h323.Gateway
	GK      *h323.Gatekeeper
	VMSC    *vmsc.VMSC
	VLRHK   *vlr.VLR
	SGSN    SGSNHandle
	GGSN    GGSNHandle
	MS      *gsm.MS

	// LocalTrunks carry the LE->gateway leg (a local call). IntlTrunks
	// carry the fallback path to the UK.
	LocalTrunks *isup.TrunkGroup
	IntlTrunks  *isup.TrunkGroup
}

// BuildRoamingVGPRS wires the Fig 8 configuration.
func BuildRoamingVGPRS(seed int64) *RoamingVGPRSNet {
	env := sim.NewEnv(seed)
	rec := trace.NewRecorder()
	env.SetTracer(rec)
	dir := h323.NewDirectory()
	lat := DefaultLatencies()

	n := &RoamingVGPRSNet{
		Env: env, Rec: rec, Dir: dir,
		LocalTrunks: isup.NewTrunkGroup("LE-HK<->GW-HK", isup.TrunkLocal, 16),
		IntlTrunks:  isup.NewTrunkGroup("LE-HK<->GMSC-UK", isup.TrunkInternational, 16),
	}

	n.HLRUK = hlr.New(hlr.Config{ID: "HLR-UK"})
	mustProvision(n.HLRUK, hlr.Subscriber{
		IMSI: RoamerIMSI, MSISDN: RoamerMSISDN, Ki: roamerKi,
		Profile: sigmap.SubscriberProfile{MSISDN: RoamerMSISDN, InternationalAllowed: true},
	})
	n.VLRHK = vlr.New(vlr.Config{
		ID: "VLR-HK", HLR: "HLR-UK", HomeCountryCode: "852", MSRNPrefix: "85290000",
	})

	sgsn, ggsn := buildGPRSCore(gprsCoreConfig{
		SGSNID: "SGSN-HK", GGSNID: "GGSN-HK", HLR: "HLR-UK", Gi: "GI-HK",
		PoolPrefix: "10.2.1.0",
	})
	n.SGSN = SGSNHandle{sgsn}
	n.GGSN = GGSNHandle{ggsn}

	router := ipnet.NewRouter("GI-HK")
	gkHK := ipnet.MustAddr("192.168.2.1")
	gwAddr := ipnet.MustAddr("192.168.2.2")
	n.GK = h323.NewGatekeeper(h323.GatekeeperConfig{
		ID: "GK-HK", Addr: gkHK, Router: "GI-HK", Dir: dir,
		// Unregistered Hong Kong numbers route out through the gateway —
		// the paper §4's "traditional telephone set in the PSTN,
		// connected indirectly through the H.323 network".
		PSTNGateway: gwAddr, PSTNPrefixes: []string{"852"},
	})
	n.Gateway = h323.NewGateway(h323.GatewayConfig{
		ID: "GW-HK", Addr: gwAddr, Router: "GI-HK", Gatekeeper: gkHK, Dir: dir,
		Exchange: "LE-HK", Trunks: n.LocalTrunks,
	})
	router.AddHost(gkHK, "GK-HK")
	router.AddHost(gwAddr, "GW-HK")
	router.AddPrefix(mustPrefix("10.2.1.0/24"), "GGSN-HK")
	dir.Bind(gkHK, "GK-HK")
	dir.Bind(gwAddr, "GW-HK")

	n.VMSC = vmsc.New(vmsc.Config{
		ID: "VMSC-HK", VLR: "VLR-HK", SGSN: "SGSN-HK",
		Cell:       gsmid.CGI{LAI: gsmid.LAI{MCC: "454", MNC: "00", LAC: 1}, CI: 1},
		Gatekeeper: gkHK, Dir: dir,
	})
	n.VMSC.ProvisionMSISDN(RoamerIMSI, RoamerMSISDN)

	bts := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-HK", BSC: "BSC-HK"})
	bsc := gsm.NewBSC(gsm.BSCConfig{ID: "BSC-HK", MSC: "VMSC-HK", BTSs: []sim.NodeID{"BTS-HK"}})
	n.MS = gsm.NewMS(gsm.MSConfig{
		ID: "MS-X", IMSI: RoamerIMSI, MSISDN: RoamerMSISDN, Ki: roamerKi,
		BTS: "BTS-HK", LAI: gsmid.LAI{MCC: "454", MNC: "00", LAC: 1},
		AutoAnswer: true, AnswerDelay: 200 * time.Millisecond, Talk: true,
	})

	// The PSTN side: y's local exchange prefers the VoIP gateway for UK
	// numbers and falls back to the international route.
	n.GMSCUK = pstn.NewExchange(pstn.ExchangeConfig{
		ID: "GMSC-UK", HLR: "HLR-UK", MobilePrefixes: []string{"0447"},
		Routes: []pstn.Route{
			{Prefix: "0446", Next: "PHONE-UK"}, // UK fixed lines
		},
	})
	n.PhoneUK = pstn.NewPhone(pstn.PhoneConfig{
		ID: "PHONE-UK", Number: UKFixedNumber, Exchange: "GMSC-UK",
		AutoAnswer: true, AnswerDelay: 200 * time.Millisecond,
	})
	n.LEHK = pstn.NewExchange(pstn.ExchangeConfig{
		ID: "LE-HK",
		Routes: []pstn.Route{
			{Prefix: "044", Next: "GW-HK", Trunks: n.LocalTrunks},
			{Prefix: "044", Next: "GMSC-UK", Trunks: n.IntlTrunks},
			{Prefix: "85221", Next: "PHONE-Y"},
		},
	})
	n.PhoneY = pstn.NewPhone(pstn.PhoneConfig{
		ID: "PHONE-Y", Number: CallerNumber, Exchange: "LE-HK", Talk: true,
	})

	for _, node := range []sim.Node{
		n.HLRUK, n.VLRHK, sgsn, ggsn, router, n.GK, n.Gateway, n.VMSC,
		bts, bsc, n.MS, n.GMSCUK, n.PhoneUK, n.LEHK, n.PhoneY,
	} {
		env.AddNode(node)
	}
	env.Connect("MS-X", "BTS-HK", "Um", lat.Um)
	env.Connect("BTS-HK", "BSC-HK", "Abis", lat.Abis)
	env.Connect("BSC-HK", "VMSC-HK", "A", lat.A)
	env.Connect("VMSC-HK", "VLR-HK", "B", lat.SS7)
	env.Connect("VLR-HK", "HLR-UK", "D", lat.Intl)
	env.Connect("VMSC-HK", "SGSN-HK", "Gb", lat.Gb)
	env.Connect("SGSN-HK", "GGSN-HK", "Gn", lat.Gn)
	env.Connect("SGSN-HK", "HLR-UK", "Gr", lat.Intl)
	env.Connect("GGSN-HK", "HLR-UK", "Gc", lat.Intl)
	env.Connect("GGSN-HK", "GI-HK", "Gi", lat.Gi)
	env.Connect("GI-HK", "GK-HK", "IP", lat.LAN)
	env.Connect("GI-HK", "GW-HK", "IP", lat.LAN)
	env.Connect("PHONE-Y", "LE-HK", "Line", lat.LAN)
	env.Connect("LE-HK", "GW-HK", "ISUP", lat.Natl)
	env.Connect("LE-HK", "GMSC-UK", "ISUP", lat.Intl)
	env.Connect("GMSC-UK", "HLR-UK", "C", lat.SS7)
	env.Connect("PHONE-UK", "GMSC-UK", "Line", lat.LAN)
	return n
}

// Register powers on the roamer and waits for the full vGPRS registration
// (which, per Fig 8, puts x's UK MSISDN into the Hong Kong gatekeeper).
func (n *RoamingVGPRSNet) Register() error {
	n.MS.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	if n.MS.State() != gsm.MSIdle {
		return fmt.Errorf("netsim: roamer state %v after registration", n.MS.State())
	}
	if _, ok := n.GK.Lookup(RoamerMSISDN); !ok {
		return fmt.Errorf("netsim: roamer not in gatekeeper table")
	}
	return nil
}

// InternationalSeizures returns international trunk legs used.
func (n *RoamingVGPRSNet) InternationalSeizures() int {
	return n.IntlTrunks.TotalSeizures()
}
