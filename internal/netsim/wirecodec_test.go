package netsim

import (
	"reflect"
	"testing"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/q931"
	"vgprs/internal/rtp"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
)

// TestEveryTracedMessageRoundTripsItsCodec drives a full network lifecycle
// (registration, MO call, MT call, clearing) and then pushes every message
// the trace recorded through its protocol's wire codec, requiring an exact
// round trip. Unlike the per-package codec tests, this validates the codecs
// against the real message population the procedures generate.
func TestEveryTracedMessageRoundTripsItsCodec(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 11, NumMS: 2, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if _, err := n.Terminals[0].Call(n.Env, n.Subscribers[1].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)

	checked := map[string]int{}
	uncodec := map[string]int{}
	totalBytes := 0
	for _, e := range n.Rec.Entries() {
		family, ok := roundTripMessage(t, e.Msg)
		if !ok {
			uncodec[e.Msg.Name()]++
			continue
		}
		checked[family]++
		// The non-test WireSize dispatch must agree with the test's.
		size, sizeFamily, sized := WireSize(e.Msg)
		if !sized || sizeFamily != family && !(family == "RTP" && sizeFamily == "IP") {
			t.Fatalf("WireSize disagrees for %s: %q vs %q", e.Msg.Name(), sizeFamily, family)
		}
		totalBytes += size
	}
	if totalBytes == 0 {
		t.Fatal("WireSize measured nothing")
	}
	t.Logf("total wire bytes across the lifecycle: %d", totalBytes)
	// Every protocol family must have been exercised.
	for _, family := range []string{"MAP", "Q.931", "RAS", "GTP", "Gb", "GMM", "GSM", "IP", "RTP"} {
		if checked[family] == 0 {
			t.Errorf("no %s messages round-tripped (trace families: %v)", family, checked)
		}
	}
	t.Logf("round-tripped by family: %v", checked)
	if len(uncodec) > 0 {
		t.Errorf("message types without a wire codec: %v", uncodec)
	}
}

// roundTripMessage encodes and decodes msg through its codec, failing the
// test on mismatch. It reports the codec family used, or false when the
// message type has no wire codec (the radio-interface L3 messages, whose
// channel binding this simulation models structurally).
func roundTripMessage(t *testing.T, msg sim.Message) (string, bool) {
	t.Helper()
	requireEqual := func(family string, got sim.Message, err error) (string, bool) {
		if err != nil {
			t.Fatalf("%s round trip of %s: %v", family, msg.Name(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("%s round trip mismatch for %s:\n in: %#v\nout: %#v",
				family, msg.Name(), msg, got)
		}
		return family, true
	}
	switch m := msg.(type) {
	case sigmap.UpdateLocationArea, sigmap.UpdateLocationAreaAck,
		sigmap.UpdateLocation, sigmap.UpdateLocationAck,
		sigmap.InsertSubscriberData, sigmap.InsertSubscriberDataAck,
		sigmap.SendAuthenticationInfo, sigmap.SendAuthenticationInfoAck,
		sigmap.Authenticate, sigmap.AuthenticateAck,
		sigmap.SetCipherMode, sigmap.SetCipherModeAck,
		sigmap.SendInfoForOutgoingCall, sigmap.SendInfoForOutgoingCallAck,
		sigmap.SendRoutingInformation, sigmap.SendRoutingInformationAck,
		sigmap.ProvideRoamingNumber, sigmap.ProvideRoamingNumberAck,
		sigmap.SendInfoForIncomingCall, sigmap.SendInfoForIncomingCallAck,
		sigmap.SendRoutingInfoForGPRS, sigmap.SendRoutingInfoForGPRSAck,
		sigmap.UpdateGPRSLocation, sigmap.UpdateGPRSLocationAck,
		sigmap.PrepareHandover, sigmap.PrepareHandoverAck,
		sigmap.PrepareSubsequentHandover, sigmap.PrepareSubsequentHandoverAck,
		sigmap.SendEndSignal, sigmap.SendEndSignalAck,
		sigmap.CancelLocation, sigmap.CancelLocationAck,
		sigmap.SendIMSI, sigmap.SendIMSIAck:
		b, err := sigmap.Marshal(msg)
		if err != nil {
			t.Fatalf("MAP marshal %s: %v", msg.Name(), err)
		}
		got, err := sigmap.Unmarshal(b)
		return requireEqual("MAP", got, err)
	case q931.Setup, q931.CallProceeding, q931.Alerting, q931.Connect,
		q931.ConnectAck, q931.ReleaseComplete:
		b, err := q931.Marshal(msg)
		if err != nil {
			t.Fatalf("Q.931 marshal %s: %v", msg.Name(), err)
		}
		got, err := q931.Unmarshal(b)
		return requireEqual("Q.931", got, err)
	case isup.IAM, isup.ACM, isup.ANM, isup.REL, isup.RLC:
		b, err := isup.Marshal(msg)
		if err != nil {
			t.Fatalf("ISUP marshal %s: %v", msg.Name(), err)
		}
		got, err := isup.Unmarshal(b)
		return requireEqual("ISUP", got, err)
	case gtp.CreatePDPRequest, gtp.CreatePDPResponse,
		gtp.DeletePDPRequest, gtp.DeletePDPResponse,
		gtp.PDUNotifyRequest, gtp.PDUNotifyResponse,
		gtp.EchoRequest, gtp.EchoResponse, gtp.TPDU:
		b, err := gtp.Marshal(msg)
		if err != nil {
			t.Fatalf("GTP marshal %s: %v", msg.Name(), err)
		}
		got, err := gtp.Unmarshal(b)
		return requireEqual("GTP", got, err)
	case gb.ULUnitdata, gb.DLUnitdata:
		b, err := gb.Marshal(msg)
		if err != nil {
			t.Fatalf("Gb marshal %s: %v", msg.Name(), err)
		}
		got, err := gb.Unmarshal(b)
		return requireEqual("Gb", got, err)
	// The media fast path traces reusable pointer messages; round-trip
	// their (current) contents through the value codecs.
	case *gtp.TPDU:
		return roundTripMessage(t, *m)
	case *gb.ULUnitdata:
		return roundTripMessage(t, *m)
	case *gb.DLUnitdata:
		return roundTripMessage(t, *m)
	case ipnet.Packet:
		got, err := ipnet.Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("IP round trip: %v", err)
		}
		// Packet equality: payload slices compare by content.
		if got.Src != m.Src || got.Dst != m.Dst || got.Proto != m.Proto ||
			got.SrcPort != m.SrcPort || got.DstPort != m.DstPort ||
			string(got.Payload) != string(m.Payload) {
			t.Fatalf("IP round trip mismatch: %+v vs %+v", m, got)
		}
		// Classify RTP-bearing packets as the RTP family too so the
		// family coverage check sees them.
		if m.DstPort == ipnet.PortRTP || m.SrcPort == ipnet.PortRTP {
			if _, err := rtp.Unmarshal(m.Payload); err == nil {
				return "RTP", true
			}
		}
		return "IP", true
	// RAS and GMM/SM messages appear in the trace as logical arrows
	// (their bytes ride in IP packets / LLC PDUs); round-trip them
	// through their codecs too.
	case h323.RRQ, h323.RCF, h323.RRJ, h323.URQ, h323.UCF,
		h323.ARQ, h323.ACF, h323.ARJ, h323.DRQ, h323.DCF,
		h323.LRQ, h323.LCF, h323.LRJ:
		b, err := h323.MarshalRAS(msg)
		if err != nil {
			t.Fatalf("RAS marshal %s: %v", msg.Name(), err)
		}
		got, err := h323.UnmarshalRAS(b)
		return requireEqual("RAS", got, err)
	case gprs.AttachRequest, gprs.AttachAccept, gprs.AttachReject,
		gprs.DetachRequest, gprs.DetachAccept,
		gprs.ActivatePDPRequest, gprs.ActivatePDPAccept, gprs.ActivatePDPReject,
		gprs.DeactivatePDPRequest, gprs.DeactivatePDPAccept,
		gprs.RequestPDPActivation, gprs.RAUpdateRequest, gprs.RAUpdateAccept:
		b, err := gprs.MarshalSM(msg)
		if err != nil {
			t.Fatalf("GMM marshal %s: %v", msg.Name(), err)
		}
		got, err := gprs.UnmarshalSM(b)
		return requireEqual("GMM", got, err)
	case gsm.ChannelRequest, gsm.ImmediateAssignment, gsm.LocationUpdate,
		gsm.LocationUpdateAccept, gsm.LocationUpdateReject,
		gsm.AuthRequest, gsm.AuthResponse,
		gsm.CipherModeCommand, gsm.CipherModeComplete,
		gsm.Setup, gsm.CallConfirmed, gsm.Alerting, gsm.Connect,
		gsm.Disconnect, gsm.Release, gsm.ReleaseComplete,
		gsm.Paging, gsm.PagingResponse, gsm.TCHFrame,
		gsm.MeasurementReport, gsm.HandoverRequired, gsm.HandoverCommand,
		gsm.HandoverAccess, gsm.HandoverComplete, gsm.LLCFrame:
		b, err := gsm.Marshal(msg)
		if err != nil {
			t.Fatalf("GSM L3 marshal %s: %v", msg.Name(), err)
		}
		got, err := gsm.Unmarshal(b)
		return requireEqual("GSM", got, err)
	default:
		return "", false
	}
}
