package netsim

import (
	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
	"vgprs/internal/vlr"
	"vgprs/internal/vmsc"
)

// TwoVMSCNet extends a VGPRSNet with a second complete vGPRS service area —
// its own VMSC, VLR, SGSN and radio subsystem — sharing the HLR, GGSN,
// gatekeeper and terminals. It exercises the paper's §5 movement case: when
// an MS leaves a VMSC's area, standard GSM location update runs through the
// new switch, the HLR cancels the old VLR, the old VLR tells its VMSC, and
// the old VMSC releases the gatekeeper alias and GPRS contexts it held on
// the subscriber's behalf.
type TwoVMSCNet struct {
	*VGPRSNet
	// VMSC2/VLR2/SGSN2/BSC2 serve the second area.
	VMSC2 *vmsc.VMSC
	VLR2  *vlr.VLR
	SGSN2 SGSNHandle
	BSC2  *gsm.BSC
	// Area2LAI is the second area's location area; MoveTo it with BTS-2.
	Area2LAI gsmid.LAI
}

// BuildTwoVMSC wires the two-area topology. Area 1 is the standard
// BuildVGPRS network; area 2 adds BTS-2/BSC-2/VMSC-2/VLR-2/SGSN-2 with
// links mirroring area 1's, plus Um links from every MS to BTS-2.
func BuildTwoVMSC(opts VGPRSOptions) *TwoVMSCNet {
	base := BuildVGPRS(opts)
	env := base.Env
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	n := &TwoVMSCNet{
		VGPRSNet: base,
		Area2LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 2},
	}

	n.VLR2 = vlr.New(vlr.Config{
		ID: "VLR-2", HLR: "HLR", HomeCountryCode: "886", MSRNPrefix: "88690001",
		AuthDisabled: opts.AuthDisabled,
	})
	sgsn2 := gprs.NewSGSN(gprs.SGSNConfig{ID: "SGSN-2", GGSN: "GGSN-1", HLR: "HLR"})
	n.SGSN2 = SGSNHandle{sgsn2}
	n.VMSC2 = vmsc.New(vmsc.Config{
		ID: "VMSC-2", VLR: "VLR-2", SGSN: "SGSN-2",
		Cell:       gsmid.CGI{LAI: n.Area2LAI, CI: 2},
		Gatekeeper: gkAddr, Dir: base.Dir,
	})
	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-2", BSC: "BSC-2"})
	n.BSC2 = gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-2", MSC: "VMSC-2", BTSs: []sim.NodeID{"BTS-2"},
	})

	for _, node := range []sim.Node{n.VLR2, sgsn2, n.VMSC2, bts2, n.BSC2} {
		env.AddNode(node)
	}
	env.Connect("BTS-2", "BSC-2", "Abis", lat.Abis)
	env.Connect("BSC-2", "VMSC-2", "A", lat.A)
	env.Connect("VMSC-2", "VLR-2", "B", lat.SS7)
	env.Connect("VLR-2", "HLR", "D", lat.SS7)
	env.Connect("VMSC-2", "SGSN-2", "Gb", lat.Gb)
	env.Connect("SGSN-2", "GGSN-1", "Gn", lat.Gn)
	env.Connect("SGSN-2", "HLR", "Gr", lat.SS7)

	for _, ms := range base.MSs {
		env.Connect(ms.ID(), "BTS-2", "Um", lat.Um)
	}
	for _, sub := range base.Subscribers {
		n.VMSC2.ProvisionMSISDN(sub.IMSI, sub.MSISDN)
	}
	return n
}
