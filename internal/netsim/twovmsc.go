package netsim

import (
	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/isup"
	"vgprs/internal/sim"
	"vgprs/internal/vlr"
	"vgprs/internal/vmsc"
)

// TwoVMSCNet extends a VGPRSNet with a second complete vGPRS service area —
// its own VMSC, VLR, SGSN and radio subsystem — sharing the HLR, GGSN,
// gatekeeper and terminals. It exercises the paper's §5 movement case: when
// an MS leaves a VMSC's area, standard GSM location update runs through the
// new switch, the HLR cancels the old VLR, the old VLR tells its VMSC, and
// the old VMSC releases the gatekeeper alias and GPRS contexts it held on
// the subscriber's behalf. The two areas are also mutual inter-system
// handover peers over a MAP-E trunk group, so an MS crossing the boundary
// mid-call hands over (Fig 9) instead of dropping.
type TwoVMSCNet struct {
	*VGPRSNet
	// VMSC2/VLR2/SGSN2/BSC2 serve the second area.
	VMSC2 *vmsc.VMSC
	VLR2  *vlr.VLR
	SGSN2 SGSNHandle
	BSC2  *gsm.BSC
	// Area2LAI is the second area's location area; MoveTo it with BTS-2.
	Area2LAI gsmid.LAI
	// Area1Cell/Area2Cell are the areas' serving cells; an in-call MS
	// reporting the other area's cell triggers an inter-VMSC handover.
	Area1Cell gsmid.CGI
	Area2Cell gsmid.CGI
	// ETrunks is the VMSC-1<->VMSC-2 E-interface trunk group carrying
	// handed-over voice.
	ETrunks *isup.TrunkGroup
}

// BuildTwoVMSC wires the two-area topology. Area 1 is the standard
// BuildVGPRS network; area 2 adds BTS-2/BSC-2/VMSC-2/VLR-2/SGSN-2 with
// links mirroring area 1's, plus Um links from every MS to BTS-2. Under
// sharding (opts.Shards >= 3) the second area's elements run on shard 2;
// at Shards == 2 they share shard 0 with the rest of the core.
func BuildTwoVMSC(opts VGPRSOptions) *TwoVMSCNet {
	area1Cell := gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1}, CI: 1}
	area2LAI := gsmid.LAI{MCC: "466", MNC: "92", LAC: 2}
	area2Cell := gsmid.CGI{LAI: area2LAI, CI: 2}
	eTrunks := isup.NewTrunkGroup("VMSC-1<->VMSC-2 (E)", isup.TrunkNational, 16)

	// VMSC-1 learns area 2 as a handover target (and its own cell as the
	// handback destination) on top of whatever the caller's mutator set.
	callerMutate := opts.VMSCMutate
	opts.VMSCMutate = func(vcfg *vmsc.Config) {
		if callerMutate != nil {
			callerMutate(vcfg)
		}
		if vcfg.HandoverTargets == nil {
			vcfg.HandoverTargets = map[gsmid.CGI]vmsc.HandoverTarget{}
		}
		vcfg.HandoverTargets[area2Cell] = vmsc.HandoverTarget{MSC: "VMSC-2", BTS: "BTS-2"}
		if vcfg.ETrunks == nil {
			vcfg.ETrunks = map[sim.NodeID]*isup.TrunkGroup{}
		}
		vcfg.ETrunks["VMSC-2"] = eTrunks
		if vcfg.HandbackCells == nil {
			vcfg.HandbackCells = map[gsmid.CGI]sim.NodeID{}
		}
		vcfg.HandbackCells[area1Cell] = "BTS-1"
	}

	base := BuildVGPRS(opts)
	env := base.Env
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}
	var sig SigProfile
	if opts.Sig != nil {
		sig = *opts.Sig
	}

	n := &TwoVMSCNet{
		VGPRSNet:  base,
		Area2LAI:  area2LAI,
		Area1Cell: area1Cell,
		Area2Cell: area2Cell,
		ETrunks:   eTrunks,
	}

	n.VLR2 = vlr.New(vlr.Config{
		ID: "VLR-2", HLR: "HLR", HomeCountryCode: "886", MSRNPrefix: "88690001",
		AuthDisabled: opts.AuthDisabled,
		SigRTO:       sig.RTO, SigRetries: sig.Retries,
	})
	sgsn2 := gprs.NewSGSN(gprs.SGSNConfig{
		ID: "SGSN-2", GGSN: "GGSN-1", HLR: "HLR",
		SigRTO: sig.RTO, SigRetries: sig.Retries,
	})
	n.SGSN2 = SGSNHandle{sgsn2}
	n.VMSC2 = vmsc.New(vmsc.Config{
		ID: "VMSC-2", VLR: "VLR-2", SGSN: "SGSN-2",
		Cell:       area2Cell,
		Gatekeeper: gkAddr, Dir: base.Dir,
		SigRTO: sig.RTO, SigRetries: sig.Retries, H323Retries: sig.H323Retries,
		HandoverTargets: map[gsmid.CGI]vmsc.HandoverTarget{
			area1Cell: {MSC: "VMSC-1", BTS: "BTS-1"},
		},
		ETrunks:       map[sim.NodeID]*isup.TrunkGroup{"VMSC-1": eTrunks},
		HandbackCells: map[gsmid.CGI]sim.NodeID{area2Cell: "BTS-2"},
	})
	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-2", BSC: "BSC-2"})
	n.BSC2 = gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-2", MSC: "VMSC-2", BTSs: []sim.NodeID{"BTS-2"},
		TCHCapacity: opts.TCHCapacity,
	})

	for _, node := range []sim.Node{n.VLR2, sgsn2, n.VMSC2, bts2, n.BSC2} {
		env.AddNode(node)
	}
	env.Connect("BTS-2", "BSC-2", "Abis", lat.Abis)
	env.Connect("BSC-2", "VMSC-2", "A", lat.A)
	env.Connect("VMSC-2", "VLR-2", "B", lat.SS7)
	env.Connect("VLR-2", "HLR", "D", lat.SS7)
	env.Connect("VMSC-2", "SGSN-2", "Gb", lat.Gb)
	env.Connect("SGSN-2", "GGSN-1", "Gn", lat.Gn)
	env.Connect("SGSN-2", "HLR", "Gr", lat.SS7)
	env.Connect("VMSC-1", "VMSC-2", "E", lat.SS7)

	for _, ms := range base.MSs {
		env.Connect(ms.ID(), "BTS-2", "Um", lat.Um)
	}
	for _, sub := range base.Subscribers {
		n.VMSC2.ProvisionMSISDN(sub.IMSI, sub.MSISDN)
	}

	// With three or more shards the second area gets its own: every link
	// into it (A, E, D, Gn, Gr, Um) has non-zero latency, so the
	// conservative lookahead stays positive. At exactly two shards the
	// area-2 elements stay on shard 0 with the rest of the core.
	if opts.Shards >= 3 {
		for _, id := range []sim.NodeID{"VLR-2", "SGSN-2", "VMSC-2", "BTS-2", "BSC-2"} {
			env.AssignShard(id, 2)
		}
	}
	return n
}
