package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/sigmap"
)

// TestStaleHandlesAfterPurge locks in the generational-handle contract of
// the slab-backed subscriber stores: once a subscriber is purged
// (CancelLocation after the MS left), every handle minted for the old VMSC
// row and the old gatekeeper registration resolves to nil, and a
// re-registering IMSI gets a fresh row — never the old entry's call state
// resurrected. The power-off happens mid-call so the old row has live call
// state to lose.
func TestStaleHandlesAfterPurge(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 11})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	sub := n.Subscribers[0]

	h1 := n.VMSC.EntryHandle(sub.IMSI)
	if h1.IsZero() || !n.VMSC.EntryAlive(h1) {
		t.Fatalf("no live VMSC handle after registration: %v", h1)
	}
	r1 := n.GK.RegHandle(sub.MSISDN)
	if r1.IsZero() || !n.GK.RegAlive(r1) {
		t.Fatalf("no live gatekeeper handle after registration: %v", r1)
	}

	// Put the subscriber mid-call so the old row holds call state.
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("call did not establish: %v", ms.State())
	}
	if n.VMSC.ActiveCalls() != 1 {
		t.Fatalf("active calls = %d, want 1", n.VMSC.ActiveCalls())
	}

	// Abrupt power loss mid-call, then the HLR-side purge relayed by the
	// VLR: the VMSC unwinds the gatekeeper alias and the GPRS contexts and
	// frees the slab row.
	if err := ms.PowerOff(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	n.Env.Send("HLR", "VLR-1", sigmap.CancelLocation{Invoke: 99, IMSI: sub.IMSI})
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	// Generational invalidation: both old handles are dead and the indexes
	// no longer know the subscriber.
	if n.VMSC.EntryAlive(h1) {
		t.Fatal("stale VMSC handle still resolves after purge")
	}
	if got := n.VMSC.EntryHandle(sub.IMSI); !got.IsZero() {
		t.Fatalf("IMSI index still populated after purge: %v", got)
	}
	if n.GK.RegAlive(r1) {
		t.Fatal("stale gatekeeper handle still resolves after purge")
	}

	// Re-registration mints fresh rows under new generations.
	ms.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("re-registration failed: %v", ms.State())
	}
	h2 := n.VMSC.EntryHandle(sub.IMSI)
	if h2.IsZero() || h2 == h1 {
		t.Fatalf("VMSC handle not re-minted: old %v new %v", h1, h2)
	}
	if n.VMSC.EntryAlive(h1) {
		t.Fatal("re-registration resurrected the old VMSC handle")
	}
	r2 := n.GK.RegHandle(sub.MSISDN)
	if r2.IsZero() || r2 == r1 {
		t.Fatalf("gatekeeper handle not re-minted: old %v new %v", r1, r2)
	}
	if n.GK.RegAlive(r1) {
		t.Fatal("re-registration resurrected the old gatekeeper handle")
	}

	// No call state came back with the IMSI.
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatalf("re-registered subscriber inherited %d calls", n.VMSC.ActiveCalls())
	}
	if res := n.Residual(); res.Total() != 0 {
		t.Fatalf("residual after re-registration:\n%s", res.String())
	}

	// The fresh row carries a working call path end to end.
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("fresh call failed: %v", ms.State())
	}
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if res := n.Residual(); res.Total() != 0 {
		t.Fatalf("residual after fresh call:\n%s", res.String())
	}
}
