package netsim

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/h323"
	"vgprs/internal/hlr"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
	"vgprs/internal/vlr"
	"vgprs/internal/vmsc"
)

// MultiRegionOptions parameterises BuildMultiRegion.
type MultiRegionOptions struct {
	Seed int64
	// Regions is the number of BSC/SGSN regions (default 2). Each region
	// is a full vGPRS stack — BTS, BSC, VMSC, VLR, SGSN, GGSN, router,
	// gatekeeper — sharing one national HLR.
	Regions int
	// MSPerRegion is the subscriber population per region (default 1).
	MSPerRegion int
	// Shards partitions the event loop (0 or 1 = sequential): the HLR and
	// SS7 plane stay on shard 0, region r runs on shard 1+(r mod shards-1).
	// Regions only talk to each other through the HLR's MAP interfaces, so
	// the SS7 latency is the cross-shard lookahead.
	Shards int
	// Latencies is the delay profile (default DefaultLatencies).
	Latencies *Latencies
	// NoTrace disables trace recording (for large load benches).
	NoTrace bool
}

// Region is one region's element handles.
type Region struct {
	VMSC *vmsc.VMSC
	VLR  *vlr.VLR
	SGSN SGSNHandle
	GGSN GGSNHandle
	GK   *h323.Gatekeeper
	BSC  *gsm.BSC
	MSs  []*gsm.MS
}

// MultiRegionNet is the paper's architecture scaled out: R independent
// BSC/SGSN regions homed on one HLR. It exists for engine-scaling work —
// the event population of different regions is nearly independent, so the
// sharded engine can process regions in parallel between HLR interactions.
type MultiRegionNet struct {
	Env     *sim.Env
	Rec     *trace.Recorder
	HLR     *hlr.HLR
	Regions []Region

	// Subscribers is index-aligned with the global MS order: region 0's
	// MSs first, then region 1's, and so on.
	Subscribers []Subscriber
}

// BuildMultiRegion wires Regions copies of the Fig 2(b) region stack around
// a shared HLR:
//
//	MS ~Um~ BTS-Rr ~Abis~ BSC-Rr ~A~ VMSC-Rr ~Gb~ SGSN-Rr ~Gn~ GGSN-Rr ~Gi~ GI-Rr ~IP~ GK-Rr
//	VMSC-Rr ~B~ VLR-Rr ~D~ HLR;  SGSN-Rr ~Gr~ HLR;  GGSN-Rr ~Gc~ HLR
func BuildMultiRegion(opts MultiRegionOptions) *MultiRegionNet {
	if opts.Regions == 0 {
		opts.Regions = 2
	}
	if opts.MSPerRegion == 0 {
		opts.MSPerRegion = 1
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	env := sim.NewShardedEnv(opts.Seed, shards)
	n := &MultiRegionNet{Env: env}
	if !opts.NoTrace {
		n.Rec = trace.NewRecorder()
		env.SetTracer(n.Rec)
	}

	n.HLR = hlr.New(hlr.Config{ID: "HLR"})
	env.AddNode(n.HLR)

	global := 0
	for r := 0; r < opts.Regions; r++ {
		id := func(role string) sim.NodeID {
			return sim.NodeID(fmt.Sprintf("%s-R%d", role, r+1))
		}
		dir := h323.NewDirectory()
		reg := Region{}

		reg.VLR = vlr.New(vlr.Config{
			ID: id("VLR"), HLR: "HLR", HomeCountryCode: "886",
			MSRNPrefix: fmt.Sprintf("8869%04d", r+1),
		})
		sgsn, ggsn := buildGPRSCore(gprsCoreConfig{
			SGSNID: id("SGSN"), GGSNID: id("GGSN"), HLR: "HLR", Gi: id("GI"),
			PoolPrefix: fmt.Sprintf("10.%d.1.0", r+1),
		})
		reg.SGSN, reg.GGSN = SGSNHandle{sgsn}, GGSNHandle{ggsn}

		router := ipnet.NewRouter(id("GI"))
		gkAddr := ipnet.MustAddr(fmt.Sprintf("192.168.%d.1", r+1))
		reg.GK = h323.NewGatekeeper(h323.GatekeeperConfig{
			ID: id("GK"), Addr: gkAddr, Router: id("GI"), Dir: dir,
		})
		router.AddHost(gkAddr, id("GK"))
		router.AddPrefix(mustPrefix(fmt.Sprintf("10.%d.1.0/24", r+1)), id("GGSN"))
		dir.Bind(gkAddr, id("GK"))

		lai := gsmid.LAI{MCC: "466", MNC: "92", LAC: uint16(r + 1)}
		reg.VMSC = vmsc.New(vmsc.Config{
			ID: id("VMSC"), VLR: id("VLR"), SGSN: id("SGSN"),
			Cell:       gsmid.CGI{LAI: lai, CI: 1},
			Gatekeeper: gkAddr, Dir: dir,
		})

		bts := gsm.NewBTS(gsm.BTSConfig{ID: id("BTS"), BSC: id("BSC")})
		reg.BSC = gsm.NewBSC(gsm.BSCConfig{
			ID: id("BSC"), MSC: id("VMSC"), BTSs: []sim.NodeID{id("BTS")},
		})

		for _, node := range []sim.Node{reg.VLR, sgsn, ggsn, router, reg.GK, reg.VMSC, bts, reg.BSC} {
			env.AddNode(node)
		}

		env.Connect(id("BTS"), id("BSC"), "Abis", lat.Abis)
		env.Connect(id("BSC"), id("VMSC"), "A", lat.A)
		env.Connect(id("VMSC"), id("VLR"), "B", lat.SS7)
		env.Connect(id("VLR"), "HLR", "D", lat.SS7)
		env.Connect(id("VMSC"), id("SGSN"), "Gb", lat.Gb)
		env.Connect(id("SGSN"), id("GGSN"), "Gn", lat.Gn)
		env.Connect(id("SGSN"), "HLR", "Gr", lat.SS7)
		env.Connect(id("GGSN"), "HLR", "Gc", lat.SS7)
		env.Connect(id("GGSN"), id("GI"), "Gi", lat.Gi)
		env.Connect(id("GI"), id("GK"), "IP", lat.LAN)

		for i := 0; i < opts.MSPerRegion; i++ {
			sub := SubscriberN(global)
			global++
			n.Subscribers = append(n.Subscribers, sub)
			mustProvision(n.HLR, hlr.Subscriber{
				IMSI: sub.IMSI, MSISDN: sub.MSISDN, Ki: sub.Ki,
				Profile: sigmap.SubscriberProfile{
					MSISDN: sub.MSISDN, InternationalAllowed: true, VoIPQoS: 1,
				},
			})
			msID := sim.NodeID(fmt.Sprintf("MS-R%d-%d", r+1, i+1))
			ms := gsm.NewMS(gsm.MSConfig{
				ID: msID, IMSI: sub.IMSI, MSISDN: sub.MSISDN, Ki: sub.Ki,
				BTS: id("BTS"), LAI: lai,
			})
			reg.MSs = append(reg.MSs, ms)
			env.AddNode(ms)
			env.Connect(msID, id("BTS"), "Um", lat.Um)
			reg.VMSC.ProvisionMSISDN(sub.IMSI, sub.MSISDN)
		}
		n.Regions = append(n.Regions, reg)
	}

	// Partition: HLR (and with it the shared SS7 plane) on shard 0, each
	// region wholly on one of the remaining shards. The only cross-shard
	// links are then the MAP interfaces D/Gr/Gc into the HLR, making the
	// SS7 latency the lookahead.
	if shards > 1 {
		for r := range n.Regions {
			shard := 1 + r%(shards-1)
			prefix := fmt.Sprintf("-R%d", r+1)
			for _, role := range []string{"VLR", "SGSN", "GGSN", "GI", "GK", "VMSC", "BTS", "BSC"} {
				env.AssignShard(sim.NodeID(role+prefix), shard)
			}
			for _, ms := range n.Regions[r].MSs {
				env.AssignShard(ms.ID(), shard)
			}
		}
	}
	return n
}

// RegisterAll powers on every MS in every region and runs until
// registration quiesces, returning an error naming any MS that did not
// reach the idle (registered) state.
func (n *MultiRegionNet) RegisterAll() error {
	for _, reg := range n.Regions {
		for _, ms := range reg.MSs {
			ms.PowerOn(n.Env)
		}
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	for r, reg := range n.Regions {
		for i, ms := range reg.MSs {
			if ms.State() != gsm.MSIdle {
				return fmt.Errorf("netsim: region %d MS %d state %v after registration", r, i, ms.State())
			}
		}
	}
	return nil
}
