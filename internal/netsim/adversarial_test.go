package netsim

import (
	"math/rand"
	"testing"
	"time"

	"vgprs/internal/gb"
	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/q931"
	"vgprs/internal/rtp"
	"vgprs/internal/sigmap"
	"vgprs/internal/ss7"
)

// decoder is one protocol family's decode entry point. Decoders take bytes
// off the wire from peers the node does not control, so none of them may
// panic, whatever the input.
type decoder struct {
	family string
	decode func([]byte)
}

func allDecoders() []decoder {
	return []decoder{
		{"MAP", func(b []byte) { _, _ = sigmap.Unmarshal(b) }},
		{"Q.931", func(b []byte) { _, _ = q931.Unmarshal(b) }},
		{"ISUP", func(b []byte) { _, _ = isup.Unmarshal(b) }},
		{"GTP", func(b []byte) { _, _ = gtp.Unmarshal(b) }},
		{"Gb", func(b []byte) { _, _ = gb.Unmarshal(b) }},
		{"GMM", func(b []byte) { _, _ = gprs.UnmarshalSM(b) }},
		{"RAS", func(b []byte) { _, _ = h323.UnmarshalRAS(b) }},
		{"GSM", func(b []byte) { _, _ = gsm.Unmarshal(b) }},
		{"IP", func(b []byte) { _, _ = ipnet.Unmarshal(b) }},
		{"RTP", func(b []byte) { _, _ = rtp.Unmarshal(b) }},
		{"SS7", func(b []byte) { _, _ = ss7.UnmarshalMSU(b) }},
	}
}

// mustNotPanic runs f and reports a test failure (with the input that
// triggered it) instead of crashing the test binary if f panics.
func mustNotPanic(t *testing.T, family, mode string, input []byte, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s decoder panicked on %s input %x: %v", family, mode, input, r)
		}
	}()
	f()
}

// TestDecodersSurviveRandomGarbage throws seeded random byte strings of
// every length 0..64 at every protocol decoder. Decoders parse attacker-
// controlled bytes; returning an error is fine, panicking is not.
func TestDecodersSurviveRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range allDecoders() {
		for length := 0; length <= 64; length++ {
			for iter := 0; iter < 40; iter++ {
				b := make([]byte, length)
				rng.Read(b)
				mustNotPanic(t, d.family, "garbage", b, func() { d.decode(b) })
			}
		}
	}
}

// harvestEncodings drives a full lifecycle (registration, MO and MT calls
// with media, clearing) and returns the wire encoding of every traced
// message, keyed by family — a corpus of structurally valid packets.
func harvestEncodings(t *testing.T) map[string][][]byte {
	t.Helper()
	n := BuildVGPRS(VGPRSOptions{Seed: 17, NumMS: 2, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if err := n.MSs[0].Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if err := n.MSs[0].Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)

	corpus := make(map[string][][]byte)
	add := func(family string, b []byte, err error) {
		if err == nil {
			corpus[family] = append(corpus[family], b)
		}
	}
	for _, e := range n.Rec.Entries() {
		switch m := e.Msg.(type) {
		case ipnet.Packet:
			add("IP", m.Marshal(), nil)
		case q931.Setup, q931.CallProceeding, q931.Alerting, q931.Connect,
			q931.ReleaseComplete:
			b, err := q931.Marshal(e.Msg)
			add("Q.931", b, err)
		case gtp.CreatePDPRequest, gtp.CreatePDPResponse,
			gtp.DeletePDPRequest, gtp.DeletePDPResponse, gtp.TPDU:
			b, err := gtp.Marshal(e.Msg)
			add("GTP", b, err)
		case gb.ULUnitdata, gb.DLUnitdata:
			b, err := gb.Marshal(e.Msg)
			add("Gb", b, err)
		default:
			if b, err := sigmap.Marshal(e.Msg); err == nil {
				add("MAP", b, nil)
			} else if b, err := h323.MarshalRAS(e.Msg); err == nil {
				add("RAS", b, nil)
			} else if b, err := gprs.MarshalSM(e.Msg); err == nil {
				add("GMM", b, nil)
			} else if b, err := gsm.Marshal(e.Msg); err == nil {
				add("GSM", b, nil)
			}
		}
	}
	// Families the vGPRS trace does not carry directly: a representative
	// ISUP IAM, an RTP packet, and an SS7 MSU.
	b, err := isup.Marshal(isup.IAM{CIC: 7, Called: "0912345678", Calling: "044123"})
	add("ISUP", b, err)
	add("RTP", rtp.Packet{PayloadType: rtp.PayloadTypeGSM, Seq: 9, Timestamp: 160,
		SSRC: 0xDEAD, Payload: []byte("frame")}.Marshal(), nil)
	add("SS7", ss7.MSU{OPC: 1, DPC: 2, SLS: 3, Payload: []byte{1, 2, 3}}.Marshal(), nil)
	return corpus
}

// TestDecodersSurviveTruncation feeds every prefix of every harvested valid
// encoding back to its own decoder: short reads must surface as errors, not
// panics or misparses that crash later.
func TestDecodersSurviveTruncation(t *testing.T) {
	corpus := harvestEncodings(t)
	decoders := map[string]decoder{}
	for _, d := range allDecoders() {
		decoders[d.family] = d
	}
	for family, packets := range corpus {
		d, ok := decoders[family]
		if !ok {
			t.Fatalf("no decoder registered for family %q", family)
		}
		if len(packets) == 0 {
			t.Errorf("no harvested packets for family %q", family)
		}
		for _, pkt := range packets {
			for cut := 0; cut < len(pkt); cut++ {
				mustNotPanic(t, family, "truncated", pkt[:cut], func() { d.decode(pkt[:cut]) })
			}
		}
	}
}

// TestDecodersSurviveCorruption flips seeded random bytes in harvested
// valid encodings and decodes the result with every decoder — both the
// packet's own (bit errors on its link) and the others (misdelivery to the
// wrong port/SAP). No combination may panic.
func TestDecodersSurviveCorruption(t *testing.T) {
	corpus := harvestEncodings(t)
	rng := rand.New(rand.NewSource(99))
	all := allDecoders()
	for family, packets := range corpus {
		for i, pkt := range packets {
			// Bound the per-family work; the corpus repeats structures.
			if i >= 25 {
				break
			}
			for trial := 0; trial < 30; trial++ {
				b := make([]byte, len(pkt))
				copy(b, pkt)
				if len(b) > 0 {
					flips := 1 + rng.Intn(3)
					for f := 0; f < flips; f++ {
						b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
					}
				}
				for _, d := range all {
					mode := "corrupted-" + family
					mustNotPanic(t, d.family, mode, b, func() { d.decode(b) })
				}
			}
		}
	}
}
