package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
)

// TestCallerAbandonDuringPagingReleasesOnce pins the double-release race
// the day-in-the-life soak exposed: the caller abandons while the callee is
// still being paged, so the far-end ReleaseComplete and the paging timer
// both reach the MT call. The second path must be a no-op — before the
// vCall.released guard, the VMSC double-booked the release and its
// active-call count went negative.
func TestCallerAbandonDuringPagingReleasesOnce(t *testing.T) {
	// One traffic channel: the caller holds it, so the callee can never
	// answer the page and the MT leg is pinned in paging until the caller
	// gives up.
	n := BuildVGPRS(VGPRSOptions{Seed: 9, NumMS: 2, TCHCapacity: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	caller, callee := n.MSs[0], n.MSs[1]
	if err := caller.Dial(n.Env, n.Subscribers[1].MSISDN); err != nil {
		t.Fatal(err)
	}
	// Both legs live on the one VMSC: step until the MT leg exists (the
	// setup increments the active count before paging starts).
	deadline := n.Env.Now() + 10*time.Second
	for n.VMSC.ActiveCalls() < 2 && n.Env.Now() < deadline {
		if !n.Env.Step() {
			break
		}
	}
	if got := n.VMSC.ActiveCalls(); got != 2 {
		t.Fatalf("MT leg never materialised: %d active calls", got)
	}
	released := n.VMSC.Stats().CallsReleased

	// The caller abandons mid-page; its ReleaseComplete tears down the MT
	// leg first. Then run well past the 5 s paging timeout so the timer
	// fires against the already-released call.
	if err := caller.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)

	if got := n.VMSC.ActiveCalls(); got != 0 {
		t.Fatalf("active calls after abandon+timeout = %d, want 0", got)
	}
	if got := n.VMSC.Stats().CallsReleased - released; got != 2 {
		t.Fatalf("CallsReleased delta = %d, want 2 (one per leg, no double-booking)", got)
	}
	if res := n.Residual(); res.Total() != 0 {
		t.Fatalf("abandoned call leaked state:\n%s", res.String())
	}

	// The channel and subscriber records must be reusable: the reverse
	// call must page the abandoned party again (a stale entry.call would
	// bounce it with UserBusy instead) and tear down just as cleanly when
	// its paging times out against the single busy channel.
	if err := callee.Dial(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	deadline = n.Env.Now() + 10*time.Second
	for n.VMSC.ActiveCalls() < 2 && n.Env.Now() < deadline {
		if !n.Env.Step() {
			break
		}
	}
	if got := n.VMSC.ActiveCalls(); got != 2 {
		t.Fatalf("reverse call after abandon never reached paging: %d active calls", got)
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	if got := n.VMSC.ActiveCalls(); got != 0 {
		t.Fatalf("active calls after reverse-call timeout = %d, want 0", got)
	}
	if got := n.VMSC.Stats().CallsReleased - released; got != 4 {
		t.Fatalf("CallsReleased delta = %d, want 4 (two legs per attempt)", got)
	}
	if caller.State() != gsm.MSIdle || callee.State() != gsm.MSIdle {
		t.Fatalf("population not idle after drains: caller %v, callee %v",
			caller.State(), callee.State())
	}
	if res := n.Residual(); res.Total() != 0 {
		t.Fatalf("reverse call leaked state:\n%s", res.String())
	}
}
