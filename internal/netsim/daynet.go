package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/h323"
	"vgprs/internal/hlr"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/pstn"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
)

// DayNet is the day-in-the-life topology: the two-area TwoVMSCNet plus
// everything a sustained mixed workload needs — a PSTN side (local
// exchange, H.323 gateway, international fallback to a UK GMSC) for the
// Fig 7/Fig 8 trombone-vs-breakout paths, a UK roamer camped in area 1
// whose MSISDN lands in the local gatekeeper, and background GPRS data
// handsets with their own packet-only radio leg and an echo host on the
// Gi LAN.
type DayNet struct {
	*TwoVMSCNet

	Gateway *h323.Gateway
	LE      *pstn.Exchange
	GMSC    *pstn.Exchange
	PhoneY  *pstn.Phone
	PhoneUK *pstn.Phone

	// Roamer is the visiting UK subscriber (RoamerIMSI/RoamerMSISDN),
	// initially camped in area 1.
	Roamer *gsm.MS

	// DataMSs are packet-only handsets sharing the first subscribers'
	// IMSIs (the dual-mode case: voice via the VMSC, data via the PCU).
	DataMSs []*gprs.MS
	// Echo answers UDP on the Gi LAN for the data handsets to ping.
	Echo *EchoHost

	// LocalTrunks carry LE->gateway legs (local breakout, Fig 8);
	// IntlTrunks carry the LE->GMSC fallback (the tromboned path the
	// breakout avoids, Fig 7).
	LocalTrunks *isup.TrunkGroup
	IntlTrunks  *isup.TrunkGroup
}

// DayOptions parameterises BuildDay.
type DayOptions struct {
	VGPRSOptions
	// DataMS is how many of the first subscribers also get a packet-only
	// data handset (default 1, capped at NumMS).
	DataMS int
}

// gatewayAddr is the PSTN gateway's IP on the H.323 LAN.
var gatewayAddr = ipnet.MustAddr("192.168.1.2")

// echoAddr is the data echo host's IP on the Gi LAN.
var echoAddr = ipnet.MustAddr("192.168.1.100")

// BuildDay wires the day-in-the-life topology.
func BuildDay(opts DayOptions) *DayNet {
	if opts.NumMS == 0 {
		opts.NumMS = 1
	}
	if opts.DataMS == 0 {
		opts.DataMS = 1
	}
	if opts.DataMS > opts.NumMS {
		opts.DataMS = opts.NumMS
	}
	answerDelay := opts.AutoAnswerDelay
	if answerDelay == 0 {
		answerDelay = 200 * time.Millisecond
	}

	// Unregistered Hong-Kong-style local numbers (852…) break out to the
	// PSTN through the gateway; everything else resolves in the
	// gatekeeper's table, including the roamer's UK MSISDN.
	callerGK := opts.GKMutate
	opts.GKMutate = func(cfg *h323.GatekeeperConfig) {
		if callerGK != nil {
			callerGK(cfg)
		}
		cfg.PSTNGateway = gatewayAddr
		cfg.PSTNPrefixes = append(cfg.PSTNPrefixes, "852")
	}

	base := BuildTwoVMSC(opts.VGPRSOptions)
	env := base.Env
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	n := &DayNet{
		TwoVMSCNet:  base,
		LocalTrunks: isup.NewTrunkGroup("LE-1<->GW-1", isup.TrunkLocal, 16),
		IntlTrunks:  isup.NewTrunkGroup("LE-1<->GMSC-UK", isup.TrunkInternational, 16),
	}

	// PSTN side: local exchange, VoIP gateway, international fallback.
	n.Gateway = h323.NewGateway(h323.GatewayConfig{
		ID: "GW-1", Addr: gatewayAddr, Router: "GI", Gatekeeper: gkAddr,
		Dir: base.Dir, Exchange: "LE-1", Trunks: n.LocalTrunks,
	})
	n.Router.AddHost(gatewayAddr, "GW-1")
	base.Dir.Bind(gatewayAddr, "GW-1")

	n.GMSC = pstn.NewExchange(pstn.ExchangeConfig{
		ID: "GMSC-UK", HLR: "HLR", MobilePrefixes: []string{"0447"},
		Routes: []pstn.Route{
			{Prefix: "0446", Next: "PHONE-UK"}, // UK fixed lines
		},
	})
	n.PhoneUK = pstn.NewPhone(pstn.PhoneConfig{
		ID: "PHONE-UK", Number: UKFixedNumber, Exchange: "GMSC-UK",
		AutoAnswer: true, AnswerDelay: answerDelay,
	})
	// The LE prefers the VoIP gateway for UK numbers and falls back to
	// the international route when the gatekeeper cannot resolve one.
	n.LE = pstn.NewExchange(pstn.ExchangeConfig{
		ID: "LE-1",
		Routes: []pstn.Route{
			{Prefix: "044", Next: "GW-1", Trunks: n.LocalTrunks},
			{Prefix: "044", Next: "GMSC-UK", Trunks: n.IntlTrunks},
			{Prefix: "85221", Next: "PHONE-Y"},
		},
	})
	n.PhoneY = pstn.NewPhone(pstn.PhoneConfig{
		ID: "PHONE-Y", Number: CallerNumber, Exchange: "LE-1",
		Talk: opts.Talk, AutoAnswer: true, AnswerDelay: answerDelay,
	})

	// The visiting UK subscriber, provisioned in the shared HLR.
	mustProvision(n.HLR, hlr.Subscriber{
		IMSI: RoamerIMSI, MSISDN: RoamerMSISDN, Ki: roamerKi,
		Profile: sigmap.SubscriberProfile{
			MSISDN: RoamerMSISDN, InternationalAllowed: true, VoIPQoS: 1,
		},
	})
	n.VMSC.ProvisionMSISDN(RoamerIMSI, RoamerMSISDN)
	n.VMSC2.ProvisionMSISDN(RoamerIMSI, RoamerMSISDN)
	n.Roamer = gsm.NewMS(gsm.MSConfig{
		ID: "MS-ROAM", IMSI: RoamerIMSI, MSISDN: RoamerMSISDN, Ki: roamerKi,
		BTS: "BTS-1", LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1},
		Talk: opts.Talk, DTX: opts.DTX,
		AutoAnswer: true, AnswerDelay: answerDelay,
	})

	// Background data: packet-only handsets for the first subscribers,
	// attached over a dedicated PCU radio leg (BuildVGPRS's BSC-1 carries
	// no SGSN link), plus the echo host they ping.
	n.Echo = &EchoHost{Node: "ECHO", Addr: echoAddr}
	n.Router.AddHost(echoAddr, "ECHO")
	btsD := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-D", BSC: "BSC-D"})
	bscD := gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-D", MSC: "VMSC-1", SGSN: "SGSN-1", BTSs: []sim.NodeID{"BTS-D"},
	})
	for i := 0; i < opts.DataMS; i++ {
		id := sim.NodeID(fmt.Sprintf("MS-%d-data", i+1))
		n.DataMSs = append(n.DataMSs, gprs.NewMS(gprs.MSConfig{
			ID: id, IMSI: base.Subscribers[i].IMSI, BTS: "BTS-D",
		}))
	}

	nodes := []sim.Node{
		n.Gateway, n.GMSC, n.PhoneUK, n.LE, n.PhoneY, n.Roamer,
		n.Echo, btsD, bscD,
	}
	for _, ms := range n.DataMSs {
		nodes = append(nodes, ms)
	}
	for _, node := range nodes {
		env.AddNode(node)
	}

	env.Connect("GI", "GW-1", "IP", lat.LAN)
	env.Connect("GI", "ECHO", "IP", lat.LAN)
	env.Connect("LE-1", "GW-1", "ISUP", lat.Natl)
	env.Connect("LE-1", "GMSC-UK", "ISUP", lat.Intl)
	env.Connect("GMSC-UK", "HLR", "C", lat.SS7)
	env.Connect("PHONE-Y", "LE-1", "Line", lat.LAN)
	env.Connect("PHONE-UK", "GMSC-UK", "Line", lat.LAN)
	env.Connect("MS-ROAM", "BTS-1", "Um", lat.Um)
	env.Connect("MS-ROAM", "BTS-2", "Um", lat.Um)
	env.Connect("BTS-D", "BSC-D", "Abis", lat.Abis)
	env.Connect("BSC-D", "VMSC-1", "A", lat.A)
	env.Connect("BSC-D", "SGSN-1", "Gb", lat.Gb)
	for _, ms := range n.DataMSs {
		env.Connect(ms.ID(), "BTS-D", "Um", lat.Um)
	}

	// The radio side — roamer included — joins the RAN shard; the PSTN
	// and Gi-LAN additions stay on shard 0 with the core.
	if opts.Shards > 1 {
		env.AssignShard("MS-ROAM", 1)
		env.AssignShard("BTS-D", 1)
		env.AssignShard("BSC-D", 1)
		for _, ms := range n.DataMSs {
			env.AssignShard(ms.ID(), 1)
		}
	}
	return n
}

// Residual extends the two-area snapshot with the day topology's
// endpoints: gateway/PSTN call legs and the data handsets' clients.
func (n *DayNet) Residual() Residual {
	r := n.TwoVMSCNet.Residual()
	if n.PhoneY.InCall() {
		r.add("PHONE-Y", "active calls", 1)
	}
	if n.PhoneUK.InCall() {
		r.add("PHONE-UK", "active calls", 1)
	}
	r.add("LE-1<->GW-1", "trunks in use", n.LocalTrunks.InUse())
	r.add("LE-1<->GMSC-UK", "trunks in use", n.IntlTrunks.InUse())
	r.add("VMSC-1<->VMSC-2", "trunks in use", n.ETrunks.InUse())
	for _, ms := range n.DataMSs {
		r.add(string(ms.ID()), "pending transactions", ms.Client.PendingTransactions())
	}
	return r
}

// EchoHost is a Gi-LAN node that answers every IP packet with an echo of
// its payload — the far end for background data sessions.
type EchoHost struct {
	Node sim.NodeID
	Addr netip.Addr

	// Packets counts echoes served.
	Packets uint64
}

// ID implements sim.Node.
func (h *EchoHost) ID() sim.NodeID { return h.Node }

// Receive implements sim.Node.
func (h *EchoHost) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	if pkt, ok := msg.(ipnet.Packet); ok {
		h.Packets++
		env.Send(h.Node, from, pkt.Reply(pkt.Payload))
	}
}
