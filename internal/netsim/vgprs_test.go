package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/h323"
)

func TestBuildAndRegister(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, NumMS: 2, NumTerminals: 1})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Every MS has a complete MS-table entry with an IP address.
	for _, sub := range n.Subscribers {
		addr, registered, ok := n.VMSC.Entry(sub.IMSI)
		if !ok || !registered || !addr.IsValid() {
			t.Fatalf("entry for %s = addr %v registered %v ok %v", sub.IMSI, addr, registered, ok)
		}
		// The gatekeeper's address-translation table has the (IP
		// address, MSISDN) pair of paper step 1.5.
		reg, found := n.GK.Lookup(sub.MSISDN)
		if !found || reg.SignalAddr != addr {
			t.Fatalf("GK row for %s = %+v found %v", sub.MSISDN, reg, found)
		}
	}
	// The SGSN/GGSN hold one signalling context per MS.
	if got := n.SGSN.ActiveContexts(); got != 2 {
		t.Fatalf("SGSN contexts = %d", got)
	}
	if got := n.GGSN.ActiveContexts(); got != 2 {
		t.Fatalf("GGSN contexts = %d", got)
	}
}

func TestMOCallToTerminal(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	term := n.Terminals[0]

	connected := false
	ms.SetOnConnected(func(uint32) { connected = true })
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)

	if !connected || ms.State() != gsm.MSInCall {
		t.Fatalf("connected=%v state=%v", connected, ms.State())
	}
	if term.ActiveCalls() != 1 {
		t.Fatalf("terminal calls = %d", term.ActiveCalls())
	}
	// Voice flows both ways: the terminal receives transcoded RTP; the MS
	// receives transcoded TCH frames.
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.Media.Received() == 0 {
		t.Fatal("terminal received no RTP")
	}
	if ms.FramesReceived() == 0 {
		t.Fatal("MS received no downlink speech")
	}
	// Both PDP contexts are up during the call.
	if n.SGSN.ActiveContexts() != 2 {
		t.Fatalf("SGSN contexts during call = %d", n.SGSN.ActiveContexts())
	}

	// MS-side hangup (Fig 5 release).
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("MS state after hangup = %v", ms.State())
	}
	if term.ActiveCalls() != 0 {
		t.Fatal("terminal call not cleared")
	}
	// The voice context is gone; the signalling context remains.
	if n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("SGSN contexts after call = %d", n.SGSN.ActiveContexts())
	}
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatal("VMSC call state leaked")
	}
	// The gatekeeper recorded and closed the charging record.
	recs := n.GK.CallRecords()
	if len(recs) != 1 || !recs[0].Ended {
		t.Fatalf("GK call records = %+v", recs)
	}
}

func TestMTCallFromTerminal(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	term := n.Terminals[0]

	var termConnected bool
	ref, err := term.Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)

	if st, _ := term.CallState(ref); st != h323.CallConnected {
		t.Fatalf("terminal state = %v", st)
	}
	termConnected = true
	_ = termConnected
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MS state = %v", ms.State())
	}
	// Media flows.
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if term.Media.Received() == 0 || ms.FramesReceived() == 0 {
		t.Fatalf("media term=%d ms=%d", term.Media.Received(), ms.FramesReceived())
	}

	// Terminal-side hangup clears everything.
	if err := term.Hangup(n.Env, ref); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if ms.State() != gsm.MSIdle || n.VMSC.ActiveCalls() != 0 {
		t.Fatalf("state ms=%v vmsc-calls=%d", ms.State(), n.VMSC.ActiveCalls())
	}
	if n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("SGSN contexts after call = %d", n.SGSN.ActiveContexts())
	}
}

func TestMSToMSCallThroughVMSC(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, NumMS: 2, Talk: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	caller, callee := n.MSs[0], n.MSs[1]
	if err := caller.Dial(n.Env, n.Subscribers[1].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if caller.State() != gsm.MSInCall || callee.State() != gsm.MSInCall {
		t.Fatalf("states = %v / %v", caller.State(), callee.State())
	}
	// Both legs carry speech (two back-to-back vocoder paths).
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if caller.FramesReceived() == 0 || callee.FramesReceived() == 0 {
		t.Fatalf("frames caller=%d callee=%d", caller.FramesReceived(), callee.FramesReceived())
	}
	// Four PDP contexts: signalling + voice per MS.
	if n.SGSN.ActiveContexts() != 4 {
		t.Fatalf("SGSN contexts = %d", n.SGSN.ActiveContexts())
	}
	if err := caller.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 2*time.Second)
	if callee.State() != gsm.MSIdle {
		t.Fatalf("callee state = %v", callee.State())
	}
	if n.SGSN.ActiveContexts() != 2 {
		t.Fatalf("SGSN contexts after = %d", n.SGSN.ActiveContexts())
	}
}

func TestDeactivateIdlePDPMode(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, DeactivateIdlePDP: true})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Idle: no PDP contexts held (the §6 trade-off's resource side).
	if n.SGSN.ActiveContexts() != 0 {
		t.Fatalf("idle SGSN contexts = %d", n.SGSN.ActiveContexts())
	}

	ms := n.MSs[0]
	term := n.Terminals[0]

	// MO call still works: the signalling context is re-activated first.
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MS state = %v", ms.State())
	}
	if err := ms.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if n.SGSN.ActiveContexts() != 0 {
		t.Fatalf("contexts after MO call = %d", n.SGSN.ActiveContexts())
	}

	// MT call works via network-initiated activation.
	ref, err := term.Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if st, _ := term.CallState(ref); st != h323.CallConnected {
		t.Fatalf("terminal state = %v", st)
	}
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MS state = %v", ms.State())
	}
}
