package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/h323"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

// TestReRegistrationUsesTMSIAndFastPath covers the paper's §3 closing
// remark: "the registration procedure for MS movement is similar ... which
// is likely to occur for location update due to MS movement [with TMSI]".
// The VMSC must not repeat the GPRS attach or gatekeeper registration: the
// MS table entry already exists.
func TestReRegistrationUsesTMSIAndFastPath(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1, VMSCMutate: nil})
	// Rebuild the MS with TMSI re-use enabled.
	ms := gsm.NewMS(gsm.MSConfig{
		ID: "MS-T", IMSI: n.Subscribers[0].IMSI, MSISDN: n.Subscribers[0].MSISDN,
		Ki: n.Subscribers[0].Ki, BTS: "BTS-1",
		LAI:                     gsmid.LAI{MCC: "466", MNC: "92", LAC: 1},
		UseTMSIAfterFirstUpdate: true,
		AutoAnswer:              true,
		AnswerDelay:             100 * time.Millisecond,
	})
	n.Env.AddNode(ms)
	n.Env.Connect("MS-T", "BTS-1", "Um", 10*time.Millisecond)

	n.Terminals[0].Register(n.Env)
	ms.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("initial registration failed: %v", ms.State())
	}
	firstTMSI, _ := ms.TMSI()
	attaches := n.Rec.CountMessages("GPRS Attach Request")
	rrqs := n.Rec.CountMessages("RAS RRQ")
	n.Rec.Reset()

	// Movement: new location area, same VMSC.
	if err := ms.UpdateLocation(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("re-registration failed: %v", ms.State())
	}

	// The air interface carried a TMSI, not the IMSI.
	lu, ok := n.Rec.FirstMatch(trace.ExpectStep{Msg: "Um_Location_Update_Request", From: "MS-T"})
	if !ok {
		t.Fatal("no location update in trace")
	}
	req := lu.Msg.(gsm.LocationUpdate)
	if req.Identity.Kind != gsmid.IdentityTMSI || req.Identity.TMSI != firstTMSI {
		t.Fatalf("re-registration identity = %v, want %v", req.Identity, firstTMSI)
	}
	// A fresh TMSI was allocated.
	newTMSI, _ := ms.TMSI()
	if newTMSI == firstTMSI {
		t.Fatal("TMSI not reallocated on location update")
	}
	// Fast path: no second GPRS attach, no second gatekeeper RRQ.
	if n.Rec.CountMessages("GPRS Attach Request") != 0 {
		t.Fatalf("re-registration repeated GPRS attach (initial run had %d)", attaches)
	}
	if n.Rec.CountMessages("RAS RRQ") != 0 {
		t.Fatalf("re-registration repeated gatekeeper registration (initial run had %d)", rrqs)
	}
	// The MS can still receive calls afterwards.
	ref, err := n.Terminals[0].Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	_ = ref
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("post-movement MT call failed: %v", ms.State())
	}
}

// TestMovementBetweenCellsOfOneVMSC moves the MS to a second BTS/cell under
// the same VMSC and verifies calls follow it there.
func TestMovementBetweenCellsOfOneVMSC(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 1})
	// Add a second cell under the same BSC.
	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-1b", BSC: "BSC-1"})
	n.Env.AddNode(bts2)
	n.Env.Connect("BTS-1b", "BSC-1", "Abis", 2*time.Millisecond)
	n.Env.Connect(sim.NodeID(n.MSs[0].ID()), "BTS-1b", "Um", 10*time.Millisecond)
	// The BSC pages into every cell it controls.
	// (BTS list is fixed at construction; re-add via config would be a
	// topology rebuild, so this test relies on the serving-cell learning
	// the BSC does from uplink traffic.)

	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	if err := ms.MoveTo(n.Env, "BTS-1b", gsmid.LAI{MCC: "466", MNC: "92", LAC: 2}); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("state after move = %v", ms.State())
	}

	// An MT call now pages and connects through the new cell.
	if _, err := n.Terminals[0].Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("MT call after move failed: %v", ms.State())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Setup", From: "BTS-1b", To: "MS-1"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPowerOffDeregisters covers the reverse of Fig 4: IMSI detach removes
// the gatekeeper row and the GPRS contexts, incoming calls then fail
// cleanly, and the MS can register again afterwards.
func TestPowerOffDeregisters(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 8})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	term := n.Terminals[0]

	if err := ms.PowerOff(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if ms.State() != gsm.MSDetached {
		t.Fatalf("state = %v", ms.State())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_IMSI_Detach", From: "MS-1"},
		{Msg: "A_IMSI_Detach", To: "VMSC-1"},
		{Msg: "RAS URQ", From: "VMSC-1", To: "GK"},
		{Msg: "GPRS Detach Request"},
	}); err != nil {
		t.Fatal(err)
	}
	// The gatekeeper row is gone; only the terminal remains registered.
	if n.GK.Registered() != 1 {
		t.Fatalf("GK rows = %d", n.GK.Registered())
	}
	// All the MS's contexts are released at the SGSN.
	if n.SGSN.ActiveContexts() != 0 || n.SGSN.Attached() != 0 {
		t.Fatalf("SGSN contexts=%d attached=%d", n.SGSN.ActiveContexts(), n.SGSN.Attached())
	}
	if n.BSC.ChannelsInUse() != 0 {
		t.Fatalf("channels leaked: %d", n.BSC.ChannelsInUse())
	}

	// An incoming call now fails cleanly (ARJ: alias not registered).
	ref, err := term.Call(n.Env, n.Subscribers[0].MSISDN)
	if err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if st, _ := term.CallState(ref); st != h323.CallCleared {
		t.Fatalf("call to detached MS state = %v", st)
	}

	// Power back on: the full Fig 4 procedure runs again and calls work.
	ms.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("re-registration failed: %v", ms.State())
	}
	if n.GK.Registered() != 2 || n.SGSN.ActiveContexts() != 1 {
		t.Fatalf("GK=%d contexts=%d after re-registration", n.GK.Registered(), n.SGSN.ActiveContexts())
	}
	if _, err := term.Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("post-reregistration MT call failed: %v", ms.State())
	}
}

// TestPeriodicLocationUpdate covers the GSM T3212 periodic registration: an
// idle MS re-registers on the configured interval, using the fast path (no
// repeated GPRS attach or RRQ).
func TestPeriodicLocationUpdate(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 5})
	ms := gsm.NewMS(gsm.MSConfig{
		ID: "MS-P", IMSI: n.Subscribers[0].IMSI, MSISDN: n.Subscribers[0].MSISDN,
		Ki: n.Subscribers[0].Ki, BTS: "BTS-1",
		LAI:                     gsmid.LAI{MCC: "466", MNC: "92", LAC: 1},
		UseTMSIAfterFirstUpdate: true,
		PeriodicUpdate:          30 * time.Second,
	})
	n.Env.AddNode(ms)
	n.Env.Connect("MS-P", "BTS-1", "Um", 10*time.Millisecond)
	n.Terminals[0].Register(n.Env)
	ms.PowerOn(n.Env)
	n.Env.RunUntil(n.Env.Now() + 20*time.Second)
	if ms.State() != gsm.MSIdle {
		t.Fatalf("initial registration failed: %v", ms.State())
	}
	initialUpdates := n.Rec.CountMessages("Um_Location_Update_Request")

	// Two periodic cycles pass.
	n.Env.RunUntil(n.Env.Now() + 70*time.Second)
	updates := n.Rec.CountMessages("Um_Location_Update_Request")
	if updates < initialUpdates+2 {
		t.Fatalf("location updates = %d, want at least %d", updates, initialUpdates+2)
	}
	// Still exactly one GPRS attach and one gatekeeper registration.
	if n.Rec.CountMessages("GPRS Attach Request") != 1 {
		t.Fatalf("attach count = %d", n.Rec.CountMessages("GPRS Attach Request"))
	}
	if got := n.Rec.CountMessages("RAS RRQ"); got != 2 { // MS-P + TERM-1
		t.Fatalf("RRQ count = %d", got)
	}
	if ms.State() != gsm.MSIdle {
		t.Fatalf("state after periodic cycles = %v", ms.State())
	}
}
