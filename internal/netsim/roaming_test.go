package netsim

import (
	"testing"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/trace"
)

func TestFig7TrombonedGSMCall(t *testing.T) {
	n := BuildRoamingGSM(1)
	if err := n.Register(); err != nil {
		t.Fatal(err)
	}
	connected := false
	n.PhoneY.SetOnConnected(func(uint32) { connected = true })

	if _, err := n.PhoneY.Call(n.Env, RoamerMSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	if !connected || n.MS.State() != gsm.MSInCall {
		t.Fatalf("connected=%v ms=%v", connected, n.MS.State())
	}
	// The paper's headline: the local call became TWO international
	// trunks (Fig 7 arrows (1) and (2)).
	if got := n.InternationalSeizures(); got != 2 {
		t.Fatalf("international trunk seizures = %d, want 2", got)
	}
	if n.IntlToUK.InUse() != 1 || n.IntlToHK.InUse() != 1 {
		t.Fatalf("trunks in use UK=%d HK=%d", n.IntlToUK.InUse(), n.IntlToHK.InUse())
	}
	// The signalling path matches Fig 7: call to the UK GMSC, HLR
	// interrogation, trunk back to Hong Kong.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "ISUP_IAM", From: "PHONE-Y", To: "LE-HK"},
		{Msg: "ISUP_IAM", From: "LE-HK", To: "GMSC-UK", Note: "Fig7(1)"},
		{Msg: "MAP_SEND_ROUTING_INFORMATION", From: "GMSC-UK", To: "HLR-UK"},
		{Msg: "MAP_PROVIDE_ROAMING_NUMBER", From: "HLR-UK", To: "VLR-HK"},
		{Msg: "ISUP_IAM", From: "GMSC-UK", To: "MSC-HK", Note: "Fig7(2)"},
		{Msg: "Um_Connect", From: "MS-X"},
	}); err != nil {
		t.Fatal(err)
	}
	// Voice flows over the tromboned path.
	n.Env.RunUntil(n.Env.Now() + time.Second)
	if n.PhoneY.FramesReceived() == 0 || n.MS.FramesReceived() == 0 {
		t.Fatalf("frames y=%d x=%d", n.PhoneY.FramesReceived(), n.MS.FramesReceived())
	}
	// Clearing releases both international circuits.
	if err := n.PhoneY.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if n.IntlToUK.InUse() != 0 || n.IntlToHK.InUse() != 0 {
		t.Fatalf("trunks leaked UK=%d HK=%d", n.IntlToUK.InUse(), n.IntlToHK.InUse())
	}
}

func TestFig8TromboneEliminated(t *testing.T) {
	n := BuildRoamingVGPRS(1)
	if err := n.Register(); err != nil {
		t.Fatal(err)
	}
	connected := false
	n.PhoneY.SetOnConnected(func(uint32) { connected = true })

	if _, err := n.PhoneY.Call(n.Env, RoamerMSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	if !connected || n.MS.State() != gsm.MSInCall {
		t.Fatalf("connected=%v ms=%v", connected, n.MS.State())
	}
	// The paper's claim: zero international trunks; one local trunk.
	if got := n.InternationalSeizures(); got != 0 {
		t.Fatalf("international seizures = %d, want 0", got)
	}
	if n.LocalTrunks.TotalSeizures() != 1 {
		t.Fatalf("local seizures = %d, want 1", n.LocalTrunks.TotalSeizures())
	}
	if completed, refused := n.Gateway.Stats(); completed != 1 || refused != 0 {
		t.Fatalf("gateway completed=%d refused=%d", completed, refused)
	}
	// The Fig 8 sequence: local routing, gatekeeper table probe, VoIP
	// call setup toward the VMSC.
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "ISUP_IAM", From: "PHONE-Y", To: "LE-HK"},
		{Msg: "ISUP_IAM", From: "LE-HK", To: "GW-HK", Note: "Fig8(1)"},
		{Msg: "RAS LRQ", From: "GW-HK", To: "GK-HK", Note: "Fig8(2)"},
		{Msg: "RAS LCF", From: "GK-HK", To: "GW-HK"},
		{Msg: "Q.931 Setup", From: "GW-HK", Note: "Fig8(3)"},
		{Msg: "Um_Connect", From: "MS-X"},
	}); err != nil {
		t.Fatal(err)
	}
	// Voice flows over the local VoIP path.
	n.Env.RunUntil(n.Env.Now() + time.Second)
	if n.PhoneY.FramesReceived() == 0 || n.MS.FramesReceived() == 0 {
		t.Fatalf("frames y=%d x=%d", n.PhoneY.FramesReceived(), n.MS.FramesReceived())
	}
	// Clearing from the roamer side releases the gateway trunk.
	if err := n.MS.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if n.LocalTrunks.InUse() != 0 {
		t.Fatalf("local trunk leaked: %d", n.LocalTrunks.InUse())
	}
	if n.PhoneY.InCall() {
		t.Fatal("phone still in call")
	}
}

// TestMSCallsPSTNPhoneThroughGateway covers the paper §4 statement that the
// called party "can also be a traditional telephone set in the PSTN, which
// is connected indirectly to the GPRS network through the H.323 network":
// the roamer dials y's fixed number; the gatekeeper admits toward the
// gateway, which builds the trunk leg to the local exchange.
func TestMSCallsPSTNPhoneThroughGateway(t *testing.T) {
	n := BuildRoamingVGPRS(4)
	if err := n.Register(); err != nil {
		t.Fatal(err)
	}
	// Make y answer automatically.
	n.PhoneY.SetOnConnected(nil)
	phoneRang := false
	n.PhoneY.SetOnIncoming(func(uint32, gsmid.MSISDN) { phoneRang = true })
	n.PhoneY.SetAutoAnswer(200 * time.Millisecond)

	connected := false
	n.MS.SetOnConnected(func(uint32) { connected = true })
	if err := n.MS.Dial(n.Env, CallerNumber); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	if !phoneRang || !connected || n.MS.State() != gsm.MSInCall {
		t.Fatalf("rang=%v connected=%v state=%v", phoneRang, connected, n.MS.State())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "Um_Setup", From: "MS-X"},
		{Msg: "RAS ARQ", From: "VMSC-HK", To: "GK-HK"},
		{Msg: "RAS ACF", From: "GK-HK", To: "VMSC-HK"},
		{Msg: "Q.931 Setup", From: "VMSC-HK", To: "GW-HK"},
		{Msg: "ISUP_IAM", From: "GW-HK", To: "LE-HK"},
		{Msg: "ISUP_IAM", From: "LE-HK", To: "PHONE-Y"},
		{Msg: "ISUP_ANM", From: "PHONE-Y"},
		{Msg: "Um_Connect", To: "MS-X"},
	}); err != nil {
		t.Fatal(err)
	}
	// Voice flows both ways across the gateway.
	n.Env.RunUntil(n.Env.Now() + time.Second)
	if n.PhoneY.FramesReceived() == 0 || n.MS.FramesReceived() == 0 {
		t.Fatalf("frames y=%d x=%d", n.PhoneY.FramesReceived(), n.MS.FramesReceived())
	}
	// Clearing from the MS releases the gateway trunk.
	if err := n.MS.Hangup(n.Env); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 3*time.Second)
	if n.LocalTrunks.InUse() != 0 {
		t.Fatalf("gateway trunk leaked: %d", n.LocalTrunks.InUse())
	}
	if n.PhoneY.InCall() {
		t.Fatal("phone still in call")
	}
}

func TestFig8FallbackToPSTNOnGKMiss(t *testing.T) {
	n := BuildRoamingVGPRS(2)
	if err := n.Register(); err != nil {
		t.Fatal(err)
	}
	connected := false
	n.PhoneY.SetOnConnected(func(uint32) { connected = true })

	// Call a UK fixed line: not in the gatekeeper table, so the gateway
	// refuses and the exchange falls back to the international route.
	if _, err := n.PhoneY.Call(n.Env, UKFixedNumber); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	if !connected {
		t.Fatal("fallback call did not complete")
	}
	if _, refused := n.Gateway.Stats(); refused != 1 {
		t.Fatalf("gateway refusals = %d", refused)
	}
	if n.InternationalSeizures() != 1 {
		t.Fatalf("international seizures = %d, want 1 (normal PSTN call)", n.InternationalSeizures())
	}
	if err := n.Rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "RAS LRQ", From: "GW-HK", To: "GK-HK"},
		{Msg: "RAS LRJ", From: "GK-HK", To: "GW-HK"},
		{Msg: "ISUP_IAM", From: "LE-HK", To: "GMSC-UK"},
	}); err != nil {
		t.Fatal(err)
	}
}
