package scenario

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/netsim"
	"vgprs/internal/sim"
)

// MobilityPolicy selects when a moving MS re-runs location update within
// its serving area (crossing an area boundary always triggers one).
type MobilityPolicy uint8

const (
	// PolicyDistance updates once the MS has strayed a configured number
	// of grid cells from where it last updated (the distance method of
	// the related location-management literature).
	PolicyDistance MobilityPolicy = iota + 1
	// PolicyThreshold updates after a configured number of cell changes
	// (movement-based update).
	PolicyThreshold
)

// String names the policy for tables and JSON.
func (p MobilityPolicy) String() string {
	switch p {
	case PolicyDistance:
		return "distance"
	case PolicyThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// MobilityConfig parameterises the mobility-churn scenario.
type MobilityConfig struct {
	Seed   int64
	Shards int
	// NumMS is the roaming population (default 4, rounded up to even so
	// the handoff storm can pair callers).
	NumMS int
	// Duration is total simulated churn time (default 10 min).
	Duration time.Duration
	// Policy picks the intra-area update rule (default PolicyDistance).
	Policy MobilityPolicy
	// DistanceCells is the distance policy's threshold in grid cells
	// (Chebyshev metric, default 2).
	DistanceCells int
	// MoveThreshold is the movement policy's cell-change count (default 3).
	MoveThreshold int
	// GridWidth/GridHeight shape the cell grid (default 8x4). Columns in
	// the left half map to service area 1, the right half to area 2.
	GridWidth, GridHeight int
	// StormEvery inserts a scripted handoff storm at this period: all MSs
	// pair into calls, cross the boundary together mid-call, and hang up
	// (default 3 min; 0 < StormEvery <= Duration required to see one).
	StormEvery time.Duration
	// Trace records the full event trace for determinism comparison.
	Trace bool
}

func (c *MobilityConfig) norm() {
	if c.NumMS <= 0 {
		c.NumMS = 4
	}
	if c.NumMS%2 == 1 {
		c.NumMS++
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Minute
	}
	if c.Policy == 0 {
		c.Policy = PolicyDistance
	}
	if c.DistanceCells <= 0 {
		c.DistanceCells = 2
	}
	if c.MoveThreshold <= 0 {
		c.MoveThreshold = 3
	}
	if c.GridWidth <= 1 {
		c.GridWidth = 8
	}
	if c.GridHeight <= 0 {
		c.GridHeight = 4
	}
	if c.StormEvery <= 0 {
		c.StormEvery = 3 * time.Minute
	}
}

// MobilityResult summarises one mobility-churn run.
type MobilityResult struct {
	Policy string `json:"policy"`
	MSs    int    `json:"ms"`
	Shards int    `json:"shards"`

	// Moves counts grid steps taken; BoundaryCrossings those that changed
	// service area.
	Moves             int `json:"moves"`
	BoundaryCrossings int `json:"boundary_crossings"`
	// PolicyUpdates counts intra-area location updates the policy
	// triggered; Relocations counts idle inter-area MoveTo updates.
	PolicyUpdates int `json:"policy_updates"`
	Relocations   int `json:"relocations"`
	// HandoffAttempts counts mid-call boundary crossings reported;
	// Handovers the inter-VMSC handovers the switches completed.
	HandoffAttempts int    `json:"handoff_attempts"`
	Handovers       uint64 `json:"handovers"`
	// StormCalls counts calls the scripted storms established.
	StormCalls  int    `json:"storm_calls"`
	Retransmits uint64 `json:"retransmits"`
	// Residual is the leaked-transient-state count after drain (must be 0).
	Residual int `json:"residual"`

	Fingerprint *Fingerprint `json:"-"`
}

// msTrack is the driver's per-MS bookkeeping.
type msTrack struct {
	ms   *gsm.MS
	x, y int
	// area is the service area the radio currently sits in (1 or 2);
	// regArea the area the MS last registered in.
	area, regArea int
	// updX/updY is the grid cell of the last location update (distance
	// policy); movesSince counts cell changes since (threshold policy).
	updX, updY int
	movesSince int
}

// RunMobility drives the mobility-churn scenario and returns its metrics.
// The network must drain clean: a non-zero Residual is returned as an
// error naming the leaked state.
func RunMobility(cfg MobilityConfig) (MobilityResult, error) {
	cfg.norm()
	n := netsim.BuildTwoVMSC(netsim.VGPRSOptions{
		Seed:    cfg.Seed,
		NumMS:   cfg.NumMS,
		NoTrace: !cfg.Trace,
		Shards:  cfg.Shards,
	})
	res := MobilityResult{Policy: cfg.Policy.String(), MSs: cfg.NumMS, Shards: cfg.Shards}
	if err := n.RegisterAll(); err != nil {
		return res, err
	}
	rng := newRNG(cfg.Seed)
	env := n.Env
	half := cfg.GridWidth / 2

	areaOf := func(x int) int {
		if x < half {
			return 1
		}
		return 2
	}
	btsOf := func(area int) (gsmid.LAI, sim.NodeID) {
		if area == 1 {
			return n.Area1Cell.LAI, "BTS-1"
		}
		return n.Area2LAI, "BTS-2"
	}
	cellOf := func(area int) gsmid.CGI {
		if area == 1 {
			return n.Area1Cell
		}
		return n.Area2Cell
	}

	tracks := make([]*msTrack, cfg.NumMS)
	for i, ms := range n.MSs {
		// Spread the population over area 1's columns; everyone
		// registered there by RegisterAll.
		x, y := i%half, (i/half)%cfg.GridHeight
		tracks[i] = &msTrack{ms: ms, x: x, y: y, area: 1, regArea: 1, updX: x, updY: y}
	}

	chebyshev := func(ax, ay, bx, by int) int {
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dy > dx {
			return dy
		}
		return dx
	}

	// roamStep applies one random-walk step and the resulting signalling.
	roamStep := func(t *msTrack) {
		if rng.Float64() > 0.6 {
			return
		}
		nx, ny := t.x, t.y
		switch rng.Intn(4) {
		case 0:
			nx++
		case 1:
			nx--
		case 2:
			ny++
		case 3:
			ny--
		}
		if nx < 0 || nx >= cfg.GridWidth || ny < 0 || ny >= cfg.GridHeight {
			return
		}
		if nx == t.x && ny == t.y {
			return
		}
		t.x, t.y = nx, ny
		t.movesSince++
		res.Moves++
		newArea := areaOf(t.x)
		if newArea != t.area {
			res.BoundaryCrossings++
		}

		switch t.ms.State() {
		case gsm.MSInCall:
			// Mid-call boundary crossing: report the other area's cell
			// and let the anchor run the Fig 9 inter-VMSC handover. The
			// registration stays at the anchor until the call ends.
			if newArea != t.area {
				t.ms.ReportNeighbor(env, cellOf(newArea))
				res.HandoffAttempts++
				t.area = newArea
			}
		case gsm.MSIdle:
			t.area = newArea
			if newArea != t.regArea {
				// Idle inter-area movement: the paper's §5 case — full
				// location update through the new VMSC, HLR cancels the
				// old one.
				lai, bts := btsOf(newArea)
				if t.ms.MoveTo(env, bts, lai) == nil {
					res.Relocations++
					t.regArea = newArea
					t.updX, t.updY = t.x, t.y
					t.movesSince = 0
				}
				return
			}
			trigger := false
			switch cfg.Policy {
			case PolicyDistance:
				trigger = chebyshev(t.x, t.y, t.updX, t.updY) >= cfg.DistanceCells
			case PolicyThreshold:
				trigger = t.movesSince >= cfg.MoveThreshold
			}
			if trigger {
				if t.ms.UpdateLocation(env) == nil {
					res.PolicyUpdates++
					t.updX, t.updY = t.x, t.y
					t.movesSince = 0
				}
			}
		}
	}

	// settle re-homes an MS whose radio ended up (post-handoff) in an
	// area it is not registered in.
	settle := func(t *msTrack) {
		if t.ms.State() != gsm.MSIdle || t.area == t.regArea {
			return
		}
		lai, bts := btsOf(t.area)
		if t.ms.MoveTo(env, bts, lai) == nil {
			res.Relocations++
			t.regArea = t.area
			t.updX, t.updY = t.x, t.y
			t.movesSince = 0
		}
	}

	// storm pairs the idle population into calls, marches every pair
	// across the boundary mid-call (a simultaneous handoff storm), then
	// clears the calls.
	storm := func() {
		var callers []*msTrack
		for i := 0; i+1 < len(tracks); i += 2 {
			a, b := tracks[i], tracks[i+1]
			if a.ms.State() != gsm.MSIdle || b.ms.State() != gsm.MSIdle {
				continue
			}
			if a.ms.Dial(env, n.Subscribers[i+1].MSISDN) == nil {
				callers = append(callers, a)
			}
		}
		runFor(env, 5*time.Second)
		for _, t := range callers {
			if t.ms.State() != gsm.MSInCall {
				continue
			}
			res.StormCalls++
			other := 3 - t.area
			t.ms.ReportNeighbor(env, cellOf(other))
			res.HandoffAttempts++
			t.area = other
			// Park the MS in the new area's boundary column.
			if other == 1 {
				t.x = half - 1
			} else {
				t.x = half
			}
			t.movesSince++
			res.Moves++
			res.BoundaryCrossings++
		}
		runFor(env, 5*time.Second)
		for _, t := range callers {
			if t.ms.State() == gsm.MSInCall {
				_ = t.ms.Hangup(env)
			}
		}
		runFor(env, 5*time.Second)
		for _, t := range tracks {
			settle(t)
		}
	}

	elapsed := time.Duration(0)
	nextStorm := cfg.StormEvery
	for elapsed < cfg.Duration {
		runFor(env, 5*time.Second)
		elapsed += 5 * time.Second
		for _, t := range tracks {
			settle(t)
			roamStep(t)
		}
		if elapsed >= nextStorm {
			storm()
			nextStorm += cfg.StormEvery
		}
	}

	// Drain: clear every call, settle every registration, and give the
	// retry budgets time to resolve.
	for _, t := range tracks {
		if t.ms.State() == gsm.MSInCall {
			_ = t.ms.Hangup(env)
		}
	}
	runFor(env, 10*time.Second)
	for _, t := range tracks {
		settle(t)
	}
	runFor(env, 30*time.Second)

	res.Handovers = n.VMSC.Stats().Handovers + n.VMSC2.Stats().Handovers
	res.Retransmits = n.SignallingRetransmits() +
		n.VMSC2.Retransmits() + n.VLR2.Retransmits() + n.SGSN2.Retransmits()
	residual := n.Residual()
	res.Residual = residual.Total()
	res.Fingerprint = fingerprintOf(n.VGPRSNet)
	if res.Residual != 0 {
		return res, fmt.Errorf("scenario mobility (seed %d): residual state after drain:\n%s",
			cfg.Seed, residual.String())
	}
	return res, nil
}
