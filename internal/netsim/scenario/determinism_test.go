package scenario

import (
	"fmt"
	"testing"
	"time"
)

// shardCounts are the engine configurations every scenario must agree
// across, byte for byte.
var shardCounts = []int{1, 2, 4}

// firstTraceDiff locates the first divergent trace line for a readable
// failure message.
func firstTraceDiff(a, b string) string {
	if a == b {
		return ""
	}
	la, lb := 0, 0
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			ctx := i - 80
			if ctx < 0 {
				ctx = 0
			}
			end := i + 120
			if end > len(a) {
				end = len(a)
			}
			endB := i + 120
			if endB > len(b) {
				endB = len(b)
			}
			return fmt.Sprintf("first divergence at byte %d (lines %d vs %d):\n  a: …%q\n  b: …%q",
				i, la, lb, a[ctx:end], b[ctx:endB])
		}
		if a[i] == '\n' {
			la++
			lb++
		}
	}
	return fmt.Sprintf("traces are prefixes of each other (len %d vs %d)", len(a), len(b))
}

// compareFingerprints asserts two runs produced identical outcomes.
func compareFingerprints(t *testing.T, label string, shards int, base, got *Fingerprint) {
	t.Helper()
	if base.Delivered != got.Delivered {
		t.Errorf("%s shards=%d: delivered %d, want %d", label, shards, got.Delivered, base.Delivered)
	}
	if base.Now != got.Now {
		t.Errorf("%s shards=%d: final time %v, want %v", label, shards, got.Now, base.Now)
	}
	if base.Entries != got.Entries {
		t.Errorf("%s shards=%d: trace entries %d, want %d", label, shards, got.Entries, base.Entries)
	}
	if base.Trace != got.Trace {
		t.Errorf("%s shards=%d: trace diverges: %s", label, shards, firstTraceDiff(base.Trace, got.Trace))
	}
}

func TestMobilityDeterministicAcrossShards(t *testing.T) {
	for _, policy := range []MobilityPolicy{PolicyDistance, PolicyThreshold} {
		t.Run(policy.String(), func(t *testing.T) {
			var base *MobilityResult
			for _, shards := range shardCounts {
				res, err := RunMobility(MobilityConfig{
					Seed: 7, Shards: shards, NumMS: 4,
					Duration: 3 * time.Minute, Policy: policy,
					StormEvery: 90 * time.Second, Trace: true,
				})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if res.Moves == 0 || res.PolicyUpdates == 0 {
					t.Fatalf("shards=%d: inert run: %+v", shards, res)
				}
				if res.HandoffAttempts == 0 || res.Handovers == 0 {
					t.Fatalf("shards=%d: no handoffs exercised: %+v", shards, res)
				}
				if base == nil {
					r := res
					base = &r
					continue
				}
				compareFingerprints(t, "mobility", shards, base.Fingerprint, res.Fingerprint)
				if base.Moves != res.Moves || base.PolicyUpdates != res.PolicyUpdates ||
					base.Relocations != res.Relocations || base.Handovers != res.Handovers {
					t.Errorf("shards=%d: metrics diverge: base %+v, got %+v", shards, *base, res)
				}
			}
		})
	}
}

func TestFlashCrowdDeterministicAcrossShards(t *testing.T) {
	var base *FlashCrowdResult
	for _, shards := range shardCounts {
		res, err := RunFlashCrowd(FlashCrowdConfig{
			Seed: 11, Shards: shards, NumMS: 8, Trace: true,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Recovered != 8 || res.Exhausted != 0 {
			t.Fatalf("shards=%d: recovery incomplete: %+v", shards, res)
		}
		if res.RecoveryTime <= 0 {
			t.Fatalf("shards=%d: zero recovery time", shards)
		}
		if base == nil {
			r := res
			base = &r
			continue
		}
		compareFingerprints(t, "flash-crowd", shards, base.Fingerprint, res.Fingerprint)
		if base.RecoveryTime != res.RecoveryTime || base.Retransmits != res.Retransmits {
			t.Errorf("shards=%d: metrics diverge: base %+v, got %+v", shards, *base, res)
		}
	}
}

func TestDayDeterministicAcrossShards(t *testing.T) {
	var base *DayResult
	for _, shards := range shardCounts {
		res, err := RunDay(DayConfig{
			Seed: 3, Shards: shards, NumMS: 4, DataMS: 1,
			Duration: 10 * time.Minute, HeapWindow: 5 * time.Minute, Trace: true,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Calls == 0 || res.DataEchoes == 0 {
			t.Fatalf("shards=%d: inert run: %+v", shards, res)
		}
		if res.MSCalls == 0 || res.BreakoutCalls == 0 || res.RoamerCalls == 0 || res.FallbackCalls == 0 {
			t.Fatalf("shards=%d: a traffic class never connected: %+v", shards, res)
		}
		if res.Relocations == 0 || res.PowerCycles == 0 {
			t.Fatalf("shards=%d: churn classes inert: %+v", shards, res)
		}
		if base == nil {
			r := res
			base = &r
			continue
		}
		compareFingerprints(t, "day", shards, base.Fingerprint, res.Fingerprint)
		if base.Calls != res.Calls || base.DataEchoes != res.DataEchoes ||
			base.RoamerCalls != res.RoamerCalls || base.FallbackCalls != res.FallbackCalls {
			t.Errorf("shards=%d: metrics diverge: base %+v, got %+v", shards, *base, res)
		}
	}
}
