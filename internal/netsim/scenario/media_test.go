package scenario

import (
	"testing"
	"time"

	"vgprs/internal/netsim"
)

// TestMediaDeterministicAcrossShards locks the talk path itself — every
// 20 ms frame through the hairpin, including the reusable-message fast
// path and the chaos loss/jitter draws — to a byte-identical trace and
// bit-identical per-call MOS at every shard count.
func TestMediaDeterministicAcrossShards(t *testing.T) {
	var base *MediaResult
	for _, shards := range shardCounts {
		res, err := RunMedia(MediaConfig{
			Seed: 5, Shards: shards, Calls: 3, Waves: 2,
			TalkTime: 5 * time.Second, LossRate: 0.02,
			Jitter: 2 * time.Millisecond, Trace: true,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Frames == 0 || res.FramesExpected == 0 {
			t.Fatalf("shards=%d: inert run: %+v", shards, res)
		}
		if res.RTPLost == 0 {
			t.Fatalf("shards=%d: loss matrix never dropped a frame: %+v", shards, res)
		}
		if len(res.PerCallMOS) != 6 {
			t.Fatalf("shards=%d: scored %d calls, want 6", shards, len(res.PerCallMOS))
		}
		if base == nil {
			r := res
			base = &r
			continue
		}
		compareFingerprints(t, "media", shards, base.Fingerprint, res.Fingerprint)
		if base.Frames != res.Frames || base.RTPLost != res.RTPLost ||
			base.RTPReordered != res.RTPReordered {
			t.Errorf("shards=%d: frame counters diverge: base %+v, got %+v", shards, *base, res)
		}
		for i, mos := range res.PerCallMOS {
			if mos != base.PerCallMOS[i] {
				t.Errorf("shards=%d: call %d MOS %v, want exactly %v", shards, i, mos, base.PerCallMOS[i])
			}
		}
	}
}

// TestMediaLosslessScoresTollQuality pins the clean-path bound the bench
// artifact relies on: with no faults, every call scores >= 4.0 and no
// frame goes missing.
func TestMediaLosslessScoresTollQuality(t *testing.T) {
	res, err := RunMedia(MediaConfig{Seed: 2, Calls: 4, TalkTime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != res.FramesExpected || res.RTPLost != 0 {
		t.Fatalf("clean path lost frames: %+v", res)
	}
	for i, mos := range res.PerCallMOS {
		if mos < 4.0 {
			t.Errorf("call %d: lossless MOS %.2f < 4.0", i, mos)
		}
	}
}

// TestMediaChaosOutageDegradesAndRecovers is the media chaos regression:
// a mid-call Gn outage during wave 0 must crater that wave's scores and
// only that wave's — the same pairs score toll quality again in wave 1 —
// and the clear-down audit must find no residual frame or slab state.
func TestMediaChaosOutageDegradesAndRecovers(t *testing.T) {
	res, err := RunMedia(MediaConfig{
		Seed: 9, Calls: 3, Waves: 2, TalkTime: 6 * time.Second,
		Plan: netsim.FaultPlan{{
			A: "SGSN-1", B: "GGSN-1", Down: true,
			From: 2 * time.Second, Until: 4 * time.Second,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWaveMOS) != 2 {
		t.Fatalf("want 2 wave summaries, got %+v", res.PerWaveMOS)
	}
	hit, clean := res.PerWaveMOS[0], res.PerWaveMOS[1]
	if hit.Max >= clean.Min {
		t.Fatalf("outage wave best MOS %.2f not below clean wave worst %.2f",
			hit.Max, clean.Min)
	}
	if hit.Max >= 3.5 {
		t.Errorf("2s outage in a 6s talk window barely hurt: wave-0 MOS %+v", hit)
	}
	if clean.Min < 4.0 {
		t.Errorf("recovery wave below toll quality: %+v", clean)
	}
	if res.Residual != 0 {
		t.Errorf("residual state after outage run: %d", res.Residual)
	}
}
