package scenario

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/netsim"
)

// FlashCrowdConfig parameterises the flash-crowd scenario: a feigned VMSC
// restart that forces the whole population to re-register at once.
type FlashCrowdConfig struct {
	Seed   int64
	Shards int
	// NumMS is the population size (default 20).
	NumMS int
	// TCHCapacity bounds the BSC's traffic channels (0 = unlimited).
	TCHCapacity int
	// Plan optionally injects link faults during the storm. Fault windows
	// are measured from the storm's start (the mass power-on), not from
	// build time.
	Plan netsim.FaultPlan
	// Window bounds the recovery phase (default 60s) — comfortably past
	// the chaos profile's retry-budget exhaustion, so an MS still
	// unregistered at the deadline has failed cleanly, not slowly.
	Window time.Duration
	// Trace records the full event trace for determinism comparison.
	Trace bool
}

func (c *FlashCrowdConfig) norm() {
	if c.NumMS <= 0 {
		c.NumMS = 20
	}
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
}

// FlashCrowdResult summarises one flash-crowd run.
type FlashCrowdResult struct {
	MSs    int `json:"ms"`
	Shards int `json:"shards"`

	// Recovered/Exhausted partition the population at the deadline:
	// re-registered versus stuck after exhausting their retry budgets.
	Recovered int `json:"recovered"`
	Exhausted int `json:"exhausted"`
	// RecoveryTime is virtual time from the mass power-on until the last
	// MS re-registered (equal to Window when any MS exhausted).
	RecoveryTime time.Duration `json:"recovery_time"`
	// RegisterFailures is the switches' registration-failure count over
	// the storm; Retransmits the signalling-plane total.
	RegisterFailures uint64 `json:"register_failures"`
	Retransmits      uint64 `json:"retransmits"`
	// Residual is the leaked-transient-state count after the run (always
	// audited, even on exhaustion — a failed registration must still
	// drain its transaction state).
	Residual int `json:"residual"`

	Fingerprint *Fingerprint `json:"-"`
}

// TransientCoreOutage scripts a total VLR<->HLR outage covering the
// storm's first d — the canonical recoverable fault for flash-crowd runs:
// location updates stall at the VLR until the link heals, then the retry
// budgets carry everyone through.
func TransientCoreOutage(d time.Duration) netsim.FaultPlan {
	return netsim.FaultPlan{{A: "VLR-1", B: "HLR", Down: true, Until: d}}
}

// RunFlashCrowd builds a single-area network with the chaos retransmission
// profile, registers everyone, then feigns a VMSC restart: every MS powers
// off and back on in the same virtual-time tick, optionally under a fault
// plan. Exhausted retry budgets come back as a *netsim.ProcedureError with
// the per-MS breakdown in the result; a residual-state leak is its own
// error regardless of recovery.
func RunFlashCrowd(cfg FlashCrowdConfig) (FlashCrowdResult, error) {
	cfg.norm()
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{
		Seed:        cfg.Seed,
		NumMS:       cfg.NumMS,
		NoTrace:     !cfg.Trace,
		Sig:         netsim.ChaosSigProfile(),
		TCHCapacity: cfg.TCHCapacity,
		Shards:      cfg.Shards,
	})
	res := FlashCrowdResult{MSs: cfg.NumMS, Shards: cfg.Shards}
	if err := n.RegisterAll(); err != nil {
		return res, err
	}
	failsBefore := n.VMSC.Stats().RegisterFailers
	retransBefore := n.SignallingRetransmits()

	// The feigned restart: the switch "loses" everyone at once, modelled
	// as a same-tick mass detach. Power-off runs the clean detach
	// signalling (IMSI detach, GPRS detach, URQ), which is what a
	// restarting VMSC's peers would observe as it flushed state.
	for _, ms := range n.MSs {
		if err := ms.PowerOff(n.Env); err != nil {
			return res, fmt.Errorf("scenario flash-crowd (seed %d): power-off: %w", cfg.Seed, err)
		}
	}
	detached := func() bool {
		for _, ms := range n.MSs {
			if ms.State() != gsm.MSDetached {
				return false
			}
		}
		return true
	}
	if !runUntil(n.Env, 30*time.Second, detached) {
		return res, fmt.Errorf("scenario flash-crowd (seed %d): population failed to detach", cfg.Seed)
	}

	// Storm start: faults engage relative to this instant, and every MS
	// re-registers in the same tick.
	if err := cfg.Plan.Apply(n.Env); err != nil {
		return res, err
	}
	start := n.Env.Now()
	for _, ms := range n.MSs {
		ms.PowerOn(n.Env)
	}
	recoveredAll := runUntil(n.Env, cfg.Window, func() bool {
		for _, ms := range n.MSs {
			if ms.State() != gsm.MSIdle {
				return false
			}
		}
		return true
	})
	res.RecoveryTime = n.Env.Now() - start

	for _, ms := range n.MSs {
		if ms.State() == gsm.MSIdle {
			res.Recovered++
		} else {
			res.Exhausted++
		}
	}
	res.RegisterFailures = n.VMSC.Stats().RegisterFailers - failsBefore
	res.Retransmits = n.SignallingRetransmits() - retransBefore

	// Let in-flight retries and dialogues drain before the leak audit —
	// exhausted registrations must fail clean, not leave transactions
	// behind.
	runFor(n.Env, 15*time.Second)
	residual := n.Residual()
	res.Residual = residual.Total()
	res.Fingerprint = fingerprintOf(n)

	if res.Residual != 0 {
		return res, fmt.Errorf("scenario flash-crowd (seed %d): residual state after storm:\n%s",
			cfg.Seed, residual.String())
	}
	if !recoveredAll {
		return res, &netsim.ProcedureError{
			Procedure: "flash-crowd", Seed: cfg.Seed,
			Detail: fmt.Errorf("%d/%d MSs exhausted retry budgets within %v",
				res.Exhausted, cfg.NumMS, cfg.Window),
		}
	}
	return res, nil
}
