package scenario

import (
	"testing"
	"time"
)

// soakDuration picks the simulated length: the full default for regular
// runs, a reduced (but still multi-window) slice under -short so the CI
// soak-short job exercises the same invariants quickly.
func soakDuration(t *testing.T) (time.Duration, time.Duration) {
	if testing.Short() {
		return time.Hour, 15 * time.Minute
	}
	return 4 * time.Hour, 30 * time.Minute
}

// TestDaySoakLeakProof is the soak gate: a day-in-the-life run long enough
// to shake out state leaks must end with zero residual transient state and
// a flat post-GC heap across the final two sampling windows.
func TestDaySoakLeakProof(t *testing.T) {
	dur, window := soakDuration(t)
	res, err := RunDay(DayConfig{
		Seed: 42, NumMS: 6, DataMS: 2,
		Duration: dur, HeapWindow: window,
	})
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if res.Residual != 0 {
		t.Fatalf("residual transient state after drain:\n%s", res.ResidualDetail)
	}
	if res.Calls == 0 || res.DataEchoes == 0 || res.PowerCycles == 0 {
		t.Fatalf("soak was inert: %+v", res)
	}
	if len(res.HeapWindows) < 3 {
		t.Fatalf("want >= 3 heap windows, got %d (%v)", len(res.HeapWindows), res.HeapWindows)
	}

	// Steady state: the last window must not have grown materially over
	// the one before it. Post-GC HeapAlloc jitters with goroutine stacks
	// and allocator slack, so allow the larger of 5% or 512 KiB.
	prev := res.HeapWindows[len(res.HeapWindows)-2]
	last := res.HeapWindows[len(res.HeapWindows)-1]
	if last > prev {
		growth := last - prev
		slack := prev / 20
		if slack < 512*1024 {
			slack = 512 * 1024
		}
		if growth > slack {
			t.Fatalf("heap grew %d bytes between final windows (%d -> %d); full series: %v",
				growth, prev, last, res.HeapWindows)
		}
	}
	t.Logf("soak: %v simulated, %d calls (%d failures), %d data echoes, %d relocations, %d power cycles, heap windows %v",
		dur, res.Calls, res.CallFailures, res.DataEchoes, res.Relocations, res.PowerCycles, res.HeapWindows)
}

// TestDaySoakShardedMatchesSerial reruns a shorter soak at shard counts 1
// and 4 and requires identical workload outcomes — the soak must not be a
// single-engine special case.
func TestDaySoakShardedMatchesSerial(t *testing.T) {
	dur := time.Hour
	if testing.Short() {
		dur = 20 * time.Minute
	}
	var base *DayResult
	for _, shards := range []int{1, 4} {
		res, err := RunDay(DayConfig{
			Seed: 42, NumMS: 6, DataMS: 2, Shards: shards,
			Duration: dur, HeapWindow: dur / 3,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if base == nil {
			r := res
			base = &r
			continue
		}
		if base.Fingerprint.Delivered != res.Fingerprint.Delivered ||
			base.Fingerprint.Now != res.Fingerprint.Now {
			t.Errorf("shards=%d: engine outcome diverged: %+v vs %+v",
				shards, *base.Fingerprint, *res.Fingerprint)
		}
		if base.Calls != res.Calls || base.CallFailures != res.CallFailures ||
			base.DataEchoes != res.DataEchoes || base.Relocations != res.Relocations {
			t.Errorf("shards=%d: workload diverged: base %+v, got %+v", shards, *base, res)
		}
	}
}
