// Package scenario layers deterministic workloads over the netsim
// topologies: mobility churn across a cell grid (location-update policies
// plus inter-VMSC handoff storms), flash-crowd re-registration after a
// feigned VMSC restart, and a day-in-the-life mixed soak (Poisson call
// arrivals, roamer PSTN terminations, background GPRS data).
//
// Every scenario drives the simulation from a driver-owned seeded RNG and
// advances virtual time in fixed steps, so a (config, seed) pair replays
// byte-identically at any shard count — the determinism tests compare the
// full event trace at shards 1, 2 and 4.
package scenario

import (
	"math/rand"
	"time"

	"vgprs/internal/netsim"
	"vgprs/internal/sim"
)

// Fingerprint captures a run's deterministic outcome for cross-shard
// comparison: the full event trace plus the engine's delivery counters.
type Fingerprint struct {
	Trace     string
	Delivered uint64
	Now       time.Duration
	Entries   int
}

// fingerprintOf snapshots a network's trace state (nil recorder — NoTrace
// runs — fingerprints only the counters).
func fingerprintOf(n *netsim.VGPRSNet) *Fingerprint {
	f := &Fingerprint{Delivered: n.Env.Delivered(), Now: n.Env.Now()}
	if n.Rec != nil {
		f.Trace = n.Rec.Dump()
		f.Entries = n.Rec.Len()
	}
	return f
}

// tick is the driver's decision interval: scenario logic runs between
// RunUntil steps of this size, so every driver action lands on a fixed
// virtual-time grid regardless of shard count.
const tick = time.Second

// runFor advances env through whole ticks until d has elapsed.
func runFor(env *sim.Env, d time.Duration) {
	deadline := env.Now() + d
	for env.Now() < deadline {
		step := deadline - env.Now()
		if step > tick {
			step = tick
		}
		env.RunUntil(env.Now() + step)
	}
}

// runUntil advances env in ticks until done reports true or the window
// elapses, returning done's final verdict.
func runUntil(env *sim.Env, window time.Duration, done func() bool) bool {
	deadline := env.Now() + window
	for {
		if done() {
			return true
		}
		if env.Now() >= deadline {
			return false
		}
		step := deadline - env.Now()
		if step > tick {
			step = tick
		}
		env.RunUntil(env.Now() + step)
	}
}

// newRNG builds the driver-owned random stream. Scenario decisions must
// come from here, never from the Env's per-node streams: the driver runs
// outside any node's dispatch context, and its draws must not perturb (or
// be perturbed by) the nodes' own randomness.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5ce9a110))
}
