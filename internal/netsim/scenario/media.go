package scenario

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/metrics"
	"vgprs/internal/netsim"
)

// MediaConfig parameterises the sustained talk-path scenario: paired
// MS-to-MS calls held up for a fixed talk window while every 20 ms vocoder
// frame rides the full hairpin (Um -> BSC -> VMSC -> Gb -> SGSN -> Gn ->
// GGSN and back down the far leg), with per-call E-model scoring from the
// listeners' mouth-to-ear statistics.
type MediaConfig struct {
	Seed   int64
	Shards int
	// Calls is the number of concurrent MS-to-MS calls per wave
	// (default 4); the build provisions 2*Calls mobiles.
	Calls int
	// Waves repeats the talk window with the same pairs (default 1);
	// media counters reset between waves, so each wave scores
	// independently.
	Waves int
	// TalkTime is how long each wave holds the calls up (default 10s —
	// 500 frames per direction per call).
	TalkTime time.Duration
	// WaveGap is the idle period between waves (default 2s).
	WaveGap time.Duration
	// LossRate drops this fraction of media-leg packets during every
	// wave's talk window (0 = clean).
	LossRate float64
	// Jitter adds uniform per-link delay jitter on the media legs during
	// the talk window (clamped to netsim.MaxMediaJitter).
	Jitter time.Duration
	// Plan optionally injects extra faults during wave 0 only, with
	// windows measured from that wave's talk start. The chaos regression
	// uses it to knock a media leg out mid-call and compare wave scores.
	Plan netsim.FaultPlan
	// DTX gates uplink speech with the Brady talk-spurt model.
	DTX bool
	// Trace records the full event trace for determinism comparison.
	Trace bool
}

func (c *MediaConfig) norm() {
	if c.Calls <= 0 {
		c.Calls = 4
	}
	if c.Waves <= 0 {
		c.Waves = 1
	}
	if c.TalkTime <= 0 {
		c.TalkTime = 10 * time.Second
	}
	if c.WaveGap <= 0 {
		c.WaveGap = 2 * time.Second
	}
}

// MediaResult summarises one media run.
type MediaResult struct {
	Calls  int `json:"calls"`
	Waves  int `json:"waves"`
	Shards int `json:"shards"`

	// Frames/FramesExpected total the listeners' played-out and
	// sequence-implied frame counts across all waves and both directions.
	Frames         uint64 `json:"frames"`
	FramesExpected uint64 `json:"frames_expected"`
	// RTPLost is the RTP-level loss the VMSC receivers observed on the
	// hairpin (attribution: frames that died on the Gb/Gn legs).
	RTPLost uint64 `json:"rtp_lost"`
	// RTPReordered counts late arrivals at the VMSC receivers.
	RTPReordered uint64 `json:"rtp_reordered"`

	// MOS summarises the per-call scores across all waves; PerCallMOS
	// lists them wave-major (wave 0's calls, then wave 1's, ...), each
	// call scored as the worse of its two listener legs. PerWaveMOS
	// splits the summary by wave.
	MOS        metrics.FloatSummary   `json:"mos"`
	PerCallMOS []float64              `json:"per_call_mos"`
	PerWaveMOS []metrics.FloatSummary `json:"per_wave_mos"`

	// MeanDelay/MeanJitter average the listeners' mouth-to-ear delay and
	// RFC 3550 jitter estimates over all scored legs.
	MeanDelay  time.Duration `json:"mean_delay"`
	MeanJitter time.Duration `json:"mean_jitter"`

	// Residual is the leaked-transient-state count after the final
	// drain (includes in-flight media frames at the VMSC).
	Residual int `json:"residual"`

	Fingerprint *Fingerprint `json:"-"`
}

// RunMedia builds a talk-enabled network, registers 2*Calls mobiles, and
// runs Waves rounds of paired MS-to-MS calls: dial, hold the talk window
// under the configured loss/jitter matrix, score each call from its
// listeners' media reports, then clear down and audit for leaks.
func RunMedia(cfg MediaConfig) (MediaResult, error) {
	cfg.norm()
	n := netsim.BuildVGPRS(netsim.VGPRSOptions{
		Seed:    cfg.Seed,
		NumMS:   2 * cfg.Calls,
		Talk:    true,
		DTX:     cfg.DTX,
		NoTrace: !cfg.Trace,
		Sig:     netsim.ChaosSigProfile(),
		Shards:  cfg.Shards,
	})
	res := MediaResult{Calls: cfg.Calls, Waves: cfg.Waves, Shards: cfg.Shards}
	if err := n.RegisterAll(); err != nil {
		return res, err
	}
	scorer := metrics.DefaultEModel()
	var sumDelay, sumJitter time.Duration
	legs := 0

	for wave := 0; wave < cfg.Waves; wave++ {
		// Dial every pair in the same tick: MS 2i calls MS 2i+1.
		for i := 0; i < cfg.Calls; i++ {
			caller := n.MSs[2*i]
			if err := caller.Dial(n.Env, n.Subscribers[2*i+1].MSISDN); err != nil {
				return res, &netsim.ProcedureError{
					Procedure: "media-dial", Seed: cfg.Seed, Detail: err,
				}
			}
		}
		allInCall := func() bool {
			for _, ms := range n.MSs[:2*cfg.Calls] {
				if ms.State() != gsm.MSInCall {
					return false
				}
			}
			return true
		}
		if !runUntil(n.Env, 30*time.Second, allInCall) {
			return res, &netsim.ProcedureError{
				Procedure: "media-setup", Seed: cfg.Seed,
				Detail: fmt.Errorf("wave %d: calls not up after deadline", wave),
			}
		}

		// Talk start: counters reset on the established calls, then the
		// wave's fault matrix engages for exactly the talk window — it
		// heals before clearing, so hangup signalling runs clean.
		for _, ms := range n.MSs[:2*cfg.Calls] {
			ms.ResetMedia()
		}
		chaos := netsim.MediaChaosPlan(cfg.LossRate, cfg.Jitter, 0, cfg.TalkTime)
		if wave == 0 {
			chaos = append(chaos, cfg.Plan...)
		}
		if err := chaos.Apply(n.Env); err != nil {
			return res, err
		}
		runFor(n.Env, cfg.TalkTime)

		// Score before clearing: the VMSC's per-call RTP receivers die
		// with the call state.
		waveMOS := make([]float64, 0, cfg.Calls)
		for i := 0; i < cfg.Calls; i++ {
			a, b := n.MSs[2*i], n.MSs[2*i+1]
			if stats, ok := n.VMSC.CallMedia(a.ID()); ok {
				res.RTPLost += stats.RTPExpected - min64(stats.RTPExpected, stats.RTPReceived)
				res.RTPReordered += stats.RTPReordered
			}
			if stats, ok := n.VMSC.CallMedia(b.ID()); ok {
				res.RTPLost += stats.RTPExpected - min64(stats.RTPExpected, stats.RTPReceived)
				res.RTPReordered += stats.RTPReordered
			}
			mos := 5.0
			for _, listener := range []*gsm.MS{a, b} {
				rep := listener.MediaReport()
				res.Frames += rep.Frames
				res.FramesExpected += rep.Expected
				score := scorer.Score(rep.MeanDelay, rep.Jitter, rep.Expected, rep.Frames)
				if score.MOS < mos {
					mos = score.MOS
				}
				sumDelay += rep.MeanDelay
				sumJitter += rep.Jitter
				legs++
			}
			waveMOS = append(waveMOS, mos)
		}
		res.PerCallMOS = append(res.PerCallMOS, waveMOS...)
		res.PerWaveMOS = append(res.PerWaveMOS, metrics.SummarizeFloats(waveMOS))

		// Clear down: callers hang up, everyone returns to idle.
		for i := 0; i < cfg.Calls; i++ {
			if err := n.MSs[2*i].Hangup(n.Env); err != nil {
				return res, &netsim.ProcedureError{
					Procedure: "media-clear", Seed: cfg.Seed, Detail: err,
				}
			}
		}
		allIdle := func() bool {
			for _, ms := range n.MSs[:2*cfg.Calls] {
				if ms.State() != gsm.MSIdle {
					return false
				}
			}
			return true
		}
		if !runUntil(n.Env, 30*time.Second, allIdle) {
			return res, &netsim.ProcedureError{
				Procedure: "media-clear", Seed: cfg.Seed,
				Detail: fmt.Errorf("wave %d: calls not cleared after deadline", wave),
			}
		}
		runFor(n.Env, cfg.WaveGap)
	}

	res.MOS = metrics.SummarizeFloats(res.PerCallMOS)
	if legs > 0 {
		res.MeanDelay = sumDelay / time.Duration(legs)
		res.MeanJitter = sumJitter / time.Duration(legs)
	}

	// Drain and audit: reusable frame buffers must have no frames in
	// flight, and the slabs no leaked call or context state.
	runFor(n.Env, 10*time.Second)
	residual := n.Residual()
	res.Residual = residual.Total()
	res.Fingerprint = fingerprintOf(n)
	if res.Residual != 0 {
		return res, fmt.Errorf("scenario media (seed %d): residual state after clear-down:\n%s",
			cfg.Seed, residual.String())
	}
	return res, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
