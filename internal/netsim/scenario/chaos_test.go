package scenario

import (
	"errors"
	"testing"
	"time"

	"vgprs/internal/netsim"
)

// TestFlashCrowdOutageRecovery runs the flash crowd under a transient core
// outage — the VLR<->HLR link is down for the storm's first five seconds —
// at shard counts 1, 2 and 4. The chaos retry budgets must ride out the
// outage (everyone recovers), and the run must stay byte-identical across
// shard counts.
func TestFlashCrowdOutageRecovery(t *testing.T) {
	plan := TransientCoreOutage(5 * time.Second)
	var base *FlashCrowdResult
	for _, shards := range shardCounts {
		res, err := RunFlashCrowd(FlashCrowdConfig{
			Seed: 21, Shards: shards, NumMS: 8, Plan: plan, Trace: true,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Recovered != 8 || res.Exhausted != 0 {
			t.Fatalf("shards=%d: population did not ride out the outage: %+v", shards, res)
		}
		if res.Retransmits == 0 {
			t.Fatalf("shards=%d: outage produced no retransmits — fault plan inert", shards)
		}
		if res.RecoveryTime < 5*time.Second {
			t.Fatalf("shards=%d: recovery time %v predates the heal", shards, res.RecoveryTime)
		}
		if base == nil {
			r := res
			base = &r
			continue
		}
		compareFingerprints(t, "flash-crowd outage", shards, base.Fingerprint, res.Fingerprint)
		if base.RecoveryTime != res.RecoveryTime || base.Retransmits != res.Retransmits {
			t.Errorf("shards=%d: metrics diverge: base %+v, got %+v", shards, *base, res)
		}
	}
}

// TestFlashCrowdExhaustionIsCleanAndTyped leaves the VMSC<->VLR link down
// for good: every re-registration must exhaust its retry budget, fail as a
// typed *netsim.ProcedureError, and leave zero residual transaction state —
// identically at every shard count.
func TestFlashCrowdExhaustionIsCleanAndTyped(t *testing.T) {
	plan := netsim.FaultPlan{
		{A: "VMSC-1", B: "VLR-1", Down: true},
	}
	var base *FlashCrowdResult
	for _, shards := range shardCounts {
		res, err := RunFlashCrowd(FlashCrowdConfig{
			Seed: 22, Shards: shards, NumMS: 6, Plan: plan, Trace: true,
		})
		if err == nil {
			t.Fatalf("shards=%d: expected budget exhaustion, got %+v", shards, res)
		}
		var perr *netsim.ProcedureError
		if !errors.As(err, &perr) {
			t.Fatalf("shards=%d: error is %T (%v), want *netsim.ProcedureError", shards, err, err)
		}
		if perr.Procedure != "flash-crowd" || perr.Seed != 22 {
			t.Fatalf("shards=%d: wrong error identity: %+v", shards, perr)
		}
		if res.Exhausted != 6 || res.Recovered != 0 {
			t.Fatalf("shards=%d: partition wrong under total outage: %+v", shards, res)
		}
		// The leak gate still applies to failures: exhausted procedures
		// must tear down their transactions, not abandon them.
		if res.Residual != 0 {
			t.Fatalf("shards=%d: exhausted registrations leaked %d records", shards, res.Residual)
		}
		if base == nil {
			r := res
			base = &r
			continue
		}
		compareFingerprints(t, "flash-crowd exhaustion", shards, base.Fingerprint, res.Fingerprint)
	}
}

// TestFlashCrowdRejectsCrossShardFaultPlan pins the scripting guard: a
// fault plan touching a link whose endpoints live on different shards must
// be rejected loudly, not silently mis-applied.
func TestFlashCrowdRejectsCrossShardFaultPlan(t *testing.T) {
	_, err := RunFlashCrowd(FlashCrowdConfig{
		Seed: 23, Shards: 2, NumMS: 2, Plan: netsim.FaultPlan{
			// The A interface straddles the radio/core partition: BSC-1
			// lives on shard 1, VMSC-1 on shard 0.
			{A: "BSC-1", B: "VMSC-1", Down: true},
		},
	})
	if err == nil {
		t.Fatal("cross-shard fault plan was accepted")
	}
}
