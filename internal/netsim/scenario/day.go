package scenario

import (
	"fmt"
	"net/netip"
	"runtime"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gtp"
	"vgprs/internal/ipnet"
	"vgprs/internal/netsim"
	"vgprs/internal/pstn"
	"vgprs/internal/sim"
)

// DayConfig parameterises the day-in-the-life soak: a sustained mixed
// workload over the DayNet topology with Poisson arrivals in every traffic
// class.
type DayConfig struct {
	Seed   int64
	Shards int
	// Duration is total simulated time (default 4h).
	Duration time.Duration
	// NumMS is the local subscriber population (default 4); DataMS how
	// many of the first subscribers also carry a packet-only data handset
	// (default 1).
	NumMS  int
	DataMS int
	// HeapWindow is the real-heap sampling period in simulated time
	// (default 30 min): each window ends with a forced GC and a HeapAlloc
	// reading, so a state leak shows up as a climbing series.
	HeapWindow time.Duration
	// Trace records the full event trace for determinism comparison. Keep
	// it off for long soaks — the trace grows with every delivery.
	Trace bool
}

func (c *DayConfig) norm() {
	if c.Duration <= 0 {
		c.Duration = 4 * time.Hour
	}
	if c.NumMS <= 0 {
		c.NumMS = 4
	}
	if c.DataMS <= 0 {
		c.DataMS = 1
	}
	if c.DataMS > c.NumMS {
		c.DataMS = c.NumMS
	}
	if c.HeapWindow <= 0 {
		c.HeapWindow = 30 * time.Minute
	}
}

// DayResult summarises one day-in-the-life run.
type DayResult struct {
	MSs    int           `json:"ms"`
	Shards int           `json:"shards"`
	Sim    time.Duration `json:"sim_duration"`

	// CallAttempts counts every call the driver placed; Calls those that
	// reached conversation. The per-class counters split the connected
	// calls: MS-to-MS, mobile-originated PSTN breakout (Fig 8 outbound),
	// PSTN-to-roamer local breakout (Fig 8, the F8 path), and the
	// international fallback to a UK fixed line (Fig 7, the F7 path).
	CallAttempts  int `json:"call_attempts"`
	Calls         int `json:"calls"`
	CallFailures  int `json:"call_failures"`
	MSCalls       int `json:"ms_calls"`
	BreakoutCalls int `json:"breakout_calls"`
	RoamerCalls   int `json:"roamer_calls"`
	FallbackCalls int `json:"fallback_calls"`

	// DataPings/DataEchoes count background-data requests and replies.
	DataPings  int `json:"data_pings"`
	DataEchoes int `json:"data_echoes"`
	// Relocations counts idle inter-area moves; PowerCycles off/on pairs.
	Relocations int `json:"relocations"`
	PowerCycles int `json:"power_cycles"`

	Retransmits uint64 `json:"retransmits"`
	// Residual is the leaked-transient-state count after the final drain;
	// ResidualDetail names the leaks when non-zero.
	Residual       int    `json:"residual"`
	ResidualDetail string `json:"residual_detail,omitempty"`
	// HeapWindows is the post-GC HeapAlloc series, one sample per
	// HeapWindow of simulated time. Flat consecutive windows mean no
	// real-memory leak; the soak test asserts it.
	HeapWindows []uint64 `json:"heap_windows"`

	Fingerprint *Fingerprint `json:"-"`
}

// Traffic classes for in-flight call bookkeeping.
const (
	callMSMS = iota
	callBreakout
	callRoamer
	callFallback
)

// dayCall tracks one placed call until its scheduled hangup.
type dayCall struct {
	kind     int
	caller   *gsm.MS     // callMSMS, callBreakout
	phone    *pstn.Phone // callRoamer, callFallback
	hangupAt time.Duration
}

// RunDay drives the day-in-the-life workload and returns its metrics. The
// network must drain clean at the end: any residual transient state is an
// error naming the leaked records.
func RunDay(cfg DayConfig) (DayResult, error) {
	cfg.norm()
	n := netsim.BuildDay(netsim.DayOptions{
		VGPRSOptions: netsim.VGPRSOptions{
			Seed:    cfg.Seed,
			NumMS:   cfg.NumMS,
			NoTrace: !cfg.Trace,
			Shards:  cfg.Shards,
		},
		DataMS: cfg.DataMS,
	})
	res := DayResult{MSs: cfg.NumMS, Shards: cfg.Shards, Sim: cfg.Duration}
	env := n.Env
	if err := n.RegisterAll(); err != nil {
		return res, err
	}
	n.Roamer.PowerOn(env)
	if !runUntil(env, 30*time.Second, func() bool { return n.Roamer.State() == gsm.MSIdle }) {
		return res, fmt.Errorf("scenario day (seed %d): roamer failed to register", cfg.Seed)
	}

	// Background data: attach each handset and open a data context on
	// NSAPI 7 (the VMSC holds 5 and 6 for the shared subscriber).
	attached := 0
	for _, ms := range n.DataMSs {
		dm := ms
		dm.Client.OnPacket = func(_ *sim.Env, nsapi uint8, _ ipnet.Packet) {
			if nsapi == 7 {
				res.DataEchoes++
			}
		}
		if err := dm.Client.Attach(env, func(ok bool) {
			if ok {
				attached++
			}
		}); err != nil {
			return res, err
		}
	}
	if !runUntil(env, 15*time.Second, func() bool { return attached == len(n.DataMSs) }) {
		return res, fmt.Errorf("scenario day (seed %d): data attach incomplete (%d/%d)",
			cfg.Seed, attached, len(n.DataMSs))
	}
	activated := 0
	for _, ms := range n.DataMSs {
		if err := ms.Client.ActivatePDP(env, 7, gtp.SignallingQoS(), "",
			func(_ netip.Addr, ok bool) {
				if ok {
					activated++
				}
			}); err != nil {
			return res, err
		}
	}
	if !runUntil(env, 15*time.Second, func() bool { return activated == len(n.DataMSs) }) {
		return res, fmt.Errorf("scenario day (seed %d): data PDP activation incomplete (%d/%d)",
			cfg.Seed, activated, len(n.DataMSs))
	}

	rng := newRNG(cfg.Seed)
	// expAfter draws an exponential inter-arrival offset with the given
	// mean, floored at one tick so arrivals land on the decision grid.
	expAfter := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		if d < tick {
			d = tick
		}
		return env.Now() + d
	}

	// area/powered bookkeeping per local MS. Subscribers with a data
	// handset (the first DataMS) are pinned to area 1 and never
	// power-cycled: their SGSN record is shared with the data leg.
	area := make([]int, cfg.NumMS)
	poweredOffAt := make([]time.Duration, cfg.NumMS) // zero = on
	for i := range area {
		area[i] = 1
	}
	mobile := func(i int) bool { return i >= cfg.DataMS }

	var active []*dayCall
	var phoneYCall *dayCall // PhoneY serves one call at a time
	msBusy := func(ms *gsm.MS) bool { return ms.State() != gsm.MSIdle }

	// Arrival schedules: mean inter-arrival per traffic class.
	nextMSCall := expAfter(30 * time.Second)
	nextPhone := expAfter(60 * time.Second)
	nextData := expAfter(20 * time.Second)
	nextMove := expAfter(90 * time.Second)
	nextCycle := expAfter(5 * time.Minute)

	holdFor := func() time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(45*time.Second))
		if d < 5*time.Second {
			d = 5 * time.Second
		}
		return env.Now() + d
	}

	// idleLocal lists callable local MS indices in deterministic order.
	idleLocal := func(requireMobile bool) []int {
		var out []int
		for i, ms := range n.MSs {
			if poweredOffAt[i] != 0 || msBusy(ms) {
				continue
			}
			if requireMobile && !mobile(i) {
				continue
			}
			out = append(out, i)
		}
		return out
	}

	clearCall := func(c *dayCall) {
		connected := false
		switch c.kind {
		case callMSMS, callBreakout:
			connected = c.caller.State() == gsm.MSInCall
			if connected {
				_ = c.caller.Hangup(env)
			}
		case callRoamer, callFallback:
			connected = c.phone.InCall()
			if connected {
				_ = c.phone.Hangup(env)
			}
		}
		if connected {
			res.Calls++
			switch c.kind {
			case callMSMS:
				res.MSCalls++
			case callBreakout:
				res.BreakoutCalls++
			case callRoamer:
				res.RoamerCalls++
			case callFallback:
				res.FallbackCalls++
			}
		} else {
			res.CallFailures++
		}
		if c == phoneYCall {
			phoneYCall = nil
		}
	}

	start := env.Now()
	deadline := start + cfg.Duration
	nextHeap := start + cfg.HeapWindow
	sampleHeap := func() {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		res.HeapWindows = append(res.HeapWindows, m.HeapAlloc)
	}

	for env.Now() < deadline {
		runFor(env, tick)
		now := env.Now()

		// Clear calls whose hold time elapsed.
		kept := active[:0]
		for _, c := range active {
			if now >= c.hangupAt {
				clearCall(c)
			} else {
				kept = append(kept, c)
			}
		}
		active = kept

		// Restore power-cycled MSs after ~30 s off-air.
		for i, offAt := range poweredOffAt {
			if offAt != 0 && now >= offAt+30*time.Second {
				n.MSs[i].PowerOn(env)
				poweredOffAt[i] = 0
			}
		}

		if now >= nextMSCall {
			nextMSCall = expAfter(30 * time.Second)
			if idle := idleLocal(false); len(idle) >= 2 {
				a := idle[rng.Intn(len(idle))]
				b := idle[rng.Intn(len(idle))]
				for b == a {
					b = idle[rng.Intn(len(idle))]
				}
				res.CallAttempts++
				if n.MSs[a].Dial(env, n.Subscribers[b].MSISDN) == nil {
					active = append(active, &dayCall{
						kind: callMSMS, caller: n.MSs[a], hangupAt: holdFor(),
					})
				} else {
					res.CallFailures++
				}
			}
		}

		if now >= nextPhone && phoneYCall == nil {
			nextPhone = expAfter(60 * time.Second)
			// Rotate PhoneY's traffic through the three PSTN classes:
			// call the roamer (F8 local breakout), call a UK fixed line
			// (F7 international fallback), or receive a mobile-originated
			// breakout call.
			pick := rng.Intn(3)
			res.CallAttempts++
			switch {
			case pick == 0 && n.Roamer.State() == gsm.MSIdle:
				if _, err := n.PhoneY.Call(env, netsim.RoamerMSISDN); err == nil {
					phoneYCall = &dayCall{kind: callRoamer, phone: n.PhoneY, hangupAt: holdFor()}
					active = append(active, phoneYCall)
				} else {
					res.CallFailures++
				}
			case pick == 1:
				if _, err := n.PhoneY.Call(env, netsim.UKFixedNumber); err == nil {
					phoneYCall = &dayCall{kind: callFallback, phone: n.PhoneY, hangupAt: holdFor()}
					active = append(active, phoneYCall)
				} else {
					res.CallFailures++
				}
			default:
				if idle := idleLocal(false); len(idle) > 0 {
					i := idle[rng.Intn(len(idle))]
					if n.MSs[i].Dial(env, netsim.CallerNumber) == nil {
						phoneYCall = &dayCall{kind: callBreakout, caller: n.MSs[i], hangupAt: holdFor()}
						active = append(active, phoneYCall)
					} else {
						res.CallFailures++
					}
				} else {
					res.CallAttempts--
				}
			}
		}

		if now >= nextData {
			nextData = expAfter(20 * time.Second)
			for _, ms := range n.DataMSs {
				for i := 0; i < 3; i++ {
					if ms.Client.SendIP(env, 7, ipnet.Packet{
						Dst: n.Echo.Addr, Proto: ipnet.ProtoUDP,
						SrcPort: 9, DstPort: 9, Payload: []byte{byte(i)},
					}) == nil {
						res.DataPings++
					}
				}
			}
		}

		if now >= nextMove {
			nextMove = expAfter(90 * time.Second)
			if idle := idleLocal(true); len(idle) > 0 {
				i := idle[rng.Intn(len(idle))]
				if area[i] == 1 {
					if n.MSs[i].MoveTo(env, "BTS-2", n.Area2LAI) == nil {
						area[i] = 2
						res.Relocations++
					}
				} else {
					if n.MSs[i].MoveTo(env, "BTS-1", n.Area1Cell.LAI) == nil {
						area[i] = 1
						res.Relocations++
					}
				}
			}
		}

		if now >= nextCycle {
			nextCycle = expAfter(5 * time.Minute)
			if idle := idleLocal(true); len(idle) > 0 {
				i := idle[rng.Intn(len(idle))]
				if n.MSs[i].PowerOff(env) == nil {
					poweredOffAt[i] = now
					res.PowerCycles++
				}
			}
		}

		if now >= nextHeap {
			nextHeap += cfg.HeapWindow
			sampleHeap()
		}
	}

	// Drain: clear every call, restore every power-cycled MS, and wait
	// for the signalling planes to settle before the leak audit.
	for _, c := range active {
		clearCall(c)
	}
	active = nil
	runFor(env, 10*time.Second)
	for i, offAt := range poweredOffAt {
		if offAt != 0 {
			n.MSs[i].PowerOn(env)
			poweredOffAt[i] = 0
		}
	}
	allIdle := func() bool {
		for _, ms := range n.MSs {
			if ms.State() != gsm.MSIdle {
				return false
			}
		}
		return n.Roamer.State() == gsm.MSIdle
	}
	if !runUntil(env, 60*time.Second, allIdle) {
		return res, fmt.Errorf("scenario day (seed %d): population failed to settle after drain", cfg.Seed)
	}
	runFor(env, 30*time.Second)
	sampleHeap()

	res.Retransmits = n.SignallingRetransmits() +
		n.VMSC2.Retransmits() + n.VLR2.Retransmits() + n.SGSN2.Retransmits()
	residual := n.Residual()
	res.Residual = residual.Total()
	if res.Residual != 0 {
		res.ResidualDetail = residual.String()
	}
	res.Fingerprint = fingerprintOf(n.VGPRSNet)
	if res.Residual != 0 {
		return res, fmt.Errorf("scenario day (seed %d): residual state after drain:\n%s",
			cfg.Seed, residual.String())
	}
	return res, nil
}
