package scenario

import (
	"testing"
	"time"
)

// TestMobilitySlabResidency runs the mobility churn — location-update and
// handoff storms over a slab-resident population — at every shard count and
// confirms the storage layer drains clean: RunMobility's residual snapshot
// now folds in the SlabImbalance() audits of both VMSCs, the gatekeeper,
// and the core databases, so a zero Residual here means every slab slot is
// back on a free-list and every index entry resolves (no leaked rows, no
// stale handles) after the storms subside.
func TestMobilitySlabResidency(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		res, err := RunMobility(MobilityConfig{
			Seed: 5, Shards: shards, NumMS: 8,
			Duration: 4 * time.Minute, StormEvery: 2 * time.Minute,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.PolicyUpdates == 0 || res.Handovers == 0 {
			t.Fatalf("shards=%d: inert run, no LU/handoff pressure: %+v", shards, res)
		}
		if res.Residual != 0 {
			t.Errorf("shards=%d: %d residual records (slab audit included) after drain",
				shards, res.Residual)
		}
	}
}
