package netsim

import (
	"fmt"
	"testing"
	"time"

	"vgprs/internal/gsm"
)

// TestCallConvergesAcrossSeeds is a robustness sweep: for many seeds the
// full register + MO call + MT call + clear cycle must converge with no
// leaked state. (Seeds drive RNG-dependent behaviour: auth challenges,
// backoff, jitter when configured.)
func TestCallConvergesAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			n := BuildVGPRS(VGPRSOptions{Seed: seed, NumMS: 2, Talk: true})
			if err := n.RegisterAll(); err != nil {
				t.Fatal(err)
			}
			ms := n.MSs[0]
			// MO leg.
			if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
				t.Fatal(err)
			}
			n.Env.RunUntil(n.Env.Now() + 5*time.Second)
			if ms.State() != gsm.MSInCall {
				t.Fatalf("MO call state = %v", ms.State())
			}
			if err := ms.Hangup(n.Env); err != nil {
				t.Fatal(err)
			}
			n.Env.RunUntil(n.Env.Now() + 3*time.Second)
			// MT leg to the other MS.
			if _, err := n.Terminals[0].Call(n.Env, n.Subscribers[1].MSISDN); err != nil {
				t.Fatal(err)
			}
			n.Env.RunUntil(n.Env.Now() + 5*time.Second)
			if n.MSs[1].State() != gsm.MSInCall {
				t.Fatalf("MT call state = %v", n.MSs[1].State())
			}
			refs := n.Terminals[0].CallRefs()
			if len(refs) != 1 {
				t.Fatalf("refs = %v", refs)
			}
			if err := n.Terminals[0].Hangup(n.Env, refs[0]); err != nil {
				t.Fatal(err)
			}
			n.Env.RunUntil(n.Env.Now() + 3*time.Second)

			// Invariants: no leaked calls, channels, or voice contexts.
			if n.VMSC.ActiveCalls() != 0 {
				t.Errorf("leaked VMSC calls: %d", n.VMSC.ActiveCalls())
			}
			if n.BSC.ChannelsInUse() != 0 {
				t.Errorf("leaked radio channels: %d", n.BSC.ChannelsInUse())
			}
			if got := n.SGSN.ActiveContexts(); got != 2 {
				t.Errorf("contexts = %d, want 2 signalling", got)
			}
		})
	}
}

// TestDeterminismAcrossRuns re-runs an identical scenario and requires
// byte-identical traces — the property every latency table in
// EXPERIMENTS.md relies on.
func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() string {
		n := BuildVGPRS(VGPRSOptions{Seed: 77, Talk: true})
		if err := n.RegisterAll(); err != nil {
			t.Fatal(err)
		}
		if err := n.MSs[0].Dial(n.Env, TerminalAlias(0)); err != nil {
			t.Fatal(err)
		}
		n.Env.RunUntil(n.Env.Now() + 3*time.Second)
		if err := n.MSs[0].Hangup(n.Env); err != nil {
			t.Fatal(err)
		}
		n.Env.RunUntil(n.Env.Now() + 3*time.Second)
		return n.Rec.Dump()
	}
	if run() != run() {
		t.Fatal("identical seeds produced different traces")
	}
}

// TestCallGlare drives the MS and the terminal to call each other at the
// same instant; exactly the race the single-call-per-MS policy must settle
// without leaking state.
func TestCallGlare(t *testing.T) {
	n := BuildVGPRS(VGPRSOptions{Seed: 9, Talk: false})
	if err := n.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	ms := n.MSs[0]
	term := n.Terminals[0]
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := term.Call(n.Env, n.Subscribers[0].MSISDN); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)

	// Outcomes may differ (one side wins, or both clear), but no state
	// may leak and the network must still be usable afterwards.
	for _, ref := range term.CallRefs() {
		_ = term.Hangup(n.Env, ref)
	}
	if ms.State() == gsm.MSInCall {
		_ = ms.Hangup(n.Env)
	}
	n.Env.RunUntil(n.Env.Now() + 10*time.Second)
	if n.VMSC.ActiveCalls() != 0 {
		t.Fatalf("leaked calls after glare: %d", n.VMSC.ActiveCalls())
	}
	if ms.State() != gsm.MSIdle {
		t.Fatalf("MS state after glare cleanup = %v", ms.State())
	}
	// A fresh call still works.
	if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
		t.Fatal(err)
	}
	n.Env.RunUntil(n.Env.Now() + 5*time.Second)
	if ms.State() != gsm.MSInCall {
		t.Fatalf("post-glare call failed: %v", ms.State())
	}
}

// TestMobilityConvergesAcrossSeeds sweeps the full mobility story — call,
// handoff out, subsequent handback, hangup, then an inter-VMSC relocation —
// across seeds, requiring clean convergence every time.
func TestMobilityConvergesAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			n := BuildHandoff(VGPRSOptions{Seed: seed, Talk: true})
			if err := n.RegisterAll(); err != nil {
				t.Fatal(err)
			}
			ms := n.MSs[0]
			if err := ms.Dial(n.Env, TerminalAlias(0)); err != nil {
				t.Fatal(err)
			}
			n.Env.RunUntil(n.Env.Now() + 3*time.Second)
			if !n.RunHandoff(ms, 10*time.Second) {
				t.Fatal("handoff failed")
			}
			ms.ReportNeighbor(n.Env, n.HomeCell)
			n.Env.RunUntil(n.Env.Now() + 2*time.Second)
			if n.VMSC.Stats().Handovers != 2 || n.ETrunks.InUse() != 0 {
				t.Fatalf("handback incomplete: handovers=%d trunks=%d",
					n.VMSC.Stats().Handovers, n.ETrunks.InUse())
			}
			if err := ms.Hangup(n.Env); err != nil {
				t.Fatal(err)
			}
			n.Env.RunUntil(n.Env.Now() + 2*time.Second)
			if n.VMSC.ActiveCalls() != 0 || n.Terminals[0].ActiveCalls() != 0 {
				t.Fatal("call state leaked")
			}

			m := BuildTwoVMSC(VGPRSOptions{Seed: seed})
			if err := m.RegisterAll(); err != nil {
				t.Fatal(err)
			}
			if err := m.MSs[0].MoveTo(m.Env, "BTS-2", m.Area2LAI); err != nil {
				t.Fatal(err)
			}
			m.Env.RunUntil(m.Env.Now() + 20*time.Second)
			if _, reg, _ := m.VMSC2.Entry(m.Subscribers[0].IMSI); !reg {
				t.Fatal("relocation failed")
			}
			if m.SGSN.ActiveContexts() != 0 {
				t.Fatalf("old SGSN holds %d contexts", m.SGSN.ActiveContexts())
			}
		})
	}
}
