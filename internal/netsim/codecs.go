package netsim

import (
	"sync"

	"vgprs/internal/gb"
	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/q931"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

// sizeScratch recycles the encode buffer WireSize appends into; only the
// length of the encoding is kept, so the bytes themselves never leave this
// file.
var sizeScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// WireSize returns the encoded size of a message through its protocol's
// wire codec, plus the codec family name. ok is false for message types
// with no codec (none remain — every traced type encodes — but the
// signature keeps callers honest). The experiment harness uses it to turn
// traces into byte counts; the wire-through test uses the same dispatch to
// verify round trips. Encoding goes through the codecs' Append entry
// points into a pooled scratch buffer, so sizing a trace does not allocate
// per message.
func WireSize(msg sim.Message) (n int, family string, ok bool) {
	sp := sizeScratch.Get().(*[]byte)
	defer sizeScratch.Put(sp)
	scratch := (*sp)[:0]
	var b []byte
	var err error
	switch m := msg.(type) {
	case sigmap.UpdateLocationArea, sigmap.UpdateLocationAreaAck,
		sigmap.UpdateLocation, sigmap.UpdateLocationAck,
		sigmap.InsertSubscriberData, sigmap.InsertSubscriberDataAck,
		sigmap.SendAuthenticationInfo, sigmap.SendAuthenticationInfoAck,
		sigmap.Authenticate, sigmap.AuthenticateAck,
		sigmap.SetCipherMode, sigmap.SetCipherModeAck,
		sigmap.SendInfoForOutgoingCall, sigmap.SendInfoForOutgoingCallAck,
		sigmap.SendRoutingInformation, sigmap.SendRoutingInformationAck,
		sigmap.ProvideRoamingNumber, sigmap.ProvideRoamingNumberAck,
		sigmap.SendInfoForIncomingCall, sigmap.SendInfoForIncomingCallAck,
		sigmap.SendRoutingInfoForGPRS, sigmap.SendRoutingInfoForGPRSAck,
		sigmap.UpdateGPRSLocation, sigmap.UpdateGPRSLocationAck,
		sigmap.PrepareHandover, sigmap.PrepareHandoverAck,
		sigmap.PrepareSubsequentHandover, sigmap.PrepareSubsequentHandoverAck,
		sigmap.SendEndSignal, sigmap.SendEndSignalAck,
		sigmap.CancelLocation, sigmap.CancelLocationAck,
		sigmap.SendIMSI, sigmap.SendIMSIAck:
		b, err = sigmap.Append(scratch, msg)
		family = "MAP"
	case q931.Setup, q931.CallProceeding, q931.Alerting, q931.Connect,
		q931.ConnectAck, q931.ReleaseComplete:
		b, err = q931.Append(scratch, msg)
		family = "Q.931"
	case isup.IAM, isup.ACM, isup.ANM, isup.REL, isup.RLC:
		b, err = isup.Append(scratch, msg)
		family = "ISUP"
	case gtp.CreatePDPRequest, gtp.CreatePDPResponse,
		gtp.DeletePDPRequest, gtp.DeletePDPResponse,
		gtp.PDUNotifyRequest, gtp.PDUNotifyResponse,
		gtp.EchoRequest, gtp.EchoResponse, gtp.TPDU:
		b, err = gtp.Append(scratch, msg)
		family = "GTP"
	case gb.ULUnitdata, gb.DLUnitdata:
		b, err = gb.Append(scratch, msg)
		family = "Gb"
	// The media fast path sends reusable pointer messages; they encode
	// exactly like their value forms.
	case *gtp.TPDU:
		b, err = gtp.Append(scratch, *m)
		family = "GTP"
	case *gb.ULUnitdata:
		b, err = gb.Append(scratch, *m)
		family = "Gb"
	case *gb.DLUnitdata:
		b, err = gb.Append(scratch, *m)
		family = "Gb"
	case ipnet.Packet:
		return m.EncodedLen(), "IP", true
	case h323.RRQ, h323.RCF, h323.RRJ, h323.URQ, h323.UCF,
		h323.ARQ, h323.ACF, h323.ARJ, h323.DRQ, h323.DCF,
		h323.LRQ, h323.LCF, h323.LRJ:
		b, err = h323.AppendRAS(scratch, msg)
		family = "RAS"
	case gprs.AttachRequest, gprs.AttachAccept, gprs.AttachReject,
		gprs.DetachRequest, gprs.DetachAccept,
		gprs.ActivatePDPRequest, gprs.ActivatePDPAccept, gprs.ActivatePDPReject,
		gprs.DeactivatePDPRequest, gprs.DeactivatePDPAccept,
		gprs.RequestPDPActivation, gprs.RAUpdateRequest, gprs.RAUpdateAccept:
		b, err = gprs.AppendSM(scratch, msg)
		family = "GMM"
	case gsm.ChannelRequest, gsm.ImmediateAssignment, gsm.LocationUpdate,
		gsm.LocationUpdateAccept, gsm.LocationUpdateReject,
		gsm.AuthRequest, gsm.AuthResponse,
		gsm.CipherModeCommand, gsm.CipherModeComplete,
		gsm.Setup, gsm.CallConfirmed, gsm.Alerting, gsm.Connect,
		gsm.Disconnect, gsm.Release, gsm.ReleaseComplete, gsm.IMSIDetach,
		gsm.Paging, gsm.PagingResponse, gsm.TCHFrame,
		gsm.MeasurementReport, gsm.HandoverRequired, gsm.HandoverCommand,
		gsm.HandoverAccess, gsm.HandoverComplete, gsm.LLCFrame:
		b, err = gsm.Append(scratch, msg)
		family = "GSM"
	default:
		return 0, "", false
	}
	if err != nil {
		return 0, "", false
	}
	if cap(b) > cap(*sp) {
		*sp = b
	}
	return len(b), family, true
}

// WireBytesByIface sums the encoded size of every traced message, grouped
// by interface — the byte-level counterpart of
// trace.Recorder.MessagesByInterface used by the C5 experiment.
func WireBytesByIface(rec *trace.Recorder) map[string]int {
	out := make(map[string]int)
	for _, e := range rec.Entries() {
		if n, _, ok := WireSize(e.Msg); ok {
			out[e.Iface] += n
		}
	}
	return out
}
