package netsim

import (
	"vgprs/internal/gb"
	"vgprs/internal/gprs"
	"vgprs/internal/gsm"
	"vgprs/internal/gtp"
	"vgprs/internal/h323"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/q931"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

// WireSize returns the encoded size of a message through its protocol's
// wire codec, plus the codec family name. ok is false for message types
// with no codec (none remain — every traced type encodes — but the
// signature keeps callers honest). The experiment harness uses it to turn
// traces into byte counts; the wire-through test uses the same dispatch to
// verify round trips.
func WireSize(msg sim.Message) (n int, family string, ok bool) {
	switch m := msg.(type) {
	case sigmap.UpdateLocationArea, sigmap.UpdateLocationAreaAck,
		sigmap.UpdateLocation, sigmap.UpdateLocationAck,
		sigmap.InsertSubscriberData, sigmap.InsertSubscriberDataAck,
		sigmap.SendAuthenticationInfo, sigmap.SendAuthenticationInfoAck,
		sigmap.Authenticate, sigmap.AuthenticateAck,
		sigmap.SetCipherMode, sigmap.SetCipherModeAck,
		sigmap.SendInfoForOutgoingCall, sigmap.SendInfoForOutgoingCallAck,
		sigmap.SendRoutingInformation, sigmap.SendRoutingInformationAck,
		sigmap.ProvideRoamingNumber, sigmap.ProvideRoamingNumberAck,
		sigmap.SendInfoForIncomingCall, sigmap.SendInfoForIncomingCallAck,
		sigmap.SendRoutingInfoForGPRS, sigmap.SendRoutingInfoForGPRSAck,
		sigmap.UpdateGPRSLocation, sigmap.UpdateGPRSLocationAck,
		sigmap.PrepareHandover, sigmap.PrepareHandoverAck,
		sigmap.PrepareSubsequentHandover, sigmap.PrepareSubsequentHandoverAck,
		sigmap.SendEndSignal, sigmap.SendEndSignalAck,
		sigmap.CancelLocation, sigmap.CancelLocationAck,
		sigmap.SendIMSI, sigmap.SendIMSIAck:
		b, err := sigmap.Marshal(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "MAP", true
	case q931.Setup, q931.CallProceeding, q931.Alerting, q931.Connect, q931.ReleaseComplete:
		b, err := q931.Marshal(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "Q.931", true
	case isup.IAM, isup.ACM, isup.ANM, isup.REL, isup.RLC:
		b, err := isup.Marshal(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "ISUP", true
	case gtp.CreatePDPRequest, gtp.CreatePDPResponse,
		gtp.DeletePDPRequest, gtp.DeletePDPResponse,
		gtp.PDUNotifyRequest, gtp.PDUNotifyResponse,
		gtp.EchoRequest, gtp.EchoResponse, gtp.TPDU:
		b, err := gtp.Marshal(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "GTP", true
	case gb.ULUnitdata, gb.DLUnitdata:
		b, err := gb.Marshal(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "Gb", true
	case ipnet.Packet:
		return len(m.Marshal()), "IP", true
	case h323.RRQ, h323.RCF, h323.RRJ, h323.URQ, h323.UCF,
		h323.ARQ, h323.ACF, h323.ARJ, h323.DRQ, h323.DCF,
		h323.LRQ, h323.LCF, h323.LRJ:
		b, err := h323.MarshalRAS(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "RAS", true
	case gprs.AttachRequest, gprs.AttachAccept, gprs.AttachReject,
		gprs.DetachRequest, gprs.DetachAccept,
		gprs.ActivatePDPRequest, gprs.ActivatePDPAccept, gprs.ActivatePDPReject,
		gprs.DeactivatePDPRequest, gprs.DeactivatePDPAccept,
		gprs.RequestPDPActivation, gprs.RAUpdateRequest, gprs.RAUpdateAccept:
		b, err := gprs.MarshalSM(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "GMM", true
	case gsm.ChannelRequest, gsm.ImmediateAssignment, gsm.LocationUpdate,
		gsm.LocationUpdateAccept, gsm.LocationUpdateReject,
		gsm.AuthRequest, gsm.AuthResponse,
		gsm.CipherModeCommand, gsm.CipherModeComplete,
		gsm.Setup, gsm.CallConfirmed, gsm.Alerting, gsm.Connect,
		gsm.Disconnect, gsm.Release, gsm.ReleaseComplete, gsm.IMSIDetach,
		gsm.Paging, gsm.PagingResponse, gsm.TCHFrame,
		gsm.MeasurementReport, gsm.HandoverRequired, gsm.HandoverCommand,
		gsm.HandoverAccess, gsm.HandoverComplete, gsm.LLCFrame:
		b, err := gsm.Marshal(msg)
		if err != nil {
			return 0, "", false
		}
		return len(b), "GSM", true
	default:
		return 0, "", false
	}
}

// WireBytesByIface sums the encoded size of every traced message, grouped
// by interface — the byte-level counterpart of
// trace.Recorder.MessagesByInterface used by the C5 experiment.
func WireBytesByIface(rec *trace.Recorder) map[string]int {
	out := make(map[string]int)
	for _, e := range rec.Entries() {
		if n, _, ok := WireSize(e.Msg); ok {
			out[e.Iface] += n
		}
	}
	return out
}
