package netsim

import (
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/isup"
	"vgprs/internal/msc"
	"vgprs/internal/sim"
	"vgprs/internal/vmsc"
)

// HandoffNet extends a VGPRSNet with a legacy GSM MSC and second radio
// subsystem — the coexistence configuration of paper Fig 9: the VMSC is the
// anchor; mid-call the MS moves to a cell served by the classic MSC over
// the standard MAP E inter-system handoff, and the voice path becomes
// H.323 <-> VMSC <-> ISUP trunk <-> MSC <-> MS.
type HandoffNet struct {
	*VGPRSNet
	// MSC is the legacy target switching center.
	MSC *msc.MSC
	// TargetBSC is the radio controller under the legacy MSC.
	TargetBSC *gsm.BSC
	// ETrunks is the VMSC<->MSC E-interface trunk group.
	ETrunks *isup.TrunkGroup
	// TargetCell is the neighbour cell the MS reports to trigger the
	// handoff.
	TargetCell gsmid.CGI

	// HomeCell is the anchor VMSC's own cell: a handed-over MS reporting
	// it triggers a subsequent handback (GSM 03.09).
	HomeCell gsmid.CGI
	// MSC3/ThirdCell/ETrunks3 form a second legacy system for the
	// subsequent-handover-to-a-third-MSC case.
	MSC3      *msc.MSC
	ThirdCell gsmid.CGI
	ETrunks3  *isup.TrunkGroup
}

// BuildHandoff wires the Fig 9 topology. The target-side VLR is shared with
// the VMSC (a common configuration: one VLR serving several MSC areas).
func BuildHandoff(opts VGPRSOptions) *HandoffNet {
	n := &HandoffNet{
		TargetCell: gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 2}, CI: 0x20},
		HomeCell:   gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1}, CI: 1},
		ThirdCell:  gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 4}, CI: 0x40},
	}

	n.ETrunks = isup.NewTrunkGroup("VMSC<->MSC (E)", isup.TrunkNational, 8)
	n.ETrunks3 = isup.NewTrunkGroup("VMSC<->MSC-3 (E)", isup.TrunkNational, 8)

	base := buildVGPRSWith(opts, func(vcfg *vmsc.Config) {
		vcfg.HandoverTargets = map[gsmid.CGI]vmsc.HandoverTarget{
			n.TargetCell: {MSC: "MSC-2", BTS: "BTS-2"},
			n.ThirdCell:  {MSC: "MSC-3", BTS: "BTS-3"},
		}
		vcfg.ETrunks = map[sim.NodeID]*isup.TrunkGroup{
			"MSC-2": n.ETrunks,
			"MSC-3": n.ETrunks3,
		}
		vcfg.HandbackCells = map[gsmid.CGI]sim.NodeID{n.HomeCell: "BTS-1"}
	})
	n.VGPRSNet = base
	env := base.Env
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	// Legacy radio subsystem and MSC.
	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-2", BSC: "BSC-2"})
	n.TargetBSC = gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-2", MSC: "MSC-2", BTSs: []sim.NodeID{"BTS-2"},
	})
	n.MSC = msc.New(msc.Config{
		ID: "MSC-2", VLR: "VLR-1",
		Trunks:               map[sim.NodeID]*isup.TrunkGroup{"VMSC-1": n.ETrunks},
		HandoverNumberPrefix: "88698",
	})
	bts3 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-3", BSC: "BSC-3"})
	bsc3 := gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-3", MSC: "MSC-3", BTSs: []sim.NodeID{"BTS-3"},
	})
	n.MSC3 = msc.New(msc.Config{
		ID: "MSC-3", VLR: "VLR-1",
		Trunks:               map[sim.NodeID]*isup.TrunkGroup{"VMSC-1": n.ETrunks3},
		HandoverNumberPrefix: "88696",
	})
	for _, node := range []sim.Node{bts2, n.TargetBSC, n.MSC, bts3, bsc3, n.MSC3} {
		env.AddNode(node)
	}
	env.Connect("BTS-2", "BSC-2", "Abis", lat.Abis)
	env.Connect("BSC-2", "MSC-2", "A", lat.A)
	env.Connect("MSC-2", "VLR-1", "B", lat.SS7)
	env.Connect("VMSC-1", "MSC-2", "E", lat.SS7)
	env.Connect("BTS-3", "BSC-3", "Abis", lat.Abis)
	env.Connect("BSC-3", "MSC-3", "A", lat.A)
	env.Connect("MSC-3", "VLR-1", "B", lat.SS7)
	env.Connect("VMSC-1", "MSC-3", "E", lat.SS7)
	// The two legacy MSCs are E-interface peers of the anchor only; a
	// subsequent handover between them still runs through the anchor.

	// Every MS can reach both target cells' BTSs (neighbouring coverage).
	for _, ms := range base.MSs {
		env.Connect(ms.ID(), "BTS-2", "Um", lat.Um)
		env.Connect(ms.ID(), "BTS-3", "Um", lat.Um)
	}
	return n
}

// buildVGPRSWith is BuildVGPRS plus a VMSC-config mutator, used by the
// extended scenarios to add handover targets and trunks without duplicating
// the topology code.
func buildVGPRSWith(opts VGPRSOptions, mutate func(*vmsc.Config)) *VGPRSNet {
	opts.VMSCMutate = mutate
	return BuildVGPRS(opts)
}

// VMSCHandoffNet is the VMSC-to-VMSC variant of the Fig 9 scenario — the
// paper's §7 note that "inter-system handoff between two VMSCs follows the
// same procedure".
type VMSCHandoffNet struct {
	*VGPRSNet
	// Target is the second VMSC, acting purely as the handover target.
	Target *vmsc.VMSC
	// TargetBSC is the radio controller under the target VMSC.
	TargetBSC *gsm.BSC
	// ETrunks is the anchor<->target E-interface trunk group.
	ETrunks *isup.TrunkGroup
	// TargetCell triggers the handoff when reported.
	TargetCell gsmid.CGI
}

// BuildHandoffVMSC wires a two-VMSC handoff topology. The target VMSC
// shares the VLR; it needs no GPRS or H.323 attachments for the target
// role, since the anchor keeps the VoIP leg.
func BuildHandoffVMSC(opts VGPRSOptions) *VMSCHandoffNet {
	n := &VMSCHandoffNet{TargetCell: gsmid.CGI{
		LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 3}, CI: 0x30,
	}}
	n.ETrunks = isup.NewTrunkGroup("VMSC<->VMSC (E)", isup.TrunkNational, 8)

	base := buildVGPRSWith(opts, func(vcfg *vmsc.Config) {
		vcfg.HandoverTargets = map[gsmid.CGI]vmsc.HandoverTarget{
			n.TargetCell: {MSC: "VMSC-2", BTS: "BTS-2"},
		}
		vcfg.ETrunks = map[sim.NodeID]*isup.TrunkGroup{"VMSC-2": n.ETrunks}
		vcfg.HandbackCells = map[gsmid.CGI]sim.NodeID{
			{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1}, CI: 1}: "BTS-1",
		}
	})
	n.VGPRSNet = base
	env := base.Env
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	bts2 := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-2", BSC: "BSC-2"})
	n.TargetBSC = gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-2", MSC: "VMSC-2", BTSs: []sim.NodeID{"BTS-2"},
	})
	n.Target = vmsc.New(vmsc.Config{
		ID: "VMSC-2", VLR: "VLR-1", SGSN: "SGSN-1",
		Cell:       n.TargetCell,
		Gatekeeper: gkAddr, Dir: base.Dir,
	})
	for _, node := range []sim.Node{bts2, n.TargetBSC, n.Target} {
		env.AddNode(node)
	}
	env.Connect("BTS-2", "BSC-2", "Abis", lat.Abis)
	env.Connect("BSC-2", "VMSC-2", "A", lat.A)
	env.Connect("VMSC-2", "VLR-1", "B", lat.SS7)
	env.Connect("VMSC-2", "SGSN-1", "Gb", lat.Gb)
	env.Connect("VMSC-1", "VMSC-2", "E", lat.SS7)
	for _, ms := range base.MSs {
		env.Connect(ms.ID(), "BTS-2", "Um", lat.Um)
	}
	return n
}

// RunHandoff drives the VMSC-to-VMSC handoff like HandoffNet.RunHandoff.
func (n *VMSCHandoffNet) RunHandoff(ms *gsm.MS, deadline time.Duration) bool {
	done := false
	prev := n.VMSC.Stats().Handovers
	ms.ReportNeighbor(n.Env, n.TargetCell)
	end := n.Env.Now() + deadline
	for n.Env.Now() < end {
		if n.VMSC.Stats().Handovers > prev {
			done = true
			break
		}
		if !n.Env.Step() {
			break
		}
	}
	return done
}

// RunHandoff drives the Fig 9 scenario on an established call: the MS
// reports the target cell and the simulation runs until the handover
// completes (or the deadline passes). It returns whether the handover
// finished.
func (n *HandoffNet) RunHandoff(ms *gsm.MS, deadline time.Duration) bool {
	done := false
	prev := n.VMSC.Stats().Handovers
	ms.ReportNeighbor(n.Env, n.TargetCell)
	end := n.Env.Now() + deadline
	for n.Env.Now() < end {
		if n.VMSC.Stats().Handovers > prev {
			done = true
			break
		}
		if !n.Env.Step() {
			break
		}
	}
	return done
}
