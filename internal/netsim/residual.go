package netsim

import (
	"fmt"
	"strings"
)

// Residual is a snapshot of every transient signalling record a network
// still holds: pending transactions, open MAP dialogues, RAS exchanges in
// flight. A drained network — every call hung up, every procedure answered
// — must report an empty Residual; the scenario soaks assert exactly that,
// so any state a procedure forgets to release shows up by name instead of
// as a slow memory climb.
type Residual struct {
	Items []ResidualItem
}

// ResidualItem names one non-zero transient-state counter.
type ResidualItem struct {
	Node  string
	Kind  string
	Count int
}

// add records a counter only when it is non-zero, keeping Items a pure
// violation list.
func (r *Residual) add(node, kind string, count int) {
	if count != 0 {
		r.Items = append(r.Items, ResidualItem{Node: node, Kind: kind, Count: count})
	}
}

// Total sums every leaked record.
func (r *Residual) Total() int {
	total := 0
	for _, it := range r.Items {
		total += it.Count
	}
	return total
}

// String renders the violation list, one counter per line.
func (r *Residual) String() string {
	if len(r.Items) == 0 {
		return "no residual state"
	}
	var b strings.Builder
	for i, it := range r.Items {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s: %d %s", it.Node, it.Count, it.Kind)
	}
	return b.String()
}

// Residual snapshots the transient state of every stateful element in the
// base topology. Durable state (registrations, attached subscribers, idle
// PDP contexts) is deliberately excluded — it is supposed to survive
// between procedures; only in-flight records count.
func (n *VGPRSNet) Residual() Residual {
	var r Residual
	r.add("VMSC-1", "pending transactions", n.VMSC.PendingTransactions())
	r.add("VMSC-1", "active calls", n.VMSC.ActiveCalls())
	r.add("VMSC-1", "handoff trunk calls", n.VMSC.HandoffCalls())
	r.add("VMSC-1", "in-flight media frames", n.VMSC.InflightFrames())
	r.add("VLR-1", "pending location updates", n.VLR.PendingUpdates())
	r.add("VLR-1", "open dialogues", n.VLR.OutstandingDialogues())
	r.add("VLR-1", "outstanding MSRNs", n.VLR.OutstandingMSRNs())
	r.add("HLR", "open dialogues", n.HLR.OutstandingDialogues())
	r.add("SGSN-1", "pending GTP transactions", n.SGSN.PendingTransactions())
	r.add("SGSN-1", "open dialogues", n.SGSN.OutstandingDialogues())
	r.add("GGSN-1", "pending creates", n.GGSN.PendingCreates())
	r.add("GGSN-1", "open dialogues", n.GGSN.OutstandingDialogues())
	r.add("GGSN-1", "queued activation packets", n.GGSN.QueuedPackets())
	r.add("BSC-1", "channels in use", n.BSC.ChannelsInUse())
	// Slab audits: allocated-handle count must equal live-context count in
	// every shard, and every index entry must resolve to a record that
	// agrees with its key. A non-zero imbalance is a storage-layer leak
	// even when all procedure-level counters are clean.
	r.add("VMSC-1", "slab imbalance", n.VMSC.SlabImbalance())
	r.add("VLR-1", "slab imbalance", n.VLR.SlabImbalance())
	r.add("HLR", "slab imbalance", n.HLR.SlabImbalance())
	r.add("SGSN-1", "slab imbalance", n.SGSN.SlabImbalance())
	r.add("GGSN-1", "slab imbalance", n.GGSN.SlabImbalance())
	r.add("GK", "slab imbalance", n.GK.SlabImbalance())
	for i, term := range n.Terminals {
		id := fmt.Sprintf("TERM-%d", i+1)
		r.add(id, "pending RAS", term.PendingRAS())
		r.add(id, "active calls", term.ActiveCalls())
	}
	return r
}

// Residual extends the base snapshot with the second service area.
func (n *TwoVMSCNet) Residual() Residual {
	r := n.VGPRSNet.Residual()
	r.add("VMSC-2", "pending transactions", n.VMSC2.PendingTransactions())
	r.add("VMSC-2", "active calls", n.VMSC2.ActiveCalls())
	r.add("VMSC-2", "handoff trunk calls", n.VMSC2.HandoffCalls())
	r.add("VMSC-2", "in-flight media frames", n.VMSC2.InflightFrames())
	r.add("VLR-2", "pending location updates", n.VLR2.PendingUpdates())
	r.add("VLR-2", "open dialogues", n.VLR2.OutstandingDialogues())
	r.add("VLR-2", "outstanding MSRNs", n.VLR2.OutstandingMSRNs())
	r.add("SGSN-2", "pending GTP transactions", n.SGSN2.PendingTransactions())
	r.add("SGSN-2", "open dialogues", n.SGSN2.OutstandingDialogues())
	r.add("BSC-2", "channels in use", n.BSC2.ChannelsInUse())
	r.add("VMSC-2", "slab imbalance", n.VMSC2.SlabImbalance())
	r.add("VLR-2", "slab imbalance", n.VLR2.SlabImbalance())
	r.add("SGSN-2", "slab imbalance", n.SGSN2.SlabImbalance())
	return r
}
