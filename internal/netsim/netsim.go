// Package netsim assembles complete simulated networks for the experiments:
// the vGPRS architecture of paper Fig 2(b) (BuildVGPRS), the international
// roaming configurations of Figs 7-8 (BuildRoamingGSM, BuildRoamingVGPRS),
// the inter-system handoff configurations of Fig 9 (BuildHandoff to a
// legacy MSC, BuildHandoffVMSC between two VMSCs), and — in the tr23923
// package, on the same substrate — the TR 23.923 baseline. Builders return
// handles to every element so tests and benches can drive calls and inspect
// state.
package netsim

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/gsmid"
	"vgprs/internal/h323"
	"vgprs/internal/hlr"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
	"vgprs/internal/vlr"
	"vgprs/internal/vmsc"
)

// Latencies is the one-way delay profile for every interface class.
type Latencies struct {
	Um   time.Duration // air interface
	Abis time.Duration
	A    time.Duration
	SS7  time.Duration // MAP interfaces (B, C, D, E, Gr, Gc)
	Gb   time.Duration
	Gn   time.Duration
	Gi   time.Duration
	LAN  time.Duration // H.323 network links
	Intl time.Duration // international trunks
	Natl time.Duration // national trunks
}

// DefaultLatencies reflects period-plausible one-way delays.
func DefaultLatencies() Latencies {
	return Latencies{
		Um:   10 * time.Millisecond,
		Abis: 2 * time.Millisecond,
		A:    time.Millisecond,
		SS7:  5 * time.Millisecond,
		Gb:   2 * time.Millisecond,
		Gn:   time.Millisecond,
		Gi:   time.Millisecond,
		LAN:  time.Millisecond,
		Intl: 40 * time.Millisecond,
		Natl: 3 * time.Millisecond,
	}
}

// VGPRSOptions parameterises BuildVGPRS.
type VGPRSOptions struct {
	Seed int64
	// NumMS is the number of mobile stations (default 1).
	NumMS int
	// NumTerminals is the number of H.323 terminals (default 1).
	NumTerminals int
	// Latencies is the delay profile (default DefaultLatencies).
	Latencies *Latencies
	// DeactivateIdlePDP enables the §6 ablation at the VMSC.
	DeactivateIdlePDP bool
	// AuthDisabled skips GSM authentication and ciphering at the VLR —
	// the DESIGN.md §5 ablation isolating their registration-latency
	// contribution.
	AuthDisabled bool
	// Talk makes MSs and terminals generate speech while in calls.
	Talk bool
	// DTX gates MS uplink speech with the Brady talk-spurt model
	// (silence suppression).
	DTX bool
	// AutoAnswerDelay is how long called parties ring before answering.
	// Zero means 200 ms.
	AutoAnswerDelay time.Duration
	// TCHCapacity bounds the BSC's dedicated channels (0 = default 64).
	TCHCapacity int
	// SGSNMaxContexts bounds PDP contexts at the SGSN (0 = unlimited);
	// failure-injection tests use it to exhaust the voice context.
	SGSNMaxContexts int
	// NoTrace disables trace recording (for large load benches).
	NoTrace bool
	// Shards partitions the event loop across goroutines (0 or 1 =
	// sequential). The default partition keeps the SS7/GPRS core and the
	// H.323 plane on shard 0 and moves the radio access network (BTS, BSC,
	// MSs) to shard 1; the A interface is then the only cross-shard link
	// and its latency the synchronization lookahead. Shard counts above 2
	// leave the extra shards empty on this single-region topology — results
	// are identical at any count, which is exactly what the determinism
	// tests lock in. Multi-region scaling lives in BuildMultiRegion.
	Shards int
	// GKMutate, when set, adjusts the gatekeeper configuration before
	// construction (e.g. to enforce a registration TTL).
	GKMutate func(*h323.GatekeeperConfig)
	// VMSCMutate, when set, adjusts the VMSC configuration before
	// construction (scenario extensions add handover targets and trunks).
	VMSCMutate func(*vmsc.Config)
	// TerminalMutate, when set, adjusts each terminal's configuration
	// before construction (the chaos harness arms RAS/Q.931
	// retransmission here).
	TerminalMutate func(*h323.TerminalConfig)
	// Sig, when set, overrides the signalling retransmission profile of
	// every network element at once. The chaos harness uses it to swap
	// the conservative defaults for a loss-tolerant profile.
	Sig *SigProfile
}

// SigProfile is a network-wide signalling retransmission profile: RTO and
// Retries drive the single-hop MAP/GTP/GMM planes, H323Retries the RAS and
// Q.931 planes whose PDUs tunnel across many links end-to-end.
type SigProfile struct {
	RTO         time.Duration
	Retries     int
	H323Retries int
}

// VGPRSNet is a fully wired vGPRS network (Fig 2(b)).
type VGPRSNet struct {
	Env *sim.Env
	Rec *trace.Recorder
	Dir *h323.Directory

	HLR  *hlr.HLR
	VLR  *vlr.VLR
	VMSC *vmsc.VMSC
	SGSN SGSNHandle
	GGSN GGSNHandle
	GK   *h323.Gatekeeper

	Router    *ipnet.Router
	BSC       *gsm.BSC
	MSs       []*gsm.MS
	Terminals []*h323.Terminal

	// Subscribers lists the provisioned (IMSI, MSISDN) pairs, index-
	// aligned with MSs.
	Subscribers []Subscriber
}

// Subscriber pairs the identities of one provisioned MS.
type Subscriber struct {
	IMSI   gsmid.IMSI
	MSISDN gsmid.MSISDN
	Ki     [16]byte
}

// SubscriberN builds the n-th test subscriber's identities.
func SubscriberN(n int) Subscriber {
	return Subscriber{
		IMSI:   gsmid.IMSI(fmt.Sprintf("46692%010d", n+1)),
		MSISDN: gsmid.MSISDN(fmt.Sprintf("8869%08d", n+1)),
		Ki:     [16]byte{byte(n + 1), 0x5A},
	}
}

// TerminalAlias is the n-th H.323 terminal's dialable number (domestic, so
// default profiles may call it).
func TerminalAlias(n int) gsmid.MSISDN {
	return gsmid.MSISDN(fmt.Sprintf("8862%08d", n+1))
}

// gkAddr is the gatekeeper's IP on the H.323 LAN.
var gkAddr = ipnet.MustAddr("192.168.1.1")

// terminalAddr is the n-th terminal's IP.
func terminalAddr(n int) string { return fmt.Sprintf("192.168.1.%d", 10+n) }

// BuildVGPRS wires the complete vGPRS network of Fig 2(b):
//
//	MS ~Um~ BTS ~Abis~ BSC ~A~ VMSC ~Gb~ SGSN ~Gn~ GGSN ~Gi~ [GK, terminals]
//	         VMSC ~B~ VLR ~D~ HLR;  SGSN ~Gr~ HLR;  GGSN ~Gc~ HLR
func BuildVGPRS(opts VGPRSOptions) *VGPRSNet {
	if opts.NumMS == 0 {
		opts.NumMS = 1
	}
	if opts.NumTerminals == 0 {
		opts.NumTerminals = 1
	}
	if opts.AutoAnswerDelay == 0 {
		opts.AutoAnswerDelay = 200 * time.Millisecond
	}
	lat := DefaultLatencies()
	if opts.Latencies != nil {
		lat = *opts.Latencies
	}

	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	env := sim.NewShardedEnv(opts.Seed, shards)
	var rec *trace.Recorder
	if !opts.NoTrace {
		rec = trace.NewRecorder()
		env.SetTracer(rec)
	}
	dir := h323.NewDirectory()

	n := &VGPRSNet{Env: env, Rec: rec, Dir: dir}

	var sig SigProfile
	if opts.Sig != nil {
		sig = *opts.Sig
	}

	// GSM core databases.
	n.HLR = hlr.New(hlr.Config{ID: "HLR", SigRTO: sig.RTO, SigRetries: sig.Retries})
	n.VLR = vlr.New(vlr.Config{
		ID: "VLR-1", HLR: "HLR", HomeCountryCode: "886", MSRNPrefix: "88690000",
		AuthDisabled: opts.AuthDisabled,
		SigRTO:       sig.RTO, SigRetries: sig.Retries,
	})

	// GPRS core.
	sgsn, ggsn := buildGPRSCore(gprsCoreConfig{
		SGSNID: "SGSN-1", GGSNID: "GGSN-1", HLR: "HLR", Gi: "GI",
		PoolPrefix:  "10.1.1.0",
		NetworkInit: opts.DeactivateIdlePDP,
		MaxContexts: opts.SGSNMaxContexts,
		SigRTO:      sig.RTO, SigRetries: sig.Retries,
	})
	n.SGSN = SGSNHandle{sgsn}
	n.GGSN = GGSNHandle{ggsn}

	// H.323 network.
	n.Router = ipnet.NewRouter("GI")
	gkCfg := h323.GatekeeperConfig{ID: "GK", Addr: gkAddr, Router: "GI", Dir: dir}
	if opts.GKMutate != nil {
		opts.GKMutate(&gkCfg)
	}
	n.GK = h323.NewGatekeeper(gkCfg)
	n.Router.AddHost(gkAddr, "GK")
	n.Router.AddPrefix(mustPrefix("10.1.1.0/24"), "GGSN-1")
	dir.Bind(gkAddr, "GK")

	// The VMSC — the paper's new element, replacing the MSC.
	staticAddrs := make(map[gsmid.IMSI]string)
	vcfg := vmsc.Config{
		ID: "VMSC-1", VLR: "VLR-1", SGSN: "SGSN-1",
		Cell:       gsmid.CGI{LAI: gsmid.LAI{MCC: "466", MNC: "92", LAC: 1}, CI: 1},
		Gatekeeper: gkAddr, Dir: dir,
		DeactivateIdlePDP: opts.DeactivateIdlePDP,
		StaticAddrs:       staticAddrs,
		SigRTO:            sig.RTO,
		SigRetries:        sig.Retries,
		H323Retries:       sig.H323Retries,
	}
	if opts.VMSCMutate != nil {
		opts.VMSCMutate(&vcfg)
	}
	n.VMSC = vmsc.New(vcfg)

	// Radio access.
	bts := gsm.NewBTS(gsm.BTSConfig{ID: "BTS-1", BSC: "BSC-1"})
	n.BSC = gsm.NewBSC(gsm.BSCConfig{
		ID: "BSC-1", MSC: "VMSC-1", BTSs: []sim.NodeID{"BTS-1"},
		TCHCapacity: opts.TCHCapacity,
	})

	for _, node := range []sim.Node{n.HLR, n.VLR, n.VMSC, sgsn, ggsn, n.Router, n.GK, bts, n.BSC} {
		env.AddNode(node)
	}

	env.Connect("BTS-1", "BSC-1", "Abis", lat.Abis)
	env.Connect("BSC-1", "VMSC-1", "A", lat.A)
	env.Connect("VMSC-1", "VLR-1", "B", lat.SS7)
	env.Connect("VLR-1", "HLR", "D", lat.SS7)
	env.Connect("VMSC-1", "SGSN-1", "Gb", lat.Gb)
	env.Connect("SGSN-1", "GGSN-1", "Gn", lat.Gn)
	env.Connect("SGSN-1", "HLR", "Gr", lat.SS7)
	env.Connect("GGSN-1", "HLR", "Gc", lat.SS7)
	env.Connect("GGSN-1", "GI", "Gi", lat.Gi)
	env.Connect("GI", "GK", "IP", lat.LAN)

	// Subscribers and their MSs.
	for i := 0; i < opts.NumMS; i++ {
		sub := SubscriberN(i)
		n.Subscribers = append(n.Subscribers, sub)
		mustProvision(n.HLR, hlr.Subscriber{
			IMSI: sub.IMSI, MSISDN: sub.MSISDN, Ki: sub.Ki,
			Profile: sigmap.SubscriberProfile{
				MSISDN: sub.MSISDN, InternationalAllowed: true, VoIPQoS: 1,
			},
		})
		if opts.DeactivateIdlePDP {
			// The ablation needs static addresses for network-initiated
			// activation (GSM 03.60 requirement the paper cites).
			addr := ipnet.MustAddr(fmt.Sprintf("10.1.2.%d", i+1))
			staticAddrs[sub.IMSI] = addr.String()
			ggsn.ProvisionStatic(addr, sub.IMSI)
			n.Router.AddPrefix(mustPrefix(addr.String()+"/32"), "GGSN-1")
		}
		msID := sim.NodeID(fmt.Sprintf("MS-%d", i+1))
		ms := gsm.NewMS(gsm.MSConfig{
			ID: msID, IMSI: sub.IMSI, MSISDN: sub.MSISDN, Ki: sub.Ki,
			BTS:  "BTS-1",
			LAI:  gsmid.LAI{MCC: "466", MNC: "92", LAC: 1},
			Talk: opts.Talk, DTX: opts.DTX,
			AutoAnswer: true, AnswerDelay: opts.AutoAnswerDelay,
		})
		n.MSs = append(n.MSs, ms)
		env.AddNode(ms)
		env.Connect(msID, "BTS-1", "Um", lat.Um)
	}

	// H.323 terminals.
	for i := 0; i < opts.NumTerminals; i++ {
		termID := sim.NodeID(fmt.Sprintf("TERM-%d", i+1))
		addr := ipnet.MustAddr(terminalAddr(i))
		tcfg := h323.TerminalConfig{
			ID: termID, Alias: TerminalAlias(i), Addr: addr,
			Router: "GI", Gatekeeper: gkAddr, Dir: dir,
			AutoAnswer: true, AnswerDelay: opts.AutoAnswerDelay,
			Talk:   opts.Talk,
			SigRTO: sig.RTO, SigRetries: sig.H323Retries,
		}
		if opts.TerminalMutate != nil {
			opts.TerminalMutate(&tcfg)
		}
		term := h323.NewTerminal(tcfg)
		n.Terminals = append(n.Terminals, term)
		n.Router.AddHost(addr, termID)
		dir.Bind(addr, termID)
		env.AddNode(term)
		env.Connect("GI", termID, "IP", lat.LAN)
	}

	// The VMSC learns MSISDNs from the VLR at registration, but knowing
	// them up front keeps the MS table complete for inspection.
	for _, sub := range n.Subscribers {
		n.VMSC.ProvisionMSISDN(sub.IMSI, sub.MSISDN)
	}

	// Default shard partition: radio access on shard 1, everything else
	// (SS7 core, GPRS core, H.323 plane) on shard 0. Assignment happens
	// last, while nothing is scheduled yet.
	if shards > 1 {
		env.AssignShard("BTS-1", 1)
		env.AssignShard("BSC-1", 1)
		for _, ms := range n.MSs {
			env.AssignShard(ms.ID(), 1)
		}
	}
	return n
}

// RegisterAll powers on every MS and every terminal and runs the simulation
// until registration quiesces. It returns an error naming any MS that did
// not reach the idle (registered) state.
func (n *VGPRSNet) RegisterAll() error {
	for _, term := range n.Terminals {
		term.Register(n.Env)
	}
	for _, ms := range n.MSs {
		ms.PowerOn(n.Env)
	}
	n.Env.RunUntil(n.Env.Now() + 30*time.Second)
	for i, ms := range n.MSs {
		if ms.State() != gsm.MSIdle {
			return fmt.Errorf("netsim: MS %d state %v after registration", i, ms.State())
		}
	}
	for i, term := range n.Terminals {
		if !term.Registered() {
			return fmt.Errorf("netsim: terminal %d not registered", i)
		}
	}
	return nil
}

func mustProvision(h *hlr.HLR, s hlr.Subscriber) {
	if err := h.Provision(s); err != nil {
		panic(err)
	}
}
