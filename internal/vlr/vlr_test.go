package vlr

import (
	"testing"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/hlr"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

const (
	testIMSI   = gsmid.IMSI("466920000000001")
	testMSISDN = gsmid.MSISDN("886912345678")
)

var testKi = [16]byte{0xA5, 1, 2, 3}

// stubMSC emulates the (V)MSC side of the B interface: it relays the VLR's
// authentication challenge to a perfect software SIM and accepts ciphering.
type stubMSC struct {
	id        sim.NodeID
	got       []sim.Message
	wrongSRES bool // answer challenges incorrectly
}

func (m *stubMSC) ID() sim.NodeID { return m.id }

func (m *stubMSC) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	m.got = append(m.got, msg)
	switch t := msg.(type) {
	case sigmap.Authenticate:
		sres := hlr.SRES(testKi, t.RAND)
		if m.wrongSRES {
			sres[0] ^= 0xFF
		}
		env.Send(m.id, from, sigmap.AuthenticateAck{Invoke: t.Invoke, Cause: sigmap.CauseNone, SRES: sres})
	case sigmap.SetCipherMode:
		env.Send(m.id, from, sigmap.SetCipherModeAck{Invoke: t.Invoke, Cause: sigmap.CauseNone})
	}
}

func (m *stubMSC) find(name string) (sim.Message, bool) {
	for _, g := range m.got {
		if g.Name() == name {
			return g, true
		}
	}
	return nil, false
}

type fixture struct {
	env  *sim.Env
	vlr  *VLR
	hlr  *hlr.HLR
	msc  *stubMSC
	gmsc *stubMSC
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	env := sim.NewEnv(1)
	if cfg.ID == "" {
		cfg.ID = "VLR-1"
	}
	if cfg.HLR == "" {
		cfg.HLR = "HLR"
	}
	if cfg.HomeCountryCode == "" {
		cfg.HomeCountryCode = "886"
	}
	v := New(cfg)
	h := hlr.New(hlr.Config{ID: "HLR"})
	msc := &stubMSC{id: "VMSC-1"}
	gmsc := &stubMSC{id: "GMSC"}
	env.AddNode(v)
	env.AddNode(h)
	env.AddNode(msc)
	env.AddNode(gmsc)
	env.Connect("VMSC-1", "VLR-1", "B", time.Millisecond)
	env.Connect("VLR-1", "HLR", "D", time.Millisecond)
	env.Connect("GMSC", "HLR", "C", time.Millisecond)
	env.Connect("GMSC", "VLR-1", "B", time.Millisecond)

	if err := h.Provision(hlr.Subscriber{
		IMSI:   testIMSI,
		MSISDN: testMSISDN,
		Ki:     testKi,
		Profile: sigmap.SubscriberProfile{
			MSISDN:               testMSISDN,
			InternationalAllowed: false,
			VoIPQoS:              2,
		},
	}); err != nil {
		t.Fatal(err)
	}
	return &fixture{env: env, vlr: v, hlr: h, msc: msc, gmsc: gmsc}
}

func (f *fixture) register(t *testing.T) sigmap.UpdateLocationAreaAck {
	t.Helper()
	f.env.Send("VMSC-1", "VLR-1", sigmap.UpdateLocationArea{
		Invoke:   1,
		Identity: gsmid.ByIMSI(testIMSI),
		LAI:      gsmid.LAI{MCC: "466", MNC: "92", LAC: 1},
		MSC:      "VMSC-1",
	})
	f.env.Run()
	raw, ok := f.msc.find("MAP_UPDATE_LOCATION_AREA_ack")
	if !ok {
		t.Fatal("no UpdateLocationAreaAck")
	}
	return raw.(sigmap.UpdateLocationAreaAck)
}

func TestLocationUpdateFullFlow(t *testing.T) {
	f := newFixture(t, Config{})
	ack := f.register(t)
	if ack.Cause != sigmap.CauseNone {
		t.Fatalf("cause = %v", ack.Cause)
	}
	if ack.TMSI == 0 || ack.IMSI != testIMSI {
		t.Fatalf("ack = %+v", ack)
	}
	// The MSC saw authentication and ciphering.
	if _, ok := f.msc.find("MAP_AUTHENTICATE"); !ok {
		t.Error("no authentication challenge reached the MSC")
	}
	if _, ok := f.msc.find("MAP_SET_CIPHER_MODE"); !ok {
		t.Error("no ciphering command reached the MSC")
	}
	// VLR context installed with profile and ciphering.
	ctx, ok := f.vlr.Lookup(testIMSI)
	if !ok {
		t.Fatal("no MM context")
	}
	if ctx.Profile.MSISDN != testMSISDN || !ctx.Ciphered || ctx.MSC != "VMSC-1" {
		t.Fatalf("ctx = %+v", ctx)
	}
	// HLR points at this VLR.
	rec, _ := f.hlr.Lookup(testIMSI)
	if rec.VLR != "VLR-1" {
		t.Fatalf("HLR record VLR = %q", rec.VLR)
	}
	if f.vlr.Registered() != 1 {
		t.Fatalf("Registered = %d", f.vlr.Registered())
	}
}

func TestLocationUpdateByTMSIAfterFirstRegistration(t *testing.T) {
	f := newFixture(t, Config{})
	first := f.register(t)
	f.msc.got = nil
	f.env.Send("VMSC-1", "VLR-1", sigmap.UpdateLocationArea{
		Invoke:   2,
		Identity: gsmid.ByTMSI(first.TMSI),
		LAI:      gsmid.LAI{MCC: "466", MNC: "92", LAC: 2},
		MSC:      "VMSC-1",
	})
	f.env.Run()
	raw, ok := f.msc.find("MAP_UPDATE_LOCATION_AREA_ack")
	if !ok {
		t.Fatal("no ack for TMSI update")
	}
	ack := raw.(sigmap.UpdateLocationAreaAck)
	if ack.Cause != sigmap.CauseNone {
		t.Fatalf("cause = %v", ack.Cause)
	}
	if ack.TMSI == first.TMSI {
		t.Error("TMSI must be reallocated on each location update")
	}
	ctx, _ := f.vlr.Lookup(testIMSI)
	if ctx.LAI.LAC != 2 {
		t.Fatalf("LAI not refreshed: %+v", ctx.LAI)
	}
}

func TestLocationUpdateUnknownTMSIRejected(t *testing.T) {
	f := newFixture(t, Config{})
	f.env.Send("VMSC-1", "VLR-1", sigmap.UpdateLocationArea{
		Invoke:   1,
		Identity: gsmid.ByTMSI(0xBAD),
		MSC:      "VMSC-1",
	})
	f.env.Run()
	raw, _ := f.msc.find("MAP_UPDATE_LOCATION_AREA_ack")
	if raw.(sigmap.UpdateLocationAreaAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatal("expected unknown-subscriber")
	}
}

func TestLocationUpdateWrongSRESRejected(t *testing.T) {
	f := newFixture(t, Config{})
	f.msc.wrongSRES = true
	ack := f.register(t)
	if ack.Cause != sigmap.CauseNotAllowed {
		t.Fatalf("cause = %v, want not-allowed on auth failure", ack.Cause)
	}
	if f.vlr.Registered() != 0 {
		t.Fatal("failed auth must not install an MM context")
	}
}

func TestLocationUpdateUnknownIMSI(t *testing.T) {
	f := newFixture(t, Config{})
	f.env.Send("VMSC-1", "VLR-1", sigmap.UpdateLocationArea{
		Invoke:   1,
		Identity: gsmid.ByIMSI("466929999999999"),
		MSC:      "VMSC-1",
	})
	f.env.Run()
	raw, _ := f.msc.find("MAP_UPDATE_LOCATION_AREA_ack")
	ack := raw.(sigmap.UpdateLocationAreaAck)
	if ack.Cause == sigmap.CauseNone {
		t.Fatal("unknown IMSI must be rejected")
	}
}

func TestAuthDisabledSkipsChallenge(t *testing.T) {
	f := newFixture(t, Config{AuthDisabled: true})
	ack := f.register(t)
	if ack.Cause != sigmap.CauseNone {
		t.Fatalf("cause = %v", ack.Cause)
	}
	if _, ok := f.msc.find("MAP_AUTHENTICATE"); ok {
		t.Fatal("AuthDisabled must skip the challenge")
	}
	ctx, _ := f.vlr.Lookup(testIMSI)
	if ctx.Ciphered {
		t.Fatal("AuthDisabled must not claim ciphering")
	}
}

func TestOutgoingCallAuthorization(t *testing.T) {
	f := newFixture(t, Config{})
	ack := f.register(t)
	f.msc.got = nil

	// Domestic call: allowed.
	f.env.Send("VMSC-1", "VLR-1", sigmap.SendInfoForOutgoingCall{
		Invoke: 10, Identity: gsmid.ByTMSI(ack.TMSI), Called: "886955555555",
	})
	f.env.Run()
	raw, _ := f.msc.find("MAP_SEND_INFO_FOR_OUTGOING_CALL_ack")
	got := raw.(sigmap.SendInfoForOutgoingCallAck)
	if got.Cause != sigmap.CauseNone || got.IMSI != testIMSI || got.MSISDN != testMSISDN {
		t.Fatalf("domestic call ack = %+v", got)
	}

	// International call without the service: rejected.
	f.msc.got = nil
	f.env.Send("VMSC-1", "VLR-1", sigmap.SendInfoForOutgoingCall{
		Invoke: 11, Identity: gsmid.ByTMSI(ack.TMSI), Called: "85291234567",
	})
	f.env.Run()
	raw, _ = f.msc.find("MAP_SEND_INFO_FOR_OUTGOING_CALL_ack")
	if raw.(sigmap.SendInfoForOutgoingCallAck).Cause != sigmap.CauseNotAllowed {
		t.Fatal("international call should be barred for this profile")
	}

	// Unknown identity: rejected.
	f.msc.got = nil
	f.env.Send("VMSC-1", "VLR-1", sigmap.SendInfoForOutgoingCall{
		Invoke: 12, Identity: gsmid.ByTMSI(0xFFFF), Called: "886955555555",
	})
	f.env.Run()
	raw, _ = f.msc.find("MAP_SEND_INFO_FOR_OUTGOING_CALL_ack")
	if raw.(sigmap.SendInfoForOutgoingCallAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatal("unknown TMSI should be rejected")
	}
}

func TestRoamingNumberLifecycle(t *testing.T) {
	f := newFixture(t, Config{})
	f.register(t)

	// HLR-side PRN (driven here directly by the GMSC stub for isolation).
	// Bounded runs: Run() to quiescence would fire the 30s MSRN expiry
	// timer, which is exactly what this test must observe NOT happening
	// during normal call delivery.
	f.env.Send("GMSC", "VLR-1", sigmap.ProvideRoamingNumber{Invoke: 20, IMSI: testIMSI, GMSC: "GMSC"})
	f.env.RunUntil(f.env.Now() + 10*time.Millisecond)
	raw, ok := f.gmsc.find("MAP_PROVIDE_ROAMING_NUMBER_ack")
	if !ok {
		t.Fatal("no PRN ack")
	}
	prn := raw.(sigmap.ProvideRoamingNumberAck)
	if prn.Cause != sigmap.CauseNone || prn.MSRN == "" {
		t.Fatalf("PRN ack = %+v", prn)
	}
	if f.vlr.OutstandingMSRNs() != 1 {
		t.Fatalf("OutstandingMSRNs = %d", f.vlr.OutstandingMSRNs())
	}

	// Incoming call resolves the MSRN exactly once.
	f.gmsc.got = nil
	f.env.Send("GMSC", "VLR-1", sigmap.SendInfoForIncomingCall{Invoke: 21, MSRN: prn.MSRN})
	f.env.RunUntil(f.env.Now() + 10*time.Millisecond)
	raw, _ = f.gmsc.find("MAP_SEND_INFO_FOR_INCOMING_CALL_ack")
	in := raw.(sigmap.SendInfoForIncomingCallAck)
	if in.Cause != sigmap.CauseNone || in.IMSI != testIMSI || in.MSISDN != testMSISDN {
		t.Fatalf("incoming ack = %+v", in)
	}

	f.gmsc.got = nil
	f.env.Send("GMSC", "VLR-1", sigmap.SendInfoForIncomingCall{Invoke: 22, MSRN: prn.MSRN})
	f.env.RunUntil(f.env.Now() + 10*time.Millisecond)
	raw, _ = f.gmsc.find("MAP_SEND_INFO_FOR_INCOMING_CALL_ack")
	if raw.(sigmap.SendInfoForIncomingCallAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatal("MSRN must be single-use")
	}
}

func TestRoamingNumberForDetachedSubscriber(t *testing.T) {
	f := newFixture(t, Config{})
	f.env.Send("GMSC", "VLR-1", sigmap.ProvideRoamingNumber{Invoke: 20, IMSI: testIMSI})
	f.env.Run()
	raw, _ := f.gmsc.find("MAP_PROVIDE_ROAMING_NUMBER_ack")
	if raw.(sigmap.ProvideRoamingNumberAck).Cause != sigmap.CauseAbsentSubscriber {
		t.Fatal("expected absent-subscriber without MM context")
	}
}

func TestRoamingNumberExpires(t *testing.T) {
	f := newFixture(t, Config{MSRNLifetime: 100 * time.Millisecond})
	f.register(t)
	f.env.Send("GMSC", "VLR-1", sigmap.ProvideRoamingNumber{Invoke: 20, IMSI: testIMSI})
	f.env.Run() // includes the expiry timer
	if f.vlr.OutstandingMSRNs() != 0 {
		t.Fatal("MSRN should have expired")
	}
}

func TestCancelLocationPurgesContext(t *testing.T) {
	f := newFixture(t, Config{})
	f.register(t)
	f.env.Send("GMSC", "VLR-1", sigmap.CancelLocation{Invoke: 30, IMSI: testIMSI})
	f.env.Run()
	if f.vlr.Registered() != 0 {
		t.Fatal("context not purged")
	}
	if _, ok := f.gmsc.find("MAP_CANCEL_LOCATION_ack"); !ok {
		t.Fatal("no cancel ack")
	}
}

func TestMSRNsAreDistinct(t *testing.T) {
	f := newFixture(t, Config{})
	f.register(t)
	seen := make(map[gsmid.MSISDN]bool)
	for i := 0; i < 5; i++ {
		f.gmsc.got = nil
		f.env.Send("GMSC", "VLR-1", sigmap.ProvideRoamingNumber{Invoke: ss7Invoke(40 + i), IMSI: testIMSI})
		f.env.RunUntil(f.env.Now() + 10*time.Millisecond)
		raw, ok := f.gmsc.find("MAP_PROVIDE_ROAMING_NUMBER_ack")
		if !ok {
			t.Fatal("no PRN ack")
		}
		msrn := raw.(sigmap.ProvideRoamingNumberAck).MSRN
		if seen[msrn] {
			t.Fatalf("duplicate MSRN %s", msrn)
		}
		seen[msrn] = true
	}
}

func TestVerifySRES(t *testing.T) {
	rand := [16]byte{1, 2, 3}
	sres := hlr.SRES(testKi, rand)
	if !VerifySRES(testKi, rand, sres) {
		t.Fatal("valid SRES rejected")
	}
	sres[0] ^= 1
	if VerifySRES(testKi, rand, sres) {
		t.Fatal("invalid SRES accepted")
	}
}

func ss7Invoke(i int) ss7.InvokeID { return ss7.InvokeID(i) }
