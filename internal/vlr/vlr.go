// Package vlr implements the GSM Visitor Location Register: the per-visited-
// area database that fronts the HLR for the serving (V)MSC. It drives the
// registration procedure of paper Fig 4 (authentication-vector fetch,
// challenge-response via the MSC, ciphering setup, HLR location update, TMSI
// allocation), authorizes outgoing calls (Fig 5 step 2.2), and allocates
// roaming numbers for incoming call delivery (Figs 6-7).
package vlr

import (
	"fmt"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/hlr"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// MMContext is the mobility-management state the VLR keeps per visiting MS.
type MMContext struct {
	IMSI     gsmid.IMSI
	TMSI     gsmid.TMSI
	LAI      gsmid.LAI
	MSC      string
	Profile  sigmap.SubscriberProfile
	Ciphered bool
	// Triplets is the cache of unused authentication vectors.
	Triplets []sigmap.AuthTriplet
}

// Config parameterises a VLR node.
type Config struct {
	// ID is the node identifier, e.g. "VLR-1".
	ID sim.NodeID
	// HLR is the home location register this VLR updates. (A multi-PLMN
	// deployment routes per-IMSI; this reproduction attaches one VLR to
	// one HLR, which matches all the paper's scenarios.)
	HLR sim.NodeID
	// HomeCountryCode is the E.164 country code of the network this VLR
	// serves; calls to other country codes require the international
	// service in the subscriber profile.
	HomeCountryCode string
	// MSRNPrefix prefixes allocated roaming numbers; must yield valid
	// MSISDNs when a 4-digit suffix is appended.
	MSRNPrefix string
	// MSRNLifetime bounds how long an allocated roaming number stays
	// valid awaiting the incoming IAM. Zero means 30 seconds.
	MSRNLifetime time.Duration
	// SigRTO is the initial retransmission timeout for MAP dialogues this
	// VLR originates; it doubles on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per dialogue before it fails.
	// Zero means 3.
	SigRetries int
	// AuthDisabled skips the challenge-response and ciphering phases
	// (used by ablation benches to isolate their latency contribution).
	AuthDisabled bool
}

// VLR is the visitor location register node.
type VLR struct {
	cfg Config
	dm  *ss7.DialogueManager

	mu       sync.Mutex
	byIMSI   map[gsmid.IMSI]*MMContext
	byTMSI   map[gsmid.TMSI]gsmid.IMSI
	msrn     map[gsmid.MSISDN]gsmid.IMSI
	nextTMSI uint32
	nextMSRN uint32

	// pendingULA dedupes in-flight location updates: the MSC retransmits
	// UpdateLocationArea with the same invoke ID, and a duplicate must not
	// spawn a parallel authentication chain (TMSI churn, doubled HLR
	// updates). Driven only from the sim goroutine.
	pendingULA map[ulaKey]struct{}
}

// ulaKey identifies one in-flight location-update transaction by its
// originating MSC and MAP invoke ID (retransmissions reuse both).
type ulaKey struct {
	msc    sim.NodeID
	invoke ss7.InvokeID
}

var _ sim.Node = (*VLR)(nil)

// New returns an empty VLR.
func New(cfg Config) *VLR {
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	if cfg.MSRNLifetime == 0 {
		cfg.MSRNLifetime = 30 * time.Second
	}
	if cfg.MSRNPrefix == "" {
		cfg.MSRNPrefix = "88690000"
	}
	return &VLR{
		cfg:        cfg,
		dm:         ss7.NewDialogueManager(),
		byIMSI:     make(map[gsmid.IMSI]*MMContext),
		byTMSI:     make(map[gsmid.TMSI]gsmid.IMSI),
		msrn:       make(map[gsmid.MSISDN]gsmid.IMSI),
		pendingULA: make(map[ulaKey]struct{}),
	}
}

// Retransmits returns the number of MAP request PDUs this VLR has re-sent.
func (v *VLR) Retransmits() uint64 { return v.dm.Retransmits() }

// PendingUpdates returns in-flight location-update transactions (not yet
// answered toward the requesting MSC). Zero at quiescence.
func (v *VLR) PendingUpdates() int { return len(v.pendingULA) }

// OutstandingDialogues returns un-answered MAP invokes this VLR has open.
func (v *VLR) OutstandingDialogues() int { return v.dm.Outstanding() }

// ID implements sim.Node.
func (v *VLR) ID() sim.NodeID { return v.cfg.ID }

// Lookup returns a copy of the MM context for the IMSI.
func (v *VLR) Lookup(imsi gsmid.IMSI) (MMContext, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	ctx, ok := v.byIMSI[imsi]
	if !ok {
		return MMContext{}, false
	}
	return *ctx, true
}

// Registered returns the number of MM contexts currently held.
func (v *VLR) Registered() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.byIMSI)
}

// OutstandingMSRNs returns the number of roaming numbers awaiting use.
func (v *VLR) OutstandingMSRNs() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.msrn)
}

// Receive implements sim.Node.
func (v *VLR) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.UpdateLocationArea:
		v.handleUpdateLocationArea(env, from, m)
	case sigmap.SendInfoForOutgoingCall:
		v.handleOutgoingCall(env, from, m)
	case sigmap.SendInfoForIncomingCall:
		v.handleIncomingCall(env, from, m)
	case sigmap.InsertSubscriberData:
		v.handleInsertSubscriberData(env, from, m)
	case sigmap.CancelLocation:
		v.handleCancelLocation(env, from, m)
	case sigmap.ProvideRoamingNumber:
		v.handleProvideRoamingNumber(env, from, m)
	case sigmap.SendAuthenticationInfoAck,
		sigmap.UpdateLocationAck,
		sigmap.AuthenticateAck,
		sigmap.SetCipherModeAck:
		v.resolveAck(m)
	}
}

// resolveAck routes a MAP response to its pending invoke. The original
// interface value rides through to Resolve so the type switch does not
// re-box the message.
func (v *VLR) resolveAck(msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.SendAuthenticationInfoAck:
		v.dm.Resolve(m.Invoke, msg)
	case sigmap.UpdateLocationAck:
		v.dm.Resolve(m.Invoke, msg)
	case sigmap.AuthenticateAck:
		v.dm.Resolve(m.Invoke, msg)
	case sigmap.SetCipherModeAck:
		v.dm.Resolve(m.Invoke, msg)
	}
}

// resolveIdentity maps a mobile identity to an IMSI using the TMSI table
// when needed. ok is false for unknown TMSIs (the MS must retry with IMSI,
// per GSM 04.08 identity-request handling, which this reproduction elides).
func (v *VLR) resolveIdentity(id gsmid.MobileIdentity) (gsmid.IMSI, bool) {
	switch id.Kind {
	case gsmid.IdentityIMSI:
		return id.IMSI, true
	case gsmid.IdentityTMSI:
		v.mu.Lock()
		defer v.mu.Unlock()
		imsi, ok := v.byTMSI[id.TMSI]
		return imsi, ok
	default:
		return "", false
	}
}

// ulaTxn is the state of one location-update transaction. One record rides
// through every MAP invoke in the chain (via DialogueManager.InvokeArg), so
// the whole procedure costs a single allocation instead of a closure per
// step.
type ulaTxn struct {
	v         *VLR
	env       *sim.Env
	msc       sim.NodeID
	m         sigmap.UpdateLocationArea
	imsi      gsmid.IMSI
	challenge sigmap.AuthTriplet
	ciphered  bool
}

func (t *ulaTxn) finish() {
	delete(t.v.pendingULA, ulaKey{msc: t.msc, invoke: t.m.Invoke})
}

func (t *ulaTxn) reject(cause sigmap.Cause) {
	t.finish()
	t.env.Send(t.v.cfg.ID, t.msc, sigmap.UpdateLocationAreaAck{Invoke: t.m.Invoke, Cause: cause})
}

// handleUpdateLocationArea drives paper steps 1.1-1.2 on the network side:
//
//	fetch auth vectors -> authenticate MS (via MSC) -> start ciphering ->
//	MAP_UPDATE_LOCATION to HLR (profile arrives via InsertSubscriberData)
//	-> allocate TMSI -> MAP_UPDATE_LOCATION_AREA_ack to the MSC.
func (v *VLR) handleUpdateLocationArea(env *sim.Env, msc sim.NodeID, m sigmap.UpdateLocationArea) {
	// The MSC retransmits a lost UpdateLocationArea with the same invoke
	// ID; a duplicate of an in-flight transaction is dropped here — the
	// original chain will answer it.
	key := ulaKey{msc: msc, invoke: m.Invoke}
	if _, busy := v.pendingULA[key]; busy {
		return
	}
	t := &ulaTxn{v: v, env: env, msc: msc, m: m}
	imsi, ok := v.resolveIdentity(m.Identity)
	if !ok {
		t.env.Send(v.cfg.ID, msc, sigmap.UpdateLocationAreaAck{Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber})
		return
	}
	t.imsi = imsi
	v.pendingULA[key] = struct{}{}

	if v.cfg.AuthDisabled {
		t.updateHLRAndConfirm()
		return
	}

	saiInvoke := v.dm.InvokeRetryArg(ulaAuthInfoDone, t)
	v.dm.Transmit(env, saiInvoke, v.cfg.ID, v.cfg.HLR, sigmap.SendAuthenticationInfo{
		Invoke: saiInvoke, IMSI: imsi, Count: 3,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// ulaAuthInfoDone receives the HLR's auth vectors and starts the
// challenge-response through the MSC.
func ulaAuthInfoDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	ack, isAck := resp.(sigmap.SendAuthenticationInfoAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone || len(ack.Triplets) == 0 {
		t.reject(sigmap.CauseSystemFailure)
		return
	}
	v := t.v
	t.challenge = ack.Triplets[0]
	authInvoke := v.dm.InvokeRetryArg(ulaAuthenticateDone, t)
	v.dm.Transmit(t.env, authInvoke, v.cfg.ID, t.msc, sigmap.Authenticate{
		Invoke: authInvoke, Identity: t.m.Identity, RAND: t.challenge.RAND,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
	// Remaining triplets are cached for later transactions.
	v.mu.Lock()
	if ctx := v.byIMSI[t.imsi]; ctx != nil {
		ctx.Triplets = append(ctx.Triplets, ack.Triplets[1:]...)
	}
	v.mu.Unlock()
}

// ulaAuthenticateDone verifies SRES and starts ciphering.
func ulaAuthenticateDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	ack, isAck := resp.(sigmap.AuthenticateAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone || ack.SRES != t.challenge.SRES {
		t.reject(sigmap.CauseNotAllowed)
		return
	}
	v := t.v
	cipherInvoke := v.dm.InvokeRetryArg(ulaCipherDone, t)
	v.dm.Transmit(t.env, cipherInvoke, v.cfg.ID, t.msc, sigmap.SetCipherMode{
		Invoke: cipherInvoke, Identity: t.m.Identity, Kc: t.challenge.Kc,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// ulaCipherDone confirms ciphering and proceeds to the HLR update.
func ulaCipherDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	cAck, isC := resp.(sigmap.SetCipherModeAck)
	if !ok || !isC || cAck.Cause != sigmap.CauseNone {
		t.reject(sigmap.CauseSystemFailure)
		return
	}
	t.ciphered = true
	t.updateHLRAndConfirm()
}

// updateHLRAndConfirm performs the HLR update and completes the location
// update toward the MSC.
func (t *ulaTxn) updateHLRAndConfirm() {
	v := t.v
	ulInvoke := v.dm.InvokeRetryArg(ulaHLRDone, t)
	v.dm.Transmit(t.env, ulInvoke, v.cfg.ID, v.cfg.HLR, sigmap.UpdateLocation{
		Invoke: ulInvoke, IMSI: t.imsi, VLR: string(v.cfg.ID), MSC: t.m.MSC,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// ulaHLRDone installs the MM context and answers the MSC.
func ulaHLRDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	v := t.v
	ack, isAck := resp.(sigmap.UpdateLocationAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone {
		cause := sigmap.CauseSystemFailure
		if isAck {
			cause = ack.Cause
		}
		t.reject(cause)
		return
	}
	tmsi := v.createContext(t.imsi, t.m.LAI, t.m.MSC, t.ciphered)
	v.mu.Lock()
	msisdn := v.byIMSI[t.imsi].Profile.MSISDN
	v.mu.Unlock()
	t.finish()
	t.env.Send(v.cfg.ID, t.msc, sigmap.UpdateLocationAreaAck{
		Invoke: t.m.Invoke, Cause: sigmap.CauseNone, IMSI: t.imsi, TMSI: tmsi,
		MSISDN: msisdn,
	})
}

// createContext installs (or refreshes) the MM context and allocates a TMSI.
func (v *VLR) createContext(imsi gsmid.IMSI, lai gsmid.LAI, msc string, ciphered bool) gsmid.TMSI {
	v.mu.Lock()
	defer v.mu.Unlock()
	ctx, ok := v.byIMSI[imsi]
	if !ok {
		ctx = &MMContext{IMSI: imsi}
		v.byIMSI[imsi] = ctx
	} else if ctx.TMSI != 0 {
		delete(v.byTMSI, ctx.TMSI)
	}
	v.nextTMSI++
	ctx.TMSI = gsmid.TMSI(v.nextTMSI)
	ctx.LAI = lai
	ctx.MSC = msc
	ctx.Ciphered = ciphered
	v.byTMSI[ctx.TMSI] = imsi
	return ctx.TMSI
}

func (v *VLR) handleInsertSubscriberData(env *sim.Env, from sim.NodeID, m sigmap.InsertSubscriberData) {
	v.mu.Lock()
	ctx, ok := v.byIMSI[m.IMSI]
	if !ok {
		// Profile may arrive before the UpdateLocationAck installs the
		// context: create a provisional one.
		ctx = &MMContext{IMSI: m.IMSI}
		v.byIMSI[m.IMSI] = ctx
	}
	ctx.Profile = m.Profile
	v.mu.Unlock()
	env.Send(v.cfg.ID, from, sigmap.InsertSubscriberDataAck{Invoke: m.Invoke})
}

func (v *VLR) handleCancelLocation(env *sim.Env, from sim.NodeID, m sigmap.CancelLocation) {
	v.mu.Lock()
	var servingMSC string
	if ctx, ok := v.byIMSI[m.IMSI]; ok {
		servingMSC = ctx.MSC
		delete(v.byTMSI, ctx.TMSI)
		delete(v.byIMSI, m.IMSI)
	}
	v.mu.Unlock()
	// The subscriber left this service area: the (V)MSC holding state for
	// it (the VMSC's MS table, its gatekeeper registration, its GPRS
	// contexts) must clean up too (paper §5: the old VMSC releases the
	// H.323 registration when the MS moves away).
	if servingMSC != "" && env.HasLink(v.cfg.ID, sim.NodeID(servingMSC)) {
		env.Send(v.cfg.ID, sim.NodeID(servingMSC), sigmap.CancelLocation{IMSI: m.IMSI})
	}
	env.Send(v.cfg.ID, from, sigmap.CancelLocationAck{Invoke: m.Invoke})
}

// handleOutgoingCall authorizes an MS-originated call (paper step 2.2).
func (v *VLR) handleOutgoingCall(env *sim.Env, from sim.NodeID, m sigmap.SendInfoForOutgoingCall) {
	reply := func(cause sigmap.Cause, imsi gsmid.IMSI, msisdn gsmid.MSISDN) {
		env.Send(v.cfg.ID, from, sigmap.SendInfoForOutgoingCallAck{
			Invoke: m.Invoke, Cause: cause, IMSI: imsi, MSISDN: msisdn,
		})
	}
	imsi, ok := v.resolveIdentity(m.Identity)
	if !ok {
		reply(sigmap.CauseUnknownSubscriber, "", "")
		return
	}
	v.mu.Lock()
	ctx, ok := v.byIMSI[imsi]
	var profile sigmap.SubscriberProfile
	if ok {
		profile = ctx.Profile
	}
	v.mu.Unlock()
	switch {
	case !ok:
		reply(sigmap.CauseUnknownSubscriber, "", "")
	case profile.Barred:
		reply(sigmap.CauseNotAllowed, imsi, profile.MSISDN)
	case v.isInternational(m.Called) && !profile.InternationalAllowed:
		reply(sigmap.CauseNotAllowed, imsi, profile.MSISDN)
	default:
		reply(sigmap.CauseNone, imsi, profile.MSISDN)
	}
}

func (v *VLR) isInternational(called gsmid.MSISDN) bool {
	return v.cfg.HomeCountryCode != "" && called.CountryCode() != v.cfg.HomeCountryCode
}

// handleProvideRoamingNumber allocates an MSRN for an incoming call (HLR
// interrogation path, Figs 6-7).
func (v *VLR) handleProvideRoamingNumber(env *sim.Env, from sim.NodeID, m sigmap.ProvideRoamingNumber) {
	v.mu.Lock()
	_, ok := v.byIMSI[m.IMSI]
	var msrn gsmid.MSISDN
	if ok {
		v.nextMSRN++
		msrn = gsmid.MSISDN(fmt.Sprintf("%s%04d", v.cfg.MSRNPrefix, v.nextMSRN%10000))
		v.msrn[msrn] = m.IMSI
	}
	v.mu.Unlock()

	if !ok {
		env.Send(v.cfg.ID, from, sigmap.ProvideRoamingNumberAck{
			Invoke: m.Invoke, Cause: sigmap.CauseAbsentSubscriber,
		})
		return
	}
	// Reclaim the MSRN if the IAM never arrives.
	env.After(v.cfg.MSRNLifetime, func() {
		v.mu.Lock()
		delete(v.msrn, msrn)
		v.mu.Unlock()
	})
	env.Send(v.cfg.ID, from, sigmap.ProvideRoamingNumberAck{
		Invoke: m.Invoke, Cause: sigmap.CauseNone, MSRN: msrn,
	})
}

// handleIncomingCall resolves an MSRN back to the subscriber when the IAM
// reaches the serving (V)MSC.
func (v *VLR) handleIncomingCall(env *sim.Env, from sim.NodeID, m sigmap.SendInfoForIncomingCall) {
	v.mu.Lock()
	imsi, ok := v.msrn[m.MSRN]
	var msisdn gsmid.MSISDN
	if ok {
		delete(v.msrn, m.MSRN) // single use
		if ctx := v.byIMSI[imsi]; ctx != nil {
			msisdn = ctx.Profile.MSISDN
		}
	}
	v.mu.Unlock()

	if !ok {
		env.Send(v.cfg.ID, from, sigmap.SendInfoForIncomingCallAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}
	env.Send(v.cfg.ID, from, sigmap.SendInfoForIncomingCallAck{
		Invoke: m.Invoke, Cause: sigmap.CauseNone, IMSI: imsi, MSISDN: msisdn,
	})
}

// VerifySRES checks a signed response against the expected triplet — a
// helper for MSC implementations that cache triplets locally.
func VerifySRES(ki [16]byte, rand [16]byte, sres [4]byte) bool {
	return hlr.SRES(ki, rand) == sres
}
