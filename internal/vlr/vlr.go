// Package vlr implements the GSM Visitor Location Register: the per-visited-
// area database that fronts the HLR for the serving (V)MSC. It drives the
// registration procedure of paper Fig 4 (authentication-vector fetch,
// challenge-response via the MSC, ciphering setup, HLR location update, TMSI
// allocation), authorizes outgoing calls (Fig 5 step 2.2), and allocates
// roaming numbers for incoming call delivery (Figs 6-7).
package vlr

import (
	"fmt"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/hlr"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
	"vgprs/internal/ss7"
)

// MMContext is the mobility-management state the VLR keeps per visiting MS.
// It is the public copy-out view; internally the VLR stores subscribers as
// fixed-size slab records (mmRec) so a million attached-but-idle visitors
// cost a bounded number of bytes each.
type MMContext struct {
	IMSI     gsmid.IMSI
	TMSI     gsmid.TMSI
	LAI      gsmid.LAI
	MSC      string
	Profile  sigmap.SubscriberProfile
	Ciphered bool
	// Triplets is the cache of unused authentication vectors.
	Triplets []sigmap.AuthTriplet
}

// vlrShards is the slab fan-out; subscribers spread by identity hash.
const vlrShards = 8

// maxCachedTriplets bounds the per-subscriber auth-vector cache. The VLR
// fetches 3 vectors per SendAuthenticationInfo, consumes one, and caches
// the rest; without a bound, repeated re-registrations grow the cache
// forever (the old []AuthTriplet append had exactly that leak).
const maxCachedTriplets = 2

// mmRec is the slab-resident MM context: fixed size, no heap pointers.
// Identities are BCD-packed, the serving MSC and LAI are interned symbols.
type mmRec struct {
	imsi       gsmid.PackedDigits
	profMSISDN gsmid.PackedDigits
	tmsi       gsmid.TMSI
	lai        uint32 // symbol in VLR.lais
	msc        uint32 // symbol in VLR.names
	flags      uint8
	voipQoS    uint8
	ntrip      uint8
	trips      [maxCachedTriplets]sigmap.AuthTriplet
}

// mmRec flag bits.
const (
	mmCiphered = 1 << iota
	mmIntlAllowed
	mmBarred
)

// Config parameterises a VLR node.
type Config struct {
	// ID is the node identifier, e.g. "VLR-1".
	ID sim.NodeID
	// HLR is the home location register this VLR updates. (A multi-PLMN
	// deployment routes per-IMSI; this reproduction attaches one VLR to
	// one HLR, which matches all the paper's scenarios.)
	HLR sim.NodeID
	// HomeCountryCode is the E.164 country code of the network this VLR
	// serves; calls to other country codes require the international
	// service in the subscriber profile.
	HomeCountryCode string
	// MSRNPrefix prefixes allocated roaming numbers; must yield valid
	// MSISDNs when a 4-digit suffix is appended.
	MSRNPrefix string
	// MSRNLifetime bounds how long an allocated roaming number stays
	// valid awaiting the incoming IAM. Zero means 30 seconds.
	MSRNLifetime time.Duration
	// SigRTO is the initial retransmission timeout for MAP dialogues this
	// VLR originates; it doubles on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per dialogue before it fails.
	// Zero means 3.
	SigRetries int
	// AuthDisabled skips the challenge-response and ciphering phases
	// (used by ablation benches to isolate their latency contribution).
	AuthDisabled bool
}

// VLR is the visitor location register node.
type VLR struct {
	cfg Config
	dm  *ss7.DialogueManager

	mu       sync.Mutex
	recs     *slab.Sharded[mmRec]
	byIMSI   *slab.Index[gsmid.PackedDigits]
	byTMSI   *slab.Index[uint32]
	names    slab.Syms[string]    // MSC node names
	lais     slab.Syms[gsmid.LAI] // location areas
	msrn     map[gsmid.MSISDN]gsmid.IMSI
	nextTMSI uint32
	nextMSRN uint32

	// pendingULA dedupes in-flight location updates: the MSC retransmits
	// UpdateLocationArea with the same invoke ID, and a duplicate must not
	// spawn a parallel authentication chain (TMSI churn, doubled HLR
	// updates). Driven only from the sim goroutine.
	pendingULA map[ulaKey]struct{}
}

// ulaKey identifies one in-flight location-update transaction by its
// originating MSC and MAP invoke ID (retransmissions reuse both).
type ulaKey struct {
	msc    sim.NodeID
	invoke ss7.InvokeID
}

var _ sim.Node = (*VLR)(nil)

// New returns an empty VLR.
func New(cfg Config) *VLR {
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	if cfg.MSRNLifetime == 0 {
		cfg.MSRNLifetime = 30 * time.Second
	}
	if cfg.MSRNPrefix == "" {
		cfg.MSRNPrefix = "88690000"
	}
	return &VLR{
		cfg:        cfg,
		dm:         ss7.NewDialogueManager(),
		recs:       slab.NewSharded[mmRec](vlrShards),
		byIMSI:     slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
		byTMSI:     slab.NewIndex[uint32](slab.HashUint32),
		msrn:       make(map[gsmid.MSISDN]gsmid.IMSI),
		pendingULA: make(map[ulaKey]struct{}),
	}
}

// shardOf routes a subscriber to its slab shard by identity hash.
func shardOf(p gsmid.PackedDigits) int {
	return int(p.Hash() & (vlrShards - 1))
}

// lookupRec resolves an IMSI to its slab record. Callers hold v.mu.
func (v *VLR) lookupRec(imsi gsmid.IMSI) (slab.Handle, *mmRec) {
	h := v.byIMSI.Get(imsi.Pack())
	return h, v.recs.Get(h)
}

// getOrCreateRec returns the record for an IMSI, allocating a fresh slab
// slot when the subscriber is new. Callers hold v.mu.
func (v *VLR) getOrCreateRec(imsi gsmid.IMSI) *mmRec {
	packed := imsi.Pack()
	if r := v.recs.Get(v.byIMSI.Get(packed)); r != nil {
		return r
	}
	h, r := v.recs.Alloc(shardOf(packed))
	r.imsi = packed
	v.byIMSI.Put(packed, h)
	return r
}

// export copies a slab record out into the public MMContext view.
func (v *VLR) export(r *mmRec) MMContext {
	ctx := MMContext{
		IMSI: r.imsi.IMSI(),
		TMSI: r.tmsi,
		LAI:  v.lais.Val(r.lai),
		MSC:  v.names.Val(r.msc),
		Profile: sigmap.SubscriberProfile{
			MSISDN:               r.profMSISDN.MSISDN(),
			InternationalAllowed: r.flags&mmIntlAllowed != 0,
			VoIPQoS:              r.voipQoS,
			Barred:               r.flags&mmBarred != 0,
		},
		Ciphered: r.flags&mmCiphered != 0,
	}
	if r.ntrip > 0 {
		ctx.Triplets = append([]sigmap.AuthTriplet(nil), r.trips[:r.ntrip]...)
	}
	return ctx
}

// Retransmits returns the number of MAP request PDUs this VLR has re-sent.
func (v *VLR) Retransmits() uint64 { return v.dm.Retransmits() }

// PendingUpdates returns in-flight location-update transactions (not yet
// answered toward the requesting MSC). Zero at quiescence.
func (v *VLR) PendingUpdates() int { return len(v.pendingULA) }

// OutstandingDialogues returns un-answered MAP invokes this VLR has open.
func (v *VLR) OutstandingDialogues() int { return v.dm.Outstanding() }

// ID implements sim.Node.
func (v *VLR) ID() sim.NodeID { return v.cfg.ID }

// Lookup returns a copy of the MM context for the IMSI.
func (v *VLR) Lookup(imsi gsmid.IMSI) (MMContext, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, r := v.lookupRec(imsi)
	if r == nil {
		return MMContext{}, false
	}
	return v.export(r), true
}

// Registered returns the number of MM contexts currently held.
func (v *VLR) Registered() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.recs.Len()
}

// OutstandingMSRNs returns the number of roaming numbers awaiting use.
func (v *VLR) OutstandingMSRNs() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.msrn)
}

// SlabImbalance audits the slab storage: per-shard occupancy must balance
// (cap == live + free) and every index entry must resolve to a live record
// that agrees with the key. Non-zero means a context leaked out of — or
// was lost by — the slab; the soak/leak gates assert zero the same way
// they assert empty residuals.
func (v *VLR) SlabImbalance() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	imb := 0
	perShard := make([]int, vlrShards)
	v.byIMSI.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		r := v.recs.Get(h)
		if r == nil || r.imsi != k {
			imb++
			return true
		}
		perShard[h.Shard()]++
		return true
	})
	for _, a := range v.recs.Audit() {
		imb += a.Imbalance() + abs(perShard[a.Shard]-a.Live)
	}
	v.byTMSI.Range(func(k uint32, h slab.Handle) bool {
		if r := v.recs.Get(h); r == nil || uint32(r.tmsi) != k {
			imb++
		}
		return true
	})
	return imb
}

func abs(d int) int {
	if d < 0 {
		return -d
	}
	return d
}

// Receive implements sim.Node.
func (v *VLR) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.UpdateLocationArea:
		v.handleUpdateLocationArea(env, from, m)
	case sigmap.SendInfoForOutgoingCall:
		v.handleOutgoingCall(env, from, m)
	case sigmap.SendInfoForIncomingCall:
		v.handleIncomingCall(env, from, m)
	case sigmap.InsertSubscriberData:
		v.handleInsertSubscriberData(env, from, m)
	case sigmap.CancelLocation:
		v.handleCancelLocation(env, from, m)
	case sigmap.ProvideRoamingNumber:
		v.handleProvideRoamingNumber(env, from, m)
	case sigmap.SendAuthenticationInfoAck,
		sigmap.UpdateLocationAck,
		sigmap.AuthenticateAck,
		sigmap.SetCipherModeAck:
		v.resolveAck(m)
	}
}

// resolveAck routes a MAP response to its pending invoke. The original
// interface value rides through to Resolve so the type switch does not
// re-box the message.
func (v *VLR) resolveAck(msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.SendAuthenticationInfoAck:
		v.dm.Resolve(m.Invoke, msg)
	case sigmap.UpdateLocationAck:
		v.dm.Resolve(m.Invoke, msg)
	case sigmap.AuthenticateAck:
		v.dm.Resolve(m.Invoke, msg)
	case sigmap.SetCipherModeAck:
		v.dm.Resolve(m.Invoke, msg)
	}
}

// resolveIdentity maps a mobile identity to an IMSI using the TMSI table
// when needed. ok is false for unknown TMSIs (the MS must retry with IMSI,
// per GSM 04.08 identity-request handling, which this reproduction elides).
func (v *VLR) resolveIdentity(id gsmid.MobileIdentity) (gsmid.IMSI, bool) {
	switch id.Kind {
	case gsmid.IdentityIMSI:
		return id.IMSI, true
	case gsmid.IdentityTMSI:
		v.mu.Lock()
		defer v.mu.Unlock()
		r := v.recs.Get(v.byTMSI.Get(uint32(id.TMSI)))
		if r == nil {
			return "", false
		}
		return r.imsi.IMSI(), true
	default:
		return "", false
	}
}

// ulaTxn is the state of one location-update transaction. One record rides
// through every MAP invoke in the chain (via DialogueManager.InvokeArg), so
// the whole procedure costs a single allocation instead of a closure per
// step.
type ulaTxn struct {
	v         *VLR
	env       *sim.Env
	msc       sim.NodeID
	m         sigmap.UpdateLocationArea
	imsi      gsmid.IMSI
	challenge sigmap.AuthTriplet
	ciphered  bool
}

func (t *ulaTxn) finish() {
	delete(t.v.pendingULA, ulaKey{msc: t.msc, invoke: t.m.Invoke})
}

func (t *ulaTxn) reject(cause sigmap.Cause) {
	t.finish()
	t.env.Send(t.v.cfg.ID, t.msc, sigmap.UpdateLocationAreaAck{Invoke: t.m.Invoke, Cause: cause})
}

// handleUpdateLocationArea drives paper steps 1.1-1.2 on the network side:
//
//	fetch auth vectors -> authenticate MS (via MSC) -> start ciphering ->
//	MAP_UPDATE_LOCATION to HLR (profile arrives via InsertSubscriberData)
//	-> allocate TMSI -> MAP_UPDATE_LOCATION_AREA_ack to the MSC.
func (v *VLR) handleUpdateLocationArea(env *sim.Env, msc sim.NodeID, m sigmap.UpdateLocationArea) {
	// The MSC retransmits a lost UpdateLocationArea with the same invoke
	// ID; a duplicate of an in-flight transaction is dropped here — the
	// original chain will answer it.
	key := ulaKey{msc: msc, invoke: m.Invoke}
	if _, busy := v.pendingULA[key]; busy {
		return
	}
	t := &ulaTxn{v: v, env: env, msc: msc, m: m}
	imsi, ok := v.resolveIdentity(m.Identity)
	if !ok {
		t.env.Send(v.cfg.ID, msc, sigmap.UpdateLocationAreaAck{Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber})
		return
	}
	t.imsi = imsi
	v.pendingULA[key] = struct{}{}

	if v.cfg.AuthDisabled {
		t.updateHLRAndConfirm()
		return
	}

	saiInvoke := v.dm.InvokeRetryArg(ulaAuthInfoDone, t)
	v.dm.Transmit(env, saiInvoke, v.cfg.ID, v.cfg.HLR, sigmap.SendAuthenticationInfo{
		Invoke: saiInvoke, IMSI: imsi, Count: 3,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// ulaAuthInfoDone receives the HLR's auth vectors and starts the
// challenge-response through the MSC.
func ulaAuthInfoDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	ack, isAck := resp.(sigmap.SendAuthenticationInfoAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone || len(ack.Triplets) == 0 {
		t.reject(sigmap.CauseSystemFailure)
		return
	}
	v := t.v
	t.challenge = ack.Triplets[0]
	authInvoke := v.dm.InvokeRetryArg(ulaAuthenticateDone, t)
	v.dm.Transmit(t.env, authInvoke, v.cfg.ID, t.msc, sigmap.Authenticate{
		Invoke: authInvoke, Identity: t.m.Identity, RAND: t.challenge.RAND,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
	// Remaining triplets are cached for later transactions, capped at the
	// record's fixed-size cache (overflow vectors are simply refetched).
	v.mu.Lock()
	if _, r := v.lookupRec(t.imsi); r != nil {
		for _, trip := range ack.Triplets[1:] {
			if int(r.ntrip) >= maxCachedTriplets {
				break
			}
			r.trips[r.ntrip] = trip
			r.ntrip++
		}
	}
	v.mu.Unlock()
}

// ulaAuthenticateDone verifies SRES and starts ciphering.
func ulaAuthenticateDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	ack, isAck := resp.(sigmap.AuthenticateAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone || ack.SRES != t.challenge.SRES {
		t.reject(sigmap.CauseNotAllowed)
		return
	}
	v := t.v
	cipherInvoke := v.dm.InvokeRetryArg(ulaCipherDone, t)
	v.dm.Transmit(t.env, cipherInvoke, v.cfg.ID, t.msc, sigmap.SetCipherMode{
		Invoke: cipherInvoke, Identity: t.m.Identity, Kc: t.challenge.Kc,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// ulaCipherDone confirms ciphering and proceeds to the HLR update.
func ulaCipherDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	cAck, isC := resp.(sigmap.SetCipherModeAck)
	if !ok || !isC || cAck.Cause != sigmap.CauseNone {
		t.reject(sigmap.CauseSystemFailure)
		return
	}
	t.ciphered = true
	t.updateHLRAndConfirm()
}

// updateHLRAndConfirm performs the HLR update and completes the location
// update toward the MSC.
func (t *ulaTxn) updateHLRAndConfirm() {
	v := t.v
	ulInvoke := v.dm.InvokeRetryArg(ulaHLRDone, t)
	v.dm.Transmit(t.env, ulInvoke, v.cfg.ID, v.cfg.HLR, sigmap.UpdateLocation{
		Invoke: ulInvoke, IMSI: t.imsi, VLR: string(v.cfg.ID), MSC: t.m.MSC,
	}, v.cfg.SigRTO, v.cfg.SigRetries)
}

// ulaHLRDone installs the MM context and answers the MSC.
func ulaHLRDone(arg any, resp sim.Message, ok bool) {
	t := arg.(*ulaTxn)
	v := t.v
	ack, isAck := resp.(sigmap.UpdateLocationAck)
	if !ok || !isAck || ack.Cause != sigmap.CauseNone {
		cause := sigmap.CauseSystemFailure
		if isAck {
			cause = ack.Cause
		}
		t.reject(cause)
		return
	}
	tmsi, msisdn := v.createContext(t.imsi, t.m.LAI, t.m.MSC, t.ciphered)
	t.finish()
	t.env.Send(v.cfg.ID, t.msc, sigmap.UpdateLocationAreaAck{
		Invoke: t.m.Invoke, Cause: sigmap.CauseNone, IMSI: t.imsi, TMSI: tmsi,
		MSISDN: msisdn,
	})
}

// createContext installs (or refreshes) the MM context and allocates a
// TMSI, returning it with the profile MSISDN for the ack.
func (v *VLR) createContext(imsi gsmid.IMSI, lai gsmid.LAI, msc string, ciphered bool) (gsmid.TMSI, gsmid.MSISDN) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r := v.getOrCreateRec(imsi)
	if r.tmsi != 0 {
		v.byTMSI.Delete(uint32(r.tmsi))
	}
	v.nextTMSI++
	r.tmsi = gsmid.TMSI(v.nextTMSI)
	r.lai = v.lais.ID(lai)
	r.msc = v.names.ID(msc)
	if ciphered {
		r.flags |= mmCiphered
	} else {
		r.flags &^= mmCiphered
	}
	v.byTMSI.Put(uint32(r.tmsi), v.byIMSI.Get(r.imsi))
	return r.tmsi, r.profMSISDN.MSISDN()
}

func (v *VLR) handleInsertSubscriberData(env *sim.Env, from sim.NodeID, m sigmap.InsertSubscriberData) {
	v.mu.Lock()
	// Profile may arrive before the UpdateLocationAck installs the
	// context: getOrCreateRec creates a provisional one.
	r := v.getOrCreateRec(m.IMSI)
	r.profMSISDN = m.Profile.MSISDN.Pack()
	r.voipQoS = m.Profile.VoIPQoS
	r.flags &^= mmIntlAllowed | mmBarred
	if m.Profile.InternationalAllowed {
		r.flags |= mmIntlAllowed
	}
	if m.Profile.Barred {
		r.flags |= mmBarred
	}
	v.mu.Unlock()
	env.Send(v.cfg.ID, from, sigmap.InsertSubscriberDataAck{Invoke: m.Invoke})
}

func (v *VLR) handleCancelLocation(env *sim.Env, from sim.NodeID, m sigmap.CancelLocation) {
	v.mu.Lock()
	var servingMSC string
	if h, r := v.lookupRec(m.IMSI); r != nil {
		servingMSC = v.names.Val(r.msc)
		if r.tmsi != 0 {
			v.byTMSI.Delete(uint32(r.tmsi))
		}
		v.byIMSI.Delete(r.imsi)
		v.recs.Free(h)
	}
	v.mu.Unlock()
	// The subscriber left this service area: the (V)MSC holding state for
	// it (the VMSC's MS table, its gatekeeper registration, its GPRS
	// contexts) must clean up too (paper §5: the old VMSC releases the
	// H.323 registration when the MS moves away).
	if servingMSC != "" && env.HasLink(v.cfg.ID, sim.NodeID(servingMSC)) {
		env.Send(v.cfg.ID, sim.NodeID(servingMSC), sigmap.CancelLocation{IMSI: m.IMSI})
	}
	env.Send(v.cfg.ID, from, sigmap.CancelLocationAck{Invoke: m.Invoke})
}

// handleOutgoingCall authorizes an MS-originated call (paper step 2.2).
func (v *VLR) handleOutgoingCall(env *sim.Env, from sim.NodeID, m sigmap.SendInfoForOutgoingCall) {
	reply := func(cause sigmap.Cause, imsi gsmid.IMSI, msisdn gsmid.MSISDN) {
		env.Send(v.cfg.ID, from, sigmap.SendInfoForOutgoingCallAck{
			Invoke: m.Invoke, Cause: cause, IMSI: imsi, MSISDN: msisdn,
		})
	}
	imsi, ok := v.resolveIdentity(m.Identity)
	if !ok {
		reply(sigmap.CauseUnknownSubscriber, "", "")
		return
	}
	v.mu.Lock()
	_, r := v.lookupRec(imsi)
	var msisdn gsmid.MSISDN
	var barred, intl bool
	if r != nil {
		msisdn = r.profMSISDN.MSISDN()
		barred = r.flags&mmBarred != 0
		intl = r.flags&mmIntlAllowed != 0
	}
	v.mu.Unlock()
	switch {
	case r == nil:
		reply(sigmap.CauseUnknownSubscriber, "", "")
	case barred:
		reply(sigmap.CauseNotAllowed, imsi, msisdn)
	case v.isInternational(m.Called) && !intl:
		reply(sigmap.CauseNotAllowed, imsi, msisdn)
	default:
		reply(sigmap.CauseNone, imsi, msisdn)
	}
}

func (v *VLR) isInternational(called gsmid.MSISDN) bool {
	return v.cfg.HomeCountryCode != "" && called.CountryCode() != v.cfg.HomeCountryCode
}

// handleProvideRoamingNumber allocates an MSRN for an incoming call (HLR
// interrogation path, Figs 6-7).
func (v *VLR) handleProvideRoamingNumber(env *sim.Env, from sim.NodeID, m sigmap.ProvideRoamingNumber) {
	v.mu.Lock()
	_, r := v.lookupRec(m.IMSI)
	ok := r != nil
	var msrn gsmid.MSISDN
	if ok {
		v.nextMSRN++
		msrn = gsmid.MSISDN(fmt.Sprintf("%s%04d", v.cfg.MSRNPrefix, v.nextMSRN%10000))
		v.msrn[msrn] = m.IMSI
	}
	v.mu.Unlock()

	if !ok {
		env.Send(v.cfg.ID, from, sigmap.ProvideRoamingNumberAck{
			Invoke: m.Invoke, Cause: sigmap.CauseAbsentSubscriber,
		})
		return
	}
	// Reclaim the MSRN if the IAM never arrives.
	env.After(v.cfg.MSRNLifetime, func() {
		v.mu.Lock()
		delete(v.msrn, msrn)
		v.mu.Unlock()
	})
	env.Send(v.cfg.ID, from, sigmap.ProvideRoamingNumberAck{
		Invoke: m.Invoke, Cause: sigmap.CauseNone, MSRN: msrn,
	})
}

// handleIncomingCall resolves an MSRN back to the subscriber when the IAM
// reaches the serving (V)MSC.
func (v *VLR) handleIncomingCall(env *sim.Env, from sim.NodeID, m sigmap.SendInfoForIncomingCall) {
	v.mu.Lock()
	imsi, ok := v.msrn[m.MSRN]
	var msisdn gsmid.MSISDN
	if ok {
		delete(v.msrn, m.MSRN) // single use
		if _, r := v.lookupRec(imsi); r != nil {
			msisdn = r.profMSISDN.MSISDN()
		}
	}
	v.mu.Unlock()

	if !ok {
		env.Send(v.cfg.ID, from, sigmap.SendInfoForIncomingCallAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}
	env.Send(v.cfg.ID, from, sigmap.SendInfoForIncomingCallAck{
		Invoke: m.Invoke, Cause: sigmap.CauseNone, IMSI: imsi, MSISDN: msisdn,
	})
}

// VerifySRES checks a signed response against the expected triplet — a
// helper for MSC implementations that cache triplets locally.
func VerifySRES(ki [16]byte, rand [16]byte, sres [4]byte) bool {
	return hlr.SRES(ki, rand) == sres
}
