package h323

import (
	"reflect"
	"testing"

	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
)

// FuzzDecode hammers the RAS codec with arbitrary bytes. The decoder must
// never panic, and any message it accepts must survive a marshal/unmarshal
// round trip unchanged — the property the gatekeeper, the VMSC's RAS
// transactions, and the terminals all rely on, since every RAS PDU that
// reaches a GPRS-attached endpoint is re-parsed from tunnelled bytes.
func FuzzDecode(f *testing.F) {
	addr := ipnet.MustAddr("10.0.0.7")
	for _, msg := range []sim.Message{
		RRQ{Seq: 1, Alias: "886900000001", SignalAddr: addr, SignalPort: 1720},
		RRQ{Seq: 2, Alias: "886900000001", SignalAddr: addr, SignalPort: 1720,
			KeepAlive: true, TTLSeconds: 120},
		RCF{Seq: 1, EndpointID: "ep-1", TTLSeconds: 60},
		RRJ{Seq: 1, Reason: RejectDuplicateAlias},
		URQ{Seq: 3, Alias: "886900000001", SignalAddr: addr},
		UCF{Seq: 3},
		ARQ{Seq: 4, CallerAlias: "886900000001", CalledAlias: "886200000001",
			CallRef: 7, Answer: true},
		ACF{Seq: 4, SignalAddr: addr, SignalPort: 1720},
		ARJ{Seq: 4, Reason: RejectCalledPartyNotRegistered},
		DRQ{Seq: 5, Alias: "886900000001", CallRef: 7, Peer: "886200000001"},
		DCF{Seq: 5},
		LRQ{Seq: 6, Alias: "886200000001"},
		LCF{Seq: 6, SignalAddr: addr, SignalPort: 1720},
		LRJ{Seq: 6, Reason: RejectCallerNotRegistered},
	} {
		b, err := MarshalRAS(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{opRRQ})
	f.Add([]byte{opACF, 0, 0, 0, 1})
	f.Add([]byte{0xFF, 0x00, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := UnmarshalRAS(b)
		if err != nil {
			return
		}
		out, err := MarshalRAS(msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", msg, err)
		}
		back, err := UnmarshalRAS(out)
		if err != nil {
			t.Fatalf("re-marshalled %T does not decode: %v", msg, err)
		}
		if !reflect.DeepEqual(back, msg) {
			t.Fatalf("round trip changed message:\n got %#v\nwant %#v", back, msg)
		}
	})
}
