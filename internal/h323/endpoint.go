package h323

import (
	"net/netip"
	"sync"

	"vgprs/internal/ipnet"
	"vgprs/internal/q931"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
)

// Directory maps IP addresses to node IDs for trace annotation: when an
// endpoint notes a logical arrow ("RAS RRQ", "Q.931 Setup") it resolves the
// peer's node name so recorded traces read like the paper's figures. It has
// no protocol role.
//
// With one bound address per attached subscriber, the directory is itself a
// per-subscriber surface, so it uses the same open-addressing index as the
// subscriber stores: node names are interned once (the set of distinct
// names is bounded by topology size) and each binding costs one index cell
// holding the interned symbol, not a map entry with a string header.
type Directory struct {
	mu    sync.Mutex
	idx   *slab.Index[netip.Addr]
	nodes slab.Syms[sim.NodeID]
}

func hashAddr(a netip.Addr) uint64 { return slab.HashBytes16(a.As16()) }

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{idx: slab.NewIndex[netip.Addr](hashAddr)}
}

// Bind associates an address with a node for tracing.
func (d *Directory) Bind(addr netip.Addr, node sim.NodeID) {
	if d == nil || node == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// The 1-based symbol doubles as the stored handle; it is never zero
	// for a non-empty name, which is all Index.Put requires.
	d.idx.Put(addr, slab.Handle(d.nodes.ID(node)))
}

// Unbind drops an address binding (subscriber purge).
func (d *Directory) Unbind(addr netip.Addr) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.idx.Delete(addr)
}

// Bound returns the number of live address bindings.
func (d *Directory) Bound() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.idx.Len()
}

// Resolve returns the node for an address, or a synthetic name.
func (d *Directory) Resolve(addr netip.Addr) sim.NodeID {
	if d == nil {
		return sim.NodeID(addr.String())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if h := d.idx.Get(addr); !h.IsZero() {
		return d.nodes.Val(uint32(h))
	}
	return sim.NodeID(addr.String())
}

// Endpoint is the shared IP plumbing of every H.323 protocol element
// (terminal, gatekeeper, gateway, and the VMSC's H.323 side): it frames RAS
// and Q.931 messages into ipnet packets, demultiplexes arrivals by port,
// and records the logical signalling arrows in the trace.
type Endpoint struct {
	// Node is the owning node's ID (for trace arrows).
	Node sim.NodeID
	// Addr is this endpoint's IP address.
	Addr netip.Addr
	// Send transmits an IP packet toward the network: a LAN-attached
	// element sends to its router link; the VMSC sends into the MS's
	// GPRS tunnel.
	Send func(env *sim.Env, pkt ipnet.Packet)
	// Via, when set, takes precedence over Send. An owner that manages
	// many endpoints (the VMSC holds one per registered MS) implements
	// Sender once instead of allocating a Send closure per endpoint.
	Via Sender
	// Dir resolves peer addresses for tracing (nil tolerated).
	Dir *Directory
}

// Sender is the closure-free alternative to Endpoint.Send.
type Sender interface {
	SendIPPacket(env *sim.Env, pkt ipnet.Packet)
}

// transmit routes an outgoing packet through Via or Send.
func (e *Endpoint) transmit(env *sim.Env, pkt ipnet.Packet) {
	if e.Via != nil {
		e.Via.SendIPPacket(env, pkt)
		return
	}
	e.Send(env, pkt)
}

// SendRAS transmits a RAS message to a peer over UDP 1719 and notes the
// logical arrow.
func (e *Endpoint) SendRAS(env *sim.Env, to netip.Addr, msg sim.Message) {
	body, err := MarshalRAS(msg)
	if err != nil {
		return
	}
	env.Note(e.Node, e.Dir.Resolve(to), "RAS", msg)
	e.transmit(env, ipnet.Packet{
		Src: e.Addr, Dst: to,
		Proto:   ipnet.ProtoUDP,
		SrcPort: ipnet.PortRAS, DstPort: ipnet.PortRAS,
		Payload: body,
	})
}

// SendQ931 transmits a call-signalling message to a peer over TCP 1720 and
// notes the logical arrow.
func (e *Endpoint) SendQ931(env *sim.Env, to netip.Addr, msg sim.Message) {
	body, err := q931.Marshal(msg)
	if err != nil {
		return
	}
	env.Note(e.Node, e.Dir.Resolve(to), "H.225", msg)
	e.transmit(env, ipnet.Packet{
		Src: e.Addr, Dst: to,
		Proto:   ipnet.ProtoTCP,
		SrcPort: ipnet.PortQ931, DstPort: ipnet.PortQ931,
		Payload: body,
	})
}

// SendRTP transmits a media packet to a peer media address.
func (e *Endpoint) SendRTP(env *sim.Env, to q931.MediaAddr, body []byte) {
	e.transmit(env, ipnet.Packet{
		Src: e.Addr, Dst: to.Addr,
		Proto:   ipnet.ProtoUDP,
		SrcPort: ipnet.PortRTP, DstPort: to.Port,
		Payload: body,
	})
}

// Inbound classifies a received IP packet for the owning element.
type Inbound struct {
	// Packet is the raw datagram.
	Packet ipnet.Packet
	// RAS holds the decoded RAS message when DstPort is 1719.
	RAS sim.Message
	// Q931 holds the decoded call-signalling message when DstPort is 1720.
	Q931 sim.Message
	// RTPPayload holds media bytes when the packet targets the RTP port.
	RTPPayload []byte
}

// Classify decodes an arriving packet by destination port. It returns
// (zero, false) for packets this endpoint should ignore.
func (e *Endpoint) Classify(pkt ipnet.Packet) (Inbound, bool) {
	switch pkt.DstPort {
	case ipnet.PortRAS:
		msg, err := UnmarshalRAS(pkt.Payload)
		if err != nil {
			return Inbound{}, false
		}
		return Inbound{Packet: pkt, RAS: msg}, true
	case ipnet.PortQ931:
		msg, err := q931.Unmarshal(pkt.Payload)
		if err != nil {
			return Inbound{}, false
		}
		return Inbound{Packet: pkt, Q931: msg}, true
	case ipnet.PortRTP:
		return Inbound{Packet: pkt, RTPPayload: pkt.Payload}, true
	default:
		return Inbound{}, false
	}
}
