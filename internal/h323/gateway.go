package h323

import (
	"net/netip"

	"vgprs/internal/codec"
	"vgprs/internal/gsmid"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/q931"
	"vgprs/internal/rtp"
	"vgprs/internal/sim"
)

// GatewayConfig parameterises an H.323/PSTN gateway.
type GatewayConfig struct {
	ID sim.NodeID
	// Addr is the gateway's IP address on the H.323 LAN.
	Addr netip.Addr
	// Router is the LAN router node.
	Router sim.NodeID
	// Gatekeeper is the GK's IP address.
	Gatekeeper netip.Addr
	// Dir resolves peer addresses for tracing.
	Dir *Directory
	// Exchange and Trunks enable the outbound direction (paper §4: an MS
	// calling "a traditional telephone set in the PSTN"): Q.931 Setups
	// admitted toward this gateway become IAMs on Trunks toward Exchange.
	Exchange sim.NodeID
	Trunks   *isup.TrunkGroup
}

// gwQKey scopes a Q.931 call reference to the peer that uses it.
type gwQKey struct {
	peer netip.Addr
	ref  uint16
}

type gwCall struct {
	ref       uint32 // ISUP call reference
	q931Ref   uint16
	cic       isup.CIC
	exchange  sim.NodeID
	remoteSig netip.Addr
	remoteMed q931.MediaAddr
	// called/calling carry the call's aliases so the RAS completion
	// functions need no closure over the originating IAM.
	called   gsmid.MSISDN
	calling  gsmid.MSISDN
	answered bool
	// trunks is set on outbound (H.323->PSTN) calls, where the gateway
	// seized the circuit and must release it.
	trunks  *isup.TrunkGroup
	rtpSeq  uint16
	seqDown uint32
}

// Gateway bridges the PSTN into the H.323 network — the element that makes
// tromboning elimination work (paper Fig 8): a local exchange hands it a
// call, it probes the gatekeeper's address-translation table (LRQ), and on
// a hit completes the call as VoIP; on a miss it refuses the trunk so the
// exchange falls back to the international PSTN route.
type Gateway struct {
	cfg GatewayConfig
	ep  *Endpoint

	nextSeq    uint32
	nextRef    uint16
	pendingRAS map[uint32]*gwRASPending
	rasFree    []*gwRASPending
	byISUP     map[uint32]*gwCall
	// byQ931 keys calls by (peer signalling address, wire reference):
	// Q.931 references are scoped per signalling connection, so two
	// peers may use the same value concurrently.
	byQ931 map[gwQKey]*gwCall

	voipCompleted, voipRefused uint64
}

var _ sim.Node = (*Gateway)(nil)

// NewGateway returns a gateway.
func NewGateway(cfg GatewayConfig) *Gateway {
	g := &Gateway{
		cfg:        cfg,
		pendingRAS: make(map[uint32]*gwRASPending),
		byISUP:     make(map[uint32]*gwCall),
		byQ931:     make(map[gwQKey]*gwCall),
	}
	g.ep = &Endpoint{
		Node: cfg.ID,
		Addr: cfg.Addr,
		Dir:  cfg.Dir,
		Send: func(env *sim.Env, pkt ipnet.Packet) {
			env.Send(cfg.ID, cfg.Router, pkt)
		},
	}
	return g
}

// ID implements sim.Node.
func (g *Gateway) ID() sim.NodeID { return g.cfg.ID }

// Stats returns (completed-as-VoIP, refused-to-PSTN) call counts.
func (g *Gateway) Stats() (completed, refused uint64) {
	return g.voipCompleted, g.voipRefused
}

// Receive implements sim.Node.
func (g *Gateway) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case isup.IAM:
		g.handleIAM(env, from, m)
	case isup.ACM:
		if call, ok := g.byISUP[m.CallRef]; ok {
			g.ep.SendQ931(env, call.remoteSig, q931.Alerting{CallRef: call.q931Ref})
		}
	case isup.ANM:
		if call, ok := g.byISUP[m.CallRef]; ok {
			call.answered = true
			g.voipCompleted++
			g.ep.SendQ931(env, call.remoteSig, q931.Connect{
				CallRef: call.q931Ref,
				Media:   q931.MediaAddr{Addr: g.cfg.Addr, Port: ipnet.PortRTP},
			})
		}
	case isup.REL:
		g.handleTrunkREL(env, from, m)
	case isup.RLC:
	case isup.TrunkFrame:
		g.trunkVoice(env, m)
	case ipnet.Packet:
		g.handleIP(env, m)
	}
}

// gwRASPending is one outstanding RAS transaction: a package-level
// completion function plus the call it concerns. Records are recycled
// through rasFree in batches (the ss7.DialogueManager treatment), so the
// tromboning-elimination probe path allocates no closures.
type gwRASPending struct {
	g    *Gateway
	seq  uint32
	fn   func(env *sim.Env, p *gwRASPending, msg sim.Message)
	call *gwCall
}

func (g *Gateway) getRAS() *gwRASPending {
	if len(g.rasFree) == 0 {
		batch := make([]gwRASPending, 32)
		for i := range batch {
			g.rasFree = append(g.rasFree, &batch[i])
		}
	}
	n := len(g.rasFree)
	p := g.rasFree[n-1]
	g.rasFree = g.rasFree[:n-1]
	return p
}

func (g *Gateway) putRAS(p *gwRASPending) {
	*p = gwRASPending{}
	g.rasFree = append(g.rasFree, p)
}

// ras registers fn as the completion for seq, bound to call, and sends the
// request to the gatekeeper.
func (g *Gateway) ras(env *sim.Env, seq uint32, msg sim.Message,
	fn func(*sim.Env, *gwRASPending, sim.Message), call *gwCall) {
	p := g.getRAS()
	p.g, p.seq, p.fn, p.call = g, seq, fn, call
	g.pendingRAS[seq] = p
	g.ep.SendRAS(env, g.cfg.Gatekeeper, msg)
}

// handleIAM is Fig 8 steps (1)-(2): the local exchange routes the call in;
// the gateway checks the gatekeeper for the called party.
func (g *Gateway) handleIAM(env *sim.Env, exchange sim.NodeID, m isup.IAM) {
	call := &gwCall{
		ref: m.CallRef, cic: m.CIC, exchange: exchange,
		called: m.Called, calling: m.Calling,
	}
	g.byISUP[m.CallRef] = call

	g.nextSeq++
	seq := g.nextSeq
	g.ras(env, seq, LRQ{Seq: seq, Alias: m.Called}, gwLocateDone, call)
}

// gwLocateDone consumes the gatekeeper's answer to the Fig 8 step (2)
// address-translation probe.
func gwLocateDone(env *sim.Env, p *gwRASPending, msg sim.Message) {
	g, call := p.g, p.call
	switch lm := msg.(type) {
	case LCF:
		g.placeVoIPCall(env, call, lm)
	case LRJ:
		// Fig 8 miss arm: "the GK will instruct y to connect to the
		// international telephone network as a normal PSTN call."
		g.voipRefused++
		delete(g.byISUP, call.ref)
		env.Send(g.cfg.ID, call.exchange, isup.REL{
			CIC: call.cic, CallRef: call.ref, Cause: isup.CauseUnallocatedNumber,
		})
	}
}

// placeVoIPCall is Fig 8 step (3): admission plus Q.931 setup toward the
// registered endpoint (the VMSC hosting the roamer).
func (g *Gateway) placeVoIPCall(env *sim.Env, call *gwCall, lcf LCF) {
	g.nextRef++
	call.q931Ref = g.nextRef
	call.remoteSig = lcf.SignalAddr
	g.byQ931[gwQKey{call.remoteSig, call.q931Ref}] = call

	g.nextSeq++
	seq := g.nextSeq
	g.ras(env, seq, ARQ{
		Seq: seq, CallerAlias: call.calling, CalledAlias: call.called, CallRef: call.q931Ref,
	}, gwAdmitDone, call)
}

// gwAdmitDone completes the inbound call's admission: setup toward the
// registered endpoint, or release back to the exchange.
func gwAdmitDone(env *sim.Env, p *gwRASPending, msg sim.Message) {
	g, call := p.g, p.call
	switch msg.(type) {
	case ACF:
		g.ep.SendQ931(env, call.remoteSig, q931.Setup{
			CallRef: call.q931Ref, Called: call.called, Calling: call.calling,
			Media: q931.MediaAddr{Addr: g.cfg.Addr, Port: ipnet.PortRTP},
		})
	case ARJ:
		g.voipRefused++
		delete(g.byISUP, call.ref)
		delete(g.byQ931, gwQKey{call.remoteSig, call.q931Ref})
		env.Send(g.cfg.ID, call.exchange, isup.REL{
			CIC: call.cic, CallRef: call.ref, Cause: isup.CauseUnallocatedNumber,
		})
	}
}

func (g *Gateway) handleIP(env *sim.Env, pkt ipnet.Packet) {
	in, ok := g.ep.Classify(pkt)
	if !ok {
		return
	}
	switch {
	case in.RAS != nil:
		g.handleRAS(env, in.RAS)
	case in.Q931 != nil:
		g.handleQ931(env, pkt, in.Q931)
	case in.RTPPayload != nil:
		g.downlinkVoice(env, pkt.Src, in.RTPPayload)
	}
}

func (g *Gateway) handleRAS(env *sim.Env, msg sim.Message) {
	var seq uint32
	switch m := msg.(type) {
	case LCF:
		seq = m.Seq
	case LRJ:
		seq = m.Seq
	case ACF:
		seq = m.Seq
	case ARJ:
		seq = m.Seq
	case DCF:
		seq = m.Seq
	default:
		return
	}
	if p, ok := g.pendingRAS[seq]; ok {
		delete(g.pendingRAS, seq)
		fn := p.fn
		p.fn = nil
		fn(env, p, msg)
		g.putRAS(p)
	}
}

func (g *Gateway) handleQ931(env *sim.Env, pkt ipnet.Packet, msg sim.Message) {
	if setup, isSetup := msg.(q931.Setup); isSetup {
		g.handleOutboundSetup(env, pkt, setup)
		return
	}
	ref, ok := q931.CallRefOf(msg)
	if !ok {
		return
	}
	call, found := g.byQ931[gwQKey{pkt.Src, ref}]
	if !found {
		return
	}
	switch m := msg.(type) {
	case q931.CallProceeding:
	case q931.Alerting:
		env.Send(g.cfg.ID, call.exchange, isup.ACM{CIC: call.cic, CallRef: call.ref})
	case q931.Connect:
		// Ack every copy so the answering side's T313 stops; a lost ack
		// means the peer retransmits, so the count must dedupe.
		g.ep.SendQ931(env, pkt.Src, q931.ConnectAck{CallRef: ref})
		if call.answered {
			return
		}
		call.remoteMed = m.Media
		call.answered = true
		g.voipCompleted++
		env.Send(g.cfg.ID, call.exchange, isup.ANM{CIC: call.cic, CallRef: call.ref})
	case q931.ConnectAck:
		// The gateway answers on ISUP ANM without a Q.931 retransmit
		// timer; nothing to stop.
	case q931.ReleaseComplete:
		g.disengage(env, call)
		g.drop(call)
		env.Send(g.cfg.ID, call.exchange, isup.REL{
			CIC: call.cic, CallRef: call.ref, Cause: isup.CauseNormalClearing,
		})
	}
}

func (g *Gateway) handleTrunkREL(env *sim.Env, from sim.NodeID, m isup.REL) {
	env.Send(g.cfg.ID, from, isup.RLC{CIC: m.CIC, CallRef: m.CallRef})
	call, ok := g.byISUP[m.CallRef]
	if !ok {
		return
	}
	g.ep.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
		CallRef: call.q931Ref, Cause: q931.CauseNormal,
	})
	g.disengage(env, call)
	g.drop(call)
}

// handleOutboundSetup runs the paper §4 PSTN-termination direction: a
// Q.931 Setup admitted toward the gateway becomes an IAM on the trunk to
// the local exchange.
func (g *Gateway) handleOutboundSetup(env *sim.Env, pkt ipnet.Packet, m q931.Setup) {
	if _, dup := g.byQ931[gwQKey{pkt.Src, m.CallRef}]; dup {
		// Retransmitted Setup: the original CallProceeding may have been
		// lost, so re-ack to stop the caller's T303.
		g.ep.SendQ931(env, pkt.Src, q931.CallProceeding{CallRef: m.CallRef})
		return
	}
	refuse := func() {
		g.voipRefused++
		g.ep.SendQ931(env, pkt.Src, q931.ReleaseComplete{
			CallRef: m.CallRef, Cause: q931.CauseResourcesUnavail,
		})
	}
	if g.cfg.Exchange == "" {
		refuse()
		return
	}
	var cic isup.CIC
	if g.cfg.Trunks != nil {
		seized, err := g.cfg.Trunks.Seize()
		if err != nil {
			refuse()
			return
		}
		cic = seized
	}
	g.nextRef++
	call := &gwCall{
		// The high bit keeps gateway-allocated ISUP references out of
		// the space the PSTN side uses.
		ref:       0x80000000 | uint32(g.nextRef),
		q931Ref:   m.CallRef,
		cic:       cic,
		exchange:  g.cfg.Exchange,
		remoteSig: pkt.Src,
		remoteMed: m.Media,
		trunks:    g.cfg.Trunks,
	}
	g.byISUP[call.ref] = call
	g.byQ931[gwQKey{call.remoteSig, call.q931Ref}] = call
	g.ep.SendQ931(env, pkt.Src, q931.CallProceeding{CallRef: m.CallRef})
	env.Send(g.cfg.ID, g.cfg.Exchange, isup.IAM{
		CIC: cic, CallRef: call.ref, Called: m.Called, Calling: m.Calling,
	})
}

func (g *Gateway) disengage(env *sim.Env, call *gwCall) {
	g.nextSeq++
	g.ep.SendRAS(env, g.cfg.Gatekeeper, DRQ{Seq: g.nextSeq, CallRef: call.q931Ref})
}

func (g *Gateway) drop(call *gwCall) {
	if call.trunks != nil {
		call.trunks.Release(call.cic)
	}
	delete(g.byISUP, call.ref)
	delete(g.byQ931, gwQKey{call.remoteSig, call.q931Ref})
}

// trunkVoice transcodes PSTN-side speech into RTP toward the H.323 leg.
func (g *Gateway) trunkVoice(env *sim.Env, m isup.TrunkFrame) {
	call, ok := g.byISUP[m.CallRef]
	if !ok || !call.answered || !call.remoteMed.Valid() {
		return
	}
	payload := codec.Transcode(m.Payload)
	env.After(codec.TranscodeCost, func() {
		call.rtpSeq++
		p := rtp.Packet{
			PayloadType: rtp.PayloadTypeGSM,
			Seq:         call.rtpSeq,
			Timestamp:   rtp.TimestampAt(env.Now()),
			SSRC:        uint32(call.q931Ref),
			Payload:     payload,
		}
		g.ep.SendRTP(env, call.remoteMed, p.Marshal())
	})
}

// downlinkVoice transcodes RTP into PSTN-side trunk frames. The gateway has
// one RTP sink; streams are demultiplexed by SSRC (the Q.931 reference).
func (g *Gateway) downlinkVoice(env *sim.Env, src netip.Addr, payload []byte) {
	p, err := rtp.Unmarshal(payload)
	if err != nil {
		return
	}
	var call *gwCall
	// Media SSRCs carry the sender's wire reference; scope to the sender
	// (signalling and media share an address for every endpoint here).
	for key, c := range g.byQ931 {
		if key.ref == uint16(p.SSRC) && (key.peer == src || c.remoteMed.Addr == src) {
			call = c
			break
		}
	}
	if call == nil {
		// Single-call fallback: deliver to the only active call.
		if len(g.byQ931) != 1 {
			return
		}
		for _, c := range g.byQ931 {
			call = c
		}
	}
	frame := codec.Transcode(p.Payload)
	env.After(codec.TranscodeCost, func() {
		call.seqDown++
		env.Send(g.cfg.ID, call.exchange, isup.TrunkFrame{
			CIC: call.cic, CallRef: call.ref, Seq: call.seqDown, Payload: frame,
		})
	})
}
