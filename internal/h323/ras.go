// Package h323 implements the H.323 system of the paper: the H.225.0 RAS
// protocol (registration, admission, location, disengage), a standard
// gatekeeper with the address-translation table of paper step 1.5, H.323
// terminals, and the H.323/PSTN gateway of the tromboning scenario (Fig 8).
//
// RAS rides over UDP port 1719 and Q.931 call signalling over TCP port 1720
// inside ipnet packets, so every exchange with a GPRS-attached endpoint
// (the VMSC) physically crosses the Gb/GTP tunnel path of Fig 3.
//
// Substitution note: real H.225.0 RAS is ASN.1 PER; this reproduction uses
// the repository's binary TLV codec with the same message semantics
// (DESIGN.md, substitution table).
package h323

import (
	"errors"
	"fmt"
	"net/netip"

	"vgprs/internal/gsmid"
	"vgprs/internal/sim"
	"vgprs/internal/wire"
)

// ErrBadMessage is returned when a RAS message fails to decode.
var ErrBadMessage = errors.New("h323: malformed RAS message")

// RejectReason explains RRJ/ARJ/LRJ.
type RejectReason uint8

// Reject reasons.
const (
	RejectNone RejectReason = iota
	RejectDuplicateAlias
	RejectCalledPartyNotRegistered
	RejectCallerNotRegistered
	RejectResourceUnavailable
	RejectGenericData
	RejectFullRegistrationRequired
	// RejectTimeout is a local synthetic reason: the RAS transaction
	// exhausted its retransmission budget without any gatekeeper answer.
	RejectTimeout
)

// String names the reason.
func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "none"
	case RejectDuplicateAlias:
		return "duplicate-alias"
	case RejectCalledPartyNotRegistered:
		return "called-party-not-registered"
	case RejectCallerNotRegistered:
		return "caller-not-registered"
	case RejectResourceUnavailable:
		return "resource-unavailable"
	case RejectFullRegistrationRequired:
		return "full registration required"
	case RejectGenericData:
		return "generic-data"
	case RejectTimeout:
		return "transaction-timeout"
	default:
		return fmt.Sprintf("RejectReason(%d)", uint8(r))
	}
}

// RRQ registers an endpoint's alias and call-signalling address with the
// gatekeeper (paper step 1.4: "the VMSC initiates the end-point
// registration to inform the GK of its transport address and alias address
// (i.e., MSISDN)").
type RRQ struct {
	Seq        uint32
	Alias      gsmid.MSISDN
	SignalAddr netip.Addr
	SignalPort uint16
	// KeepAlive marks a lightweight refresh of an existing registration
	// (H.225 keepAlive). The gatekeeper answers RRJ "full registration
	// required" if it no longer holds the row.
	KeepAlive bool
	// TTLSeconds is the requested registration lifetime (H.225
	// timeToLive); zero asks for the gatekeeper's default.
	TTLSeconds uint16
}

// Name implements sim.Message.
func (RRQ) Name() string { return "RAS RRQ" }

// RCF confirms registration (paper step 1.5).
type RCF struct {
	Seq        uint32
	EndpointID string
	// TTLSeconds is the granted registration lifetime; zero means the
	// registration never expires.
	TTLSeconds uint16
}

// Name implements sim.Message.
func (RCF) Name() string { return "RAS RCF" }

// RRJ rejects registration.
type RRJ struct {
	Seq    uint32
	Reason RejectReason
}

// Name implements sim.Message.
func (RRJ) Name() string { return "RAS RRJ" }

// URQ unregisters an endpoint (used when an MS detaches from vGPRS).
type URQ struct {
	Seq   uint32
	Alias gsmid.MSISDN
	// SignalAddr identifies the unregistering endpoint; the gatekeeper
	// ignores a URQ whose address does not match the registration, so a
	// departed switch cannot knock out an alias that has since moved.
	SignalAddr netip.Addr
}

// Name implements sim.Message.
func (URQ) Name() string { return "RAS URQ" }

// UCF confirms unregistration.
type UCF struct {
	Seq uint32
}

// Name implements sim.Message.
func (UCF) Name() string { return "RAS UCF" }

// ARQ requests call admission and address translation (paper steps 2.3,
// 2.5, 4.1, 4.3).
type ARQ struct {
	Seq uint32
	// CallerAlias identifies the requesting endpoint.
	CallerAlias gsmid.MSISDN
	// CalledAlias is the dialled party (the MSISDN for calls toward MSs).
	CalledAlias gsmid.MSISDN
	CallRef     uint16
	// Answer marks an admission request for an incoming call (the called
	// side's ARQ of step 2.5).
	Answer bool
}

// Name implements sim.Message.
func (ARQ) Name() string { return "RAS ARQ" }

// ACF admits the call and returns the destination's call signalling channel
// transport address (paper step 2.3).
type ACF struct {
	Seq        uint32
	SignalAddr netip.Addr
	SignalPort uint16
}

// Name implements sim.Message.
func (ACF) Name() string { return "RAS ACF" }

// ARJ rejects admission (paper step 2.5: "it is possible that an RAS
// Admission Reject message is received by the terminal and the call is
// released").
type ARJ struct {
	Seq    uint32
	Reason RejectReason
}

// Name implements sim.Message.
func (ARJ) Name() string { return "RAS ARJ" }

// DRQ reports call completion (paper step 3.3: "the GK records the call
// statistics for charging").
type DRQ struct {
	Seq     uint32
	Alias   gsmid.MSISDN
	CallRef uint16
	// Peer is the remote party's alias. The called side sets it so the
	// gatekeeper can find the charging record, which is keyed by the
	// CALLER's (alias, reference) — the reference alone is ambiguous
	// when one endpoint holds calls from several peers.
	Peer gsmid.MSISDN
}

// Name implements sim.Message.
func (DRQ) Name() string { return "RAS DRQ" }

// DCF confirms disengage.
type DCF struct {
	Seq uint32
}

// Name implements sim.Message.
func (DCF) Name() string { return "RAS DCF" }

// LRQ asks the gatekeeper to translate an alias without admitting a call —
// the gateway's table probe in the tromboning scenario (Fig 8 step (2)).
type LRQ struct {
	Seq   uint32
	Alias gsmid.MSISDN
}

// Name implements sim.Message.
func (LRQ) Name() string { return "RAS LRQ" }

// LCF returns the alias's call-signalling address.
type LCF struct {
	Seq        uint32
	SignalAddr netip.Addr
	SignalPort uint16
}

// Name implements sim.Message.
func (LCF) Name() string { return "RAS LCF" }

// LRJ reports the alias is not registered (Fig 8: the call then falls back
// to the international PSTN).
type LRJ struct {
	Seq    uint32
	Reason RejectReason
}

// Name implements sim.Message.
func (LRJ) Name() string { return "RAS LRJ" }

// Interface-compliance assertions.
var (
	_ sim.Message = RRQ{}
	_ sim.Message = RCF{}
	_ sim.Message = RRJ{}
	_ sim.Message = URQ{}
	_ sim.Message = UCF{}
	_ sim.Message = ARQ{}
	_ sim.Message = ACF{}
	_ sim.Message = ARJ{}
	_ sim.Message = DRQ{}
	_ sim.Message = DCF{}
	_ sim.Message = LRQ{}
	_ sim.Message = LCF{}
	_ sim.Message = LRJ{}
)

const (
	opRRQ uint8 = iota + 1
	opRCF
	opRRJ
	opURQ
	opUCF
	opARQ
	opACF
	opARJ
	opDRQ
	opDCF
	opLRQ
	opLCF
	opLRJ
)

func marshalAddr(w *wire.Writer, addr netip.Addr, port uint16) {
	w.Addr(addr)
	if addr.IsValid() {
		w.U16(port)
	}
}

func unmarshalAddr(r *wire.Reader) (netip.Addr, uint16) {
	addr := r.Addr()
	if !addr.IsValid() {
		return netip.Addr{}, 0
	}
	port := r.U16()
	if r.Err() != nil {
		return netip.Addr{}, 0
	}
	return addr, port
}

// MarshalRAS encodes a RAS message, returning a fresh buffer the caller
// owns.
func MarshalRAS(msg sim.Message) ([]byte, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	if err := encodeRAS(w, msg); err != nil {
		return nil, err
	}
	return w.CopyBytes(), nil
}

// AppendRAS encodes a RAS message onto dst and returns the extended slice.
// On error dst is returned unchanged.
func AppendRAS(dst []byte, msg sim.Message) ([]byte, error) {
	w := wire.Wrap(dst)
	if err := encodeRAS(&w, msg); err != nil {
		return dst, err
	}
	return w.Bytes(), nil
}

func encodeRAS(w *wire.Writer, msg sim.Message) error {
	switch m := msg.(type) {
	case RRQ:
		w.U8(opRRQ)
		w.U32(m.Seq)
		w.BCD(string(m.Alias))
		marshalAddr(w, m.SignalAddr, m.SignalPort)
		if m.KeepAlive {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.U16(m.TTLSeconds)
	case RCF:
		w.U8(opRCF)
		w.U32(m.Seq)
		w.String8(m.EndpointID)
		w.U16(m.TTLSeconds)
	case RRJ:
		w.U8(opRRJ)
		w.U32(m.Seq)
		w.U8(uint8(m.Reason))
	case URQ:
		w.U8(opURQ)
		w.U32(m.Seq)
		w.BCD(string(m.Alias))
		marshalAddr(w, m.SignalAddr, 0)
	case UCF:
		w.U8(opUCF)
		w.U32(m.Seq)
	case ARQ:
		w.U8(opARQ)
		w.U32(m.Seq)
		w.BCD(string(m.CallerAlias))
		w.BCD(string(m.CalledAlias))
		w.U16(m.CallRef)
		if m.Answer {
			w.U8(1)
		} else {
			w.U8(0)
		}
	case ACF:
		w.U8(opACF)
		w.U32(m.Seq)
		marshalAddr(w, m.SignalAddr, m.SignalPort)
	case ARJ:
		w.U8(opARJ)
		w.U32(m.Seq)
		w.U8(uint8(m.Reason))
	case DRQ:
		w.U8(opDRQ)
		w.U32(m.Seq)
		w.BCD(string(m.Alias))
		w.U16(m.CallRef)
		w.BCD(string(m.Peer))
	case DCF:
		w.U8(opDCF)
		w.U32(m.Seq)
	case LRQ:
		w.U8(opLRQ)
		w.U32(m.Seq)
		w.BCD(string(m.Alias))
	case LCF:
		w.U8(opLCF)
		w.U32(m.Seq)
		marshalAddr(w, m.SignalAddr, m.SignalPort)
	case LRJ:
		w.U8(opLRJ)
		w.U32(m.Seq)
		w.U8(uint8(m.Reason))
	default:
		return fmt.Errorf("h323: cannot marshal %T", msg)
	}
	return nil
}

// UnmarshalRAS decodes a RAS message.
func UnmarshalRAS(b []byte) (sim.Message, error) {
	var r wire.Reader
	r.Reset(b)
	op := r.U8()
	seq := r.U32()
	var msg sim.Message
	switch op {
	case opRRQ:
		m := RRQ{Seq: seq, Alias: gsmid.MSISDN(r.BCD())}
		m.SignalAddr, m.SignalPort = unmarshalAddr(&r)
		m.KeepAlive = r.U8() != 0
		m.TTLSeconds = r.U16()
		msg = m
	case opRCF:
		msg = RCF{Seq: seq, EndpointID: r.String8(), TTLSeconds: r.U16()}
	case opRRJ:
		msg = RRJ{Seq: seq, Reason: RejectReason(r.U8())}
	case opURQ:
		m := URQ{Seq: seq, Alias: gsmid.MSISDN(r.BCD())}
		m.SignalAddr, _ = unmarshalAddr(&r)
		msg = m
	case opUCF:
		msg = UCF{Seq: seq}
	case opARQ:
		m := ARQ{Seq: seq}
		m.CallerAlias = gsmid.MSISDN(r.BCD())
		m.CalledAlias = gsmid.MSISDN(r.BCD())
		m.CallRef = r.U16()
		m.Answer = r.U8() != 0
		msg = m
	case opACF:
		m := ACF{Seq: seq}
		m.SignalAddr, m.SignalPort = unmarshalAddr(&r)
		msg = m
	case opARJ:
		msg = ARJ{Seq: seq, Reason: RejectReason(r.U8())}
	case opDRQ:
		m := DRQ{Seq: seq, Alias: gsmid.MSISDN(r.BCD())}
		m.CallRef = r.U16()
		m.Peer = gsmid.MSISDN(r.BCD())
		msg = m
	case opDCF:
		msg = DCF{Seq: seq}
	case opLRQ:
		msg = LRQ{Seq: seq, Alias: gsmid.MSISDN(r.BCD())}
	case opLCF:
		m := LCF{Seq: seq}
		m.SignalAddr, m.SignalPort = unmarshalAddr(&r)
		msg = m
	case opLRJ:
		msg = LRJ{Seq: seq, Reason: RejectReason(r.U8())}
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", ErrBadMessage, op)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, r.Remaining())
	}
	return msg, nil
}
