package h323

import (
	"fmt"
	"net/netip"
	"time"

	"vgprs/internal/codec"
	"vgprs/internal/gsmid"
	"vgprs/internal/ipnet"
	"vgprs/internal/q931"
	"vgprs/internal/rtp"
	"vgprs/internal/sim"
)

// CallState is a terminal-side call state.
type CallState uint8

// Call states.
const (
	CallAdmitting CallState = iota + 1
	CallSetupSent
	CallProceeding
	CallAlerting
	CallRinging // incoming, local user being alerted
	CallConnected
	CallCleared
)

// String names the state.
func (s CallState) String() string {
	switch s {
	case CallAdmitting:
		return "admitting"
	case CallSetupSent:
		return "setup-sent"
	case CallProceeding:
		return "proceeding"
	case CallAlerting:
		return "alerting"
	case CallRinging:
		return "ringing"
	case CallConnected:
		return "connected"
	case CallCleared:
		return "cleared"
	default:
		return fmt.Sprintf("CallState(%d)", uint8(s))
	}
}

// TerminalHooks observe terminal events.
type TerminalHooks struct {
	OnRegistered     func()
	OnRegisterFailed func(reason RejectReason)
	OnIncoming       func(callRef uint16, calling gsmid.MSISDN)
	OnAlerting       func(callRef uint16)
	OnConnected      func(callRef uint16)
	OnReleased       func(callRef uint16)
	OnRejected       func(callRef uint16, reason RejectReason)
}

// TerminalConfig parameterises an H.323 terminal.
type TerminalConfig struct {
	ID sim.NodeID
	// Alias is the terminal's dialable number.
	Alias gsmid.MSISDN
	// Addr is the terminal's IP address.
	Addr netip.Addr
	// Router is the LAN router node.
	Router sim.NodeID
	// Gatekeeper is the GK's IP address.
	Gatekeeper netip.Addr
	// Dir resolves peer addresses for tracing.
	Dir *Directory
	// AutoAnswer answers incoming calls after AnswerDelay.
	AutoAnswer  bool
	AnswerDelay time.Duration
	// Talk generates RTP media while connected.
	Talk bool
	// FrameInterval is the media frame period; zero means 20 ms.
	FrameInterval time.Duration
	// Transport, when set, replaces the default router link for outgoing
	// IP packets. The TR 23.923 baseline uses it to push the terminal's
	// traffic through a GPRS PDP context instead of a LAN.
	Transport func(env *sim.Env, pkt ipnet.Packet)

	// SigRTO enables RAS and Q.931 fault tolerance: an unanswered
	// request is retransmitted with the RTO doubling each time until
	// SigRetries is exhausted, then the procedure fails cleanly (RAS
	// completions see a nil message; calls release with
	// recovery-on-timer-expiry). Zero keeps the legacy behaviour: no
	// timers, a lost answer hangs the transaction.
	SigRTO time.Duration
	// SigRetries is the per-transaction retransmission budget. Zero
	// means the default (3); negative disables retransmission so the
	// transaction fails at the first unanswered RTO.
	SigRetries int

	Hooks TerminalHooks
}

type termCall struct {
	// ref is the terminal-local call handle (unique across this
	// terminal's calls, what the public API exposes).
	ref   uint16
	state CallState
	// wireRef is the Q.931 call reference used on the wire toward
	// remoteSig. Q.931 references are scoped per signalling connection,
	// so two peers may legitimately use the same value; the terminal
	// remaps collisions to a free local ref and keeps the wire value
	// here.
	wireRef   uint16
	remote    gsmid.MSISDN
	remoteSig netip.Addr
	remoteMed q931.MediaAddr
	outgoing  bool
	mediaSeq  uint16
	sending   bool

	// Q.931 retransmission state (T303 for Setup, T313 for Connect): a
	// nil q931Msg means no cycle is running; q931Gen guards stale timers
	// from an earlier cycle on the same call.
	q931Msg     sim.Message
	q931Env     *sim.Env
	q931RTO     time.Duration
	q931Retries int
	q931Gen     uint32
}

// Terminal is an H.323 terminal: a native VoIP endpoint on the external
// network — the far party in the paper's Figs 5-6.
type Terminal struct {
	cfg TerminalConfig
	ep  *Endpoint

	registered  bool
	keepAlive   bool
	endpointID  string
	nextSeq     uint32
	nextRef     uint16
	pendingRAS  map[uint32]*termRASPending
	rasFree     []*termRASPending
	calls       map[uint16]*termCall
	retransmits uint64

	// Media is the RTP receive-side statistics collector.
	Media *rtp.Receiver
}

var _ sim.Node = (*Terminal)(nil)

// NewTerminal returns an unregistered terminal.
func NewTerminal(cfg TerminalConfig) *Terminal {
	if cfg.FrameInterval == 0 {
		cfg.FrameInterval = codec.FrameDuration
	}
	t := &Terminal{
		cfg:        cfg,
		pendingRAS: make(map[uint32]*termRASPending),
		calls:      make(map[uint16]*termCall),
		Media:      rtp.NewReceiver(),
	}
	send := cfg.Transport
	if send == nil {
		send = func(env *sim.Env, pkt ipnet.Packet) {
			env.Send(cfg.ID, cfg.Router, pkt)
		}
	}
	t.ep = &Endpoint{Node: cfg.ID, Addr: cfg.Addr, Dir: cfg.Dir, Send: send}
	return t
}

// HandlePacket feeds an IP packet to the terminal outside the normal node
// delivery path — for hosts (the TR 23.923 MS) that receive the terminal's
// traffic through a tunnel.
func (t *Terminal) HandlePacket(env *sim.Env, pkt ipnet.Packet) {
	t.Receive(env, t.cfg.ID, "tunnel", pkt)
}

// SetAddr updates the terminal's transport address (the TR 23.923 MS learns
// its PDP address at activation time). Must be called before Register.
func (t *Terminal) SetAddr(addr netip.Addr) {
	t.cfg.Addr = addr
	t.ep.Addr = addr
}

// ID implements sim.Node.
func (t *Terminal) ID() sim.NodeID { return t.cfg.ID }

// Registered reports gatekeeper registration state.
func (t *Terminal) Registered() bool { return t.registered }

// CallState returns the state of a call by reference.
func (t *Terminal) CallState(ref uint16) (CallState, bool) {
	c, ok := t.calls[ref]
	if !ok {
		return 0, false
	}
	return c.state, true
}

// CallRefs returns the references of all non-cleared calls.
func (t *Terminal) CallRefs() []uint16 {
	var out []uint16
	for ref, c := range t.calls {
		if c.state != CallCleared {
			out = append(out, ref)
		}
	}
	return out
}

// ActiveCalls returns the number of non-cleared calls.
func (t *Terminal) ActiveCalls() int {
	n := 0
	for _, c := range t.calls {
		if c.state != CallCleared {
			n++
		}
	}
	return n
}

// termRASPending is one outstanding RAS transaction: a package-level
// completion function plus the transaction's subject (the call, if any).
// Records are recycled through rasFree in batches, ss7.DialogueManager
// style, and double as their own RTO-timer arguments, so the registration
// and admission hot paths allocate no closures and no per-transaction
// timer records. With SigRTO enabled, msg is retained for retransmission;
// on budget exhaustion the completion fires with a nil message.
type termRASPending struct {
	t       *Terminal
	seq     uint32
	fn      func(env *sim.Env, p *termRASPending, msg sim.Message)
	call    *termCall
	calling gsmid.MSISDN // incoming-admission's caller, for the hooks
	env     *sim.Env
	msg     sim.Message

	rto     time.Duration
	retries int
	// hasTimer/resolved implement the DialogueManager recycling protocol:
	// a transaction resolved before its RTO timer fires stays allocated
	// (the event queue still references it) and is recycled by the timer.
	hasTimer bool
	resolved bool
}

func (t *Terminal) getRAS() *termRASPending {
	if len(t.rasFree) == 0 {
		batch := make([]termRASPending, 32)
		for i := range batch {
			t.rasFree = append(t.rasFree, &batch[i])
		}
	}
	n := len(t.rasFree)
	p := t.rasFree[n-1]
	t.rasFree = t.rasFree[:n-1]
	return p
}

func (t *Terminal) putRAS(p *termRASPending) {
	*p = termRASPending{}
	t.rasFree = append(t.rasFree, p)
}

func termRASExpire(arg any) {
	p := arg.(*termRASPending)
	t := p.t
	p.hasTimer = false
	if p.resolved {
		t.putRAS(p)
		return
	}
	if p.retries > 0 {
		p.retries--
		p.rto = sim.NextRTO(p.rto, t.cfg.SigRTO)
		t.retransmits++
		t.ep.SendRAS(p.env, t.cfg.Gatekeeper, p.msg)
		p.hasTimer = true
		p.env.AfterArg(p.rto, termRASExpire, p)
		return
	}
	delete(t.pendingRAS, p.seq)
	fn, env := p.fn, p.env
	p.fn, p.msg, p.resolved = nil, nil, true
	fn(env, p, nil)
	t.putRAS(p)
}

// sigRetries resolves the configured retransmission budget (zero = 3,
// negative = none).
func (t *Terminal) sigRetries() int {
	switch {
	case t.cfg.SigRetries > 0:
		return t.cfg.SigRetries
	case t.cfg.SigRetries < 0:
		return 0
	default:
		return 3
	}
}

// Retransmits reports how many RAS and Q.931 requests this terminal has
// re-sent.
func (t *Terminal) Retransmits() uint64 { return t.retransmits }

// PendingRAS returns RAS transactions still awaiting a gatekeeper answer.
func (t *Terminal) PendingRAS() int { return len(t.pendingRAS) }

// ras sends a RAS request; with a completion it registers a pending
// transaction for the answer, bound to call if the transaction concerns
// one. The record is returned so callers can attach extra subject fields.
func (t *Terminal) ras(env *sim.Env, msg sim.Message,
	fn func(*sim.Env, *termRASPending, sim.Message), call *termCall) *termRASPending {
	var p *termRASPending
	if fn != nil {
		seq := rasSeq(msg)
		p = t.getRAS()
		p.t, p.seq, p.fn, p.call, p.env = t, seq, fn, call, env
		if t.cfg.SigRTO > 0 {
			p.msg = msg
			p.rto, p.retries = t.cfg.SigRTO, t.sigRetries()
			p.hasTimer = true
			env.AfterArg(p.rto, termRASExpire, p)
		}
		t.pendingRAS[seq] = p
	}
	t.ep.SendRAS(env, t.cfg.Gatekeeper, msg)
	return p
}

func rasSeq(msg sim.Message) uint32 {
	switch m := msg.(type) {
	case RRQ:
		return m.Seq
	case URQ:
		return m.Seq
	case ARQ:
		return m.Seq
	case DRQ:
		return m.Seq
	case LRQ:
		return m.Seq
	default:
		return 0
	}
}

// Register performs endpoint registration with the gatekeeper.
func (t *Terminal) Register(env *sim.Env) {
	t.nextSeq++
	t.ras(env, RRQ{
		Seq: t.nextSeq, Alias: t.cfg.Alias,
		SignalAddr: t.cfg.Addr, SignalPort: ipnet.PortQ931,
	}, termRegisterDone, nil)
}

func termRegisterDone(env *sim.Env, p *termRASPending, msg sim.Message) {
	t := p.t
	switch m := msg.(type) {
	case RCF:
		t.registered = true
		t.endpointID = m.EndpointID
		if t.cfg.Hooks.OnRegistered != nil {
			t.cfg.Hooks.OnRegistered()
		}
	case RRJ:
		if t.cfg.Hooks.OnRegisterFailed != nil {
			t.cfg.Hooks.OnRegisterFailed(m.Reason)
		}
	case nil:
		// Retransmission budget exhausted without any answer.
		if t.cfg.Hooks.OnRegisterFailed != nil {
			t.cfg.Hooks.OnRegisterFailed(RejectTimeout)
		}
	}
}

// StartKeepAlive begins periodic lightweight registration refreshes (H.225
// keepAlive RRQs) at the given interval — required to stay registered at a
// gatekeeper that enforces a registration TTL. If the gatekeeper answers
// "full registration required" (it lost or expired the row), the terminal
// re-registers fully. Keepalives keep the event queue non-empty, so drive
// the simulation with RunUntil once started.
func (t *Terminal) StartKeepAlive(env *sim.Env, interval time.Duration) {
	if interval <= 0 || t.keepAlive {
		return
	}
	t.keepAlive = true
	var tick func()
	tick = func() {
		if t.registered {
			t.nextSeq++
			t.ras(env, RRQ{
				Seq: t.nextSeq, Alias: t.cfg.Alias,
				SignalAddr: t.cfg.Addr, SignalPort: ipnet.PortQ931,
				KeepAlive: true,
			}, termKeepAliveDone, nil)
		}
		env.After(interval, tick)
	}
	tick()
}

func termKeepAliveDone(env *sim.Env, p *termRASPending, msg sim.Message) {
	if rrj, isRRJ := msg.(RRJ); isRRJ &&
		rrj.Reason == RejectFullRegistrationRequired {
		p.t.Register(env)
	}
}

// Call originates a call to the given alias (the calling-party role of
// paper Fig 6 step 4.1). It returns the local call reference.
func (t *Terminal) Call(env *sim.Env, called gsmid.MSISDN) (uint16, error) {
	if !t.registered {
		return 0, fmt.Errorf("h323: terminal %s not registered", t.cfg.ID)
	}
	t.nextRef++
	ref := t.nextRef
	call := &termCall{ref: ref, wireRef: ref, state: CallAdmitting, remote: called, outgoing: true}
	t.calls[ref] = call

	t.nextSeq++
	t.ras(env, ARQ{
		Seq: t.nextSeq, CallerAlias: t.cfg.Alias, CalledAlias: called, CallRef: ref,
	}, termCallAdmitDone, call)
	return ref, nil
}

// termCallAdmitDone continues an outgoing call once the gatekeeper admits
// it (or rejects/times out).
func termCallAdmitDone(env *sim.Env, p *termRASPending, msg sim.Message) {
	t, call := p.t, p.call
	switch m := msg.(type) {
	case ACF:
		call.remoteSig = m.SignalAddr
		call.state = CallSetupSent
		t.armQ931(env, call, q931.Setup{
			CallRef: call.wireRef, Called: call.remote, Calling: t.cfg.Alias,
			Media: q931.MediaAddr{Addr: t.cfg.Addr, Port: ipnet.PortRTP},
		})
	case ARJ:
		call.state = CallCleared
		if t.cfg.Hooks.OnRejected != nil {
			t.cfg.Hooks.OnRejected(call.ref, m.Reason)
		}
	case nil:
		// Admission never answered: fail the call attempt cleanly.
		call.state = CallCleared
		if t.cfg.Hooks.OnRejected != nil {
			t.cfg.Hooks.OnRejected(call.ref, RejectTimeout)
		}
	}
}

// Answer accepts a ringing incoming call.
func (t *Terminal) Answer(env *sim.Env, ref uint16) {
	call, ok := t.calls[ref]
	if !ok || call.state != CallRinging {
		return
	}
	call.state = CallConnected
	t.armQ931(env, call, q931.Connect{
		CallRef: call.wireRef,
		Media:   q931.MediaAddr{Addr: t.cfg.Addr, Port: ipnet.PortRTP},
	})
	t.startMedia(env, call)
	if t.cfg.Hooks.OnConnected != nil {
		t.cfg.Hooks.OnConnected(ref)
	}
}

// Hangup clears a call from this side.
func (t *Terminal) Hangup(env *sim.Env, ref uint16) error {
	call, ok := t.calls[ref]
	if !ok || call.state == CallCleared {
		return fmt.Errorf("h323: terminal %s has no active call %d", t.cfg.ID, ref)
	}
	t.ep.SendQ931(env, call.remoteSig, q931.ReleaseComplete{CallRef: call.wireRef, Cause: q931.CauseNormal})
	t.finishCall(env, call)
	return nil
}

func (t *Terminal) finishCall(env *sim.Env, call *termCall) {
	call.state = CallCleared
	call.sending = false
	call.q931Msg = nil // stop any retransmission cycle
	t.nextSeq++
	t.ras(env, DRQ{Seq: t.nextSeq, Alias: t.cfg.Alias, CallRef: call.wireRef, Peer: call.remote}, nil, nil)
	if t.cfg.Hooks.OnReleased != nil {
		t.cfg.Hooks.OnReleased(call.ref)
	}
}

// Receive implements sim.Node.
func (t *Terminal) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	pkt, ok := msg.(ipnet.Packet)
	if !ok {
		return
	}
	in, ok := t.ep.Classify(pkt)
	if !ok {
		return
	}
	switch {
	case in.RAS != nil:
		t.handleRAS(env, in.RAS)
	case in.Q931 != nil:
		t.handleQ931(env, pkt, in.Q931)
	case in.RTPPayload != nil:
		t.handleRTP(env, in.RTPPayload)
	}
}

func (t *Terminal) handleRAS(env *sim.Env, msg sim.Message) {
	var seq uint32
	switch m := msg.(type) {
	case RCF:
		seq = m.Seq
	case RRJ:
		seq = m.Seq
	case ACF:
		seq = m.Seq
	case ARJ:
		seq = m.Seq
	case DCF:
		seq = m.Seq
	case UCF:
		seq = m.Seq
	default:
		return
	}
	p, ok := t.pendingRAS[seq]
	if !ok {
		return
	}
	delete(t.pendingRAS, seq)
	fn := p.fn
	p.fn, p.msg, p.resolved = nil, nil, true
	fn(env, p, msg)
	if !p.hasTimer {
		t.putRAS(p)
	}
	// Otherwise the armed RTO timer still references the record; it is
	// recycled when that timer fires and observes resolved.
}

// --- Q.931 retransmission (T303 for Setup, T313 for Connect) ---

// termQ931Timer is the timer record for one Q.931 retransmission cycle.
type termQ931Timer struct {
	t    *Terminal
	call *termCall
	gen  uint32
}

// armQ931 sends a Q.931 message that expects an answer and, with SigRTO
// enabled, starts its retransmission cycle.
func (t *Terminal) armQ931(env *sim.Env, call *termCall, msg sim.Message) {
	t.ep.SendQ931(env, call.remoteSig, msg)
	if t.cfg.SigRTO <= 0 {
		return
	}
	call.q931Gen++
	call.q931Msg, call.q931Env = msg, env
	call.q931RTO, call.q931Retries = t.cfg.SigRTO, t.sigRetries()
	env.AfterArg(t.cfg.SigRTO, termQ931Expire, &termQ931Timer{t: t, call: call, gen: call.q931Gen})
}

func termQ931Expire(arg any) {
	r := arg.(*termQ931Timer)
	call := r.call
	if call.q931Msg == nil || call.q931Gen != r.gen || call.state == CallCleared {
		return
	}
	if call.q931Retries > 0 {
		call.q931Retries--
		call.q931RTO = sim.NextRTO(call.q931RTO, r.t.cfg.SigRTO)
		r.t.retransmits++
		r.t.ep.SendQ931(call.q931Env, call.remoteSig, call.q931Msg)
		call.q931Env.AfterArg(call.q931RTO, termQ931Expire, r)
		return
	}
	// Budget exhausted: release the call cleanly on both sides rather
	// than hang in a signalling state forever.
	call.q931Msg = nil
	r.t.ep.SendQ931(call.q931Env, call.remoteSig, q931.ReleaseComplete{
		CallRef: call.wireRef, Cause: q931.CauseRecoveryOnTimerExpiry,
	})
	r.t.finishCall(call.q931Env, call)
}

func (t *Terminal) handleQ931(env *sim.Env, pkt ipnet.Packet, msg sim.Message) {
	switch m := msg.(type) {
	case q931.Setup:
		t.handleIncomingSetup(env, pkt, m)
	case q931.CallProceeding:
		if call := t.findCall(pkt.Src, m.CallRef); call != nil && call.state == CallSetupSent {
			call.state = CallProceeding
			call.q931Msg = nil // far end holds our Setup; stop T303
		}
	case q931.Alerting:
		// Guard against a late duplicate regressing an answered call.
		if call := t.findCall(pkt.Src, m.CallRef); call != nil &&
			(call.state == CallSetupSent || call.state == CallProceeding) {
			call.state = CallAlerting
			call.q931Msg = nil // stop T303
			if t.cfg.Hooks.OnAlerting != nil {
				t.cfg.Hooks.OnAlerting(call.ref)
			}
		}
	case q931.Connect:
		if call := t.findCall(pkt.Src, m.CallRef); call != nil {
			// Acknowledge every copy so the answerer's T313 stops;
			// process only the first.
			t.ep.SendQ931(env, call.remoteSig, q931.ConnectAck{CallRef: call.wireRef})
			if call.state == CallConnected {
				return
			}
			call.state = CallConnected
			call.q931Msg = nil // stop T303
			call.remoteMed = m.Media
			t.startMedia(env, call)
			if t.cfg.Hooks.OnConnected != nil {
				t.cfg.Hooks.OnConnected(call.ref)
			}
		}
	case q931.ConnectAck:
		// The caller saw our Connect: stop T313.
		if call := t.findCall(pkt.Src, m.CallRef); call != nil {
			call.q931Msg = nil
		}
	case q931.ReleaseComplete:
		if call := t.findCall(pkt.Src, m.CallRef); call != nil && call.state != CallCleared {
			t.finishCall(env, call)
		}
	}
}

// findCall resolves an incoming Q.931 message to a call: the reference is
// scoped to the peer that sent it, so both the source address and the wire
// reference must match.
func (t *Terminal) findCall(src netip.Addr, wireRef uint16) *termCall {
	for _, call := range t.calls {
		if call.wireRef == wireRef && call.remoteSig == src && call.state != CallCleared {
			return call
		}
	}
	return nil
}

// handleIncomingSetup runs paper steps 2.4-2.6 on the called terminal:
// Call Proceeding back, ARQ/ACF with the gatekeeper, then Alerting.
func (t *Terminal) handleIncomingSetup(env *sim.Env, pkt ipnet.Packet, m q931.Setup) {
	if t.findCall(pkt.Src, m.CallRef) != nil {
		return // retransmission of a Setup we already hold
	}
	// The peer's reference may collide with a call from another peer (or
	// one of our own outgoing references); pick a free local handle.
	ref := m.CallRef
	for _, taken := t.calls[ref]; taken; _, taken = t.calls[ref] {
		t.nextRef++
		ref = t.nextRef
	}
	call := &termCall{
		ref: ref, wireRef: m.CallRef, state: CallProceeding,
		remote: m.Calling, remoteSig: pkt.Src, remoteMed: m.Media,
	}
	t.calls[ref] = call
	t.ep.SendQ931(env, pkt.Src, q931.CallProceeding{CallRef: m.CallRef})

	// Step 2.5: admission for the incoming call.
	t.nextSeq++
	if p := t.ras(env, ARQ{
		Seq: t.nextSeq, CallerAlias: t.cfg.Alias, CalledAlias: m.Calling,
		CallRef: m.CallRef, Answer: true,
	}, termIncomingAdmitDone, call); p != nil {
		p.calling = m.Calling
	}
}

// termIncomingAdmitDone alerts the local user once the gatekeeper admits an
// incoming call; rejection or timeout releases the caller.
func termIncomingAdmitDone(env *sim.Env, p *termRASPending, msg sim.Message) {
	t, call := p.t, p.call
	switch msg.(type) {
	case ACF:
		call.state = CallRinging
		t.ep.SendQ931(env, call.remoteSig, q931.Alerting{CallRef: call.wireRef})
		if t.cfg.Hooks.OnIncoming != nil {
			t.cfg.Hooks.OnIncoming(call.ref, p.calling)
		}
		if t.cfg.AutoAnswer {
			ref := call.ref
			env.After(t.cfg.AnswerDelay, func() { t.Answer(env, ref) })
		}
	case ARJ:
		// Step 2.5's failure arm: release the call.
		t.ep.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
			CallRef: call.wireRef, Cause: q931.CauseResourcesUnavail,
		})
		call.state = CallCleared
	case nil:
		// Admission never answered: release toward the caller.
		t.ep.SendQ931(env, call.remoteSig, q931.ReleaseComplete{
			CallRef: call.wireRef, Cause: q931.CauseRecoveryOnTimerExpiry,
		})
		call.state = CallCleared
	}
}

func (t *Terminal) startMedia(env *sim.Env, call *termCall) {
	if !t.cfg.Talk || call.sending {
		return
	}
	call.sending = true
	var tick func()
	tick = func() {
		if !call.sending || call.state != CallConnected {
			return
		}
		if call.remoteMed.Valid() {
			call.mediaSeq++
			p := rtp.Packet{
				PayloadType: rtp.PayloadTypeGSM,
				Seq:         call.mediaSeq,
				Timestamp:   rtp.TimestampAt(env.Now()),
				SSRC:        uint32(call.wireRef),
				Payload:     codec.NewFrame(env.Now(), uint32(call.mediaSeq)),
			}
			t.ep.SendRTP(env, call.remoteMed, p.Marshal())
		}
		env.After(t.cfg.FrameInterval, tick)
	}
	env.After(t.cfg.FrameInterval, tick)
}

func (t *Terminal) handleRTP(env *sim.Env, payload []byte) {
	p, err := rtp.Unmarshal(payload)
	if err != nil {
		return
	}
	gen, haveGen := codec.FrameTimestamp(p.Payload)
	t.Media.Receive(p, env.Now(), gen, haveGen)
}
