package h323

import (
	"net/netip"
	"testing"
	"time"

	"vgprs/internal/codec"
	"vgprs/internal/ipnet"
	"vgprs/internal/isup"
	"vgprs/internal/rtp"
	"vgprs/internal/sim"
)

// exchangeStub plays the PSTN exchange on the gateway's trunk side.
type exchangeStub struct {
	id       sim.NodeID
	acm, anm int
	rel      []isup.REL
	frames   int
}

func (e *exchangeStub) ID() sim.NodeID { return e.id }

func (e *exchangeStub) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	switch m := msg.(type) {
	case isup.ACM:
		e.acm++
	case isup.ANM:
		e.anm++
	case isup.REL:
		e.rel = append(e.rel, m)
		env.Send(e.id, from, isup.RLC{CIC: m.CIC, CallRef: m.CallRef})
	case isup.TrunkFrame:
		e.frames++
	}
}

// gwFixture: exchange - gateway - LAN(router) - GK + terminal.
type gwFixture struct {
	env      *sim.Env
	gw       *Gateway
	gk       *Gatekeeper
	term     *Terminal
	exchange *exchangeStub
	router   *ipnet.Router
}

// routerAdd attaches another host to the fixture LAN.
func (f *gwFixture) routerAdd(addr netip.Addr, node sim.NodeID) {
	f.router.AddHost(addr, node)
}

func newGWFixture(t *testing.T) *gwFixture {
	t.Helper()
	env := sim.NewEnv(1)
	dir := NewDirectory()
	gkAddr := ipnet.MustAddr("192.168.9.1")
	gwAddr := ipnet.MustAddr("192.168.9.2")
	termAddr := ipnet.MustAddr("192.168.9.10")

	router := ipnet.NewRouter("LAN")
	gk := NewGatekeeper(GatekeeperConfig{ID: "GK", Addr: gkAddr, Router: "LAN", Dir: dir})
	gw := NewGateway(GatewayConfig{ID: "GW", Addr: gwAddr, Router: "LAN", Gatekeeper: gkAddr, Dir: dir})
	term := NewTerminal(TerminalConfig{
		ID: "TERM", Alias: "044781234567", Addr: termAddr,
		Router: "LAN", Gatekeeper: gkAddr, Dir: dir,
		AutoAnswer: true, AnswerDelay: 50 * time.Millisecond, Talk: true,
	})
	exchange := &exchangeStub{id: "LE"}

	router.AddHost(gkAddr, "GK")
	router.AddHost(gwAddr, "GW")
	router.AddHost(termAddr, "TERM")

	for _, n := range []sim.Node{router, gk, gw, term, exchange} {
		env.AddNode(n)
	}
	env.Connect("LAN", "GK", "IP", time.Millisecond)
	env.Connect("LAN", "GW", "IP", time.Millisecond)
	env.Connect("LAN", "TERM", "IP", time.Millisecond)
	env.Connect("LE", "GW", "ISUP", time.Millisecond)

	term.Register(env)
	env.Run()
	if !term.Registered() {
		t.Fatal("terminal registration failed")
	}
	return &gwFixture{env: env, gw: gw, gk: gk, term: term, exchange: exchange, router: router}
}

func TestGatewayCompletesCallToRegisteredAlias(t *testing.T) {
	f := newGWFixture(t)
	f.env.Send("LE", "GW", isup.IAM{CIC: 3, CallRef: 500, Called: "044781234567", Calling: "85221110001"})
	f.env.RunUntil(f.env.Now() + 2*time.Second)

	if f.exchange.acm != 1 || f.exchange.anm != 1 {
		t.Fatalf("acm=%d anm=%d", f.exchange.acm, f.exchange.anm)
	}
	completed, refused := f.gw.Stats()
	if completed != 1 || refused != 0 {
		t.Fatalf("stats = %d/%d", completed, refused)
	}
	// Voice bridges: terminal RTP -> trunk frames, and trunk frames -> RTP.
	f.env.Send("LE", "GW", isup.TrunkFrame{CIC: 3, CallRef: 500, Seq: 1,
		Payload: codec.NewFrame(f.env.Now(), 1)})
	f.env.RunUntil(f.env.Now() + time.Second)
	if f.exchange.frames == 0 {
		t.Fatal("no downlink trunk frames from terminal RTP")
	}
	if f.term.Media.Received() == 0 {
		t.Fatal("terminal received no RTP from the trunk side")
	}
}

func TestGatewayRefusesUnknownAlias(t *testing.T) {
	f := newGWFixture(t)
	f.env.Send("LE", "GW", isup.IAM{CIC: 3, CallRef: 501, Called: "044799999999"})
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	if len(f.exchange.rel) != 1 || f.exchange.rel[0].Cause != isup.CauseUnallocatedNumber {
		t.Fatalf("rel = %+v", f.exchange.rel)
	}
	if _, refused := f.gw.Stats(); refused != 1 {
		t.Fatalf("refused = %d", refused)
	}
}

func TestGatewayTrunkRELClearsH323Leg(t *testing.T) {
	f := newGWFixture(t)
	f.env.Send("LE", "GW", isup.IAM{CIC: 3, CallRef: 502, Called: "044781234567"})
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	if f.term.ActiveCalls() != 1 {
		t.Fatalf("terminal calls = %d", f.term.ActiveCalls())
	}
	// The PSTN caller hangs up.
	f.env.Send("LE", "GW", isup.REL{CIC: 3, CallRef: 502, Cause: isup.CauseNormalClearing})
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	if f.term.ActiveCalls() != 0 {
		t.Fatal("terminal call not cleared")
	}
}

func TestGatewayTerminalHangupReleasesTrunk(t *testing.T) {
	f := newGWFixture(t)
	f.env.Send("LE", "GW", isup.IAM{CIC: 3, CallRef: 503, Called: "044781234567"})
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	refs := f.term.CallRefs()
	if len(refs) != 1 {
		t.Fatalf("refs = %v", refs)
	}
	if err := f.term.Hangup(f.env, refs[0]); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	if len(f.exchange.rel) != 1 {
		t.Fatalf("exchange rel = %+v", f.exchange.rel)
	}
}

func TestGatewayStrayRTPIgnored(t *testing.T) {
	f := newGWFixture(t)
	// RTP with no call must not crash or emit trunk frames.
	p := rtp.Packet{SSRC: 9999, Payload: codec.NewFrame(0, 1)}
	f.env.Send("LAN", "GW", ipnet.Packet{
		Src: ipnet.MustAddr("192.168.9.10"), Dst: ipnet.MustAddr("192.168.9.2"),
		Proto: ipnet.ProtoUDP, SrcPort: ipnet.PortRTP, DstPort: ipnet.PortRTP,
		Payload: p.Marshal(),
	})
	f.env.Run()
	if f.exchange.frames != 0 {
		t.Fatal("stray RTP produced trunk frames")
	}
}

func TestGatewayCallerAliasNotRequired(t *testing.T) {
	// The PSTN caller has no H.323 registration; admission must still
	// work (the gatekeeper translates the CALLED alias).
	f := newGWFixture(t)
	f.env.Send("LE", "GW", isup.IAM{CIC: 1, CallRef: 504, Called: "044781234567", Calling: "0000000000"})
	f.env.RunUntil(f.env.Now() + 2*time.Second)
	if completed, _ := f.gw.Stats(); completed != 1 {
		t.Fatalf("completed = %d", completed)
	}
}

// answeringExchange answers every IAM with ACM+ANM — a PSTN that always
// picks up, for driving the gateway's outbound direction.
type answeringExchange struct {
	id     sim.NodeID
	iam    int
	frames int
}

func (e *answeringExchange) ID() sim.NodeID { return e.id }

func (e *answeringExchange) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	switch m := msg.(type) {
	case isup.IAM:
		e.iam++
		env.Send(e.id, from, isup.ACM{CIC: m.CIC, CallRef: m.CallRef})
		env.Send(e.id, from, isup.ANM{CIC: m.CIC, CallRef: m.CallRef})
	case isup.REL:
		env.Send(e.id, from, isup.RLC{CIC: m.CIC, CallRef: m.CallRef})
	case isup.TrunkFrame:
		e.frames++
	}
}

// TestGatewayScopesCallRefsPerPeer is the gateway-side regression for the
// Q.931 call-reference collision: two endpoints place their *first* call
// (both use reference 1) toward PSTN numbers through the same gateway. The
// gateway must treat them as distinct calls — references are scoped per
// signalling connection — and connect both.
func TestGatewayScopesCallRefsPerPeer(t *testing.T) {
	env := sim.NewEnv(1)
	dir := NewDirectory()
	gkAddr := ipnet.MustAddr("192.168.9.1")
	gwAddr := ipnet.MustAddr("192.168.9.2")
	aAddr := ipnet.MustAddr("192.168.9.10")
	bAddr := ipnet.MustAddr("192.168.9.11")

	router := ipnet.NewRouter("LAN")
	gk := NewGatekeeper(GatekeeperConfig{
		ID: "GK", Addr: gkAddr, Router: "LAN", Dir: dir,
		PSTNGateway: gwAddr, PSTNPrefixes: []string{"8522"},
	})
	trunks := isup.NewTrunkGroup("GW<->LE", isup.TrunkLocal, 4)
	gw := NewGateway(GatewayConfig{
		ID: "GW", Addr: gwAddr, Router: "LAN", Gatekeeper: gkAddr, Dir: dir,
		Exchange: "LE", Trunks: trunks,
	})
	a := NewTerminal(TerminalConfig{ID: "TERM-A", Alias: "044781110001", Addr: aAddr,
		Router: "LAN", Gatekeeper: gkAddr, Dir: dir})
	b := NewTerminal(TerminalConfig{ID: "TERM-B", Alias: "044781110002", Addr: bAddr,
		Router: "LAN", Gatekeeper: gkAddr, Dir: dir})
	le := &answeringExchange{id: "LE"}

	router.AddHost(gkAddr, "GK")
	router.AddHost(gwAddr, "GW")
	router.AddHost(aAddr, "TERM-A")
	router.AddHost(bAddr, "TERM-B")
	for _, n := range []sim.Node{router, gk, gw, a, b, le} {
		env.AddNode(n)
	}
	env.Connect("LAN", "GK", "IP", time.Millisecond)
	env.Connect("LAN", "GW", "IP", time.Millisecond)
	env.Connect("LAN", "TERM-A", "IP", time.Millisecond)
	env.Connect("LAN", "TERM-B", "IP", time.Millisecond)
	env.Connect("LE", "GW", "ISUP", time.Millisecond)

	a.Register(env)
	b.Register(env)
	env.Run()

	refA, err := a.Call(env, "85221110001")
	if err != nil {
		t.Fatal(err)
	}
	refB, err := b.Call(env, "85221110002")
	if err != nil {
		t.Fatal(err)
	}
	if refA != refB {
		t.Fatalf("test premise broken: refs %d vs %d should collide", refA, refB)
	}
	env.Run()

	if le.iam != 2 {
		t.Fatalf("exchange saw %d IAMs, want 2", le.iam)
	}
	stA, _ := a.CallState(refA)
	stB, _ := b.CallState(refB)
	if stA != CallConnected || stB != CallConnected {
		t.Fatalf("states A=%v B=%v, want both connected", stA, stB)
	}
	if trunks.InUse() != 2 {
		t.Fatalf("trunks in use = %d, want 2", trunks.InUse())
	}

	// Both calls clear independently.
	if err := a.Hangup(env, refA); err != nil {
		t.Fatal(err)
	}
	env.Run()
	stB, _ = b.CallState(refB)
	if stB != CallConnected {
		t.Fatal("clearing A's call disturbed B's")
	}
	if trunks.InUse() != 1 {
		t.Fatalf("trunks in use = %d after one hangup", trunks.InUse())
	}
	if err := b.Hangup(env, refB); err != nil {
		t.Fatal(err)
	}
	env.Run()
	if trunks.InUse() != 0 {
		t.Fatal("trunk leaked")
	}
}

// TestGatewayTwoConcurrentInboundCalls runs two PSTN calls through the
// gateway to two different terminals at once and checks the media plane
// demuxes per call: each terminal's RTP reaches only its own trunk, and
// each trunk's frames reach only its own terminal.
func TestGatewayTwoConcurrentInboundCalls(t *testing.T) {
	f := newGWFixture(t)
	// Second terminal.
	bAddr := ipnet.MustAddr("192.168.9.11")
	b := NewTerminal(TerminalConfig{
		ID: "TERM-B", Alias: "044781234568", Addr: bAddr,
		Router: "LAN", Gatekeeper: ipnet.MustAddr("192.168.9.1"), Dir: nil,
		AutoAnswer: true, AnswerDelay: 50 * time.Millisecond,
	})
	f.env.AddNode(b)
	f.env.Connect("LAN", "TERM-B", "IP", time.Millisecond)
	// Router host registration for the new terminal.
	f.routerAdd(bAddr, "TERM-B")
	b.Register(f.env)
	f.env.Run()
	if !b.Registered() {
		t.Fatal("TERM-B registration failed")
	}

	f.env.Send("LE", "GW", isup.IAM{CIC: 3, CallRef: 500, Called: "044781234567", Calling: "85221110001"})
	f.env.Send("LE", "GW", isup.IAM{CIC: 4, CallRef: 501, Called: "044781234568", Calling: "85221110002"})
	f.env.RunUntil(f.env.Now() + 2*time.Second)

	completed, refused := f.gw.Stats()
	if completed != 2 || refused != 0 {
		t.Fatalf("stats = %d/%d, want 2/0", completed, refused)
	}

	// Trunk frames on CIC 4 must reach only TERM-B.
	aBefore, bBefore := f.term.Media.Received(), b.Media.Received()
	f.env.Send("LE", "GW", isup.TrunkFrame{CIC: 4, CallRef: 501, Seq: 1,
		Payload: codec.NewFrame(f.env.Now(), 1)})
	f.env.RunUntil(f.env.Now() + 500*time.Millisecond)
	if got := b.Media.Received() - bBefore; got != 1 {
		t.Fatalf("TERM-B received %d frames, want 1", got)
	}
	if got := f.term.Media.Received() - aBefore; got != 0 {
		t.Fatalf("TERM-A received %d frames for TERM-B's call", got)
	}
	// And TERM-A's RTP (Talk is on for TERM-A) keeps flowing to CIC 3
	// only: the exchange counts frames from both calls, so just require
	// growth without misrouting errors.
	if f.exchange.frames == 0 {
		t.Fatal("no trunk frames from terminal RTP")
	}
}
