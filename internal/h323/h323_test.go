package h323

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/ipnet"
	"vgprs/internal/sim"
	"vgprs/internal/trace"
)

func TestRASCodecRoundTrip(t *testing.T) {
	addr := ipnet.MustAddr("192.168.1.5")
	msgs := []sim.Message{
		RRQ{Seq: 1, Alias: "886912345678", SignalAddr: addr, SignalPort: 1720},
		RRQ{Seq: 2, Alias: "886912345678", SignalAddr: addr, SignalPort: 1720,
			KeepAlive: true, TTLSeconds: 120},
		RCF{Seq: 1, EndpointID: "ep-1"},
		RCF{Seq: 2, EndpointID: "ep-1", TTLSeconds: 60},
		RRJ{Seq: 1, Reason: RejectDuplicateAlias},
		URQ{Seq: 2, Alias: "886912345678"},
		UCF{Seq: 2},
		ARQ{Seq: 3, CallerAlias: "886912345678", CalledAlias: "85291234567", CallRef: 7, Answer: false},
		ARQ{Seq: 4, CallerAlias: "85291234567", CalledAlias: "886912345678", CallRef: 7, Answer: true},
		ACF{Seq: 3, SignalAddr: addr, SignalPort: 1720},
		ACF{Seq: 4},
		ARJ{Seq: 3, Reason: RejectCalledPartyNotRegistered},
		DRQ{Seq: 5, Alias: "886912345678", CallRef: 7},
		DRQ{Seq: 6, Alias: "886912345678", CallRef: 7, Peer: "85291110001"},
		DCF{Seq: 5},
		LRQ{Seq: 6, Alias: "886912345678"},
		LCF{Seq: 6, SignalAddr: addr, SignalPort: 1720},
		LRJ{Seq: 6, Reason: RejectCalledPartyNotRegistered},
	}
	for _, m := range msgs {
		b, err := MarshalRAS(m)
		if err != nil {
			t.Fatalf("MarshalRAS(%T): %v", m, err)
		}
		got, err := UnmarshalRAS(b)
		if err != nil {
			t.Fatalf("UnmarshalRAS(%T): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %#v -> %#v", m, got)
		}
	}
}

func TestRASCodecErrors(t *testing.T) {
	if _, err := UnmarshalRAS([]byte{0xEE, 0, 0, 0, 0}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("unknown opcode err = %v", err)
	}
	if _, err := UnmarshalRAS([]byte{opRRQ}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short err = %v", err)
	}
	b, err := MarshalRAS(DCF{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalRAS(append(b, 0)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("trailing err = %v", err)
	}
	if _, err := MarshalRAS(foreign{}); err == nil {
		t.Error("foreign type accepted")
	}
}

func TestRejectReasonStrings(t *testing.T) {
	if RejectDuplicateAlias.String() != "duplicate-alias" || RejectReason(99).String() != "RejectReason(99)" {
		t.Fatal("reason strings wrong")
	}
	if CallConnected.String() != "connected" || CallState(99).String() != "CallState(99)" {
		t.Fatal("state strings wrong")
	}
}

func TestRASRoundTripProperty(t *testing.T) {
	prop := func(seq uint32, ref uint16, answer bool) bool {
		m := ARQ{Seq: seq, CallerAlias: "886912345678", CalledAlias: "85291234567",
			CallRef: ref, Answer: answer}
		b, err := MarshalRAS(m)
		if err != nil {
			return false
		}
		got, err := UnmarshalRAS(b)
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type lanFixture struct {
	env    *sim.Env
	rec    *trace.Recorder
	gk     *Gatekeeper
	a, b   *Terminal
	router *ipnet.Router
	dir    *Directory
}

// newLAN builds an H.323 LAN: gatekeeper + two terminals behind one router.
func newLAN(t *testing.T, aCfg, bCfg TerminalConfig) *lanFixture {
	t.Helper()
	return newLANWithGK(t, nil, aCfg, bCfg)
}

// newLANWithGK is newLAN with a hook to adjust the gatekeeper's
// configuration (e.g. a registration TTL) before construction.
func newLANWithGK(t *testing.T, gkMutate func(*GatekeeperConfig), aCfg, bCfg TerminalConfig) *lanFixture {
	t.Helper()
	env := sim.NewEnv(1)
	rec := trace.NewRecorder()
	env.SetTracer(rec)
	dir := NewDirectory()

	gkAddr := ipnet.MustAddr("192.168.1.1")
	aAddr := ipnet.MustAddr("192.168.1.10")
	bAddr := ipnet.MustAddr("192.168.1.11")

	router := ipnet.NewRouter("LAN")
	gkCfg := GatekeeperConfig{ID: "GK", Addr: gkAddr, Router: "LAN", Dir: dir}
	if gkMutate != nil {
		gkMutate(&gkCfg)
	}
	gk := NewGatekeeper(gkCfg)

	aCfg.ID, aCfg.Alias, aCfg.Addr = "TERM-A", "85291110001", aAddr
	aCfg.Router, aCfg.Gatekeeper, aCfg.Dir = "LAN", gkAddr, dir
	bCfg.ID, bCfg.Alias, bCfg.Addr = "TERM-B", "85291110002", bAddr
	bCfg.Router, bCfg.Gatekeeper, bCfg.Dir = "LAN", gkAddr, dir
	a := NewTerminal(aCfg)
	b := NewTerminal(bCfg)

	dir.Bind(gkAddr, "GK")
	dir.Bind(aAddr, "TERM-A")
	dir.Bind(bAddr, "TERM-B")
	router.AddHost(gkAddr, "GK")
	router.AddHost(aAddr, "TERM-A")
	router.AddHost(bAddr, "TERM-B")

	for _, n := range []sim.Node{router, gk, a, b} {
		env.AddNode(n)
	}
	env.Connect("LAN", "GK", "IP", time.Millisecond)
	env.Connect("LAN", "TERM-A", "IP", time.Millisecond)
	env.Connect("LAN", "TERM-B", "IP", time.Millisecond)

	return &lanFixture{env: env, rec: rec, gk: gk, a: a, b: b, router: router, dir: dir}
}

func (f *lanFixture) registerBoth(t *testing.T) {
	t.Helper()
	f.a.Register(f.env)
	f.b.Register(f.env)
	f.env.Run()
	if !f.a.Registered() || !f.b.Registered() {
		t.Fatal("registration failed")
	}
}

func TestRegistrationCreatesTableEntry(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)
	if f.gk.Registered() != 2 {
		t.Fatalf("table entries = %d", f.gk.Registered())
	}
	reg, ok := f.gk.Lookup("85291110001")
	if !ok || reg.SignalAddr != ipnet.MustAddr("192.168.1.10") {
		t.Fatalf("registration = %+v/%v", reg, ok)
	}
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "RAS RRQ", From: "TERM-A", To: "GK", Iface: "RAS"},
		{Msg: "RAS RCF", From: "GK", To: "TERM-A", Iface: "RAS"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateAliasFromOtherAddressRejected(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)
	// An impostor at a new address claims A's alias.
	impostorAddr := ipnet.MustAddr("192.168.1.99")
	var rejected bool
	imp := NewTerminal(TerminalConfig{
		ID: "IMP", Alias: "85291110001", Addr: impostorAddr,
		Router: "LAN", Gatekeeper: ipnet.MustAddr("192.168.1.1"), Dir: f.dir,
		Hooks: TerminalHooks{OnRegisterFailed: func(RejectReason) { rejected = true }},
	})
	f.env.AddNode(imp)
	f.router.AddHost(impostorAddr, "IMP")
	f.env.Connect("LAN", "IMP", "IP", time.Millisecond)
	imp.Register(f.env)
	f.env.Run()
	if imp.Registered() || !rejected {
		t.Fatal("impostor registration accepted")
	}
}

func TestFullCallBetweenTerminals(t *testing.T) {
	var events []string
	f := newLAN(t,
		TerminalConfig{Talk: true,
			Hooks: TerminalHooks{
				OnAlerting:  func(uint16) { events = append(events, "a:alerting") },
				OnConnected: func(uint16) { events = append(events, "a:connected") },
				OnReleased:  func(uint16) { events = append(events, "a:released") },
			}},
		TerminalConfig{Talk: true, AutoAnswer: true, AnswerDelay: 100 * time.Millisecond,
			Hooks: TerminalHooks{
				OnIncoming: func(_ uint16, calling gsmid.MSISDN) {
					events = append(events, "b:incoming:"+string(calling))
				},
			}},
	)
	f.registerBoth(t)

	ref, err := f.a.Call(f.env, "85291110002")
	if err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 2*time.Second)

	if st, _ := f.a.CallState(ref); st != CallConnected {
		t.Fatalf("caller state = %v", st)
	}
	// Media flowed both ways.
	if f.a.Media.Received() == 0 || f.b.Media.Received() == 0 {
		t.Fatalf("media a=%d b=%d", f.a.Media.Received(), f.b.Media.Received())
	}
	// One-way delay is the 2 x 1 ms LAN path (terminal->router->peer).
	if d := f.a.Media.MeanDelay(); d != 2*time.Millisecond {
		t.Fatalf("mean one-way delay = %v, want 2ms", d)
	}

	if err := f.a.Hangup(f.env, ref); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + time.Second)
	if f.a.ActiveCalls() != 0 || f.b.ActiveCalls() != 0 {
		t.Fatalf("active calls a=%d b=%d", f.a.ActiveCalls(), f.b.ActiveCalls())
	}

	// The signalling trace follows the paper's H.323 message order.
	if err := f.rec.ExpectSequence([]trace.ExpectStep{
		{Msg: "RAS ARQ", From: "TERM-A", To: "GK"},
		{Msg: "RAS ACF", From: "GK", To: "TERM-A"},
		{Msg: "Q.931 Setup", From: "TERM-A", To: "TERM-B"},
		{Msg: "Q.931 Call Proceeding", From: "TERM-B", To: "TERM-A"},
		{Msg: "RAS ARQ", From: "TERM-B", To: "GK"},
		{Msg: "RAS ACF", From: "GK", To: "TERM-B"},
		{Msg: "Q.931 Alerting", From: "TERM-B", To: "TERM-A"},
		{Msg: "Q.931 Connect", From: "TERM-B", To: "TERM-A"},
		{Msg: "Q.931 Release Complete", From: "TERM-A", To: "TERM-B"},
		{Msg: "RAS DRQ"},
		{Msg: "RAS DCF"},
	}); err != nil {
		t.Fatal(err)
	}

	// Charging record closed (paper step 3.3).
	recs := f.gk.CallRecords()
	if len(recs) != 1 || !recs[0].Ended || recs[0].EndedAt <= recs[0].AdmittedAt {
		t.Fatalf("call records = %+v", recs)
	}
}

func TestCallToUnregisteredAliasRejected(t *testing.T) {
	var rejectedRef uint16
	var reason RejectReason
	f := newLAN(t, TerminalConfig{
		Hooks: TerminalHooks{OnRejected: func(ref uint16, r RejectReason) {
			rejectedRef, reason = ref, r
		}},
	}, TerminalConfig{})
	f.registerBoth(t)
	ref, err := f.a.Call(f.env, "19998887777")
	if err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if rejectedRef != ref || reason != RejectCalledPartyNotRegistered {
		t.Fatalf("rejection = ref %d reason %v", rejectedRef, reason)
	}
	if st, _ := f.a.CallState(ref); st != CallCleared {
		t.Fatalf("state = %v", st)
	}
	if _, rejects := f.gk.Admissions(); rejects != 1 {
		t.Fatalf("rejects = %d", rejects)
	}
}

func TestCallBeforeRegistrationFails(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	if _, err := f.a.Call(f.env, "85291110002"); err == nil {
		t.Fatal("call before registration accepted")
	}
}

func TestCalleeHangupClearsCaller(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{AutoAnswer: true})
	f.registerBoth(t)
	ref, err := f.a.Call(f.env, "85291110002")
	if err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	// B answers instantly; find B's reference (same CallRef rides the wire).
	if err := f.b.Hangup(f.env, ref); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if st, _ := f.a.CallState(ref); st != CallCleared {
		t.Fatalf("caller state after callee hangup = %v", st)
	}
}

func TestLocationRequest(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)

	// Drive LRQ directly at the gatekeeper (the gateway's Fig 8 probe).
	probe := &rawProbe{id: "PROBE", addr: ipnet.MustAddr("192.168.1.50")}
	f.env.AddNode(probe)
	f.router.AddHost(probe.addr, "PROBE")
	f.env.Connect("LAN", "PROBE", "IP", time.Millisecond)

	body, err := MarshalRAS(LRQ{Seq: 9, Alias: "85291110001"})
	if err != nil {
		t.Fatal(err)
	}
	f.env.Send("PROBE", "LAN", ipnet.Packet{
		Src: probe.addr, Dst: ipnet.MustAddr("192.168.1.1"),
		Proto: ipnet.ProtoUDP, SrcPort: ipnet.PortRAS, DstPort: ipnet.PortRAS,
		Payload: body,
	})
	f.env.Run()
	lcf, ok := probe.lastRAS.(LCF)
	if !ok || lcf.SignalAddr != ipnet.MustAddr("192.168.1.10") {
		t.Fatalf("LRQ answer = %#v", probe.lastRAS)
	}

	// Unknown alias gets LRJ.
	body, err = MarshalRAS(LRQ{Seq: 10, Alias: "10000000000"})
	if err != nil {
		t.Fatal(err)
	}
	f.env.Send("PROBE", "LAN", ipnet.Packet{
		Src: probe.addr, Dst: ipnet.MustAddr("192.168.1.1"),
		Proto: ipnet.ProtoUDP, SrcPort: ipnet.PortRAS, DstPort: ipnet.PortRAS,
		Payload: body,
	})
	f.env.Run()
	if _, ok := probe.lastRAS.(LRJ); !ok {
		t.Fatalf("unknown alias answer = %#v", probe.lastRAS)
	}
}

func TestUnregister(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)
	body, err := MarshalRAS(URQ{Seq: 99, Alias: "85291110001"})
	if err != nil {
		t.Fatal(err)
	}
	f.env.Send("TERM-A", "LAN", ipnet.Packet{
		Src: ipnet.MustAddr("192.168.1.10"), Dst: ipnet.MustAddr("192.168.1.1"),
		Proto: ipnet.ProtoUDP, SrcPort: ipnet.PortRAS, DstPort: ipnet.PortRAS,
		Payload: body,
	})
	f.env.Run()
	if f.gk.Registered() != 1 {
		t.Fatalf("table entries after URQ = %d", f.gk.Registered())
	}
}

// rawProbe records decoded RAS answers.
type rawProbe struct {
	id      sim.NodeID
	addr    netip.Addr
	lastRAS sim.Message
}

func (p *rawProbe) ID() sim.NodeID { return p.id }

func (p *rawProbe) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	pkt, ok := msg.(ipnet.Packet)
	if !ok {
		return
	}
	if m, err := UnmarshalRAS(pkt.Payload); err == nil {
		p.lastRAS = m
	}
}

type foreign struct{}

func (foreign) Name() string { return "X" }

func TestCallerCancelsBeforeAnswer(t *testing.T) {
	// B rings for a long time; A abandons during alerting.
	f := newLAN(t, TerminalConfig{}, TerminalConfig{AutoAnswer: true, AnswerDelay: 10 * time.Second})
	f.registerBoth(t)
	ref, err := f.a.Call(f.env, "85291110002")
	if err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + time.Second)
	if st, _ := f.a.CallState(ref); st != CallAlerting {
		t.Fatalf("caller state = %v", st)
	}
	if err := f.a.Hangup(f.env, ref); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + time.Second)
	if f.a.ActiveCalls() != 0 || f.b.ActiveCalls() != 0 {
		t.Fatalf("calls a=%d b=%d after cancel", f.a.ActiveCalls(), f.b.ActiveCalls())
	}
	// The ringing callee never answers later (its answer timer finds the
	// call cleared).
	f.env.RunUntil(f.env.Now() + 15*time.Second)
	if f.b.ActiveCalls() != 0 {
		t.Fatal("abandoned call came back to life")
	}
}

func TestHangupUnknownRefFails(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)
	if err := f.a.Hangup(f.env, 999); err == nil {
		t.Fatal("hangup of unknown ref accepted")
	}
}

// TestRegistrationTTLExpires covers the H.225 timeToLive behaviour: a
// registration that is not refreshed lapses, stops resolving for location
// and admission, and a late keepalive is told to register fully.
func TestRegistrationTTLExpires(t *testing.T) {
	f := newLANWithGK(t, func(cfg *GatekeeperConfig) {
		cfg.RegistrationTTL = 10 * time.Second
	}, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)

	reg, ok := f.gk.Lookup("85291110001")
	if !ok {
		t.Fatal("terminal A not registered")
	}
	if reg.ExpiresAt == 0 {
		t.Fatal("TTL-granting gatekeeper recorded no expiry")
	}

	// Past the TTL, admission to the lapsed callee is rejected.
	f.env.RunUntil(f.env.Now() + 15*time.Second)
	if _, err := f.a.Call(f.env, "85291110002"); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if f.b.ActiveCalls() != 0 {
		t.Fatal("call reached an endpoint whose registration expired")
	}
	if _, rejected := f.gk.Admissions(); rejected == 0 {
		t.Fatal("no admission rejection counted")
	}
	if n := f.gk.SweepExpired(f.env.Now()); n == 0 {
		t.Fatal("sweep found nothing to expire")
	}
	if f.gk.Registered() != 0 {
		t.Fatalf("%d registrations survive the sweep", f.gk.Registered())
	}
}

// TestKeepAliveHoldsRegistration runs both terminals with periodic
// keepalive refreshes under a TTL-enforcing gatekeeper: the rows stay live
// well past several lifetimes, and calls still connect.
func TestKeepAliveHoldsRegistration(t *testing.T) {
	f := newLANWithGK(t, func(cfg *GatekeeperConfig) {
		cfg.RegistrationTTL = 10 * time.Second
	}, TerminalConfig{AutoAnswer: true}, TerminalConfig{AutoAnswer: true})
	f.registerBoth(t)
	f.a.StartKeepAlive(f.env, 4*time.Second)
	f.b.StartKeepAlive(f.env, 4*time.Second)

	f.env.RunUntil(f.env.Now() + 60*time.Second)
	if n := f.gk.SweepExpired(f.env.Now()); n != 0 {
		t.Fatalf("%d registrations lapsed despite keepalives", n)
	}
	if _, err := f.a.Call(f.env, "85291110002"); err != nil {
		t.Fatal(err)
	}
	f.env.RunUntil(f.env.Now() + 5*time.Second)
	if f.b.ActiveCalls() != 1 {
		t.Fatal("call failed after 6 keepalive cycles")
	}
}

// TestKeepAliveRecoversLostRow makes the gatekeeper lose a row mid-life (a
// sweep after expiry, e.g. a gatekeeper restart): the next keepalive is
// answered with "full registration required" and the terminal re-registers
// on its own.
func TestKeepAliveRecoversLostRow(t *testing.T) {
	f := newLANWithGK(t, func(cfg *GatekeeperConfig) {
		cfg.RegistrationTTL = 30 * time.Second
	}, TerminalConfig{}, TerminalConfig{})
	f.registerBoth(t)
	// Keepalive slower than the TTL: the row WILL lapse between refreshes.
	f.a.StartKeepAlive(f.env, 45*time.Second)

	f.env.RunUntil(f.env.Now() + 100*time.Second)
	if _, ok := f.gk.Lookup("85291110001"); !ok {
		t.Fatal("terminal A did not recover its registration")
	}
	reg, _ := f.gk.Lookup("85291110001")
	if f.env.Now() >= reg.ExpiresAt {
		t.Fatal("recovered registration is already expired")
	}
}

// TestTerminalScopesCallRefsPerPeer: two callers place their first call
// (both use Q.931 reference 1) to the same terminal. References are scoped
// per signalling connection, so the callee must hold two distinct calls,
// answer both, and clear them independently.
func TestTerminalScopesCallRefsPerPeer(t *testing.T) {
	f := newLAN(t, TerminalConfig{}, TerminalConfig{})
	// Third terminal: the callee, auto-answering.
	cAddr := ipnet.MustAddr("192.168.1.12")
	c := NewTerminal(TerminalConfig{
		ID: "TERM-C", Alias: "85291110003", Addr: cAddr,
		Router: "LAN", Gatekeeper: ipnet.MustAddr("192.168.1.1"), Dir: f.dir,
		AutoAnswer: true, AnswerDelay: 10 * time.Millisecond,
	})
	f.dir.Bind(cAddr, "TERM-C")
	f.router.AddHost(cAddr, "TERM-C")
	f.env.AddNode(c)
	f.env.Connect("LAN", "TERM-C", "IP", time.Millisecond)
	c.Register(f.env)
	f.registerBoth(t)

	refA, err := f.a.Call(f.env, "85291110003")
	if err != nil {
		t.Fatal(err)
	}
	refB, err := f.b.Call(f.env, "85291110003")
	if err != nil {
		t.Fatal(err)
	}
	if refA != refB {
		t.Fatalf("test premise broken: refs %d vs %d should collide", refA, refB)
	}
	f.env.Run()

	if c.ActiveCalls() != 2 {
		t.Fatalf("callee holds %d calls, want 2", c.ActiveCalls())
	}
	stA, _ := f.a.CallState(refA)
	stB, _ := f.b.CallState(refB)
	if stA != CallConnected || stB != CallConnected {
		t.Fatalf("states A=%v B=%v", stA, stB)
	}

	// Clearing one caller's call must not disturb the other.
	if err := f.a.Hangup(f.env, refA); err != nil {
		t.Fatal(err)
	}
	f.env.Run()
	if c.ActiveCalls() != 1 {
		t.Fatalf("callee holds %d calls after one hangup, want 1", c.ActiveCalls())
	}
	stB, _ = f.b.CallState(refB)
	if stB != CallConnected {
		t.Fatal("clearing A's call disturbed B's")
	}

	// The gatekeeper charged two distinct records despite the shared
	// reference, and only A's is closed.
	var open, ended int
	for _, rec := range f.gk.CallRecords() {
		if rec.Ended {
			ended++
		} else {
			open++
		}
	}
	if ended != 1 || open != 1 {
		t.Fatalf("charging records: %d ended, %d open; want 1/1", ended, open)
	}
}
