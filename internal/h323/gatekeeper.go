package h323

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// GatekeeperConfig parameterises a gatekeeper node.
type GatekeeperConfig struct {
	ID sim.NodeID
	// Addr is the gatekeeper's IP address on the H.323 LAN.
	Addr netip.Addr
	// Router is the LAN router node the gatekeeper is attached to.
	Router sim.NodeID
	// Dir resolves peer addresses for tracing.
	Dir *Directory

	// HLR, when set together with RequireIMSI, makes the gatekeeper
	// behave like the (non-standard) TR 23.923 gatekeeper: it resolves
	// and memorizes the subscriber's IMSI over GSM MAP before confirming
	// each registration. A standard gatekeeper (the vGPRS configuration)
	// leaves both unset and never touches MAP — the paper's §6
	// "modifications to the existing networks" contrast.
	HLR         sim.NodeID
	RequireIMSI bool
	// MobilePrefixes limits the IMSI requirement to aliases in the PLMN's
	// number ranges; fixed-network endpoints register normally.
	MobilePrefixes []string
	// MAPTimeout bounds HLR dialogues in the TR mode. Zero means 5 s.
	MAPTimeout time.Duration

	// PSTNGateway, when valid, receives admission for called aliases that
	// are not registered endpoints but match a PSTNPrefix — the standard
	// H.323 gateway-prefix routing that lets an MS call "a traditional
	// telephone set in the PSTN, connected indirectly through the H.323
	// network" (paper §4).
	PSTNGateway netip.Addr
	// PSTNPrefixes are the number ranges routed to the gateway. Empty
	// with a valid PSTNGateway means every unregistered alias routes
	// there.
	PSTNPrefixes []string

	// RegistrationTTL, when positive, expires registrations that are not
	// refreshed (H.225 timeToLive): RCFs grant this lifetime, expired
	// rows stop resolving, and keepalive RRQs for them are answered with
	// "full registration required". Zero keeps registrations forever.
	RegistrationTTL time.Duration
}

// Registration is one row of the address-translation table (paper step 1.5:
// "the GK creates an entry for the MS in the address translation table,
// which stores the (IP address, MSISDN) pair").
type Registration struct {
	Alias      gsmid.MSISDN
	SignalAddr netip.Addr
	SignalPort uint16
	EndpointID string
	// ExpiresAt is the virtual time the registration lapses; zero means
	// it never does.
	ExpiresAt time.Duration
}

// gkCallKey identifies a charging record: the call reference alone is not
// unique (references are scoped to the originating endpoint), so the
// caller's alias disambiguates.
type gkCallKey struct {
	caller gsmid.MSISDN
	ref    uint16
}

// CallRecord is the per-call accounting row the gatekeeper keeps for
// charging (paper step 3.3).
type CallRecord struct {
	Caller     gsmid.MSISDN
	Called     gsmid.MSISDN
	CallRef    uint16
	AdmittedAt time.Duration
	EndedAt    time.Duration
	Ended      bool
}

// Gatekeeper is a standard H.323 gatekeeper: registration, address
// translation, call admission, location queries, and disengage accounting.
// Deliberately: it has no GSM MAP interface and never sees an IMSI — the
// architectural property the paper's §6 contrasts with TR 23.923 and that
// test C4 audits.
type Gatekeeper struct {
	cfg GatekeeperConfig
	ep  *Endpoint
	dm  *ss7.DialogueManager

	mu      sync.Mutex
	table   map[gsmid.MSISDN]*Registration
	calls   map[gkCallKey]*CallRecord
	imsis   map[gsmid.MSISDN]gsmid.IMSI // TR 23.923 mode only
	nextEP  int
	admits  uint64
	rejects uint64
}

var _ sim.Node = (*Gatekeeper)(nil)

// NewGatekeeper returns an empty gatekeeper.
func NewGatekeeper(cfg GatekeeperConfig) *Gatekeeper {
	if cfg.MAPTimeout == 0 {
		cfg.MAPTimeout = 5 * time.Second
	}
	gk := &Gatekeeper{
		cfg:   cfg,
		dm:    ss7.NewDialogueManager(),
		table: make(map[gsmid.MSISDN]*Registration),
		calls: make(map[gkCallKey]*CallRecord),
		imsis: make(map[gsmid.MSISDN]gsmid.IMSI),
	}
	gk.ep = &Endpoint{
		Node: cfg.ID,
		Addr: cfg.Addr,
		Dir:  cfg.Dir,
		Send: func(env *sim.Env, pkt ipnet.Packet) {
			env.Send(cfg.ID, cfg.Router, pkt)
		},
	}
	return gk
}

// ID implements sim.Node.
func (g *Gatekeeper) ID() sim.NodeID { return g.cfg.ID }

// Lookup returns the registration for an alias.
func (g *Gatekeeper) Lookup(alias gsmid.MSISDN) (Registration, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	reg, ok := g.table[alias]
	if !ok {
		return Registration{}, false
	}
	return *reg, true
}

// Registered returns the number of table entries.
func (g *Gatekeeper) Registered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.table)
}

// CallRecords returns a copy of the charging records (paper step 3.3).
func (g *Gatekeeper) CallRecords() []CallRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]CallRecord, 0, len(g.calls))
	for _, c := range g.calls {
		out = append(out, *c)
	}
	return out
}

// Admissions returns (admitted, rejected) counts.
func (g *Gatekeeper) Admissions() (admitted, rejected uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admits, g.rejects
}

// KnownIMSIs returns how many IMSIs the gatekeeper has memorized — zero for
// a standard gatekeeper; one per subscriber in the TR 23.923 mode. This is
// the C4 experiment's headline counter.
func (g *Gatekeeper) KnownIMSIs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.imsis)
}

// Receive implements sim.Node.
func (g *Gatekeeper) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	if ack, isMAP := msg.(sigmap.SendIMSIAck); isMAP {
		g.dm.Resolve(ack.Invoke, msg)
		return
	}
	pkt, ok := msg.(ipnet.Packet)
	if !ok {
		return
	}
	in, ok := g.ep.Classify(pkt)
	if !ok || in.RAS == nil {
		return
	}
	switch m := in.RAS.(type) {
	case RRQ:
		if g.cfg.RequireIMSI && g.cfg.HLR != "" && g.isMobileAlias(m.Alias) {
			g.resolveIMSIThen(env, pkt.Src, m)
			return
		}
		g.handleRRQ(env, pkt.Src, m)
	case URQ:
		g.mu.Lock()
		if reg, exists := g.table[m.Alias]; exists &&
			(!m.SignalAddr.IsValid() || reg.SignalAddr == m.SignalAddr) {
			delete(g.table, m.Alias)
		}
		g.mu.Unlock()
		g.ep.SendRAS(env, pkt.Src, UCF{Seq: m.Seq})
	case ARQ:
		g.handleARQ(env, pkt.Src, m)
	case DRQ:
		g.mu.Lock()
		if rec, exists := g.calls[gkCallKey{m.Alias, m.CallRef}]; exists && !rec.Ended {
			// The caller disengaging: direct hit.
			rec.Ended = true
			rec.EndedAt = env.Now()
		} else if m.Peer != "" {
			// The called side disengaging, naming the caller. The key is
			// exact; if the caller already disengaged there is nothing
			// further to close.
			if rec, exists := g.calls[gkCallKey{m.Peer, m.CallRef}]; exists && !rec.Ended {
				rec.Ended = true
				rec.EndedAt = env.Now()
			}
		} else {
			// A gateway or legacy endpoint without a peer alias: find the
			// open record for this reference.
			for _, rec := range g.calls {
				if rec.CallRef == m.CallRef && !rec.Ended &&
					(m.Alias == "" || rec.Called == m.Alias) {
					rec.Ended = true
					rec.EndedAt = env.Now()
					break
				}
			}
		}
		g.mu.Unlock()
		g.ep.SendRAS(env, pkt.Src, DCF{Seq: m.Seq})
	case LRQ:
		g.mu.Lock()
		reg, exists := g.lookupLive(m.Alias, env.Now())
		g.mu.Unlock()
		if !exists {
			g.ep.SendRAS(env, pkt.Src, LRJ{Seq: m.Seq, Reason: RejectCalledPartyNotRegistered})
			return
		}
		g.ep.SendRAS(env, pkt.Src, LCF{Seq: m.Seq, SignalAddr: reg.SignalAddr, SignalPort: reg.SignalPort})
	}
}

// isMobileAlias reports whether an alias falls in the PLMN number ranges.
// With no prefixes configured, every alias counts as mobile.
func (g *Gatekeeper) isMobileAlias(alias gsmid.MSISDN) bool {
	if len(g.cfg.MobilePrefixes) == 0 {
		return true
	}
	for _, p := range g.cfg.MobilePrefixes {
		if strings.HasPrefix(string(alias), p) {
			return true
		}
	}
	return false
}

// resolveIMSIThen is the TR 23.923 registration path: the gatekeeper
// queries the HLR over GSM MAP, memorizes the IMSI, and only then confirms.
func (g *Gatekeeper) resolveIMSIThen(env *sim.Env, src netip.Addr, m RRQ) {
	invoke := g.dm.Invoke(env, g.cfg.MAPTimeout, func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.SendIMSIAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone {
			g.ep.SendRAS(env, src, RRJ{Seq: m.Seq, Reason: RejectGenericData})
			return
		}
		g.mu.Lock()
		g.imsis[m.Alias] = ack.IMSI
		g.mu.Unlock()
		g.handleRRQ(env, src, m)
	})
	env.Send(g.cfg.ID, g.cfg.HLR, sigmap.SendIMSI{Invoke: invoke, MSISDN: m.Alias})
}

func (g *Gatekeeper) handleRRQ(env *sim.Env, src netip.Addr, m RRQ) {
	g.mu.Lock()
	existing, dup := g.table[m.Alias]
	if dup && g.expired(existing, env.Now()) {
		delete(g.table, m.Alias)
		existing, dup = nil, false
	}
	// A keepalive refresh presumes the gatekeeper still holds the row;
	// if it lapsed (or never existed), demand a full registration.
	if m.KeepAlive && (!dup || existing.SignalAddr != m.SignalAddr) {
		g.mu.Unlock()
		g.ep.SendRAS(env, src, RRJ{Seq: m.Seq, Reason: RejectFullRegistrationRequired})
		return
	}
	// Re-registration from the same transport address refreshes the row;
	// a different address claiming a registered alias is rejected.
	if dup && existing.SignalAddr != m.SignalAddr {
		g.mu.Unlock()
		g.ep.SendRAS(env, src, RRJ{Seq: m.Seq, Reason: RejectDuplicateAlias})
		return
	}
	granted := g.grantTTL(m.TTLSeconds)
	var epID string
	if dup {
		existing.SignalPort = m.SignalPort
		existing.ExpiresAt = expiryAt(env.Now(), granted)
		epID = existing.EndpointID
	} else {
		g.nextEP++
		epID = fmt.Sprintf("ep-%d", g.nextEP)
		g.table[m.Alias] = &Registration{
			Alias: m.Alias, SignalAddr: m.SignalAddr, SignalPort: m.SignalPort,
			EndpointID: epID, ExpiresAt: expiryAt(env.Now(), granted),
		}
	}
	g.mu.Unlock()
	g.ep.SendRAS(env, src, RCF{Seq: m.Seq, EndpointID: epID, TTLSeconds: granted})
}

// grantTTL computes the lifetime an RCF grants, in seconds: the
// gatekeeper's configured TTL, shortened further if the endpoint asked for
// less. Zero means no expiry is in force.
func (g *Gatekeeper) grantTTL(requested uint16) uint16 {
	if g.cfg.RegistrationTTL <= 0 {
		return 0
	}
	granted := uint16(g.cfg.RegistrationTTL / time.Second)
	if granted == 0 {
		granted = 1
	}
	if requested > 0 && requested < granted {
		granted = requested
	}
	return granted
}

func expiryAt(now time.Duration, ttlSeconds uint16) time.Duration {
	if ttlSeconds == 0 {
		return 0
	}
	return now + time.Duration(ttlSeconds)*time.Second
}

// expired reports whether the row has lapsed at the given virtual time.
func (g *Gatekeeper) expired(r *Registration, now time.Duration) bool {
	return r.ExpiresAt != 0 && now >= r.ExpiresAt
}

// lookupLive returns the registration for alias unless it has expired, in
// which case the row is dropped (lazy expiry — the gatekeeper never has to
// keep the event queue alive with a sweep timer).
func (g *Gatekeeper) lookupLive(alias gsmid.MSISDN, now time.Duration) (*Registration, bool) {
	r, ok := g.table[alias]
	if !ok {
		return nil, false
	}
	if g.expired(r, now) {
		delete(g.table, alias)
		return nil, false
	}
	return r, true
}

// SweepExpired drops every lapsed registration at the given virtual time
// and reports how many went. Expiry is otherwise lazy; this exists for
// operators (and tests) that want the table compacted eagerly.
func (g *Gatekeeper) SweepExpired(now time.Duration) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for alias, r := range g.table {
		if g.expired(r, now) {
			delete(g.table, alias)
			n++
		}
	}
	return n
}

func (g *Gatekeeper) handleARQ(env *sim.Env, src netip.Addr, m ARQ) {
	var response sim.Message

	g.mu.Lock()
	if m.Answer {
		// Admission for an incoming call: the callee asks permission to
		// accept; no translation needed.
		if _, ok := g.lookupLive(m.CallerAlias, env.Now()); ok {
			g.admits++
			response = ACF{Seq: m.Seq}
		} else {
			g.rejects++
			response = ARJ{Seq: m.Seq, Reason: RejectCallerNotRegistered}
		}
	} else if dest, ok := g.lookupLive(m.CalledAlias, env.Now()); ok {
		g.admits++
		key := gkCallKey{m.CallerAlias, m.CallRef}
		if _, exists := g.calls[key]; !exists {
			g.calls[key] = &CallRecord{
				Caller: m.CallerAlias, Called: m.CalledAlias,
				CallRef: m.CallRef, AdmittedAt: env.Now(),
			}
		}
		response = ACF{Seq: m.Seq, SignalAddr: dest.SignalAddr, SignalPort: dest.SignalPort}
	} else if g.routesToPSTN(m.CalledAlias) {
		g.admits++
		key := gkCallKey{m.CallerAlias, m.CallRef}
		if _, exists := g.calls[key]; !exists {
			g.calls[key] = &CallRecord{
				Caller: m.CallerAlias, Called: m.CalledAlias,
				CallRef: m.CallRef, AdmittedAt: env.Now(),
			}
		}
		response = ACF{Seq: m.Seq, SignalAddr: g.cfg.PSTNGateway, SignalPort: ipnet.PortQ931}
	} else {
		g.rejects++
		response = ARJ{Seq: m.Seq, Reason: RejectCalledPartyNotRegistered}
	}
	g.mu.Unlock()

	g.ep.SendRAS(env, src, response)
}

// routesToPSTN reports whether an unregistered called alias should be
// admitted toward the configured PSTN gateway (callers hold g.mu).
func (g *Gatekeeper) routesToPSTN(alias gsmid.MSISDN) bool {
	if !g.cfg.PSTNGateway.IsValid() {
		return false
	}
	if len(g.cfg.PSTNPrefixes) == 0 {
		return true
	}
	for _, p := range g.cfg.PSTNPrefixes {
		if strings.HasPrefix(string(alias), p) {
			return true
		}
	}
	return false
}
