package h323

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/ipnet"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
	"vgprs/internal/ss7"
)

// GatekeeperConfig parameterises a gatekeeper node.
type GatekeeperConfig struct {
	ID sim.NodeID
	// Addr is the gatekeeper's IP address on the H.323 LAN.
	Addr netip.Addr
	// Router is the LAN router node the gatekeeper is attached to.
	Router sim.NodeID
	// Dir resolves peer addresses for tracing.
	Dir *Directory

	// HLR, when set together with RequireIMSI, makes the gatekeeper
	// behave like the (non-standard) TR 23.923 gatekeeper: it resolves
	// and memorizes the subscriber's IMSI over GSM MAP before confirming
	// each registration. A standard gatekeeper (the vGPRS configuration)
	// leaves both unset and never touches MAP — the paper's §6
	// "modifications to the existing networks" contrast.
	HLR         sim.NodeID
	RequireIMSI bool
	// MobilePrefixes limits the IMSI requirement to aliases in the PLMN's
	// number ranges; fixed-network endpoints register normally.
	MobilePrefixes []string
	// MAPTimeout bounds HLR dialogues in the TR mode. Zero means 5 s.
	MAPTimeout time.Duration

	// PSTNGateway, when valid, receives admission for called aliases that
	// are not registered endpoints but match a PSTNPrefix — the standard
	// H.323 gateway-prefix routing that lets an MS call "a traditional
	// telephone set in the PSTN, connected indirectly through the H.323
	// network" (paper §4).
	PSTNGateway netip.Addr
	// PSTNPrefixes are the number ranges routed to the gateway. Empty
	// with a valid PSTNGateway means every unregistered alias routes
	// there.
	PSTNPrefixes []string

	// RegistrationTTL, when positive, expires registrations that are not
	// refreshed (H.225 timeToLive): RCFs grant this lifetime, expired
	// rows stop resolving, and keepalive RRQs for them are answered with
	// "full registration required". Zero keeps registrations forever.
	RegistrationTTL time.Duration
}

// Registration is the public copy-out of one address-translation row
// (paper step 1.5: "the GK creates an entry for the MS in the address
// translation table, which stores the (IP address, MSISDN) pair").
type Registration struct {
	Alias      gsmid.MSISDN
	SignalAddr netip.Addr
	SignalPort uint16
	EndpointID string
	// ExpiresAt is the virtual time the registration lapses; zero means
	// it never does.
	ExpiresAt time.Duration
}

// gkReg is the resident form of a registration: pointer-free (the alias is
// BCD-packed, the endpoint ID a counter rendered only on copy-out) so a
// million rows sit in chunked slabs with nothing for the GC to trace.
type gkReg struct {
	alias      gsmid.PackedDigits
	signalAddr netip.Addr
	signalPort uint16
	epID       uint32
	expiresAt  time.Duration
}

func (r *gkReg) public() Registration {
	return Registration{
		Alias: r.alias.MSISDN(), SignalAddr: r.signalAddr, SignalPort: r.signalPort,
		EndpointID: fmt.Sprintf("ep-%d", r.epID), ExpiresAt: r.expiresAt,
	}
}

// gkCallKey identifies a charging record: the call reference alone is not
// unique (references are scoped to the originating endpoint), so the
// caller's alias disambiguates.
type gkCallKey struct {
	caller gsmid.PackedDigits
	ref    uint16
}

func hashCallKey(k gkCallKey) uint64 {
	return slab.HashUint64(k.caller.Hash() ^ uint64(k.ref))
}

// CallRecord is the public copy-out of the per-call accounting row the
// gatekeeper keeps for charging (paper step 3.3).
type CallRecord struct {
	Caller     gsmid.MSISDN
	Called     gsmid.MSISDN
	CallRef    uint16
	AdmittedAt time.Duration
	EndedAt    time.Duration
	Ended      bool
}

// gkCall is the resident (pointer-free) charging row.
type gkCall struct {
	caller     gsmid.PackedDigits
	called     gsmid.PackedDigits
	ref        uint16
	admittedAt time.Duration
	endedAt    time.Duration
	ended      bool
}

// gkIMSI is one memorized (alias, IMSI) pair — TR 23.923 mode only.
type gkIMSI struct {
	alias gsmid.PackedDigits
	imsi  gsmid.PackedDigits
}

const gkShards = 8

// Gatekeeper is a standard H.323 gatekeeper: registration, address
// translation, call admission, location queries, and disengage accounting.
// Deliberately: it has no GSM MAP interface and never sees an IMSI — the
// architectural property the paper's §6 contrasts with TR 23.923 and that
// test C4 audits.
//
// All three per-subscriber tables (registrations, charging records, and the
// TR-mode IMSI cache) live in sharded value slabs reached through
// open-addressing indexes keyed by BCD-packed aliases, the same treatment
// the core's VLR/HLR/SGSN stores use: GSM-scale populations cost the GC
// nothing and iteration order is deterministic.
type Gatekeeper struct {
	cfg GatekeeperConfig
	ep  *Endpoint
	dm  *ss7.DialogueManager

	mu      sync.Mutex
	regs    *slab.Sharded[gkReg]
	byAlias *slab.Index[gsmid.PackedDigits]
	calls   *slab.Sharded[gkCall]
	byCall  *slab.Index[gkCallKey]
	imsiTab *slab.Sharded[gkIMSI] // TR 23.923 mode only
	byIMSI  *slab.Index[gsmid.PackedDigits]
	nextEP  uint32
	admits  uint64
	rejects uint64
}

var _ sim.Node = (*Gatekeeper)(nil)

// NewGatekeeper returns an empty gatekeeper.
func NewGatekeeper(cfg GatekeeperConfig) *Gatekeeper {
	if cfg.MAPTimeout == 0 {
		cfg.MAPTimeout = 5 * time.Second
	}
	gk := &Gatekeeper{
		cfg:     cfg,
		dm:      ss7.NewDialogueManager(),
		regs:    slab.NewSharded[gkReg](gkShards),
		byAlias: slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
		calls:   slab.NewSharded[gkCall](gkShards),
		byCall:  slab.NewIndex[gkCallKey](hashCallKey),
		imsiTab: slab.NewSharded[gkIMSI](gkShards),
		byIMSI:  slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
	}
	gk.ep = &Endpoint{
		Node: cfg.ID,
		Addr: cfg.Addr,
		Dir:  cfg.Dir,
		Send: func(env *sim.Env, pkt ipnet.Packet) {
			env.Send(cfg.ID, cfg.Router, pkt)
		},
	}
	return gk
}

// ID implements sim.Node.
func (g *Gatekeeper) ID() sim.NodeID { return g.cfg.ID }

// reg resolves an alias to its resident row (callers hold g.mu).
func (g *Gatekeeper) reg(key gsmid.PackedDigits) *gkReg {
	return g.regs.Get(g.byAlias.Get(key))
}

// dropReg removes a registration row and its index entry (callers hold
// g.mu).
func (g *Gatekeeper) dropReg(key gsmid.PackedDigits) {
	if h := g.byAlias.Get(key); !h.IsZero() {
		g.byAlias.Delete(key)
		g.regs.Free(h)
	}
}

// Lookup returns the registration for an alias.
func (g *Gatekeeper) Lookup(alias gsmid.MSISDN) (Registration, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.reg(alias.Pack())
	if r == nil {
		return Registration{}, false
	}
	return r.public(), true
}

// RegHandle returns the slab handle behind an alias's registration (zero if
// none) — a test hook for generational-invalidation checks.
func (g *Gatekeeper) RegHandle(alias gsmid.MSISDN) slab.Handle {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byAlias.Get(alias.Pack())
}

// RegAlive reports whether a previously obtained handle still resolves.
func (g *Gatekeeper) RegAlive(h slab.Handle) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.regs.Get(h) != nil
}

// Registered returns the number of table entries.
func (g *Gatekeeper) Registered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byAlias.Len()
}

// CallRecords returns a copy of the charging records (paper step 3.3).
func (g *Gatekeeper) CallRecords() []CallRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]CallRecord, 0, g.byCall.Len())
	g.byCall.Range(func(_ gkCallKey, h slab.Handle) bool {
		if c := g.calls.Get(h); c != nil {
			out = append(out, CallRecord{
				Caller: c.caller.MSISDN(), Called: c.called.MSISDN(),
				CallRef: c.ref, AdmittedAt: c.admittedAt,
				EndedAt: c.endedAt, Ended: c.ended,
			})
		}
		return true
	})
	return out
}

// Admissions returns (admitted, rejected) counts.
func (g *Gatekeeper) Admissions() (admitted, rejected uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admits, g.rejects
}

// KnownIMSIs returns how many IMSIs the gatekeeper has memorized — zero for
// a standard gatekeeper; one per subscriber in the TR 23.923 mode. This is
// the C4 experiment's headline counter.
func (g *Gatekeeper) KnownIMSIs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byIMSI.Len()
}

// SlabImbalance cross-checks every index against its slab: each index entry
// must resolve to a live row carrying the same key, each slab shard's live
// count must match what the indexes reference, and allocated capacity must
// be fully accounted as live or free. Zero means no leaked rows, no stale
// handles, and no books that disagree — the soak gate's invariant.
func (g *Gatekeeper) SlabImbalance() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	imb := 0

	perShard := make(map[int]int)
	g.byAlias.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		r := g.regs.Get(h)
		if r == nil || r.alias != k {
			imb++
			return true
		}
		perShard[h.Shard()]++
		return true
	})
	for _, a := range g.regs.Audit() {
		imb += a.Imbalance() + absInt(perShard[a.Shard]-a.Live)
	}

	clear(perShard)
	g.byCall.Range(func(k gkCallKey, h slab.Handle) bool {
		c := g.calls.Get(h)
		if c == nil || c.caller != k.caller || c.ref != k.ref {
			imb++
			return true
		}
		perShard[h.Shard()]++
		return true
	})
	for _, a := range g.calls.Audit() {
		imb += a.Imbalance() + absInt(perShard[a.Shard]-a.Live)
	}

	clear(perShard)
	g.byIMSI.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		r := g.imsiTab.Get(h)
		if r == nil || r.alias != k {
			imb++
			return true
		}
		perShard[h.Shard()]++
		return true
	})
	for _, a := range g.imsiTab.Audit() {
		imb += a.Imbalance() + absInt(perShard[a.Shard]-a.Live)
	}
	return imb
}

func absInt(d int) int {
	if d < 0 {
		return -d
	}
	return d
}

// Receive implements sim.Node.
func (g *Gatekeeper) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	if ack, isMAP := msg.(sigmap.SendIMSIAck); isMAP {
		g.dm.Resolve(ack.Invoke, msg)
		return
	}
	pkt, ok := msg.(ipnet.Packet)
	if !ok {
		return
	}
	in, ok := g.ep.Classify(pkt)
	if !ok || in.RAS == nil {
		return
	}
	switch m := in.RAS.(type) {
	case RRQ:
		if g.cfg.RequireIMSI && g.cfg.HLR != "" && g.isMobileAlias(m.Alias) {
			g.resolveIMSIThen(env, pkt.Src, m)
			return
		}
		g.handleRRQ(env, pkt.Src, m)
	case URQ:
		key := m.Alias.Pack()
		g.mu.Lock()
		if reg := g.reg(key); reg != nil &&
			(!m.SignalAddr.IsValid() || reg.signalAddr == m.SignalAddr) {
			g.dropReg(key)
		}
		g.mu.Unlock()
		g.ep.SendRAS(env, pkt.Src, UCF{Seq: m.Seq})
	case ARQ:
		g.handleARQ(env, pkt.Src, m)
	case DRQ:
		g.mu.Lock()
		if rec := g.calls.Get(g.byCall.Get(gkCallKey{m.Alias.Pack(), m.CallRef})); rec != nil && !rec.ended {
			// The caller disengaging: direct hit.
			rec.ended = true
			rec.endedAt = env.Now()
		} else if m.Peer != "" {
			// The called side disengaging, naming the caller. The key is
			// exact; if the caller already disengaged there is nothing
			// further to close.
			if rec := g.calls.Get(g.byCall.Get(gkCallKey{m.Peer.Pack(), m.CallRef})); rec != nil && !rec.ended {
				rec.ended = true
				rec.endedAt = env.Now()
			}
		} else {
			// A gateway or legacy endpoint without a peer alias: find the
			// open record for this reference. Index iteration order is
			// deterministic, so so is the record chosen.
			alias := m.Alias.Pack()
			g.byCall.Range(func(k gkCallKey, h slab.Handle) bool {
				rec := g.calls.Get(h)
				if rec != nil && rec.ref == m.CallRef && !rec.ended &&
					(m.Alias == "" || rec.called == alias) {
					rec.ended = true
					rec.endedAt = env.Now()
					return false
				}
				return true
			})
		}
		g.mu.Unlock()
		g.ep.SendRAS(env, pkt.Src, DCF{Seq: m.Seq})
	case LRQ:
		g.mu.Lock()
		reg, exists := g.lookupLive(m.Alias.Pack(), env.Now())
		var addr netip.Addr
		var port uint16
		if exists {
			addr, port = reg.signalAddr, reg.signalPort
		}
		g.mu.Unlock()
		if !exists {
			g.ep.SendRAS(env, pkt.Src, LRJ{Seq: m.Seq, Reason: RejectCalledPartyNotRegistered})
			return
		}
		g.ep.SendRAS(env, pkt.Src, LCF{Seq: m.Seq, SignalAddr: addr, SignalPort: port})
	}
}

// isMobileAlias reports whether an alias falls in the PLMN number ranges.
// With no prefixes configured, every alias counts as mobile.
func (g *Gatekeeper) isMobileAlias(alias gsmid.MSISDN) bool {
	if len(g.cfg.MobilePrefixes) == 0 {
		return true
	}
	for _, p := range g.cfg.MobilePrefixes {
		if strings.HasPrefix(string(alias), p) {
			return true
		}
	}
	return false
}

// resolveIMSIThen is the TR 23.923 registration path: the gatekeeper
// queries the HLR over GSM MAP, memorizes the IMSI, and only then confirms.
func (g *Gatekeeper) resolveIMSIThen(env *sim.Env, src netip.Addr, m RRQ) {
	invoke := g.dm.Invoke(env, g.cfg.MAPTimeout, func(resp sim.Message, ok bool) {
		ack, isAck := resp.(sigmap.SendIMSIAck)
		if !ok || !isAck || ack.Cause != sigmap.CauseNone {
			g.ep.SendRAS(env, src, RRJ{Seq: m.Seq, Reason: RejectGenericData})
			return
		}
		key := m.Alias.Pack()
		g.mu.Lock()
		if row := g.imsiTab.Get(g.byIMSI.Get(key)); row != nil {
			row.imsi = ack.IMSI.Pack()
		} else {
			h, row := g.imsiTab.Alloc(int(key.Hash() & (gkShards - 1)))
			row.alias, row.imsi = key, ack.IMSI.Pack()
			g.byIMSI.Put(key, h)
		}
		g.mu.Unlock()
		g.handleRRQ(env, src, m)
	})
	env.Send(g.cfg.ID, g.cfg.HLR, sigmap.SendIMSI{Invoke: invoke, MSISDN: m.Alias})
}

func (g *Gatekeeper) handleRRQ(env *sim.Env, src netip.Addr, m RRQ) {
	key := m.Alias.Pack()
	g.mu.Lock()
	existing := g.reg(key)
	if existing != nil && g.expired(existing, env.Now()) {
		g.dropReg(key)
		existing = nil
	}
	// A keepalive refresh presumes the gatekeeper still holds the row;
	// if it lapsed (or never existed), demand a full registration.
	if m.KeepAlive && (existing == nil || existing.signalAddr != m.SignalAddr) {
		g.mu.Unlock()
		g.ep.SendRAS(env, src, RRJ{Seq: m.Seq, Reason: RejectFullRegistrationRequired})
		return
	}
	// Re-registration from the same transport address refreshes the row;
	// a different address claiming a registered alias is rejected.
	if existing != nil && existing.signalAddr != m.SignalAddr {
		g.mu.Unlock()
		g.ep.SendRAS(env, src, RRJ{Seq: m.Seq, Reason: RejectDuplicateAlias})
		return
	}
	granted := g.grantTTL(m.TTLSeconds)
	var epNum uint32
	if existing != nil {
		existing.signalPort = m.SignalPort
		existing.expiresAt = expiryAt(env.Now(), granted)
		epNum = existing.epID
	} else {
		g.nextEP++
		epNum = g.nextEP
		h, row := g.regs.Alloc(int(key.Hash() & (gkShards - 1)))
		row.alias, row.signalAddr, row.signalPort = key, m.SignalAddr, m.SignalPort
		row.epID, row.expiresAt = epNum, expiryAt(env.Now(), granted)
		g.byAlias.Put(key, h)
	}
	g.mu.Unlock()
	g.ep.SendRAS(env, src, RCF{
		Seq: m.Seq, EndpointID: fmt.Sprintf("ep-%d", epNum), TTLSeconds: granted,
	})
}

// grantTTL computes the lifetime an RCF grants, in seconds: the
// gatekeeper's configured TTL, shortened further if the endpoint asked for
// less. Zero means no expiry is in force.
func (g *Gatekeeper) grantTTL(requested uint16) uint16 {
	if g.cfg.RegistrationTTL <= 0 {
		return 0
	}
	granted := uint16(g.cfg.RegistrationTTL / time.Second)
	if granted == 0 {
		granted = 1
	}
	if requested > 0 && requested < granted {
		granted = requested
	}
	return granted
}

func expiryAt(now time.Duration, ttlSeconds uint16) time.Duration {
	if ttlSeconds == 0 {
		return 0
	}
	return now + time.Duration(ttlSeconds)*time.Second
}

// expired reports whether the row has lapsed at the given virtual time.
func (g *Gatekeeper) expired(r *gkReg, now time.Duration) bool {
	return r.expiresAt != 0 && now >= r.expiresAt
}

// lookupLive returns the registration for alias unless it has expired, in
// which case the row is dropped (lazy expiry — the gatekeeper never has to
// keep the event queue alive with a sweep timer).
func (g *Gatekeeper) lookupLive(key gsmid.PackedDigits, now time.Duration) (*gkReg, bool) {
	r := g.reg(key)
	if r == nil {
		return nil, false
	}
	if g.expired(r, now) {
		g.dropReg(key)
		return nil, false
	}
	return r, true
}

// SweepExpired drops every lapsed registration at the given virtual time
// and reports how many went. Expiry is otherwise lazy; this exists for
// operators (and tests) that want the table compacted eagerly.
func (g *Gatekeeper) SweepExpired(now time.Duration) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var lapsed []gsmid.PackedDigits
	g.byAlias.Range(func(k gsmid.PackedDigits, h slab.Handle) bool {
		if r := g.regs.Get(h); r != nil && g.expired(r, now) {
			lapsed = append(lapsed, k)
		}
		return true
	})
	for _, k := range lapsed {
		g.dropReg(k)
	}
	return len(lapsed)
}

func (g *Gatekeeper) handleARQ(env *sim.Env, src netip.Addr, m ARQ) {
	var response sim.Message

	g.mu.Lock()
	if m.Answer {
		// Admission for an incoming call: the callee asks permission to
		// accept; no translation needed.
		if _, ok := g.lookupLive(m.CallerAlias.Pack(), env.Now()); ok {
			g.admits++
			response = ACF{Seq: m.Seq}
		} else {
			g.rejects++
			response = ARJ{Seq: m.Seq, Reason: RejectCallerNotRegistered}
		}
	} else if dest, ok := g.lookupLive(m.CalledAlias.Pack(), env.Now()); ok {
		g.admits++
		g.openCall(m, env.Now())
		response = ACF{Seq: m.Seq, SignalAddr: dest.signalAddr, SignalPort: dest.signalPort}
	} else if g.routesToPSTN(m.CalledAlias) {
		g.admits++
		g.openCall(m, env.Now())
		response = ACF{Seq: m.Seq, SignalAddr: g.cfg.PSTNGateway, SignalPort: ipnet.PortQ931}
	} else {
		g.rejects++
		response = ARJ{Seq: m.Seq, Reason: RejectCalledPartyNotRegistered}
	}
	g.mu.Unlock()

	g.ep.SendRAS(env, src, response)
}

// openCall creates the charging record for an admitted call if this is the
// first admission of the (caller, reference) pair (callers hold g.mu).
func (g *Gatekeeper) openCall(m ARQ, now time.Duration) {
	key := gkCallKey{m.CallerAlias.Pack(), m.CallRef}
	if !g.byCall.Get(key).IsZero() {
		return
	}
	h, rec := g.calls.Alloc(int(hashCallKey(key) & (gkShards - 1)))
	rec.caller, rec.called = key.caller, m.CalledAlias.Pack()
	rec.ref, rec.admittedAt = m.CallRef, now
	g.byCall.Put(key, h)
}

// routesToPSTN reports whether an unregistered called alias should be
// admitted toward the configured PSTN gateway (callers hold g.mu).
func (g *Gatekeeper) routesToPSTN(alias gsmid.MSISDN) bool {
	if !g.cfg.PSTNGateway.IsValid() {
		return false
	}
	if len(g.cfg.PSTNPrefixes) == 0 {
		return true
	}
	for _, p := range g.cfg.PSTNPrefixes {
		if strings.HasPrefix(string(alias), p) {
			return true
		}
	}
	return false
}
