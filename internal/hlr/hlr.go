// Package hlr implements the GSM Home Location Register: the per-subscriber
// master database queried and updated over MAP. It serves location updating
// (paper Fig 4 step 1.2), authentication-vector generation, routing-info
// interrogation for call delivery and tromboning (Figs 6-7), and GPRS
// location management for the SGSN/GGSN (Gr/Gc interfaces, step 1.3).
package hlr

import (
	"fmt"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/slab"
	"vgprs/internal/ss7"
)

// Subscriber is the provisioned (static) part of an HLR record.
type Subscriber struct {
	IMSI   gsmid.IMSI
	MSISDN gsmid.MSISDN
	// Ki is the subscriber's secret authentication key (shared with the
	// SIM; in this reproduction, with the MS node).
	Ki [16]byte
	// Profile is inserted into the serving VLR at registration.
	Profile sigmap.SubscriberProfile
	// StaticPDPAddress, when non-empty, is the provisioned static IP for
	// GPRS. Network-initiated PDP activation (the TR 23.923 MT-call path)
	// requires it.
	StaticPDPAddress string
}

// Record is a live HLR record: the subscription plus current registration
// state.
type Record struct {
	Subscriber
	// VLR and MSC name the current circuit-switched serving elements
	// (empty while detached).
	VLR string
	MSC string
	// SGSN names the current packet-switched serving element (empty while
	// GPRS-detached).
	SGSN string
}

// hlrShards is the slab fan-out; subscribers spread by IMSI hash.
const hlrShards = 8

// hlrRec is the slab-resident subscriber record: fixed size, pointer-free.
// Identities are BCD-packed; serving-element names and the static PDP
// address are interned symbols (their cardinality is bounded by topology
// size and provisioned statics, not subscriber count).
type hlrRec struct {
	imsi       gsmid.PackedDigits
	msisdn     gsmid.PackedDigits
	profMSISDN gsmid.PackedDigits
	ki         [16]byte
	flags      uint8
	voipQoS    uint8
	static     uint32 // symbol in HLR.strs
	vlr        uint32 // symbol in HLR.strs
	msc        uint32 // symbol in HLR.strs
	sgsn       uint32 // symbol in HLR.strs
}

// hlrRec flag bits.
const (
	hlrIntlAllowed = 1 << iota
	hlrBarred
)

// Config parameterises an HLR node.
type Config struct {
	// ID is the node identifier, e.g. "HLR-TW".
	ID sim.NodeID
	// SigRTO is the initial retransmission timeout for each MAP dialogue
	// the HLR originates (InsertSubscriberData, ProvideRoamingNumber,
	// CancelLocation); it doubles on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per dialogue. Zero means 3.
	SigRetries int
}

// HLR is the home location register node.
type HLR struct {
	cfg Config
	dm  *ss7.DialogueManager

	mu       sync.Mutex
	recs     *slab.Sharded[hlrRec]
	byIMSI   *slab.Index[gsmid.PackedDigits]
	byMSISDN *slab.Index[gsmid.PackedDigits]
	strs     slab.Syms[string] // node names + static PDP addresses
}

var _ sim.Node = (*HLR)(nil)

// New returns an HLR with no subscribers.
func New(cfg Config) *HLR {
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	return &HLR{
		cfg:      cfg,
		dm:       ss7.NewDialogueManager(),
		recs:     slab.NewSharded[hlrRec](hlrShards),
		byIMSI:   slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
		byMSISDN: slab.NewIndex[gsmid.PackedDigits](gsmid.PackedDigits.Hash),
	}
}

// ID implements sim.Node.
func (h *HLR) ID() sim.NodeID { return h.cfg.ID }

// Retransmits returns the number of MAP request PDUs this HLR has re-sent.
func (h *HLR) Retransmits() uint64 { return h.dm.Retransmits() }

// OutstandingDialogues returns un-answered MAP invokes this HLR has open.
func (h *HLR) OutstandingDialogues() int { return h.dm.Outstanding() }

// Subscribers returns the number of provisioned records.
func (h *HLR) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.recs.Len()
}

// lookupRec resolves an IMSI to its slab record. Callers hold h.mu.
func (h *HLR) lookupRec(imsi gsmid.IMSI) *hlrRec {
	return h.recs.Get(h.byIMSI.Get(imsi.Pack()))
}

// export copies a slab record out into the public Record view.
func (h *HLR) export(r *hlrRec) Record {
	return Record{
		Subscriber: Subscriber{
			IMSI:   r.imsi.IMSI(),
			MSISDN: r.msisdn.MSISDN(),
			Ki:     r.ki,
			Profile: sigmap.SubscriberProfile{
				MSISDN:               r.profMSISDN.MSISDN(),
				InternationalAllowed: r.flags&hlrIntlAllowed != 0,
				VoIPQoS:              r.voipQoS,
				Barred:               r.flags&hlrBarred != 0,
			},
			StaticPDPAddress: h.strs.Val(r.static),
		},
		VLR:  h.strs.Val(r.vlr),
		MSC:  h.strs.Val(r.msc),
		SGSN: h.strs.Val(r.sgsn),
	}
}

// Provision adds a subscriber. It returns an error on duplicate IMSI or
// MSISDN.
func (h *HLR) Provision(s Subscriber) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	imsi, msisdn := s.IMSI.Pack(), s.MSISDN.Pack()
	if !h.byIMSI.Get(imsi).IsZero() {
		return fmt.Errorf("hlr: duplicate IMSI %s", s.IMSI)
	}
	if !h.byMSISDN.Get(msisdn).IsZero() {
		return fmt.Errorf("hlr: duplicate MSISDN %s", s.MSISDN)
	}
	shard := int(imsi.Hash() & (hlrShards - 1))
	hd, r := h.recs.Alloc(shard)
	r.imsi = imsi
	r.msisdn = msisdn
	r.ki = s.Ki
	r.profMSISDN = s.Profile.MSISDN.Pack()
	r.voipQoS = s.Profile.VoIPQoS
	if s.Profile.InternationalAllowed {
		r.flags |= hlrIntlAllowed
	}
	if s.Profile.Barred {
		r.flags |= hlrBarred
	}
	r.static = h.strs.ID(s.StaticPDPAddress)
	h.byIMSI.Put(imsi, hd)
	h.byMSISDN.Put(msisdn, hd)
	return nil
}

// Lookup returns a copy of the record for the IMSI.
func (h *HLR) Lookup(imsi gsmid.IMSI) (Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.lookupRec(imsi)
	if r == nil {
		return Record{}, false
	}
	return h.export(r), true
}

// LookupByMSISDN returns a copy of the record for the MSISDN.
func (h *HLR) LookupByMSISDN(msisdn gsmid.MSISDN) (Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.recs.Get(h.byMSISDN.Get(msisdn.Pack()))
	if r == nil {
		return Record{}, false
	}
	return h.export(r), true
}

// SlabImbalance audits the slab storage: both identity indexes must hold
// exactly one entry per live record and per-shard occupancy must balance.
// Non-zero means records were lost or leaked.
func (h *HLR) SlabImbalance() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	imb := 0
	perShard := make([]int, hlrShards)
	h.byIMSI.Range(func(k gsmid.PackedDigits, hd slab.Handle) bool {
		r := h.recs.Get(hd)
		if r == nil || r.imsi != k {
			imb++
			return true
		}
		perShard[hd.Shard()]++
		return true
	})
	for _, a := range h.recs.Audit() {
		imb += a.Imbalance() + abs(perShard[a.Shard]-a.Live)
	}
	h.byMSISDN.Range(func(k gsmid.PackedDigits, hd slab.Handle) bool {
		if r := h.recs.Get(hd); r == nil || r.msisdn != k {
			imb++
		}
		return true
	})
	return imb
}

func abs(d int) int {
	if d < 0 {
		return -d
	}
	return d
}

// Receive implements sim.Node: the MAP server side of the HLR.
func (h *HLR) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.UpdateLocation:
		h.handleUpdateLocation(env, from, m)
	case sigmap.SendAuthenticationInfo:
		h.handleSendAuthInfo(env, from, m)
	case sigmap.SendRoutingInformation:
		h.handleSendRoutingInfo(env, from, m)
	case sigmap.UpdateGPRSLocation:
		h.handleUpdateGPRSLocation(env, from, m)
	case sigmap.SendRoutingInfoForGPRS:
		h.handleSendRoutingInfoForGPRS(env, from, m)
	case sigmap.SendIMSI:
		h.handleSendIMSI(env, from, m)
	case sigmap.InsertSubscriberDataAck:
		h.dm.Resolve(m.Invoke, msg)
	case sigmap.CancelLocationAck:
		h.dm.Resolve(m.Invoke, msg)
	case sigmap.ProvideRoamingNumberAck:
		h.dm.Resolve(m.Invoke, msg)
	}
}

// handleUpdateLocation runs paper step 1.2 from the HLR side: cancel the old
// VLR if the subscriber moved, push the subscription profile into the new
// VLR, then confirm.
func (h *HLR) handleUpdateLocation(env *sim.Env, from sim.NodeID, m sigmap.UpdateLocation) {
	h.mu.Lock()
	rec := h.lookupRec(m.IMSI)
	ok := rec != nil
	var oldVLR string
	var profile sigmap.SubscriberProfile
	if ok {
		oldVLR = h.strs.Val(rec.vlr)
		rec.vlr = h.strs.ID(m.VLR)
		rec.msc = h.strs.ID(m.MSC)
		profile = sigmap.SubscriberProfile{
			MSISDN:               rec.profMSISDN.MSISDN(),
			InternationalAllowed: rec.flags&hlrIntlAllowed != 0,
			VoIPQoS:              rec.voipQoS,
			Barred:               rec.flags&hlrBarred != 0,
		}
	}
	h.mu.Unlock()

	if !ok {
		env.Send(h.cfg.ID, from, sigmap.UpdateLocationAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}

	if oldVLR != "" && oldVLR != m.VLR && env.HasLink(h.cfg.ID, sim.NodeID(oldVLR)) {
		cancelInvoke := h.dm.InvokeRetry(func(sim.Message, bool) {})
		h.dm.Transmit(env, cancelInvoke, h.cfg.ID, sim.NodeID(oldVLR), sigmap.CancelLocation{
			Invoke: cancelInvoke, IMSI: m.IMSI,
		}, h.cfg.SigRTO, h.cfg.SigRetries)
	}

	isdInvoke := h.dm.InvokeRetry(func(_ sim.Message, ok bool) {
		cause := sigmap.CauseNone
		if !ok {
			cause = sigmap.CauseSystemFailure
		}
		env.Send(h.cfg.ID, from, sigmap.UpdateLocationAck{Invoke: m.Invoke, Cause: cause})
	})
	h.dm.Transmit(env, isdInvoke, h.cfg.ID, from, sigmap.InsertSubscriberData{
		Invoke: isdInvoke, IMSI: m.IMSI, Profile: profile,
	}, h.cfg.SigRTO, h.cfg.SigRetries)
}

func (h *HLR) handleSendAuthInfo(env *sim.Env, from sim.NodeID, m sigmap.SendAuthenticationInfo) {
	h.mu.Lock()
	rec := h.lookupRec(m.IMSI)
	ok := rec != nil
	var ki [16]byte
	if ok {
		ki = rec.ki
	}
	h.mu.Unlock()

	if !ok {
		env.Send(h.cfg.ID, from, sigmap.SendAuthenticationInfoAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}
	count := int(m.Count)
	if count == 0 {
		count = 1
	}
	triplets := make([]sigmap.AuthTriplet, 0, count)
	for i := 0; i < count; i++ {
		var rand [16]byte
		// Draw from the environment's seeded RNG so runs reproduce.
		for j := range rand {
			rand[j] = byte(env.Rand().Intn(256))
		}
		triplets = append(triplets, GenerateTriplet(ki, rand))
	}
	env.Send(h.cfg.ID, from, sigmap.SendAuthenticationInfoAck{
		Invoke: m.Invoke, Cause: sigmap.CauseNone, Triplets: triplets,
	})
}

// handleSendRoutingInfo is the call-delivery interrogation of Fig 7: the
// GMSC asks where the subscriber is; the HLR relays to the serving VLR for
// an MSRN and returns it.
func (h *HLR) handleSendRoutingInfo(env *sim.Env, from sim.NodeID, m sigmap.SendRoutingInformation) {
	h.mu.Lock()
	rec := h.recs.Get(h.byMSISDN.Get(m.MSISDN.Pack()))
	ok := rec != nil
	var imsi gsmid.IMSI
	var vlr string
	if ok {
		imsi = rec.imsi.IMSI()
		vlr = h.strs.Val(rec.vlr)
	}
	h.mu.Unlock()

	if !ok {
		env.Send(h.cfg.ID, from, sigmap.SendRoutingInformationAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}
	if vlr == "" {
		env.Send(h.cfg.ID, from, sigmap.SendRoutingInformationAck{
			Invoke: m.Invoke, Cause: sigmap.CauseAbsentSubscriber,
		})
		return
	}

	prnInvoke := h.dm.InvokeRetry(func(resp sim.Message, ok bool) {
		ack := sigmap.SendRoutingInformationAck{Invoke: m.Invoke, Cause: sigmap.CauseSystemFailure}
		if ok {
			if prn, isPRN := resp.(sigmap.ProvideRoamingNumberAck); isPRN {
				ack.Cause = prn.Cause
				ack.MSRN = prn.MSRN
			}
		}
		env.Send(h.cfg.ID, from, ack)
	})
	h.dm.Transmit(env, prnInvoke, h.cfg.ID, sim.NodeID(vlr), sigmap.ProvideRoamingNumber{
		Invoke: prnInvoke, IMSI: imsi, GMSC: string(from),
	}, h.cfg.SigRTO, h.cfg.SigRetries)
}

// handleSendIMSI resolves MSISDN -> IMSI. Serving it to an H.323 gatekeeper
// is exactly the confidentiality leak the paper's §6 holds against the
// TR 23.923 architecture; the HLR cannot tell callers apart, which is the
// point.
func (h *HLR) handleSendIMSI(env *sim.Env, from sim.NodeID, m sigmap.SendIMSI) {
	h.mu.Lock()
	rec := h.recs.Get(h.byMSISDN.Get(m.MSISDN.Pack()))
	h.mu.Unlock()
	ack := sigmap.SendIMSIAck{Invoke: m.Invoke}
	if rec == nil {
		ack.Cause = sigmap.CauseUnknownSubscriber
	} else {
		ack.IMSI = rec.imsi.IMSI()
	}
	env.Send(h.cfg.ID, from, ack)
}

func (h *HLR) handleUpdateGPRSLocation(env *sim.Env, from sim.NodeID, m sigmap.UpdateGPRSLocation) {
	h.mu.Lock()
	rec := h.lookupRec(m.IMSI)
	ok := rec != nil
	var oldSGSN string
	if ok {
		oldSGSN = h.strs.Val(rec.sgsn)
		rec.sgsn = h.strs.ID(m.SGSN)
	}
	h.mu.Unlock()

	cause := sigmap.CauseNone
	if !ok {
		cause = sigmap.CauseUnknownSubscriber
	}
	// Inter-SGSN mobility (GSM 03.60 §6.9.1): the HLR cancels the old
	// SGSN's MM and PDP contexts when a new SGSN takes over.
	if ok && oldSGSN != "" && oldSGSN != m.SGSN && env.HasLink(h.cfg.ID, sim.NodeID(oldSGSN)) {
		invoke := h.dm.InvokeRetry(func(sim.Message, bool) {})
		h.dm.Transmit(env, invoke, h.cfg.ID, sim.NodeID(oldSGSN), sigmap.CancelLocation{
			Invoke: invoke, IMSI: m.IMSI,
		}, h.cfg.SigRTO, h.cfg.SigRetries)
	}
	env.Send(h.cfg.ID, from, sigmap.UpdateGPRSLocationAck{Invoke: m.Invoke, Cause: cause})
}

func (h *HLR) handleSendRoutingInfoForGPRS(env *sim.Env, from sim.NodeID, m sigmap.SendRoutingInfoForGPRS) {
	h.mu.Lock()
	rec := h.lookupRec(m.IMSI)
	ok := rec != nil
	var sgsn, static string
	if ok {
		sgsn = h.strs.Val(rec.sgsn)
		static = h.strs.Val(rec.static)
	}
	h.mu.Unlock()

	ack := sigmap.SendRoutingInfoForGPRSAck{Invoke: m.Invoke}
	switch {
	case !ok:
		ack.Cause = sigmap.CauseUnknownSubscriber
	case sgsn == "":
		ack.Cause = sigmap.CauseAbsentSubscriber
	default:
		ack.SGSN = sgsn
		ack.StaticPDPAddress = static
	}
	env.Send(h.cfg.ID, from, ack)
}
