// Package hlr implements the GSM Home Location Register: the per-subscriber
// master database queried and updated over MAP. It serves location updating
// (paper Fig 4 step 1.2), authentication-vector generation, routing-info
// interrogation for call delivery and tromboning (Figs 6-7), and GPRS
// location management for the SGSN/GGSN (Gr/Gc interfaces, step 1.3).
package hlr

import (
	"fmt"
	"sync"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
	"vgprs/internal/ss7"
)

// Subscriber is the provisioned (static) part of an HLR record.
type Subscriber struct {
	IMSI   gsmid.IMSI
	MSISDN gsmid.MSISDN
	// Ki is the subscriber's secret authentication key (shared with the
	// SIM; in this reproduction, with the MS node).
	Ki [16]byte
	// Profile is inserted into the serving VLR at registration.
	Profile sigmap.SubscriberProfile
	// StaticPDPAddress, when non-empty, is the provisioned static IP for
	// GPRS. Network-initiated PDP activation (the TR 23.923 MT-call path)
	// requires it.
	StaticPDPAddress string
}

// Record is a live HLR record: the subscription plus current registration
// state.
type Record struct {
	Subscriber
	// VLR and MSC name the current circuit-switched serving elements
	// (empty while detached).
	VLR string
	MSC string
	// SGSN names the current packet-switched serving element (empty while
	// GPRS-detached).
	SGSN string
}

// Config parameterises an HLR node.
type Config struct {
	// ID is the node identifier, e.g. "HLR-TW".
	ID sim.NodeID
	// SigRTO is the initial retransmission timeout for each MAP dialogue
	// the HLR originates (InsertSubscriberData, ProvideRoamingNumber,
	// CancelLocation); it doubles on every retry. Zero means 1 second.
	SigRTO time.Duration
	// SigRetries bounds retransmissions per dialogue. Zero means 3.
	SigRetries int
}

// HLR is the home location register node.
type HLR struct {
	cfg Config
	dm  *ss7.DialogueManager

	mu       sync.Mutex
	byIMSI   map[gsmid.IMSI]*Record
	byMSISDN map[gsmid.MSISDN]gsmid.IMSI
}

var _ sim.Node = (*HLR)(nil)

// New returns an HLR with no subscribers.
func New(cfg Config) *HLR {
	if cfg.SigRTO == 0 {
		cfg.SigRTO = time.Second
	}
	if cfg.SigRetries == 0 {
		cfg.SigRetries = 3
	}
	return &HLR{
		cfg:      cfg,
		dm:       ss7.NewDialogueManager(),
		byIMSI:   make(map[gsmid.IMSI]*Record),
		byMSISDN: make(map[gsmid.MSISDN]gsmid.IMSI),
	}
}

// ID implements sim.Node.
func (h *HLR) ID() sim.NodeID { return h.cfg.ID }

// Retransmits returns the number of MAP request PDUs this HLR has re-sent.
func (h *HLR) Retransmits() uint64 { return h.dm.Retransmits() }

// OutstandingDialogues returns un-answered MAP invokes this HLR has open.
func (h *HLR) OutstandingDialogues() int { return h.dm.Outstanding() }

// Provision adds a subscriber. It returns an error on duplicate IMSI or
// MSISDN.
func (h *HLR) Provision(s Subscriber) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.byIMSI[s.IMSI]; ok {
		return fmt.Errorf("hlr: duplicate IMSI %s", s.IMSI)
	}
	if _, ok := h.byMSISDN[s.MSISDN]; ok {
		return fmt.Errorf("hlr: duplicate MSISDN %s", s.MSISDN)
	}
	h.byIMSI[s.IMSI] = &Record{Subscriber: s}
	h.byMSISDN[s.MSISDN] = s.IMSI
	return nil
}

// Lookup returns a copy of the record for the IMSI.
func (h *HLR) Lookup(imsi gsmid.IMSI) (Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.byIMSI[imsi]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// LookupByMSISDN returns a copy of the record for the MSISDN.
func (h *HLR) LookupByMSISDN(msisdn gsmid.MSISDN) (Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	imsi, ok := h.byMSISDN[msisdn]
	if !ok {
		return Record{}, false
	}
	return *h.byIMSI[imsi], true
}

// Receive implements sim.Node: the MAP server side of the HLR.
func (h *HLR) Receive(env *sim.Env, from sim.NodeID, iface string, msg sim.Message) {
	switch m := msg.(type) {
	case sigmap.UpdateLocation:
		h.handleUpdateLocation(env, from, m)
	case sigmap.SendAuthenticationInfo:
		h.handleSendAuthInfo(env, from, m)
	case sigmap.SendRoutingInformation:
		h.handleSendRoutingInfo(env, from, m)
	case sigmap.UpdateGPRSLocation:
		h.handleUpdateGPRSLocation(env, from, m)
	case sigmap.SendRoutingInfoForGPRS:
		h.handleSendRoutingInfoForGPRS(env, from, m)
	case sigmap.SendIMSI:
		h.handleSendIMSI(env, from, m)
	case sigmap.InsertSubscriberDataAck:
		h.dm.Resolve(m.Invoke, msg)
	case sigmap.CancelLocationAck:
		h.dm.Resolve(m.Invoke, msg)
	case sigmap.ProvideRoamingNumberAck:
		h.dm.Resolve(m.Invoke, msg)
	}
}

// handleUpdateLocation runs paper step 1.2 from the HLR side: cancel the old
// VLR if the subscriber moved, push the subscription profile into the new
// VLR, then confirm.
func (h *HLR) handleUpdateLocation(env *sim.Env, from sim.NodeID, m sigmap.UpdateLocation) {
	h.mu.Lock()
	rec, ok := h.byIMSI[m.IMSI]
	var oldVLR string
	var profile sigmap.SubscriberProfile
	if ok {
		oldVLR = rec.VLR
		rec.VLR = m.VLR
		rec.MSC = m.MSC
		profile = rec.Profile
	}
	h.mu.Unlock()

	if !ok {
		env.Send(h.cfg.ID, from, sigmap.UpdateLocationAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}

	if oldVLR != "" && oldVLR != m.VLR && env.HasLink(h.cfg.ID, sim.NodeID(oldVLR)) {
		cancelInvoke := h.dm.InvokeRetry(func(sim.Message, bool) {})
		h.dm.Transmit(env, cancelInvoke, h.cfg.ID, sim.NodeID(oldVLR), sigmap.CancelLocation{
			Invoke: cancelInvoke, IMSI: m.IMSI,
		}, h.cfg.SigRTO, h.cfg.SigRetries)
	}

	isdInvoke := h.dm.InvokeRetry(func(_ sim.Message, ok bool) {
		cause := sigmap.CauseNone
		if !ok {
			cause = sigmap.CauseSystemFailure
		}
		env.Send(h.cfg.ID, from, sigmap.UpdateLocationAck{Invoke: m.Invoke, Cause: cause})
	})
	h.dm.Transmit(env, isdInvoke, h.cfg.ID, from, sigmap.InsertSubscriberData{
		Invoke: isdInvoke, IMSI: m.IMSI, Profile: profile,
	}, h.cfg.SigRTO, h.cfg.SigRetries)
}

func (h *HLR) handleSendAuthInfo(env *sim.Env, from sim.NodeID, m sigmap.SendAuthenticationInfo) {
	h.mu.Lock()
	rec, ok := h.byIMSI[m.IMSI]
	var ki [16]byte
	if ok {
		ki = rec.Ki
	}
	h.mu.Unlock()

	if !ok {
		env.Send(h.cfg.ID, from, sigmap.SendAuthenticationInfoAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}
	count := int(m.Count)
	if count == 0 {
		count = 1
	}
	triplets := make([]sigmap.AuthTriplet, 0, count)
	for i := 0; i < count; i++ {
		var rand [16]byte
		// Draw from the environment's seeded RNG so runs reproduce.
		for j := range rand {
			rand[j] = byte(env.Rand().Intn(256))
		}
		triplets = append(triplets, GenerateTriplet(ki, rand))
	}
	env.Send(h.cfg.ID, from, sigmap.SendAuthenticationInfoAck{
		Invoke: m.Invoke, Cause: sigmap.CauseNone, Triplets: triplets,
	})
}

// handleSendRoutingInfo is the call-delivery interrogation of Fig 7: the
// GMSC asks where the subscriber is; the HLR relays to the serving VLR for
// an MSRN and returns it.
func (h *HLR) handleSendRoutingInfo(env *sim.Env, from sim.NodeID, m sigmap.SendRoutingInformation) {
	h.mu.Lock()
	imsi, ok := h.byMSISDN[m.MSISDN]
	var vlr string
	if ok {
		vlr = h.byIMSI[imsi].VLR
	}
	h.mu.Unlock()

	if !ok {
		env.Send(h.cfg.ID, from, sigmap.SendRoutingInformationAck{
			Invoke: m.Invoke, Cause: sigmap.CauseUnknownSubscriber,
		})
		return
	}
	if vlr == "" {
		env.Send(h.cfg.ID, from, sigmap.SendRoutingInformationAck{
			Invoke: m.Invoke, Cause: sigmap.CauseAbsentSubscriber,
		})
		return
	}

	prnInvoke := h.dm.InvokeRetry(func(resp sim.Message, ok bool) {
		ack := sigmap.SendRoutingInformationAck{Invoke: m.Invoke, Cause: sigmap.CauseSystemFailure}
		if ok {
			if prn, isPRN := resp.(sigmap.ProvideRoamingNumberAck); isPRN {
				ack.Cause = prn.Cause
				ack.MSRN = prn.MSRN
			}
		}
		env.Send(h.cfg.ID, from, ack)
	})
	h.dm.Transmit(env, prnInvoke, h.cfg.ID, sim.NodeID(vlr), sigmap.ProvideRoamingNumber{
		Invoke: prnInvoke, IMSI: imsi, GMSC: string(from),
	}, h.cfg.SigRTO, h.cfg.SigRetries)
}

// handleSendIMSI resolves MSISDN -> IMSI. Serving it to an H.323 gatekeeper
// is exactly the confidentiality leak the paper's §6 holds against the
// TR 23.923 architecture; the HLR cannot tell callers apart, which is the
// point.
func (h *HLR) handleSendIMSI(env *sim.Env, from sim.NodeID, m sigmap.SendIMSI) {
	h.mu.Lock()
	imsi, ok := h.byMSISDN[m.MSISDN]
	h.mu.Unlock()
	ack := sigmap.SendIMSIAck{Invoke: m.Invoke}
	if !ok {
		ack.Cause = sigmap.CauseUnknownSubscriber
	} else {
		ack.IMSI = imsi
	}
	env.Send(h.cfg.ID, from, ack)
}

func (h *HLR) handleUpdateGPRSLocation(env *sim.Env, from sim.NodeID, m sigmap.UpdateGPRSLocation) {
	h.mu.Lock()
	rec, ok := h.byIMSI[m.IMSI]
	var oldSGSN string
	if ok {
		oldSGSN = rec.SGSN
		rec.SGSN = m.SGSN
	}
	h.mu.Unlock()

	cause := sigmap.CauseNone
	if !ok {
		cause = sigmap.CauseUnknownSubscriber
	}
	// Inter-SGSN mobility (GSM 03.60 §6.9.1): the HLR cancels the old
	// SGSN's MM and PDP contexts when a new SGSN takes over.
	if ok && oldSGSN != "" && oldSGSN != m.SGSN && env.HasLink(h.cfg.ID, sim.NodeID(oldSGSN)) {
		invoke := h.dm.InvokeRetry(func(sim.Message, bool) {})
		h.dm.Transmit(env, invoke, h.cfg.ID, sim.NodeID(oldSGSN), sigmap.CancelLocation{
			Invoke: invoke, IMSI: m.IMSI,
		}, h.cfg.SigRTO, h.cfg.SigRetries)
	}
	env.Send(h.cfg.ID, from, sigmap.UpdateGPRSLocationAck{Invoke: m.Invoke, Cause: cause})
}

func (h *HLR) handleSendRoutingInfoForGPRS(env *sim.Env, from sim.NodeID, m sigmap.SendRoutingInfoForGPRS) {
	h.mu.Lock()
	rec, ok := h.byIMSI[m.IMSI]
	var sgsn, static string
	if ok {
		sgsn = rec.SGSN
		static = rec.StaticPDPAddress
	}
	h.mu.Unlock()

	ack := sigmap.SendRoutingInfoForGPRSAck{Invoke: m.Invoke}
	switch {
	case !ok:
		ack.Cause = sigmap.CauseUnknownSubscriber
	case sgsn == "":
		ack.Cause = sigmap.CauseAbsentSubscriber
	default:
		ack.SGSN = sgsn
		ack.StaticPDPAddress = static
	}
	env.Send(h.cfg.ID, from, ack)
}
