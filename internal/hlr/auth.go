package hlr

import (
	"crypto/sha256"

	"vgprs/internal/sigmap"
)

// GenerateTriplet derives a GSM authentication triplet from the subscriber
// key and a random challenge. Real SIMs run the operator's A3/A8 algorithms
// (often COMP128); this reproduction substitutes SHA-256(Ki || RAND) and
// slices SRES (4 bytes) and Kc (8 bytes) from the digest. The substitution
// preserves the protocol property that matters here: only parties holding Ki
// can produce SRES for a given RAND, and both ends derive the same Kc.
func GenerateTriplet(ki [16]byte, rand [16]byte) sigmap.AuthTriplet {
	// Sum256 over a stack buffer keeps triplet generation allocation-free;
	// sha256.New + Sum(nil) would heap-allocate the state and the digest.
	var in [32]byte
	copy(in[:16], ki[:])
	copy(in[16:], rand[:])
	digest := sha256.Sum256(in[:])

	t := sigmap.AuthTriplet{RAND: rand}
	copy(t.SRES[:], digest[0:4])
	copy(t.Kc[:], digest[4:12])
	return t
}

// SRES computes just the signed response for a challenge — what the MS-side
// SIM returns during authentication.
func SRES(ki [16]byte, rand [16]byte) [4]byte {
	return GenerateTriplet(ki, rand).SRES
}
