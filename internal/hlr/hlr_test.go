package hlr

import (
	"testing"
	"testing/quick"
	"time"

	"vgprs/internal/gsmid"
	"vgprs/internal/sigmap"
	"vgprs/internal/sim"
)

const (
	testIMSI   = gsmid.IMSI("466920000000001")
	testMSISDN = gsmid.MSISDN("886912345678")
)

// stubPeer is a scriptable MAP peer (VLR / GMSC / SGSN / GGSN stand-in).
type stubPeer struct {
	id  sim.NodeID
	got []sim.Message
	// onMsg, when set, can reply.
	onMsg func(env *sim.Env, from sim.NodeID, msg sim.Message)
}

func (p *stubPeer) ID() sim.NodeID { return p.id }

func (p *stubPeer) Receive(env *sim.Env, from sim.NodeID, _ string, msg sim.Message) {
	p.got = append(p.got, msg)
	if p.onMsg != nil {
		p.onMsg(env, from, msg)
	}
}

func (p *stubPeer) find(name string) (sim.Message, bool) {
	for _, m := range p.got {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

func newHLREnv(t *testing.T) (*sim.Env, *HLR) {
	t.Helper()
	env := sim.NewEnv(1)
	h := New(Config{ID: "HLR"})
	env.AddNode(h)
	if err := h.Provision(Subscriber{
		IMSI:   testIMSI,
		MSISDN: testMSISDN,
		Ki:     [16]byte{1, 2, 3},
		Profile: sigmap.SubscriberProfile{
			MSISDN:               testMSISDN,
			InternationalAllowed: true,
			VoIPQoS:              2,
		},
	}); err != nil {
		t.Fatal(err)
	}
	return env, h
}

// ackingVLR answers InsertSubscriberData and CancelLocation positively and
// allocates MSRNs for ProvideRoamingNumber.
func ackingVLR(id sim.NodeID, msrn gsmid.MSISDN) *stubPeer {
	p := &stubPeer{id: id}
	p.onMsg = func(env *sim.Env, from sim.NodeID, msg sim.Message) {
		switch m := msg.(type) {
		case sigmap.InsertSubscriberData:
			env.Send(p.id, from, sigmap.InsertSubscriberDataAck{Invoke: m.Invoke})
		case sigmap.CancelLocation:
			env.Send(p.id, from, sigmap.CancelLocationAck{Invoke: m.Invoke})
		case sigmap.ProvideRoamingNumber:
			env.Send(p.id, from, sigmap.ProvideRoamingNumberAck{
				Invoke: m.Invoke, Cause: sigmap.CauseNone, MSRN: msrn,
			})
		}
	}
	return p
}

func TestProvisionDuplicates(t *testing.T) {
	_, h := newHLREnv(t)
	if err := h.Provision(Subscriber{IMSI: testIMSI, MSISDN: "886900000001"}); err == nil {
		t.Fatal("duplicate IMSI accepted")
	}
	if err := h.Provision(Subscriber{IMSI: "466920000000999", MSISDN: testMSISDN}); err == nil {
		t.Fatal("duplicate MSISDN accepted")
	}
}

func TestUpdateLocationInsertsProfileThenAcks(t *testing.T) {
	env, h := newHLREnv(t)
	vlr := ackingVLR("VLR-1", "886900000100")
	env.AddNode(vlr)
	env.Connect("HLR", "VLR-1", "D", time.Millisecond)

	env.Send("VLR-1", "HLR", sigmap.UpdateLocation{Invoke: 42, IMSI: testIMSI, VLR: "VLR-1", MSC: "VMSC-1"})
	env.Run()

	isdRaw, ok := vlr.find("MAP_INSERT_SUBS_DATA")
	if !ok {
		t.Fatal("VLR never received InsertSubscriberData")
	}
	isd := isdRaw.(sigmap.InsertSubscriberData)
	if isd.Profile.MSISDN != testMSISDN || !isd.Profile.InternationalAllowed {
		t.Fatalf("profile = %+v", isd.Profile)
	}
	ackRaw, ok := vlr.find("MAP_UPDATE_LOCATION_ack")
	if !ok {
		t.Fatal("VLR never received UpdateLocationAck")
	}
	ack := ackRaw.(sigmap.UpdateLocationAck)
	if ack.Invoke != 42 || ack.Cause != sigmap.CauseNone {
		t.Fatalf("ack = %+v", ack)
	}
	rec, _ := h.Lookup(testIMSI)
	if rec.VLR != "VLR-1" || rec.MSC != "VMSC-1" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestUpdateLocationUnknownSubscriber(t *testing.T) {
	env, _ := newHLREnv(t)
	vlr := ackingVLR("VLR-1", "")
	env.AddNode(vlr)
	env.Connect("HLR", "VLR-1", "D", time.Millisecond)

	env.Send("VLR-1", "HLR", sigmap.UpdateLocation{Invoke: 1, IMSI: "999990000000000", VLR: "VLR-1"})
	env.Run()

	ackRaw, ok := vlr.find("MAP_UPDATE_LOCATION_ack")
	if !ok {
		t.Fatal("no ack")
	}
	if ackRaw.(sigmap.UpdateLocationAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatalf("cause = %v", ackRaw.(sigmap.UpdateLocationAck).Cause)
	}
}

func TestUpdateLocationCancelsOldVLR(t *testing.T) {
	env, _ := newHLREnv(t)
	oldVLR := ackingVLR("VLR-old", "")
	newVLR := ackingVLR("VLR-new", "")
	env.AddNode(oldVLR)
	env.AddNode(newVLR)
	env.Connect("HLR", "VLR-old", "D", time.Millisecond)
	env.Connect("HLR", "VLR-new", "D", time.Millisecond)

	env.Send("VLR-old", "HLR", sigmap.UpdateLocation{Invoke: 1, IMSI: testIMSI, VLR: "VLR-old"})
	env.Run()
	env.Send("VLR-new", "HLR", sigmap.UpdateLocation{Invoke: 2, IMSI: testIMSI, VLR: "VLR-new"})
	env.Run()

	if _, ok := oldVLR.find("MAP_CANCEL_LOCATION"); !ok {
		t.Fatal("old VLR was not cancelled")
	}
	if _, ok := newVLR.find("MAP_CANCEL_LOCATION"); ok {
		t.Fatal("new VLR wrongly cancelled")
	}
}

func TestSendAuthenticationInfo(t *testing.T) {
	env, _ := newHLREnv(t)
	vlr := &stubPeer{id: "VLR-1"}
	env.AddNode(vlr)
	env.Connect("HLR", "VLR-1", "D", time.Millisecond)

	env.Send("VLR-1", "HLR", sigmap.SendAuthenticationInfo{Invoke: 5, IMSI: testIMSI, Count: 3})
	env.Run()

	ackRaw, ok := vlr.find("MAP_SEND_AUTHENTICATION_INFO_ack")
	if !ok {
		t.Fatal("no auth ack")
	}
	ack := ackRaw.(sigmap.SendAuthenticationInfoAck)
	if len(ack.Triplets) != 3 {
		t.Fatalf("triplets = %d", len(ack.Triplets))
	}
	// Each triplet must verify against the provisioned Ki.
	ki := [16]byte{1, 2, 3}
	for i, tr := range ack.Triplets {
		want := GenerateTriplet(ki, tr.RAND)
		if tr != want {
			t.Errorf("triplet %d does not verify against Ki", i)
		}
	}
	// Challenges must differ (fresh RANDs).
	if ack.Triplets[0].RAND == ack.Triplets[1].RAND {
		t.Error("repeated RAND challenge")
	}
}

func TestSendAuthInfoUnknownSubscriber(t *testing.T) {
	env, _ := newHLREnv(t)
	vlr := &stubPeer{id: "VLR-1"}
	env.AddNode(vlr)
	env.Connect("HLR", "VLR-1", "D", time.Millisecond)
	env.Send("VLR-1", "HLR", sigmap.SendAuthenticationInfo{Invoke: 5, IMSI: "111110000000000"})
	env.Run()
	ackRaw, _ := vlr.find("MAP_SEND_AUTHENTICATION_INFO_ack")
	if ackRaw.(sigmap.SendAuthenticationInfoAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatal("expected unknown-subscriber")
	}
}

func TestSendRoutingInformationRelaysToVLR(t *testing.T) {
	env, _ := newHLREnv(t)
	vlr := ackingVLR("VLR-1", "886900000777")
	gmsc := &stubPeer{id: "GMSC"}
	env.AddNode(vlr)
	env.AddNode(gmsc)
	env.Connect("HLR", "VLR-1", "D", time.Millisecond)
	env.Connect("GMSC", "HLR", "C", time.Millisecond)

	// Register first so the HLR knows the serving VLR.
	env.Send("VLR-1", "HLR", sigmap.UpdateLocation{Invoke: 1, IMSI: testIMSI, VLR: "VLR-1", MSC: "VMSC-1"})
	env.Run()

	env.Send("GMSC", "HLR", sigmap.SendRoutingInformation{Invoke: 9, MSISDN: testMSISDN})
	env.Run()

	ackRaw, ok := gmsc.find("MAP_SEND_ROUTING_INFORMATION_ack")
	if !ok {
		t.Fatal("no SRI ack")
	}
	ack := ackRaw.(sigmap.SendRoutingInformationAck)
	if ack.Invoke != 9 || ack.Cause != sigmap.CauseNone || ack.MSRN != "886900000777" {
		t.Fatalf("ack = %+v", ack)
	}
	if _, ok := vlr.find("MAP_PROVIDE_ROAMING_NUMBER"); !ok {
		t.Fatal("VLR never asked for roaming number")
	}
}

func TestSendRoutingInformationDetachedSubscriber(t *testing.T) {
	env, _ := newHLREnv(t)
	gmsc := &stubPeer{id: "GMSC"}
	env.AddNode(gmsc)
	env.Connect("GMSC", "HLR", "C", time.Millisecond)

	env.Send("GMSC", "HLR", sigmap.SendRoutingInformation{Invoke: 9, MSISDN: testMSISDN})
	env.Run()

	ackRaw, _ := gmsc.find("MAP_SEND_ROUTING_INFORMATION_ack")
	if ackRaw.(sigmap.SendRoutingInformationAck).Cause != sigmap.CauseAbsentSubscriber {
		t.Fatal("expected absent-subscriber for detached MS")
	}
}

func TestSendRoutingInformationUnknownNumber(t *testing.T) {
	env, _ := newHLREnv(t)
	gmsc := &stubPeer{id: "GMSC"}
	env.AddNode(gmsc)
	env.Connect("GMSC", "HLR", "C", time.Millisecond)
	env.Send("GMSC", "HLR", sigmap.SendRoutingInformation{Invoke: 9, MSISDN: "886999999999"})
	env.Run()
	ackRaw, _ := gmsc.find("MAP_SEND_ROUTING_INFORMATION_ack")
	if ackRaw.(sigmap.SendRoutingInformationAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatal("expected unknown-subscriber")
	}
}

func TestGPRSLocationLifecycle(t *testing.T) {
	env, h := newHLREnv(t)
	sgsn := &stubPeer{id: "SGSN-1"}
	ggsn := &stubPeer{id: "GGSN-1"}
	env.AddNode(sgsn)
	env.AddNode(ggsn)
	env.Connect("SGSN-1", "HLR", "Gr", time.Millisecond)
	env.Connect("GGSN-1", "HLR", "Gc", time.Millisecond)

	// Before attach: Gc query reports absent.
	env.Send("GGSN-1", "HLR", sigmap.SendRoutingInfoForGPRS{Invoke: 1, IMSI: testIMSI})
	env.Run()
	ackRaw, _ := ggsn.find("MAP_SEND_ROUTING_INFO_FOR_GPRS_ack")
	if ackRaw.(sigmap.SendRoutingInfoForGPRSAck).Cause != sigmap.CauseAbsentSubscriber {
		t.Fatal("expected absent before GPRS attach")
	}

	// Attach via Gr.
	env.Send("SGSN-1", "HLR", sigmap.UpdateGPRSLocation{Invoke: 2, IMSI: testIMSI, SGSN: "SGSN-1"})
	env.Run()
	if rec, _ := h.Lookup(testIMSI); rec.SGSN != "SGSN-1" {
		t.Fatalf("SGSN = %q", rec.SGSN)
	}

	// After attach: Gc query returns the SGSN.
	ggsn.got = nil
	env.Send("GGSN-1", "HLR", sigmap.SendRoutingInfoForGPRS{Invoke: 3, IMSI: testIMSI})
	env.Run()
	ackRaw, _ = ggsn.find("MAP_SEND_ROUTING_INFO_FOR_GPRS_ack")
	ack := ackRaw.(sigmap.SendRoutingInfoForGPRSAck)
	if ack.Cause != sigmap.CauseNone || ack.SGSN != "SGSN-1" {
		t.Fatalf("Gc ack = %+v", ack)
	}
}

func TestUpdateGPRSLocationUnknown(t *testing.T) {
	env, _ := newHLREnv(t)
	sgsn := &stubPeer{id: "SGSN-1"}
	env.AddNode(sgsn)
	env.Connect("SGSN-1", "HLR", "Gr", time.Millisecond)
	env.Send("SGSN-1", "HLR", sigmap.UpdateGPRSLocation{Invoke: 2, IMSI: "111110000000000", SGSN: "SGSN-1"})
	env.Run()
	ackRaw, _ := sgsn.find("MAP_UPDATE_GPRS_LOCATION_ack")
	if ackRaw.(sigmap.UpdateGPRSLocationAck).Cause != sigmap.CauseUnknownSubscriber {
		t.Fatal("expected unknown-subscriber")
	}
}

func TestGenerateTripletDeterministic(t *testing.T) {
	ki := [16]byte{9}
	rand := [16]byte{7}
	a := GenerateTriplet(ki, rand)
	b := GenerateTriplet(ki, rand)
	if a != b {
		t.Fatal("triplet generation must be deterministic in (Ki, RAND)")
	}
	if SRES(ki, rand) != a.SRES {
		t.Fatal("SRES mismatch")
	}
}

func TestGenerateTripletKeySeparationProperty(t *testing.T) {
	prop := func(ki1, ki2, rand [16]byte) bool {
		if ki1 == ki2 {
			return true
		}
		return GenerateTriplet(ki1, rand).SRES != GenerateTriplet(ki2, rand).SRES
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupByMSISDN(t *testing.T) {
	h := New(Config{ID: "HLR"})
	if err := h.Provision(Subscriber{IMSI: "466920000000001", MSISDN: "886912345678"}); err != nil {
		t.Fatal(err)
	}
	rec, ok := h.LookupByMSISDN("886912345678")
	if !ok || rec.IMSI != "466920000000001" {
		t.Fatalf("rec=%+v ok=%v", rec, ok)
	}
	if _, ok := h.LookupByMSISDN("886900000000"); ok {
		t.Fatal("unknown MSISDN resolved")
	}
}
