// Package metrics collects latency samples and counters from simulation runs
// and renders the aligned text tables that cmd/vgprs-bench prints for each
// experiment (the EXPERIMENTS.md "measured" columns).
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Series is a named collection of duration samples (for example, "vGPRS MO
// call setup"). The zero value is ready to use. Samples are kept in
// insertion order; order statistics (Min, Max, Percentile, Summary) operate
// on a lazily maintained sorted copy, so querying them never reorders the
// series itself.
type Series struct {
	Name    string
	samples []time.Duration
	sorted  []time.Duration // lazily built sorted copy; nil when stale
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = nil
}

// Samples returns the samples in insertion order. The returned slice is the
// series' own storage; callers must not modify it.
func (s *Series) Samples() []time.Duration { return s.samples }

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.samples) }

// Mean returns the arithmetic mean, or zero for an empty series.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.samples {
		sum += v
	}
	return sum / time.Duration(len(s.samples))
}

// Min returns the smallest sample, or zero for an empty series.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.ensureSorted()[0]
}

// Max returns the largest sample, or zero for an empty series.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := s.ensureSorted()
	return sorted[len(sorted)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or zero for an empty series.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := s.ensureSorted()
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var sq float64
	for _, v := range s.samples {
		d := float64(v) - mean
		sq += d * d
	}
	return time.Duration(math.Sqrt(sq / float64(n)))
}

// Summary returns a one-line digest of the series.
func (s *Series) Summary() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p95=%v max=%v",
		s.Name, s.Count(), s.Mean().Round(time.Microsecond),
		s.Percentile(50).Round(time.Microsecond),
		s.Percentile(95).Round(time.Microsecond),
		s.Max().Round(time.Microsecond))
}

// ensureSorted returns a sorted copy of the samples, building it on first
// use after an Add. The samples slice itself is never reordered: callers
// iterating the series in insertion order are unaffected by order-statistic
// queries.
func (s *Series) ensureSorted() []time.Duration {
	if s.sorted == nil {
		s.sorted = append(make([]time.Duration, 0, len(s.samples)), s.samples...)
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	}
	return s.sorted
}

// MarshalJSON renders the series as its summary statistics plus the raw
// samples in insertion order, all in nanoseconds of virtual time. This is
// the machine-readable form vgprs-bench -json writes, so perf trajectories
// across revisions can be diffed without parsing text tables.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name    string          `json:"name"`
		Count   int             `json:"count"`
		MeanNS  int64           `json:"mean_ns"`
		P50NS   int64           `json:"p50_ns"`
		P95NS   int64           `json:"p95_ns"`
		MaxNS   int64           `json:"max_ns"`
		Samples []time.Duration `json:"samples_ns"`
	}{
		Name:    s.Name,
		Count:   s.Count(),
		MeanNS:  int64(s.Mean()),
		P50NS:   int64(s.Percentile(50)),
		P95NS:   int64(s.Percentile(95)),
		MaxNS:   int64(s.Max()),
		Samples: s.samples,
	})
}

// Table renders aligned text tables with a title, header row, and data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a data row. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				// No padding after the last column: lines carry no
				// trailing whitespace.
				b.WriteString(c)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a duration rounded to microseconds — the house
// format for measured-latency table cells.
func FormatDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// Counter is a named monotonically increasing counter set, keyed by label.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Inc adds one to the labelled count.
func (c *Counter) Inc(label string) { c.counts[label]++ }

// Addn adds n to the labelled count.
func (c *Counter) Addn(label string, n int) { c.counts[label] += n }

// Get returns the labelled count.
func (c *Counter) Get(label string) int { return c.counts[label] }

// Labels returns all labels in sorted order.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
