package metrics

import (
	"math"
	"sort"
	"time"
)

// This file implements the ITU-T G.107 E-model reduced to the terms the
// simulation can measure: one-way delay impairment (Id) and packet-loss
// impairment (Ie-eff), mapped to a conversational MOS. The full E-model
// subtracts equipment and ambient-noise terms from a basic signal-to-noise
// ratio Ro; with default send/receive loudness ratings those collapse to a
// constant, which is where the familiar R0 = 93.2 ceiling comes from.

// EModelParams parameterises the scorer. The zero value is NOT ready to
// use; call DefaultEModel (or fill every field) instead.
type EModelParams struct {
	// R0 is the basic transmission rating with default G.107 inputs.
	R0 float64
	// Ie is the codec's intrinsic equipment impairment at zero loss.
	// The paper's vocoder-to-vocoder talk path never tandem-transcodes,
	// so the default treats the codec as transparent (Ie = 0).
	Ie float64
	// Bpl is the codec's packet-loss robustness factor (G.113 Appendix I);
	// higher values degrade more gracefully under random loss.
	Bpl float64
	// JitterFactor converts measured jitter into effective delay: a
	// receiver's adaptive playout buffer must absorb roughly this many
	// standard deviations of inter-arrival variation.
	JitterFactor float64
}

// DefaultEModel returns the parameter set used by the media experiments:
// R0 = 93.2, transparent vocoder (Ie = 0), Bpl = 10, and a playout buffer
// sized at twice the measured jitter.
func DefaultEModel() EModelParams {
	return EModelParams{R0: 93.2, Ie: 0, Bpl: 10, JitterFactor: 2}
}

// CallScore is the E-model verdict for one call leg.
type CallScore struct {
	// R is the transmission rating factor, clamped to [0, 100].
	R float64 `json:"r"`
	// MOS is the mean opinion score on the 1..5 ACR scale.
	MOS float64 `json:"mos"`
	// LossPct is the frame loss ratio in percent (the Ppl input).
	LossPct float64 `json:"loss_pct"`
	// EffectiveDelay is the one-way delay the Id term was computed from
	// (mean delay plus the jitter buffer allowance).
	EffectiveDelay time.Duration `json:"effective_delay"`
}

// Score rates one call leg from its measured mouth-to-ear statistics:
// mean one-way delay, inter-arrival jitter (RFC 3550 estimate), the number
// of frames the sequence numbers said to expect, and the number actually
// played out. A leg that received nothing scores MOS 1.0.
func (p EModelParams) Score(meanDelay, jitter time.Duration, expected, received uint64) CallScore {
	if received == 0 || expected == 0 {
		return CallScore{R: 0, MOS: 1, LossPct: 100}
	}
	if received > expected {
		// Duplicated frames can push the count past the sequence span.
		received = expected
	}
	ppl := 100 * float64(expected-received) / float64(expected)

	// Effective delay folds the playout buffer the receiver would need.
	d := meanDelay + time.Duration(p.JitterFactor*float64(jitter))
	ms := float64(d) / float64(time.Millisecond)

	// Id: the G.107 delay impairment (simplified linear + knee form).
	// Below ~177.3 ms only the small linear term applies; beyond the
	// knee, interactivity degrades steeply.
	id := 0.024 * ms
	if ms > 177.3 {
		id += 0.11 * (ms - 177.3)
	}

	// Ie-eff: codec impairment inflated by random packet loss.
	ieEff := p.Ie + (95-p.Ie)*ppl/(ppl+p.Bpl)

	r := p.R0 - id - ieEff
	if r < 0 {
		r = 0
	} else if r > 100 {
		r = 100
	}
	return CallScore{R: r, MOS: mosFromR(r), LossPct: ppl, EffectiveDelay: d}
}

// mosFromR is the standard G.107 Annex B mapping from the rating factor to
// a mean opinion score.
func mosFromR(r float64) float64 {
	if r <= 0 {
		return 1
	}
	if r >= 100 {
		return 4.5
	}
	mos := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
	return math.Min(5, math.Max(1, mos))
}

// FloatSummary is the distribution summary for dimensionless samples (MOS,
// R-factor) — the float counterpart of Series.Summary, with the same
// nearest-rank percentile convention.
type FloatSummary struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// SummarizeFloats computes a FloatSummary over the samples. The input is
// not modified. An empty input yields the zero summary.
func SummarizeFloats(samples []float64) FloatSummary {
	if len(samples) == 0 {
		return FloatSummary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return FloatSummary{
		Count: len(sorted),
		Min:   sorted[0],
		P50:   rank(50),
		P95:   rank(95),
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
	}
}
