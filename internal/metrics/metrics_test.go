package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSeriesStats(t *testing.T) {
	s := NewSeries("setup")
	for _, v := range []int{10, 20, 30, 40, 50} {
		s.Add(ms(v))
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != ms(30) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != ms(10) || s.Max() != ms(50) {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != ms(30) {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != ms(50) {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != ms(10) {
		t.Errorf("p0 = %v", got)
	}
}

// TestSeriesQueriesPreserveInsertionOrder is the regression test for the
// ensureSorted bug: order statistics used to sort the samples in place,
// silently reordering the series for any caller iterating it afterwards.
func TestSeriesQueriesPreserveInsertionOrder(t *testing.T) {
	inserted := []int{50, 10, 40, 20, 30}
	s := NewSeries("order")
	for _, v := range inserted {
		s.Add(ms(v))
	}
	if s.Min() != ms(10) || s.Max() != ms(50) || s.Percentile(50) != ms(30) {
		t.Fatalf("stats wrong: min=%v max=%v p50=%v", s.Min(), s.Max(), s.Percentile(50))
	}
	_ = s.Summary()
	for i, v := range s.Samples() {
		if v != ms(inserted[i]) {
			t.Fatalf("samples reordered by order-statistic queries: %v", s.Samples())
		}
	}
	// A later Add invalidates the sorted copy.
	s.Add(ms(5))
	if s.Min() != ms(5) {
		t.Fatalf("Min after Add = %v, want 5ms", s.Min())
	}
	if got := s.Samples()[len(s.Samples())-1]; got != ms(5) {
		t.Fatalf("last sample = %v, want 5ms (insertion order)", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty series stats must all be zero")
	}
}

func TestSeriesAddAfterSort(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(30))
	_ = s.Min() // forces sort
	s.Add(ms(10))
	if s.Min() != ms(10) {
		t.Fatalf("Min after post-sort Add = %v", s.Min())
	}
}

func TestStddev(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(10))
	s.Add(ms(10))
	if s.Stddev() != 0 {
		t.Errorf("Stddev of constants = %v", s.Stddev())
	}
	s2 := NewSeries("y")
	s2.Add(ms(0))
	s2.Add(ms(20))
	if got := s2.Stddev(); got != ms(10) {
		t.Errorf("Stddev = %v, want 10ms", got)
	}
}

func TestSummaryContainsFields(t *testing.T) {
	s := NewSeries("reg")
	s.Add(ms(5))
	sum := s.Summary()
	for _, want := range []string{"reg", "n=1", "mean=", "p95="} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		s := NewSeries("p")
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		last := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBoundedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("m")
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		return s.Mean() >= s.Min() && s.Mean() <= s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("C1: call setup", "scheme", "mean", "p95")
	tb.AddRow("vGPRS", "120ms", "150ms")
	tb.AddRow("TR 23.923") // short row padded
	out := tb.String()
	if !strings.Contains(out, "C1: call setup") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "vGPRS") {
		t.Errorf("row misordered:\n%s", out)
	}
	// Columns align: header and rows share the first column width.
	if !strings.Contains(lines[1], "scheme") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1234567 * time.Nanosecond); got != "1.235ms" {
		t.Errorf("FormatDuration = %q", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.Inc("a")
	c.Addn("b", 5)
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("missing") != 0 {
		t.Fatalf("counts = a:%d b:%d", c.Get("a"), c.Get("b"))
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Fatalf("Labels = %v", labels)
	}
}
