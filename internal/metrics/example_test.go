package metrics_test

import (
	"fmt"
	"time"

	"vgprs/internal/metrics"
)

func ExampleSeries() {
	s := metrics.NewSeries("setup")
	for _, d := range []time.Duration{
		80 * time.Millisecond, 85 * time.Millisecond, 90 * time.Millisecond,
	} {
		s.Add(d)
	}
	fmt.Println(metrics.FormatDuration(s.Mean()), metrics.FormatDuration(s.Percentile(95)))
	// Output:
	// 85ms 90ms
}

func ExampleTable() {
	t := metrics.NewTable("latency by scheme", "scheme", "mean")
	t.AddRow("vGPRS", "85ms")
	t.AddRow("TR 23.923", "103ms")
	fmt.Println(t)
	// Output:
	// latency by scheme
	// scheme     mean
	// ---------  -----
	// vGPRS      85ms
	// TR 23.923  103ms
}
