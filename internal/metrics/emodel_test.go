package metrics

import (
	"math"
	"testing"
	"time"
)

func TestEModelLosslessShortDelay(t *testing.T) {
	p := DefaultEModel()
	s := p.Score(20*time.Millisecond, 2*time.Millisecond, 500, 500)
	if s.LossPct != 0 {
		t.Fatalf("loss = %v, want 0", s.LossPct)
	}
	if s.MOS < 4.3 {
		t.Fatalf("lossless short-delay MOS = %.2f, want >= 4.3", s.MOS)
	}
	if s.EffectiveDelay != 24*time.Millisecond {
		t.Fatalf("effective delay = %v, want 24ms", s.EffectiveDelay)
	}
}

func TestEModelMonotoneInLoss(t *testing.T) {
	p := DefaultEModel()
	prev := math.Inf(1)
	for _, received := range []uint64{1000, 950, 900, 800, 500} {
		s := p.Score(30*time.Millisecond, time.Millisecond, 1000, received)
		if s.MOS >= prev {
			t.Fatalf("MOS not monotone: %.3f at received=%d (prev %.3f)", s.MOS, received, prev)
		}
		prev = s.MOS
	}
	// 5% random loss on a transparent codec with Bpl=10 lands near the
	// "many users dissatisfied" band.
	s := p.Score(30*time.Millisecond, time.Millisecond, 1000, 950)
	if s.MOS > 3.5 || s.MOS < 2.5 {
		t.Fatalf("5%% loss MOS = %.2f, want in [2.5, 3.5]", s.MOS)
	}
}

func TestEModelDelayKnee(t *testing.T) {
	p := DefaultEModel()
	short := p.Score(100*time.Millisecond, 0, 100, 100)
	long := p.Score(300*time.Millisecond, 0, 100, 100)
	if long.MOS >= short.MOS {
		t.Fatalf("delay knee missing: MOS(300ms)=%.2f >= MOS(100ms)=%.2f", long.MOS, short.MOS)
	}
	// Past the 177.3 ms knee the steep term must apply: the drop from
	// 100ms to 300ms exceeds what the linear term alone would give.
	linearOnly := 0.024 * 200 * 0.035 // dMOS if only the linear Id term acted
	if short.MOS-long.MOS < linearOnly*2 {
		t.Fatalf("knee too shallow: dMOS = %.3f", short.MOS-long.MOS)
	}
}

func TestEModelDeadLeg(t *testing.T) {
	s := DefaultEModel().Score(0, 0, 500, 0)
	if s.MOS != 1 || s.LossPct != 100 {
		t.Fatalf("dead leg: MOS=%v loss=%v, want 1 and 100", s.MOS, s.LossPct)
	}
}

func TestSummarizeFloats(t *testing.T) {
	s := SummarizeFloats([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 || s.Mean != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.P95 != 5 {
		t.Fatalf("p95 = %v, want 5 (nearest rank)", s.P95)
	}
	if got := SummarizeFloats(nil); got != (FloatSummary{}) {
		t.Fatalf("empty summary = %+v", got)
	}
}
