package experiments

import (
	"fmt"
	"time"

	"vgprs/internal/metrics"
	"vgprs/internal/netsim"
)

// The loss experiment quantifies signalling-plane fault tolerance: it runs
// the chaos harness's registration and MS-to-MS call-setup scenarios over a
// seed sweep at several uniform per-link loss rates on the core signalling
// links, reporting eventual-success rates, retransmission cost, and the
// virtual-time price of recovery. The 10% column is the acceptance bar —
// every seed must succeed within the documented retry budget.

// LossPoint is the aggregated outcome of one (rate, scenario) cell.
type LossPoint struct {
	Rate            float64 `json:"loss_rate"`
	Scenario        string  `json:"scenario"` // "registration" or "call-setup"
	Seeds           int     `json:"seeds"`
	Succeeded       int     `json:"succeeded"`
	Retransmits     uint64  `json:"retransmits_total"`
	MaxRetransmits  uint64  `json:"retransmits_max_per_run"`
	MeanElapsedNs   int64   `json:"mean_elapsed_ns"`
	MaxElapsedNs    int64   `json:"max_elapsed_ns"`
	FailureExamples string  `json:"failure_examples,omitempty"`
}

// RunLossSweep measures eventual success under uniform signalling loss for
// both chaos scenarios at each rate, across seedsPerRate deterministic
// seeds derived from seed.
func RunLossSweep(seed int64, rates []float64, seedsPerRate int) ([]LossPoint, error) {
	type cell struct {
		rate     float64
		scenario string
	}
	var cells []cell
	for _, rate := range rates {
		cells = append(cells,
			cell{rate, "registration"},
			cell{rate, "call-setup"})
	}
	return runSweep(cells, func(c cell) (LossPoint, error) {
		p := LossPoint{Rate: c.rate, Scenario: c.scenario, Seeds: seedsPerRate}
		var totalElapsed time.Duration
		for i := 0; i < seedsPerRate; i++ {
			runSeed := seed + int64(i)*1009
			plan := netsim.UniformLossPlan(c.rate)
			var res netsim.ChaosResult
			var err error
			if c.scenario == "registration" {
				res, err = netsim.RunChaosRegistration(runSeed, plan)
			} else {
				res, err = netsim.RunChaosCall(runSeed, plan)
			}
			if err == nil {
				p.Succeeded++
			} else if p.FailureExamples == "" {
				p.FailureExamples = err.Error()
			}
			p.Retransmits += res.Retransmits
			if res.Retransmits > p.MaxRetransmits {
				p.MaxRetransmits = res.Retransmits
			}
			totalElapsed += res.Elapsed
			if int64(res.Elapsed) > p.MaxElapsedNs {
				p.MaxElapsedNs = int64(res.Elapsed)
			}
		}
		p.MeanElapsedNs = int64(totalElapsed) / int64(seedsPerRate)
		return p, nil
	})
}

// LossTable renders the loss sweep.
func LossTable(points []LossPoint) *metrics.Table {
	t := metrics.NewTable(
		"LOSS: signalling fault tolerance (uniform loss on core links)",
		"loss", "scenario", "success", "retx total", "retx max/run", "mean time", "max time")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", p.Rate*100),
			p.Scenario,
			fmt.Sprintf("%d/%d", p.Succeeded, p.Seeds),
			fmt.Sprintf("%d", p.Retransmits),
			fmt.Sprintf("%d", p.MaxRetransmits),
			metrics.FormatDuration(time.Duration(p.MeanElapsedNs)),
			metrics.FormatDuration(time.Duration(p.MaxElapsedNs)),
		)
	}
	return t
}
