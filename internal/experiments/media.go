package experiments

import (
	"fmt"
	"time"

	"vgprs/internal/metrics"
	"vgprs/internal/netsim/scenario"
)

// MediaPoint is one cell of the media-plane sweep: N concurrent MS-to-MS
// calls held up for a talk window under a per-link loss rate, scored
// per call with the E-model.
type MediaPoint struct {
	Calls    int     `json:"calls"`
	LossRate float64 `json:"loss_rate"`
	Shards   int     `json:"shards"`

	// Frames/FramesExpected are the listeners' played-out and
	// sequence-implied totals; RTPLost the RTP-level loss the hairpin
	// receivers attributed to the media legs.
	Frames         uint64 `json:"frames"`
	FramesExpected uint64 `json:"frames_expected"`
	RTPLost        uint64 `json:"rtp_lost"`

	// MOS is the per-call distribution (each call scored as the worse of
	// its two listener legs).
	MOS metrics.FloatSummary `json:"mos"`

	// MeanDelay/MeanJitter average the mouth-to-ear statistics across
	// all listener legs.
	MeanDelay  time.Duration `json:"mean_delay"`
	MeanJitter time.Duration `json:"mean_jitter"`

	Residual int `json:"residual"`
}

// RunMediaSweep sweeps concurrent calls against per-link media loss on the
// sharded engine. Loss rates are per media leg; a frame crosses the lossy
// Gb and Gn legs four times end-to-end, so the effective frame-loss rate
// is roughly 1-(1-p)^4. Jitter is held at 2 ms to keep the delay term
// realistic without drowning the loss signal.
func RunMediaSweep(seed int64) ([]MediaPoint, error) {
	type cell struct {
		calls int
		loss  float64
	}
	const shards = 4
	var cells []cell
	for _, calls := range []int{4, 8, 16} {
		for _, loss := range []float64{0, 0.01, 0.02, 0.05} {
			cells = append(cells, cell{calls, loss})
		}
	}
	return runSweep(cells, func(c cell) (MediaPoint, error) {
		r, err := scenario.RunMedia(scenario.MediaConfig{
			Seed: seed, Shards: shards, Calls: c.calls,
			TalkTime: 10 * time.Second, LossRate: c.loss,
			Jitter: 2 * time.Millisecond,
		})
		if err != nil {
			return MediaPoint{}, fmt.Errorf("media calls=%d loss=%g: %w", c.calls, c.loss, err)
		}
		return MediaPoint{
			Calls: c.calls, LossRate: c.loss, Shards: shards,
			Frames: r.Frames, FramesExpected: r.FramesExpected, RTPLost: r.RTPLost,
			MOS: r.MOS, MeanDelay: r.MeanDelay, MeanJitter: r.MeanJitter,
			Residual: r.Residual,
		}, nil
	})
}

// MediaTable renders the sweep.
func MediaTable(points []MediaPoint) *metrics.Table {
	t := metrics.NewTable(
		"Media plane: per-call MOS vs concurrent calls and per-link loss",
		"calls", "loss/link", "frames", "rtp lost", "MOS min", "MOS p50", "MOS p95", "delay", "jitter")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Calls),
			fmt.Sprintf("%.0f%%", p.LossRate*100),
			fmt.Sprintf("%d/%d", p.Frames, p.FramesExpected),
			fmt.Sprintf("%d", p.RTPLost),
			fmt.Sprintf("%.2f", p.MOS.Min),
			fmt.Sprintf("%.2f", p.MOS.P50),
			fmt.Sprintf("%.2f", p.MOS.P95),
			metrics.FormatDuration(p.MeanDelay),
			metrics.FormatDuration(p.MeanJitter))
	}
	return t
}
