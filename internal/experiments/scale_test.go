package experiments

import "testing"

// TestBytesPerSubscriberBudget is the memory-residency gate for the slab-
// backed core: attach a large population end to end (VLR registration, HLR
// record, GPRS attach, PDP context) and hold the measured heap cost per
// subscriber under a committed budget. The budgets carry roughly 2x
// headroom over measured values (844 B/sub at 100k, ~1,300 B/sub at 10k —
// smaller populations amortise the index tables and symbol interners over
// fewer subscribers), so regressions that matter — a new per-subscriber
// heap object, an index that stops recycling — trip the gate while noise
// does not.
//
// The same run asserts the storage fully recycles: after detach-all plus
// cancel-all, every slab slot must be back on a free-list (zero live
// records) and every index entry gone (zero imbalance).
func TestBytesPerSubscriberBudget(t *testing.T) {
	subs, budget := 100_000, 1_600.0
	if testing.Short() || raceEnabled {
		// Race instrumentation roughly triples per-object cost (measured
		// ~2,450 B/sub vs ~1,300 plain at 10k).
		subs, budget = 10_000, 3_200.0
	}
	p, err := RunScale(7, subs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("subs=%d bytes/sub=%.0f attach/s=%.0f call-setup/s=%.0f churn/s=%.0f",
		p.Subs, p.BytesPerSub, p.AttachPerSec, p.CallSetupPerSec, p.ChurnPerSec)
	if p.Rejects != 0 {
		t.Errorf("rejects = %d, want 0", p.Rejects)
	}
	if p.BytesPerSub > budget {
		t.Errorf("bytes/subscriber = %.0f, budget %.0f", p.BytesPerSub, budget)
	}
	if p.DetachLeftover != 0 {
		t.Errorf("records still live after detach-all: %d", p.DetachLeftover)
	}
	if p.SlabImbalance != 0 {
		t.Errorf("slab imbalance after detach-all: %d", p.SlabImbalance)
	}
}

// TestFullStackBytesPerSubscriberBudget is the memory gate for the full
// Fig 2(b) stack: the same population attached through a real VMSC (MS
// table, hosted GPRS clients, H.323 endpoints), VLR, HLR, SGSN, GGSN,
// gatekeeper, and directory at once. The budget carries ~1.5x headroom over
// the measured 2,900 B/sub at 100k; the run itself asserts completeness
// (every subscriber registered at the VMSC and the gatekeeper), end-to-end
// call setup at full residency, and full recycling after cancel-all.
func TestFullStackBytesPerSubscriberBudget(t *testing.T) {
	subs, budget := 100_000, 4_500.0
	if testing.Short() || raceEnabled {
		// Slab chunks dominate the full-stack cost, so race instrumentation
		// barely moves it (measured ~5,230 B/sub plain and race at 10k).
		subs, budget = 10_000, 9_000.0
	}
	p, err := RunScaleFull(7, subs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("subs=%d bytes/sub=%.0f attach/s=%.0f call-setup/s=%.0f",
		p.Subs, p.BytesPerSub, p.AttachPerSec, p.CallSetupPerSec)
	if p.Rejects != 0 {
		t.Errorf("rejects = %d, want 0", p.Rejects)
	}
	if p.BytesPerSub > budget {
		t.Errorf("bytes/subscriber = %.0f, budget %.0f", p.BytesPerSub, budget)
	}
	if p.DetachLeftover != 0 {
		t.Errorf("records still live after cancel-all: %d", p.DetachLeftover)
	}
	if p.SlabImbalance != 0 {
		t.Errorf("slab imbalance after cancel-all: %d", p.SlabImbalance)
	}
}

// TestScaleFullSmall is the fast canary for the full-stack harness: a
// population small enough for every test run, with RunScaleFull's own
// completeness checks (registration, call setup, recycling) doing the
// asserting.
func TestScaleFullSmall(t *testing.T) {
	p, err := RunScaleFull(3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.RegisteredVMSC != 500 || p.GKRegistered != 500 || p.ActivePDP != 500 {
		t.Fatalf("population incomplete: %+v", p)
	}
	if p.DetachLeftover != 0 || p.SlabImbalance != 0 {
		t.Fatalf("leak after cancel-all: leftover=%d imbalance=%d", p.DetachLeftover, p.SlabImbalance)
	}
}

// TestScaleSmall exercises the whole scale harness at a size cheap enough
// for every test run, including the error paths RunScale itself checks
// (population completeness) — a fast canary in front of the big gate.
func TestScaleSmall(t *testing.T) {
	p, err := RunScale(3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.Registered != 500 || p.Attached != 500 || p.ActivePDP != 500 {
		t.Fatalf("population incomplete: %+v", p)
	}
	if p.DetachLeftover != 0 || p.SlabImbalance != 0 {
		t.Fatalf("leak after detach: leftover=%d imbalance=%d", p.DetachLeftover, p.SlabImbalance)
	}
}
