package experiments

import (
	"fmt"
	"time"

	"vgprs/internal/gsm"
	"vgprs/internal/metrics"
	"vgprs/internal/netsim"
)

// R1Point is one registration-storm measurement.
type R1Point struct {
	NumMS       int
	TCHCapacity int
	Registered  int
	Duration    time.Duration
	Blocked     uint64
}

// RunR1RegistrationStorm powers on N mobiles simultaneously under a BSC
// with limited dedicated channels and measures how long mass registration
// takes — the GSM 04.08 random-access backoff at work. This is a systems
// measurement beyond the paper; it sizes the VMSC's registration machinery
// under the morning-commute power-on wave.
func RunR1RegistrationStorm(seed int64, points []struct{ MS, TCH int }) ([]R1Point, error) {
	return runSweep(points, func(p struct{ MS, TCH int }) (R1Point, error) {
		n := netsim.BuildVGPRS(netsim.VGPRSOptions{
			Seed: seed, NumMS: p.MS, TCHCapacity: p.TCH, NoTrace: true,
		})
		start := n.Env.Now()
		for _, term := range n.Terminals {
			term.Register(n.Env)
		}
		for _, ms := range n.MSs {
			ms.PowerOn(n.Env)
		}
		// Run until every MS settles (registered or exhausted retries).
		var finished time.Duration
		deadline := n.Env.Now() + 5*time.Minute
		for n.Env.Now() < deadline {
			registered := 0
			for _, ms := range n.MSs {
				if ms.State() == gsm.MSIdle {
					registered++
				}
			}
			if registered == p.MS {
				finished = n.Env.Now()
				break
			}
			if !n.Env.Step() {
				break
			}
		}
		registered := 0
		for _, ms := range n.MSs {
			if ms.State() == gsm.MSIdle {
				registered++
			}
		}
		if finished == 0 {
			finished = n.Env.Now()
		}
		return R1Point{
			NumMS: p.MS, TCHCapacity: p.TCH,
			Registered: registered,
			Duration:   finished - start,
			Blocked:    n.BSC.Blocked(),
		}, nil
	})
}

// R1Table renders the storm sweep.
func R1Table(points []R1Point) *metrics.Table {
	t := metrics.NewTable(
		"R1: simultaneous power-on registration storm (random-access backoff)",
		"MSs", "TCH capacity", "registered", "time to quiesce", "blocked attempts")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.NumMS),
			fmt.Sprintf("%d", p.TCHCapacity),
			fmt.Sprintf("%d", p.Registered),
			metrics.FormatDuration(p.Duration),
			fmt.Sprintf("%d", p.Blocked))
	}
	return t
}
